// Device cost models: calibration against the paper's Table II / Fig. 3,
// scaling behaviour, OOM modelling, measurement noise.
#include <gtest/gtest.h>

#include <cmath>

#include "hw/device.hpp"
#include "hw/profiler.hpp"

namespace hg::hw {
namespace {

struct DeviceCase {
  DeviceKind kind;
  double dgcnn_ms;                      // Table II DGCNN latency @1024 pts
  std::array<double, 4> pct;            // Fig. 3 {Sample, Aggr, Comb, Other}
};

const DeviceCase kCases[] = {
    {DeviceKind::Rtx3080, 51.8, {0.5326, 0.3313, 0.0542, 0.0819}},
    {DeviceKind::IntelI7_8700K, 234.2, {0.0176, 0.8744, 0.0085, 0.0995}},
    {DeviceKind::JetsonTx2, 270.4, {0.5088, 0.1170, 0.0817, 0.2925}},
    {DeviceKind::RaspberryPi3B, 4139.1, {0.2246, 0.3355, 0.2732, 0.1666}},
};

class DeviceCalibration : public ::testing::TestWithParam<DeviceCase> {};

TEST_P(DeviceCalibration, DgcnnLatencyMatchesTable2) {
  const auto& c = GetParam();
  Device dev = make_device(c.kind);
  const Trace ref = dgcnn_reference_trace(1024);
  EXPECT_NEAR(dev.latency_ms(ref), c.dgcnn_ms, c.dgcnn_ms * 0.001);
}

TEST_P(DeviceCalibration, BreakdownMatchesFig3) {
  const auto& c = GetParam();
  Device dev = make_device(c.kind);
  const Breakdown b = dev.breakdown(dgcnn_reference_trace(1024));
  for (int cat = 0; cat < kNumCategories; ++cat)
    EXPECT_NEAR(b.fraction[static_cast<std::size_t>(cat)],
                c.pct[static_cast<std::size_t>(cat)], 0.002)
        << "category " << category_name(static_cast<OpCategory>(cat));
}

TEST_P(DeviceCalibration, LatencyGrowsWithPointCount) {
  Device dev = make_device(GetParam().kind);
  double prev = 0.0;
  for (std::int64_t n : {128, 256, 512, 1024, 2048}) {
    const double ms = dev.latency_ms(dgcnn_reference_trace(n));
    EXPECT_GT(ms, prev);
    prev = ms;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDevices, DeviceCalibration, ::testing::ValuesIn(kCases),
    [](const ::testing::TestParamInfo<DeviceCase>& info) {
      switch (info.param.kind) {
        case DeviceKind::Rtx3080: return std::string("Rtx3080");
        case DeviceKind::IntelI7_8700K: return std::string("IntelI7");
        case DeviceKind::JetsonTx2: return std::string("JetsonTx2");
        case DeviceKind::RaspberryPi3B: return std::string("RaspberryPi");
      }
      return std::string("unknown");
    });

TEST(DeviceMemory, DgcnnPeakMemoryMatchesTable2) {
  // Table II peak memory: 144.0 / 643.0 / 145.0 / 457.8 MB.
  const Trace ref = dgcnn_reference_trace(1024);
  EXPECT_NEAR(make_device(DeviceKind::Rtx3080).peak_memory_mb(ref), 144.0,
              6.0);
  EXPECT_NEAR(make_device(DeviceKind::IntelI7_8700K).peak_memory_mb(ref),
              643.0, 15.0);
  EXPECT_NEAR(make_device(DeviceKind::JetsonTx2).peak_memory_mb(ref), 145.0,
              6.0);
  EXPECT_NEAR(make_device(DeviceKind::RaspberryPi3B).peak_memory_mb(ref),
              457.8, 15.0);
}

TEST(DeviceMemory, RaspberryPiOomsAbove1536Points) {
  // Fig. 1: "graphs with more than 1536 points will cause OOM" on the Pi.
  Device pi = make_device(DeviceKind::RaspberryPi3B);
  EXPECT_FALSE(pi.would_oom(dgcnn_reference_trace(1024)));
  EXPECT_FALSE(pi.would_oom(dgcnn_reference_trace(1536)));
  EXPECT_TRUE(pi.would_oom(dgcnn_reference_trace(2048)));
}

TEST(DeviceMemory, BigDevicesNeverOomInSweep) {
  for (auto kind : {DeviceKind::Rtx3080, DeviceKind::IntelI7_8700K,
                    DeviceKind::JetsonTx2}) {
    Device dev = make_device(kind);
    EXPECT_FALSE(dev.would_oom(dgcnn_reference_trace(2048)));
  }
}

TEST(Measurement, NoiseIsUnbiasedAndBounded) {
  Device dev = make_device(DeviceKind::Rtx3080);
  const Trace ref = dgcnn_reference_trace(1024);
  const double truth = dev.latency_ms(ref);
  Rng rng(1);
  double sum = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) sum += dev.measure(ref, rng).latency_ms;
  EXPECT_NEAR(sum / n, truth, truth * 0.01);  // log-normal with unit mean
}

TEST(Measurement, PiNoisierThanRtx) {
  const Trace ref = dgcnn_reference_trace(512);
  auto relative_spread = [&](DeviceKind kind) {
    Device dev = make_device(kind);
    const double truth = dev.latency_ms(ref);
    Rng rng(2);
    double var = 0.0;
    const int n = 500;
    for (int i = 0; i < n; ++i) {
      const double d = dev.measure(ref, rng).latency_ms - truth;
      var += d * d;
    }
    return std::sqrt(var / n) / truth;
  };
  EXPECT_GT(relative_spread(DeviceKind::RaspberryPi3B),
            2.0 * relative_spread(DeviceKind::Rtx3080));
}

TEST(Measurement, WallClockIncludesDeployOverhead) {
  Device pi = make_device(DeviceKind::RaspberryPi3B);
  Rng rng(3);
  const Measurement m = pi.measure(dgcnn_reference_trace(1024), rng);
  EXPECT_GE(m.wall_clock_s, pi.spec().deploy_overhead_s);
}

TEST(Measurement, OomReportsNoLatency) {
  Device pi = make_device(DeviceKind::RaspberryPi3B);
  Rng rng(4);
  const Measurement m = pi.measure(dgcnn_reference_trace(2048), rng);
  EXPECT_TRUE(m.oom);
  EXPECT_EQ(m.latency_ms, 0.0);
}

TEST(Measurement, OnlineMeasurementFlagsMatchPaper) {
  EXPECT_TRUE(make_device(DeviceKind::Rtx3080)
                  .spec()
                  .supports_online_measurement);
  EXPECT_TRUE(make_device(DeviceKind::IntelI7_8700K)
                  .spec()
                  .supports_online_measurement);
  EXPECT_FALSE(
      make_device(DeviceKind::JetsonTx2).spec().supports_online_measurement);
  EXPECT_FALSE(make_device(DeviceKind::RaspberryPi3B)
                   .spec()
                   .supports_online_measurement);
}

TEST(TraceBuilder, WorkModelFormulae) {
  TraceBuilder tb;
  tb.knn(100, 3, 10);
  tb.aggregate(1000, 16);
  tb.edge_mlp_aggregate(1000, 8, 16);
  tb.combine(100, 8, 32);
  tb.other(100, 32, "act");
  Trace t = tb.build();
  ASSERT_EQ(t.ops.size(), 5u);
  EXPECT_NEAR(t.ops[0].work, 100.0 * 100.0 * (3.0 + std::log2(11.0)), 1e-6);
  // Plain aggregation: elements x irregular-traffic cost (32 MACs/elem).
  EXPECT_DOUBLE_EQ(t.ops[1].work, 16000.0 * 32.0);
  // Fused edge MLP: edges * 2*in * out MACs.
  EXPECT_DOUBLE_EQ(t.ops[2].work, 1000.0 * 2.0 * 8.0 * 16.0);
  EXPECT_DOUBLE_EQ(t.ops[3].work, 100.0 * 8.0 * 32.0);
  EXPECT_DOUBLE_EQ(t.ops[4].work, 3200.0);
  // Both aggregate flavours land in the Aggregate category.
  EXPECT_EQ(static_cast<int>(t.ops[1].category),
            static_cast<int>(OpCategory::Aggregate));
  EXPECT_EQ(static_cast<int>(t.ops[2].category),
            static_cast<int>(OpCategory::Aggregate));
}

TEST(TraceBuilder, RejectsBadArguments) {
  TraceBuilder tb;
  EXPECT_THROW(tb.knn(0, 3, 10), std::invalid_argument);
  EXPECT_THROW(tb.combine(10, 0, 5), std::invalid_argument);
  EXPECT_THROW(tb.aggregate(10, 0), std::invalid_argument);
  EXPECT_THROW(tb.set_param_mb(-1.0), std::invalid_argument);
}

TEST(Trace, CategoryTotalsAndWorkspace) {
  TraceBuilder tb;
  tb.knn(64, 3, 8).aggregate(512, 6).combine(64, 6, 16);
  Trace t = tb.build();
  EXPECT_GT(t.total_work(OpCategory::Sample), 0.0);
  EXPECT_GT(t.total_work(OpCategory::Aggregate), 0.0);
  EXPECT_GT(t.total_work(OpCategory::Combine), 0.0);
  EXPECT_DOUBLE_EQ(t.total_work(OpCategory::Others), 0.0);
  EXPECT_GT(t.max_workspace_mb(), 0.0);
}

TEST(Profiler, ReportContainsOpsAndDevice) {
  Device dev = make_device(DeviceKind::Rtx3080);
  const std::string report = profile_report(dev, dgcnn_reference_trace(256));
  EXPECT_NE(report.find("RTX3080"), std::string::npos);
  EXPECT_NE(report.find("knn"), std::string::npos);
  EXPECT_NE(report.find("edge_mlp_aggr"), std::string::npos);
}

TEST(Profiler, SummarySharesSumToHundred) {
  Device dev = make_device(DeviceKind::JetsonTx2);
  const Breakdown b = dev.breakdown(dgcnn_reference_trace(512));
  double total = 0.0;
  for (double f : b.fraction) total += f;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ReferenceTrace, ParamFootprintIsPlausible) {
  const Trace t = dgcnn_reference_trace(1024);
  // Standard DGCNN is ~1.3M fp32 parameters for the 40-class head.
  EXPECT_GT(t.param_mb, 4.0);
  EXPECT_LT(t.param_mb, 7.0);
}

TEST(ReferenceTrace, PointCountOnlyAffectsPerPointWork) {
  const Trace a = dgcnn_reference_trace(256);
  const Trace b = dgcnn_reference_trace(512);
  EXPECT_EQ(a.ops.size(), b.ops.size());
  EXPECT_DOUBLE_EQ(a.param_mb, b.param_mb);
}

TEST(DeviceSpec, PowerBudgetsMatchPaperClaim) {
  // §I: "47x (350 W vs 7.5 W) power efficiency" — RTX vs TX2.
  const double rtx = make_device(DeviceKind::Rtx3080).spec().power_w;
  const double tx2 = make_device(DeviceKind::JetsonTx2).spec().power_w;
  EXPECT_NEAR(rtx / tx2, 47.0, 0.5);
}

}  // namespace
}  // namespace hg::hw
