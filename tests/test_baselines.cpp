// Baselines: DGCNN / Li / Tailor forward passes, trace parity with the
// calibration reference, reuse-variant cost ordering.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "baselines/baselines.hpp"

namespace hg::baselines {
namespace {

Tensor random_cloud(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  return Tensor::rand_uniform({n, 3}, rng, -1.f, 1.f);
}

TEST(Dgcnn, ForwardShape) {
  Rng rng(1);
  Dgcnn model(DgcnnConfig::scaled(10, 6), rng);
  Tensor logits = model.forward(random_cloud(48, 2));
  EXPECT_EQ(logits.shape(), (Shape{1, 10}));
  for (float v : logits.data()) EXPECT_TRUE(std::isfinite(v));
}

TEST(Dgcnn, RejectsBadInputsAndConfig) {
  Rng rng(3);
  Dgcnn model(DgcnnConfig::scaled(10, 6), rng);
  EXPECT_THROW(model.forward(Tensor::ones({10, 4})), std::invalid_argument);
  EXPECT_THROW(model.forward(Tensor::ones({1, 3})), std::invalid_argument);
  DgcnnConfig bad = DgcnnConfig::scaled(10, 6);
  bad.reuse_from_layer = 9;
  EXPECT_THROW(Dgcnn(bad, rng), std::invalid_argument);
}

TEST(Dgcnn, DefaultTraceMatchesCalibrationReference) {
  // The hw calibration anchors on dgcnn_reference_trace; the baseline's own
  // lowering must agree op-for-op so Table II DGCNN rows land on the
  // paper's numbers by construction.
  DgcnnConfig cfg;  // paper-scale defaults
  const hw::Trace mine = Dgcnn::trace(cfg, 1024);
  const hw::Trace ref = hw::dgcnn_reference_trace(1024);
  ASSERT_EQ(mine.ops.size(), ref.ops.size());
  for (std::size_t i = 0; i < mine.ops.size(); ++i) {
    EXPECT_EQ(static_cast<int>(mine.ops[i].category),
              static_cast<int>(ref.ops[i].category))
        << "op " << i;
    EXPECT_NEAR(mine.ops[i].work, ref.ops[i].work, 1e-6) << "op " << i;
  }
}

TEST(Dgcnn, ReuseVariantsReduceSampleCost) {
  DgcnnConfig cfg;
  auto sample_work = [&](std::int64_t reuse) {
    cfg.reuse_from_layer = reuse;
    return Dgcnn::trace(cfg, 512).total_work(hw::OpCategory::Sample);
  };
  // Monotone: fewer fresh KNNs, less sample work.
  EXPECT_GT(sample_work(4), sample_work(3));
  EXPECT_GT(sample_work(3), sample_work(2));
  EXPECT_GT(sample_work(2), sample_work(1));
}

TEST(Dgcnn, LiConfigIsFullReuse) {
  DgcnnConfig li = li_optimized_config(DgcnnConfig{});
  EXPECT_EQ(li.reuse_from_layer, 1);
  // Li is faster than DGCNN on every device (Table II rows).
  for (int d = 0; d < hw::kNumDevices; ++d) {
    hw::Device dev = hw::make_device(static_cast<hw::DeviceKind>(d));
    EXPECT_LT(dev.latency_ms(Dgcnn::trace(li, 1024)),
              dev.latency_ms(Dgcnn::trace(DgcnnConfig{}, 1024)))
        << dev.name();
  }
}

TEST(Dgcnn, ReuseChangesForwardResults) {
  // With graph reuse the deeper layers see a different neighbourhood.
  Rng r1(5), r2(5);
  DgcnnConfig full = DgcnnConfig::scaled(10, 6);
  DgcnnConfig reuse = li_optimized_config(full);
  Dgcnn m1(full, r1), m2(reuse, r2);
  m1.set_training(false);
  m2.set_training(false);
  Tensor cloud = random_cloud(48, 6);
  Tensor y1 = m1.forward(cloud);
  Tensor y2 = m2.forward(cloud);
  bool differs = false;
  for (std::int64_t i = 0; i < y1.numel(); ++i)
    if (std::fabs(y1.data()[i] - y2.data()[i]) > 1e-6f) differs = true;
  EXPECT_TRUE(differs);
}

TEST(Tailor, ForwardShape) {
  Rng rng(7);
  TailorGnn model(TailorConfig::scaled(10, 6), rng);
  Tensor logits = model.forward(random_cloud(48, 8));
  EXPECT_EQ(logits.shape(), (Shape{1, 10}));
}

TEST(Tailor, FasterThanDgcnnEverywhere) {
  const hw::Trace tailor = TailorGnn::trace(TailorConfig{}, 1024);
  const hw::Trace dgcnn = Dgcnn::trace(DgcnnConfig{}, 1024);
  for (int d = 0; d < hw::kNumDevices; ++d) {
    hw::Device dev = hw::make_device(static_cast<hw::DeviceKind>(d));
    EXPECT_LT(dev.latency_ms(tailor), dev.latency_ms(dgcnn)) << dev.name();
  }
}

TEST(Tailor, SingleSampleInTrace) {
  const hw::Trace t = TailorGnn::trace(TailorConfig{}, 512);
  int samples = 0;
  for (const auto& op : t.ops)
    if (op.category == hw::OpCategory::Sample) ++samples;
  EXPECT_EQ(samples, 1);
}

TEST(Baselines, ParamFootprintsPlausible) {
  Rng rng(9);
  Dgcnn dgcnn(DgcnnConfig::scaled(10, 6), rng);
  TailorGnn tailor(TailorConfig::scaled(10, 6), rng);
  EXPECT_GT(dgcnn.param_mb(), 0.0);
  EXPECT_GT(tailor.param_mb(), 0.0);
  // Trace param accounting tracks the real module within rounding.
  EXPECT_NEAR(Dgcnn::trace(dgcnn.config(), 256).param_mb, dgcnn.param_mb(),
              0.01);
  EXPECT_NEAR(TailorGnn::trace(tailor.config(), 256).param_mb,
              tailor.param_mb(), 0.01);
}

TEST(Baselines, TrainingBeatsChance) {
  Rng rng(10);
  pointcloud::Dataset data(10, 32, 77);
  Dgcnn model(DgcnnConfig::scaled(10, 6), rng);
  BaselineEval r = train_baseline(model, data, /*epochs=*/6, 2e-3f, rng);
  EXPECT_GT(r.overall_acc, 0.25);  // chance = 0.10
}

TEST(Baselines, GradientsFlowThroughTailor) {
  Rng rng(11);
  TailorGnn model(TailorConfig::scaled(10, 6), rng);
  Tensor logits = model.forward(random_cloud(32, 12));
  const std::int64_t label[1] = {1};
  cross_entropy(logits, label).backward();
  std::size_t with_grad = 0;
  for (auto& p : model.parameters())
    if (p.has_grad()) ++with_grad;
  EXPECT_GT(with_grad, 10u);
}

}  // namespace
}  // namespace hg::baselines
