// The hg::api::Engine facade: config validation, registry lookup (errors
// are Status values, never exceptions), search smoke run at tiny scale,
// shared EvalContext semantics, baseline verbs, in-loop Pareto frontiers,
// and the export/import persistence round-trip.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "api/engine.hpp"
#include "baselines/baselines.hpp"
#include "hgnas/pareto.hpp"

namespace hg::api {
namespace {

TEST(Status, CodesAndMessages) {
  EXPECT_TRUE(Status::Ok().ok());
  const Status s = Status::NotFound("missing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing");
  EXPECT_EQ(s.to_string(), "NOT_FOUND: missing");
}

TEST(Result, ValueAndError) {
  Result<int> ok(7);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 7);
  Result<int> err(Status::InvalidArgument("bad"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(err.value_or(-1), -1);
}

TEST(EngineConfigValidation, RejectsBadFields) {
  EngineConfig cfg = EngineConfig::tiny();
  EXPECT_TRUE(validate(cfg).ok());
  cfg.population = 1;
  EXPECT_EQ(validate(cfg).code(), StatusCode::kInvalidArgument);
  cfg = EngineConfig::tiny();
  cfg.latency_budget_ms = -5.0;
  EXPECT_EQ(validate(cfg).code(), StatusCode::kInvalidArgument);
  cfg = EngineConfig::tiny();
  cfg.k = cfg.num_points;  // k must stay below the cloud size
  EXPECT_EQ(validate(cfg).code(), StatusCode::kInvalidArgument);
}

TEST(Registry, UnknownNamesReturnNotFoundNotThrow) {
  EngineConfig cfg = EngineConfig::tiny();
  cfg.device = "tpu-v5";
  Result<Engine> bad_device = Engine::create(cfg);
  ASSERT_FALSE(bad_device.ok());
  EXPECT_EQ(bad_device.status().code(), StatusCode::kNotFound);
  // The error names the known devices so a CLI can print it verbatim.
  EXPECT_NE(bad_device.status().message().find("rtx3080"), std::string::npos);

  cfg = EngineConfig::tiny();
  cfg.evaluator = "crystal-ball";
  Result<Engine> bad_eval = Engine::create(cfg);
  ASSERT_FALSE(bad_eval.ok());
  EXPECT_EQ(bad_eval.status().code(), StatusCode::kNotFound);

  cfg = EngineConfig::tiny();
  cfg.strategy = "simulated-annealing";
  Result<Engine> bad_strategy = Engine::create(cfg);
  ASSERT_FALSE(bad_strategy.ok());
  EXPECT_EQ(bad_strategy.status().code(), StatusCode::kNotFound);
}

TEST(Registry, DeviceAliasesResolve) {
  Registry& reg = Registry::global();
  for (const char* name : {"rtx3080", "rtx", "i7", "jetson-tx2", "tx2", "pi"})
    EXPECT_TRUE(reg.make_device(name).ok()) << name;
  // Case-insensitive.
  EXPECT_TRUE(reg.make_device("RTX3080").ok());
}

TEST(Registry, MeasuredEvaluatorRefusedOnOfflineDevicesAsStatus) {
  // TX2 / Pi have no online measurement (paper §IV-D): the facade reports
  // FAILED_PRECONDITION instead of the module layer's throw.
  for (const char* dev : {"jetson-tx2", "raspberry-pi-3b"}) {
    EngineConfig cfg = EngineConfig::tiny();
    cfg.device = dev;
    cfg.evaluator = "measured";
    Result<Engine> engine = Engine::create(cfg);
    ASSERT_FALSE(engine.ok()) << dev;
    EXPECT_EQ(engine.status().code(), StatusCode::kFailedPrecondition);
    EXPECT_NE(engine.status().message().find("predictor"), std::string::npos);
  }
  // The same evaluator works where measurement is supported.
  EngineConfig cfg = EngineConfig::tiny();
  cfg.device = "rtx3080";
  cfg.evaluator = "measured";
  EXPECT_TRUE(Engine::create(cfg).ok());
}

TEST(Engine, CreateExposesReferenceNumbers) {
  Result<Engine> engine = Engine::create(EngineConfig::tiny());
  ASSERT_TRUE(engine.ok()) << engine.status().to_string();
  EXPECT_GT(engine.value().reference_latency_ms(), 0.0);
  EXPECT_GT(engine.value().reference_memory_mb(), 0.0);
  EXPECT_EQ(engine.value().device().name(), "Nvidia RTX3080");
}

TEST(Engine, PredictProfileAndVisualize) {
  Result<Engine> created = Engine::create(EngineConfig::tiny());
  ASSERT_TRUE(created.ok()) << created.status().to_string();
  Engine engine = std::move(created).value();

  const Arch arch = engine.sample_arch();
  const Result<LatencyReport> lat = engine.predict_latency(arch);
  ASSERT_TRUE(lat.ok()) << lat.status().to_string();
  EXPECT_GE(lat.value().latency_ms, 0.0);

  const Result<ProfileReport> prof = engine.profile(arch);
  ASSERT_TRUE(prof.ok()) << prof.status().to_string();
  // Oracle evaluator and profile agree on the analytical model.
  EXPECT_NEAR(prof.value().latency_ms, lat.value().latency_ms, 1e-9);
  EXPECT_FALSE(prof.value().breakdown.empty());
  EXPECT_GT(prof.value().reference_latency_ms, 0.0);
  EXPECT_FALSE(engine.visualize(arch).empty());

  const ArchGraphInfo info = engine.arch_graph_info(arch);
  EXPECT_GT(info.nodes, 0);
  EXPECT_GT(info.edges, 0);
  EXPECT_GT(info.feature_dim, 0);

  // Malformed input is a status, not a crash.
  Arch broken = arch;
  broken.genes[0].fn.combine_dim_idx = 99;
  EXPECT_EQ(engine.profile(broken).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.predict_latency(Arch{}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(Engine, SearchSmokeRunsEndToEnd) {
  EngineConfig cfg = EngineConfig::tiny();
  cfg.constrain_to_reference = true;
  Result<Engine> created = Engine::create(cfg);
  ASSERT_TRUE(created.ok()) << created.status().to_string();
  Engine engine = std::move(created).value();

  Result<SearchReport> report = engine.search();
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  const SearchResult& r = report.value().result;
  EXPECT_EQ(r.best_arch.num_positions(), cfg.num_positions);
  EXPECT_GT(r.best_objective, 0.0);
  EXPECT_LT(r.best_latency_ms, engine.reference_latency_ms());
  EXPECT_FALSE(r.history.empty());
  EXPECT_GT(r.latency_queries, 0);
  EXPECT_FALSE(report.value().visualization.empty());
}

TEST(Engine, RandomStrategyRespectsBudgetAndConstraint) {
  EngineConfig cfg = EngineConfig::tiny();
  cfg.strategy = "random";
  cfg.constrain_to_reference = true;
  Result<Engine> created = Engine::create(cfg);
  ASSERT_TRUE(created.ok()) << created.status().to_string();
  Result<SearchReport> report = created.value().search();
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  const SearchResult& r = report.value().result;
  EXPECT_EQ(r.latency_queries,
            cfg.population + cfg.iterations * (cfg.population / 2));
  EXPECT_GT(r.best_objective, 0.0);
  EXPECT_FALSE(r.history.empty());
}

TEST(EvalContext, PersistedEvalCacheWarmsTheNextRun) {
  // EngineConfig::eval_cache_path: the first run's candidate scores are
  // written at context destruction; a second, identical run loads them and
  // serves its (random-strategy) revisits entirely from the warm cache —
  // with identical results, since a hit replays the stored score.
  EngineConfig cfg = EngineConfig::tiny();
  cfg.strategy = "random";
  // The random strategy memoises through the cache on the batch path only
  // (the serial path must preserve its historical shared RNG stream), so
  // pin a pool width > 1 for deterministic warm hits on any host.
  cfg.num_threads = 2;
  cfg.eval_cache_path = ::testing::TempDir() + "api_eval_cache_warm.txt";
  std::remove(cfg.eval_cache_path.c_str());

  SearchResult cold, warm;
  std::int64_t cold_misses = 0, warm_misses = 0;
  {
    Result<Engine> created = Engine::create(cfg);
    ASSERT_TRUE(created.ok()) << created.status().to_string();
    Result<SearchReport> report = created.value().search();
    ASSERT_TRUE(report.ok()) << report.status().to_string();
    cold = report.value().result;
    cold_misses = cold.eval_cache_misses;
  }  // context destroyed -> cache saved
  {
    Result<Engine> created = Engine::create(cfg);
    ASSERT_TRUE(created.ok()) << created.status().to_string();
    Result<SearchReport> report = created.value().search();
    ASSERT_TRUE(report.ok()) << report.status().to_string();
    warm = report.value().result;
    warm_misses = warm.eval_cache_misses;
  }
  EXPECT_GT(cold_misses, 0);
  EXPECT_LT(warm_misses, cold_misses);  // warm start: revisits are hits
  EXPECT_GT(warm.eval_cache_hits, 0);
  // Persisted cache entries carry the canonical genome (see
  // hgnas::EvalCache::save), so the warm winner is the canonical form of
  // the cold one — the execution-identical architecture, same score.
  EXPECT_EQ(hgnas::canonicalize(warm.best_arch),
            hgnas::canonicalize(cold.best_arch));
  EXPECT_DOUBLE_EQ(warm.best_objective, cold.best_objective);
  EXPECT_DOUBLE_EQ(warm.best_latency_ms, cold.best_latency_ms);
  std::remove(cfg.eval_cache_path.c_str());
}

TEST(Engine, TrainMaterialisesAnArch) {
  EngineConfig cfg = EngineConfig::tiny();
  cfg.train_epochs = 2;
  Result<Engine> created = Engine::create(cfg);
  ASSERT_TRUE(created.ok()) << created.status().to_string();
  Engine engine = std::move(created).value();
  const Result<TrainReport> report = engine.train(engine.sample_arch());
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_GE(report.value().overall_acc, 0.0);
  EXPECT_LE(report.value().overall_acc, 1.0);
  EXPECT_GT(report.value().param_mb, 0.0);
}

TEST(Engine, ExportImportRoundTrip) {
  Result<Engine> created = Engine::create(EngineConfig::tiny());
  ASSERT_TRUE(created.ok()) << created.status().to_string();
  Engine engine = std::move(created).value();

  // Serialisation round-trips exactly on canonical architectures.
  const Arch arch = hgnas::canonicalize(engine.sample_arch());
  const Result<std::string> text = engine.export_arch(arch);
  ASSERT_TRUE(text.ok()) << text.status().to_string();
  const Result<Arch> back = engine.import_arch(text.value());
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_EQ(back.value(), arch);

  // Malformed text is INVALID_ARGUMENT, not a throw.
  const Result<Arch> bad = engine.import_arch("not an architecture");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  // File round-trip.
  const std::string path = "/tmp/hg_api_roundtrip.arch";
  ASSERT_TRUE(engine.save_arch(path, arch).ok());
  const Result<Arch> loaded = engine.load_arch(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded.value(), arch);
  EXPECT_EQ(engine.load_arch("/tmp/does-not-exist.arch").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(Engine, PredictorEvaluatorTrainsAndReportsMetrics) {
  EngineConfig cfg = EngineConfig::tiny();
  cfg.evaluator = "predictor";
  cfg.predictor_samples = 40;
  cfg.predictor_epochs = 5;
  Result<Engine> created = Engine::create(cfg);
  ASSERT_TRUE(created.ok()) << created.status().to_string();
  Engine engine = std::move(created).value();

  const Result<LatencyReport> lat =
      engine.predict_latency(engine.sample_arch());
  ASSERT_TRUE(lat.ok()) << lat.status().to_string();
  EXPECT_GE(lat.value().latency_ms, 0.0);

  const Result<PredictorReport> metrics = engine.evaluate_predictor(20, 77);
  ASSERT_TRUE(metrics.ok()) << metrics.status().to_string();
  EXPECT_GT(metrics.value().mape, 0.0);

  // Metrics are unavailable without a trained predictor.
  Result<Engine> oracle = Engine::create(EngineConfig::tiny());
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(oracle.value().evaluate_predictor(20, 77).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(EvalContext, SharedAcrossEnginesFitsThePredictorOnce) {
  EngineConfig cfg = EngineConfig::tiny();
  cfg.evaluator = "predictor";
  cfg.predictor_samples = 40;
  cfg.predictor_epochs = 5;
  Result<std::shared_ptr<EvalContext>> ctx = EvalContext::create(cfg);
  ASSERT_TRUE(ctx.ok()) << ctx.status().to_string();
  // Creation resolved (and fitted) the config's evaluator eagerly.
  EXPECT_EQ(ctx.value()->evaluator_builds(), 1);

  Result<Engine> a = Engine::create(cfg, ctx.value());
  ASSERT_TRUE(a.ok()) << a.status().to_string();
  Result<Engine> b = Engine::create(cfg, ctx.value());
  ASSERT_TRUE(b.ok()) << b.status().to_string();
  // Neither engine triggered a second fit...
  EXPECT_EQ(ctx.value()->evaluator_builds(), 1);
  // ...so both answer latency queries from the same fitted predictor.
  const Arch arch = a.value().sample_arch();
  const Result<LatencyReport> la = a.value().predict_latency(arch);
  const Result<LatencyReport> lb = b.value().predict_latency(arch);
  ASSERT_TRUE(la.ok() && lb.ok());
  EXPECT_DOUBLE_EQ(la.value().latency_ms, lb.value().latency_ms);

  // A different evaluator on the same context builds exactly one bundle
  // more and reuses the shared dataset / supernet / device.
  EngineConfig measured = cfg;
  measured.evaluator = "measured";
  Result<Engine> c = Engine::create(measured, ctx.value());
  ASSERT_TRUE(c.ok()) << c.status().to_string();
  EXPECT_EQ(ctx.value()->evaluator_builds(), 2);

  // Context-shaping fields must match the context's config.
  EngineConfig mismatched = cfg;
  mismatched.num_points = cfg.num_points * 2;
  Result<Engine> bad = Engine::create(mismatched, ctx.value());
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.status().message().find("num_points"), std::string::npos);
}

TEST(EvalContext, SecondSearchCanReuseTheTrainedSupernet) {
  EngineConfig cfg = EngineConfig::tiny();
  cfg.strategy = "random";
  Result<std::shared_ptr<EvalContext>> ctx = EvalContext::create(cfg);
  ASSERT_TRUE(ctx.ok()) << ctx.status().to_string();

  Result<Engine> first = Engine::create(cfg, ctx.value());
  ASSERT_TRUE(first.ok()) << first.status().to_string();
  Result<SearchReport> r1 = first.value().search();
  ASSERT_TRUE(r1.ok()) << r1.status().to_string();

  // train_supernet = false: the second search rides the weights (and any
  // cache entries) the first one produced instead of retraining.
  EngineConfig follow = cfg;
  follow.train_supernet = false;
  Result<Engine> second = Engine::create(follow, ctx.value());
  ASSERT_TRUE(second.ok()) << second.status().to_string();
  Result<SearchReport> r2 = second.value().search();
  ASSERT_TRUE(r2.ok()) << r2.status().to_string();
  // No supernet training happened: the simulated clock only advanced by
  // query/probe costs, never by training epochs.
  EXPECT_LT(r2.value().result.total_sim_time_s,
            r1.value().result.total_sim_time_s);
}

TEST(Engine, ProfileBaselineMatchesDirectLowering) {
  Result<Engine> created = Engine::create(EngineConfig::tiny());
  ASSERT_TRUE(created.ok()) << created.status().to_string();
  Engine engine = std::move(created).value();

  // The facade's "dgcnn" must be the exact cost-model numbers of a direct
  // baselines:: lowering at the engine's deployment workload.
  const Workload& w = engine.deploy_workload();
  baselines::DgcnnConfig dgcnn_cfg;
  dgcnn_cfg.k = w.k;
  dgcnn_cfg.num_classes = w.num_classes;
  const hw::Trace direct = baselines::Dgcnn::trace(dgcnn_cfg, w.num_points);

  const Result<ProfileReport> report = engine.profile_baseline("dgcnn");
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_DOUBLE_EQ(report.value().latency_ms,
                   engine.device().latency_ms(direct));
  EXPECT_DOUBLE_EQ(report.value().peak_memory_mb,
                   engine.device().peak_memory_mb(direct));
  EXPECT_DOUBLE_EQ(report.value().param_mb, direct.param_mb);
  // Category fractions sum to 1 on a non-empty trace.
  double total = 0.0;
  for (double f : report.value().category_fraction) total += f;
  EXPECT_NEAR(total, 1.0, 1e-9);

  // Aliases resolve; unknown names are NOT_FOUND listing the known ones.
  EXPECT_TRUE(engine.profile_baseline("dgcnn-reuse4").ok());
  const Result<ProfileReport> unknown = engine.profile_baseline("pointnet");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
  EXPECT_NE(unknown.status().message().find("tailor"), std::string::npos);
  EXPECT_FALSE(Registry::global().baseline_names().empty());
}

TEST(Engine, ProfileBaselineZooEntryAndExplicitWorkload) {
  Result<Engine> created = Engine::create(EngineConfig::tiny());
  ASSERT_TRUE(created.ok()) << created.status().to_string();
  Engine engine = std::move(created).value();

  Workload w = engine.deploy_workload();
  w.num_points = 512;
  const Result<ProfileReport> ours = engine.profile_baseline("rtx-fast", w);
  const Result<ProfileReport> dgcnn = engine.profile_baseline("dgcnn", w);
  ASSERT_TRUE(ours.ok() && dgcnn.ok());
  EXPECT_GT(ours.value().latency_ms, 0.0);
  // The Fig. 10 RTX design is faster than DGCNN on its own platform.
  EXPECT_LT(ours.value().latency_ms, dgcnn.value().latency_ms);
  // Reference numbers are recomputed at the explicit workload: for DGCNN
  // itself the speedup is 1 (its lowering agrees op-for-op with the
  // calibration reference).
  EXPECT_NEAR(dgcnn.value().speedup_vs_reference, 1.0, 1e-6);

  Workload bad = engine.deploy_workload();
  bad.k = bad.num_points;
  EXPECT_EQ(engine.profile_baseline("dgcnn", bad).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(Engine, TrainBaselineRuns) {
  EngineConfig cfg = EngineConfig::tiny();
  cfg.train_epochs = 2;
  Result<Engine> created = Engine::create(cfg);
  ASSERT_TRUE(created.ok()) << created.status().to_string();
  Engine engine = std::move(created).value();
  // Tailor is the cheapest baseline to materialise at CPU scale.
  const Result<TrainReport> report = engine.train_baseline("tailor");
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_GE(report.value().overall_acc, 0.0);
  EXPECT_LE(report.value().overall_acc, 1.0);
  EXPECT_GT(report.value().param_mb, 0.0);
  EXPECT_EQ(engine.train_baseline("resnet").status().code(),
            StatusCode::kNotFound);
}

TEST(Engine, SearchReportsInLoopParetoFrontier) {
  EngineConfig cfg = EngineConfig::tiny();
  cfg.constrain_to_reference = true;
  Result<Engine> created = Engine::create(cfg);
  ASSERT_TRUE(created.ok()) << created.status().to_string();
  Engine engine = std::move(created).value();
  Result<SearchReport> report = engine.search();
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  const SearchResult& r = report.value().result;

  ASSERT_FALSE(r.frontier.empty());
  EXPECT_GT(r.frontier_candidates, 0);
  EXPECT_FALSE(report.value().frontier_table.empty());
  // Ascending latency, strictly ascending accuracy — i.e. an anti-chain.
  for (std::size_t i = 1; i < r.frontier.size(); ++i) {
    EXPECT_GT(r.frontier[i].latency_ms, r.frontier[i - 1].latency_ms);
    EXPECT_GT(r.frontier[i].accuracy, r.frontier[i - 1].accuracy);
  }
  // The frontier is its own Pareto front (no member dominates another).
  EXPECT_EQ(hgnas::pareto_front(r.frontier).size(), r.frontier.size());
  // The Eq.-(3) winner is on the frontier: nothing scored dominated it
  // (a dominator would have scored strictly higher).
  bool winner_present = false;
  for (const auto& p : r.frontier)
    if (p.accuracy == r.best_supernet_acc &&
        p.latency_ms == r.best_latency_ms)
      winner_present = true;
  EXPECT_TRUE(winner_present);
}

TEST(Registry, CustomStrategyPluggableByName) {
  // The seam later PRs plug into: register a strategy, select it by name.
  Registry& reg = Registry::global();
  const Status first = reg.register_strategy(
      "fastest-random", [](const StrategyRequest& req) {
        hgnas::SearchResult r;
        r.best_arch = hgnas::random_arch(req.cfg.space, *req.rng);
        const hgnas::LatencyEval lat = req.latency(r.best_arch);
        r.best_latency_ms = lat.latency_ms;
        r.latency_queries = 1;
        r.history.push_back({0.0, 0.0});
        return Result<hgnas::SearchResult>(std::move(r));
      });
  // Another test instance may already have registered it; both outcomes
  // are deterministic statuses.
  EXPECT_TRUE(first.ok() ||
              first.code() == StatusCode::kInvalidArgument);

  EngineConfig cfg = EngineConfig::tiny();
  cfg.strategy = "fastest-random";
  Result<Engine> engine = Engine::create(cfg);
  ASSERT_TRUE(engine.ok()) << engine.status().to_string();
  Result<SearchReport> report = engine.value().search();
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_EQ(report.value().result.latency_queries, 1);
}

}  // namespace
}  // namespace hg::api
