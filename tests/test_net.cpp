// hg::net — the wire protocol and remote front end of serve::Service:
// codec round-trips, strict bounds-checked decoding (truncation / bit-flip
// fuzz, over raw sockets too), remote-vs-local bit-identical answers, and
// the queue-time semantics: per-request deadlines, bounded-queue
// back-pressure, disconnect cancellation, and the time-windowed predict
// coalescing that batches remote trickle traffic.
//
// Fault tolerance (protocol v2) is covered by the NetChaos / NetClient
// suites at the bottom: seeded transport-level fault injection
// (net/chaos.hpp) drives short I/O, mid-frame resets, header corruption
// and stalls through the retry/backoff path, with the invariant that
// every verb either answers bit-identically to local or fails with a
// clean typed Status — never a hang, crash, or torn frame.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/chaos.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "obs/trace.hpp"
#include "tensor/rng.hpp"

namespace hg::net {
namespace {

using namespace std::chrono_literals;

/// Seed for a fuzz loop: HG_FUZZ_SEED overrides `fallback` (to reproduce
/// a failure, or to explore fresh sequences in CI). Announced on stderr
/// up front so a crash report — including a sanitizer abort, which never
/// returns control to the test — still identifies the failing sequence.
std::uint64_t fuzz_seed(std::uint64_t fallback) {
  std::uint64_t seed = fallback;
  if (const char* env = std::getenv("HG_FUZZ_SEED");
      env != nullptr && *env != '\0')
    seed = std::strtoull(env, nullptr, 10);
  std::fprintf(stderr,
               "[fuzz] seed=%llu — reproduce any failure below with "
               "HG_FUZZ_SEED=%llu\n",
               static_cast<unsigned long long>(seed),
               static_cast<unsigned long long>(seed));
  return seed;
}

/// Oracle-evaluator config small enough to search in well under a second.
api::EngineConfig tiny_cfg() {
  api::EngineConfig cfg = api::EngineConfig::tiny();
  cfg.evaluator = "oracle";
  cfg.strategy = "random";
  cfg.iterations = 2;
  return cfg;
}

std::vector<api::Arch> sample_archs(const api::EngineConfig& cfg, int n) {
  auto probe = api::Engine::create(cfg);
  EXPECT_TRUE(probe.ok()) << probe.status().to_string();
  std::vector<api::Arch> archs;
  for (int i = 0; i < n; ++i) archs.push_back(probe.value().sample_arch());
  return archs;
}

/// Spin until the server's service has admitted `count` requests (it has
/// *received* them; they may still be queued).
void wait_for_requests(const Server& server, std::int64_t count) {
  for (int i = 0; i < 2000; ++i) {
    if (server.service()->stats().requests >= count) return;
    std::this_thread::sleep_for(1ms);
  }
  FAIL() << "server never saw " << count << " requests";
}

/// Spin until the service's queues are empty and a worker is busy (the
/// stall request has been dequeued and is running).
void wait_for_drain_into_worker(const Server& server) {
  for (int i = 0; i < 2000; ++i) {
    if (server.service()->stats().queue_depth == 0) return;
    std::this_thread::sleep_for(1ms);
  }
  FAIL() << "queue never drained into a worker";
}

// ---- codec round-trips -----------------------------------------------------

TEST(NetProtocol, HeaderRoundTripAndRejection) {
  FrameHeader h;
  h.type = static_cast<std::uint16_t>(FrameType::kPredictLatency);
  h.request_id = 0x0123456789abcdefULL;
  h.deadline_us = 42'000'000;
  h.payload_len = 1234;
  std::string bytes;
  encode_header(h, &bytes);
  ASSERT_EQ(bytes.size(), kHeaderSize);

  FrameHeader back;
  ASSERT_TRUE(decode_header(bytes.data(), bytes.size(), &back));
  EXPECT_EQ(back.magic, kMagic);
  EXPECT_EQ(back.version, kProtocolVersion);
  EXPECT_EQ(back.type, h.type);
  EXPECT_EQ(back.request_id, h.request_id);
  EXPECT_EQ(back.deadline_us, h.deadline_us);
  EXPECT_EQ(back.payload_len, h.payload_len);

  // Too short.
  EXPECT_FALSE(decode_header(bytes.data(), kHeaderSize - 1, &back));
  // Bad magic.
  std::string bad = bytes;
  bad[0] = static_cast<char>(bad[0] ^ 0x01);
  EXPECT_FALSE(decode_header(bad.data(), bad.size(), &back));
  // Unknown version.
  bad = bytes;
  bad[4] = static_cast<char>(bad[4] + 1);
  EXPECT_FALSE(decode_header(bad.data(), bad.size(), &back));
  // Oversized payload length.
  FrameHeader huge = h;
  huge.payload_len = kMaxPayloadBytes + 1;
  std::string huge_bytes;
  encode_header(huge, &huge_bytes);
  EXPECT_FALSE(decode_header(huge_bytes.data(), huge_bytes.size(), &back));
}

TEST(NetProtocol, ArchAndConfigRoundTrip) {
  const api::EngineConfig cfg = tiny_cfg();
  for (const api::Arch& arch : sample_archs(cfg, 4)) {
    Writer w;
    encode_arch(arch, &w);
    Reader r(w.bytes());
    api::Arch back;
    ASSERT_TRUE(decode_arch(&r, &back));
    EXPECT_TRUE(r.exhausted());
    EXPECT_EQ(arch, back);
  }

  api::EngineConfig full = tiny_cfg();
  full.device = "rtx3080";
  full.strategy = "multistage";
  full.latency_budget_ms = 3.25;
  full.memory_budget_mb = std::nullopt;
  full.model_size_budget_mb = 0.5;
  full.latency_scale_ms = 7.5;
  full.constrain_to_reference = true;
  full.train_supernet = false;
  full.eval_cache_path = "warm \"cache\".txt";
  full.seed = 0xfeedfaceULL;
  Writer w;
  encode_engine_config(full, &w);
  Reader r(w.bytes());
  api::EngineConfig back;
  ASSERT_TRUE(decode_engine_config(&r, &back));
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(back.device, full.device);
  EXPECT_EQ(back.strategy, full.strategy);
  EXPECT_EQ(back.latency_budget_ms, full.latency_budget_ms);
  EXPECT_EQ(back.memory_budget_mb, full.memory_budget_mb);
  EXPECT_EQ(back.model_size_budget_mb, full.model_size_budget_mb);
  EXPECT_EQ(back.latency_scale_ms, full.latency_scale_ms);
  EXPECT_EQ(back.constrain_to_reference, full.constrain_to_reference);
  EXPECT_EQ(back.train_supernet, full.train_supernet);
  EXPECT_EQ(back.eval_cache_path, full.eval_cache_path);
  EXPECT_EQ(back.seed, full.seed);
  EXPECT_EQ(back.train_lr, full.train_lr);
  EXPECT_EQ(api::context_compatible(full, back).to_string(), "OK");
}

TEST(NetProtocol, StatusAndReportRoundTrip) {
  for (const api::Status& status :
       {api::Status::Ok(), api::Status::InvalidArgument("bad \n input"),
        api::Status::NotFound("no such device"),
        api::Status::DeadlineExceeded("expired"),
        api::Status::ResourceExhausted("queue full"),
        api::Status::Cancelled("peer gone"),
        api::Status::Unavailable("broken pipe")}) {
    Writer w;
    encode_status(status, &w);
    Reader r(w.bytes());
    api::Status back;
    ASSERT_TRUE(decode_status(&r, &back));
    EXPECT_TRUE(r.exhausted());
    EXPECT_EQ(back, status);
  }

  api::ProfileReport prof;
  prof.latency_ms = 12.5;
  prof.peak_memory_mb = 3.25;
  prof.energy_mj = 0.125;
  prof.param_mb = 1.0 / 3.0;
  prof.oom = true;
  prof.breakdown = "Sample 40% | Aggregate 30%";
  prof.per_op_table = "op\tms\nknn\t7.5\n";
  for (std::size_t i = 0; i < prof.category_fraction.size(); ++i)
    prof.category_fraction[i] = 0.1 * static_cast<double>(i + 1);
  prof.reference_latency_ms = 21.0;
  prof.speedup_vs_reference = 1.68;
  prof.search_cache_hits = 17;
  prof.search_cache_misses = 4;
  Writer w;
  encode_profile_report(prof, &w);
  Reader r(w.bytes());
  api::ProfileReport back;
  ASSERT_TRUE(decode_profile_report(&r, &back));
  EXPECT_TRUE(r.exhausted());
  Writer again;
  encode_profile_report(back, &again);
  EXPECT_EQ(w.bytes(), again.bytes());  // bit-identical re-encoding
}

TEST(NetProtocol, PredictBatchReplyCarriesPerElementResults) {
  api::LatencyReport rep;
  rep.latency_ms = 4.5;
  std::vector<api::Result<api::LatencyReport>> results;
  results.emplace_back(rep);
  results.emplace_back(api::Status::InvalidArgument("bad genome"));
  results.emplace_back(rep);
  const std::string payload = encode_predict_batch_reply(results);

  Reader r(payload);
  std::vector<api::Result<api::LatencyReport>> back;
  ASSERT_TRUE(decode_predict_batch_reply(&r, &back));
  ASSERT_EQ(back.size(), 3u);
  EXPECT_TRUE(back[0].ok());
  EXPECT_DOUBLE_EQ(back[0].value().latency_ms, 4.5);
  ASSERT_FALSE(back[1].ok());
  EXPECT_EQ(back[1].status().code(), api::StatusCode::kInvalidArgument);
  EXPECT_TRUE(back[2].ok());
}

// ---- decoder fuzz ----------------------------------------------------------

/// Every strict prefix of a valid payload must fail to decode — cleanly,
/// without crashing or reading past the buffer (ASAN-checked in CI).
template <typename DecodeFn>
void expect_all_truncations_fail(const std::string& payload,
                                 DecodeFn decode) {
  for (std::size_t len = 0; len < payload.size(); ++len) {
    Reader r(payload.data(), len);
    const bool decoded = decode(&r);
    EXPECT_FALSE(decoded && r.exhausted())
        << "truncated payload decoded at length " << len;
  }
}

TEST(NetProtocolFuzz, TruncatedPayloadsNeverDecode) {
  const api::EngineConfig cfg = tiny_cfg();
  const std::vector<api::Arch> archs = sample_archs(cfg, 2);

  Writer search;
  encode_search_request(std::make_optional(cfg), &search);
  expect_all_truncations_fail(search.bytes(), [](Reader* r) {
    std::optional<api::EngineConfig> out;
    return decode_search_request(r, &out);
  });

  Writer batch;
  encode_predict_batch_request(archs, &batch);
  expect_all_truncations_fail(batch.bytes(), [](Reader* r) {
    std::vector<api::Arch> out;
    return decode_predict_batch_request(r, &out);
  });

  Writer baseline;
  encode_profile_baseline_request("dgcnn", api::Workload{}, &baseline);
  expect_all_truncations_fail(baseline.bytes(), [](Reader* r) {
    std::string name;
    std::optional<api::Workload> wl;
    return decode_profile_baseline_request(r, &name, &wl);
  });

  api::ProfileReport prof;
  prof.breakdown = "some text";
  Writer reply;
  encode_status(api::Status::Ok(), &reply);
  encode_profile_report(prof, &reply);
  expect_all_truncations_fail(reply.bytes(), [](Reader* r) {
    api::Result<api::ProfileReport> out = api::Status::Internal("seed");
    return decode_reply<api::ProfileReport>(
        r,
        [](Reader* rr, api::ProfileReport* p) {
          return decode_profile_report(rr, p);
        },
        &out);
  });
}

TEST(NetProtocolFuzz, BitFlippedPayloadsNeverCrash) {
  // Deterministic single-bit flips over a structured payload: decode must
  // either fail cleanly or produce *some* value (a flipped enum field is
  // structurally valid by design — semantic validation is the engine's
  // job). The assertion is the absence of crashes / over-reads.
  const api::EngineConfig cfg = tiny_cfg();
  Writer w;
  encode_search_request(std::make_optional(cfg), &w);
  const std::string payload = w.bytes();

  Rng rng(fuzz_seed(1234));
  for (int trial = 0; trial < 400; ++trial) {
    std::string flipped = payload;
    const std::size_t byte = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(payload.size()) - 1));
    const int bit = static_cast<int>(rng.uniform_int(0, 7));
    flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
    Reader r(flipped);
    std::optional<api::EngineConfig> out;
    const bool decoded = decode_search_request(&r, &out) && r.exhausted();
    (void)decoded;  // either outcome is fine; surviving is the test
  }

  // Random garbage of assorted sizes.
  for (int trial = 0; trial < 200; ++trial) {
    const std::int64_t len = rng.uniform_int(0, 160);
    std::string garbage;
    for (std::int64_t i = 0; i < len; ++i)
      garbage.push_back(static_cast<char>(rng.uniform_int(0, 255)));
    Reader r(garbage);
    std::vector<api::Arch> out;
    (void)decode_predict_batch_request(&r, &out);
  }
}

TEST(NetProtocol, StatsSnapshotRoundTrip) {
  obs::Snapshot snap;
  snap["net.frames_received"] = 12;
  snap["serve.requests"] = 3;
  snap["serve.queue_wait_us.p99_us"] = 114687;
  snap["weird name \"with\" quotes\n"] = -1;  // names are opaque strings
  Writer w;
  encode_stats_snapshot(snap, &w);
  Reader r(w.bytes());
  obs::Snapshot out;
  ASSERT_TRUE(decode_stats_snapshot(&r, &out));
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(out, snap);
}

TEST(NetProtocolFuzz, CorruptStatsPayloadsNeverCrash) {
  obs::Snapshot snap;
  snap["serve.requests"] = 41;
  snap["net.replies_sent"] = 40;
  snap["serve.service_time_us.p50_us"] = 255;
  Writer w;
  encode_stats_snapshot(snap, &w);
  const std::string payload = w.bytes();

  expect_all_truncations_fail(payload, [](Reader* r) {
    obs::Snapshot out;
    return decode_stats_snapshot(r, &out);
  });

  // Bit flips: a corrupt count / length either fails cleanly or decodes
  // to some map — never over-reads (ASAN) or over-allocates (the decoder
  // bounds count against the max payload).
  Rng rng(fuzz_seed(2024));
  for (int trial = 0; trial < 400; ++trial) {
    std::string flipped = payload;
    const std::size_t byte = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(payload.size()) - 1));
    const int bit = static_cast<int>(rng.uniform_int(0, 7));
    flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
    Reader r(flipped);
    obs::Snapshot out;
    (void)decode_stats_snapshot(&r, &out);
  }
}

// ---- remote vs local -------------------------------------------------------

TEST(NetServer, RemoteAnswersBitIdenticalToInProcess) {
  const api::EngineConfig cfg = tiny_cfg();
  const std::vector<api::Arch> archs = sample_archs(cfg, 6);

  ServerConfig server_cfg;
  server_cfg.service.num_workers = 2;
  auto server = Server::create(cfg, server_cfg);
  ASSERT_TRUE(server.ok()) << server.status().to_string();
  ASSERT_GT(server.value()->port(), 0);
  auto client = Client::connect("127.0.0.1", server.value()->port());
  ASSERT_TRUE(client.ok()) << client.status().to_string();
  Client& remote = client.value();

  // The in-process reference: a service of its own (same config, fresh
  // context, same deterministic seed), driven through the same verb
  // sequence so exclusive requests consume the context RNG identically.
  serve::ServiceConfig local_cfg;
  local_cfg.num_workers = 1;
  auto local = serve::Service::create(cfg, local_cfg);
  ASSERT_TRUE(local.ok()) << local.status().to_string();
  auto engine = api::Engine::create(cfg, local.value()->context());
  ASSERT_TRUE(engine.ok());

  // search #1 (exclusive): full SearchReport must match bit-for-bit.
  api::Result<api::SearchReport> remote_search = remote.search();
  ASSERT_TRUE(remote_search.ok()) << remote_search.status().to_string();
  api::Result<api::SearchReport> local_search =
      local.value()->submit(serve::SearchRequest{}).get();
  ASSERT_TRUE(local_search.ok());
  {
    Writer a, b;
    encode_search_report(remote_search.value(), &a);
    encode_search_report(local_search.value(), &b);
    EXPECT_EQ(a.bytes(), b.bytes()) << "remote search diverged from local";
  }
  EXPECT_EQ(remote_search.value().result.best_arch,
            local_search.value().result.best_arch);

  // Pure verbs: lone predictions, a batch, profiles, a baseline.
  for (const api::Arch& a : archs) {
    api::Result<api::LatencyReport> r1 = remote.predict_latency(a);
    api::Result<api::LatencyReport> r2 = engine.value().predict_latency(a);
    ASSERT_TRUE(r1.ok() && r2.ok());
    EXPECT_DOUBLE_EQ(r1.value().latency_ms, r2.value().latency_ms);
    EXPECT_DOUBLE_EQ(r1.value().peak_memory_mb, r2.value().peak_memory_mb);

    api::Result<api::ProfileReport> p1 = remote.profile(a);
    api::Result<api::ProfileReport> p2 = engine.value().profile(a);
    ASSERT_TRUE(p1.ok() && p2.ok());
    Writer e1, e2;
    encode_profile_report(p1.value(), &e1);
    encode_profile_report(p2.value(), &e2);
    EXPECT_EQ(e1.bytes(), e2.bytes());
  }
  {
    api::Result<std::vector<api::LatencyReport>> b1 =
        remote.predict_batch(archs);
    api::Result<std::vector<api::LatencyReport>> b2 =
        engine.value().predict_batch(archs);
    ASSERT_TRUE(b1.ok() && b2.ok());
    ASSERT_EQ(b1.value().size(), b2.value().size());
    for (std::size_t i = 0; i < b1.value().size(); ++i)
      EXPECT_DOUBLE_EQ(b1.value()[i].latency_ms, b2.value()[i].latency_ms);
  }
  {
    api::Result<api::ProfileReport> r1 = remote.profile_baseline("dgcnn");
    api::Result<api::ProfileReport> r2 =
        engine.value().profile_baseline("dgcnn");
    ASSERT_TRUE(r1.ok() && r2.ok());
    EXPECT_DOUBLE_EQ(r1.value().latency_ms, r2.value().latency_ms);
  }

  // train_baseline then search #2 with a per-request config override:
  // the exclusive FIFO consumes the context RNG in the same order on
  // both sides.
  {
    api::Result<api::TrainReport> t1 = remote.train_baseline("tailor");
    api::Result<api::TrainReport> t2 =
        local.value()->submit(serve::TrainBaselineRequest{"tailor", {}}).get();
    ASSERT_TRUE(t1.ok()) << t1.status().to_string();
    ASSERT_TRUE(t2.ok());
    EXPECT_DOUBLE_EQ(t1.value().overall_acc, t2.value().overall_acc);
    EXPECT_DOUBLE_EQ(t1.value().param_mb, t2.value().param_mb);
  }
  {
    api::EngineConfig second = cfg;
    second.strategy = "random";
    second.train_supernet = false;
    api::Result<api::SearchReport> r1 = remote.search(second);
    api::Result<api::SearchReport> r2 =
        local.value()->submit(serve::SearchRequest{second, {}}).get();
    ASSERT_TRUE(r1.ok()) << r1.status().to_string();
    ASSERT_TRUE(r2.ok());
    Writer a, b;
    encode_search_report(r1.value(), &a);
    encode_search_report(r2.value(), &b);
    EXPECT_EQ(a.bytes(), b.bytes());
  }

  // Error relaying: unknown baseline comes back NOT_FOUND, same as local.
  {
    api::Result<api::ProfileReport> bad = remote.profile_baseline("nope");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(),
              engine.value().profile_baseline("nope").status().code());
  }
}

TEST(NetServer, RemoteStatsMatchLocalCounters) {
  const api::EngineConfig cfg = tiny_cfg();
  const std::vector<api::Arch> archs = sample_archs(cfg, 4);

  ServerConfig server_cfg;
  server_cfg.service.num_workers = 2;
  auto server = Server::create(cfg, server_cfg);
  ASSERT_TRUE(server.ok()) << server.status().to_string();
  auto client = Client::connect("127.0.0.1", server.value()->port());
  ASSERT_TRUE(client.ok()) << client.status().to_string();
  Client& remote = client.value();

  ASSERT_TRUE(remote.ping().ok());
  for (const api::Arch& a : archs)
    ASSERT_TRUE(remote.predict_latency(a).ok());

  api::Result<obs::Snapshot> scraped = remote.stats();
  ASSERT_TRUE(scraped.ok()) << scraped.status().to_string();
  const obs::Snapshot& snap = scraped.value();

  // One registry, two views: the wire snapshot must agree with the local
  // structs field for field (requests are quiesced — every verb above
  // completed before the scrape).
  const serve::ServiceStats local = server.value()->service()->stats();
  EXPECT_EQ(snap.at("serve.requests"), local.requests);
  EXPECT_EQ(snap.at("serve.predict_requests"), local.predict_requests);
  EXPECT_EQ(snap.at("serve.predict_batches"), local.predict_batches);
  EXPECT_EQ(snap.at("serve.pings"), local.pings);
  EXPECT_EQ(snap.at("serve.queue_depth"), 0);
  EXPECT_EQ(snap.at("serve.service_time_us.p99_us"),
            local.service_time_p99_us);
  EXPECT_GT(snap.at("serve.service_time_us.count"), 0);

  // net.* counters live in the same registry. The snapshot was taken
  // after the kStats frame arrived but before its reply went out.
  const NetStats net = server.value()->net_stats();
  EXPECT_EQ(snap.at("net.connections_opened"), net.connections_opened);
  EXPECT_EQ(snap.at("net.frames_received"), net.frames_received);
  EXPECT_EQ(snap.at("net.replies_sent"), net.replies_sent - 1);
  EXPECT_EQ(snap.at("net.frames_rejected"), 0);

  // A second scrape counts the first one's reply.
  api::Result<obs::Snapshot> again = remote.stats();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().at("net.replies_sent"), net.replies_sent);
}

TEST(NetServer, WireRequestIdBecomesServerTraceId) {
  // The frame header's request id is the trace id of every server-side
  // span for that request: socket receipt ("net.request"), queue wait and
  // execution ("serve.*") are all attributable to the originating call.
  obs::TraceCollector::global().stop();
  obs::TraceCollector::global().start();

  const api::EngineConfig cfg = tiny_cfg();
  const std::vector<api::Arch> archs = sample_archs(cfg, 1);
  ServerConfig server_cfg;
  server_cfg.service.num_workers = 1;
  auto server = Server::create(cfg, server_cfg);
  ASSERT_TRUE(server.ok()) << server.status().to_string();
  auto client = Client::connect("127.0.0.1", server.value()->port());
  ASSERT_TRUE(client.ok()) << client.status().to_string();

  api::Result<std::uint64_t> id =
      client.value().send_predict_latency(archs[0]);
  ASSERT_TRUE(id.ok()) << id.status().to_string();
  ASSERT_TRUE(client.value().wait_predict_latency(id.value()).ok());

  // Spans are recorded after the worker fulfills the promise (the span
  // covers the full execution, so recording necessarily trails the
  // reply), so the client can get here a beat before the execution span
  // lands in the collector — poll briefly instead of reading once.
  bool saw_net = false, saw_queue_wait = false, saw_exec = false;
  const auto poll_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  do {
    for (const obs::TraceEvent& ev :
         obs::TraceCollector::global().events()) {
      if (ev.trace_id != id.value()) continue;
      if (ev.name == "net.request") saw_net = true;
      if (ev.name == "serve.queue_wait") saw_queue_wait = true;
      if (ev.name == "serve.pure" || ev.name == "serve.predict_batch")
        saw_exec = true;
    }
    if (saw_net && saw_queue_wait && saw_exec) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  } while (std::chrono::steady_clock::now() < poll_deadline);
  obs::TraceCollector::global().stop();
  EXPECT_TRUE(saw_net) << "no net.request span under the wire request id";
  EXPECT_TRUE(saw_queue_wait)
      << "no serve.queue_wait span under the wire request id";
  EXPECT_TRUE(saw_exec) << "no execution span under the wire request id";
}

// ---- queue-time semantics --------------------------------------------------

TEST(NetServer, DeadlineExpiresQueuedRequestWithoutRunning) {
  const api::EngineConfig cfg = tiny_cfg();
  ServerConfig server_cfg;
  server_cfg.service.num_workers = 1;  // one worker: a search stalls all
  auto server = Server::create(cfg, server_cfg);
  ASSERT_TRUE(server.ok()) << server.status().to_string();
  auto client = Client::connect("127.0.0.1", server.value()->port());
  ASSERT_TRUE(client.ok());
  Client& remote = client.value();

  const std::vector<api::Arch> archs = sample_archs(cfg, 1);
  auto search_id = remote.send_search();
  ASSERT_TRUE(search_id.ok());
  // 1 µs of queue budget: expired long before the search lets it run.
  auto doomed_id = remote.send_profile(archs[0], /*deadline_us=*/1);
  ASSERT_TRUE(doomed_id.ok());
  // Generous budget: survives the queue wait.
  auto fine_id = remote.send_profile(archs[0], /*deadline_us=*/60'000'000);
  ASSERT_TRUE(fine_id.ok());

  api::Result<api::ProfileReport> doomed =
      remote.wait_profile(doomed_id.value());
  ASSERT_FALSE(doomed.ok());
  EXPECT_EQ(doomed.status().code(), api::StatusCode::kDeadlineExceeded);
  api::Result<api::ProfileReport> fine = remote.wait_profile(fine_id.value());
  EXPECT_TRUE(fine.ok()) << fine.status().to_string();
  EXPECT_TRUE(remote.wait_search(search_id.value()).ok());

  EXPECT_GE(server.value()->service()->stats().deadline_expired, 1);
}

TEST(NetServer, DeadlineExpiresMidRunWhenServerSlices) {
  // With generation slicing enabled on the server, a deadline is honored
  // even after the search has STARTED: the worker checks it between
  // steps and aborts the partially-advanced run. The client just sees a
  // clean DEADLINE_EXCEEDED over the wire.
  const api::EngineConfig cfg = tiny_cfg();
  ServerConfig server_cfg;
  server_cfg.service.num_workers = 1;
  server_cfg.service.exclusive_slice_ms = 1;
  auto server = Server::create(cfg, server_cfg);
  ASSERT_TRUE(server.ok()) << server.status().to_string();
  auto client = Client::connect("127.0.0.1", server.value()->port());
  ASSERT_TRUE(client.ok());
  Client& remote = client.value();

  // Per-request override: a search far too long for its 300 ms budget.
  api::EngineConfig huge = cfg;
  huge.iterations = 500;
  auto search_id = remote.send_search(huge, /*deadline_us=*/300'000);
  ASSERT_TRUE(search_id.ok());
  // Confirm the search was actually dispatched (not expired while queued)
  // before the deadline can fire.
  bool started = false;
  for (int i = 0; i < 2000 && !started; ++i) {
    started = server.value()->service()->stats().exclusive_slices > 0;
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_TRUE(started) << "search never started slicing";

  api::Result<api::SearchReport> r = remote.wait_search(search_id.value());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), api::StatusCode::kDeadlineExceeded);
  EXPECT_GE(server.value()->service()->stats().deadline_expired, 1);

  // The worker is free again and the server keeps serving.
  const std::vector<api::Arch> archs = sample_archs(cfg, 1);
  auto fine_id = remote.send_profile(archs[0]);
  ASSERT_TRUE(fine_id.ok());
  EXPECT_TRUE(remote.wait_profile(fine_id.value()).ok());
}

TEST(NetServer, BoundedQueueRejectsOverLimitSubmissions) {
  const api::EngineConfig cfg = tiny_cfg();
  ServerConfig server_cfg;
  server_cfg.service.num_workers = 1;
  server_cfg.service.max_queue_depth = 2;
  auto server = Server::create(cfg, server_cfg);
  ASSERT_TRUE(server.ok()) << server.status().to_string();
  auto client = Client::connect("127.0.0.1", server.value()->port());
  ASSERT_TRUE(client.ok());
  Client& remote = client.value();

  const std::vector<api::Arch> archs = sample_archs(cfg, 1);
  auto search_id = remote.send_search();
  ASSERT_TRUE(search_id.ok());
  wait_for_requests(*server.value(), 1);
  wait_for_drain_into_worker(*server.value());  // search occupies the worker

  // With the worker stalled, only max_queue_depth submissions fit; the
  // rest must bounce immediately with RESOURCE_EXHAUSTED.
  constexpr int kFlood = 8;
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < kFlood; ++i) {
    auto id = remote.send_profile(archs[0]);
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  int ok = 0, rejected = 0;
  for (std::uint64_t id : ids) {
    api::Result<api::ProfileReport> r = remote.wait_profile(id);
    if (r.ok()) {
      ++ok;
    } else {
      EXPECT_EQ(r.status().code(), api::StatusCode::kResourceExhausted)
          << r.status().to_string();
      ++rejected;
    }
  }
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(rejected, kFlood - 2);
  EXPECT_TRUE(remote.wait_search(search_id.value()).ok());
  EXPECT_EQ(server.value()->service()->stats().rejected_requests,
            kFlood - 2);
}

TEST(NetServer, DisconnectCancelsThatConnectionsQueuedRequests) {
  const api::EngineConfig cfg = tiny_cfg();
  ServerConfig server_cfg;
  server_cfg.service.num_workers = 1;
  auto server = Server::create(cfg, server_cfg);
  ASSERT_TRUE(server.ok()) << server.status().to_string();

  const std::vector<api::Arch> archs = sample_archs(cfg, 1);
  {
    auto doomed = Client::connect("127.0.0.1", server.value()->port());
    ASSERT_TRUE(doomed.ok());
    ASSERT_TRUE(doomed.value().send_search().ok());  // occupies the worker
    for (int i = 0; i < 4; ++i)
      ASSERT_TRUE(doomed.value().send_profile(archs[0]).ok());
    wait_for_requests(*server.value(), 5);  // all admitted server-side
    // Destructor closes the socket: the server must flag this
    // connection's queued profiles as cancelled.
  }

  // A second client's request drains *behind* the doomed ones (pure FIFO),
  // so its completion proves the cancelled ones were resolved first.
  auto fresh = Client::connect("127.0.0.1", server.value()->port());
  ASSERT_TRUE(fresh.ok());
  api::Result<api::ProfileReport> after =
      fresh.value().profile(archs[0]);
  EXPECT_TRUE(after.ok()) << after.status().to_string();
  EXPECT_GE(server.value()->service()->stats().cancelled_requests, 4);
}

TEST(NetServer, PredictWindowCoalescesRemoteTrickleTraffic) {
  // Remote trickle: one lone prediction per pipelined frame, a few ms
  // apart. Without a window every query fires as its own batch; with
  // ServiceConfig::predict_window_us the first worker to pick one up
  // waits for the stragglers, so predict_batches stays well below
  // predict_requests — and every answer is still bit-identical.
  api::EngineConfig cfg = tiny_cfg();
  cfg.evaluator = "predictor";
  cfg.predictor_samples = 40;
  cfg.predictor_epochs = 4;

  ServerConfig server_cfg;
  server_cfg.service.num_workers = 2;
  server_cfg.service.predict_window_us = 150'000;  // 150 ms
  auto server = Server::create(cfg, server_cfg);
  ASSERT_TRUE(server.ok()) << server.status().to_string();
  auto client = Client::connect("127.0.0.1", server.value()->port());
  ASSERT_TRUE(client.ok());
  Client& remote = client.value();

  auto engine =
      api::Engine::create(cfg, server.value()->service()->context());
  ASSERT_TRUE(engine.ok());
  std::vector<api::Arch> archs;
  for (int i = 0; i < 8; ++i) archs.push_back(engine.value().sample_arch());

  std::vector<std::uint64_t> ids;
  for (const api::Arch& a : archs) {
    auto id = remote.send_predict_latency(a);
    ASSERT_TRUE(id.ok());
    std::this_thread::sleep_for(3ms);  // trickle, well inside the window
  }
  for (std::size_t i = 0; i < archs.size(); ++i) {
    // Ids are sequential from the connection's first request (1-based).
    api::Result<api::LatencyReport> served =
        remote.wait_predict_latency(static_cast<std::uint64_t>(i + 1));
    ASSERT_TRUE(served.ok()) << served.status().to_string();
    api::Result<api::LatencyReport> direct =
        engine.value().predict_latency(archs[i]);
    ASSERT_TRUE(direct.ok());
    EXPECT_DOUBLE_EQ(served.value().latency_ms, direct.value().latency_ms);
  }

  const serve::ServiceStats stats = server.value()->service()->stats();
  EXPECT_EQ(stats.predict_requests, 8);
  EXPECT_LT(stats.predict_batches, stats.predict_requests);
  EXPECT_GT(stats.max_predict_batch, 1);
}

TEST(ServeWindow, ZeroWindowPreservesEagerDraining) {
  // predict_window_us = 0 (the default) must keep the historical
  // fire-immediately behavior: an idle worker answers a lone query
  // without waiting for company.
  api::EngineConfig cfg = tiny_cfg();
  cfg.evaluator = "predictor";
  cfg.predictor_samples = 40;
  cfg.predictor_epochs = 4;
  serve::ServiceConfig scfg;
  scfg.num_workers = 2;
  auto service = serve::Service::create(cfg, scfg);
  ASSERT_TRUE(service.ok()) << service.status().to_string();
  auto engine = api::Engine::create(cfg, service.value()->context());
  ASSERT_TRUE(engine.ok());

  const api::Arch arch = engine.value().sample_arch();
  const auto start = std::chrono::steady_clock::now();
  auto lone =
      service.value()->submit(serve::PredictLatencyRequest{arch, {}});
  ASSERT_TRUE(lone.get().ok());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // Far below any plausible window; just prove nobody slept on purpose.
  EXPECT_LT(elapsed, 5s);
  EXPECT_EQ(service.value()->stats().predict_batches, 1);
}

// ---- raw-socket robustness -------------------------------------------------

/// A raw loopback connection for feeding the server hostile bytes.
class RawConn {
 public:
  explicit RawConn(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool ok() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void send_bytes(const std::string& bytes) const {
    (void)!::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
  }
  /// FIN our write side; the read side stays open for replies.
  void half_close() const { ::shutdown(fd_, SHUT_WR); }
  /// Blocks until the peer closes (true) or data arrives (false).
  bool closed_by_peer() const {
    char buf[256];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    return n == 0;
  }

 private:
  int fd_ = -1;
};

TEST(NetServerFuzz, HostileFramesNeverCrashTheServer) {
  const api::EngineConfig cfg = tiny_cfg();
  auto server = Server::create(cfg);
  ASSERT_TRUE(server.ok()) << server.status().to_string();
  const std::uint16_t port = server.value()->port();
  const std::vector<api::Arch> archs = sample_archs(cfg, 1);

  {  // Bad magic: the connection must be dropped.
    RawConn conn(port);
    ASSERT_TRUE(conn.ok());
    conn.send_bytes("GARBAGE! definitely not a frame header, and then "
                    "some more bytes for good measure");
    EXPECT_TRUE(conn.closed_by_peer());
  }
  {  // Oversized length prefix: dropped before any allocation.
    FrameHeader h;
    h.type = static_cast<std::uint16_t>(FrameType::kPredictLatency);
    h.request_id = 7;
    h.payload_len = kMaxPayloadBytes + 1;
    std::string bytes;
    encode_header(h, &bytes);
    RawConn conn(port);
    ASSERT_TRUE(conn.ok());
    conn.send_bytes(bytes);
    EXPECT_TRUE(conn.closed_by_peer());
  }
  {  // Well-framed garbage payload: INVALID_ARGUMENT, connection lives.
    Writer garbage;
    garbage.u32(0xffffffffu);  // an absurd gene count
    garbage.u64(0);
    const std::string frame =
        encode_frame(FrameType::kPredictLatency, false, 11, 0,
                     garbage.bytes());
    RawConn conn(port);
    ASSERT_TRUE(conn.ok());
    conn.send_bytes(frame);
    // Read the reply through a protocol Reader.
    std::string buf;
    char chunk[4096];
    FrameHeader reply;
    for (;;) {
      const ssize_t n = ::recv(conn.fd(), chunk, sizeof(chunk), 0);
      ASSERT_GT(n, 0) << "server dropped a recoverable connection";
      buf.append(chunk, static_cast<std::size_t>(n));
      if (buf.size() >= kHeaderSize) {
        ASSERT_TRUE(decode_header(buf.data(), buf.size(), &reply));
        if (buf.size() >= kHeaderSize + reply.payload_len) break;
      }
    }
    EXPECT_EQ(reply.request_id, 11u);
    Reader r(buf.data() + kHeaderSize, reply.payload_len);
    api::Status status;
    ASSERT_TRUE(decode_status(&r, &status));
    EXPECT_EQ(status.code(), api::StatusCode::kInvalidArgument);
  }
  {  // Truncated frame then disconnect: server must not block or crash.
    Writer w;
    encode_predict_request(archs[0], &w);
    std::string frame =
        encode_frame(FrameType::kPredictLatency, false, 13, 0, w.bytes());
    frame.resize(frame.size() / 2);
    RawConn conn(port);
    ASSERT_TRUE(conn.ok());
    conn.send_bytes(frame);
  }

  // Deterministic bit-flips across a valid frame: each lands on a fresh
  // connection; whatever happens (drop, INVALID_ARGUMENT, or a normal
  // answer when the flip hit a don't-care bit), the server must survive.
  Writer w;
  encode_predict_request(archs[0], &w);
  const std::string valid =
      encode_frame(FrameType::kPredictLatency, false, 17, 0, w.bytes());
  Rng rng(fuzz_seed(99));
  for (int trial = 0; trial < 24; ++trial) {
    std::string flipped = valid;
    const std::size_t byte = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(valid.size()) - 1));
    flipped[byte] = static_cast<char>(
        flipped[byte] ^ (1 << rng.uniform_int(0, 7)));
    RawConn conn(port);
    ASSERT_TRUE(conn.ok());
    conn.send_bytes(flipped);
  }

  // After all of the above the server still serves correct answers.
  auto client = Client::connect("127.0.0.1", port);
  ASSERT_TRUE(client.ok());
  api::Result<api::ProfileReport> sane = client.value().profile(archs[0]);
  EXPECT_TRUE(sane.ok()) << sane.status().to_string();
}

/// Blocks until one complete reply frame arrives on a raw socket;
/// returns false on EOF/error before a full frame.
bool read_reply_frame(int fd, FrameHeader* header, std::string* payload) {
  std::string buf;
  char chunk[4096];
  for (;;) {
    if (buf.size() >= kHeaderSize) {
      if (!decode_header(buf.data(), buf.size(), header)) return false;
      if (buf.size() >= kHeaderSize + header->payload_len) {
        payload->assign(buf, kHeaderSize, header->payload_len);
        return true;
      }
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buf.append(chunk, static_cast<std::size_t>(n));
  }
}

TEST(NetBatchFrame, BatchedFrameRunsAsOneServiceUnit) {
  // kPredictBatchN submits the whole frame as ONE unit of work: the
  // service must see one queue entry / one packed forward (not N racing
  // elements), and the answers must be bit-identical to a local
  // Engine::predict_batch.
  const api::EngineConfig cfg = tiny_cfg();
  const std::vector<api::Arch> archs = sample_archs(cfg, 8);

  ServerConfig server_cfg;
  server_cfg.service.num_workers = 2;
  auto server = Server::create(cfg, server_cfg);
  ASSERT_TRUE(server.ok()) << server.status().to_string();
  auto client = Client::connect("127.0.0.1", server.value()->port());
  ASSERT_TRUE(client.ok()) << client.status().to_string();

  api::Result<std::vector<api::LatencyReport>> remote =
      client.value().predict_batch(archs);
  ASSERT_TRUE(remote.ok()) << remote.status().to_string();
  ASSERT_EQ(remote.value().size(), archs.size());

  auto engine = api::Engine::create(cfg);
  ASSERT_TRUE(engine.ok());
  api::Result<std::vector<api::LatencyReport>> local =
      engine.value().predict_batch(archs);
  ASSERT_TRUE(local.ok());
  for (std::size_t i = 0; i < archs.size(); ++i)
    EXPECT_DOUBLE_EQ(remote.value()[i].latency_ms,
                     local.value()[i].latency_ms);

  const serve::ServiceStats stats = server.value()->service()->stats();
  EXPECT_EQ(stats.predict_requests,
            static_cast<std::int64_t>(archs.size()));
  EXPECT_GE(stats.predict_batches, 1);
  EXPECT_GE(stats.max_predict_batch,
            static_cast<std::int64_t>(archs.size()));
}

TEST(NetBatchFrame, OversizedBatchRefusedPerElementWithoutRunning) {
  const api::EngineConfig cfg = tiny_cfg();
  const std::vector<api::Arch> seed = sample_archs(cfg, 1);

  ServerConfig server_cfg;
  server_cfg.shed_retry_after_us = 0;  // a deterministic refusal either way
  auto server = Server::create(cfg, server_cfg);
  ASSERT_TRUE(server.ok()) << server.status().to_string();
  auto client = Client::connect("127.0.0.1", server.value()->port());
  ASSERT_TRUE(client.ok()) << client.status().to_string();

  const std::vector<api::Arch> oversized(kMaxWireBatch + 1, seed[0]);
  api::Result<std::vector<api::LatencyReport>> r =
      client.value().predict_batch(oversized);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), api::StatusCode::kResourceExhausted);
  // Refused before submission: the service never saw the work.
  EXPECT_EQ(server.value()->service()->stats().requests, 0);

  // The refusal is a clean per-request answer — the connection lives.
  api::Result<api::LatencyReport> sane =
      client.value().predict_latency(seed[0]);
  EXPECT_TRUE(sane.ok()) << sane.status().to_string();
}

TEST(NetBatchFrame, LegacyPredictBatchFrameStillServed) {
  // An old client speaking the original per-element kPredictBatch frame
  // gets the same answers as the new single-unit path — the server keeps
  // both verbs.
  const api::EngineConfig cfg = tiny_cfg();
  const std::vector<api::Arch> archs = sample_archs(cfg, 4);
  auto server = Server::create(cfg);
  ASSERT_TRUE(server.ok()) << server.status().to_string();

  Writer w;
  encode_predict_batch_request(archs, &w);
  RawConn conn(server.value()->port());
  ASSERT_TRUE(conn.ok());
  conn.send_bytes(encode_frame(FrameType::kPredictBatch, /*reply=*/false,
                               /*id=*/21, 0, w.bytes()));
  FrameHeader reply;
  std::string payload;
  ASSERT_TRUE(read_reply_frame(conn.fd(), &reply, &payload));
  EXPECT_EQ(reply.request_id, 21u);
  EXPECT_EQ(reply.type, static_cast<std::uint16_t>(FrameType::kPredictBatch) |
                            kReplyBit);
  Reader r(payload);
  std::vector<api::Result<api::LatencyReport>> elements;
  ASSERT_TRUE(decode_predict_batch_reply(&r, &elements));
  ASSERT_EQ(elements.size(), archs.size());

  auto engine = api::Engine::create(cfg);
  ASSERT_TRUE(engine.ok());
  api::Result<std::vector<api::LatencyReport>> local =
      engine.value().predict_batch(archs);
  ASSERT_TRUE(local.ok());
  for (std::size_t i = 0; i < archs.size(); ++i) {
    ASSERT_TRUE(elements[i].ok()) << elements[i].status().to_string();
    EXPECT_DOUBLE_EQ(elements[i].value().latency_ms,
                     local.value()[i].latency_ms);
  }
}

TEST(NetBatchFrameFuzz, CorruptBatchFramesNeverCrashTheServer) {
  // Truncations and deterministic bit-flips over a valid kPredictBatchN
  // frame: whatever each lands as (drop, typed error, or a normal answer
  // on a don't-care bit), the server survives and keeps serving.
  const api::EngineConfig cfg = tiny_cfg();
  const std::vector<api::Arch> archs = sample_archs(cfg, 3);
  auto server = Server::create(cfg);
  ASSERT_TRUE(server.ok()) << server.status().to_string();
  const std::uint16_t port = server.value()->port();

  Writer w;
  encode_predict_batch_request(archs, &w);
  const std::string valid =
      encode_frame(FrameType::kPredictBatchN, false, 31, 0, w.bytes());

  Rng rng(fuzz_seed(1331));
  for (int trial = 0; trial < 16; ++trial) {  // truncation at random cuts
    std::string cut = valid;
    cut.resize(static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(valid.size()) - 1)));
    RawConn conn(port);
    ASSERT_TRUE(conn.ok());
    conn.send_bytes(cut);
  }
  for (int trial = 0; trial < 24; ++trial) {  // single bit-flips
    std::string flipped = valid;
    const std::size_t byte = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(valid.size()) - 1));
    flipped[byte] =
        static_cast<char>(flipped[byte] ^ (1 << rng.uniform_int(0, 7)));
    RawConn conn(port);
    ASSERT_TRUE(conn.ok());
    conn.send_bytes(flipped);
  }

  auto client = Client::connect("127.0.0.1", port);
  ASSERT_TRUE(client.ok());
  api::Result<std::vector<api::LatencyReport>> sane =
      client.value().predict_batch(archs);
  EXPECT_TRUE(sane.ok()) << sane.status().to_string();
}

TEST(NetServer, GoodbyeThenHalfCloseStillAnswersPipelinedRequests) {
  // A client may pipeline its requests, announce kGoodbye, and
  // shutdown(SHUT_WR): requests that arrive together with the FIN must
  // be served, and the connection closed only after the last reply is
  // flushed. (Without the goodbye the FIN is an abandoning disconnect —
  // NetServer.DisconnectCancelsThatConnectionsQueuedRequests covers
  // that side.)
  const api::EngineConfig cfg = tiny_cfg();
  auto server = Server::create(cfg);
  ASSERT_TRUE(server.ok()) << server.status().to_string();
  const std::vector<api::Arch> archs = sample_archs(cfg, 2);

  RawConn conn(server.value()->port());
  ASSERT_TRUE(conn.ok());
  std::string frames;
  for (std::size_t i = 0; i < archs.size(); ++i) {
    Writer w;
    encode_predict_request(archs[i], &w);
    frames += encode_frame(FrameType::kProfile, false, i + 1, 0, w.bytes());
  }
  frames += encode_frame(FrameType::kGoodbye, false, 99, 0, "");
  conn.send_bytes(frames);
  conn.half_close();

  // Both replies arrive, then a clean EOF.
  std::string buf;
  char chunk[4096];
  std::size_t replies = 0;
  bool eof = false;
  while (!eof && replies < archs.size()) {
    const ssize_t n = ::recv(conn.fd(), chunk, sizeof(chunk), 0);
    if (n == 0) {
      eof = true;
      break;
    }
    ASSERT_GT(n, 0) << "recv failed while waiting for half-close replies";
    buf.append(chunk, static_cast<std::size_t>(n));
    for (;;) {
      if (buf.size() < kHeaderSize) break;
      FrameHeader h;
      ASSERT_TRUE(decode_header(buf.data(), buf.size(), &h));
      if (buf.size() < kHeaderSize + h.payload_len) break;
      EXPECT_EQ(h.type, static_cast<std::uint16_t>(FrameType::kProfile) |
                            kReplyBit);
      Reader r(buf.data() + kHeaderSize, h.payload_len);
      api::Result<api::ProfileReport> rep = api::Status::Internal("seed");
      ASSERT_TRUE(decode_reply<api::ProfileReport>(
          &r,
          [](Reader* rr, api::ProfileReport* p) {
            return decode_profile_report(rr, p);
          },
          &rep));
      EXPECT_TRUE(rep.ok()) << rep.status().to_string();
      buf.erase(0, kHeaderSize + h.payload_len);
      ++replies;
    }
  }
  EXPECT_EQ(replies, archs.size())
      << "requests pipelined with the FIN were discarded";
  EXPECT_TRUE(conn.closed_by_peer());
}

TEST(NetClient, GoodbyeDrainsPipelinedRequests) {
  // The shipped client's graceful-drain path: pipeline requests,
  // goodbye(), then collect every reply; afterwards the write side is
  // gone and new sends fail UNAVAILABLE.
  const api::EngineConfig cfg = tiny_cfg();
  auto server = Server::create(cfg);
  ASSERT_TRUE(server.ok()) << server.status().to_string();
  auto client = Client::connect("127.0.0.1", server.value()->port());
  ASSERT_TRUE(client.ok());
  Client& remote = client.value();
  const std::vector<api::Arch> archs = sample_archs(cfg, 2);

  auto id1 = remote.send_profile(archs[0]);
  auto id2 = remote.send_profile(archs[1]);
  ASSERT_TRUE(id1.ok() && id2.ok());
  ASSERT_TRUE(remote.goodbye().ok());
  ASSERT_TRUE(remote.goodbye().ok());  // idempotent

  // A stray send after the goodbye fails cleanly WITHOUT tearing down
  // the read side — the pending replies below must still arrive.
  EXPECT_FALSE(remote.send_profile(archs[0]).ok());

  api::Result<api::ProfileReport> r1 = remote.wait_profile(id1.value());
  api::Result<api::ProfileReport> r2 = remote.wait_profile(id2.value());
  EXPECT_TRUE(r1.ok()) << r1.status().to_string();
  EXPECT_TRUE(r2.ok()) << r2.status().to_string();
  EXPECT_EQ(server.value()->service()->stats().cancelled_requests, 0);
}

TEST(ServeWindow, LoneWorkerDoesNotStallPureWorkOnTheWindow) {
  // num_workers == 1: the sole worker must not sleep out the predict
  // window on top of queued pure work — the window fires early and the
  // profile is served right after.
  api::EngineConfig cfg = tiny_cfg();
  cfg.evaluator = "predictor";
  cfg.predictor_samples = 40;
  cfg.predictor_epochs = 4;
  serve::ServiceConfig scfg;
  scfg.num_workers = 1;
  scfg.predict_window_us = 2'000'000;  // 2 s: far above a profile's cost
  auto service = serve::Service::create(cfg, scfg);
  ASSERT_TRUE(service.ok()) << service.status().to_string();
  auto engine = api::Engine::create(cfg, service.value()->context());
  ASSERT_TRUE(engine.ok());
  const api::Arch arch = engine.value().sample_arch();

  // Open the window with a lone prediction, then queue pure work.
  auto predicted =
      service.value()->submit(serve::PredictLatencyRequest{arch, {}});
  const auto start = std::chrono::steady_clock::now();
  auto profiled = service.value()->submit(serve::ProfileRequest{arch, {}});
  ASSERT_TRUE(profiled.get().ok());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, 1500ms) << "the lone worker slept out the window on "
                                "top of queued pure work";

  api::Result<api::LatencyReport> served = predicted.get();
  ASSERT_TRUE(served.ok()) << served.status().to_string();
  api::Result<api::LatencyReport> direct =
      engine.value().predict_latency(arch);
  ASSERT_TRUE(direct.ok());
  EXPECT_DOUBLE_EQ(served.value().latency_ms, direct.value().latency_ms);
}

TEST(NetServer, StopIsIdempotentAndRefusesLateClients) {
  const api::EngineConfig cfg = tiny_cfg();
  auto server = Server::create(cfg);
  ASSERT_TRUE(server.ok());
  const std::uint16_t port = server.value()->port();
  {
    auto client = Client::connect("127.0.0.1", port);
    ASSERT_TRUE(client.ok());
  }
  server.value()->stop();
  server.value()->stop();  // idempotent
  auto late = Client::connect("127.0.0.1", port);
  if (late.ok()) {
    // The kernel may still accept into a dead backlog; any verb must
    // then fail UNAVAILABLE rather than hang (the socket is closed).
    api::Result<api::TrainReport> r =
        late.value().train_baseline("dgcnn", /*deadline_us=*/0);
    EXPECT_FALSE(r.ok());
  }
}

// ---- protocol v2: retry hints, health, version farewell --------------------

TEST(NetProtocol, StatusHintRoundTrip) {
  Writer w;
  encode_status(api::Status::ResourceExhausted("queue full"), &w, 12'345);
  Reader r(w.bytes());
  api::Status back;
  std::uint64_t hint = 0;
  ASSERT_TRUE(decode_status(&r, &back, &hint));
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(back.code(), api::StatusCode::kResourceExhausted);
  EXPECT_EQ(hint, 12'345u);

  // The hint defaults to zero and callers may ignore it entirely.
  Writer plain;
  encode_status(api::Status::Ok(), &plain);
  Reader pr(plain.bytes());
  ASSERT_TRUE(decode_status(&pr, &back));
  EXPECT_TRUE(pr.exhausted());

  // encode_reply attaches the shed hint to RESOURCE_EXHAUSTED only: any
  // other code means the request RAN, and must not advertise "never ran".
  const auto enc = [](const api::ProfileReport& rep, Writer* out) {
    encode_profile_report(rep, out);
  };
  const std::vector<std::pair<api::Status, std::uint64_t>> cases = {
      {api::Status::ResourceExhausted("shed"), 7'777},
      {api::Status::Internal("ran and failed"), 0},
  };
  for (const auto& [status, expect_hint] : cases) {
    const std::string payload = encode_reply<api::ProfileReport>(
        api::Result<api::ProfileReport>(status), enc, 7'777);
    Reader rr(payload);
    api::Result<api::ProfileReport> out = api::Status::Internal("seed");
    std::uint64_t got = 99;
    ASSERT_TRUE(decode_reply<api::ProfileReport>(
        &rr,
        [](Reader* p, api::ProfileReport* rep) {
          return decode_profile_report(p, rep);
        },
        &out, &got));
    EXPECT_EQ(out.status().code(), status.code());
    EXPECT_EQ(got, expect_hint);
  }

  // Batch replies surface the max over their elements' hints.
  std::vector<api::Result<api::LatencyReport>> results;
  results.emplace_back(api::LatencyReport{});
  results.emplace_back(api::Status::ResourceExhausted("shed"));
  const std::string batch = encode_predict_batch_reply(results, 4'242);
  Reader br(batch);
  std::vector<api::Result<api::LatencyReport>> back_batch;
  std::uint64_t batch_hint = 0;
  ASSERT_TRUE(decode_predict_batch_reply(&br, &back_batch, &batch_hint));
  ASSERT_EQ(back_batch.size(), 2u);
  EXPECT_EQ(batch_hint, 4'242u);
}

TEST(NetProtocol, HealthReportRoundTrip) {
  HealthReport rep;
  rep.state = HealthState::kOverloaded;
  rep.queue_depth = 1024;
  rep.workers = 8;
  rep.uptime_us = 123'456'789;
  Writer w;
  encode_health_report(rep, &w);
  Reader r(w.bytes());
  HealthReport back;
  ASSERT_TRUE(decode_health_report(&r, &back));
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(back.state, HealthState::kOverloaded);
  EXPECT_EQ(back.queue_depth, 1024);
  EXPECT_EQ(back.workers, 8);
  EXPECT_EQ(back.uptime_us, 123'456'789u);

  // Unknown state bytes are rejected, not coerced (strict decoding).
  std::string bytes = w.bytes();
  bytes[0] = 3;
  Reader bad(bytes);
  EXPECT_FALSE(decode_health_report(&bad, &back));

  EXPECT_STREQ(health_state_name(HealthState::kAccepting), "accepting");
  EXPECT_STREQ(health_state_name(HealthState::kDraining), "draining");
  EXPECT_STREQ(health_state_name(HealthState::kOverloaded), "overloaded");
}

TEST(NetProtocol, HeaderDecodeClassifiesRejections) {
  FrameHeader h;
  h.type = static_cast<std::uint16_t>(FrameType::kProfile);
  h.request_id = 41;
  h.payload_len = 12;
  std::string bytes;
  encode_header(h, &bytes);

  FrameHeader out;
  EXPECT_EQ(decode_header_ex(bytes.data(), bytes.size(), &out),
            HeaderDecode::kOk);
  EXPECT_EQ(decode_header_ex(bytes.data(), kHeaderSize - 1, &out),
            HeaderDecode::kTruncated);

  std::string bad = bytes;
  bad[0] = static_cast<char>(bad[0] ^ 0x40);
  EXPECT_EQ(decode_header_ex(bad.data(), bad.size(), &out),
            HeaderDecode::kBadMagic);

  // An old (v1) frame is rejected as kBadVersion, but the fields are
  // still reported — the farewell needs the peer's version / id / type.
  std::string old = bytes;
  old[4] = 1;
  old[5] = 0;
  ASSERT_EQ(decode_header_ex(old.data(), old.size(), &out),
            HeaderDecode::kBadVersion);
  EXPECT_EQ(out.version, 1);
  EXPECT_EQ(out.request_id, 41u);
  EXPECT_EQ(out.type, h.type);
  const FrameHeader peer = out;

  FrameHeader huge = h;
  huge.payload_len = kMaxPayloadBytes + 1;
  std::string huge_bytes;
  encode_header(huge, &huge_bytes);
  EXPECT_EQ(decode_header_ex(huge_bytes.data(), huge_bytes.size(), &out),
            HeaderDecode::kOversized);

  // The farewell to that v1 peer is framed in ITS version (our own
  // decoder refuses it — exactly the point) and carries the v1 status
  // layout: code + message, no trailing retry_after_us.
  const std::string farewell = encode_version_farewell(peer);
  ASSERT_GE(farewell.size(), kHeaderSize);
  FrameHeader fh;
  EXPECT_EQ(decode_header_ex(farewell.data(), farewell.size(), &fh),
            HeaderDecode::kBadVersion);
  EXPECT_EQ(fh.version, 1);
  EXPECT_EQ(fh.type, h.type | kReplyBit);
  EXPECT_EQ(fh.request_id, 41u);
  ASSERT_EQ(farewell.size(), kHeaderSize + fh.payload_len);
  Reader fr(farewell.data() + kHeaderSize, fh.payload_len);
  std::uint32_t code = 0;
  std::string message;
  ASSERT_TRUE(fr.u32(&code));
  ASSERT_TRUE(fr.str(&message));
  EXPECT_TRUE(fr.exhausted());  // v1 layout: nothing after the message
  EXPECT_EQ(code,
            static_cast<std::uint32_t>(api::StatusCode::kFailedPrecondition));
  EXPECT_NE(message.find("version"), std::string::npos);
}

// ---- health, draining, and shed hints over the wire ------------------------

TEST(NetServer, PingReportsHealthAndDrainState) {
  const api::EngineConfig cfg = tiny_cfg();
  ServerConfig server_cfg;
  server_cfg.service.num_workers = 2;
  auto server = Server::create(cfg, server_cfg);
  ASSERT_TRUE(server.ok()) << server.status().to_string();
  auto client = Client::connect("127.0.0.1", server.value()->port());
  ASSERT_TRUE(client.ok());
  Client& remote = client.value();

  api::Result<HealthReport> health = remote.ping();
  ASSERT_TRUE(health.ok()) << health.status().to_string();
  EXPECT_EQ(health.value().state, HealthState::kAccepting);
  EXPECT_EQ(health.value().workers, 2);
  EXPECT_EQ(health.value().queue_depth, 0);
  EXPECT_GT(health.value().uptime_us, 0u);

  // A second connection, opened before the drain closes the listener; it
  // stays idle through the drain flip (idle peers are not FIN'd — they
  // get their answer first, then the FIN).
  auto other = Client::connect("127.0.0.1", server.value()->port());
  ASSERT_TRUE(other.ok());
  // connect() returning only proves the kernel completed the handshake;
  // a round-trip proves the server accept()ed — without it, a loaded box
  // can drain (closing the listener) while `other` still sits in the
  // backlog, and the drop would masquerade as the drain refusal below.
  ASSERT_TRUE(other.value().ping().ok());

  // Draining: pings still answer (that is how a balancer notices the
  // state), while every other verb is refused before submission.
  EXPECT_FALSE(server.value()->draining());
  server.value()->drain();
  server.value()->drain();  // idempotent
  EXPECT_TRUE(server.value()->draining());
  api::Result<HealthReport> drained = remote.ping();
  ASSERT_TRUE(drained.ok()) << drained.status().to_string();
  EXPECT_EQ(drained.value().state, HealthState::kDraining);

  const std::vector<api::Arch> archs = sample_archs(cfg, 1);
  api::Result<api::ProfileReport> refused = other.value().profile(archs[0]);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), api::StatusCode::kUnavailable);

  const serve::ServiceStats stats = server.value()->service()->stats();
  EXPECT_GE(stats.pings, 2);
  EXPECT_EQ(stats.drain_started, 1);
  EXPECT_GE(stats.sheds_with_hint, 1);  // the drain refusal carried a hint
}

TEST(NetServer, OldVersionPeerGetsCleanFarewell) {
  const api::EngineConfig cfg = tiny_cfg();
  auto server = Server::create(cfg);
  ASSERT_TRUE(server.ok()) << server.status().to_string();
  const std::vector<api::Arch> archs = sample_archs(cfg, 1);

  Writer w;
  encode_predict_request(archs[0], &w);
  std::string frame =
      encode_frame(FrameType::kProfile, false, 21, 0, w.bytes());
  frame[4] = 1;  // rewrite the version field: a v1 peer
  frame[5] = 0;

  RawConn conn(server.value()->port());
  ASSERT_TRUE(conn.ok());
  conn.send_bytes(frame);

  // One FAILED_PRECONDITION farewell framed in v1, then EOF.
  std::string buf;
  char chunk[4096];
  FrameHeader h;
  for (;;) {
    const ssize_t n = ::recv(conn.fd(), chunk, sizeof(chunk), 0);
    ASSERT_GT(n, 0) << "server hung up without a farewell";
    buf.append(chunk, static_cast<std::size_t>(n));
    if (buf.size() < kHeaderSize) continue;
    ASSERT_EQ(decode_header_ex(buf.data(), buf.size(), &h),
              HeaderDecode::kBadVersion);  // framed in the PEER's version
    if (buf.size() >= kHeaderSize + h.payload_len) break;
  }
  EXPECT_EQ(h.version, 1);
  EXPECT_EQ(h.request_id, 21u);
  EXPECT_EQ(h.type,
            static_cast<std::uint16_t>(FrameType::kProfile) | kReplyBit);
  Reader r(buf.data() + kHeaderSize, h.payload_len);
  std::uint32_t code = 0;
  std::string message;
  ASSERT_TRUE(r.u32(&code));
  ASSERT_TRUE(r.str(&message));
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(code,
            static_cast<std::uint32_t>(api::StatusCode::kFailedPrecondition));
  EXPECT_TRUE(conn.closed_by_peer());
  EXPECT_GE(server.value()->net_stats().version_mismatches, 1);
}

TEST(NetServer, ShedRepliesCarryRetryAfterHint) {
  const api::EngineConfig cfg = tiny_cfg();
  ServerConfig server_cfg;
  server_cfg.service.num_workers = 1;
  server_cfg.service.max_queue_depth = 1;
  server_cfg.shed_retry_after_us = 9'000;
  auto server = Server::create(cfg, server_cfg);
  ASSERT_TRUE(server.ok()) << server.status().to_string();
  const std::vector<api::Arch> archs = sample_archs(cfg, 1);

  auto pipelined = Client::connect("127.0.0.1", server.value()->port());
  ASSERT_TRUE(pipelined.ok());
  auto search_id = pipelined.value().send_search();
  ASSERT_TRUE(search_id.ok());
  wait_for_requests(*server.value(), 1);
  wait_for_drain_into_worker(*server.value());  // search occupies the worker
  auto queued_id = pipelined.value().send_profile(archs[0]);
  ASSERT_TRUE(queued_id.ok());
  wait_for_requests(*server.value(), 2);  // the queue is now full

  // A raw probe: the shed reply must carry the configured hint.
  Writer w;
  encode_predict_request(archs[0], &w);
  RawConn probe(server.value()->port());
  ASSERT_TRUE(probe.ok());
  probe.send_bytes(encode_frame(FrameType::kProfile, false, 5, 0, w.bytes()));
  std::string buf;
  char chunk[4096];
  FrameHeader h;
  for (;;) {
    const ssize_t n = ::recv(probe.fd(), chunk, sizeof(chunk), 0);
    ASSERT_GT(n, 0) << "no shed reply arrived";
    buf.append(chunk, static_cast<std::size_t>(n));
    if (buf.size() >= kHeaderSize) {
      ASSERT_TRUE(decode_header(buf.data(), buf.size(), &h));
      if (buf.size() >= kHeaderSize + h.payload_len) break;
    }
  }
  Reader r(buf.data() + kHeaderSize, h.payload_len);
  api::Result<api::ProfileReport> shed = api::Status::Internal("seed");
  std::uint64_t hint = 0;
  ASSERT_TRUE(decode_reply<api::ProfileReport>(
      &r,
      [](Reader* rr, api::ProfileReport* p) {
        return decode_profile_report(rr, p);
      },
      &shed, &hint));
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), api::StatusCode::kResourceExhausted);
  EXPECT_EQ(hint, 9'000u);
  EXPECT_GE(server.value()->service()->stats().sheds_with_hint, 1);

  // The hint certifies "never ran", so even a MUTATING verb may ride it:
  // this search retries through the full queue (backoff floored at the
  // hint) and succeeds once the worker frees up — without reconnecting.
  ClientConfig retry_cfg;
  retry_cfg.host = "127.0.0.1";
  retry_cfg.port = server.value()->port();
  retry_cfg.retry.max_attempts = 400;
  retry_cfg.retry.initial_backoff_us = 2'000;
  retry_cfg.retry.max_backoff_us = 20'000;
  retry_cfg.retry.jitter_seed = fuzz_seed(7);
  auto retrying = Client::connect(retry_cfg);
  ASSERT_TRUE(retrying.ok());
  api::Result<api::SearchReport> second = retrying.value().search();
  EXPECT_TRUE(second.ok()) << second.status().to_string();
  EXPECT_EQ(retrying.value().connections_dialed(), 1);

  EXPECT_TRUE(pipelined.value().wait_profile(queued_id.value()).ok());
  EXPECT_TRUE(pipelined.value().wait_search(search_id.value()).ok());
}

TEST(NetServer, DrainAnswersQueuedWorkThenCloses) {
  const api::EngineConfig cfg = tiny_cfg();
  ServerConfig server_cfg;
  server_cfg.service.num_workers = 1;
  auto server = Server::create(cfg, server_cfg);
  ASSERT_TRUE(server.ok()) << server.status().to_string();
  const std::uint16_t port = server.value()->port();
  const std::vector<api::Arch> archs = sample_archs(cfg, 1);

  auto client = Client::connect("127.0.0.1", port);
  ASSERT_TRUE(client.ok());
  Client& remote = client.value();
  auto search_id = remote.send_search();
  ASSERT_TRUE(search_id.ok());
  std::vector<std::uint64_t> profile_ids;
  for (int i = 0; i < 3; ++i) {
    auto id = remote.send_profile(archs[0]);
    ASSERT_TRUE(id.ok());
    profile_ids.push_back(id.value());
  }
  wait_for_requests(*server.value(), 4);  // all admitted before the drain

  server.value()->drain();

  // A post-drain frame on the live connection is refused before
  // submission (UNAVAILABLE, with a retry hint on the wire).
  auto late_id = remote.send_profile(archs[0]);
  ASSERT_TRUE(late_id.ok());
  api::Result<api::ProfileReport> late = remote.wait_profile(late_id.value());
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), api::StatusCode::kUnavailable);

  // Everything admitted before the drain is still answered.
  for (std::uint64_t id : profile_ids) {
    api::Result<api::ProfileReport> r = remote.wait_profile(id);
    EXPECT_TRUE(r.ok()) << r.status().to_string();
  }
  EXPECT_TRUE(remote.wait_search(search_id.value()).ok());

  // After the last reply the server half-closes; the next roundtrip sees
  // a clean UNAVAILABLE (refusal or EOF, depending on the race) instead
  // of hanging.
  api::Result<api::ProfileReport> after = remote.profile(archs[0]);
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), api::StatusCode::kUnavailable);

  // New connections are refused once the poll thread closes the listen
  // socket (its next wakeup after the drain flag flips).
  bool refused = false;
  for (int i = 0; i < 2000 && !refused; ++i) {
    auto late_client = Client::connect("127.0.0.1", port);
    if (!late_client.ok()) {
      EXPECT_EQ(late_client.status().code(), api::StatusCode::kUnavailable);
      refused = true;
    } else {
      std::this_thread::sleep_for(1ms);
    }
  }
  EXPECT_TRUE(refused) << "drain never closed the listen socket";

  const serve::ServiceStats stats = server.value()->service()->stats();
  EXPECT_EQ(stats.drain_started, 1);
  EXPECT_EQ(stats.cancelled_requests, 0) << "drain abandoned admitted work";
  server.value()->stop();
}

// ---- chaos: deterministic transport fault injection ------------------------

using testing::ChaosConfig;
using testing::ChaosStats;

/// Assert a remote report re-encodes bit-identically to the local one.
template <typename Report, typename EncodeFn>
void expect_bit_identical(const Report& remote, const Report& local,
                          EncodeFn encode) {
  Writer a, b;
  encode(remote, &a);
  encode(local, &b);
  EXPECT_EQ(a.bytes(), b.bytes()) << "remote answer diverged from local";
}

TEST(NetChaos, ShortIoOnBothSidesStaysBitIdentical) {
  // Short reads/writes are lossless: every verb must still answer OK and
  // bit-identical to local, with no retries needed (max_attempts = 1).
  const std::uint64_t seed = fuzz_seed(4242);
  const api::EngineConfig cfg = tiny_cfg();

  ChaosStats server_faults;
  ChaosConfig server_chaos;
  server_chaos.seed = seed;
  server_chaos.short_io_rate = 0.6;
  ServerConfig server_cfg;
  server_cfg.wrap_transport =
      testing::chaos_wrap(server_chaos, &server_faults);
  auto server = Server::create(cfg, server_cfg);
  ASSERT_TRUE(server.ok()) << server.status().to_string();
  auto engine =
      api::Engine::create(cfg, server.value()->service()->context());
  ASSERT_TRUE(engine.ok());
  const std::vector<api::Arch> archs = sample_archs(cfg, 3);

  ChaosStats client_faults;
  ChaosConfig client_chaos;
  client_chaos.seed = seed + 1'000'000;
  client_chaos.short_io_rate = 0.6;
  ClientConfig client_cfg;
  client_cfg.host = "127.0.0.1";
  client_cfg.port = server.value()->port();
  client_cfg.wrap_transport =
      testing::chaos_wrap(client_chaos, &client_faults);
  auto client = Client::connect(client_cfg);
  ASSERT_TRUE(client.ok()) << client.status().to_string();
  Client& remote = client.value();

  for (const api::Arch& a : archs) {
    api::Result<api::LatencyReport> r1 = remote.predict_latency(a);
    api::Result<api::LatencyReport> r2 = engine.value().predict_latency(a);
    ASSERT_TRUE(r1.ok()) << r1.status().to_string();
    ASSERT_TRUE(r2.ok());
    expect_bit_identical(r1.value(), r2.value(),
                         [](const api::LatencyReport& rep, Writer* w) {
                           encode_latency_report(rep, w);
                         });
  }
  {
    api::Result<api::ProfileReport> p1 = remote.profile(archs[0]);
    api::Result<api::ProfileReport> p2 = engine.value().profile(archs[0]);
    ASSERT_TRUE(p1.ok()) << p1.status().to_string();
    ASSERT_TRUE(p2.ok());
    expect_bit_identical(p1.value(), p2.value(),
                         [](const api::ProfileReport& rep, Writer* w) {
                           encode_profile_report(rep, w);
                         });
  }
  {
    api::Result<std::vector<api::LatencyReport>> b1 =
        remote.predict_batch(archs);
    api::Result<std::vector<api::LatencyReport>> b2 =
        engine.value().predict_batch(archs);
    ASSERT_TRUE(b1.ok()) << b1.status().to_string();
    ASSERT_TRUE(b2.ok());
    ASSERT_EQ(b1.value().size(), b2.value().size());
    for (std::size_t i = 0; i < b1.value().size(); ++i)
      EXPECT_DOUBLE_EQ(b1.value()[i].latency_ms, b2.value()[i].latency_ms);
  }
  api::Result<HealthReport> health = remote.ping();
  ASSERT_TRUE(health.ok()) << health.status().to_string();

  EXPECT_GT(client_faults.short_sends.load() +
                client_faults.short_recvs.load() +
                server_faults.short_sends.load() +
                server_faults.short_recvs.load(),
            0)
      << "the chaos schedule never fired";
}

TEST(NetChaos, RetryRecoversFromMidFrameResets) {
  const std::uint64_t seed = fuzz_seed(515);
  const api::EngineConfig cfg = tiny_cfg();
  auto server = Server::create(cfg);
  ASSERT_TRUE(server.ok()) << server.status().to_string();
  auto engine =
      api::Engine::create(cfg, server.value()->service()->context());
  ASSERT_TRUE(engine.ok());
  const std::vector<api::Arch> archs = sample_archs(cfg, 1);

  for (const bool reset_send : {false, true}) {
    ChaosStats faults;
    ChaosConfig chaos;
    chaos.seed = seed + (reset_send ? 1 : 0);
    if (reset_send) {
      chaos.reset_send_at_frame = 0;  // the request never leaves (EPIPE)
    } else {
      chaos.reset_recv_at_frame = 0;  // the reply is torn mid-header
    }
    ClientConfig ccfg;
    ccfg.host = "127.0.0.1";
    ccfg.port = server.value()->port();
    ccfg.wrap_transport = testing::chaos_first_connection_only(chaos, &faults);
    ccfg.retry.max_attempts = 4;
    ccfg.retry.initial_backoff_us = 500;
    ccfg.retry.max_backoff_us = 2'000;
    auto client = Client::connect(ccfg);
    ASSERT_TRUE(client.ok()) << client.status().to_string();

    // A pure verb recovers transparently: the retry's fresh connection
    // answers, and bit-identically to local.
    api::Result<api::LatencyReport> r =
        client.value().predict_latency(archs[0]);
    ASSERT_TRUE(r.ok()) << "reset_send=" << reset_send << ": "
                        << r.status().to_string();
    api::Result<api::LatencyReport> local =
        engine.value().predict_latency(archs[0]);
    ASSERT_TRUE(local.ok());
    expect_bit_identical(r.value(), local.value(),
                         [](const api::LatencyReport& rep, Writer* w) {
                           encode_latency_report(rep, w);
                         });
    EXPECT_EQ(client.value().connections_dialed(), 2);
    EXPECT_GE(faults.resets.load(), 1);
  }
}

TEST(NetChaos, FaultMatrixNeverHangsAndOkAnswersStayBitIdentical) {
  // The acceptance matrix: under every fault class, a verb either
  // answers OK — in which case the answer is bit-identical to local — or
  // fails with a clean typed Status. Nothing hangs (recv_timeout_ms
  // bounds every wait) and the server survives to serve a clean client
  // afterwards.
  const std::uint64_t seed = fuzz_seed(8080);
  const api::EngineConfig cfg = tiny_cfg();
  auto server = Server::create(cfg);
  ASSERT_TRUE(server.ok()) << server.status().to_string();
  auto engine =
      api::Engine::create(cfg, server.value()->service()->context());
  ASSERT_TRUE(engine.ok());
  const std::vector<api::Arch> archs = sample_archs(cfg, 3);

  struct FaultClass {
    const char* name;
    ChaosConfig chaos;
  };
  std::vector<FaultClass> classes(5);
  classes[0].name = "short-io";
  classes[0].chaos.short_io_rate = 0.6;
  classes[1].name = "corrupt-headers";
  classes[1].chaos.corrupt_header_rate = 1.0;
  classes[2].name = "reset-send";
  classes[2].chaos.reset_send_rate = 0.4;
  classes[3].name = "reset-recv";
  classes[3].chaos.reset_recv_rate = 0.4;
  classes[4].name = "stall";
  classes[4].chaos.stall_recv_at_frame = 1;

  for (std::size_t ci = 0; ci < classes.size(); ++ci) {
    for (int trial = 0; trial < 2; ++trial) {
      ChaosConfig chaos = classes[ci].chaos;
      chaos.seed = seed + ci * 100 + static_cast<std::uint64_t>(trial);
      ClientConfig ccfg;
      ccfg.host = "127.0.0.1";
      ccfg.port = server.value()->port();
      ccfg.recv_timeout_ms = 200;
      ccfg.retry.max_attempts = 3;
      ccfg.retry.initial_backoff_us = 500;
      ccfg.retry.max_backoff_us = 5'000;
      ccfg.wrap_transport = testing::chaos_wrap(chaos);
      auto client = Client::connect(ccfg);
      ASSERT_TRUE(client.ok())
          << classes[ci].name << ": " << client.status().to_string();
      const api::Arch& arch = archs[static_cast<std::size_t>(trial)];

      api::Result<api::LatencyReport> p =
          client.value().predict_latency(arch);
      if (p.ok()) {
        api::Result<api::LatencyReport> local =
            engine.value().predict_latency(arch);
        ASSERT_TRUE(local.ok());
        expect_bit_identical(p.value(), local.value(),
                             [](const api::LatencyReport& rep, Writer* w) {
                               encode_latency_report(rep, w);
                             });
      } else {
        EXPECT_NE(p.status().code(), api::StatusCode::kOk)
            << classes[ci].name;
      }

      api::Result<api::ProfileReport> pr = client.value().profile(arch);
      if (pr.ok()) {
        api::Result<api::ProfileReport> local = engine.value().profile(arch);
        ASSERT_TRUE(local.ok());
        expect_bit_identical(pr.value(), local.value(),
                             [](const api::ProfileReport& rep, Writer* w) {
                               encode_profile_report(rep, w);
                             });
      } else {
        EXPECT_NE(pr.status().code(), api::StatusCode::kOk)
            << classes[ci].name;
      }
    }
  }

  // The server took every beating above and still answers correctly.
  auto clean = Client::connect("127.0.0.1", server.value()->port());
  ASSERT_TRUE(clean.ok());
  api::Result<api::ProfileReport> sane = clean.value().profile(archs[0]);
  ASSERT_TRUE(sane.ok()) << sane.status().to_string();
  api::Result<api::ProfileReport> local = engine.value().profile(archs[0]);
  ASSERT_TRUE(local.ok());
  expect_bit_identical(sane.value(), local.value(),
                       [](const api::ProfileReport& rep, Writer* w) {
                         encode_profile_report(rep, w);
                       });
}

// ---- client retry semantics ------------------------------------------------

TEST(NetClient, MutatingVerbsDoNotRetryTransportFailures) {
  const std::uint64_t seed = fuzz_seed(626);
  const api::EngineConfig cfg = tiny_cfg();
  auto server = Server::create(cfg);
  ASSERT_TRUE(server.ok()) << server.status().to_string();

  ChaosConfig chaos;
  chaos.seed = seed;
  chaos.reset_recv_at_frame = 0;  // the reply is torn: did it run?
  ClientConfig base;
  base.host = "127.0.0.1";
  base.port = server.value()->port();
  base.retry.max_attempts = 4;
  base.retry.initial_backoff_us = 500;

  // search is mutating: a torn reply cannot prove the request never ran,
  // so the failure surfaces instead of retrying.
  {
    ChaosStats faults;
    ClientConfig ccfg = base;
    ccfg.wrap_transport = testing::chaos_first_connection_only(chaos, &faults);
    auto client = Client::connect(ccfg);
    ASSERT_TRUE(client.ok());
    api::Result<api::SearchReport> r = client.value().search();
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), api::StatusCode::kUnavailable);
    EXPECT_EQ(client.value().connections_dialed(), 1);  // no retry
    EXPECT_GE(faults.resets.load(), 1);
  }
  // retry_mutating opts in (the caller vouches for idempotency).
  {
    ChaosStats faults;
    ClientConfig ccfg = base;
    ccfg.retry.retry_mutating = true;
    ccfg.wrap_transport = testing::chaos_first_connection_only(chaos, &faults);
    auto client = Client::connect(ccfg);
    ASSERT_TRUE(client.ok());
    api::Result<api::SearchReport> r = client.value().search();
    EXPECT_TRUE(r.ok()) << r.status().to_string();
    EXPECT_EQ(client.value().connections_dialed(), 2);
  }
}

TEST(NetClient, RetryRespectsRequestDeadline) {
  const api::EngineConfig cfg = tiny_cfg();
  auto server = Server::create(cfg);
  ASSERT_TRUE(server.ok()) << server.status().to_string();
  const std::vector<api::Arch> archs = sample_archs(cfg, 1);

  // Every connection stalls on its first incoming frame: each attempt
  // times out, and the retry loop must give up at the DEADLINE — not at
  // max_attempts (set absurdly high) — and never sleep past it.
  ChaosConfig chaos;
  chaos.seed = fuzz_seed(737);
  chaos.stall_recv_at_frame = 0;
  ChaosStats faults;
  ClientConfig ccfg;
  ccfg.host = "127.0.0.1";
  ccfg.port = server.value()->port();
  ccfg.recv_timeout_ms = 50;
  ccfg.wrap_transport = testing::chaos_wrap(chaos, &faults);
  ccfg.retry.max_attempts = 1'000'000;
  ccfg.retry.initial_backoff_us = 1'000;
  ccfg.retry.max_backoff_us = 10'000;
  auto client = Client::connect(ccfg);
  ASSERT_TRUE(client.ok());

  const auto start = std::chrono::steady_clock::now();
  api::Result<api::LatencyReport> r =
      client.value().predict_latency(archs[0], /*deadline_us=*/400'000);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), api::StatusCode::kDeadlineExceeded)
      << r.status().to_string();
  EXPECT_GE(faults.stalls.load(), 1);
  EXPECT_GT(client.value().connections_dialed(), 1);  // it DID retry
  EXPECT_LT(elapsed, 2s) << "retries ran far past the deadline";
}

TEST(NetClient, ConnectFailuresAreTyped) {
  // Nothing listening: ECONNREFUSED surfaces as UNAVAILABLE, not a hang
  // or a crash.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t dead_port = ntohs(addr.sin_port);
  ::close(fd);  // bound but never listened: connects are refused

  auto refused = Client::connect("127.0.0.1", dead_port);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), api::StatusCode::kUnavailable);

  // A config mistake is not a transport failure: INVALID_ARGUMENT.
  ClientConfig bad;
  bad.host = "not-a-dotted-quad";
  bad.port = 1;
  auto nonsense = Client::connect(bad);
  ASSERT_FALSE(nonsense.ok());
  EXPECT_EQ(nonsense.status().code(), api::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace hg::net
