// Parallel execution backbone: parallel_for semantics, bit-exact
// thread-count invariance of the tensor/GNN/graph kernels, the fused
// aggregation against its materializing reference, and the concurrent
// search path with the candidate memo cache.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/parallel.hpp"
#include "gnn/gnn.hpp"
#include "graph/graph.hpp"
#include "hgnas/search.hpp"
#include "hgnas/serialize_arch.hpp"
#include "predictor/predictor.hpp"
#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"

namespace hg {
namespace {

using core::ScopedNumThreads;

TEST(ParallelFor, CoversRangeExactlyOnce) {
  ScopedNumThreads threads(4);
  std::vector<std::atomic<int>> hits(1000);
  core::parallel_for(0, 1000, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) ++hits[static_cast<std::size_t>(i)];
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, PropagatesExceptions) {
  ScopedNumThreads threads(4);
  EXPECT_THROW(
      core::parallel_for(0, 100, 1,
                         [](std::int64_t lo, std::int64_t) {
                           if (lo >= 0) throw std::runtime_error("boom");
                         }),
      std::runtime_error);
}

TEST(ParallelFor, NestedCallsRunInline) {
  ScopedNumThreads threads(4);
  std::atomic<int> total{0};
  core::parallel_for(0, 8, 1, [&](std::int64_t lo, std::int64_t hi) {
    EXPECT_TRUE(core::in_parallel_region());
    core::parallel_for(lo * 10, hi * 10, 1,
                       [&](std::int64_t l, std::int64_t h) {
                         total += static_cast<int>(h - l);
                       });
  });
  EXPECT_EQ(total.load(), 80);
}

TEST(ParallelFor, ScopedOverrideRestoresWidth) {
  const std::int64_t before = core::num_threads();
  {
    ScopedNumThreads threads(3);
    EXPECT_EQ(core::num_threads(), 3);
  }
  EXPECT_EQ(core::num_threads(), before);
}

// ---- kernel thread-count invariance ----------------------------------------

std::vector<float> random_values(std::size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = rng.normal();
  return v;
}

/// Reference naive matmul (the historical triple loop, verbatim).
std::vector<float> naive_matmul(const std::vector<float>& a,
                                const std::vector<float>& b, std::int64_t m,
                                std::int64_t k, std::int64_t n) {
  std::vector<float> c(static_cast<std::size_t>(m * n), 0.f);
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t p = 0; p < k; ++p) {
      const float av = a[static_cast<std::size_t>(i * k + p)];
      if (av == 0.f) continue;
      for (std::int64_t j = 0; j < n; ++j)
        c[static_cast<std::size_t>(i * n + j)] +=
            av * b[static_cast<std::size_t>(p * n + j)];
    }
  return c;
}

TEST(ParallelKernels, BlockedMatmulBitExactVsNaiveForAnyThreadCount) {
  // Large enough that the row grain actually forks at 4 threads.
  const std::int64_t m = 256, k = 64, n = 48;
  Rng rng(7);
  const auto av = random_values(static_cast<std::size_t>(m * k), rng);
  const auto bv = random_values(static_cast<std::size_t>(k * n), rng);
  const auto ref = naive_matmul(av, bv, m, k, n);

  for (const std::int64_t threads : {1, 2, 4}) {
    ScopedNumThreads scoped(threads);
    Tensor a = Tensor::from_vector({m, k}, av);
    Tensor b = Tensor::from_vector({k, n}, bv);
    Tensor c = matmul(a, b);
    ASSERT_EQ(c.numel(), m * n);
    for (std::int64_t i = 0; i < c.numel(); ++i)
      ASSERT_EQ(c.data()[i], ref[static_cast<std::size_t>(i)])
          << "threads=" << threads << " element " << i;
  }
}

TEST(ParallelKernels, MatmulBackwardBitExactAcrossThreadCounts) {
  const std::int64_t m = 192, k = 40, n = 56;
  Rng rng(11);
  const auto av = random_values(static_cast<std::size_t>(m * k), rng);
  const auto bv = random_values(static_cast<std::size_t>(k * n), rng);
  std::vector<float> seed(static_cast<std::size_t>(m * n));
  for (std::size_t i = 0; i < seed.size(); ++i)
    seed[i] = static_cast<float>(static_cast<int>(i % 13) - 6) * 0.25f;

  std::vector<float> ga_ref, gb_ref;
  for (const std::int64_t threads : {1, 4}) {
    ScopedNumThreads scoped(threads);
    Tensor a = Tensor::from_vector({m, k}, av, /*requires_grad=*/true);
    Tensor b = Tensor::from_vector({k, n}, bv, /*requires_grad=*/true);
    Tensor c = matmul(a, b);
    c.backward(seed);
    if (threads == 1) {
      ga_ref.assign(a.grad().begin(), a.grad().end());
      gb_ref.assign(b.grad().begin(), b.grad().end());
    } else {
      for (std::size_t i = 0; i < ga_ref.size(); ++i)
        ASSERT_EQ(a.grad()[i], ga_ref[i]) << "ga " << i;
      for (std::size_t i = 0; i < gb_ref.size(); ++i)
        ASSERT_EQ(b.grad()[i], gb_ref[i]) << "gb " << i;
    }
  }
}

TEST(ParallelKernels, BlockedTransposeIsExactInverse) {
  ScopedNumThreads scoped(4);
  Rng rng(13);
  const std::int64_t r = 173, c = 91;
  const auto v = random_values(static_cast<std::size_t>(r * c), rng);
  Tensor a = Tensor::from_vector({r, c}, v);
  Tensor t = transpose(a);
  ASSERT_EQ(t.shape(), (Shape{c, r}));
  for (std::int64_t i = 0; i < r; ++i)
    for (std::int64_t j = 0; j < c; ++j)
      ASSERT_EQ(t.at({j, i}), a.at({i, j}));
  Tensor back = transpose(t);
  for (std::int64_t i = 0; i < r * c; ++i)
    ASSERT_EQ(back.data()[i], v[static_cast<std::size_t>(i)]);
}

TEST(ParallelKernels, ScatterReduceBitExactAcrossThreadCounts) {
  const std::int64_t e = 6000, c = 16, nodes = 700;
  Rng rng(17);
  const auto msg = random_values(static_cast<std::size_t>(e * c), rng);
  std::vector<std::int64_t> index(static_cast<std::size_t>(e));
  for (auto& i : index)
    i = static_cast<std::int64_t>(rng.uniform_int(
        static_cast<std::uint64_t>(nodes)));
  std::vector<float> seed(static_cast<std::size_t>(nodes * c));
  for (std::size_t i = 0; i < seed.size(); ++i)
    seed[i] = static_cast<float>(static_cast<int>(i % 9) - 4) * 0.5f;

  for (const Reduce reduce :
       {Reduce::Sum, Reduce::Mean, Reduce::Max, Reduce::Min}) {
    std::vector<float> out_ref, grad_ref;
    for (const std::int64_t threads : {1, 2, 4}) {
      ScopedNumThreads scoped(threads);
      Tensor m = Tensor::from_vector({e, c}, msg, /*requires_grad=*/true);
      Tensor out = scatter_reduce(m, index, nodes, reduce);
      out.backward(seed);
      if (threads == 1) {
        out_ref.assign(out.data().begin(), out.data().end());
        grad_ref.assign(m.grad().begin(), m.grad().end());
      } else {
        for (std::size_t i = 0; i < out_ref.size(); ++i)
          ASSERT_EQ(out.data()[static_cast<std::int64_t>(i)], out_ref[i])
              << "reduce " << static_cast<int>(reduce) << " out " << i;
        for (std::size_t i = 0; i < grad_ref.size(); ++i)
          ASSERT_EQ(m.grad()[i], grad_ref[i])
              << "reduce " << static_cast<int>(reduce) << " grad " << i;
      }
    }
  }
}

TEST(ParallelKernels, KnnGraphsIdenticalAcrossThreadCounts) {
  Rng rng(19);
  const std::int64_t n = 600, k = 12;
  const auto pts = random_values(static_cast<std::size_t>(n * 3), rng);
  const auto feats = random_values(static_cast<std::size_t>(n * 8), rng);

  graph::EdgeList brute1, grid1, feat1;
  {
    ScopedNumThreads scoped(1);
    brute1 = graph::knn_graph_brute(pts, n, k);
    grid1 = graph::knn_graph_grid(pts, n, k);
    feat1 = graph::knn_graph_features(feats, n, 8, k);
  }
  ScopedNumThreads scoped(4);
  const graph::EdgeList brute4 = graph::knn_graph_brute(pts, n, k);
  const graph::EdgeList grid4 = graph::knn_graph_grid(pts, n, k);
  const graph::EdgeList feat4 = graph::knn_graph_features(feats, n, 8, k);
  EXPECT_EQ(brute1.src, brute4.src);
  EXPECT_EQ(brute1.dst, brute4.dst);
  EXPECT_EQ(grid1.src, grid4.src);
  EXPECT_EQ(grid1.dst, grid4.dst);
  EXPECT_EQ(feat1.src, feat4.src);
  EXPECT_EQ(feat1.dst, feat4.dst);
}

// ---- fused aggregation ------------------------------------------------------

TEST(FusedAggregate, MatchesMaterializedReferenceForAllCombos) {
  ScopedNumThreads scoped(4);
  Rng rng(23);
  const std::int64_t n = 60, c = 5, k = 7;
  const auto pts = random_values(static_cast<std::size_t>(n * 3), rng);
  const graph::EdgeList g = graph::knn_graph_brute(pts, n, 3);
  (void)k;
  const auto xv = random_values(static_cast<std::size_t>(n * c), rng);

  for (std::int64_t mi = 0; mi < gnn::kNumMessageTypes; ++mi) {
    const auto mt = static_cast<gnn::MessageType>(mi);
    const std::int64_t m = gnn::message_dim(mt, c);
    std::vector<float> seed(static_cast<std::size_t>(n * m));
    for (std::size_t i = 0; i < seed.size(); ++i)
      seed[i] = static_cast<float>(static_cast<int>(i % 7) - 3) * 0.5f;
    for (const Reduce reduce :
         {Reduce::Sum, Reduce::Mean, Reduce::Max, Reduce::Min}) {
      Tensor x_ref = Tensor::from_vector({n, c}, xv, /*requires_grad=*/true);
      Tensor y_ref = gnn::aggregate_materialized(x_ref, g, mt, reduce);
      y_ref.backward(seed);

      Tensor x_fused = Tensor::from_vector({n, c}, xv, /*requires_grad=*/true);
      Tensor y_fused = gnn::aggregate_fused(x_fused, g, mt, reduce);
      y_fused.backward(seed);

      ASSERT_EQ(y_fused.shape(), y_ref.shape())
          << gnn::message_type_name(mt);
      for (std::int64_t i = 0; i < y_ref.numel(); ++i)
        ASSERT_EQ(y_fused.data()[i], y_ref.data()[i])
            << gnn::message_type_name(mt) << " reduce "
            << static_cast<int>(reduce) << " out " << i;
      ASSERT_EQ(x_fused.grad().size(), x_ref.grad().size());
      for (std::size_t i = 0; i < x_ref.grad().size(); ++i)
        ASSERT_EQ(x_fused.grad()[i], x_ref.grad()[i])
            << gnn::message_type_name(mt) << " reduce "
            << static_cast<int>(reduce) << " grad " << i;
    }
  }
}

TEST(FusedAggregate, DispatchIsThreadCountInvariant) {
  Rng rng(29);
  const std::int64_t n = 80, c = 6;
  const auto pts = random_values(static_cast<std::size_t>(n * 3), rng);
  const graph::EdgeList g = graph::knn_graph_brute(pts, n, 5);
  const auto xv = random_values(static_cast<std::size_t>(n * c), rng);
  std::vector<float> seed(static_cast<std::size_t>(n * 2 * c), 1.f);

  std::vector<float> out_ref, grad_ref;
  for (const std::int64_t threads : {1, 4}) {
    ScopedNumThreads scoped(threads);
    Tensor x = Tensor::from_vector({n, c}, xv, /*requires_grad=*/true);
    // aggregate() picks materialized at 1 thread, fused otherwise; the two
    // must agree bit-for-bit.
    Tensor y = gnn::aggregate(x, g, gnn::MessageType::TargetRel, Reduce::Max);
    y.backward(seed);
    if (threads == 1) {
      out_ref.assign(y.data().begin(), y.data().end());
      grad_ref.assign(x.grad().begin(), x.grad().end());
    } else {
      for (std::size_t i = 0; i < out_ref.size(); ++i)
        ASSERT_EQ(y.data()[static_cast<std::int64_t>(i)], out_ref[i]);
      for (std::size_t i = 0; i < grad_ref.size(); ++i)
        ASSERT_EQ(x.grad()[i], grad_ref[i]);
    }
  }
}

TEST(FusedAggregate, EdgeConvForwardBackwardThreadCountInvariant) {
  Rng init_rng(31);
  gnn::EdgeConv conv(6, 8, init_rng);
  conv.set_training(false);
  Rng rng(37);
  const std::int64_t n = 120;
  const auto pts = random_values(static_cast<std::size_t>(n * 3), rng);
  const graph::EdgeList g = graph::knn_graph(pts, n, 9);
  const auto xv = random_values(static_cast<std::size_t>(n * 6), rng);
  std::vector<float> seed(static_cast<std::size_t>(n * 8), 0.5f);

  std::vector<float> out_ref;
  std::vector<std::vector<float>> param_grads_ref;
  for (const std::int64_t threads : {1, 4}) {
    ScopedNumThreads scoped(threads);
    for (auto& p : conv.parameters()) p.zero_grad();
    Tensor x = Tensor::from_vector({n, 6}, xv, /*requires_grad=*/true);
    Tensor y = conv.forward(x, g);
    y.backward(seed);
    if (threads == 1) {
      out_ref.assign(y.data().begin(), y.data().end());
      for (const auto& p : conv.parameters())
        param_grads_ref.emplace_back(p.grad().begin(), p.grad().end());
    } else {
      for (std::size_t i = 0; i < out_ref.size(); ++i)
        ASSERT_EQ(y.data()[static_cast<std::int64_t>(i)], out_ref[i]);
      const auto params = conv.parameters();
      for (std::size_t pi = 0; pi < params.size(); ++pi)
        for (std::size_t i = 0; i < param_grads_ref[pi].size(); ++i)
          ASSERT_EQ(params[pi].grad()[i], param_grads_ref[pi][i])
              << "param " << pi << " grad " << i;
    }
  }
}

// ---- concurrent search ------------------------------------------------------

struct TinySearchFixture {
  hgnas::SpaceConfig space;
  hgnas::SupernetConfig sn_cfg;
  pointcloud::Dataset data;

  TinySearchFixture() : data(4, 32, 21) {
    space.num_positions = 1;  // ~40 canonical genomes: revisits guaranteed
    sn_cfg.hidden = 8;
    sn_cfg.k = 6;
    sn_cfg.num_classes = 10;
    sn_cfg.head_hidden = 16;
  }

  hgnas::SearchConfig make_cfg() const {
    hgnas::SearchConfig cfg;
    cfg.space = space;
    cfg.workload.num_points = 256;
    cfg.workload.k = 10;
    cfg.workload.num_classes = 10;
    cfg.population = 8;
    cfg.parents = 4;
    cfg.iterations = 12;
    cfg.eval_val_samples = 4;
    cfg.function_paths_per_eval = 1;
    cfg.train_supernet = false;  // weights fixed: scores are reproducible
    cfg.latency_scale_ms = 50.0;
    return cfg;
  }

  hgnas::SearchResult run_random(bool use_cache, std::int64_t threads) {
    ScopedNumThreads scoped(threads);
    Rng init_rng(5);
    hgnas::SuperNet supernet(space, sn_cfg, init_rng);
    hgnas::SearchConfig cfg = make_cfg();
    cfg.use_eval_cache = use_cache;
    hw::Device dev = hw::make_device(hw::DeviceKind::Rtx3080);
    hgnas::HgnasSearch search(supernet, data, cfg,
                              hgnas::make_oracle_evaluator(dev, cfg.workload));
    Rng rng(99);
    return search.run_random(rng);
  }

  hgnas::SearchResult run_multistage(std::int64_t threads) {
    ScopedNumThreads scoped(threads);
    Rng init_rng(5);
    // Stage 2 fixes the functions, shrinking the canonical space to
    // 4^positions operation layouts; it must stay comfortably above the
    // deduplicated population + offspring count or the fill loop starves.
    hgnas::SpaceConfig wide = space;
    wide.num_positions = 4;
    hgnas::SuperNet supernet(wide, sn_cfg, init_rng);
    hgnas::SearchConfig cfg = make_cfg();
    cfg.space = wide;
    cfg.iterations = 3;
    hw::Device dev = hw::make_device(hw::DeviceKind::Rtx3080);
    hgnas::HgnasSearch search(supernet, data, cfg,
                              hgnas::make_oracle_evaluator(dev, cfg.workload));
    Rng rng(99);
    return search.run_multistage(rng);
  }
};

TEST(ConcurrentSearch, MemoCacheSkipsRevisitsWithoutChangingTheResult) {
  TinySearchFixture f;
  const hgnas::SearchResult with_cache = f.run_random(true, 4);
  const hgnas::SearchResult without_cache = f.run_random(false, 4);

  // The tiny space guarantees revisits; the cache must absorb them.
  EXPECT_GT(with_cache.eval_cache_hits, 0);
  EXPECT_EQ(without_cache.eval_cache_hits, 0);
  EXPECT_LT(with_cache.latency_queries, without_cache.latency_queries);
  // Genome-derived probe streams make the cached and re-evaluated runs
  // land on the same winner with the same score.
  EXPECT_EQ(hgnas::arch_to_text(with_cache.best_arch),
            hgnas::arch_to_text(without_cache.best_arch));
  EXPECT_DOUBLE_EQ(with_cache.best_objective, without_cache.best_objective);
}

TEST(ConcurrentSearch, BatchPathDeterministicAcrossThreadCounts) {
  TinySearchFixture f;
  const hgnas::SearchResult r2 = f.run_multistage(2);
  const hgnas::SearchResult r4 = f.run_multistage(4);
  EXPECT_EQ(hgnas::arch_to_text(r2.best_arch),
            hgnas::arch_to_text(r4.best_arch));
  EXPECT_DOUBLE_EQ(r2.best_objective, r4.best_objective);
  EXPECT_DOUBLE_EQ(r2.best_supernet_acc, r4.best_supernet_acc);
  EXPECT_EQ(r2.latency_queries, r4.latency_queries);
  EXPECT_EQ(r2.accuracy_probes, r4.accuracy_probes);
  // The in-loop Pareto frontier is part of the deterministic contract.
  ASSERT_EQ(r2.frontier.size(), r4.frontier.size());
  for (std::size_t i = 0; i < r2.frontier.size(); ++i) {
    EXPECT_DOUBLE_EQ(r2.frontier[i].accuracy, r4.frontier[i].accuracy);
    EXPECT_DOUBLE_EQ(r2.frontier[i].latency_ms, r4.frontier[i].latency_ms);
  }
}

TEST(ConcurrentSearch, SharedCacheCarriesScoresAcrossSearches) {
  // Two searches over a frozen supernet, one shared EvalCache: the second
  // run's revisits of genomes the first run scored are cache hits, and the
  // outcome is identical to running with a cold private cache (probe RNG
  // streams are genome-derived on the batch path).
  TinySearchFixture f;
  ScopedNumThreads scoped(4);
  Rng init_rng(5);
  hgnas::SuperNet supernet(f.space, f.sn_cfg, init_rng);
  hgnas::SearchConfig cfg = f.make_cfg();
  hw::Device dev = hw::make_device(hw::DeviceKind::Rtx3080);
  auto oracle = hgnas::make_oracle_evaluator(dev, cfg.workload);

  hgnas::EvalCache shared;
  hgnas::HgnasSearch first(supernet, f.data, cfg, oracle, &shared);
  Rng rng_a(99);
  const hgnas::SearchResult warm = first.run_random(rng_a);
  EXPECT_GT(shared.size(), 0);

  hgnas::HgnasSearch second(supernet, f.data, cfg, oracle, &shared);
  Rng rng_b(123);
  const hgnas::SearchResult with_shared = second.run_random(rng_b);
  // The tiny space guarantees overlap with the first run's scores.
  EXPECT_GT(with_shared.eval_cache_hits, 0);

  // Same second search on a cold private cache: identical outcome, more
  // evaluations.
  hgnas::HgnasSearch cold(supernet, f.data, cfg, oracle);
  Rng rng_c(123);
  const hgnas::SearchResult without_shared = cold.run_random(rng_c);
  EXPECT_EQ(hgnas::arch_to_text(with_shared.best_arch),
            hgnas::arch_to_text(without_shared.best_arch));
  EXPECT_DOUBLE_EQ(with_shared.best_objective,
                   without_shared.best_objective);
  EXPECT_LT(with_shared.latency_queries, without_shared.latency_queries);
  (void)warm;
}

TEST(ConcurrentSearch, EvalCacheScopeClearsOnChangeOnly) {
  hgnas::EvalCache cache;
  cache.open_scope("scope-a");
  hgnas::ScoredCandidate s;
  s.fitness = 0.5;
  cache.insert("scope-a", "genome", s);
  ASSERT_EQ(cache.size(), 1);

  cache.open_scope("scope-a");  // unchanged scope keeps entries
  hgnas::ScoredCandidate out;
  EXPECT_TRUE(cache.lookup("scope-a", "genome", &out));
  EXPECT_DOUBLE_EQ(out.fitness, 0.5);

  cache.open_scope("scope-b");  // any change — evaluator, objective,
  EXPECT_EQ(cache.size(), 0);   // supernet weight version — starts cold
  EXPECT_FALSE(cache.lookup("scope-b", "genome", &out));
}

TEST(ConcurrentSearch, EvalCacheRejectsStaleScopeTraffic) {
  // A search that re-scoped the cache must be immune to another search
  // still holding the old scope: stale lookups miss, stale inserts drop.
  hgnas::EvalCache cache;
  cache.open_scope("scope-a");
  hgnas::ScoredCandidate s;
  s.fitness = 0.5;
  cache.insert("scope-a", "genome", s);

  cache.open_scope("scope-b");
  hgnas::ScoredCandidate out;
  EXPECT_FALSE(cache.lookup("scope-a", "genome", &out));  // stale reader
  cache.insert("scope-a", "genome", s);                   // stale writer
  EXPECT_EQ(cache.size(), 0);
  cache.insert("scope-b", "genome", s);
  EXPECT_TRUE(cache.lookup("scope-b", "genome", &out));
}

TEST(ConcurrentSearch, EvalCacheSaveIsAtomicUnderConcurrentTraffic) {
  // save() persists while other threads hammer the shards: every file an
  // observer reads back must be a COMPLETE save (the tmp-file + rename
  // commit means a reader never sees a torn write), and the shard/scope
  // locking must hold up — under TSan this test is the data-race probe
  // for the whole EvalCache locking story.
  hgnas::SpaceConfig space;
  space.num_positions = 2;
  Rng arch_rng(7);
  const hgnas::Arch arch = hgnas::random_arch(space, arch_rng);
  const std::string path =
      ::testing::TempDir() + "evalcache_stress_cache.txt";
  std::remove(path.c_str());

  hgnas::EvalCache cache;
  cache.open_scope("stress-scope");

  constexpr int kWriters = 3;
  constexpr int kInsertsPerWriter = 300;
  constexpr int kSaveRounds = 25;
  std::atomic<bool> stop{false};
  std::atomic<int> torn_files{0};

  std::thread saver([&] {
    for (int round = 0; round < kSaveRounds && !stop; ++round) {
      ASSERT_TRUE(cache.save(path));
      // load() is all-or-nothing, so a false here (or a scope mismatch)
      // means the rename commit let a partial file through.
      hgnas::EvalCache observer;
      if (!observer.load(path) || observer.scope() != "stress-scope")
        ++torn_files;
    }
    stop = true;
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      hgnas::ScoredCandidate s;
      s.arch = arch;
      s.acc = 0.25;
      s.latency_ms = 1.5;
      s.raw_latency_ms = 1.5;
      s.is_feasible = true;
      hgnas::ScoredCandidate out;
      for (int i = 0; i < kInsertsPerWriter; ++i) {
        const std::string key =
            "genome-" + std::to_string(w) + "-" + std::to_string(i);
        s.fitness = static_cast<double>(w * kInsertsPerWriter + i);
        cache.insert("stress-scope", key, s);
        EXPECT_TRUE(cache.lookup("stress-scope", key, &out));
        // Re-read a neighbour too: cross-shard lookups while save() walks
        // every shard.
        cache.lookup("stress-scope", "genome-0-" + std::to_string(i), &out);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop = true;
  saver.join();

  EXPECT_EQ(torn_files.load(), 0);
  // A final quiescent save must round-trip every entry.
  ASSERT_TRUE(cache.save(path));
  hgnas::EvalCache reloaded;
  ASSERT_TRUE(reloaded.load(path));
  EXPECT_EQ(reloaded.size(), kWriters * kInsertsPerWriter);
  hgnas::ScoredCandidate out;
  EXPECT_TRUE(reloaded.lookup("stress-scope", "genome-1-7", &out));
  EXPECT_DOUBLE_EQ(out.fitness, 1 * kInsertsPerWriter + 7);
  std::remove(path.c_str());
}

TEST(ConcurrentSearch, WeightVersionTracksEveryWeightMutation) {
  // The supernet weight version is what folds retraining into the cache
  // scope: any train_epoch or reinitialize must bump it.
  pointcloud::Dataset data(4, 32, 21);
  hgnas::SpaceConfig space;
  space.num_positions = 2;
  hgnas::SupernetConfig sn_cfg;
  sn_cfg.hidden = 8;
  sn_cfg.k = 6;
  sn_cfg.num_classes = 10;
  sn_cfg.head_hidden = 16;
  Rng rng(3);
  hgnas::SuperNet net(space, sn_cfg, rng);
  EXPECT_EQ(net.weight_version(), 0);
  net.reinitialize(rng);
  EXPECT_EQ(net.weight_version(), 1);
  Adam opt(net.parameters(), 1e-3f);
  auto sampler = [&](Rng& r) { return hgnas::random_arch(space, r); };
  net.train_epoch(data.train(), sampler, opt, 8, rng);
  EXPECT_EQ(net.weight_version(), 2);
}

// ---- parallel supernet training ---------------------------------------------

TEST(ParallelTraining, TrainEpochDeterministicAcrossThreadCounts) {
  pointcloud::Dataset data(4, 32, 21);
  hgnas::SpaceConfig space;
  space.num_positions = 3;
  hgnas::SupernetConfig sn_cfg;
  sn_cfg.hidden = 8;
  sn_cfg.k = 6;
  sn_cfg.num_classes = 10;
  sn_cfg.head_hidden = 16;

  auto run = [&](std::int64_t threads) {
    ScopedNumThreads scoped(threads);
    Rng init_rng(3);
    hgnas::SuperNet net(space, sn_cfg, init_rng);
    Adam opt(net.parameters(), 1e-3f);
    auto sampler = [&](Rng& r) { return hgnas::random_arch(space, r); };
    Rng rng(11);
    double loss = 0.0;
    for (int e = 0; e < 2; ++e)
      loss = net.train_epoch(data.train(), sampler, opt, 8, rng);
    std::vector<std::vector<float>> params;
    for (const auto& p : net.parameters())
      params.emplace_back(p.data().begin(), p.data().end());
    return std::make_pair(loss, params);
  };

  const auto [loss2, params2] = run(2);
  const auto [loss4, params4] = run(4);
  EXPECT_EQ(loss2, loss4);
  ASSERT_EQ(params2.size(), params4.size());
  for (std::size_t p = 0; p < params2.size(); ++p)
    for (std::size_t i = 0; i < params2[p].size(); ++i)
      ASSERT_EQ(params2[p][i], params4[p][i]) << "param " << p << " " << i;

  // The serial path trains too (different RNG discipline, same schedule).
  const auto [loss1, params1] = run(1);
  EXPECT_TRUE(std::isfinite(loss1));
  EXPECT_EQ(params1.size(), params2.size());
}

TEST(ParallelTraining, CollectLabeledArchsDeterministicAcrossThreadCounts) {
  hw::Device dev = hw::make_device(hw::DeviceKind::Rtx3080);
  hgnas::SpaceConfig space;
  space.num_positions = 4;
  hgnas::Workload w;
  w.num_points = 256;
  w.k = 10;
  w.num_classes = 10;

  auto collect = [&](std::int64_t threads) {
    ScopedNumThreads scoped(threads);
    return predictor::collect_labeled_archs(dev, space, w, 50, 77);
  };
  const auto r2 = collect(2);
  const auto r4 = collect(4);
  ASSERT_EQ(r2.size(), 50u);
  ASSERT_EQ(r4.size(), r2.size());
  for (std::size_t i = 0; i < r2.size(); ++i) {
    EXPECT_EQ(hgnas::arch_to_text(r2[i].arch),
              hgnas::arch_to_text(r4[i].arch));
    EXPECT_DOUBLE_EQ(r2[i].latency_ms, r4[i].latency_ms);
  }
  // Serial path still yields a full set (its own historical stream).
  EXPECT_EQ(collect(1).size(), 50u);
}

}  // namespace
}  // namespace hg
