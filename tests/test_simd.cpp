// hg::simd — the vectorized inner loops behind matmul, the fused GNN
// aggregate, and the KNN distance kernels. The contract under test is
// BIT-IDENTITY: the dispatched entry points (AVX2 under HG_NATIVE=ON,
// scalar otherwise) must produce exactly the bytes of the scalar
// reference for every helper, every length (remainder lanes included),
// and for the edge semantics the kernels rely on (first-winner ties,
// NaN challengers, unset argmax lanes). On top of the helpers, the
// public ops that call them (matmul forward/backward, aggregate_fused,
// the KNN builders) are checked against naive in-test references that
// spell out the historical arithmetic order.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <array>
#include <cstring>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "core/simd.hpp"
#include "gnn/gnn.hpp"
#include "graph/graph.hpp"
#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"

namespace hg {
namespace {

/// Lengths that cover empty, sub-lane, exact-lane, and remainder cases
/// for 8-wide AVX2 (n % 8 takes every value).
const std::int64_t kLengths[] = {0, 1, 2, 3, 5, 7, 8, 9, 13, 15, 16, 17, 31, 33, 100};

std::vector<float> random_floats(std::size_t n, Rng& rng, float lo = -4.f,
                                 float hi = 4.f) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.uniform(lo, hi));
  return v;
}

/// Bitwise equality — EXPECT_EQ on floats would conflate -0.f and 0.f
/// and reject NaN == NaN; the contract here is "same bytes".
::testing::AssertionResult bits_equal(const std::vector<float>& a,
                                      const std::vector<float>& b) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure() << "size " << a.size() << " vs "
                                         << b.size();
  if (!a.empty() &&
      std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) != 0) {
    for (std::size_t i = 0; i < a.size(); ++i)
      if (std::memcmp(&a[i], &b[i], sizeof(float)) != 0)
        return ::testing::AssertionFailure()
               << "element " << i << ": " << a[i] << " vs " << b[i];
  }
  return ::testing::AssertionSuccess();
}

TEST(SimdHelpers, AxpyMatchesScalarBitwise) {
  Rng rng(11);
  for (const std::int64_t n : kLengths) {
    for (const float a : {0.5f, -1.25f, 0.f, 3e-3f}) {
      const auto src = random_floats(static_cast<std::size_t>(n), rng);
      auto dst = random_floats(static_cast<std::size_t>(n), rng);
      auto ref = dst;
      simd::axpy(dst.data(), a, src.data(), n);
      simd::scalar::axpy(ref.data(), a, src.data(), n);
      EXPECT_TRUE(bits_equal(dst, ref)) << "n=" << n << " a=" << a;
    }
  }
}

TEST(SimdHelpers, AccumulateMatchesScalarBitwise) {
  Rng rng(12);
  for (const std::int64_t n : kLengths) {
    const auto src = random_floats(static_cast<std::size_t>(n), rng);
    auto dst = random_floats(static_cast<std::size_t>(n), rng);
    auto ref = dst;
    simd::accumulate(dst.data(), src.data(), n);
    simd::scalar::accumulate(ref.data(), src.data(), n);
    EXPECT_TRUE(bits_equal(dst, ref)) << "n=" << n;
  }
}

TEST(SimdHelpers, SubMatchesScalarBitwise) {
  Rng rng(13);
  for (const std::int64_t n : kLengths) {
    const auto a = random_floats(static_cast<std::size_t>(n), rng);
    const auto b = random_floats(static_cast<std::size_t>(n), rng);
    std::vector<float> dst(static_cast<std::size_t>(n)),
        ref(static_cast<std::size_t>(n));
    simd::sub(dst.data(), a.data(), b.data(), n);
    simd::scalar::sub(ref.data(), a.data(), b.data(), n);
    EXPECT_TRUE(bits_equal(dst, ref)) << "n=" << n;
  }
}

TEST(SimdHelpers, ScaleInvMatchesScalarBitwise) {
  Rng rng(14);
  for (const std::int64_t n : kLengths) {
    for (const float d : {3.f, 7.f, 0.1f, 1.f}) {
      auto dst = random_floats(static_cast<std::size_t>(n), rng);
      auto ref = dst;
      simd::scale_inv(dst.data(), d, n);
      simd::scalar::scale_inv(ref.data(), d, n);
      EXPECT_TRUE(bits_equal(dst, ref)) << "n=" << n << " d=" << d;
    }
  }
}

TEST(SimdHelpers, ExtremalUpdateMatchesScalarBitwise) {
  Rng rng(15);
  for (const std::int64_t n : kLengths) {
    for (const bool is_max : {true, false}) {
      auto out = random_floats(static_cast<std::size_t>(n), rng);
      std::vector<std::int64_t> arg(static_cast<std::size_t>(n));
      // A mix of unset (-1) and already-claimed lanes.
      for (std::size_t j = 0; j < arg.size(); ++j)
        arg[j] = (j % 3 == 0) ? -1 : static_cast<std::int64_t>(j % 5);
      auto msg = random_floats(static_cast<std::size_t>(n), rng);
      // Force exact ties on some lanes: first winner must be kept.
      for (std::size_t j = 0; j + 1 < msg.size(); j += 4) msg[j] = out[j];

      auto out_ref = out;
      auto arg_ref = arg;
      simd::extremal_update(out.data(), arg.data(), msg.data(), 7, n, is_max);
      simd::scalar::extremal_update(out_ref.data(), arg_ref.data(),
                                    msg.data(), 7, n, is_max);
      EXPECT_TRUE(bits_equal(out, out_ref)) << "n=" << n;
      EXPECT_EQ(arg, arg_ref) << "n=" << n << " is_max=" << is_max;
    }
  }
}

TEST(SimdHelpers, ExtremalUpdateEdgeSemantics) {
  // 9 lanes (one full AVX2 vector + one remainder lane), exercising the
  // three semantic rules lane by lane:
  //   - an unset lane (arg < 0) always takes the challenger, even NaN;
  //   - a tie keeps the incumbent (strict comparison);
  //   - a NaN challenger never beats a claimed lane (quiet compare).
  const float nan = std::numeric_limits<float>::quiet_NaN();
  for (const bool is_max : {true, false}) {
    std::vector<float> out = {1.f, 1.f, 1.f, 1.f, 1.f, 1.f, 1.f, 1.f, 1.f};
    std::vector<float> msg = {1.f, nan, 2.f, -2.f, nan, 1.f, 2.f, -2.f, nan};
    std::vector<std::int64_t> arg = {3, -1, 3, 3, 3, -1, -1, -1, 3};
    auto out_ref = out;
    auto arg_ref = arg;
    simd::extremal_update(out.data(), arg.data(), msg.data(), 9, 9, is_max);
    simd::scalar::extremal_update(out_ref.data(), arg_ref.data(), msg.data(),
                                  9, 9, is_max);
    EXPECT_TRUE(bits_equal(out, out_ref)) << "is_max=" << is_max;
    EXPECT_EQ(arg, arg_ref) << "is_max=" << is_max;
    // Spot-check the scalar semantics themselves.
    EXPECT_EQ(arg_ref[0], 3);                  // tie: incumbent keeps
    EXPECT_EQ(arg_ref[1], 9);                  // unset takes even NaN
    EXPECT_EQ(arg_ref[2], is_max ? 9 : 3);     // 2 beats 1 only for max
    EXPECT_EQ(arg_ref[3], is_max ? 3 : 9);     // -2 beats 1 only for min
    EXPECT_EQ(arg_ref[4], 3);                  // NaN never beats a claim
    EXPECT_EQ(arg_ref[8], 3);                  // remainder lane, same rule
  }
}

TEST(SimdHelpers, SqDist3MatchesScalarBitwise) {
  Rng rng(16);
  for (const std::int64_t n : kLengths) {
    const auto xs = random_floats(static_cast<std::size_t>(n), rng);
    const auto ys = random_floats(static_cast<std::size_t>(n), rng);
    const auto zs = random_floats(static_cast<std::size_t>(n), rng);
    std::vector<float> dist(static_cast<std::size_t>(n)),
        ref(static_cast<std::size_t>(n));
    simd::sq_dist3(dist.data(), 0.3f, -1.7f, 2.9f, xs.data(), ys.data(),
                   zs.data(), n);
    simd::scalar::sq_dist3(ref.data(), 0.3f, -1.7f, 2.9f, xs.data(),
                           ys.data(), zs.data(), n);
    EXPECT_TRUE(bits_equal(dist, ref)) << "n=" << n;
  }
}

TEST(SimdHelpers, DistAccumulateMatchesScalarBitwise) {
  Rng rng(17);
  for (const std::int64_t n : kLengths) {
    const auto row = random_floats(static_cast<std::size_t>(n), rng);
    auto dist = random_floats(static_cast<std::size_t>(n), rng, 0.f, 10.f);
    auto ref = dist;
    simd::dist_accumulate(dist.data(), -0.8f, row.data(), n);
    simd::scalar::dist_accumulate(ref.data(), -0.8f, row.data(), n);
    EXPECT_TRUE(bits_equal(dist, ref)) << "n=" << n;
  }
}

// ---- the ops built on the helpers ------------------------------------------

/// Naive c[i,j] = sum_p a[i,p] * b[p,j], accumulated in ascending p with
/// one mul+add per step — the historical matmul order.
std::vector<float> naive_matmul(const std::vector<float>& a,
                                const std::vector<float>& b, std::int64_t m,
                                std::int64_t k, std::int64_t n) {
  std::vector<float> c(static_cast<std::size_t>(m * n));
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) {
      float acc = 0.f;
      for (std::int64_t p = 0; p < k; ++p)
        acc += a[static_cast<std::size_t>(i * k + p)] *
               b[static_cast<std::size_t>(p * n + j)];
      c[static_cast<std::size_t>(i * n + j)] = acc;
    }
  return c;
}

TEST(SimdOps, MatmulForwardBitIdenticalToNaiveReference) {
  Rng rng(21);
  for (const auto [m, k, n] :
       {std::array<std::int64_t, 3>{1, 1, 1},
        std::array<std::int64_t, 3>{3, 5, 7},
        std::array<std::int64_t, 3>{8, 8, 8},
        std::array<std::int64_t, 3>{9, 17, 13},
        std::array<std::int64_t, 3>{16, 31, 33}}) {
    const auto av = random_floats(static_cast<std::size_t>(m * k), rng);
    const auto bv = random_floats(static_cast<std::size_t>(k * n), rng);
    const Tensor a = Tensor::from_vector({m, k}, av);
    const Tensor b = Tensor::from_vector({k, n}, bv);
    const Tensor c = matmul(a, b);
    const std::vector<float> ref = naive_matmul(av, bv, m, k, n);
    ASSERT_EQ(c.numel(), static_cast<std::int64_t>(ref.size()));
    for (std::size_t i = 0; i < ref.size(); ++i)
      ASSERT_EQ(c.data()[i], ref[i])
          << "m=" << m << " k=" << k << " n=" << n << " i=" << i;
  }
}

TEST(SimdOps, MatmulBackwardBitIdenticalToNaiveReference) {
  // The backward pass runs the other two kernels: ga = g @ b^T
  // (raw_matmul_a_bt) and gb = a^T @ g (raw_matmul_at_b). References
  // accumulate in ascending p exactly like the kernels' axpy form.
  Rng rng(22);
  for (const auto [m, k, n] :
       {std::array<std::int64_t, 3>{3, 5, 7},
        std::array<std::int64_t, 3>{9, 17, 13},
        std::array<std::int64_t, 3>{16, 9, 31}}) {
    const auto av = random_floats(static_cast<std::size_t>(m * k), rng);
    const auto bv = random_floats(static_cast<std::size_t>(k * n), rng);
    std::vector<float> seed(static_cast<std::size_t>(m * n));
    for (std::size_t i = 0; i < seed.size(); ++i)
      seed[i] = static_cast<float>(static_cast<int>(i % 5) - 2) * 0.75f;

    Tensor a = Tensor::from_vector({m, k}, av, /*requires_grad=*/true);
    Tensor b = Tensor::from_vector({k, n}, bv, /*requires_grad=*/true);
    Tensor c = matmul(a, b);
    c.backward(seed);

    // ga[i,p] = sum_j g[i,j] * b[p,j] — ascending j.
    for (std::int64_t i = 0; i < m; ++i)
      for (std::int64_t p = 0; p < k; ++p) {
        float acc = 0.f;
        for (std::int64_t j = 0; j < n; ++j)
          acc += seed[static_cast<std::size_t>(i * n + j)] *
                 bv[static_cast<std::size_t>(p * n + j)];
        ASSERT_EQ(a.grad()[static_cast<std::size_t>(i * k + p)], acc)
            << "ga " << i << "," << p;
      }
    // gb[p,j] = sum_i a[i,p] * g[i,j] — ascending i.
    for (std::int64_t p = 0; p < k; ++p)
      for (std::int64_t j = 0; j < n; ++j) {
        float acc = 0.f;
        for (std::int64_t i = 0; i < m; ++i)
          acc += av[static_cast<std::size_t>(i * k + p)] *
                 seed[static_cast<std::size_t>(i * n + j)];
        ASSERT_EQ(b.grad()[static_cast<std::size_t>(p * n + j)], acc)
            << "gb " << p << "," << j;
      }
  }
}

TEST(SimdOps, FusedAggregateMatrixBitIdenticalToMaterialized) {
  // Every MessageType x Reduce combination, on a channel count (9) that
  // leaves a remainder lane in every 8-wide helper call. (The same
  // matrix runs at larger sizes and across thread counts in
  // test_parallel.cpp; this instance pins the SIMD remainder handling.)
  Rng rng(23);
  const std::int64_t nodes = 13, c = 9;
  graph::EdgeList g = graph::random_graph(nodes, 4, rng);
  g.num_nodes = nodes;
  const auto xv = random_floats(static_cast<std::size_t>(nodes * c), rng);

  for (std::int64_t mi = 0; mi < gnn::kNumMessageTypes; ++mi) {
    const auto mt = static_cast<gnn::MessageType>(mi);
    const std::int64_t md = gnn::message_dim(mt, c);
    std::vector<float> seed(static_cast<std::size_t>(nodes * md));
    for (std::size_t i = 0; i < seed.size(); ++i)
      seed[i] = static_cast<float>(static_cast<int>(i % 7) - 3) * 0.5f;
    for (const Reduce reduce :
         {Reduce::Sum, Reduce::Mean, Reduce::Max, Reduce::Min}) {
      Tensor x_ref = Tensor::from_vector({nodes, c}, xv, true);
      Tensor y_ref = gnn::aggregate_materialized(x_ref, g, mt, reduce);
      y_ref.backward(seed);
      Tensor x_fused = Tensor::from_vector({nodes, c}, xv, true);
      Tensor y_fused = gnn::aggregate_fused(x_fused, g, mt, reduce);
      y_fused.backward(seed);
      ASSERT_EQ(y_fused.shape(), y_ref.shape());
      for (std::int64_t i = 0; i < y_ref.numel(); ++i)
        ASSERT_EQ(y_fused.data()[i], y_ref.data()[i])
            << gnn::message_type_name(mt) << "/"
            << static_cast<int>(reduce) << " out " << i;
      for (std::size_t i = 0; i < x_ref.grad().size(); ++i)
        ASSERT_EQ(x_fused.grad()[i], x_ref.grad()[i])
            << gnn::message_type_name(mt) << "/"
            << static_cast<int>(reduce) << " grad " << i;
    }
  }
}

TEST(SimdOps, KnnBruteMatchesNaiveReference) {
  // The SoA distance kernel must not change a single neighbour choice:
  // same distances bit-for-bit means same selection, ties included.
  Rng rng(24);
  const std::int64_t n = 37, k = 5;
  const auto pts = random_floats(static_cast<std::size_t>(n * 3), rng);
  const graph::EdgeList g =
      graph::knn_graph_brute(std::span<const float>(pts), n, k);

  ASSERT_EQ(g.num_edges(), n * k);
  for (std::int64_t i = 0; i < n; ++i) {
    // Naive per-query reference: scalar distances, same selection rule
    // (partial sort by (dist, index)).
    std::vector<std::pair<float, std::int64_t>> cand;
    for (std::int64_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const float dx = pts[static_cast<std::size_t>(i * 3)] -
                       pts[static_cast<std::size_t>(j * 3)];
      const float dy = pts[static_cast<std::size_t>(i * 3 + 1)] -
                       pts[static_cast<std::size_t>(j * 3 + 1)];
      const float dz = pts[static_cast<std::size_t>(i * 3 + 2)] -
                       pts[static_cast<std::size_t>(j * 3 + 2)];
      cand.emplace_back(dx * dx + dy * dy + dz * dz, j);
    }
    std::sort(cand.begin(), cand.end());
    std::vector<std::int64_t> expect;
    for (std::int64_t e = 0; e < k; ++e)
      expect.push_back(cand[static_cast<std::size_t>(e)].second);
    std::sort(expect.begin(), expect.end());

    std::vector<std::int64_t> got;
    for (std::int64_t e = 0; e < g.num_edges(); ++e)
      if (g.dst[static_cast<std::size_t>(e)] == i)
        got.push_back(g.src[static_cast<std::size_t>(e)]);
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, expect) << "query " << i;
  }
}

TEST(SimdOps, KnnFeaturesMatchesNaiveReference) {
  // Feature-space KNN with dim=9: the transposed dist_accumulate sweep
  // (one dimension at a time) must equal the naive per-pair scalar sum,
  // which accumulates dimensions in the same ascending order.
  Rng rng(25);
  const std::int64_t n = 29, dim = 9, k = 4;
  const auto feats = random_floats(static_cast<std::size_t>(n * dim), rng);
  const graph::EdgeList g =
      graph::knn_graph_features(std::span<const float>(feats), n, dim, k);

  ASSERT_EQ(g.num_edges(), n * k);
  for (std::int64_t i = 0; i < n; ++i) {
    std::vector<std::pair<float, std::int64_t>> cand;
    for (std::int64_t j = 0; j < n; ++j) {
      if (j == i) continue;
      float acc = 0.f;
      for (std::int64_t d = 0; d < dim; ++d) {
        const float diff = feats[static_cast<std::size_t>(i * dim + d)] -
                           feats[static_cast<std::size_t>(j * dim + d)];
        acc += diff * diff;
      }
      cand.emplace_back(acc, j);
    }
    std::sort(cand.begin(), cand.end());
    std::vector<std::int64_t> expect;
    for (std::int64_t e = 0; e < k; ++e)
      expect.push_back(cand[static_cast<std::size_t>(e)].second);
    std::sort(expect.begin(), expect.end());

    std::vector<std::int64_t> got;
    for (std::int64_t e = 0; e < g.num_edges(); ++e)
      if (g.dst[static_cast<std::size_t>(e)] == i)
        got.push_back(g.src[static_cast<std::size_t>(e)]);
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, expect) << "query " << i;
  }
}

}  // namespace
}  // namespace hg
