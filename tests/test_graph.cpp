// Graph construction kernels: KNN exactness, grid/brute equivalence, CSR,
// random sampling, properties.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/graph.hpp"
#include "tensor/rng.hpp"

namespace hg::graph {
namespace {

std::vector<float> random_points(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> pts(static_cast<std::size_t>(n) * 3);
  for (auto& v : pts) v = rng.uniform(-1.f, 1.f);
  return pts;
}

/// Neighbour set of node v in an edge list.
std::multiset<std::int64_t> neighbours_of(const EdgeList& e, std::int64_t v) {
  std::multiset<std::int64_t> out;
  for (std::size_t i = 0; i < e.dst.size(); ++i)
    if (e.dst[i] == v) out.insert(e.src[i]);
  return out;
}

TEST(KnnBrute, EachNodeGetsKNeighbours) {
  auto pts = random_points(20, 1);
  EdgeList e = knn_graph_brute(pts, 20, 5);
  EXPECT_EQ(e.num_nodes, 20);
  EXPECT_EQ(e.num_edges(), 100);
  for (std::int64_t v = 0; v < 20; ++v)
    EXPECT_EQ(neighbours_of(e, v).size(), 5u);
}

TEST(KnnBrute, NoSelfLoops) {
  auto pts = random_points(15, 2);
  EdgeList e = knn_graph_brute(pts, 15, 4);
  for (std::size_t i = 0; i < e.src.size(); ++i)
    EXPECT_NE(e.src[i], e.dst[i]);
}

TEST(KnnBrute, KLargerThanNClamps) {
  auto pts = random_points(4, 3);
  EdgeList e = knn_graph_brute(pts, 4, 10);
  EXPECT_EQ(e.num_edges(), 4 * 3);  // everyone else is a neighbour
}

TEST(KnnBrute, PicksActualNearest) {
  // Colinear points at x = 0, 1, 2, 5: NN of x=0 is x=1, etc.
  std::vector<float> pts = {0, 0, 0, 1, 0, 0, 2, 0, 0, 5, 0, 0};
  EdgeList e = knn_graph_brute(pts, 4, 1);
  auto n0 = neighbours_of(e, 0);
  EXPECT_TRUE(n0.count(1));
  auto n3 = neighbours_of(e, 3);
  EXPECT_TRUE(n3.count(2));
}

TEST(KnnBrute, DegenerateInputs) {
  EXPECT_EQ(knn_graph_brute({}, 0, 3).num_edges(), 0);
  std::vector<float> one = {0, 0, 0};
  EXPECT_EQ(knn_graph_brute(one, 1, 3).num_edges(), 0);
  EXPECT_THROW(knn_graph_brute(one, 1, 0), std::invalid_argument);
  EXPECT_THROW(knn_graph_brute(one, 2, 3), std::invalid_argument);
}

class KnnGridEquivalence : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(KnnGridEquivalence, GridMatchesBruteNeighbourSets) {
  const std::int64_t n = GetParam();
  auto pts = random_points(n, static_cast<std::uint64_t>(n));
  const std::int64_t k = 8;
  EdgeList brute = knn_graph_brute(pts, n, k);
  EdgeList grid = knn_graph_grid(pts, n, k);
  ASSERT_EQ(brute.num_edges(), grid.num_edges());
  for (std::int64_t v = 0; v < n; ++v) {
    // Ties can be ordered differently, so compare distances, not ids.
    auto dist_set = [&](const EdgeList& e) {
      std::multiset<float> d;
      for (std::size_t i = 0; i < e.dst.size(); ++i) {
        if (e.dst[i] != v) continue;
        const auto s = e.src[i];
        float acc = 0.f;
        for (int c = 0; c < 3; ++c) {
          const float diff = pts[static_cast<std::size_t>(s * 3 + c)] -
                             pts[static_cast<std::size_t>(v * 3 + c)];
          acc += diff * diff;
        }
        d.insert(acc);
      }
      return d;
    };
    auto bd = dist_set(brute);
    auto gd = dist_set(grid);
    ASSERT_EQ(bd.size(), gd.size());
    auto bi = bd.begin();
    auto gi = gd.begin();
    for (; bi != bd.end(); ++bi, ++gi) EXPECT_NEAR(*bi, *gi, 1e-5f);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, KnnGridEquivalence,
                         ::testing::Values<std::int64_t>(16, 64, 200, 512));

TEST(KnnGrid, ClusteredPointsStillExact) {
  // Two tight clusters far apart — stresses the ring-expansion logic.
  Rng rng(7);
  std::vector<float> pts;
  for (int i = 0; i < 30; ++i) {
    pts.push_back(rng.uniform(-0.01f, 0.01f));
    pts.push_back(rng.uniform(-0.01f, 0.01f));
    pts.push_back(rng.uniform(-0.01f, 0.01f));
  }
  for (int i = 0; i < 30; ++i) {
    pts.push_back(10.f + rng.uniform(-0.01f, 0.01f));
    pts.push_back(rng.uniform(-0.01f, 0.01f));
    pts.push_back(rng.uniform(-0.01f, 0.01f));
  }
  EdgeList brute = knn_graph_brute(pts, 60, 5);
  EdgeList grid = knn_graph_grid(pts, 60, 5);
  EXPECT_EQ(brute.num_edges(), grid.num_edges());
  // Cluster membership: all neighbours of node 0 are in the first cluster.
  for (auto s : neighbours_of(grid, 0)) EXPECT_LT(s, 30);
}

TEST(KnnFeatures, WorksInHigherDimensions) {
  // 4-D features, nearest by feature distance.
  std::vector<float> f = {
      0, 0, 0, 0,
      1, 0, 0, 0,
      0.1f, 0, 0, 0,
      5, 5, 5, 5,
  };
  EdgeList e = knn_graph_features(f, 4, 4, 1);
  auto n0 = neighbours_of(e, 0);
  EXPECT_TRUE(n0.count(2));
}

TEST(RandomGraph, DegreeAndDistinctness) {
  Rng rng(11);
  EdgeList e = random_graph(50, 6, rng);
  EXPECT_EQ(e.num_edges(), 300);
  for (std::int64_t v = 0; v < 50; ++v) {
    auto ns = neighbours_of(e, v);
    EXPECT_EQ(ns.size(), 6u);
    std::set<std::int64_t> uniq(ns.begin(), ns.end());
    EXPECT_EQ(uniq.size(), 6u);  // distinct neighbours
    EXPECT_FALSE(uniq.count(v));  // no self-loop
  }
}

TEST(RandomGraph, IsRandom) {
  Rng r1(1), r2(2);
  EdgeList a = random_graph(30, 4, r1);
  EdgeList b = random_graph(30, 4, r2);
  EXPECT_NE(a.src, b.src);
}

TEST(Csr, GroupsByDestination) {
  EdgeList e;
  e.num_nodes = 3;
  e.add_edge(0, 1);
  e.add_edge(2, 1);
  e.add_edge(1, 0);
  Csr csr = to_csr(e);
  EXPECT_EQ(csr.degree(0), 1);
  EXPECT_EQ(csr.degree(1), 2);
  EXPECT_EQ(csr.degree(2), 0);
  // Incoming neighbours of node 1 = {0, 2}.
  std::set<std::int64_t> in1(csr.neighbors.begin() + csr.row_ptr[1],
                             csr.neighbors.begin() + csr.row_ptr[2]);
  EXPECT_EQ(in1, (std::set<std::int64_t>{0, 2}));
}

TEST(Csr, RejectsOutOfRangeIndices) {
  EdgeList e;
  e.num_nodes = 2;
  e.add_edge(0, 5);
  EXPECT_THROW(to_csr(e), std::invalid_argument);
}

TEST(Properties, DensityAndDegrees) {
  EdgeList e;
  e.num_nodes = 4;
  e.add_edge(0, 1);
  e.add_edge(2, 1);
  e.add_edge(3, 1);
  e.add_edge(1, 0);
  GraphProperties p = compute_properties(e);
  EXPECT_EQ(p.num_nodes, 4);
  EXPECT_EQ(p.num_edges, 4);
  EXPECT_DOUBLE_EQ(p.avg_degree, 1.0);
  EXPECT_EQ(p.max_degree, 3);
  EXPECT_EQ(p.min_degree, 0);
  EXPECT_NEAR(p.density, 4.0 / 12.0, 1e-12);
}

TEST(Properties, KnnGraphDensity) {
  auto pts = random_points(32, 13);
  EdgeList e = knn_graph_brute(pts, 32, 4);
  GraphProperties p = compute_properties(e);
  EXPECT_DOUBLE_EQ(p.avg_degree, 4.0);
  EXPECT_EQ(p.min_degree, 4);  // in-degree via dst is exactly k
}

TEST(KnnDispatch, SelectsCorrectImplementation) {
  // Behavioural check only: results must match brute either way.
  auto pts = random_points(600, 17);
  EdgeList a = knn_graph(pts, 600, 8);
  EdgeList b = knn_graph_brute(pts, 600, 8);
  EXPECT_EQ(a.num_edges(), b.num_edges());
}

}  // namespace
}  // namespace hg::graph
