// Tests for the deterministic RNG substrate.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "tensor/rng.hpp"

namespace hg {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanApproximatesHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.uniform(-2.f, 5.f);
    EXPECT_GE(v, -2.f);
    EXPECT_LT(v, 5.f);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(5);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i)
    ++counts[static_cast<std::size_t>(rng.uniform_int(10))];
  for (int c : counts) EXPECT_GT(c, 700);  // roughly uniform
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(std::int64_t{-3}, std::int64_t{3});
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsMatchStandardGaussian) {
  Rng rng(13);
  const int n = 50000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, NormalWithMeanAndStddev) {
  Rng rng(17);
  const int n = 30000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.f, 0.5f);
  EXPECT_NEAR(sum / n, 5.0, 0.02);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(29);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  auto orig = v;
  rng.shuffle(v);
  EXPECT_NE(v, orig);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(31);
  Rng child = a.split();
  // Parent continues; child differs from a fresh copy of the parent.
  EXPECT_NE(a.next(), child.next());
}

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 sm(1234);
  const auto a = sm.next();
  SplitMix64 sm2(1234);
  EXPECT_EQ(a, sm2.next());
}

}  // namespace
}  // namespace hg
