// GNN operators: message builders (Table I), aggregation, pooling,
// EdgeConv, GCN layer.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "gnn/gnn.hpp"
#include "tensor/optim.hpp"

namespace hg::gnn {
namespace {

/// Tiny fixed graph: 0 -> 2, 1 -> 2, 2 -> 0 with 2-dim features.
struct Fixture {
  graph::EdgeList g;
  Tensor x;
  Fixture() {
    g.num_nodes = 3;
    g.add_edge(0, 2);
    g.add_edge(1, 2);
    g.add_edge(2, 0);
    x = Tensor::from_vector({3, 2}, {1, 2, 3, 4, 5, 6});
  }
};

TEST(MessageDim, MatchesTableI) {
  EXPECT_EQ(message_dim(MessageType::SourcePos, 8), 8);
  EXPECT_EQ(message_dim(MessageType::TargetPos, 8), 8);
  EXPECT_EQ(message_dim(MessageType::RelPos, 8), 8);
  EXPECT_EQ(message_dim(MessageType::Distance, 8), 1);
  EXPECT_EQ(message_dim(MessageType::SourceRel, 8), 16);
  EXPECT_EQ(message_dim(MessageType::TargetRel, 8), 16);
  EXPECT_EQ(message_dim(MessageType::Full, 8), 25);
}

TEST(Messages, SourcePosGathersNeighbour) {
  Fixture f;
  Tensor m = build_messages(f.x, f.g, MessageType::SourcePos);
  EXPECT_EQ(m.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ((m.at({0, 0})), 1.f);  // edge 0: src 0
  EXPECT_FLOAT_EQ((m.at({2, 0})), 5.f);  // edge 2: src 2
}

TEST(Messages, TargetPosGathersCentre) {
  Fixture f;
  Tensor m = build_messages(f.x, f.g, MessageType::TargetPos);
  EXPECT_FLOAT_EQ((m.at({0, 0})), 5.f);  // edge 0: dst 2
  EXPECT_FLOAT_EQ((m.at({2, 1})), 2.f);  // edge 2: dst 0
}

TEST(Messages, RelPosIsSourceMinusTarget) {
  Fixture f;
  Tensor m = build_messages(f.x, f.g, MessageType::RelPos);
  EXPECT_FLOAT_EQ((m.at({0, 0})), 1.f - 5.f);
  EXPECT_FLOAT_EQ((m.at({1, 1})), 4.f - 6.f);
}

TEST(Messages, DistanceIsL2Norm) {
  Fixture f;
  Tensor m = build_messages(f.x, f.g, MessageType::Distance);
  EXPECT_EQ(m.shape(), (Shape{3, 1}));
  EXPECT_NEAR((m.at({0, 0})), std::sqrt(16.f + 16.f), 1e-4f);
}

TEST(Messages, TargetRelConcatenation) {
  Fixture f;
  Tensor m = build_messages(f.x, f.g, MessageType::TargetRel);
  EXPECT_EQ(m.shape(), (Shape{3, 4}));
  EXPECT_FLOAT_EQ((m.at({0, 0})), 5.f);   // target
  EXPECT_FLOAT_EQ((m.at({0, 2})), -4.f);  // rel
}

TEST(Messages, SourceRelConcatenation) {
  Fixture f;
  Tensor m = build_messages(f.x, f.g, MessageType::SourceRel);
  EXPECT_EQ(m.shape(), (Shape{3, 4}));
  EXPECT_FLOAT_EQ((m.at({0, 0})), 1.f);
  EXPECT_FLOAT_EQ((m.at({0, 2})), -4.f);
}

TEST(Messages, FullLayout) {
  Fixture f;
  Tensor m = build_messages(f.x, f.g, MessageType::Full);
  EXPECT_EQ(m.shape(), (Shape{3, 7}));  // 3*2 + 1
  EXPECT_FLOAT_EQ((m.at({0, 0})), 5.f);                     // target
  EXPECT_FLOAT_EQ((m.at({0, 2})), 1.f);                     // source
  EXPECT_FLOAT_EQ((m.at({0, 4})), -4.f);                    // rel
  EXPECT_NEAR((m.at({0, 6})), std::sqrt(32.f), 1e-4f);      // dist
}

TEST(Messages, NodeCountMismatchThrows) {
  Fixture f;
  Tensor wrong = Tensor::ones({5, 2});
  EXPECT_THROW(build_messages(wrong, f.g, MessageType::SourcePos),
               std::invalid_argument);
}

class AggregateReduce : public ::testing::TestWithParam<Reduce> {};

TEST_P(AggregateReduce, ShapeAndFiniteness) {
  Fixture f;
  Tensor out = aggregate(f.x, f.g, MessageType::TargetRel, GetParam());
  EXPECT_EQ(out.shape(), (Shape{3, 4}));
  for (float v : out.data()) EXPECT_TRUE(std::isfinite(v));
}

INSTANTIATE_TEST_SUITE_P(AllReduces, AggregateReduce,
                         ::testing::Values(Reduce::Sum, Reduce::Mean,
                                           Reduce::Max, Reduce::Min));

TEST(Aggregate, SumMatchesManualComputation) {
  Fixture f;
  Tensor out = aggregate(f.x, f.g, MessageType::SourcePos, Reduce::Sum);
  // Node 2 receives sources 0 and 1: (1+3, 2+4).
  EXPECT_FLOAT_EQ((out.at({2, 0})), 4.f);
  EXPECT_FLOAT_EQ((out.at({2, 1})), 6.f);
  // Node 1 has no incoming edges.
  EXPECT_FLOAT_EQ((out.at({1, 0})), 0.f);
}

TEST(Pooling, GlobalMaxAndMean) {
  Tensor x = Tensor::from_vector({3, 2}, {1, 6, 5, 2, 3, 4});
  Tensor mx = global_max_pool(x);
  EXPECT_EQ(mx.shape(), (Shape{1, 2}));
  EXPECT_FLOAT_EQ((mx.at({0, 0})), 5.f);
  EXPECT_FLOAT_EQ((mx.at({0, 1})), 6.f);
  Tensor mn = global_mean_pool(x);
  EXPECT_FLOAT_EQ((mn.at({0, 0})), 3.f);
  EXPECT_FLOAT_EQ((mn.at({0, 1})), 4.f);
}

TEST(EdgeConv, OutputShapeAndParamCount) {
  Rng rng(1);
  EdgeConv conv(4, 8, rng);
  EXPECT_EQ(conv.num_parameters(), (2 * 4) * 8 + 8 + 2 * 8);
  Fixture f;
  Tensor x4 = Tensor::ones({3, 4});
  Tensor y = conv.forward(x4, f.g);
  EXPECT_EQ(y.shape(), (Shape{3, 8}));
}

TEST(EdgeConv, GradientsFlowToParameters) {
  Rng rng(2);
  EdgeConv conv(2, 4, rng);
  Fixture f;
  Tensor y = conv.forward(f.x, f.g);
  sum_all(y).backward();
  bool any_grad = false;
  for (auto& p : conv.parameters())
    if (p.has_grad()) any_grad = true;
  EXPECT_TRUE(any_grad);
}

TEST(EdgeConv, LearnsSimpleTarget) {
  // Overfit one graph: outputs should approach a fixed target.
  Rng rng(3);
  EdgeConv conv(2, 2, rng);
  Fixture f;
  Adam opt(conv.parameters(), 0.02f);
  Tensor target = Tensor::from_vector({3, 2}, {1, 0, 0, 1, 1, 1});
  float first = 0.f, last = 0.f;
  for (int i = 0; i < 400; ++i) {
    opt.zero_grad();
    Tensor loss = mean_all(square(sub(conv.forward(f.x, f.g), target)));
    loss.backward();
    opt.step();
    if (i == 0) first = loss.item();
    last = loss.item();
  }
  EXPECT_LT(last, 0.5f * first);  // loss at least halves
  EXPECT_LT(last, 0.2f);
}

TEST(GcnLayer, OutputShape) {
  Rng rng(4);
  GcnLayer gcn(2, 5, rng);
  Fixture f;
  Tensor y = gcn.forward(f.x, f.g);
  EXPECT_EQ(y.shape(), (Shape{3, 5}));
}

TEST(GcnLayer, SelfLoopMakesIsolatedNodesNonZero) {
  Rng rng(5);
  GcnLayer gcn(2, 3, rng);
  graph::EdgeList g;
  g.num_nodes = 2;  // no edges at all
  Tensor x = Tensor::from_vector({2, 2}, {1, 2, 3, 4});
  Tensor y = gcn.forward(x, g);
  float mag = 0.f;
  for (float v : y.data()) mag += std::fabs(v);
  EXPECT_GT(mag, 0.f);  // the self-loop carries the features through
}

TEST(GcnLayer, GradientsFlow) {
  Rng rng(6);
  GcnLayer gcn(2, 3, rng);
  Fixture f;
  sum_all(gcn.forward(f.x, f.g)).backward();
  for (auto& p : gcn.parameters()) {
    if (p.dim() == 2) {
      EXPECT_TRUE(p.has_grad());
    }
  }
}

TEST(GcnLayer, FusedInferencePathBitIdenticalToReference) {
  // forward() dispatches to a fused no-materialisation path under
  // NoGradGuard (sum reduce); the batched predictor's exact-replay
  // guarantees are built on that path computing exactly what the taped
  // gather/scale/scatter/add reference computes.
  Rng rng(8);
  for (const auto reduce : {Reduce::Sum, Reduce::Max}) {
    GcnLayer gcn(6, 7, rng, reduce);
    const std::int64_t n = 40;
    Tensor x = Tensor::randn({n, 6}, rng);
    graph::EdgeList g = graph::random_graph(n, 5, rng);
    g.num_nodes = n;
    Tensor reference = gcn.forward(x, g);  // grad enabled: taped pipeline
    Tensor fused;
    {
      NoGradGuard ng;
      fused = gcn.forward(x, g);
    }
    ASSERT_EQ(fused.shape(), reference.shape());
    for (std::int64_t i = 0; i < fused.numel(); ++i)
      EXPECT_EQ(fused.data()[static_cast<std::size_t>(i)],
                reference.data()[static_cast<std::size_t>(i)])
          << "element " << i;
  }
}

TEST(GcnLayer, NodeCountMismatchThrows) {
  Rng rng(7);
  GcnLayer gcn(2, 3, rng);
  Fixture f;
  EXPECT_THROW(gcn.forward(Tensor::ones({9, 2}), f.g),
               std::invalid_argument);
}

TEST(MessageTypeNames, AreDistinct) {
  std::set<std::string> names;
  for (std::int64_t m = 0; m < kNumMessageTypes; ++m)
    names.insert(message_type_name(static_cast<MessageType>(m)));
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kNumMessageTypes));
}

}  // namespace
}  // namespace hg::gnn
