// Evolutionary search: Eq. (3) objective, constraint gating, EA progress,
// evaluators, simulated clock.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <limits>
#include <string>

#include "hgnas/search.hpp"

namespace hg::hgnas {
namespace {

struct SearchFixture {
  SpaceConfig space;
  SupernetConfig sn_cfg;
  Workload workload;
  pointcloud::Dataset data;
  Rng rng;
  SuperNet supernet;

  SearchFixture()
      : data(4, 32, 21), rng(1), supernet(make_space(), make_sn(), rng) {
    space = make_space();
    sn_cfg = make_sn();
    workload.num_points = 256;
    workload.k = 10;
    workload.num_classes = 10;
  }
  static SpaceConfig make_space() {
    SpaceConfig s;
    s.num_positions = 6;
    return s;
  }
  static SupernetConfig make_sn() {
    SupernetConfig c;
    c.hidden = 16;
    c.k = 6;
    c.num_classes = 10;
    c.head_hidden = 32;
    return c;
  }
  SearchConfig make_cfg(double scale_ms) {
    SearchConfig cfg;
    cfg.space = space;
    cfg.workload = workload;
    cfg.population = 8;
    cfg.parents = 4;
    cfg.iterations = 4;
    cfg.eval_val_samples = 6;
    cfg.function_paths_per_eval = 1;
    cfg.stage1_epochs = 1;
    cfg.stage2_epochs = 1;
    cfg.latency_scale_ms = scale_ms;
    return cfg;
  }
};

TEST(Objective, Eq3GatesOnConstraint) {
  SearchFixture f;
  hw::Device dev = hw::make_device(hw::DeviceKind::Rtx3080);
  SearchConfig cfg = f.make_cfg(50.0);
  cfg.latency_constraint_ms = 10.0;
  cfg.alpha = 1.0;
  cfg.beta = 0.5;
  HgnasSearch search(f.supernet, f.data, cfg,
                     make_oracle_evaluator(dev, f.workload));
  EXPECT_DOUBLE_EQ(search.objective(0.9, 10.0, false), 0.0);  // lat >= C
  EXPECT_DOUBLE_EQ(search.objective(0.9, 15.0, false), 0.0);
  EXPECT_DOUBLE_EQ(search.objective(0.9, 5.0, true), 0.0);  // OOM
  EXPECT_NEAR(search.objective(0.9, 5.0, false), 0.9 - 0.5 * 5.0 / 50.0,
              1e-12);
}

TEST(Objective, AlphaBetaTradeoffDirection) {
  SearchFixture f;
  hw::Device dev = hw::make_device(hw::DeviceKind::Rtx3080);
  SearchConfig acc_cfg = f.make_cfg(50.0);
  acc_cfg.alpha = 10.0;
  acc_cfg.beta = 0.1;
  SearchConfig fast_cfg = f.make_cfg(50.0);
  fast_cfg.alpha = 0.1;
  fast_cfg.beta = 10.0;
  HgnasSearch acc_search(f.supernet, f.data, acc_cfg,
                         make_oracle_evaluator(dev, f.workload));
  HgnasSearch fast_search(f.supernet, f.data, fast_cfg,
                          make_oracle_evaluator(dev, f.workload));
  // Accurate-but-slow vs inaccurate-but-fast candidates flip ordering.
  const double slow_good = 0.9, slow_lat = 40.0;
  const double fast_bad = 0.5, fast_lat = 5.0;
  EXPECT_GT(acc_search.objective(slow_good, slow_lat, false),
            acc_search.objective(fast_bad, fast_lat, false));
  EXPECT_LT(fast_search.objective(slow_good, slow_lat, false),
            fast_search.objective(fast_bad, fast_lat, false));
}

TEST(Evaluators, OracleIsDeterministicAndFree) {
  SearchFixture f;
  hw::Device dev = hw::make_device(hw::DeviceKind::Rtx3080);
  auto oracle = make_oracle_evaluator(dev, f.workload);
  Arch a = random_arch(f.space, f.rng);
  const LatencyEval e1 = oracle(a);
  const LatencyEval e2 = oracle(a);
  EXPECT_DOUBLE_EQ(e1.latency_ms, e2.latency_ms);
  EXPECT_DOUBLE_EQ(e1.cost_s, 0.0);
}

TEST(Evaluators, MeasurementIsNoisyAndCostly) {
  SearchFixture f;
  hw::Device dev = hw::make_device(hw::DeviceKind::Rtx3080);
  auto meas = make_measurement_evaluator(dev, f.workload, 7);
  Arch a = random_arch(f.space, f.rng);
  const LatencyEval e1 = meas(a);
  const LatencyEval e2 = meas(a);
  EXPECT_NE(e1.latency_ms, e2.latency_ms);  // fresh noise each call
  EXPECT_GT(e1.cost_s, 1.0);                // deploy overhead dominates
}

TEST(Evaluators, MeasurementRefusedOnOfflineDevices) {
  SearchFixture f;
  hw::Device pi = hw::make_device(hw::DeviceKind::RaspberryPi3B);
  EXPECT_THROW(make_measurement_evaluator(pi, f.workload, 7),
               std::invalid_argument);
  hw::Device tx2 = hw::make_device(hw::DeviceKind::JetsonTx2);
  EXPECT_THROW(make_measurement_evaluator(tx2, f.workload, 7),
               std::invalid_argument);
}

TEST(SearchConfigValidation, RejectsBadValues) {
  SearchFixture f;
  hw::Device dev = hw::make_device(hw::DeviceKind::Rtx3080);
  auto oracle = make_oracle_evaluator(dev, f.workload);
  SearchConfig cfg = f.make_cfg(50.0);
  cfg.population = 1;
  EXPECT_THROW(HgnasSearch(f.supernet, f.data, cfg, oracle),
               std::invalid_argument);
  cfg = f.make_cfg(50.0);
  cfg.parents = 100;
  EXPECT_THROW(HgnasSearch(f.supernet, f.data, cfg, oracle),
               std::invalid_argument);
  cfg = f.make_cfg(0.0);
  EXPECT_THROW(HgnasSearch(f.supernet, f.data, cfg, oracle),
               std::invalid_argument);
  cfg = f.make_cfg(50.0);
  EXPECT_THROW(HgnasSearch(f.supernet, f.data, cfg, nullptr),
               std::invalid_argument);
}

TEST(MultistageSearch, ProducesFeasibleResultAndHistory) {
  SearchFixture f;
  hw::Device dev = hw::make_device(hw::DeviceKind::Rtx3080);
  const double dgcnn_ms = dev.latency_ms(hw::dgcnn_reference_trace(
      f.workload.num_points));
  SearchConfig cfg = f.make_cfg(dgcnn_ms);
  cfg.latency_constraint_ms = dgcnn_ms;  // must beat DGCNN
  HgnasSearch search(f.supernet, f.data, cfg,
                     make_oracle_evaluator(dev, f.workload));
  SearchResult r = search.run_multistage(f.rng);
  EXPECT_EQ(r.best_arch.num_positions(), f.space.num_positions);
  EXPECT_GT(r.best_objective, 0.0);  // found something feasible
  EXPECT_LT(r.best_latency_ms, dgcnn_ms);
  EXPECT_FALSE(r.history.empty());
  EXPECT_GT(r.total_sim_time_s, 0.0);
  EXPECT_GT(r.latency_queries, 0);
  // History is monotone non-decreasing in both time and objective.
  for (std::size_t i = 1; i < r.history.size(); ++i) {
    EXPECT_GE(r.history[i].sim_time_s, r.history[i - 1].sim_time_s);
    EXPECT_GE(r.history[i].best_objective,
              r.history[i - 1].best_objective - 1e-12);
  }
  // The winner respects the stamped per-half function sharing.
  for (std::size_t i = 0; i < r.best_arch.genes.size(); ++i) {
    const auto& expect_fn = i < 3 ? r.upper : r.lower;
    EXPECT_EQ(r.best_arch.genes[i].fn, expect_fn);
  }
}

TEST(OnestageSearch, RunsAndReportsHistory) {
  SearchFixture f;
  hw::Device dev = hw::make_device(hw::DeviceKind::Rtx3080);
  const double dgcnn_ms =
      dev.latency_ms(hw::dgcnn_reference_trace(f.workload.num_points));
  SearchConfig cfg = f.make_cfg(dgcnn_ms);
  HgnasSearch search(f.supernet, f.data, cfg,
                     make_oracle_evaluator(dev, f.workload));
  SearchResult r = search.run_onestage(f.rng);
  EXPECT_FALSE(r.history.empty());
  EXPECT_EQ(r.best_arch.num_positions(), f.space.num_positions);
}

TEST(Search, TightConstraintYieldsFasterArchitectures) {
  SearchFixture f;
  hw::Device dev = hw::make_device(hw::DeviceKind::Rtx3080);
  const double dgcnn_ms =
      dev.latency_ms(hw::dgcnn_reference_trace(f.workload.num_points));
  auto run_with_constraint = [&](double c_ms) {
    Rng rng(5);
    SearchConfig cfg = f.make_cfg(dgcnn_ms);
    cfg.latency_constraint_ms = c_ms;
    cfg.train_supernet = false;  // accuracy proxy irrelevant here
    HgnasSearch s(f.supernet, f.data, cfg,
                  make_oracle_evaluator(dev, f.workload));
    return s.run_multistage(rng).best_latency_ms;
  };
  const double loose = run_with_constraint(dgcnn_ms * 2.0);
  const double tight = run_with_constraint(dgcnn_ms * 0.05);
  EXPECT_LT(tight, dgcnn_ms * 0.05);
  EXPECT_LE(tight, loose + 1e-9);
}

TEST(EvalCache, SaveLoadRoundTripsEntriesAndScope) {
  Rng rng(33);
  SpaceConfig space;
  space.num_positions = 5;
  EvalCache cache;
  cache.open_scope("oracle@rtx#1|w3");
  ScoredCandidate feasible;
  feasible.arch = random_arch(space, rng);
  feasible.fitness = 0.42;
  feasible.acc = 0.8;
  feasible.latency_ms = 12.5;
  feasible.raw_latency_ms = 12.5;
  feasible.is_feasible = true;
  ScoredCandidate oom;
  oom.arch = random_arch(space, rng);
  oom.fitness = 0.0;
  oom.latency_ms = std::numeric_limits<double>::infinity();
  oom.raw_latency_ms = 99.0;
  cache.insert("oracle@rtx#1|w3", "genome-a", feasible);
  cache.insert("oracle@rtx#1|w3", "genome-b", oom);

  const std::string path = ::testing::TempDir() + "evalcache_roundtrip.txt";
  ASSERT_TRUE(cache.save(path));

  EvalCache loaded;
  ASSERT_TRUE(loaded.load(path));
  EXPECT_EQ(loaded.scope(), "oracle@rtx#1|w3");
  EXPECT_EQ(loaded.size(), 2);
  ScoredCandidate out;
  ASSERT_TRUE(loaded.lookup("oracle@rtx#1|w3", "genome-a", &out));
  // Persisted archs come back in canonical form (see EvalCache::save).
  EXPECT_EQ(out.arch, canonicalize(feasible.arch));
  EXPECT_DOUBLE_EQ(out.fitness, 0.42);
  EXPECT_DOUBLE_EQ(out.acc, 0.8);
  EXPECT_TRUE(out.is_feasible);
  ASSERT_TRUE(loaded.lookup("oracle@rtx#1|w3", "genome-b", &out));
  EXPECT_TRUE(std::isinf(out.latency_ms));
  EXPECT_DOUBLE_EQ(out.raw_latency_ms, 99.0);
  EXPECT_FALSE(out.is_feasible);

  // A warm file under a changed scope (e.g. retrained supernet) is cold.
  loaded.open_scope("oracle@rtx#1|w4");
  EXPECT_EQ(loaded.size(), 0);

  // Missing / corrupt files degrade to an empty cache, not an error.
  EvalCache missing;
  EXPECT_FALSE(missing.load(::testing::TempDir() + "no_such_cache.txt"));
  EXPECT_EQ(missing.size(), 0);
  const std::string corrupt_path = ::testing::TempDir() + "evalcache_bad.txt";
  {
    std::ofstream os(corrupt_path);
    os << "hgnas-evalcache v1\nscope 3\nabc\nentries 5\ngarbage";
  }
  EvalCache corrupt;
  EXPECT_FALSE(corrupt.load(corrupt_path));
  EXPECT_EQ(corrupt.size(), 0);
}

TEST(Search, PredictorVsMeasurementClockGap) {
  // The whole point of the predictor (Fig. 9a): same search, orders of
  // magnitude less simulated wall clock than on-device measurement.
  SearchFixture f;
  hw::Device dev = hw::make_device(hw::DeviceKind::Rtx3080);
  const double dgcnn_ms =
      dev.latency_ms(hw::dgcnn_reference_trace(f.workload.num_points));

  auto run = [&](LatencyFn fn) {
    Rng rng(9);
    SearchConfig cfg = f.make_cfg(dgcnn_ms);
    cfg.train_supernet = false;
    HgnasSearch s(f.supernet, f.data, cfg, std::move(fn));
    return s.run_multistage(rng).total_sim_time_s;
  };
  // Zero-cost oracle stands in for the predictor's ms-scale queries here.
  const double fast = run(make_oracle_evaluator(dev, f.workload));
  const double slow = run(make_measurement_evaluator(dev, f.workload, 3));
  EXPECT_GT(slow, fast + 10.0);
}

// The stepwise form drives the same coroutine the run_* wrappers drive, so
// a stepped run must be bit-identical to the monolithic one — every field,
// every strategy. This is the contract serve::Service's slice scheduler
// relies on (a preempted search resumes mid-stream and must still produce
// the run-to-completion result).
TEST(SearchStepper, BitIdenticalToMonolithicRunForAllStrategies) {
  for (const SearchStrategy strategy :
       {SearchStrategy::kMultistage, SearchStrategy::kOnestage,
        SearchStrategy::kRandom}) {
    SCOPED_TRACE(static_cast<int>(strategy));
    const auto run_monolithic = [&] {
      SearchFixture f;
      hw::Device dev = hw::make_device(hw::DeviceKind::Rtx3080);
      const double dgcnn_ms =
          dev.latency_ms(hw::dgcnn_reference_trace(f.workload.num_points));
      SearchConfig cfg = f.make_cfg(dgcnn_ms);
      HgnasSearch search(f.supernet, f.data, cfg,
                         make_oracle_evaluator(dev, f.workload));
      switch (strategy) {
        case SearchStrategy::kMultistage:
          return search.run_multistage(f.rng);
        case SearchStrategy::kOnestage:
          return search.run_onestage(f.rng);
        case SearchStrategy::kRandom:
          return search.run_random(f.rng);
      }
      return SearchResult{};
    };
    const SearchResult mono = run_monolithic();

    SearchFixture f;  // fresh same-seed setup: identical starting state
    hw::Device dev = hw::make_device(hw::DeviceKind::Rtx3080);
    const double dgcnn_ms =
        dev.latency_ms(hw::dgcnn_reference_trace(f.workload.num_points));
    SearchStepper stepper(f.supernet, f.data, f.make_cfg(dgcnn_ms),
                          make_oracle_evaluator(dev, f.workload), strategy,
                          f.rng);
    std::int64_t steps = 0;
    while (stepper.step()) ++steps;
    // A generation-granular run really is granular (preemption points
    // exist), and the progress view lands in the terminal phase.
    EXPECT_GT(steps, 1);
    EXPECT_TRUE(stepper.done());
    EXPECT_EQ(stepper.progress().phase, SearchProgress::Phase::kDone);
    EXPECT_GE(stepper.progress().steps, steps);
    EXPECT_FALSE(stepper.progress().to_text().empty());
    const SearchResult stepped = stepper.take_result();

    EXPECT_EQ(stepped.best_arch, mono.best_arch);
    EXPECT_EQ(stepped.upper, mono.upper);
    EXPECT_EQ(stepped.lower, mono.lower);
    EXPECT_DOUBLE_EQ(stepped.best_objective, mono.best_objective);
    EXPECT_DOUBLE_EQ(stepped.best_supernet_acc, mono.best_supernet_acc);
    EXPECT_DOUBLE_EQ(stepped.best_latency_ms, mono.best_latency_ms);
    EXPECT_DOUBLE_EQ(stepped.total_sim_time_s, mono.total_sim_time_s);
    EXPECT_EQ(stepped.latency_queries, mono.latency_queries);
    EXPECT_EQ(stepped.accuracy_probes, mono.accuracy_probes);
    EXPECT_EQ(stepped.eval_cache_hits, mono.eval_cache_hits);
    EXPECT_EQ(stepped.eval_cache_misses, mono.eval_cache_misses);
    EXPECT_EQ(stepped.frontier_candidates, mono.frontier_candidates);
    ASSERT_EQ(stepped.history.size(), mono.history.size());
    for (std::size_t i = 0; i < mono.history.size(); ++i) {
      EXPECT_DOUBLE_EQ(stepped.history[i].sim_time_s,
                       mono.history[i].sim_time_s);
      EXPECT_DOUBLE_EQ(stepped.history[i].best_objective,
                       mono.history[i].best_objective);
    }
    ASSERT_EQ(stepped.frontier.size(), mono.frontier.size());
    for (std::size_t i = 0; i < mono.frontier.size(); ++i) {
      EXPECT_DOUBLE_EQ(stepped.frontier[i].latency_ms,
                       mono.frontier[i].latency_ms);
      EXPECT_DOUBLE_EQ(stepped.frontier[i].accuracy,
                       mono.frontier[i].accuracy);
    }
  }
}

TEST(SearchStepper, ProgressAdvancesThroughPhases) {
  SearchFixture f;
  hw::Device dev = hw::make_device(hw::DeviceKind::Rtx3080);
  const double dgcnn_ms =
      dev.latency_ms(hw::dgcnn_reference_trace(f.workload.num_points));
  SearchStepper stepper(f.supernet, f.data, f.make_cfg(dgcnn_ms),
                        make_oracle_evaluator(dev, f.workload),
                        SearchStrategy::kMultistage, f.rng);
  std::int64_t last_steps = 0;
  bool saw_stage2 = false;
  while (stepper.step()) {
    const SearchProgress& p = stepper.progress();
    EXPECT_GE(p.steps, last_steps);  // monotone
    last_steps = p.steps;
    if (p.phase == SearchProgress::Phase::kStage2) saw_stage2 = true;
  }
  EXPECT_TRUE(saw_stage2);
  EXPECT_TRUE(stepper.progress().has_best);
  EXPECT_GT(stepper.progress().best_objective, 0.0);
  // The one-line view names the terminal phase.
  EXPECT_NE(stepper.progress().to_text().find("done"), std::string::npos);
}

}  // namespace
}  // namespace hg::hgnas
