// Fig. 10 reference architectures: structure, hardware affinity, execution
// marks (merging / dead samples / implicit KNN).
#include <gtest/gtest.h>

#include "hgnas/model.hpp"
#include "hgnas/zoo.hpp"

namespace hg::hgnas {
namespace {

Workload paper_w() {
  Workload w;
  w.num_points = 1024;
  w.k = 20;
  return w;
}

int sample_ops_in_trace(const Arch& a) {
  const hw::Trace t = lower_to_trace(a, paper_w());
  int n = 0;
  for (const auto& op : t.ops)
    if (op.category == hw::OpCategory::Sample) ++n;
  return n;
}

TEST(Zoo, AllFastArchsBeatDgcnnOnTheirDevice) {
  for (int d = 0; d < hw::kNumDevices; ++d) {
    const auto kind = static_cast<hw::DeviceKind>(d);
    hw::Device dev = hw::make_device(kind);
    const double dgcnn = dev.latency_ms(hw::dgcnn_reference_trace(1024));
    const double ours =
        dev.latency_ms(lower_to_trace(zoo::fast_for(kind), paper_w()));
    EXPECT_LT(ours, dgcnn / 3.0) << dev.name();  // large speedups (Fig. 1)
  }
}

TEST(Zoo, RtxFastHasSingleEffectiveKnn) {
  // The trailing KNN of the paper's figure is merged/dead at run time.
  EXPECT_EQ(sample_ops_in_trace(zoo::rtx_fast()), 1);
}

TEST(Zoo, PiFastMergesAdjacentKnns) {
  EXPECT_EQ(sample_ops_in_trace(zoo::pi_fast()), 1);
}

TEST(Zoo, IntelFastHasFewerAggregatesThanTx2Fast) {
  // Paper insight: the i7 is aggregation-bound, so its design uses fewer
  // aggregate ops than the TX2's.
  auto count_aggr = [](const Arch& a) {
    int n = 0;
    for (const auto& g : a.genes)
      if (g.op == OpType::Aggregate) ++n;
    return n;
  };
  EXPECT_LT(count_aggr(zoo::intel_fast()), count_aggr(zoo::tx2_fast()));
}

TEST(Zoo, AllArchsMaterialiseAndRun) {
  for (int d = 0; d < hw::kNumDevices; ++d) {
    Rng rng(static_cast<std::uint64_t>(d) + 1);
    Workload w;
    w.num_points = 32;
    w.k = 6;
    w.num_classes = 10;
    GnnModel model(zoo::fast_for(static_cast<hw::DeviceKind>(d)), w, rng);
    Tensor pts = Tensor::rand_uniform({32, 3}, rng, -1.f, 1.f);
    Tensor logits = model.forward(pts, rng);
    EXPECT_EQ(logits.shape(), (Shape{1, 10}));
  }
}

TEST(Zoo, PiFastMemoryBelowDgcnnEverywhere) {
  const hw::Trace pi_trace = lower_to_trace(zoo::pi_fast(), paper_w());
  for (int d = 0; d < hw::kNumDevices; ++d) {
    hw::Device dev = hw::make_device(static_cast<hw::DeviceKind>(d));
    EXPECT_LT(dev.peak_memory_mb(pi_trace),
              dev.peak_memory_mb(hw::dgcnn_reference_trace(1024)));
  }
}

// ---- execution marks ------------------------------------------------------

PositionGene gene(OpType op) {
  PositionGene g;
  g.op = op;
  return g;
}

TEST(ExecMarks, MergedAndDeadSamplesDoNotExecute) {
  Arch a;
  a.genes = {gene(OpType::Sample), gene(OpType::Sample),
             gene(OpType::Aggregate), gene(OpType::Sample)};
  const ExecMarks m = compute_exec_marks(a);
  EXPECT_TRUE(m.sample_executes[0]);   // first of the adjacent pair
  EXPECT_FALSE(m.sample_executes[1]);  // merged
  EXPECT_FALSE(m.sample_executes[3]);  // dead (no aggregate after)
  EXPECT_FALSE(m.implicit_initial_knn[2]);  // graph already built
}

TEST(ExecMarks, FirstAggregateWithoutSampleGetsImplicitKnn) {
  Arch a;
  a.genes = {gene(OpType::Combine), gene(OpType::Aggregate),
             gene(OpType::Aggregate)};
  const ExecMarks m = compute_exec_marks(a);
  EXPECT_TRUE(m.implicit_initial_knn[1]);
  EXPECT_FALSE(m.implicit_initial_knn[2]);
}

TEST(ExecMarks, AgreeWithTraceSampleCount) {
  // Property: trace sample-op count == executing samples + implicit KNNs.
  Rng rng(7);
  SpaceConfig cfg;
  cfg.num_positions = 12;
  for (int i = 0; i < 50; ++i) {
    Arch a = random_arch(cfg, rng);
    const ExecMarks m = compute_exec_marks(a);
    int expected = 0;
    for (std::size_t p = 0; p < a.genes.size(); ++p) {
      if (m.sample_executes[p]) ++expected;
      if (m.implicit_initial_knn[p]) ++expected;
    }
    const hw::Trace t = lower_to_trace(a, paper_w());
    int actual = 0;
    for (const auto& op : t.ops)
      if (op.category == hw::OpCategory::Sample) ++actual;
    EXPECT_EQ(actual, expected);
  }
}

TEST(DeadSamples, TrailingSamplesAreFree) {
  Arch with_tail;
  with_tail.genes = {gene(OpType::Aggregate), gene(OpType::Combine),
                     gene(OpType::Sample)};
  Arch without;
  without.genes = {gene(OpType::Aggregate), gene(OpType::Combine)};
  hw::Device dev = hw::make_device(hw::DeviceKind::Rtx3080);
  EXPECT_DOUBLE_EQ(dev.latency_ms(lower_to_trace(with_tail, paper_w())),
                   dev.latency_ms(lower_to_trace(without, paper_w())));
}

}  // namespace
}  // namespace hg::hgnas
