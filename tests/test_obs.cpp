// hg::obs — the observability layer: registry instruments under
// concurrency (the TSan CI job runs this binary), the log-linear
// histogram's bucket math as properties, snapshot/render shape, and the
// trace collector's ring, ids and Chrome JSON export.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hg::obs {
namespace {

// ---- registry ---------------------------------------------------------

TEST(ObsRegistry, SameNameReturnsSameInstrument) {
  Registry r;
  Counter& a = r.counter("x.hits");
  Counter& b = r.counter("x.hits");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1);
  // Distinct kinds with the same name are distinct instruments.
  Gauge& g = r.gauge("x.hits");
  g.set(42);
  EXPECT_EQ(a.value(), 1);
}

TEST(ObsRegistry, ConcurrentRecordingAndSnapshots) {
  // The TSan job's main course: writers hammer shared instruments —
  // including first-registration races on fresh names — while a reader
  // snapshots. Counts must come out exact (relaxed atomics lose nothing).
  Registry r;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&r, t] {
      for (int i = 0; i < kIters; ++i) {
        r.counter("stress.shared").inc();
        r.gauge("stress.high_water").max_of(t * kIters + i);
        r.histogram("stress.lat_us").record_us(i);
        r.counter("stress.per_thread." + std::to_string(t)).inc();
      }
    });
  }
  std::thread reader([&r] {
    for (int i = 0; i < 50; ++i) {
      const Snapshot snap = r.snapshot();
      // Never negative, never past the final total.
      auto it = snap.find("stress.shared");
      if (it != snap.end()) {
        EXPECT_GE(it->second, 0);
        EXPECT_LE(it->second, std::int64_t{kThreads} * kIters);
      }
      std::this_thread::yield();
    }
  });
  for (auto& w : workers) w.join();
  reader.join();

  const Snapshot snap = r.snapshot();
  EXPECT_EQ(snap.at("stress.shared"), std::int64_t{kThreads} * kIters);
  EXPECT_EQ(snap.at("stress.high_water"), std::int64_t{kThreads} * kIters - 1);
  EXPECT_EQ(snap.at("stress.lat_us.count"), std::int64_t{kThreads} * kIters);
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(snap.at("stress.per_thread." + std::to_string(t)), kIters);
}

TEST(ObsRegistry, SnapshotExpandsHistograms) {
  Registry r;
  r.counter("a.count").inc(3);
  r.gauge("a.depth").set(7);
  r.histogram("a.wait_us").record_us(1000);
  const Snapshot snap = r.snapshot();
  EXPECT_EQ(snap.at("a.count"), 3);
  EXPECT_EQ(snap.at("a.depth"), 7);
  EXPECT_EQ(snap.at("a.wait_us.count"), 1);
  EXPECT_EQ(snap.at("a.wait_us.p50_us"), 1023);
  EXPECT_EQ(snap.at("a.wait_us.p99_us"), 1023);
}

TEST(ObsRegistry, RenderSnapshotGroupsByPrefix) {
  Registry r;
  r.counter("net.frames").inc(5);
  r.counter("serve.requests").inc(2);
  const std::string text = render_snapshot(r.snapshot());
  EXPECT_NE(text.find("net.frames"), std::string::npos);
  EXPECT_NE(text.find("serve.requests"), std::string::npos);
  // Prefix change inserts a blank line between the groups.
  EXPECT_NE(text.find("\n\n"), std::string::npos);
  EXPECT_LT(text.find("net.frames"), text.find("serve.requests"));
}

// ---- log-linear histogram ---------------------------------------------

TEST(ObsHistogram, BucketUpperIsTightUpperBound) {
  // Property over a dense small range and a geometric large range: the
  // bucket's upper bound contains the value and overestimates by < 25%.
  const auto check = [](std::int64_t v) {
    const std::size_t b = Histogram::bucket_index(v);
    const std::int64_t upper = Histogram::bucket_upper(b);
    ASSERT_GE(upper, v) << "value " << v;
    if (v >= 4) {
      ASSERT_LT(static_cast<double>(upper), 1.25 * static_cast<double>(v))
          << "value " << v;
    }
  };
  for (std::int64_t v = 0; v <= 5000; ++v) check(v);
  for (std::int64_t v = 5000; v < (std::int64_t{1} << 40); v = v * 7 / 4)
    check(v);
}

TEST(ObsHistogram, BucketIndexIsMonotone) {
  std::size_t prev = 0;
  for (std::int64_t v = 0; v <= 100000; ++v) {
    const std::size_t b = Histogram::bucket_index(v);
    ASSERT_GE(b, prev) << "value " << v;
    prev = b;
  }
}

TEST(ObsHistogram, BucketUppersStrictlyIncrease) {
  constexpr std::size_t kBuckets = 4 + 38 * 4;
  for (std::size_t b = 1; b < kBuckets; ++b)
    ASSERT_GT(Histogram::bucket_upper(b), Histogram::bucket_upper(b - 1))
        << "bucket " << b;
}

TEST(ObsHistogram, HugeValuesClampToLastBucket) {
  Histogram h;
  h.record_us(std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(h.count(), 1);
  EXPECT_GT(h.percentile_us(0.5), 0);
}

// ---- trace collector --------------------------------------------------

/// Stops the global collector even when an assertion fails mid-test, so a
/// failure cannot leak "tracing on" into the next test.
struct TraceGuard {
  ~TraceGuard() { TraceCollector::global().stop(); }
};

TEST(ObsTrace, DisabledRecordsNothing) {
  TraceGuard guard;
  TraceCollector& tc = TraceCollector::global();
  tc.stop();
  EXPECT_FALSE(tracing_enabled());
  { HG_TRACE_SCOPE("noop.span", "test"); }
  record_span("noop.manual", "test", 1, std::chrono::steady_clock::now(),
              std::chrono::steady_clock::now());
  EXPECT_TRUE(tc.events().empty());
}

TEST(ObsTrace, SpansCarryTheScopedTraceId) {
  TraceGuard guard;
  TraceCollector& tc = TraceCollector::global();
  tc.stop();
  tc.start();
  {
    HG_TRACE_ID(4242);
    HG_TRACE_SCOPE("unit.work", "test");
  }
  const std::vector<TraceEvent> events = tc.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "unit.work");
  EXPECT_STREQ(events[0].cat, "test");
  EXPECT_EQ(events[0].trace_id, 4242u);
  EXPECT_GE(events[0].dur_us, 0);
}

TEST(ObsTrace, ScopedTraceIdNests) {
  HG_TRACE_ID(1);
  EXPECT_EQ(current_trace_id(), 1u);
  {
    HG_TRACE_ID(2);
    EXPECT_EQ(current_trace_id(), 2u);
  }
  EXPECT_EQ(current_trace_id(), 1u);
}

TEST(ObsTrace, LocalIdsHaveTheTopBitSet) {
  // Wire request ids and process-local ids must never collide: local ids
  // all carry bit 63, which the client's id counter never reaches.
  const std::uint64_t a = next_local_trace_id();
  const std::uint64_t b = next_local_trace_id();
  EXPECT_NE(a, b);
  EXPECT_NE(a & (std::uint64_t{1} << 63), 0u);
  EXPECT_NE(b & (std::uint64_t{1} << 63), 0u);
}

TEST(ObsTrace, RingKeepsNewestAndCountsDropped) {
  TraceGuard guard;
  TraceCollector& tc = TraceCollector::global();
  tc.stop();
  tc.start(/*capacity=*/4);
  for (int i = 0; i < 7; ++i) {
    TraceEvent ev;
    ev.name = "ev" + std::to_string(i);
    ev.cat = "test";
    ev.ts_us = i;
    tc.record(std::move(ev));
  }
  const std::vector<TraceEvent> events = tc.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first unwrap of the newest four.
  EXPECT_EQ(events.front().name, "ev3");
  EXPECT_EQ(events.back().name, "ev6");
}

TEST(ObsTrace, ConcurrentSpansAreAllCollected) {
  TraceGuard guard;
  TraceCollector& tc = TraceCollector::global();
  tc.stop();
  tc.start();
  constexpr int kThreads = 4;
  constexpr int kSpans = 500;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kSpans; ++i) {
        HG_TRACE_SCOPE("mt.span", "test");
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(tc.events().size(),
            static_cast<std::size_t>(kThreads) * kSpans);
}

TEST(ObsTrace, WriteJsonEmitsChromeTraceEvents) {
  TraceGuard guard;
  TraceCollector& tc = TraceCollector::global();
  tc.stop();
  tc.start();
  {
    HG_TRACE_ID(99);
    HG_TRACE_SCOPE("json.span", "test");
  }
  const std::string path = ::testing::TempDir() + "hg_trace_test.json";
  ASSERT_TRUE(tc.write_json(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  std::remove(path.c_str());
  // Chrome trace_event essentials: the envelope, a complete event with
  // timestamp/duration/pid/tid, and the span's attribution.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"json.span\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":"), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":99"), std::string::npos);
}

TEST(ObsTrace, RecordSpanUsesExplicitEndpoints) {
  TraceGuard guard;
  TraceCollector& tc = TraceCollector::global();
  tc.stop();
  tc.start();
  const auto start = std::chrono::steady_clock::now();
  const auto end = start + std::chrono::microseconds(1500);
  record_span("queue.wait", "test", 7, start, end);
  const std::vector<TraceEvent> events = tc.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "queue.wait");
  EXPECT_EQ(events[0].trace_id, 7u);
  EXPECT_EQ(events[0].dur_us, 1500);
}

}  // namespace
}  // namespace hg::obs
