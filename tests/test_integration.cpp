// End-to-end integration: the full HGNAS pipeline at miniature scale —
// collect labels, train predictor, search, materialise, verify the searched
// architecture beats DGCNN on the target device's cost model.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/baselines.hpp"
#include "hgnas/model.hpp"
#include "hgnas/search.hpp"
#include "predictor/predictor.hpp"

namespace hg {
namespace {

TEST(Integration, FullPipelineBeatsDgcnnLatency) {
  // Miniature end-to-end run of the whole framework.
  hgnas::SpaceConfig space;
  space.num_positions = 6;
  hgnas::Workload workload;
  workload.num_points = 512;
  workload.k = 10;
  workload.num_classes = 10;

  hw::Device dev = hw::make_device(hw::DeviceKind::JetsonTx2);  // no online
  const double dgcnn_ms =
      dev.latency_ms(hw::dgcnn_reference_trace(workload.num_points));

  // 1) Collect measurements and train the predictor (TX2 cannot be measured
  //    online during search — exactly the case the predictor exists for).
  Rng rng(1);
  auto labeled = predictor::collect_labeled_archs(dev, space, workload,
                                                  150, 2);
  predictor::PredictorConfig pcfg;
  pcfg.gcn_dims = {24, 32};
  pcfg.mlp_dims = {16, 1};
  pcfg.epochs = 40;
  auto pred = std::make_shared<predictor::LatencyPredictor>(pcfg, workload,
                                                            rng);
  pred->fit(labeled, rng);

  // 2) Search with the predictor in the loop.
  pointcloud::Dataset data(5, 32, 3);
  hgnas::SupernetConfig sn_cfg;
  sn_cfg.hidden = 16;
  sn_cfg.k = 6;
  sn_cfg.num_classes = 10;
  sn_cfg.head_hidden = 32;
  hgnas::SuperNet supernet(space, sn_cfg, rng);

  hgnas::SearchConfig cfg;
  cfg.space = space;
  cfg.workload = workload;
  cfg.population = 8;
  cfg.parents = 4;
  cfg.iterations = 5;
  cfg.eval_val_samples = 6;
  cfg.stage1_epochs = 1;
  cfg.stage2_epochs = 1;
  cfg.latency_scale_ms = dgcnn_ms;
  cfg.latency_constraint_ms = dgcnn_ms * 0.5;
  hgnas::HgnasSearch search(supernet, data, cfg,
                            predictor::make_predictor_evaluator(pred));
  hgnas::SearchResult result = search.run_multistage(rng);
  ASSERT_GT(result.best_objective, 0.0);

  // 3) Ground-truth check on the device model: the found architecture is
  //    genuinely below the constraint (predictor was accurate enough).
  const hw::Trace trace = lower_to_trace(result.best_arch, workload);
  EXPECT_LT(dev.latency_ms(trace), dgcnn_ms);

  // 4) Materialise and run the finalised network.
  hgnas::Workload train_w = workload;
  train_w.num_points = 32;
  train_w.k = 6;
  hgnas::GnnModel model(result.best_arch, train_w, rng);
  Tensor pts = pointcloud::Dataset::to_tensor(data.test()[0]);
  Tensor logits = model.forward(pts, rng);
  EXPECT_EQ(logits.shape(), (Shape{1, 10}));
}

TEST(Integration, SearchedModelsDifferAcrossDevices) {
  // Hardware awareness (Fig. 10): RTX-optimised and Pi-optimised runs see
  // different latency landscapes; with identical seeds and accuracy proxy
  // disabled, the objective values must diverge.
  hgnas::SpaceConfig space;
  space.num_positions = 6;
  hgnas::Workload workload;
  workload.num_points = 512;
  workload.k = 10;
  workload.num_classes = 10;

  pointcloud::Dataset data(3, 32, 5);
  hgnas::SupernetConfig sn_cfg;
  sn_cfg.hidden = 16;
  sn_cfg.k = 6;
  sn_cfg.num_classes = 10;
  sn_cfg.head_hidden = 32;

  auto best_latency_on = [&](hw::DeviceKind kind) {
    Rng rng(7);
    hw::Device dev = hw::make_device(kind);
    hgnas::SuperNet supernet(space, sn_cfg, rng);
    hgnas::SearchConfig cfg;
    cfg.space = space;
    cfg.workload = workload;
    cfg.population = 8;
    cfg.parents = 4;
    cfg.iterations = 4;
    cfg.eval_val_samples = 4;
    cfg.train_supernet = false;
    cfg.latency_scale_ms = dev.latency_ms(
        hw::dgcnn_reference_trace(workload.num_points));
    hgnas::HgnasSearch search(supernet, data, cfg,
                              hgnas::make_oracle_evaluator(dev, workload));
    return search.run_multistage(rng).best_latency_ms;
  };

  const double rtx_ms = best_latency_on(hw::DeviceKind::Rtx3080);
  const double pi_ms = best_latency_on(hw::DeviceKind::RaspberryPi3B);
  // Pi latencies are on a completely different scale (seconds vs ms).
  EXPECT_GT(pi_ms, rtx_ms);
}

TEST(Integration, BaselineOrderingOnCostModels) {
  // Table II ordering at paper scale: DGCNN slowest, manual optimisations
  // in between — on every device.
  const hw::Trace dgcnn = baselines::Dgcnn::trace(baselines::DgcnnConfig{},
                                                  1024);
  const hw::Trace li = baselines::Dgcnn::trace(
      baselines::li_optimized_config(baselines::DgcnnConfig{}), 1024);
  const hw::Trace tailor =
      baselines::TailorGnn::trace(baselines::TailorConfig{}, 1024);
  for (int d = 0; d < hw::kNumDevices; ++d) {
    hw::Device dev = hw::make_device(static_cast<hw::DeviceKind>(d));
    const double t_dgcnn = dev.latency_ms(dgcnn);
    EXPECT_LT(dev.latency_ms(li), t_dgcnn) << dev.name();
    EXPECT_LT(dev.latency_ms(tailor), t_dgcnn) << dev.name();
  }
}

TEST(Integration, PredictorServesOfflineDevices) {
  // TX2 / Pi refuse online measurement; the predictor path must cover them.
  hgnas::Workload workload;
  workload.num_points = 256;
  workload.k = 10;
  workload.num_classes = 10;
  hgnas::SpaceConfig space;
  space.num_positions = 6;
  for (auto kind : {hw::DeviceKind::JetsonTx2, hw::DeviceKind::RaspberryPi3B}) {
    hw::Device dev = hw::make_device(kind);
    EXPECT_THROW(hgnas::make_measurement_evaluator(dev, workload, 1),
                 std::invalid_argument);
    Rng rng(9);
    auto labeled =
        predictor::collect_labeled_archs(dev, space, workload, 30, 4);
    EXPECT_EQ(labeled.size(), 30u);  // offline collection still works
  }
}

}  // namespace
}  // namespace hg
