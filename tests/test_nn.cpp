// Layers: Linear, BatchNorm1d, MLP; metrics OA / mAcc.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/nn.hpp"
#include "tensor/optim.hpp"

namespace hg::nn {
namespace {

TEST(Linear, OutputShapeAndBias) {
  Rng rng(1);
  Linear lin(3, 5, rng);
  Tensor x = Tensor::ones({4, 3});
  Tensor y = lin.forward(x);
  EXPECT_EQ(y.shape(), (Shape{4, 5}));
  EXPECT_EQ(lin.num_parameters(), 3 * 5 + 5);
}

TEST(Linear, NoBiasVariant) {
  Rng rng(2);
  Linear lin(3, 5, rng, /*bias=*/false);
  EXPECT_EQ(lin.num_parameters(), 15);
}

TEST(Linear, RejectsWrongInputWidth) {
  Rng rng(3);
  Linear lin(3, 5, rng);
  EXPECT_THROW(lin.forward(Tensor::ones({4, 4})), std::invalid_argument);
}

TEST(Linear, RejectsBadDims) {
  Rng rng(4);
  EXPECT_THROW(Linear(0, 5, rng), std::invalid_argument);
}

TEST(Linear, IsTrainable) {
  Rng rng(5);
  Linear lin(2, 1, rng);
  Adam opt(lin.parameters(), 0.05f);
  // Learn y = x0 - x1.
  Tensor X = Tensor::from_vector({4, 2}, {1, 0, 0, 1, 1, 1, 2, 1});
  Tensor Y = Tensor::from_vector({4, 1}, {1, -1, 0, 1});
  float loss_val = 0.f;
  for (int i = 0; i < 300; ++i) {
    opt.zero_grad();
    Tensor loss = mean_all(square(sub(lin.forward(X), Y)));
    loss.backward();
    opt.step();
    loss_val = loss.item();
  }
  EXPECT_LT(loss_val, 1e-3f);
}

TEST(BatchNorm, NormalizesTrainingBatch) {
  BatchNorm1d bn(3);
  bn.set_training(true);
  Rng rng(6);
  Tensor x = Tensor::randn({64, 3}, rng, 5.f, 2.f);
  Tensor y = bn.forward(x);
  // Per-channel mean ~0, var ~1 after normalisation (gamma=1, beta=0).
  Tensor m = mean_axis(y, 0);
  for (float v : m.data()) EXPECT_NEAR(v, 0.f, 1e-4f);
  Tensor var = mean_axis(square(y), 0);
  for (float v : var.data()) EXPECT_NEAR(v, 1.f, 1e-2f);
}

TEST(BatchNorm, RunningStatsConverge) {
  BatchNorm1d bn(2);
  bn.set_training(true);
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    Tensor x = Tensor::randn({32, 2}, rng, 3.f, 1.f);
    bn.forward(x);
  }
  EXPECT_NEAR(bn.running_mean()[0], 3.f, 0.2f);
  EXPECT_NEAR(bn.running_var()[0], 1.f, 0.2f);
}

TEST(BatchNorm, EvalModeStillUsesBatchStatsForMultiRow) {
  // Graph-instance normalisation: per-cloud statistics apply at inference
  // too (see the class comment in nn.hpp).
  BatchNorm1d bn(1);
  bn.set_training(false);
  Rng rng(8);
  Tensor y1 = bn.forward(Tensor::randn({32, 1}, rng, 100.f, 1.f));
  Tensor m1 = mean_axis(y1, 0);
  EXPECT_NEAR(m1.data()[0], 0.f, 1e-3f);  // normalised regardless of shift
}

TEST(BatchNorm, EvalModeDoesNotUpdateRunningStats) {
  BatchNorm1d bn(1);
  bn.set_training(false);
  Rng rng(18);
  const float before = bn.running_mean()[0];
  bn.forward(Tensor::randn({32, 1}, rng, 10.f, 1.f));
  EXPECT_FLOAT_EQ(bn.running_mean()[0], before);
}

TEST(BatchNorm, SingleRowBatchFallsBackToRunningStats) {
  BatchNorm1d bn(2);
  bn.set_training(true);
  Tensor y = bn.forward(Tensor::ones({1, 2}));  // must not divide by zero
  for (float v : y.data()) EXPECT_TRUE(std::isfinite(v));
}

TEST(BatchNorm, GammaBetaAreTrainable) {
  BatchNorm1d bn(2);
  EXPECT_EQ(bn.num_parameters(), 4);
  for (auto& p : bn.parameters()) EXPECT_TRUE(p.requires_grad());
}

TEST(Mlp, ForwardShape) {
  Rng rng(9);
  Mlp mlp({4, 8, 8, 2}, rng);
  Tensor y = mlp.forward(Tensor::ones({3, 4}));
  EXPECT_EQ(y.shape(), (Shape{3, 2}));
  EXPECT_EQ(mlp.num_layers(), 3u);
}

TEST(Mlp, RejectsTooFewDims) {
  Rng rng(10);
  EXPECT_THROW(Mlp({4}, rng), std::invalid_argument);
}

TEST(Mlp, LearnsXor) {
  Rng rng(11);
  Mlp mlp({2, 16, 2}, rng);
  Adam opt(mlp.parameters(), 0.03f);
  Tensor X = Tensor::from_vector({4, 2}, {0, 0, 0, 1, 1, 0, 1, 1});
  std::vector<std::int64_t> Y = {0, 1, 1, 0};
  for (int i = 0; i < 500; ++i) {
    opt.zero_grad();
    cross_entropy(mlp.forward(X), Y).backward();
    opt.step();
  }
  auto preds = argmax_rows(mlp.forward(X));
  EXPECT_EQ(preds, Y);
}

TEST(Mlp, FinalActivationApplied) {
  Rng rng(12);
  Mlp mlp({2, 4, 1}, rng, Activation::Relu, Activation::Relu);
  Tensor y = mlp.forward(Tensor::from_vector({1, 2}, {-5.f, -5.f}));
  EXPECT_GE(y.item(), 0.f);
}

TEST(Metrics, OverallAccuracy) {
  std::vector<std::int64_t> pred = {0, 1, 2, 2};
  std::vector<std::int64_t> label = {0, 1, 1, 2};
  EXPECT_DOUBLE_EQ(overall_accuracy(pred, label), 0.75);
}

TEST(Metrics, OverallAccuracyEmptyIsZero) {
  EXPECT_DOUBLE_EQ(overall_accuracy({}, {}), 0.0);
}

TEST(Metrics, BalancedAccuracyWeightsClassesEqually) {
  // Class 0: 3 samples all correct; class 1: 1 sample wrong.
  std::vector<std::int64_t> pred = {0, 0, 0, 0};
  std::vector<std::int64_t> label = {0, 0, 0, 1};
  EXPECT_DOUBLE_EQ(overall_accuracy(pred, label), 0.75);
  EXPECT_DOUBLE_EQ(balanced_accuracy(pred, label, 2), 0.5);
}

TEST(Metrics, BalancedAccuracySkipsAbsentClasses) {
  std::vector<std::int64_t> pred = {0, 1};
  std::vector<std::int64_t> label = {0, 1};
  EXPECT_DOUBLE_EQ(balanced_accuracy(pred, label, 5), 1.0);
}

TEST(Metrics, MismatchedSizesThrow) {
  std::vector<std::int64_t> a = {0};
  std::vector<std::int64_t> b = {0, 1};
  EXPECT_THROW(overall_accuracy(a, b), std::invalid_argument);
  EXPECT_THROW(balanced_accuracy(a, b, 2), std::invalid_argument);
}

TEST(Metrics, LabelOutOfRangeThrows) {
  std::vector<std::int64_t> pred = {0};
  std::vector<std::int64_t> label = {5};
  EXPECT_THROW(balanced_accuracy(pred, label, 2), std::invalid_argument);
}

}  // namespace
}  // namespace hg::nn
