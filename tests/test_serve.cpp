// serve::Service — the long-lived concurrent NAS service loop: scheduling
// classes, FIFO-exclusive ordering, prediction coalescing, shutdown
// semantics, and the headline guarantee that a concurrent run's results
// are bit-identical to a serial one.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "serve/service.hpp"

namespace hg::serve {
namespace {

/// Oracle-evaluator config small enough to search in well under a second.
api::EngineConfig tiny_cfg() {
  api::EngineConfig cfg = api::EngineConfig::tiny();
  cfg.evaluator = "oracle";
  cfg.strategy = "random";
  cfg.iterations = 2;
  return cfg;
}

std::shared_ptr<Service> make_service(const api::EngineConfig& cfg,
                                      std::int64_t workers) {
  ServiceConfig scfg;
  scfg.num_workers = workers;
  api::Result<std::shared_ptr<Service>> service = Service::create(cfg, scfg);
  EXPECT_TRUE(service.ok()) << service.status().to_string();
  return service.ok() ? service.value() : nullptr;
}

/// Every result of one scripted mixed-workload run, in submission order.
struct RunResults {
  std::vector<api::SearchReport> searches;
  std::vector<api::LatencyReport> predictions;
  std::vector<api::ProfileReport> profiles;
  std::vector<api::ProfileReport> baselines;
  std::vector<api::TrainReport> trained;
};

/// Submit the fixed mixed-request script and wait for everything. The
/// script interleaves every request type so pure and exclusive traffic
/// overlap in flight.
RunResults run_script(Service& service, const std::vector<api::Arch>& archs) {
  std::vector<std::future<api::Result<api::SearchReport>>> searches;
  std::vector<std::future<api::Result<api::LatencyReport>>> predictions;
  std::vector<std::future<api::Result<api::ProfileReport>>> profiles;
  std::vector<std::future<api::Result<api::ProfileReport>>> baselines;
  std::vector<std::future<api::Result<api::TrainReport>>> trained;

  searches.push_back(service.submit(SearchRequest{}));
  for (const api::Arch& a : archs) {
    predictions.push_back(service.submit(PredictLatencyRequest{a}));
    profiles.push_back(service.submit(ProfileRequest{a}));
  }
  baselines.push_back(service.submit(ProfileBaselineRequest{"dgcnn", {}}));
  baselines.push_back(service.submit(ProfileBaselineRequest{"li", {}}));
  trained.push_back(service.submit(TrainBaselineRequest{"tailor"}));
  api::EngineConfig second = service.config();
  second.strategy = "random";
  second.train_supernet = false;  // reuse the first search's training
  searches.push_back(service.submit(SearchRequest{second}));
  for (const api::Arch& a : archs)
    predictions.push_back(service.submit(PredictLatencyRequest{a}));

  RunResults out;
  for (auto& f : searches) {
    api::Result<api::SearchReport> r = f.get();
    EXPECT_TRUE(r.ok()) << r.status().to_string();
    out.searches.push_back(std::move(r).value());
  }
  for (auto& f : predictions) {
    api::Result<api::LatencyReport> r = f.get();
    EXPECT_TRUE(r.ok()) << r.status().to_string();
    out.predictions.push_back(std::move(r).value());
  }
  for (auto& f : profiles) {
    api::Result<api::ProfileReport> r = f.get();
    EXPECT_TRUE(r.ok()) << r.status().to_string();
    out.profiles.push_back(std::move(r).value());
  }
  for (auto& f : baselines) {
    api::Result<api::ProfileReport> r = f.get();
    EXPECT_TRUE(r.ok()) << r.status().to_string();
    out.baselines.push_back(std::move(r).value());
  }
  for (auto& f : trained) {
    api::Result<api::TrainReport> r = f.get();
    EXPECT_TRUE(r.ok()) << r.status().to_string();
    out.trained.push_back(std::move(r).value());
  }
  return out;
}

TEST(Serve, MixedConcurrentRunBitIdenticalToSerial) {
  // The acceptance bar of the serving layer: many mixed requests against a
  // shared context, four workers racing, and every answer must equal the
  // one-worker (fully serialized) run of the same script — searches
  // included, because exclusive requests replay in submission order.
  const api::EngineConfig cfg = tiny_cfg();

  auto probe = api::Engine::create(cfg);
  ASSERT_TRUE(probe.ok()) << probe.status().to_string();
  std::vector<api::Arch> archs;
  for (int i = 0; i < 8; ++i) archs.push_back(probe.value().sample_arch());

  auto serial_service = make_service(cfg, 1);
  ASSERT_NE(serial_service, nullptr);
  const RunResults serial = run_script(*serial_service, archs);
  serial_service->shutdown();

  auto concurrent_service = make_service(cfg, 4);
  ASSERT_NE(concurrent_service, nullptr);
  const RunResults concurrent = run_script(*concurrent_service, archs);
  concurrent_service->shutdown();

  ASSERT_EQ(serial.searches.size(), concurrent.searches.size());
  for (std::size_t i = 0; i < serial.searches.size(); ++i) {
    EXPECT_EQ(serial.searches[i].result.best_arch,
              concurrent.searches[i].result.best_arch);
    EXPECT_DOUBLE_EQ(serial.searches[i].result.best_objective,
                     concurrent.searches[i].result.best_objective);
    EXPECT_DOUBLE_EQ(serial.searches[i].result.best_latency_ms,
                     concurrent.searches[i].result.best_latency_ms);
    EXPECT_DOUBLE_EQ(serial.searches[i].result.total_sim_time_s,
                     concurrent.searches[i].result.total_sim_time_s);
  }
  ASSERT_EQ(serial.predictions.size(), concurrent.predictions.size());
  for (std::size_t i = 0; i < serial.predictions.size(); ++i)
    EXPECT_DOUBLE_EQ(serial.predictions[i].latency_ms,
                     concurrent.predictions[i].latency_ms);
  ASSERT_EQ(serial.profiles.size(), concurrent.profiles.size());
  for (std::size_t i = 0; i < serial.profiles.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial.profiles[i].latency_ms,
                     concurrent.profiles[i].latency_ms);
    EXPECT_DOUBLE_EQ(serial.profiles[i].peak_memory_mb,
                     concurrent.profiles[i].peak_memory_mb);
  }
  for (std::size_t i = 0; i < serial.baselines.size(); ++i)
    EXPECT_DOUBLE_EQ(serial.baselines[i].latency_ms,
                     concurrent.baselines[i].latency_ms);
  for (std::size_t i = 0; i < serial.trained.size(); ++i)
    EXPECT_DOUBLE_EQ(serial.trained[i].overall_acc,
                     concurrent.trained[i].overall_acc);
}

TEST(Serve, PureRequestsMatchDirectEngineCalls) {
  const api::EngineConfig cfg = tiny_cfg();
  auto service = make_service(cfg, 3);
  ASSERT_NE(service, nullptr);

  auto engine = api::Engine::create(cfg, service->context());
  ASSERT_TRUE(engine.ok());
  std::vector<api::Arch> archs;
  for (int i = 0; i < 6; ++i) archs.push_back(engine.value().sample_arch());

  std::vector<std::future<api::Result<api::LatencyReport>>> lat;
  std::vector<std::future<api::Result<api::ProfileReport>>> prof;
  for (const api::Arch& a : archs) {
    lat.push_back(service->submit(PredictLatencyRequest{a}));
    prof.push_back(service->submit(ProfileRequest{a}));
  }
  for (std::size_t i = 0; i < archs.size(); ++i) {
    api::Result<api::LatencyReport> served = lat[i].get();
    ASSERT_TRUE(served.ok());
    api::Result<api::LatencyReport> direct =
        engine.value().predict_latency(archs[i]);
    ASSERT_TRUE(direct.ok());
    EXPECT_DOUBLE_EQ(served.value().latency_ms, direct.value().latency_ms);

    api::Result<api::ProfileReport> served_prof = prof[i].get();
    ASSERT_TRUE(served_prof.ok());
    api::Result<api::ProfileReport> direct_prof =
        engine.value().profile(archs[i]);
    ASSERT_TRUE(direct_prof.ok());
    EXPECT_DOUBLE_EQ(served_prof.value().latency_ms,
                     direct_prof.value().latency_ms);
  }
}

TEST(Serve, CoalescesPredictorQueriesIntoBatches) {
  // With a "predictor" evaluator, queued queries must merge into packed
  // forwards — and coalescing must not change any answer. An exclusive
  // search is submitted first so the predictions pile up behind it (the
  // exclusive claim stalls pure traffic), guaranteeing a coalesced drain.
  api::EngineConfig cfg = tiny_cfg();
  cfg.evaluator = "predictor";
  cfg.predictor_samples = 40;
  cfg.predictor_epochs = 4;

  auto service = make_service(cfg, 2);
  ASSERT_NE(service, nullptr);
  auto engine = api::Engine::create(cfg, service->context());
  ASSERT_TRUE(engine.ok());
  std::vector<api::Arch> archs;
  for (int i = 0; i < 12; ++i) archs.push_back(engine.value().sample_arch());

  auto search = service->submit(SearchRequest{});
  std::vector<std::future<api::Result<api::LatencyReport>>> lat;
  for (const api::Arch& a : archs)
    lat.push_back(service->submit(PredictLatencyRequest{a}));
  ASSERT_TRUE(search.get().ok());
  for (std::size_t i = 0; i < archs.size(); ++i) {
    api::Result<api::LatencyReport> served = lat[i].get();
    ASSERT_TRUE(served.ok());
    api::Result<api::LatencyReport> direct =
        engine.value().predict_latency(archs[i]);
    ASSERT_TRUE(direct.ok());
    EXPECT_DOUBLE_EQ(served.value().latency_ms, direct.value().latency_ms);
  }

  const ServiceStats stats = service->stats();
  EXPECT_EQ(stats.predict_requests, 12);
  EXPECT_LT(stats.predict_batches, stats.predict_requests);
  EXPECT_GT(stats.max_predict_batch, 1);

  // A malformed genome that lands in a coalesced batch must fail alone:
  // its batchmates get exactly the answer an uncoalesced query would.
  api::Arch bad = archs[0];
  bad.genes[0].op = static_cast<hgnas::OpType>(99);
  auto stall = service->submit(SearchRequest{});  // pile the queue again
  auto bad_future = service->submit(PredictLatencyRequest{bad});
  std::vector<std::future<api::Result<api::LatencyReport>>> good;
  for (int i = 0; i < 4; ++i)
    good.push_back(service->submit(PredictLatencyRequest{archs[
        static_cast<std::size_t>(i)]}));
  ASSERT_TRUE(stall.get().ok());
  api::Result<api::LatencyReport> bad_result = bad_future.get();
  ASSERT_FALSE(bad_result.ok());
  EXPECT_EQ(bad_result.status().code(), api::StatusCode::kInvalidArgument);
  for (int i = 0; i < 4; ++i) {
    api::Result<api::LatencyReport> served = good[static_cast<std::size_t>(i)]
                                                 .get();
    ASSERT_TRUE(served.ok()) << served.status().to_string();
    EXPECT_DOUBLE_EQ(
        served.value().latency_ms,
        engine.value()
            .predict_latency(archs[static_cast<std::size_t>(i)])
            .value()
            .latency_ms);
  }
}

TEST(Serve, IncompatibleSearchConfigFailsThatRequestOnly) {
  const api::EngineConfig cfg = tiny_cfg();
  auto service = make_service(cfg, 2);
  ASSERT_NE(service, nullptr);

  api::EngineConfig other = cfg;
  other.num_points = cfg.num_points * 2;  // context-shaping mismatch
  auto bad = service->submit(SearchRequest{other});
  api::Result<api::SearchReport> r = bad.get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), api::StatusCode::kInvalidArgument);

  // The service keeps serving.
  auto engine = api::Engine::create(cfg, service->context());
  ASSERT_TRUE(engine.ok());
  auto ok = service->submit(ProfileRequest{engine.value().sample_arch()});
  EXPECT_TRUE(ok.get().ok());
}

TEST(Serve, RejectsConfigAndSubmitAfterShutdown) {
  {
    ServiceConfig scfg;
    scfg.num_workers = 0;
    api::Result<std::shared_ptr<Service>> bad =
        Service::create(tiny_cfg(), scfg);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), api::StatusCode::kInvalidArgument);
  }

  auto service = make_service(tiny_cfg(), 2);
  ASSERT_NE(service, nullptr);
  auto engine = api::Engine::create(tiny_cfg(), service->context());
  ASSERT_TRUE(engine.ok());
  const api::Arch arch = engine.value().sample_arch();

  auto before = service->submit(ProfileRequest{arch});
  EXPECT_TRUE(before.get().ok());
  service->shutdown();
  service->shutdown();  // idempotent
  auto after = service->submit(ProfileRequest{arch});
  api::Result<api::ProfileReport> r = after.get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), api::StatusCode::kFailedPrecondition);
}

TEST(Serve, StressManyMixedRequestsAcrossWorkerCounts) {
  // Pile enough traffic on the queues that claims, drains and coalescing
  // interleave heavily; every future must resolve OK and pure answers must
  // be reproducible across worker counts.
  const api::EngineConfig cfg = tiny_cfg();
  auto probe = api::Engine::create(cfg);
  ASSERT_TRUE(probe.ok());
  std::vector<api::Arch> archs;
  for (int i = 0; i < 16; ++i) archs.push_back(probe.value().sample_arch());

  std::vector<std::vector<double>> latencies;
  for (const std::int64_t workers : {std::int64_t{1}, std::int64_t{4}}) {
    auto service = make_service(cfg, workers);
    ASSERT_NE(service, nullptr);
    std::vector<std::future<api::Result<api::LatencyReport>>> lat;
    std::vector<std::future<api::Result<api::ProfileReport>>> prof;
    std::vector<std::future<api::Result<api::TrainReport>>> train;
    for (int round = 0; round < 4; ++round) {
      for (const api::Arch& a : archs) {
        lat.push_back(service->submit(PredictLatencyRequest{a}));
        prof.push_back(service->submit(ProfileRequest{a}));
      }
      train.push_back(service->submit(TrainBaselineRequest{"li"}));
    }
    std::vector<double> run;
    for (auto& f : lat) {
      api::Result<api::LatencyReport> r = f.get();
      ASSERT_TRUE(r.ok()) << r.status().to_string();
      run.push_back(r.value().latency_ms);
    }
    for (auto& f : prof) ASSERT_TRUE(f.get().ok());
    for (auto& f : train) ASSERT_TRUE(f.get().ok());
    const ServiceStats stats = service->stats();
    EXPECT_EQ(stats.requests, 4 * (2 * 16 + 1));
    EXPECT_EQ(stats.exclusive_requests, 4);
    latencies.push_back(std::move(run));
  }
  ASSERT_EQ(latencies[0].size(), latencies[1].size());
  for (std::size_t i = 0; i < latencies[0].size(); ++i)
    EXPECT_DOUBLE_EQ(latencies[0][i], latencies[1][i]);
}

TEST(ServeBatch, BatchRequestMatchesLoneSubmissionsBitIdentically) {
  // One PredictBatchRequest (a single unit of work -> one packed forward)
  // must answer exactly what N lone submissions answer, element for
  // element, and must count as ONE queue entry but N predict requests.
  const api::EngineConfig cfg = tiny_cfg();
  auto probe = api::Engine::create(cfg);
  ASSERT_TRUE(probe.ok());
  std::vector<api::Arch> archs;
  for (int i = 0; i < 12; ++i) archs.push_back(probe.value().sample_arch());

  auto lone_service = make_service(cfg, 2);
  ASSERT_NE(lone_service, nullptr);
  std::vector<api::LatencyReport> lone;
  for (const api::Arch& a : archs) {
    api::Result<api::LatencyReport> r =
        lone_service->submit(PredictLatencyRequest{a}).get();
    ASSERT_TRUE(r.ok()) << r.status().to_string();
    lone.push_back(r.value());
  }
  lone_service->shutdown();

  auto batch_service = make_service(cfg, 2);
  ASSERT_NE(batch_service, nullptr);
  std::vector<api::Result<api::LatencyReport>> batched =
      batch_service->submit(PredictBatchRequest{archs}).get();
  ASSERT_EQ(batched.size(), archs.size());
  for (std::size_t i = 0; i < batched.size(); ++i) {
    ASSERT_TRUE(batched[i].ok()) << batched[i].status().to_string();
    EXPECT_DOUBLE_EQ(batched[i].value().latency_ms, lone[i].latency_ms);
    EXPECT_DOUBLE_EQ(batched[i].value().peak_memory_mb,
                     lone[i].peak_memory_mb);
  }
  const ServiceStats stats = batch_service->stats();
  EXPECT_EQ(stats.predict_requests, static_cast<std::int64_t>(archs.size()));
  EXPECT_GE(stats.predict_batches, 1);
  EXPECT_GE(stats.max_predict_batch, static_cast<std::int64_t>(archs.size()));
  batch_service->shutdown();
}

TEST(ServeBatch, BadElementFailsAloneInBatchRequest) {
  const api::EngineConfig cfg = tiny_cfg();
  auto probe = api::Engine::create(cfg);
  ASSERT_TRUE(probe.ok());

  auto service = make_service(cfg, 2);
  ASSERT_NE(service, nullptr);
  std::vector<api::Arch> archs;
  archs.push_back(probe.value().sample_arch());
  archs.push_back(api::Arch{});  // no genes: fails validation
  archs.push_back(probe.value().sample_arch());

  std::vector<api::Result<api::LatencyReport>> results =
      service->submit(PredictBatchRequest{archs}).get();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok()) << results[0].status().to_string();
  EXPECT_FALSE(results[1].ok());
  EXPECT_EQ(results[1].status().code(), api::StatusCode::kInvalidArgument);
  EXPECT_TRUE(results[2].ok()) << results[2].status().to_string();

  // The good elements answer exactly what lone submissions answer.
  api::Result<api::LatencyReport> lone0 =
      service->submit(PredictLatencyRequest{archs[0]}).get();
  ASSERT_TRUE(lone0.ok());
  EXPECT_DOUBLE_EQ(results[0].value().latency_ms, lone0.value().latency_ms);
  service->shutdown();
}

TEST(ServeBatch, EmptyBatchResolvesImmediately) {
  auto service = make_service(tiny_cfg(), 1);
  ASSERT_NE(service, nullptr);
  std::vector<api::Result<api::LatencyReport>> results =
      service->submit(PredictBatchRequest{}).get();
  EXPECT_TRUE(results.empty());
  service->shutdown();
}

TEST(ServeStats, LatencyHistogramsReportWaitAndServiceTime) {
  const api::EngineConfig cfg = tiny_cfg();
  auto probe = api::Engine::create(cfg);
  ASSERT_TRUE(probe.ok());

  auto service = make_service(cfg, 2);
  ASSERT_NE(service, nullptr);
  std::vector<std::future<api::Result<api::LatencyReport>>> futures;
  for (int i = 0; i < 32; ++i)
    futures.push_back(
        service->submit(PredictLatencyRequest{probe.value().sample_arch()}));
  for (auto& f : futures) ASSERT_TRUE(f.get().ok());

  const ServiceStats stats = service->stats();
  // Percentiles are log-linear-bucket upper bounds: monotone in rank, and
  // a served request always records a service time (>= the 0-bucket).
  EXPECT_GE(stats.queue_wait_p99_us, stats.queue_wait_p50_us);
  EXPECT_GE(stats.service_time_p99_us, stats.service_time_p50_us);
  EXPECT_GE(stats.service_time_p99_us, 0);
  // A p99 of a 32-request run that did real work should be nonzero.
  EXPECT_GT(stats.service_time_p99_us, 0);
  service->shutdown();
}

TEST(ServeStats, HistogramBucketsAreUpperBounds) {
  LatencyHistogram h;
  h.record_us(0);
  EXPECT_EQ(h.percentile_us(0.5), 0);
  LatencyHistogram h2;
  h2.record_us(1000);  // octave 9, sub-bucket (896..1023) -> 1023
  EXPECT_EQ(h2.percentile_us(0.5), 1023);
  h2.record_us(100000);  // octave 16, sub-bucket (98304..114687) -> 114687
  EXPECT_EQ(h2.percentile_us(0.99), 114687);
  EXPECT_EQ(h2.percentile_us(0.25), 1023);
}

TEST(ServeStats, HistogramEdgeCases) {
  // Empty: every quantile reads 0 (the "nothing recorded" sentinel).
  LatencyHistogram empty;
  EXPECT_EQ(empty.percentile_us(0.50), 0);
  EXPECT_EQ(empty.percentile_us(0.99), 0);
  // A single sample answers every quantile with its bucket's upper bound.
  // Octave 2 splits into width-1 sub-buckets, so 5 reads back exactly.
  LatencyHistogram one;
  one.record_us(5);
  EXPECT_EQ(one.percentile_us(0.50), 5);
  EXPECT_EQ(one.percentile_us(0.99), 5);
  // Log-linear upper edges: the last value of a sub-bucket reads as
  // itself, one past it lands in the next octave's first quarter (a
  // quantile overestimates by < 25%, not the factor of 2 log2 gave).
  LatencyHistogram edge;
  edge.record_us(1023);
  EXPECT_EQ(edge.percentile_us(0.50), 1023);
  LatencyHistogram past;
  past.record_us(1024);
  EXPECT_EQ(past.percentile_us(0.50), 1279);
}

// ---- generation-sliced preemptible scheduling ------------------------------

std::shared_ptr<Service> make_sliced_service(const api::EngineConfig& cfg,
                                             std::int64_t workers,
                                             std::int64_t slice_ms) {
  ServiceConfig scfg;
  scfg.num_workers = workers;
  scfg.exclusive_slice_ms = slice_ms;
  api::Result<std::shared_ptr<Service>> service = Service::create(cfg, scfg);
  EXPECT_TRUE(service.ok()) << service.status().to_string();
  return service.ok() ? service.value() : nullptr;
}

/// Block until the service has dispatched at least one exclusive slice
/// (i.e. the search is genuinely running, not just queued).
bool wait_for_first_slice(Service& service) {
  for (int i = 0; i < 2000; ++i) {
    if (service.stats().exclusive_slices > 0) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

TEST(ServeSlice, SlicedRunBitIdenticalToRunToCompletion) {
  // The tentpole guarantee: enabling the slice changes WHEN work runs,
  // never WHAT it computes. The same mixed script through a sliced
  // service must reproduce the run-to-completion results bit-for-bit —
  // searches and trained baselines included, because the preempted run
  // resumes ahead of every younger exclusive and the shared-context RNG
  // stream replays in submission order.
  const api::EngineConfig cfg = tiny_cfg();
  auto probe = api::Engine::create(cfg);
  ASSERT_TRUE(probe.ok()) << probe.status().to_string();
  std::vector<api::Arch> archs;
  for (int i = 0; i < 8; ++i) archs.push_back(probe.value().sample_arch());

  auto plain = make_service(cfg, 2);
  ASSERT_NE(plain, nullptr);
  const RunResults legacy = run_script(*plain, archs);
  plain->shutdown();

  auto sliced = make_sliced_service(cfg, 2, /*slice_ms=*/1);
  ASSERT_NE(sliced, nullptr);
  const RunResults preempted = run_script(*sliced, archs);
  const ServiceStats stats = sliced->stats();
  sliced->shutdown();

  // The slice path actually engaged, and the per-kind split saw traffic
  // on both sides.
  EXPECT_GT(stats.exclusive_slices, 0);
  EXPECT_GT(stats.pure_service_time_p99_us, 0);
  EXPECT_GT(stats.exclusive_service_time_p99_us, 0);
  EXPECT_GE(stats.queue_wait_p99_us, stats.pure_queue_wait_p50_us);

  ASSERT_EQ(legacy.searches.size(), preempted.searches.size());
  for (std::size_t i = 0; i < legacy.searches.size(); ++i) {
    EXPECT_EQ(legacy.searches[i].result.best_arch,
              preempted.searches[i].result.best_arch);
    EXPECT_DOUBLE_EQ(legacy.searches[i].result.best_objective,
                     preempted.searches[i].result.best_objective);
    EXPECT_DOUBLE_EQ(legacy.searches[i].result.best_latency_ms,
                     preempted.searches[i].result.best_latency_ms);
    EXPECT_DOUBLE_EQ(legacy.searches[i].result.total_sim_time_s,
                     preempted.searches[i].result.total_sim_time_s);
    EXPECT_EQ(legacy.searches[i].result.latency_queries,
              preempted.searches[i].result.latency_queries);
  }
  ASSERT_EQ(legacy.predictions.size(), preempted.predictions.size());
  for (std::size_t i = 0; i < legacy.predictions.size(); ++i)
    EXPECT_DOUBLE_EQ(legacy.predictions[i].latency_ms,
                     preempted.predictions[i].latency_ms);
  ASSERT_EQ(legacy.trained.size(), preempted.trained.size());
  for (std::size_t i = 0; i < legacy.trained.size(); ++i) {
    EXPECT_DOUBLE_EQ(legacy.trained[i].overall_acc,
                     preempted.trained[i].overall_acc);
    EXPECT_DOUBLE_EQ(legacy.trained[i].balanced_acc,
                     preempted.trained[i].balanced_acc);
  }
}

TEST(ServeSlice, PreemptedSearchIsResumedAndStillCorrect) {
  // One worker + a fat search + a stream of pure probes: the search MUST
  // be preempted (probes interleave) and still finish with the result a
  // dedicated engine computes.
  api::EngineConfig cfg = tiny_cfg();
  cfg.iterations = 12;
  // The probe arch comes from a throwaway engine: sample_arch() consumes
  // RNG, and the reference search below must start from virgin state to
  // match what the service's worker engine sees.
  auto sampler = api::Engine::create(cfg);
  ASSERT_TRUE(sampler.ok());
  const api::Arch arch = sampler.value().sample_arch();
  auto reference = api::Engine::create(cfg);
  ASSERT_TRUE(reference.ok());
  const api::Result<api::SearchReport> expected = reference.value().search();
  ASSERT_TRUE(expected.ok());

  auto service = make_sliced_service(cfg, 1, /*slice_ms=*/1);
  ASSERT_NE(service, nullptr);
  auto search = service->submit(SearchRequest{});
  ASSERT_TRUE(wait_for_first_slice(*service));
  // Keep pure probes flowing while the search runs, forcing interleaving.
  std::int64_t probes = 0;
  while (search.wait_for(std::chrono::seconds(0)) !=
             std::future_status::ready &&
         probes < 10000) {
    ASSERT_TRUE(service->submit(PredictLatencyRequest{arch}).get().ok());
    ++probes;
  }
  api::Result<api::SearchReport> got = search.get();
  ASSERT_TRUE(got.ok()) << got.status().to_string();
  const ServiceStats stats = service->stats();
  service->shutdown();

  EXPECT_GT(stats.exclusive_preemptions, 0);
  EXPECT_GT(stats.exclusive_resumes, 0);
  EXPECT_GT(probes, 0);
  // The service search ran on a fresh engine over the same context state
  // a lone engine starts from — identical results.
  EXPECT_EQ(got.value().result.best_arch,
            expected.value().result.best_arch);
  EXPECT_DOUBLE_EQ(got.value().result.best_objective,
                   expected.value().result.best_objective);
  EXPECT_DOUBLE_EQ(got.value().result.total_sim_time_s,
                   expected.value().result.total_sim_time_s);
}

TEST(ServeSlice, MidRunCancelResolvesBetweenSteps) {
  api::EngineConfig cfg = tiny_cfg();
  cfg.iterations = 500;  // minutes of work if never interrupted
  auto service = make_sliced_service(cfg, 1, /*slice_ms=*/1);
  ASSERT_NE(service, nullptr);

  SearchRequest req;
  req.opts.cancel = std::make_shared<std::atomic<bool>>(false);
  auto cancel = req.opts.cancel;
  auto search = service->submit(std::move(req));
  ASSERT_TRUE(wait_for_first_slice(*service));
  cancel->store(true);

  // Without mid-run checks this would block for the whole 500-iteration
  // run; between-step cancellation resolves within a few generations.
  api::Result<api::SearchReport> r = search.get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), api::StatusCode::kCancelled);
  EXPECT_GE(service->stats().cancelled_requests, 1);

  // The worker is free again: the service keeps serving.
  auto probe = api::Engine::create(cfg);
  ASSERT_TRUE(probe.ok());
  EXPECT_TRUE(
      service->submit(PredictLatencyRequest{probe.value().sample_arch()})
          .get()
          .ok());
  service->shutdown();
}

TEST(ServeSlice, MidRunDeadlineResolvesBetweenSteps) {
  api::EngineConfig cfg = tiny_cfg();
  cfg.iterations = 500;
  auto service = make_sliced_service(cfg, 1, /*slice_ms=*/1);
  ASSERT_NE(service, nullptr);

  SearchRequest req;
  req.opts.deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
  auto search = service->submit(std::move(req));
  ASSERT_TRUE(wait_for_first_slice(*service));

  api::Result<api::SearchReport> r = search.get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), api::StatusCode::kDeadlineExceeded);
  EXPECT_GE(service->stats().deadline_expired, 1);
  service->shutdown();
}

TEST(ServeSlice, SliceZeroKeepsLegacySchedulerExactly) {
  // slice = 0 must not even construct the stepwise form: counters stay 0
  // and a running search is never interrupted by cancel (queue-time-only
  // semantics, as documented).
  const api::EngineConfig cfg = tiny_cfg();
  auto service = make_sliced_service(cfg, 1, /*slice_ms=*/0);
  ASSERT_NE(service, nullptr);

  SearchRequest req;
  req.opts.cancel = std::make_shared<std::atomic<bool>>(false);
  auto cancel = req.opts.cancel;
  auto search = service->submit(std::move(req));
  // Give the worker a moment to claim, then cancel mid-run: the legacy
  // path must IGNORE it and finish the search.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  cancel->store(true);
  api::Result<api::SearchReport> r = search.get();
  const ServiceStats stats = service->stats();
  service->shutdown();

  EXPECT_EQ(stats.exclusive_slices, 0);
  EXPECT_EQ(stats.exclusive_preemptions, 0);
  EXPECT_EQ(stats.exclusive_resumes, 0);
  // Either the cancel won the race while the task was still queued (the
  // legacy queue-side check) or the search ran to completion; it was
  // never aborted mid-run.
  if (!r.ok()) {
    EXPECT_EQ(r.status().code(), api::StatusCode::kCancelled);
  }
}

TEST(ServeSlice, RejectsNegativeSlice) {
  ServiceConfig scfg;
  scfg.exclusive_slice_ms = -1;
  api::Result<std::shared_ptr<Service>> service =
      Service::create(tiny_cfg(), scfg);
  ASSERT_FALSE(service.ok());
  EXPECT_EQ(service.status().code(), api::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace hg::serve
