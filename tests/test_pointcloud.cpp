// Synthetic dataset: shape generators, augmentation, normalisation, splits.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "pointcloud/pointcloud.hpp"

namespace hg::pointcloud {
namespace {

class ShapeGen : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(ShapeGen, ProducesRequestedPointCount) {
  Rng rng(1);
  const auto c = static_cast<ShapeClass>(GetParam());
  auto pts = generate_shape(c, 100, rng);
  EXPECT_EQ(pts.size(), 300u);
  for (float v : pts) EXPECT_TRUE(std::isfinite(v));
}

TEST_P(ShapeGen, IsBoundedNearUnitScale) {
  Rng rng(2);
  const auto c = static_cast<ShapeClass>(GetParam());
  auto pts = generate_shape(c, 200, rng);
  for (float v : pts) EXPECT_LE(std::fabs(v), 2.f);
}

INSTANTIATE_TEST_SUITE_P(AllClasses, ShapeGen,
                         ::testing::Range<std::int64_t>(0, kNumClasses));

TEST(ShapeGeometry, SpherePointsOnUnitRadius) {
  Rng rng(3);
  auto pts = generate_shape(ShapeClass::Sphere, 100, rng);
  for (int i = 0; i < 100; ++i) {
    const float r2 = pts[i * 3] * pts[i * 3] + pts[i * 3 + 1] * pts[i * 3 + 1] +
                     pts[i * 3 + 2] * pts[i * 3 + 2];
    EXPECT_NEAR(r2, 1.f, 1e-4f);
  }
}

TEST(ShapeGeometry, CubePointsOnFaces) {
  Rng rng(4);
  auto pts = generate_shape(ShapeClass::Cube, 100, rng);
  for (int i = 0; i < 100; ++i) {
    const float mx = std::max({std::fabs(pts[i * 3]), std::fabs(pts[i * 3 + 1]),
                               std::fabs(pts[i * 3 + 2])});
    EXPECT_NEAR(mx, 1.f, 1e-5f);
  }
}

TEST(ShapeGeometry, TorusRespectsRadii) {
  Rng rng(5);
  auto pts = generate_shape(ShapeClass::Torus, 200, rng);
  for (int i = 0; i < 200; ++i) {
    const float x = pts[i * 3], y = pts[i * 3 + 1], z = pts[i * 3 + 2];
    const float ring = std::sqrt(x * x + y * y);
    const float d = std::sqrt((ring - 0.7f) * (ring - 0.7f) + z * z);
    EXPECT_NEAR(d, 0.25f, 1e-3f);
  }
}

TEST(ShapeGeometry, CrossPlanesHaveZeroCoordinate) {
  Rng rng(6);
  auto pts = generate_shape(ShapeClass::CrossPlanes, 100, rng);
  for (int i = 0; i < 100; ++i)
    EXPECT_TRUE(pts[i * 3] == 0.f || pts[i * 3 + 1] == 0.f);
}

TEST(ShapeGen, RejectsBadArguments) {
  Rng rng(7);
  EXPECT_THROW(generate_shape(ShapeClass::Sphere, 0, rng),
               std::invalid_argument);
}

TEST(Normalize, CentersAndBounds) {
  std::vector<float> pts = {10, 10, 10, 12, 10, 10, 10, 14, 10};
  normalize_unit_sphere(pts);
  // Centroid at origin.
  float cx = 0, cy = 0, cz = 0;
  for (int i = 0; i < 3; ++i) {
    cx += pts[i * 3];
    cy += pts[i * 3 + 1];
    cz += pts[i * 3 + 2];
  }
  EXPECT_NEAR(cx, 0.f, 1e-5f);
  EXPECT_NEAR(cy, 0.f, 1e-5f);
  EXPECT_NEAR(cz, 0.f, 1e-5f);
  // Max radius exactly 1.
  float max_r = 0;
  for (int i = 0; i < 3; ++i)
    max_r = std::max(max_r, pts[i * 3] * pts[i * 3] +
                                pts[i * 3 + 1] * pts[i * 3 + 1] +
                                pts[i * 3 + 2] * pts[i * 3 + 2]);
  EXPECT_NEAR(max_r, 1.f, 1e-4f);
}

TEST(Augment, RotationPreservesDistances) {
  Rng rng(8);
  std::vector<float> pts = {1, 0, 0, 0, 1, 0, 0, 0, 1};
  AugmentConfig cfg;
  cfg.rotation = pointcloud::RotationMode::Full;
  cfg.scale_low = cfg.scale_high = 1.f;
  cfg.jitter_sigma = 0.f;
  cfg.outlier_fraction = 0.f;
  auto orig = pts;
  augment(pts, cfg, rng);
  // Pairwise distances unchanged by pure rotation.
  auto d2 = [](const std::vector<float>& p, int a, int b) {
    float acc = 0;
    for (int c = 0; c < 3; ++c) {
      const float d = p[a * 3 + c] - p[b * 3 + c];
      acc += d * d;
    }
    return acc;
  };
  EXPECT_NEAR(d2(pts, 0, 1), d2(orig, 0, 1), 1e-4f);
  EXPECT_NEAR(d2(pts, 1, 2), d2(orig, 1, 2), 1e-4f);
  // But coordinates did change.
  EXPECT_NE(pts, orig);
}

TEST(Augment, JitterStaysClipped) {
  Rng rng(9);
  std::vector<float> pts(300, 0.f);
  AugmentConfig cfg;
  cfg.rotation = pointcloud::RotationMode::None;
  cfg.scale_low = cfg.scale_high = 1.f;
  cfg.jitter_sigma = 0.05f;
  cfg.jitter_clip = 0.1f;
  cfg.outlier_fraction = 0.f;
  augment(pts, cfg, rng);
  for (float v : pts) EXPECT_LE(std::fabs(v), 0.1f);
}

TEST(Augment, ScaleRangeRespected) {
  Rng rng(10);
  std::vector<float> pts = {1, 1, 1};
  AugmentConfig cfg;
  cfg.rotation = pointcloud::RotationMode::None;
  cfg.scale_low = 2.f;
  cfg.scale_high = 3.f;
  cfg.jitter_sigma = 0.f;
  cfg.outlier_fraction = 0.f;
  augment(pts, cfg, rng);
  for (float v : pts) {
    EXPECT_GE(v, 2.f);
    EXPECT_LE(v, 3.f);
  }
}

TEST(Dataset, SplitSizesAndLabels) {
  Dataset ds(10, 32, /*seed=*/42);
  EXPECT_EQ(ds.train().size(), 80u);  // 8 per class
  EXPECT_EQ(ds.test().size(), 20u);
  std::set<std::int64_t> labels;
  for (const auto& s : ds.train()) labels.insert(s.label);
  EXPECT_EQ(labels.size(), static_cast<std::size_t>(kNumClasses));
}

TEST(Dataset, SamplesAreNormalized) {
  Dataset ds(2, 64, 43);
  for (const auto& s : ds.train()) {
    float max_r = 0;
    for (std::int64_t i = 0; i < s.num_points; ++i)
      max_r = std::max(max_r,
                       s.points[i * 3] * s.points[i * 3] +
                           s.points[i * 3 + 1] * s.points[i * 3 + 1] +
                           s.points[i * 3 + 2] * s.points[i * 3 + 2]);
    EXPECT_NEAR(max_r, 1.f, 1e-3f);
  }
}

TEST(Dataset, DeterministicForSeed) {
  Dataset a(3, 16, 7), b(3, 16, 7);
  ASSERT_EQ(a.train().size(), b.train().size());
  for (std::size_t i = 0; i < a.train().size(); ++i) {
    EXPECT_EQ(a.train()[i].label, b.train()[i].label);
    EXPECT_EQ(a.train()[i].points, b.train()[i].points);
  }
}

TEST(Dataset, DifferentSeedsDiffer) {
  Dataset a(2, 16, 1), b(2, 16, 2);
  EXPECT_NE(a.train()[0].points, b.train()[0].points);
}

TEST(Dataset, ToTensorShape) {
  Dataset ds(1, 24, 3);
  Tensor t = Dataset::to_tensor(ds.train()[0]);
  EXPECT_EQ(t.shape(), (Shape{24, 3}));
}

TEST(Dataset, RejectsBadConfig) {
  EXPECT_THROW(Dataset(0, 16, 1), std::invalid_argument);
  EXPECT_THROW(Dataset(4, 16, 1, {}, 1.5), std::invalid_argument);
}

TEST(Dataset, ClassNamesAreDistinct) {
  std::set<std::string> names;
  for (std::int64_t c = 0; c < kNumClasses; ++c)
    names.insert(shape_class_name(static_cast<ShapeClass>(c)));
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kNumClasses));
}

TEST(ShuffledIndices, IsPermutation) {
  Rng rng(19);
  auto idx = shuffled_indices(50, rng);
  std::set<std::size_t> uniq(idx.begin(), idx.end());
  EXPECT_EQ(uniq.size(), 50u);
  EXPECT_EQ(*uniq.rbegin(), 49u);
}

}  // namespace
}  // namespace hg::pointcloud
