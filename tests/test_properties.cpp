// Property-based sweeps: invariants that must hold for *any* architecture
// in the design space, on any device, at any workload size.
#include <gtest/gtest.h>

#include <cmath>

#include "hgnas/model.hpp"
#include "hgnas/pareto.hpp"
#include "hgnas/search.hpp"
#include "predictor/predictor.hpp"

namespace hg {
namespace {

using hgnas::Arch;

hgnas::Workload workload_at(std::int64_t n) {
  hgnas::Workload w;
  w.num_points = n;
  w.k = 10;
  w.num_classes = 10;
  return w;
}

/// Seeded random-arch sweep parameterised by (seed, device).
class ArchDeviceProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(ArchDeviceProperty, LatencyPositiveAndMonotoneInPoints) {
  const auto [seed, dev_idx] = GetParam();
  Rng rng(seed);
  hw::Device dev = hw::make_device(static_cast<hw::DeviceKind>(dev_idx));
  hgnas::SpaceConfig cfg;
  cfg.num_positions = 12;
  for (int i = 0; i < 10; ++i) {
    const Arch a = hgnas::random_arch(cfg, rng);
    double prev = 0.0;
    for (std::int64_t n : {64, 256, 1024}) {
      const double ms = dev.latency_ms(lower_to_trace(a, workload_at(n)));
      EXPECT_GT(ms, 0.0);
      EXPECT_GE(ms, prev);  // more points never cheaper
      prev = ms;
    }
  }
}

TEST_P(ArchDeviceProperty, BreakdownFractionsFormDistribution) {
  const auto [seed, dev_idx] = GetParam();
  Rng rng(seed);
  hw::Device dev = hw::make_device(static_cast<hw::DeviceKind>(dev_idx));
  hgnas::SpaceConfig cfg;
  cfg.num_positions = 12;
  for (int i = 0; i < 10; ++i) {
    const Arch a = hgnas::random_arch(cfg, rng);
    const hw::Breakdown b =
        dev.breakdown(lower_to_trace(a, workload_at(512)));
    double total = 0.0;
    for (double f : b.fraction) {
      EXPECT_GE(f, 0.0);
      EXPECT_LE(f, 1.0 + 1e-12);
      total += f;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST_P(ArchDeviceProperty, PeakMemoryAboveBaseAndMonotone) {
  const auto [seed, dev_idx] = GetParam();
  Rng rng(seed);
  hw::Device dev = hw::make_device(static_cast<hw::DeviceKind>(dev_idx));
  hgnas::SpaceConfig cfg;
  cfg.num_positions = 12;
  for (int i = 0; i < 10; ++i) {
    const Arch a = hgnas::random_arch(cfg, rng);
    const double m64 = dev.peak_memory_mb(lower_to_trace(a, workload_at(64)));
    const double m1k =
        dev.peak_memory_mb(lower_to_trace(a, workload_at(1024)));
    EXPECT_GT(m64, dev.spec().base_runtime_mb);
    EXPECT_GE(m1k, m64);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndDevices, ArchDeviceProperty,
    ::testing::Combine(::testing::Values<std::uint64_t>(11, 22, 33),
                       ::testing::Range(0, hw::kNumDevices)));

/// Seeded random-arch properties independent of device.
class ArchProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ArchProperty, ChannelFlowMatchesMessageAndCombineRules) {
  Rng rng(GetParam());
  hgnas::SpaceConfig cfg;
  cfg.num_positions = 12;
  for (int i = 0; i < 20; ++i) {
    const Arch a = hgnas::random_arch(cfg, rng);
    const auto flow = channel_flow(a, workload_at(128));
    ASSERT_EQ(flow.size(), a.genes.size() + 1);
    for (std::size_t p = 0; p < a.genes.size(); ++p) {
      const auto& g = a.genes[p];
      switch (g.op) {
        case hgnas::OpType::Combine:
          EXPECT_EQ(flow[p + 1], g.fn.combine_dim());
          break;
        case hgnas::OpType::Aggregate:
          EXPECT_EQ(flow[p + 1], gnn::message_dim(g.fn.msg, flow[p]));
          break;
        default:
          EXPECT_EQ(flow[p + 1], flow[p]);
      }
    }
  }
}

TEST_P(ArchProperty, ParamAccountingMatchesMaterialisedModel) {
  Rng rng(GetParam());
  hgnas::SpaceConfig cfg;
  cfg.num_positions = 8;
  const hgnas::Workload w = workload_at(32);
  int built = 0;
  for (int i = 0; i < 30 && built < 10; ++i) {
    const Arch a = hgnas::random_arch(cfg, rng);
    const auto flow = channel_flow(a, w);
    bool ok = true;
    for (auto d : flow)
      if (d > 2048) ok = false;  // skip Full-message blowups
    if (!ok) continue;
    ++built;
    Rng mrng(GetParam() + static_cast<std::uint64_t>(i));
    hgnas::GnnModel model(a, w, mrng);
    EXPECT_NEAR(model.param_mb(), arch_param_mb(a, w), 1e-9);
  }
  EXPECT_GT(built, 0);
}

TEST_P(ArchProperty, SerializationTextRoundTrip) {
  Rng rng(GetParam() * 7 + 1);
  hgnas::SpaceConfig cfg;
  cfg.num_positions = 12;
  for (int i = 0; i < 10; ++i) {
    const Arch a = hgnas::random_arch(cfg, rng);
    // The effective semantics survive the round trip too.
    const hgnas::Workload w = workload_at(256);
    const double before =
        hw::make_device(hw::DeviceKind::Rtx3080)
            .latency_ms(lower_to_trace(a, w));
    // Round-trip via visualize is lossy by design; hash must be stable.
    EXPECT_EQ(a.hash(), a.hash());
    (void)before;
  }
}

TEST_P(ArchProperty, PredictorGraphWellFormedForAnyArch) {
  Rng rng(GetParam() * 13 + 5);
  hgnas::SpaceConfig cfg;
  cfg.num_positions = 12;
  const hgnas::Workload w = workload_at(512);
  for (int i = 0; i < 15; ++i) {
    const Arch a = hgnas::random_arch(cfg, rng);
    const auto g = predictor::arch_to_graph(a, w);
    EXPECT_EQ(g.edges.num_nodes, 15);  // 12 + input + output + global
    // All edge endpoints valid; every node reachable via the global star.
    for (std::size_t e = 0; e < g.edges.src.size(); ++e) {
      EXPECT_GE(g.edges.src[e], 0);
      EXPECT_LT(g.edges.src[e], g.edges.num_nodes);
      EXPECT_GE(g.edges.dst[e], 0);
      EXPECT_LT(g.edges.dst[e], g.edges.num_nodes);
    }
    for (float v : g.features.data()) EXPECT_TRUE(std::isfinite(v));
  }
}

TEST_P(ArchProperty, MutationStaysInDesignSpace) {
  Rng rng(GetParam() * 3 + 2);
  hgnas::SpaceConfig cfg;
  cfg.num_positions = 12;
  Arch a = hgnas::random_arch(cfg, rng);
  for (int i = 0; i < 50; ++i) {
    a = hgnas::mutate(a, 0.3, 0.3, rng);
    EXPECT_EQ(a.num_positions(), 12);
    for (const auto& g : a.genes) {
      EXPECT_GE(static_cast<int>(g.op), 0);
      EXPECT_LT(static_cast<int>(g.op), 4);
      EXPECT_GE(g.fn.combine_dim_idx, 0);
      EXPECT_LT(g.fn.combine_dim_idx, hgnas::kNumCombineDims);
    }
  }
}

TEST_P(ArchProperty, ParetoFrontIsMutuallyNonDominated) {
  Rng rng(GetParam() * 17 + 3);
  std::vector<hgnas::ParetoPoint> pts;
  for (int i = 0; i < 40; ++i) {
    hgnas::ParetoPoint p;
    p.accuracy = rng.uniform();
    p.latency_ms = rng.uniform(1.f, 100.f);
    pts.push_back(p);
  }
  const auto front = hgnas::pareto_front(pts);
  EXPECT_FALSE(front.empty());
  for (std::size_t i = 0; i < front.size(); ++i)
    for (std::size_t j = 0; j < front.size(); ++j)
      if (i != j) {
        EXPECT_FALSE(hgnas::dominates(front[i], front[j]));
      }
  // Every input point is dominated by or equal to something on the front.
  for (const auto& p : pts) {
    bool covered = false;
    for (const auto& f : front)
      if (hgnas::dominates(f, p) ||
          (f.accuracy == p.accuracy && f.latency_ms == p.latency_ms))
        covered = true;
    EXPECT_TRUE(covered);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArchProperty,
                         ::testing::Values<std::uint64_t>(101, 202, 303, 404));

/// Noise robustness sweep of the measurement model.
class MeasurementNoise : public ::testing::TestWithParam<int> {};

TEST_P(MeasurementNoise, NoisyMeanTracksAnalyticLatency) {
  hw::Device dev = hw::make_device(static_cast<hw::DeviceKind>(GetParam()));
  const hw::Trace t = hw::dgcnn_reference_trace(256);
  const double truth = dev.latency_ms(t);
  Rng rng(99);
  double sum = 0.0;
  const int n = 800;
  for (int i = 0; i < n; ++i) sum += dev.measure(t, rng).latency_ms;
  // Log-normal with unit mean: generous 5-sigma band.
  const double sigma = dev.spec().noise_sigma;
  EXPECT_NEAR(sum / n, truth, truth * sigma * 5.0 / std::sqrt(n) * 10.0);
}

INSTANTIATE_TEST_SUITE_P(AllDevices, MeasurementNoise,
                         ::testing::Range(0, hw::kNumDevices));

}  // namespace
}  // namespace hg
