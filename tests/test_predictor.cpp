// Latency predictor: graph abstraction, feature encoding, training,
// ranking power, evaluator wrapper.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <span>
#include <vector>

#include "core/parallel.hpp"
#include "predictor/predictor.hpp"

namespace hg::predictor {
namespace {

hgnas::Workload test_workload() {
  hgnas::Workload w;
  w.num_points = 512;
  w.k = 10;
  w.num_classes = 10;
  return w;
}

hgnas::SpaceConfig test_space() {
  hgnas::SpaceConfig s;
  s.num_positions = 6;
  return s;
}

PredictorConfig tiny_predictor_config() {
  PredictorConfig c;
  c.gcn_dims = {24, 32};
  c.mlp_dims = {16, 1};
  c.epochs = 30;
  c.lr = 5e-3f;
  return c;
}

TEST(ArchToGraph, NodeAndFeatureLayout) {
  Rng rng(1);
  hgnas::Arch a = hgnas::random_arch(test_space(), rng);
  ArchGraph g = arch_to_graph(a, test_workload());
  // input + 6 positions + output + global = 9 nodes.
  EXPECT_EQ(g.edges.num_nodes, 9);
  EXPECT_EQ(g.features.shape(), (Shape{9, kFeatureDim}));
}

TEST(ArchToGraph, GlobalNodeConnectedToAll) {
  Rng rng(2);
  hgnas::Arch a = hgnas::random_arch(test_space(), rng);
  ArchGraph g = arch_to_graph(a, test_workload());
  const std::int64_t global = g.edges.num_nodes - 1;
  std::set<std::int64_t> reached;
  for (std::size_t e = 0; e < g.edges.src.size(); ++e)
    if (g.edges.src[e] == global) reached.insert(g.edges.dst[e]);
  EXPECT_EQ(reached.size(), static_cast<std::size_t>(global));
}

TEST(ArchToGraph, ChainEdgesBothDirections) {
  Rng rng(3);
  hgnas::Arch a = hgnas::random_arch(test_space(), rng);
  ArchGraph g = arch_to_graph(a, test_workload());
  auto has_edge = [&](std::int64_t s, std::int64_t d) {
    for (std::size_t e = 0; e < g.edges.src.size(); ++e)
      if (g.edges.src[e] == s && g.edges.dst[e] == d) return true;
    return false;
  };
  EXPECT_TRUE(has_edge(0, 1));
  EXPECT_TRUE(has_edge(1, 0));
  EXPECT_TRUE(has_edge(6, 7));  // last position -> output
}

TEST(ArchToGraph, NodeTypeOneHotIsExclusive) {
  Rng rng(4);
  hgnas::Arch a = hgnas::random_arch(test_space(), rng);
  ArchGraph g = arch_to_graph(a, test_workload());
  for (std::int64_t node = 0; node < g.edges.num_nodes; ++node) {
    float sum = 0.f;
    for (std::int64_t d = 0; d < kNodeTypeDim; ++d)
      sum += g.features.at({node, d});
    EXPECT_FLOAT_EQ(sum, 1.f) << "node " << node;
  }
}

TEST(ArchToGraph, FunctionOneHotOnlyOnPositions) {
  Rng rng(5);
  hgnas::Arch a = hgnas::random_arch(test_space(), rng);
  ArchGraph g = arch_to_graph(a, test_workload());
  auto fn_sum = [&](std::int64_t node) {
    float s = 0.f;
    for (std::int64_t d = kNodeTypeDim; d < kNodeTypeDim + kFunctionDim; ++d)
      s += g.features.at({node, d});
    return s;
  };
  EXPECT_FLOAT_EQ(fn_sum(0), 0.f);                        // input
  EXPECT_FLOAT_EQ(fn_sum(g.edges.num_nodes - 2), 0.f);    // output
  for (std::int64_t p = 1; p <= 6; ++p) EXPECT_FLOAT_EQ(fn_sum(p), 1.f);
}

TEST(ArchToGraph, GlobalFeaturesEncodeWorkload) {
  Rng rng(6);
  hgnas::Arch a = hgnas::random_arch(test_space(), rng);
  hgnas::Workload w1 = test_workload();
  hgnas::Workload w2 = test_workload();
  w2.num_points = 2048;
  ArchGraph g1 = arch_to_graph(a, w1);
  ArchGraph g2 = arch_to_graph(a, w2);
  const std::int64_t global = g1.edges.num_nodes - 1;
  bool differs = false;
  for (std::int64_t d = 0; d < kFeatureDim; ++d)
    if (g1.features.at({global, d}) != g2.features.at({global, d}))
      differs = true;
  EXPECT_TRUE(differs);
}

TEST(CollectLabeled, ProducesPositiveLabels) {
  hw::Device dev = hw::make_device(hw::DeviceKind::Rtx3080);
  auto set = collect_labeled_archs(dev, test_space(), test_workload(), 50, 3);
  EXPECT_EQ(set.size(), 50u);
  for (const auto& s : set) EXPECT_GT(s.latency_ms, 0.0);
}

TEST(CollectLabeled, DeterministicForSeed) {
  hw::Device dev = hw::make_device(hw::DeviceKind::Rtx3080);
  auto a = collect_labeled_archs(dev, test_space(), test_workload(), 10, 5);
  auto b = collect_labeled_archs(dev, test_space(), test_workload(), 10, 5);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arch, b[i].arch);
    EXPECT_DOUBLE_EQ(a[i].latency_ms, b[i].latency_ms);
  }
}

TEST(Predictor, FitReducesTrainingMape) {
  Rng rng(7);
  hw::Device dev = hw::make_device(hw::DeviceKind::Rtx3080);
  auto train = collect_labeled_archs(dev, test_space(), test_workload(),
                                     120, 11);
  LatencyPredictor pred(tiny_predictor_config(), test_workload(), rng);
  const PredictorMetrics before = pred.evaluate(train);
  pred.fit(train, rng);
  const PredictorMetrics after = pred.evaluate(train);
  EXPECT_LT(after.mape, before.mape);
  EXPECT_LT(after.mape, 0.5);
}

TEST(Predictor, GeneralisesAndRanks) {
  // The real requirement for NAS: the predictor must *order* candidates by
  // latency well on unseen architectures (Spearman-style check).
  Rng rng(8);
  hw::Device dev = hw::make_device(hw::DeviceKind::Rtx3080);
  auto train = collect_labeled_archs(dev, test_space(), test_workload(),
                                     250, 13);
  auto test = collect_labeled_archs(dev, test_space(), test_workload(),
                                    60, 14);
  PredictorConfig cfg = tiny_predictor_config();
  cfg.epochs = 50;
  LatencyPredictor pred(cfg, test_workload(), rng);
  pred.fit(train, rng);

  // Count correctly-ordered pairs.
  std::int64_t concordant = 0, total = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    for (std::size_t j = i + 1; j < test.size(); ++j) {
      const double dy = test[i].latency_ms - test[j].latency_ms;
      if (std::fabs(dy) < 1e-9) continue;
      const double dp =
          pred.predict_ms(test[i].arch) - pred.predict_ms(test[j].arch);
      ++total;
      if (dy * dp > 0) ++concordant;
    }
  }
  EXPECT_GT(static_cast<double>(concordant) / static_cast<double>(total),
            0.75);
}

TEST(Predictor, PredictBatchEqualsSerialForwardsExactly) {
  // The serving layer coalesces queued queries into one packed forward;
  // that is only sound if batching can never change an answer. Exact
  // equality, not tolerance: the block-diagonal pass must replay the very
  // same arithmetic as N lone forwards.
  Rng rng(21);
  hw::Device dev = hw::make_device(hw::DeviceKind::Rtx3080);
  auto train = collect_labeled_archs(dev, test_space(), test_workload(),
                                     80, 17);
  LatencyPredictor pred(tiny_predictor_config(), test_workload(), rng);
  pred.fit(train, rng);

  std::vector<hgnas::Arch> archs;
  for (int i = 0; i < 10; ++i)
    archs.push_back(hgnas::random_arch(test_space(), rng));

  std::vector<double> serial;
  for (const auto& a : archs) serial.push_back(pred.predict_ms(a));

  const std::vector<double> whole = pred.predict_batch_ms(archs);
  ASSERT_EQ(whole.size(), archs.size());
  for (std::size_t i = 0; i < archs.size(); ++i)
    EXPECT_DOUBLE_EQ(whole[i], serial[i]) << "arch " << i;

  // Batch composition must not matter either: any split gives the same
  // numbers.
  const std::vector<double> head = pred.predict_batch_ms(
      std::span<const hgnas::Arch>(archs.data(), 3));
  const std::vector<double> tail = pred.predict_batch_ms(
      std::span<const hgnas::Arch>(archs.data() + 3, archs.size() - 3));
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_DOUBLE_EQ(head[i], serial[i]);
  for (std::size_t i = 3; i < archs.size(); ++i)
    EXPECT_DOUBLE_EQ(tail[i - 3], serial[i]);

  EXPECT_TRUE(pred.predict_batch_ms({}).empty());
}

TEST(Predictor, PredictBatchExactForMeanPoolHeadToo) {
  // Same exactness for the non-default global-mean-pool head (the packed
  // readout segment-means instead of segment-summing).
  Rng rng(22);
  PredictorConfig cfg = tiny_predictor_config();
  cfg.log_space_output = false;
  LatencyPredictor pred(cfg, test_workload(), rng);
  std::vector<hgnas::Arch> archs;
  for (int i = 0; i < 6; ++i)
    archs.push_back(hgnas::random_arch(test_space(), rng));
  const std::vector<double> batch = pred.predict_batch_ms(archs);
  for (std::size_t i = 0; i < archs.size(); ++i)
    EXPECT_DOUBLE_EQ(batch[i], pred.predict_ms(archs[i])) << "arch " << i;
}

TEST(CollectLabeled, MultiDeviceShardingMatchesPerDeviceCollection) {
  // Fleet collection through one pooled queue must hand every device the
  // exact labelled set a lone collection would have produced — for the
  // serial path and for any pool width.
  hw::Device rtx = hw::make_device(hw::DeviceKind::Rtx3080);
  hw::Device i7 = hw::make_device(hw::DeviceKind::IntelI7_8700K);
  const CollectSpec specs[] = {{&rtx, 20, 5}, {&i7, 15, 9}};

  for (const std::int64_t threads : {std::int64_t{1}, std::int64_t{3}}) {
    core::ScopedNumThreads scoped(threads);
    const auto multi =
        collect_labeled_archs_multi(specs, test_space(), test_workload());
    ASSERT_EQ(multi.size(), 2u);
    for (std::size_t d = 0; d < 2; ++d) {
      const auto solo =
          collect_labeled_archs(*specs[d].device, test_space(),
                                test_workload(), specs[d].count,
                                specs[d].seed);
      ASSERT_EQ(multi[d].size(), solo.size()) << "threads " << threads;
      for (std::size_t i = 0; i < solo.size(); ++i) {
        EXPECT_EQ(multi[d][i].arch, solo[i].arch);
        EXPECT_DOUBLE_EQ(multi[d][i].latency_ms, solo[i].latency_ms);
      }
    }
  }
}

TEST(Predictor, PredictionNeverNegative) {
  Rng rng(9);
  LatencyPredictor pred(tiny_predictor_config(), test_workload(), rng);
  for (int i = 0; i < 20; ++i) {
    hgnas::Arch a = hgnas::random_arch(test_space(), rng);
    EXPECT_GE(pred.predict_ms(a), 0.0);
  }
}

TEST(Predictor, RejectsBadConfigAndInputs) {
  Rng rng(10);
  PredictorConfig bad = tiny_predictor_config();
  bad.mlp_dims = {16, 2};  // must end in scalar
  EXPECT_THROW(LatencyPredictor(bad, test_workload(), rng),
               std::invalid_argument);
  LatencyPredictor ok(tiny_predictor_config(), test_workload(), rng);
  std::vector<LabeledArch> empty;
  EXPECT_THROW(ok.fit(empty, rng), std::invalid_argument);
  EXPECT_THROW(ok.evaluate(empty), std::invalid_argument);
  std::vector<LabeledArch> bad_label(1);
  bad_label[0].arch = hgnas::random_arch(test_space(), rng);
  bad_label[0].latency_ms = 0.0;
  EXPECT_THROW(ok.fit(bad_label, rng), std::invalid_argument);
}

TEST(PredictorEvaluator, WrapsQueriesWithCost) {
  Rng rng(11);
  auto pred = std::make_shared<LatencyPredictor>(tiny_predictor_config(),
                                                 test_workload(), rng);
  auto fn = make_predictor_evaluator(pred, 0.005);
  hgnas::Arch a = hgnas::random_arch(test_space(), rng);
  const hgnas::LatencyEval e = fn(a);
  EXPECT_DOUBLE_EQ(e.cost_s, 0.005);
  EXPECT_FALSE(e.oom);
  EXPECT_THROW(make_predictor_evaluator(nullptr), std::invalid_argument);
}

TEST(PredictorEvaluator, QueryIsFastInRealTime) {
  // §III-D: prediction takes milliseconds. Generous CI bound: < 50 ms.
  Rng rng(12);
  auto pred = std::make_shared<LatencyPredictor>(tiny_predictor_config(),
                                                 test_workload(), rng);
  hgnas::Arch a = hgnas::random_arch(test_space(), rng);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 10; ++i) pred->predict_ms(a);
  const auto dt = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  EXPECT_LT(dt / 10.0, 50.0);
}

}  // namespace
}  // namespace hg::predictor
