// Forward-pass semantics of the tensor engine: shapes, broadcasting,
// reductions, indexing, scatter, softmax, error handling.
#include <gtest/gtest.h>

#include <stdexcept>

#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"

namespace hg {
namespace {

TEST(TensorFactory, ZerosShapeAndValues) {
  Tensor t = Tensor::zeros({2, 3});
  EXPECT_EQ(t.shape(), (Shape{2, 3}));
  EXPECT_EQ(t.numel(), 6);
  for (float v : t.data()) EXPECT_EQ(v, 0.f);
}

TEST(TensorFactory, FullFillsValue) {
  Tensor t = Tensor::full({4}, 2.5f);
  for (float v : t.data()) EXPECT_EQ(v, 2.5f);
}

TEST(TensorFactory, ScalarHasEmptyShape) {
  Tensor t = Tensor::scalar(3.f);
  EXPECT_EQ(t.dim(), 0);
  EXPECT_EQ(t.numel(), 1);
  EXPECT_FLOAT_EQ(t.item(), 3.f);
}

TEST(TensorFactory, FromVectorChecksSize) {
  EXPECT_THROW(Tensor::from_vector({2, 2}, {1.f, 2.f, 3.f}),
               std::invalid_argument);
}

TEST(TensorFactory, RandnStatistics) {
  Rng rng(1);
  Tensor t = Tensor::randn({100, 100}, rng);
  double sum = 0.0;
  for (float v : t.data()) sum += v;
  EXPECT_NEAR(sum / 10000.0, 0.0, 0.05);
}

TEST(TensorAccess, AtComputesRowMajorIndex) {
  Tensor t = Tensor::from_vector({2, 3}, {0, 1, 2, 3, 4, 5});
  EXPECT_FLOAT_EQ((t.at({0, 0})), 0.f);
  EXPECT_FLOAT_EQ((t.at({0, 2})), 2.f);
  EXPECT_FLOAT_EQ((t.at({1, 0})), 3.f);
  EXPECT_FLOAT_EQ((t.at({1, 2})), 5.f);
}

TEST(TensorAccess, AtThrowsOutOfRange) {
  Tensor t = Tensor::zeros({2, 2});
  EXPECT_THROW((t.at({2, 0})), std::invalid_argument);
}

TEST(TensorAccess, ItemRequiresScalar) {
  Tensor t = Tensor::zeros({2});
  EXPECT_THROW(t.item(), std::invalid_argument);
}

// ---- binary ops -------------------------------------------------------------

TEST(BinaryOps, ExactShapeAdd) {
  Tensor a = Tensor::from_vector({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::from_vector({2, 2}, {10, 20, 30, 40});
  Tensor c = a + b;
  EXPECT_FLOAT_EQ((c.at({0, 0})), 11.f);
  EXPECT_FLOAT_EQ((c.at({1, 1})), 44.f);
}

TEST(BinaryOps, SubMulDiv) {
  Tensor a = Tensor::from_vector({3}, {6, 8, 10});
  Tensor b = Tensor::from_vector({3}, {2, 4, 5});
  EXPECT_FLOAT_EQ(sub(a, b).data()[0], 4.f);
  EXPECT_FLOAT_EQ(mul(a, b).data()[1], 32.f);
  EXPECT_FLOAT_EQ(div(a, b).data()[2], 2.f);
}

TEST(BinaryOps, ScalarBroadcast) {
  Tensor a = Tensor::from_vector({2, 2}, {1, 2, 3, 4});
  Tensor c = a * 2.f;
  EXPECT_FLOAT_EQ((c.at({1, 1})), 8.f);
  Tensor d = a + 1.f;
  EXPECT_FLOAT_EQ((d.at({0, 0})), 2.f);
}

TEST(BinaryOps, RowBroadcast) {
  Tensor a = Tensor::from_vector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor row = Tensor::from_vector({3}, {10, 20, 30});
  Tensor c = a + row;
  EXPECT_FLOAT_EQ((c.at({0, 0})), 11.f);
  EXPECT_FLOAT_EQ((c.at({1, 2})), 36.f);
}

TEST(BinaryOps, ColBroadcast) {
  Tensor a = Tensor::from_vector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor col = Tensor::from_vector({2, 1}, {10, 100});
  Tensor c = mul(a, col);
  EXPECT_FLOAT_EQ((c.at({0, 2})), 30.f);
  EXPECT_FLOAT_EQ((c.at({1, 0})), 400.f);
}

TEST(BinaryOps, IncompatibleShapesThrow) {
  Tensor a = Tensor::zeros({2, 3});
  Tensor b = Tensor::zeros({3, 2});
  EXPECT_THROW(a + b, std::invalid_argument);
}

TEST(BinaryOps, DivisionByZeroScalarThrows) {
  Tensor a = Tensor::ones({2});
  EXPECT_THROW(a / 0.f, std::invalid_argument);
}

// ---- unary ops --------------------------------------------------------------

TEST(UnaryOps, Relu) {
  Tensor a = Tensor::from_vector({4}, {-2, -0.5f, 0, 3});
  Tensor y = relu(a);
  EXPECT_FLOAT_EQ(y.data()[0], 0.f);
  EXPECT_FLOAT_EQ(y.data()[1], 0.f);
  EXPECT_FLOAT_EQ(y.data()[2], 0.f);
  EXPECT_FLOAT_EQ(y.data()[3], 3.f);
}

TEST(UnaryOps, LeakyRelu) {
  Tensor a = Tensor::from_vector({2}, {-10, 10});
  Tensor y = leaky_relu(a, 0.1f);
  EXPECT_FLOAT_EQ(y.data()[0], -1.f);
  EXPECT_FLOAT_EQ(y.data()[1], 10.f);
}

TEST(UnaryOps, SigmoidBounds) {
  Tensor a = Tensor::from_vector({3}, {-100, 0, 100});
  Tensor y = sigmoid(a);
  EXPECT_NEAR(y.data()[0], 0.f, 1e-6);
  EXPECT_FLOAT_EQ(y.data()[1], 0.5f);
  EXPECT_NEAR(y.data()[2], 1.f, 1e-6);
}

TEST(UnaryOps, ExpLog) {
  Tensor a = Tensor::from_vector({2}, {0, 1});
  EXPECT_FLOAT_EQ(exp_op(a).data()[1], std::exp(1.f));
  Tensor b = Tensor::from_vector({2}, {1, std::exp(2.f)});
  EXPECT_NEAR(log_op(b).data()[1], 2.f, 1e-5);
}

TEST(UnaryOps, LogOfNonPositiveThrows) {
  Tensor a = Tensor::from_vector({1}, {-1.f});
  EXPECT_THROW(log_op(a), std::invalid_argument);
}

TEST(UnaryOps, SqrtOfNegativeThrows) {
  Tensor a = Tensor::from_vector({1}, {-4.f});
  EXPECT_THROW(sqrt_op(a), std::invalid_argument);
}

TEST(UnaryOps, SquareAbsNeg) {
  Tensor a = Tensor::from_vector({2}, {-3, 2});
  EXPECT_FLOAT_EQ(square(a).data()[0], 9.f);
  EXPECT_FLOAT_EQ(abs_op(a).data()[0], 3.f);
  EXPECT_FLOAT_EQ(neg(a).data()[1], -2.f);
}

// ---- matmul / transpose -------------------------------------------------------

TEST(MatMul, KnownProduct) {
  Tensor a = Tensor::from_vector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::from_vector({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = matmul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ((c.at({0, 0})), 58.f);
  EXPECT_FLOAT_EQ((c.at({0, 1})), 64.f);
  EXPECT_FLOAT_EQ((c.at({1, 0})), 139.f);
  EXPECT_FLOAT_EQ((c.at({1, 1})), 154.f);
}

TEST(MatMul, InnerDimMismatchThrows) {
  EXPECT_THROW(matmul(Tensor::zeros({2, 3}), Tensor::zeros({2, 3})),
               std::invalid_argument);
}

TEST(MatMul, IdentityPreserves) {
  Tensor a = Tensor::from_vector({2, 2}, {1, 2, 3, 4});
  Tensor eye = Tensor::from_vector({2, 2}, {1, 0, 0, 1});
  Tensor c = matmul(a, eye);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_FLOAT_EQ(c.data()[i], a.data()[i]);
}

TEST(Transpose, RoundTrip) {
  Tensor a = Tensor::from_vector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = transpose(a);
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ((t.at({2, 1})), 6.f);
  Tensor back = transpose(t);
  for (std::size_t i = 0; i < 6; ++i)
    EXPECT_FLOAT_EQ(back.data()[i], a.data()[i]);
}

// ---- reductions -----------------------------------------------------------------

TEST(Reductions, SumAndMeanAll) {
  Tensor a = Tensor::from_vector({2, 2}, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(sum_all(a).item(), 10.f);
  EXPECT_FLOAT_EQ(mean_all(a).item(), 2.5f);
}

TEST(Reductions, SumAxis0And1) {
  Tensor a = Tensor::from_vector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor s0 = sum_axis(a, 0);
  EXPECT_EQ(s0.shape(), (Shape{3}));
  EXPECT_FLOAT_EQ(s0.data()[0], 5.f);
  EXPECT_FLOAT_EQ(s0.data()[2], 9.f);
  Tensor s1 = sum_axis(a, 1);
  EXPECT_EQ(s1.shape(), (Shape{2}));
  EXPECT_FLOAT_EQ(s1.data()[0], 6.f);
  EXPECT_FLOAT_EQ(s1.data()[1], 15.f);
}

TEST(Reductions, MaxMinAxis0) {
  Tensor a = Tensor::from_vector({3, 2}, {1, 9, 5, 2, 3, 7});
  Tensor mx = max_axis0(a);
  EXPECT_FLOAT_EQ(mx.data()[0], 5.f);
  EXPECT_FLOAT_EQ(mx.data()[1], 9.f);
  Tensor mn = min_axis0(a);
  EXPECT_FLOAT_EQ(mn.data()[0], 1.f);
  EXPECT_FLOAT_EQ(mn.data()[1], 2.f);
}

TEST(Reductions, BadAxisThrows) {
  Tensor a = Tensor::zeros({2, 2});
  EXPECT_THROW(sum_axis(a, 2), std::invalid_argument);
}

// ---- shape ops -----------------------------------------------------------------

TEST(ShapeOps, ReshapePreservesData) {
  Tensor a = Tensor::from_vector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = reshape(a, {3, 2});
  EXPECT_EQ(r.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ((r.at({2, 1})), 6.f);
  EXPECT_THROW(reshape(a, {4, 2}), std::invalid_argument);
}

TEST(ShapeOps, ConcatAxis1) {
  Tensor a = Tensor::from_vector({2, 1}, {1, 2});
  Tensor b = Tensor::from_vector({2, 2}, {3, 4, 5, 6});
  Tensor c = concat({a, b}, 1);
  EXPECT_EQ(c.shape(), (Shape{2, 3}));
  EXPECT_FLOAT_EQ((c.at({0, 0})), 1.f);
  EXPECT_FLOAT_EQ((c.at({0, 1})), 3.f);
  EXPECT_FLOAT_EQ((c.at({1, 2})), 6.f);
}

TEST(ShapeOps, ConcatAxis0) {
  Tensor a = Tensor::from_vector({1, 2}, {1, 2});
  Tensor b = Tensor::from_vector({2, 2}, {3, 4, 5, 6});
  Tensor c = concat({a, b}, 0);
  EXPECT_EQ(c.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ((c.at({2, 1})), 6.f);
}

TEST(ShapeOps, ConcatMismatchThrows) {
  EXPECT_THROW(concat({Tensor::zeros({2, 2}), Tensor::zeros({3, 2})}, 1),
               std::invalid_argument);
}

TEST(ShapeOps, GatherRows) {
  Tensor a = Tensor::from_vector({3, 2}, {0, 1, 10, 11, 20, 21});
  std::vector<std::int64_t> idx = {2, 0, 2};
  Tensor g = gather_rows(a, idx);
  EXPECT_EQ(g.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ((g.at({0, 0})), 20.f);
  EXPECT_FLOAT_EQ((g.at({1, 1})), 1.f);
  EXPECT_FLOAT_EQ((g.at({2, 0})), 20.f);
}

TEST(ShapeOps, GatherRowsOutOfRangeThrows) {
  Tensor a = Tensor::zeros({2, 2});
  std::vector<std::int64_t> idx = {3};
  EXPECT_THROW(gather_rows(a, idx), std::invalid_argument);
}

TEST(ShapeOps, SliceRows) {
  Tensor a = Tensor::from_vector({3, 2}, {0, 1, 10, 11, 20, 21});
  Tensor s = slice_rows(a, 1, 3);
  EXPECT_EQ(s.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ((s.at({0, 0})), 10.f);
  EXPECT_THROW(slice_rows(a, 2, 1), std::invalid_argument);
}

// ---- scatter ----------------------------------------------------------------------

TEST(Scatter, SumGroupsRows) {
  Tensor msgs = Tensor::from_vector({4, 2}, {1, 1, 2, 2, 3, 3, 4, 4});
  std::vector<std::int64_t> idx = {0, 1, 0, 1};
  Tensor out = scatter_reduce(msgs, idx, 2, Reduce::Sum);
  EXPECT_FLOAT_EQ((out.at({0, 0})), 4.f);
  EXPECT_FLOAT_EQ((out.at({1, 0})), 6.f);
}

TEST(Scatter, MeanDividesByDegree) {
  Tensor msgs = Tensor::from_vector({3, 1}, {3, 6, 9});
  std::vector<std::int64_t> idx = {0, 0, 1};
  Tensor out = scatter_reduce(msgs, idx, 3, Reduce::Mean);
  EXPECT_FLOAT_EQ((out.at({0, 0})), 4.5f);
  EXPECT_FLOAT_EQ((out.at({1, 0})), 9.f);
  EXPECT_FLOAT_EQ((out.at({2, 0})), 0.f);  // isolated node
}

TEST(Scatter, MaxPicksLargestPerChannel) {
  Tensor msgs = Tensor::from_vector({3, 2}, {1, 9, 5, 2, -1, -2});
  std::vector<std::int64_t> idx = {0, 0, 1};
  Tensor out = scatter_reduce(msgs, idx, 2, Reduce::Max);
  EXPECT_FLOAT_EQ((out.at({0, 0})), 5.f);
  EXPECT_FLOAT_EQ((out.at({0, 1})), 9.f);
  EXPECT_FLOAT_EQ((out.at({1, 0})), -1.f);
}

TEST(Scatter, MinPicksSmallest) {
  Tensor msgs = Tensor::from_vector({2, 1}, {3, -4});
  std::vector<std::int64_t> idx = {0, 0};
  Tensor out = scatter_reduce(msgs, idx, 1, Reduce::Min);
  EXPECT_FLOAT_EQ((out.at({0, 0})), -4.f);
}

TEST(Scatter, EmptyNodeRowsAreZero) {
  Tensor msgs = Tensor::from_vector({1, 2}, {7, 8});
  std::vector<std::int64_t> idx = {2};
  Tensor out = scatter_reduce(msgs, idx, 4, Reduce::Max);
  EXPECT_FLOAT_EQ((out.at({0, 0})), 0.f);
  EXPECT_FLOAT_EQ((out.at({2, 1})), 8.f);
  EXPECT_FLOAT_EQ((out.at({3, 1})), 0.f);
}

TEST(Scatter, IndexOutOfRangeThrows) {
  Tensor msgs = Tensor::ones({1, 1});
  std::vector<std::int64_t> idx = {5};
  EXPECT_THROW(scatter_reduce(msgs, idx, 2, Reduce::Sum),
               std::invalid_argument);
}

// ---- softmax & losses -----------------------------------------------------------

TEST(Softmax, RowsSumToOne) {
  Tensor a = Tensor::from_vector({2, 3}, {1, 2, 3, -1, 0, 1});
  Tensor s = softmax(a);
  for (int r = 0; r < 2; ++r) {
    float row = 0.f;
    for (int c = 0; c < 3; ++c) row += s.at({r, c});
    EXPECT_NEAR(row, 1.f, 1e-6);
  }
}

TEST(Softmax, StableForLargeLogits) {
  Tensor a = Tensor::from_vector({1, 2}, {1000.f, 1001.f});
  Tensor s = softmax(a);
  EXPECT_NEAR((s.at({0, 1})), 1.f / (1.f + std::exp(-1.f)), 1e-5);
}

TEST(LogSoftmax, MatchesLogOfSoftmax) {
  Tensor a = Tensor::from_vector({1, 3}, {0.5f, -0.2f, 1.f});
  Tensor ls = log_softmax(a);
  Tensor s = softmax(a);
  for (int c = 0; c < 3; ++c)
    EXPECT_NEAR((ls.at({0, c})), std::log(s.at({0, c})), 1e-5);
}

TEST(CrossEntropy, UniformLogitsGiveLogC) {
  Tensor logits = Tensor::zeros({4, 10});
  std::vector<std::int64_t> labels = {0, 3, 7, 9};
  Tensor loss = cross_entropy(logits, labels);
  EXPECT_NEAR(loss.item(), std::log(10.f), 1e-5);
}

TEST(CrossEntropy, PerfectPredictionNearZero) {
  Tensor logits = Tensor::from_vector({1, 3}, {100.f, 0.f, 0.f});
  std::vector<std::int64_t> labels = {0};
  EXPECT_NEAR(cross_entropy(logits, labels).item(), 0.f, 1e-5);
}

TEST(CrossEntropy, LabelOutOfRangeThrows) {
  Tensor logits = Tensor::zeros({1, 3});
  std::vector<std::int64_t> labels = {3};
  EXPECT_THROW(cross_entropy(logits, labels), std::invalid_argument);
}

// ---- dropout ----------------------------------------------------------------------

TEST(Dropout, IdentityInEvalMode) {
  Rng rng(1);
  Tensor a = Tensor::ones({10});
  Tensor y = dropout(a, 0.5f, /*training=*/false, rng);
  for (float v : y.data()) EXPECT_FLOAT_EQ(v, 1.f);
}

TEST(Dropout, ScalesSurvivors) {
  Rng rng(2);
  Tensor a = Tensor::ones({1000});
  Tensor y = dropout(a, 0.5f, /*training=*/true, rng);
  int zeros = 0;
  for (float v : y.data()) {
    EXPECT_TRUE(v == 0.f || v == 2.f);
    if (v == 0.f) ++zeros;
  }
  EXPECT_NEAR(zeros / 1000.0, 0.5, 0.07);
}

TEST(Dropout, InvalidProbabilityThrows) {
  Rng rng(3);
  Tensor a = Tensor::ones({2});
  EXPECT_THROW(dropout(a, 1.f, true, rng), std::invalid_argument);
  EXPECT_THROW(dropout(a, -0.1f, true, rng), std::invalid_argument);
}

// ---- helpers ----------------------------------------------------------------------

TEST(ArgmaxRows, PicksLargest) {
  Tensor a = Tensor::from_vector({2, 3}, {1, 5, 2, 9, 0, 3});
  auto idx = argmax_rows(a);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);
}

TEST(ShapeHelpers, NumelAndToString) {
  EXPECT_EQ(shape_numel({2, 3, 4}), 24);
  EXPECT_EQ(shape_numel({}), 1);
  EXPECT_EQ(shape_to_string({2, 3}), "[2, 3]");
}

}  // namespace
}  // namespace hg
