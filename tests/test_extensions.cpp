// Extensions beyond the minimal pipeline: architecture serialisation,
// Pareto-front utilities, multi-constraint objectives, energy model,
// device-conditioned predictor features.
#include <gtest/gtest.h>

#include <filesystem>

#include "hgnas/pareto.hpp"
#include "hgnas/search.hpp"
#include "hgnas/serialize_arch.hpp"
#include "hgnas/zoo.hpp"
#include "predictor/predictor.hpp"

namespace hg {
namespace {

using hgnas::Arch;
using hgnas::OpType;
using hgnas::PositionGene;

// ---- arch serialisation -----------------------------------------------------

TEST(ArchSerialization, RoundTripsRandomArchs) {
  // The text format stores only the function attributes the operation
  // uses, so equality holds on canonical forms.
  Rng rng(1);
  hgnas::SpaceConfig cfg;
  cfg.num_positions = 12;
  for (int i = 0; i < 30; ++i) {
    Arch a = hgnas::random_arch(cfg, rng);
    Arch b = hgnas::arch_from_text(hgnas::arch_to_text(a));
    EXPECT_EQ(hgnas::canonicalize(a), b);
    // And the round trip is exact from then on.
    EXPECT_EQ(hgnas::arch_from_text(hgnas::arch_to_text(b)), b);
  }
}

TEST(ArchSerialization, CanonicalFormPreservesExecution) {
  Rng rng(9);
  hgnas::SpaceConfig cfg;
  cfg.num_positions = 12;
  hgnas::Workload w;
  w.num_points = 512;
  w.k = 10;
  hw::Device dev = hw::make_device(hw::DeviceKind::Rtx3080);
  for (int i = 0; i < 20; ++i) {
    Arch a = hgnas::random_arch(cfg, rng);
    Arch c = hgnas::canonicalize(a);
    EXPECT_DOUBLE_EQ(dev.latency_ms(lower_to_trace(a, w)),
                     dev.latency_ms(lower_to_trace(c, w)));
    EXPECT_EQ(channel_flow(a, w), channel_flow(c, w));
  }
}

TEST(ArchSerialization, RoundTripsZooArchs) {
  for (int d = 0; d < hw::kNumDevices; ++d) {
    Arch a = hgnas::zoo::fast_for(static_cast<hw::DeviceKind>(d));
    EXPECT_EQ(hgnas::arch_from_text(hgnas::arch_to_text(a)), a);
  }
}

TEST(ArchSerialization, TextFormatIsReadable) {
  const std::string text = hgnas::arch_to_text(hgnas::zoo::rtx_fast());
  EXPECT_NE(text.find("hgnas-arch v1"), std::string::npos);
  EXPECT_NE(text.find("combine dim=64"), std::string::npos);
  EXPECT_NE(text.find("aggregate msg=target||rel aggr=max"),
            std::string::npos);
  EXPECT_NE(text.find("sample fn=knn"), std::string::npos);
}

TEST(ArchSerialization, CommentsAndOrderIndependence) {
  const std::string text =
      "hgnas-arch v1\n"
      "positions 2\n"
      "# order is free and comments are skipped\n"
      "1 sample fn=random\n"
      "0 combine dim=128\n";
  Arch a = hgnas::arch_from_text(text);
  EXPECT_EQ(a.genes[0].op, OpType::Combine);
  EXPECT_EQ(a.genes[0].fn.combine_dim(), 128);
  EXPECT_EQ(a.genes[1].op, OpType::Sample);
  EXPECT_EQ(a.genes[1].fn.sample, hgnas::SampleFunc::Random);
}

TEST(ArchSerialization, RejectsMalformedInput) {
  EXPECT_THROW(hgnas::arch_from_text("garbage"), std::invalid_argument);
  EXPECT_THROW(hgnas::arch_from_text("hgnas-arch v1\npositions 0\n"),
               std::invalid_argument);
  EXPECT_THROW(
      hgnas::arch_from_text("hgnas-arch v1\npositions 1\n0 frobnicate x=1\n"),
      std::invalid_argument);
  EXPECT_THROW(
      hgnas::arch_from_text("hgnas-arch v1\npositions 1\n0 combine dim=77\n"),
      std::invalid_argument);  // 77 not in Table I
  EXPECT_THROW(
      hgnas::arch_from_text("hgnas-arch v1\npositions 2\n0 sample fn=knn\n"),
      std::invalid_argument);  // position 1 missing
  EXPECT_THROW(hgnas::arch_from_text("hgnas-arch v1\npositions 1\n"
                                     "0 sample fn=knn\n0 sample fn=knn\n"),
               std::invalid_argument);  // duplicate
}

TEST(ArchSerialization, FileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "hg_arch.txt";
  Arch a = hgnas::zoo::pi_fast();
  hgnas::save_arch(path.string(), a);
  EXPECT_EQ(hgnas::load_arch(path.string()), a);
  std::filesystem::remove(path);
  EXPECT_THROW(hgnas::load_arch("/nonexistent/arch.txt"),
               std::runtime_error);
}

// ---- pareto utilities ----------------------------------------------------------

hgnas::ParetoPoint pp(double acc, double lat) {
  hgnas::ParetoPoint p;
  p.accuracy = acc;
  p.latency_ms = lat;
  return p;
}

TEST(Pareto, DominanceDefinition) {
  EXPECT_TRUE(hgnas::dominates(pp(0.9, 10), pp(0.8, 12)));
  EXPECT_TRUE(hgnas::dominates(pp(0.9, 10), pp(0.9, 12)));
  EXPECT_FALSE(hgnas::dominates(pp(0.9, 10), pp(0.9, 10)));  // equal
  EXPECT_FALSE(hgnas::dominates(pp(0.9, 10), pp(0.95, 5)));
  EXPECT_FALSE(hgnas::dominates(pp(0.9, 10), pp(0.95, 20)));  // trade-off
}

TEST(Pareto, FrontExtractsNonDominated) {
  auto front = hgnas::pareto_front(
      {pp(0.5, 5), pp(0.7, 10), pp(0.6, 12), pp(0.9, 50), pp(0.4, 8)});
  ASSERT_EQ(front.size(), 3u);
  EXPECT_DOUBLE_EQ(front[0].latency_ms, 5);
  EXPECT_DOUBLE_EQ(front[1].latency_ms, 10);
  EXPECT_DOUBLE_EQ(front[2].latency_ms, 50);
  // Sorted by latency, accuracy strictly increasing.
  EXPECT_LT(front[0].accuracy, front[1].accuracy);
  EXPECT_LT(front[1].accuracy, front[2].accuracy);
}

TEST(Pareto, FrontOfEmptyAndSingle) {
  EXPECT_TRUE(hgnas::pareto_front({}).empty());
  EXPECT_EQ(hgnas::pareto_front({pp(0.5, 5)}).size(), 1u);
}

TEST(Pareto, DominanceRatio) {
  std::vector<hgnas::ParetoPoint> ours = {pp(0.9, 5)};
  std::vector<hgnas::ParetoPoint> theirs = {pp(0.8, 10), pp(0.95, 3)};
  EXPECT_DOUBLE_EQ(hgnas::dominance_ratio(ours, theirs), 0.5);
  EXPECT_DOUBLE_EQ(hgnas::dominance_ratio(ours, {}), 0.0);
}

TEST(Pareto, TrackerMatchesPostHocFrontOnRandomStreams) {
  // The incremental tracker must agree with pareto_front() over the full
  // log for any insertion order — including duplicates and ties, which a
  // quantised value grid provokes constantly.
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    hgnas::ParetoTracker tracker;
    std::vector<hgnas::ParetoPoint> log;
    const int n = 1 + static_cast<int>(rng.uniform_int(std::uint64_t{200}));
    for (int i = 0; i < n; ++i) {
      const double acc =
          static_cast<double>(rng.uniform_int(std::uint64_t{10})) / 10.0;
      const double lat =
          static_cast<double>(1 + rng.uniform_int(std::uint64_t{12}));
      tracker.record(hgnas::Arch{}, acc, lat);
      log.push_back(pp(acc, lat));
    }
    const auto expected = hgnas::pareto_front(log);
    const auto& actual = tracker.frontier();
    ASSERT_EQ(actual.size(), expected.size()) << "trial " << trial;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_DOUBLE_EQ(actual[i].accuracy, expected[i].accuracy)
          << "trial " << trial << " point " << i;
      EXPECT_DOUBLE_EQ(actual[i].latency_ms, expected[i].latency_ms)
          << "trial " << trial << " point " << i;
    }
    EXPECT_EQ(tracker.recorded(), n);
  }
}

TEST(Pareto, TrackerClearAndTieHandling) {
  hgnas::ParetoTracker t;
  t.record(hgnas::Arch{}, 0.5, 10.0);
  t.record(hgnas::Arch{}, 0.5, 10.0);  // exact duplicate: kept once
  ASSERT_EQ(t.frontier().size(), 1u);
  t.record(hgnas::Arch{}, 0.7, 10.0);  // same latency, better accuracy
  ASSERT_EQ(t.frontier().size(), 1u);
  EXPECT_DOUBLE_EQ(t.frontier()[0].accuracy, 0.7);
  t.record(hgnas::Arch{}, 0.7, 8.0);  // same accuracy, faster
  ASSERT_EQ(t.frontier().size(), 1u);
  EXPECT_DOUBLE_EQ(t.frontier()[0].latency_ms, 8.0);
  t.record(hgnas::Arch{}, 0.9, 2.0);  // dominates everything
  ASSERT_EQ(t.frontier().size(), 1u);
  EXPECT_DOUBLE_EQ(t.frontier()[0].latency_ms, 2.0);
  EXPECT_EQ(t.recorded(), 5);
  t.clear();
  EXPECT_TRUE(t.frontier().empty());
  EXPECT_EQ(t.recorded(), 0);
}

// ---- multi-constraint objective ---------------------------------------------------

struct ConstraintFixture {
  hgnas::SpaceConfig space;
  hgnas::Workload workload;
  pointcloud::Dataset data{3, 32, 5};
  Rng rng{1};
  hgnas::SupernetConfig sn_cfg;

  ConstraintFixture() {
    space.num_positions = 6;
    workload.num_points = 512;
    workload.k = 10;
    sn_cfg.hidden = 16;
    sn_cfg.k = 6;
    sn_cfg.num_classes = 10;
    sn_cfg.head_hidden = 32;
  }
};

TEST(Constraints, MemoryAndSizeBoundsGateFitness) {
  ConstraintFixture f;
  hgnas::SuperNet supernet(f.space, f.sn_cfg, f.rng);
  hw::Device dev = hw::make_device(hw::DeviceKind::Rtx3080);
  hgnas::SearchConfig cfg;
  cfg.space = f.space;
  cfg.workload = f.workload;
  cfg.population = 4;
  cfg.parents = 2;
  cfg.iterations = 1;
  cfg.latency_scale_ms = 10.0;
  cfg.memory_constraint_mb = 30.0;
  cfg.size_constraint_mb = 0.5;
  hgnas::HgnasSearch search(supernet, f.data, cfg,
                            hgnas::make_oracle_evaluator(dev, f.workload));

  hgnas::LatencyEval ok{5.0, 0.0, false, 20.0};
  EXPECT_TRUE(search.feasible(ok, 0.1));
  hgnas::LatencyEval heavy_mem{5.0, 0.0, false, 35.0};
  EXPECT_FALSE(search.feasible(heavy_mem, 0.1));
  EXPECT_FALSE(search.feasible(ok, 1.0));  // too many parameters
  hgnas::LatencyEval oom{0.0, 0.0, true, 999.0};
  EXPECT_FALSE(search.feasible(oom, 0.1));
  // Unknown memory (predictor path) is not gated on.
  hgnas::LatencyEval unknown_mem{5.0, 0.0, false, 0.0};
  EXPECT_TRUE(search.feasible(unknown_mem, 0.1));
}

TEST(Constraints, SizeConstrainedSearchFindsSmallModels) {
  ConstraintFixture f;
  hgnas::SuperNet supernet(f.space, f.sn_cfg, f.rng);
  hw::Device dev = hw::make_device(hw::DeviceKind::Rtx3080);
  hgnas::SearchConfig cfg;
  cfg.space = f.space;
  cfg.workload = f.workload;
  cfg.population = 8;
  cfg.parents = 4;
  cfg.iterations = 4;
  cfg.eval_val_samples = 4;
  cfg.train_supernet = false;
  cfg.latency_scale_ms =
      dev.latency_ms(hw::dgcnn_reference_trace(f.workload.num_points));
  cfg.size_constraint_mb = 0.05;  // very tight parameter budget
  Rng rng(3);
  hgnas::HgnasSearch search(supernet, f.data, cfg,
                            hgnas::make_oracle_evaluator(dev, f.workload));
  const auto r = search.run_multistage(rng);
  if (r.best_objective > 0.0) {  // found a feasible design
    EXPECT_LT(arch_param_mb(r.best_arch, f.workload), 0.05);
  }
}

// ---- energy model ------------------------------------------------------------------

TEST(Energy, PowerEfficiencyClaimAcrossDevices) {
  // §I: TX2 running the HGNAS design reaches DGCNN-on-RTX latency at 47x
  // less power, i.e. far better energy per inference.
  hw::Device rtx = hw::make_device(hw::DeviceKind::Rtx3080);
  hw::Device tx2 = hw::make_device(hw::DeviceKind::JetsonTx2);
  const hw::Trace dgcnn = hw::dgcnn_reference_trace(1024);
  hgnas::Workload w;
  w.num_points = 1024;
  w.k = 20;
  const hw::Trace ours = lower_to_trace(hgnas::zoo::tx2_fast(), w);
  EXPECT_LT(tx2.energy_mj(ours), rtx.energy_mj(dgcnn) / 10.0);
}

TEST(Energy, ScalesWithLatency) {
  hw::Device pi = hw::make_device(hw::DeviceKind::RaspberryPi3B);
  EXPECT_GT(pi.energy_mj(hw::dgcnn_reference_trace(1024)),
            pi.energy_mj(hw::dgcnn_reference_trace(256)));
}

// ---- device-conditioned predictor features ---------------------------------------

TEST(DeviceSlot, WritesOneHotIntoGlobalNode) {
  Rng rng(5);
  hgnas::SpaceConfig cfg;
  cfg.num_positions = 6;
  hgnas::Workload w;
  w.num_points = 512;
  w.k = 10;
  Arch a = hgnas::random_arch(cfg, rng);
  auto g_none = predictor::arch_to_graph(a, w, -1);
  auto g_dev2 = predictor::arch_to_graph(a, w, 2);
  const std::int64_t global = g_none.edges.num_nodes - 1;
  int diffs = 0;
  for (std::int64_t i = 0; i < predictor::kFeatureDim; ++i)
    if (g_none.features.at({global, i}) != g_dev2.features.at({global, i}))
      ++diffs;
  EXPECT_EQ(diffs, 1);  // exactly the device bit
  EXPECT_THROW(predictor::arch_to_graph(a, w, 7), std::invalid_argument);
}

TEST(DeviceSlot, SharedPredictorLearnsDeviceScales) {
  // One predictor, two devices whose latencies differ by ~5x: with the
  // device bit it should at least track each device's scale.
  hgnas::SpaceConfig space;
  space.num_positions = 6;
  hgnas::Workload w;
  w.num_points = 512;
  w.k = 10;
  hw::Device rtx = hw::make_device(hw::DeviceKind::Rtx3080);
  hw::Device tx2 = hw::make_device(hw::DeviceKind::JetsonTx2);

  auto rtx_set = predictor::collect_labeled_archs(rtx, space, w, 80, 1);
  auto tx2_set = predictor::collect_labeled_archs(tx2, space, w, 80, 1);
  // Same seed -> same architectures, different device labels: mean ratio
  // reflects the device speed gap.
  double ratio = 0.0;
  for (std::size_t i = 0; i < rtx_set.size(); ++i)
    ratio += tx2_set[i].latency_ms / rtx_set[i].latency_ms;
  ratio /= static_cast<double>(rtx_set.size());
  EXPECT_GT(ratio, 2.0);  // the TX2 is much slower on the same archs
}

}  // namespace
}  // namespace hg
