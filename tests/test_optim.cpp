// Optimiser behaviour: SGD / Adam convergence, dedup, schedules.
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/optim.hpp"
#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"

namespace hg {
namespace {

/// Quadratic bowl: loss = sum((x - target)^2).
float quadratic_step(Tensor& x, const Tensor& target, Optimizer& opt) {
  opt.zero_grad();
  Tensor loss = sum_all(square(sub(x, target)));
  loss.backward();
  opt.step();
  return loss.item();
}

TEST(Sgd, ConvergesOnQuadratic) {
  Tensor x = Tensor::from_vector({3}, {5.f, -3.f, 1.f}, true);
  Tensor target = Tensor::from_vector({3}, {1.f, 2.f, -1.f});
  Sgd opt({x}, 0.1f);
  float last = 0.f;
  for (int i = 0; i < 100; ++i) last = quadratic_step(x, target, opt);
  EXPECT_LT(last, 1e-6f);
  EXPECT_NEAR(x.data()[0], 1.f, 1e-3);
}

TEST(Sgd, MomentumAcceleratesDescent) {
  Tensor x1 = Tensor::from_vector({1}, {10.f}, true);
  Tensor x2 = Tensor::from_vector({1}, {10.f}, true);
  Tensor target = Tensor::from_vector({1}, {0.f});
  Sgd plain({x1}, 0.01f);
  Sgd momentum({x2}, 0.01f, 0.9f);
  for (int i = 0; i < 30; ++i) {
    quadratic_step(x1, target, plain);
    quadratic_step(x2, target, momentum);
  }
  EXPECT_LT(std::fabs(x2.data()[0]), std::fabs(x1.data()[0]));
}

TEST(Sgd, WeightDecayShrinksWeights) {
  Tensor x = Tensor::from_vector({1}, {1.f}, true);
  Sgd opt({x}, 0.1f, 0.f, 0.5f);
  // No loss gradient at all: decay alone should shrink the weight.
  x.zero_grad();
  Tensor dummy = mul(x, 0.f);
  sum_all(dummy).backward();
  opt.step();
  EXPECT_LT(x.data()[0], 1.f);
}

TEST(Adam, ConvergesOnQuadratic) {
  Tensor x = Tensor::from_vector({4}, {3.f, -2.f, 0.5f, 4.f}, true);
  Tensor target = Tensor::from_vector({4}, {0.f, 1.f, -1.f, 2.f});
  Adam opt({x}, 0.05f);
  float last = 0.f;
  for (int i = 0; i < 300; ++i) last = quadratic_step(x, target, opt);
  EXPECT_LT(last, 1e-4f);
}

TEST(Adam, HandlesSparseGradients) {
  // Parameters with no grad this step must be left untouched.
  Tensor used = Tensor::from_vector({1}, {1.f}, true);
  Tensor unused = Tensor::from_vector({1}, {7.f}, true);
  Adam opt({used, unused}, 0.1f);
  opt.zero_grad();
  sum_all(square(used)).backward();
  opt.step();
  EXPECT_FLOAT_EQ(unused.data()[0], 7.f);
  EXPECT_NE(used.data()[0], 1.f);
}

TEST(Optimizer, DedupesSharedParameters) {
  Tensor x = Tensor::from_vector({1}, {1.f}, true);
  Sgd opt({x, x, x}, 0.1f);
  EXPECT_EQ(opt.num_params(), 1u);
  opt.zero_grad();
  sum_all(x).backward();
  opt.step();
  EXPECT_NEAR(x.data()[0], 0.9f, 1e-6);  // stepped exactly once
}

TEST(Optimizer, RejectsNonGradParameters) {
  Tensor x = Tensor::from_vector({1}, {1.f}, false);
  EXPECT_THROW(Sgd({x}, 0.1f), std::invalid_argument);
}

TEST(CosineLr, EndpointsAndMonotone) {
  EXPECT_FLOAT_EQ(cosine_lr(1.f, 0.f, 0, 100), 1.f);
  EXPECT_NEAR(cosine_lr(1.f, 0.f, 100, 100), 0.f, 1e-6);
  EXPECT_NEAR(cosine_lr(1.f, 0.f, 50, 100), 0.5f, 1e-6);
  float prev = 2.f;
  for (int s = 0; s <= 100; s += 10) {
    const float lr = cosine_lr(1.f, 0.1f, s, 100);
    EXPECT_LE(lr, prev);
    prev = lr;
  }
}

TEST(CosineLr, ClampsPastEnd) {
  EXPECT_FLOAT_EQ(cosine_lr(1.f, 0.2f, 150, 100), 0.2f);
}

TEST(Adam, TrainsLinearRegression) {
  // y = 2x + 1 from noisy samples; checks the full tensor+optim loop.
  Rng rng(99);
  Tensor w = Tensor::from_vector({1, 1}, {0.f}, true);
  Tensor b = Tensor::from_vector({1}, {0.f}, true);
  Adam opt({w, b}, 0.05f);
  std::vector<float> xs, ys;
  for (int i = 0; i < 64; ++i) {
    const float x = rng.uniform(-2.f, 2.f);
    xs.push_back(x);
    ys.push_back(2.f * x + 1.f + rng.normal(0.f, 0.01f));
  }
  Tensor X = Tensor::from_vector({64, 1}, std::vector<float>(xs));
  Tensor Y = Tensor::from_vector({64, 1}, std::vector<float>(ys));
  for (int it = 0; it < 400; ++it) {
    opt.zero_grad();
    Tensor pred = add(matmul(X, w), b);
    Tensor loss = mean_all(square(sub(pred, Y)));
    loss.backward();
    opt.step();
  }
  EXPECT_NEAR(w.data()[0], 2.f, 0.05);
  EXPECT_NEAR(b.data()[0], 1.f, 0.05);
}

}  // namespace
}  // namespace hg
