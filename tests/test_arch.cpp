// Design space: channel flow, trace lowering (incl. sample merging and lazy
// initial KNN), genetic operators, space-size claims.
#include <gtest/gtest.h>

#include <set>

#include "hgnas/arch.hpp"

namespace hg::hgnas {
namespace {

PositionGene gene(OpType op) {
  PositionGene g;
  g.op = op;
  return g;
}

Workload small_workload() {
  Workload w;
  w.num_points = 64;
  w.k = 8;
  w.num_classes = 10;
  return w;
}

TEST(ChannelFlow, CombineSetsDim) {
  Arch a;
  PositionGene g = gene(OpType::Combine);
  g.fn.combine_dim_idx = 4;  // 128
  a.genes = {g};
  auto flow = channel_flow(a, small_workload());
  EXPECT_EQ(flow, (std::vector<std::int64_t>{3, 128}));
}

TEST(ChannelFlow, AggregateExpandsByMessageType) {
  Arch a;
  PositionGene g = gene(OpType::Aggregate);
  g.fn.msg = gnn::MessageType::TargetRel;
  a.genes = {g, g};
  auto flow = channel_flow(a, small_workload());
  EXPECT_EQ(flow, (std::vector<std::int64_t>{3, 6, 12}));
}

TEST(ChannelFlow, SampleAndConnectPreserveDim) {
  Arch a;
  a.genes = {gene(OpType::Sample), gene(OpType::Connect)};
  auto flow = channel_flow(a, small_workload());
  EXPECT_EQ(flow, (std::vector<std::int64_t>{3, 3, 3}));
}

TEST(ChannelFlow, DistanceMessageCollapsesToOne) {
  Arch a;
  PositionGene g = gene(OpType::Aggregate);
  g.fn.msg = gnn::MessageType::Distance;
  a.genes = {g};
  EXPECT_EQ(channel_flow(a, small_workload()).back(), 1);
}

// ---- lowering -----------------------------------------------------------------

int count_ops(const hw::Trace& t, hw::OpCategory cat) {
  int n = 0;
  for (const auto& op : t.ops)
    if (op.category == cat) ++n;
  return n;
}

TEST(Lowering, AggregateWithoutSampleTriggersImplicitKnn) {
  Arch a;
  a.genes = {gene(OpType::Aggregate)};
  hw::Trace t = lower_to_trace(a, small_workload());
  EXPECT_EQ(count_ops(t, hw::OpCategory::Sample), 1);
  EXPECT_EQ(count_ops(t, hw::OpCategory::Aggregate), 1);
}

TEST(Lowering, AdjacentSamplesAreMerged) {
  // Fig. 10 note: "adjacent KNN operations will be merged during execution".
  Arch a;
  a.genes = {gene(OpType::Sample), gene(OpType::Sample),
             gene(OpType::Sample), gene(OpType::Aggregate)};
  hw::Trace t = lower_to_trace(a, small_workload());
  EXPECT_EQ(count_ops(t, hw::OpCategory::Sample), 1);
}

TEST(Lowering, SampleAfterFeatureChangeIsNotMerged) {
  Arch a;
  a.genes = {gene(OpType::Sample), gene(OpType::Aggregate),
             gene(OpType::Sample), gene(OpType::Aggregate)};
  hw::Trace t = lower_to_trace(a, small_workload());
  EXPECT_EQ(count_ops(t, hw::OpCategory::Sample), 2);
}

TEST(Lowering, IdentityConnectIsFree) {
  Arch with_id;
  PositionGene id = gene(OpType::Connect);
  id.fn.connect = ConnectFunc::Identity;
  with_id.genes = {gene(OpType::Combine), id};
  Arch without;
  without.genes = {gene(OpType::Combine)};
  const Workload w = small_workload();
  EXPECT_EQ(lower_to_trace(with_id, w).ops.size(),
            lower_to_trace(without, w).ops.size());
}

TEST(Lowering, SkipConnectAddsElementwiseOp) {
  Arch a;
  PositionGene skip = gene(OpType::Connect);
  skip.fn.connect = ConnectFunc::SkipConnect;
  a.genes = {gene(OpType::Combine), skip};
  hw::Trace t = lower_to_trace(a, small_workload());
  bool found = false;
  for (const auto& op : t.ops)
    if (op.name == "skip_add") found = true;
  EXPECT_TRUE(found);
}

TEST(Lowering, SkipConnectInvalidatesGraphFreshness) {
  // Sample, skip (features change), Sample again: both samples must count.
  Arch a;
  PositionGene skip = gene(OpType::Connect);
  skip.fn.connect = ConnectFunc::SkipConnect;
  a.genes = {gene(OpType::Sample), skip, gene(OpType::Sample),
             gene(OpType::Aggregate)};
  hw::Trace t = lower_to_trace(a, small_workload());
  EXPECT_EQ(count_ops(t, hw::OpCategory::Sample), 2);
}

TEST(Lowering, ParamsComeFromCombinesAndHead) {
  Arch no_combines;
  no_combines.genes = {gene(OpType::Aggregate)};
  Arch with_combine;
  PositionGene c = gene(OpType::Combine);
  c.fn.combine_dim_idx = 5;  // 256
  with_combine.genes = {gene(OpType::Aggregate), c};
  const Workload w = small_workload();
  EXPECT_GT(arch_param_mb(with_combine, w), arch_param_mb(no_combines, w));
  EXPECT_GT(arch_param_mb(no_combines, w), 0.0);  // head always present
}

TEST(Lowering, RandomSampleCheaperThanKnnOnEveryDevice) {
  Arch knn_arch;
  PositionGene s = gene(OpType::Sample);
  s.fn.sample = SampleFunc::Knn;
  knn_arch.genes = {s, gene(OpType::Aggregate)};
  Arch rnd_arch = knn_arch;
  rnd_arch.genes[0].fn.sample = SampleFunc::Random;
  Workload w;
  w.num_points = 1024;
  w.k = 20;
  for (int d = 0; d < hw::kNumDevices; ++d) {
    hw::Device dev = hw::make_device(static_cast<hw::DeviceKind>(d));
    EXPECT_LT(dev.latency_ms(lower_to_trace(rnd_arch, w)),
              dev.latency_ms(lower_to_trace(knn_arch, w)))
        << dev.name();
  }
}

// ---- visualisation ----------------------------------------------------------------

TEST(Visualize, ShowsEffectiveOpsOnly) {
  Arch a;
  PositionGene s = gene(OpType::Sample);
  PositionGene agg = gene(OpType::Aggregate);
  agg.fn.msg = gnn::MessageType::TargetRel;
  agg.fn.aggr = AggrType::Max;
  PositionGene c = gene(OpType::Combine);
  c.fn.combine_dim_idx = 3;  // 64
  PositionGene id = gene(OpType::Connect);
  id.fn.connect = ConnectFunc::Identity;
  a.genes = {s, s, c, agg, id};
  const std::string v = visualize(a, small_workload());
  // Merged samples -> single KNN; identity connect invisible.
  EXPECT_EQ(v.find("KNN"), v.rfind("KNN"));
  EXPECT_NE(v.find("Combine (64)"), std::string::npos);
  EXPECT_NE(v.find("target||rel, max"), std::string::npos);
  EXPECT_NE(v.find("Classifier"), std::string::npos);
  EXPECT_EQ(v.find("identity"), std::string::npos);
}

// ---- genetic operators ----------------------------------------------------------------

TEST(Sampling, RandomArchHasRequestedPositions) {
  Rng rng(1);
  SpaceConfig cfg;
  cfg.num_positions = 12;
  Arch a = random_arch(cfg, rng);
  EXPECT_EQ(a.num_positions(), 12);
}

TEST(Sampling, RandomArchCoversAllOpTypes) {
  Rng rng(2);
  SpaceConfig cfg;
  std::set<OpType> seen;
  for (int i = 0; i < 50; ++i)
    for (const auto& g : random_arch(cfg, rng).genes) seen.insert(g.op);
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Sampling, FunctionSharingStampsHalves) {
  Rng rng(3);
  SpaceConfig cfg;
  cfg.num_positions = 12;
  FunctionSet up = random_functions(rng);
  FunctionSet lo = random_functions(rng);
  while (lo == up) lo = random_functions(rng);
  Arch a = random_arch_with_functions(cfg, up, lo, rng);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(a.genes[i].fn, up);
  for (int i = 6; i < 12; ++i) EXPECT_EQ(a.genes[i].fn, lo);
}

TEST(Sampling, MutateOpsPreservesFunctions) {
  Rng rng(4);
  SpaceConfig cfg;
  Arch parent = random_arch(cfg, rng);
  Arch child = mutate_ops(parent, 1.0, rng);
  for (std::size_t i = 0; i < parent.genes.size(); ++i)
    EXPECT_EQ(child.genes[i].fn, parent.genes[i].fn);
}

TEST(Sampling, MutateZeroProbabilityIsIdentity) {
  Rng rng(5);
  SpaceConfig cfg;
  Arch parent = random_arch(cfg, rng);
  EXPECT_EQ(mutate(parent, 0.0, 0.0, rng), parent);
}

TEST(Sampling, MutateFullProbabilityChangesSomething) {
  Rng rng(6);
  SpaceConfig cfg;
  Arch parent = random_arch(cfg, rng);
  Arch child = mutate(parent, 1.0, 1.0, rng);
  EXPECT_NE(child, parent);  // 12 positions, astronomically unlikely equal
}

TEST(Sampling, CrossoverMixesParents) {
  Rng rng(7);
  SpaceConfig cfg;
  Arch a = random_arch(cfg, rng);
  Arch b = random_arch(cfg, rng);
  Arch child = crossover(a, b, rng);
  for (std::size_t i = 0; i < child.genes.size(); ++i)
    EXPECT_TRUE(child.genes[i] == a.genes[i] || child.genes[i] == b.genes[i]);
}

TEST(Sampling, CrossoverSizeMismatchThrows) {
  Rng rng(8);
  SpaceConfig small;
  small.num_positions = 4;
  SpaceConfig big;
  big.num_positions = 8;
  Arch a = random_arch(small, rng);
  Arch b = random_arch(big, rng);
  EXPECT_THROW(crossover(a, b, rng), std::invalid_argument);
}

TEST(ArchHash, EqualArchsSameHashDistinctDiffer) {
  Rng rng(9);
  SpaceConfig cfg;
  Arch a = random_arch(cfg, rng);
  Arch b = a;
  EXPECT_EQ(a.hash(), b.hash());
  Arch c = mutate(a, 1.0, 1.0, rng);
  EXPECT_NE(a.hash(), c.hash());
}

// ---- space size (paper §III-C claim) -------------------------------------------------

TEST(SpaceSize, OperationSpaceIs4To12) {
  SpaceConfig cfg;
  cfg.num_positions = 12;
  // 4^12 = 16,777,216 ~= the paper's "1.7 x 10^7" after function sharing.
  EXPECT_NEAR(std::pow(10.0, log10_operation_space_size(cfg)), 16777216.0,
              1.0);
}

TEST(SpaceSize, FullSpaceVastlyLarger) {
  SpaceConfig cfg;
  cfg.num_positions = 12;
  // Function sharing must shrink exploration by at least 10^5 (paper:
  // 4.2e12 -> 1.7e7).
  EXPECT_GT(log10_full_space_size(cfg) - log10_operation_space_size(cfg),
            5.0);
}

TEST(Names, AllEnumNamesDistinct) {
  std::set<std::string> ops = {op_type_name(OpType::Connect),
                               op_type_name(OpType::Aggregate),
                               op_type_name(OpType::Combine),
                               op_type_name(OpType::Sample)};
  EXPECT_EQ(ops.size(), 4u);
  std::set<std::string> aggrs = {
      aggr_type_name(AggrType::Sum), aggr_type_name(AggrType::Min),
      aggr_type_name(AggrType::Max), aggr_type_name(AggrType::Mean)};
  EXPECT_EQ(aggrs.size(), 4u);
}

TEST(CombineDims, MatchTableI) {
  EXPECT_EQ(kCombineDims,
            (std::array<std::int64_t, 6>{8, 16, 32, 64, 128, 256}));
}

}  // namespace
}  // namespace hg::hgnas
