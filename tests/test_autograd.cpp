// Reverse-mode autodiff correctness: every differentiable op is verified
// against central finite differences, plus tape-mechanics tests (grad
// accumulation, reuse, no-grad mode, non-scalar seeds).
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"

namespace hg {
namespace {

/// Central-difference check of d(loss)/d(x) for a scalar-valued builder.
/// Returns max absolute deviation between analytic and numeric gradients.
double max_grad_error(Tensor& x,
                      const std::function<Tensor(const Tensor&)>& loss_fn,
                      float eps = 1e-3f) {
  x.set_requires_grad(true);
  x.zero_grad();
  Tensor loss = loss_fn(x);
  loss.backward();
  EXPECT_TRUE(x.has_grad());
  const auto analytic =
      std::vector<float>(x.grad().begin(), x.grad().end());

  double max_err = 0.0;
  auto data = x.data();
  for (std::size_t i = 0; i < data.size(); ++i) {
    const float orig = data[i];
    data[i] = orig + eps;
    const float fp = loss_fn(x).item();
    data[i] = orig - eps;
    const float fm = loss_fn(x).item();
    data[i] = orig;
    const double numeric = (static_cast<double>(fp) - fm) / (2.0 * eps);
    max_err = std::max(max_err, std::abs(numeric - analytic[i]));
  }
  return max_err;
}

Tensor make_input(Shape shape, std::uint64_t seed, float lo = -1.f,
                  float hi = 1.f) {
  Rng rng(seed);
  return Tensor::rand_uniform(std::move(shape), rng, lo, hi);
}

constexpr double kTol = 2e-2;  // float32 finite differences

TEST(Autograd, AddExact) {
  Tensor x = make_input({3, 4}, 1);
  Tensor other = make_input({3, 4}, 2);
  EXPECT_LT(max_grad_error(
                x, [&](const Tensor& t) { return sum_all(add(t, other)); }),
            kTol);
}

TEST(Autograd, AddRowBroadcastGradOfRow) {
  Tensor row = make_input({4}, 3);
  Tensor full = make_input({3, 4}, 4);
  EXPECT_LT(max_grad_error(
                row,
                [&](const Tensor& r) {
                  return sum_all(square(add(full, r)));
                }),
            kTol);
}

TEST(Autograd, AddColBroadcastGradOfCol) {
  Tensor col = make_input({3, 1}, 5);
  Tensor full = make_input({3, 4}, 6);
  EXPECT_LT(max_grad_error(
                col,
                [&](const Tensor& c) {
                  return sum_all(square(add(full, c)));
                }),
            kTol);
}

TEST(Autograd, SubBothSides) {
  Tensor x = make_input({2, 3}, 7);
  Tensor other = make_input({2, 3}, 8);
  EXPECT_LT(max_grad_error(
                x,
                [&](const Tensor& t) {
                  return sum_all(square(sub(other, t)));
                }),
            kTol);
}

TEST(Autograd, MulElementwise) {
  Tensor x = make_input({2, 3}, 9);
  Tensor other = make_input({2, 3}, 10);
  EXPECT_LT(max_grad_error(
                x, [&](const Tensor& t) { return sum_all(mul(t, other)); }),
            kTol);
}

TEST(Autograd, MulRowBroadcastGradOfRow) {
  Tensor row = make_input({3}, 11);
  Tensor full = make_input({4, 3}, 12);
  EXPECT_LT(max_grad_error(
                row, [&](const Tensor& r) { return sum_all(mul(full, r)); }),
            kTol);
}

TEST(Autograd, DivNumeratorAndDenominator) {
  Tensor num = make_input({2, 2}, 13, 0.5f, 2.f);
  Tensor den = make_input({2, 2}, 14, 0.5f, 2.f);
  EXPECT_LT(max_grad_error(
                num, [&](const Tensor& t) { return sum_all(div(t, den)); }),
            kTol);
  EXPECT_LT(max_grad_error(
                den, [&](const Tensor& t) { return sum_all(div(num, t)); }),
            kTol);
}

TEST(Autograd, DivRowBroadcastDenominator) {
  Tensor den = make_input({3}, 15, 0.5f, 2.f);
  Tensor full = make_input({2, 3}, 16, 0.5f, 2.f);
  EXPECT_LT(max_grad_error(
                den, [&](const Tensor& d) { return sum_all(div(full, d)); }),
            kTol);
}

TEST(Autograd, ReluAwayFromKink) {
  Tensor x = Tensor::from_vector({4}, {-0.9f, -0.3f, 0.4f, 1.2f});
  EXPECT_LT(
      max_grad_error(x, [](const Tensor& t) { return sum_all(relu(t)); }),
      kTol);
}

TEST(Autograd, LeakyRelu) {
  Tensor x = Tensor::from_vector({4}, {-1.5f, -0.4f, 0.3f, 0.8f});
  EXPECT_LT(max_grad_error(
                x,
                [](const Tensor& t) {
                  return sum_all(leaky_relu(t, 0.2f));
                }),
            kTol);
}

TEST(Autograd, Sigmoid) {
  Tensor x = make_input({5}, 17);
  EXPECT_LT(
      max_grad_error(x, [](const Tensor& t) { return sum_all(sigmoid(t)); }),
      kTol);
}

TEST(Autograd, Tanh) {
  Tensor x = make_input({5}, 18);
  EXPECT_LT(
      max_grad_error(x, [](const Tensor& t) { return sum_all(tanh_op(t)); }),
      kTol);
}

TEST(Autograd, Exp) {
  Tensor x = make_input({5}, 19);
  EXPECT_LT(
      max_grad_error(x, [](const Tensor& t) { return sum_all(exp_op(t)); }),
      kTol);
}

TEST(Autograd, Log) {
  Tensor x = make_input({5}, 20, 0.5f, 2.f);
  EXPECT_LT(
      max_grad_error(x, [](const Tensor& t) { return sum_all(log_op(t)); }),
      kTol);
}

TEST(Autograd, Sqrt) {
  Tensor x = make_input({5}, 21, 0.5f, 2.f);
  EXPECT_LT(
      max_grad_error(x, [](const Tensor& t) { return sum_all(sqrt_op(t)); }),
      kTol);
}

TEST(Autograd, SquareAbs) {
  Tensor x = make_input({5}, 22, 0.2f, 1.f);
  EXPECT_LT(
      max_grad_error(x, [](const Tensor& t) { return sum_all(square(t)); }),
      kTol);
  EXPECT_LT(
      max_grad_error(x, [](const Tensor& t) { return sum_all(abs_op(t)); }),
      kTol);
}

TEST(Autograd, MatmulBothOperands) {
  Tensor a = make_input({3, 4}, 23);
  Tensor b = make_input({4, 2}, 24);
  EXPECT_LT(max_grad_error(
                a, [&](const Tensor& t) { return sum_all(matmul(t, b)); }),
            kTol);
  EXPECT_LT(max_grad_error(
                b, [&](const Tensor& t) { return sum_all(matmul(a, t)); }),
            kTol);
}

TEST(Autograd, MatmulChainWithSquare) {
  Tensor a = make_input({2, 3}, 25);
  Tensor b = make_input({3, 3}, 26);
  EXPECT_LT(max_grad_error(
                a,
                [&](const Tensor& t) {
                  return sum_all(square(matmul(t, b)));
                }),
            kTol);
}

TEST(Autograd, Transpose) {
  Tensor a = make_input({3, 2}, 27);
  Tensor w = make_input({3, 2}, 28);
  EXPECT_LT(max_grad_error(
                a,
                [&](const Tensor& t) {
                  return sum_all(mul(transpose(t), transpose(w)));
                }),
            kTol);
}

TEST(Autograd, SumAxis0And1) {
  Tensor a = make_input({3, 4}, 29);
  EXPECT_LT(max_grad_error(
                a,
                [](const Tensor& t) {
                  return sum_all(square(sum_axis(t, 0)));
                }),
            kTol);
  EXPECT_LT(max_grad_error(
                a,
                [](const Tensor& t) {
                  return sum_all(square(sum_axis(t, 1)));
                }),
            kTol);
}

TEST(Autograd, MeanAll) {
  Tensor a = make_input({4, 4}, 30);
  EXPECT_LT(max_grad_error(
                a, [](const Tensor& t) { return mean_all(square(t)); }),
            kTol);
}

TEST(Autograd, MaxAxis0RoutesToArgmax) {
  // Distinct values so the argmax is stable under the FD perturbation.
  Tensor a = Tensor::from_vector({3, 2}, {0.1f, 0.9f, 0.5f, 0.2f, 0.3f, 0.7f});
  EXPECT_LT(max_grad_error(
                a,
                [](const Tensor& t) {
                  return sum_all(square(max_axis0(t)));
                }),
            kTol);
}

TEST(Autograd, MinAxis0) {
  Tensor a = Tensor::from_vector({3, 2}, {0.1f, 0.9f, 0.5f, 0.2f, 0.3f, 0.7f});
  EXPECT_LT(max_grad_error(
                a,
                [](const Tensor& t) {
                  return sum_all(square(min_axis0(t)));
                }),
            kTol);
}

TEST(Autograd, Reshape) {
  Tensor a = make_input({2, 6}, 31);
  EXPECT_LT(max_grad_error(
                a,
                [](const Tensor& t) {
                  return sum_all(square(reshape(t, {3, 4})));
                }),
            kTol);
}

TEST(Autograd, ConcatAxis1) {
  Tensor a = make_input({2, 2}, 32);
  Tensor b = make_input({2, 3}, 33);
  EXPECT_LT(max_grad_error(
                a,
                [&](const Tensor& t) {
                  return sum_all(square(concat({t, b}, 1)));
                }),
            kTol);
  EXPECT_LT(max_grad_error(
                b,
                [&](const Tensor& t) {
                  return sum_all(square(concat({a, t}, 1)));
                }),
            kTol);
}

TEST(Autograd, ConcatAxis0) {
  Tensor a = make_input({1, 3}, 34);
  Tensor b = make_input({2, 3}, 35);
  EXPECT_LT(max_grad_error(
                b,
                [&](const Tensor& t) {
                  return sum_all(square(concat({a, t}, 0)));
                }),
            kTol);
}

TEST(Autograd, GatherRowsScattersGradBack) {
  Tensor a = make_input({4, 3}, 36);
  std::vector<std::int64_t> idx = {1, 3, 1, 0};  // row 1 used twice
  EXPECT_LT(max_grad_error(
                a,
                [&](const Tensor& t) {
                  return sum_all(square(gather_rows(t, idx)));
                }),
            kTol);
}

TEST(Autograd, SliceRows) {
  Tensor a = make_input({5, 2}, 37);
  EXPECT_LT(max_grad_error(
                a,
                [](const Tensor& t) {
                  return sum_all(square(slice_rows(t, 1, 4)));
                }),
            kTol);
}

TEST(Autograd, ScatterSum) {
  Tensor msgs = make_input({6, 2}, 38);
  std::vector<std::int64_t> idx = {0, 1, 0, 2, 1, 2};
  EXPECT_LT(max_grad_error(
                msgs,
                [&](const Tensor& t) {
                  return sum_all(square(scatter_reduce(t, idx, 3,
                                                       Reduce::Sum)));
                }),
            kTol);
}

TEST(Autograd, ScatterMean) {
  Tensor msgs = make_input({6, 2}, 39);
  std::vector<std::int64_t> idx = {0, 0, 0, 1, 1, 2};
  EXPECT_LT(max_grad_error(
                msgs,
                [&](const Tensor& t) {
                  return sum_all(square(scatter_reduce(t, idx, 3,
                                                       Reduce::Mean)));
                }),
            kTol);
}

TEST(Autograd, ScatterMax) {
  // Well-separated values keep the argmax stable under perturbation.
  Tensor msgs = Tensor::from_vector(
      {4, 2}, {0.1f, 0.9f, 0.5f, 0.3f, 0.85f, 0.15f, 0.4f, 0.6f});
  std::vector<std::int64_t> idx = {0, 0, 1, 1};
  EXPECT_LT(max_grad_error(
                msgs,
                [&](const Tensor& t) {
                  return sum_all(square(scatter_reduce(t, idx, 2,
                                                       Reduce::Max)));
                }),
            kTol);
}

TEST(Autograd, ScatterMin) {
  Tensor msgs = Tensor::from_vector(
      {4, 1}, {0.2f, 0.8f, 0.5f, 0.1f});
  std::vector<std::int64_t> idx = {0, 0, 1, 1};
  EXPECT_LT(max_grad_error(
                msgs,
                [&](const Tensor& t) {
                  return sum_all(square(scatter_reduce(t, idx, 2,
                                                       Reduce::Min)));
                }),
            kTol);
}

TEST(Autograd, Softmax) {
  Tensor a = make_input({2, 4}, 40);
  Tensor target = make_input({2, 4}, 41);
  EXPECT_LT(max_grad_error(
                a,
                [&](const Tensor& t) {
                  return sum_all(square(sub(softmax(t), target)));
                }),
            kTol);
}

TEST(Autograd, LogSoftmax) {
  Tensor a = make_input({2, 4}, 42);
  Tensor w = make_input({2, 4}, 43);
  EXPECT_LT(max_grad_error(
                a,
                [&](const Tensor& t) {
                  return sum_all(mul(log_softmax(t), w));
                }),
            kTol);
}

TEST(Autograd, CrossEntropy) {
  Tensor logits = make_input({3, 5}, 44);
  std::vector<std::int64_t> labels = {0, 2, 4};
  EXPECT_LT(max_grad_error(
                logits,
                [&](const Tensor& t) { return cross_entropy(t, labels); }),
            kTol);
}

// ---- tape mechanics ------------------------------------------------------------

TEST(AutogradTape, GradAccumulatesWhenTensorReused) {
  Tensor x = Tensor::from_vector({2}, {1.f, 2.f}, /*requires_grad=*/true);
  Tensor y = add(mul(x, 3.f), mul(x, 2.f));  // y = 5x
  sum_all(y).backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 5.f);
  EXPECT_FLOAT_EQ(x.grad()[1], 5.f);
}

TEST(AutogradTape, ZeroGradClears) {
  Tensor x = Tensor::from_vector({1}, {2.f}, true);
  sum_all(square(x)).backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 4.f);
  x.zero_grad();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.f);
  sum_all(square(x)).backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 4.f);
}

TEST(AutogradTape, BackwardTwiceAccumulates) {
  Tensor x = Tensor::from_vector({1}, {3.f}, true);
  Tensor loss = square(x);
  loss.backward();
  loss.backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 12.f);  // 2 * (2x)
}

TEST(AutogradTape, NoGradGuardDisablesTape) {
  Tensor x = Tensor::from_vector({1}, {2.f}, true);
  {
    NoGradGuard ng;
    Tensor y = square(x);
    EXPECT_FALSE(y.requires_grad());
  }
  Tensor y2 = square(x);
  EXPECT_TRUE(y2.requires_grad());
}

TEST(AutogradTape, DetachCutsHistory) {
  Tensor x = Tensor::from_vector({1}, {2.f}, true);
  Tensor y = square(x).detach();
  EXPECT_FALSE(y.requires_grad());
  Tensor z = square(y.set_requires_grad(true));
  z.backward();
  EXPECT_FALSE(x.has_grad());  // gradient did not flow past the detach
}

TEST(AutogradTape, NonScalarBackwardNeedsSeed) {
  Tensor x = Tensor::from_vector({2}, {1.f, 2.f}, true);
  Tensor y = mul(x, 2.f);
  EXPECT_THROW(y.backward(), std::invalid_argument);
  const std::vector<float> seed = {1.f, 10.f};
  y.backward(seed);
  EXPECT_FLOAT_EQ(x.grad()[0], 2.f);
  EXPECT_FLOAT_EQ(x.grad()[1], 20.f);
}

TEST(AutogradTape, DiamondGraphGradCorrect) {
  // z = (x*2) + (x*3); dz/dx = 5 through two paths.
  Tensor x = Tensor::from_vector({1}, {1.f}, true);
  Tensor a = mul(x, 2.f);
  Tensor b = mul(x, 3.f);
  Tensor z = add(a, b);
  z.backward(std::vector<float>{1.f});
  EXPECT_FLOAT_EQ(x.grad()[0], 5.f);
}

TEST(AutogradTape, LeafWithoutRequiresGradGetsNoGrad) {
  Tensor x = Tensor::from_vector({1}, {1.f}, false);
  Tensor y = Tensor::from_vector({1}, {2.f}, true);
  Tensor z = mul(x, y);
  z.backward(std::vector<float>{1.f});
  EXPECT_FALSE(x.has_grad());
  EXPECT_TRUE(y.has_grad());
}

}  // namespace
}  // namespace hg
