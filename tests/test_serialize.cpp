// Checkpoint round-trips and failure modes.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "tensor/rng.hpp"
#include "tensor/serialize.hpp"
#include "tensor/tensor.hpp"

namespace hg {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("hg_ser_test_" + std::to_string(::getpid()) + ".bin");
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::filesystem::path path_;
};

TEST_F(SerializeTest, RoundTripPreservesDataAndShape) {
  Rng rng(5);
  std::vector<Tensor> saved = {Tensor::randn({3, 4}, rng),
                               Tensor::randn({7}, rng),
                               Tensor::scalar(2.5f)};
  save_tensors(path_.string(), saved);

  std::vector<Tensor> loaded = {Tensor::zeros({3, 4}), Tensor::zeros({7}),
                                Tensor::scalar(0.f)};
  load_tensors(path_.string(), loaded);
  for (std::size_t t = 0; t < saved.size(); ++t) {
    ASSERT_EQ(saved[t].shape(), loaded[t].shape());
    for (std::int64_t i = 0; i < saved[t].numel(); ++i)
      EXPECT_FLOAT_EQ(saved[t].data()[i], loaded[t].data()[i]);
  }
}

TEST_F(SerializeTest, ShapeMismatchThrows) {
  save_tensors(path_.string(), {Tensor::zeros({2, 2})});
  std::vector<Tensor> wrong = {Tensor::zeros({4})};
  EXPECT_THROW(load_tensors(path_.string(), wrong), std::runtime_error);
}

TEST_F(SerializeTest, CountMismatchThrows) {
  save_tensors(path_.string(), {Tensor::zeros({2})});
  std::vector<Tensor> wrong = {Tensor::zeros({2}), Tensor::zeros({2})};
  EXPECT_THROW(load_tensors(path_.string(), wrong), std::runtime_error);
}

TEST_F(SerializeTest, MissingFileThrows) {
  std::vector<Tensor> t = {Tensor::zeros({1})};
  EXPECT_THROW(load_tensors("/nonexistent/dir/x.bin", t), std::runtime_error);
}

TEST_F(SerializeTest, CorruptMagicThrows) {
  std::ofstream out(path_, std::ios::binary);
  out << "NOPE garbage";
  out.close();
  std::vector<Tensor> t = {Tensor::zeros({1})};
  EXPECT_THROW(load_tensors(path_.string(), t), std::runtime_error);
}

TEST_F(SerializeTest, TruncatedFileThrows) {
  save_tensors(path_.string(), {Tensor::zeros({100})});
  std::filesystem::resize_file(path_, 40);
  std::vector<Tensor> t = {Tensor::zeros({100})};
  EXPECT_THROW(load_tensors(path_.string(), t), std::runtime_error);
}

}  // namespace
}  // namespace hg
