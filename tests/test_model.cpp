// Materialised GnnModel: shapes, semantics parity with the lowering,
// skip-connect behaviour, training smoke test.
#include <gtest/gtest.h>

#include <cmath>

#include "hgnas/model.hpp"

namespace hg::hgnas {
namespace {

PositionGene gene(OpType op) {
  PositionGene g;
  g.op = op;
  return g;
}

Workload tiny_workload() {
  Workload w;
  w.num_points = 32;
  w.k = 6;
  w.num_classes = 10;
  return w;
}

Tensor random_cloud(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  return Tensor::rand_uniform({n, 3}, rng, -1.f, 1.f);
}

TEST(GnnModel, ForwardProducesLogits) {
  Rng rng(1);
  Arch a;
  PositionGene c = gene(OpType::Combine);
  c.fn.combine_dim_idx = 2;  // 32
  a.genes = {gene(OpType::Sample), c, gene(OpType::Aggregate)};
  GnnModel model(a, tiny_workload(), rng);
  Tensor logits = model.forward(random_cloud(32, 2), rng);
  EXPECT_EQ(logits.shape(), (Shape{1, 10}));
  for (float v : logits.data()) EXPECT_TRUE(std::isfinite(v));
}

TEST(GnnModel, EmptyArchThrows) {
  Rng rng(3);
  Arch a;
  EXPECT_THROW(GnnModel(a, tiny_workload(), rng), std::invalid_argument);
}

TEST(GnnModel, ChannelBlowupRejected) {
  Rng rng(4);
  Arch a;
  PositionGene full = gene(OpType::Aggregate);
  full.fn.msg = gnn::MessageType::Full;  // 3d+1 growth
  a.genes.assign(12, full);
  EXPECT_THROW(GnnModel(a, tiny_workload(), rng), std::invalid_argument);
}

TEST(GnnModel, ParamCountMatchesLowering) {
  Rng rng(5);
  Arch a;
  PositionGene c1 = gene(OpType::Combine);
  c1.fn.combine_dim_idx = 3;  // 64
  PositionGene agg = gene(OpType::Aggregate);
  agg.fn.msg = gnn::MessageType::TargetRel;
  a.genes = {gene(OpType::Sample), c1, agg};
  const Workload w = tiny_workload();
  GnnModel model(a, w, rng);
  // The lowering's analytic param count must match the real model.
  EXPECT_NEAR(model.param_mb(), arch_param_mb(a, w), 1e-9);
}

TEST(GnnModel, WrongInputShapeThrows) {
  Rng rng(6);
  Arch a;
  a.genes = {gene(OpType::Aggregate)};
  GnnModel model(a, tiny_workload(), rng);
  EXPECT_THROW(model.forward(Tensor::ones({32, 4}), rng),
               std::invalid_argument);
  EXPECT_THROW(model.forward(Tensor::ones({1, 3}), rng),
               std::invalid_argument);
}

TEST(GnnModel, SkipConnectChangesOutputWhenDimsMatch) {
  Rng rng(7);
  PositionGene c = gene(OpType::Combine);
  c.fn.combine_dim_idx = 2;
  PositionGene skip = gene(OpType::Connect);
  skip.fn.connect = ConnectFunc::SkipConnect;
  PositionGene id = gene(OpType::Connect);
  id.fn.connect = ConnectFunc::Identity;

  // Checkpoint at the combine output (identity), another combine to the
  // same width, then skip-add. With identity instead of skip the result
  // must differ.
  PositionGene c2 = c;
  Arch with_skip;
  with_skip.genes = {c, id, c2, skip};
  Arch with_id;
  with_id.genes = {c, id, c2, id};

  Rng m1(42), m2(42);  // identical init for both models
  GnnModel a(with_skip, tiny_workload(), m1);
  GnnModel b(with_id, tiny_workload(), m2);
  a.set_training(false);
  b.set_training(false);
  Tensor cloud = random_cloud(32, 8);
  Rng fwd1(1), fwd2(1);
  Tensor ya = a.forward(cloud, fwd1);
  Tensor yb = b.forward(cloud, fwd2);
  bool differs = false;
  for (std::int64_t i = 0; i < ya.numel(); ++i)
    if (std::fabs(ya.data()[i] - yb.data()[i]) > 1e-6f) differs = true;
  EXPECT_TRUE(differs);
}

TEST(GnnModel, SkipConnectDegradestoIdentityOnDimMismatch) {
  Rng rng(9);
  PositionGene c32 = gene(OpType::Combine);
  c32.fn.combine_dim_idx = 2;  // 32
  PositionGene c64 = gene(OpType::Combine);
  c64.fn.combine_dim_idx = 3;  // 64
  PositionGene skip = gene(OpType::Connect);
  skip.fn.connect = ConnectFunc::SkipConnect;
  PositionGene id = gene(OpType::Connect);
  id.fn.connect = ConnectFunc::Identity;

  // checkpoint is 32-wide, current is 64-wide: skip must be a no-op.
  Arch arch_skip;
  arch_skip.genes = {c32, id, c64, skip};
  Arch arch_id;
  arch_id.genes = {c32, id, c64, id};

  Rng m1(11), m2(11);
  GnnModel a(arch_skip, tiny_workload(), m1);
  GnnModel b(arch_id, tiny_workload(), m2);
  a.set_training(false);
  b.set_training(false);
  Tensor cloud = random_cloud(32, 10);
  Rng fwd1(1), fwd2(1);
  Tensor ya = a.forward(cloud, fwd1);
  Tensor yb = b.forward(cloud, fwd2);
  for (std::int64_t i = 0; i < ya.numel(); ++i)
    EXPECT_FLOAT_EQ(ya.data()[i], yb.data()[i]);
}

TEST(GnnModel, DeterministicInEvalModeWithKnnOnly) {
  Rng rng(12);
  Arch a;
  PositionGene s = gene(OpType::Sample);
  s.fn.sample = SampleFunc::Knn;
  PositionGene agg = gene(OpType::Aggregate);
  a.genes = {s, agg};
  GnnModel model(a, tiny_workload(), rng);
  model.set_training(false);
  Tensor cloud = random_cloud(32, 13);
  Rng f1(1), f2(2);  // different rngs must not matter for KNN-only archs
  Tensor y1 = model.forward(cloud, f1);
  Tensor y2 = model.forward(cloud, f2);
  for (std::int64_t i = 0; i < y1.numel(); ++i)
    EXPECT_FLOAT_EQ(y1.data()[i], y2.data()[i]);
}

TEST(GnnModel, GradientsReachAllCombineLayers) {
  Rng rng(14);
  PositionGene c = gene(OpType::Combine);
  c.fn.combine_dim_idx = 1;
  Arch a;
  a.genes = {c, gene(OpType::Aggregate), c};
  GnnModel model(a, tiny_workload(), rng);
  Tensor logits = model.forward(random_cloud(32, 15), rng);
  const std::int64_t label[1] = {3};
  cross_entropy(logits, label).backward();
  std::size_t with_grad = 0;
  for (auto& p : model.parameters())
    if (p.has_grad()) ++with_grad;
  EXPECT_GT(with_grad, 4u);
}

TEST(GnnModel, TrainingImprovesOverChance) {
  // A small DGCNN-like arch on a tiny 3-class problem should beat chance
  // comfortably after a few epochs.
  Rng rng(16);
  PositionGene s = gene(OpType::Sample);
  PositionGene agg = gene(OpType::Aggregate);
  agg.fn.msg = gnn::MessageType::TargetRel;
  agg.fn.aggr = AggrType::Max;
  PositionGene c = gene(OpType::Combine);
  c.fn.combine_dim_idx = 2;  // 32
  Arch a;
  a.genes = {s, agg, c, agg, c};

  Workload w = tiny_workload();
  pointcloud::Dataset data(12, w.num_points, 99);
  GnnModel model(a, w, rng);
  TrainConfig cfg;
  cfg.epochs = 25;
  cfg.batch_size = 8;
  cfg.lr = 2e-3f;
  EvalResult r = train_model(model, data, cfg, rng);
  // Robust learning signals on a tiny dataset: the model must fit its
  // training split well and stay above chance (0.10) on the test split.
  EvalResult train_fit =
      evaluate_model(model, data.train(), data.num_classes(), rng);
  EXPECT_GT(train_fit.overall_acc, 0.6);
  EXPECT_GE(r.overall_acc, 0.15);  // clearly above 10% chance
}

TEST(EvaluateModel, MetricsInRange) {
  Rng rng(17);
  Arch a;
  a.genes = {gene(OpType::Aggregate)};
  Workload w = tiny_workload();
  GnnModel model(a, w, rng);
  pointcloud::Dataset data(3, w.num_points, 5);
  EvalResult r = evaluate_model(model, data.test(), w.num_classes, rng);
  EXPECT_GE(r.overall_acc, 0.0);
  EXPECT_LE(r.overall_acc, 1.0);
  EXPECT_GE(r.balanced_acc, 0.0);
  EXPECT_LE(r.balanced_acc, 1.0);
  EXPECT_GT(r.mean_loss, 0.0);
}

}  // namespace
}  // namespace hg::hgnas
