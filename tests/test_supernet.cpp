// Weight-sharing supernet: path forward, SPOS training, evaluation,
// re-initialisation.
#include <gtest/gtest.h>

#include <cmath>

#include "hgnas/supernet.hpp"

namespace hg::hgnas {
namespace {

SpaceConfig small_space() {
  SpaceConfig s;
  s.num_positions = 6;
  return s;
}

SupernetConfig small_config() {
  SupernetConfig c;
  c.hidden = 16;
  c.k = 6;
  c.num_classes = 10;
  c.head_hidden = 32;
  return c;
}

TEST(SuperNet, ForwardAnyRandomPath) {
  Rng rng(1);
  SuperNet net(small_space(), small_config(), rng);
  pointcloud::Dataset data(2, 32, 7);
  Tensor pts = pointcloud::Dataset::to_tensor(data.train()[0]);
  for (int i = 0; i < 20; ++i) {
    Arch a = random_arch(small_space(), rng);
    Tensor logits = net.forward(a, pts, rng);
    EXPECT_EQ(logits.shape(), (Shape{1, 10}));
    for (float v : logits.data()) EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(SuperNet, PositionCountMismatchThrows) {
  Rng rng(2);
  SuperNet net(small_space(), small_config(), rng);
  SpaceConfig other;
  other.num_positions = 12;
  Arch a = random_arch(other, rng);
  EXPECT_THROW(net.forward(a, Tensor::ones({8, 3}), rng),
               std::invalid_argument);
}

TEST(SuperNet, SharedWeightsAcrossPaths) {
  // Two paths that differ only in one position must still share the other
  // positions' banks: parameter count is path-independent.
  Rng rng(3);
  SuperNet net(small_space(), small_config(), rng);
  const auto params = net.parameters();
  // positions * (6 combine-dim pairs + 7 aggregate aligns) + proj + head.
  const std::size_t expected =
      6 * (6 * 2 + 7) * 2 /*w+b*/ + 2 /*proj*/ + 4 /*heads*/;
  EXPECT_EQ(params.size(), expected);
}

TEST(SuperNet, TrainEpochReturnsFiniteLossAndLearns) {
  Rng rng(4);
  SpaceConfig space = small_space();
  SuperNet net(space, small_config(), rng);
  pointcloud::Dataset data(6, 32, 11);
  Adam opt(net.parameters(), 2e-3f);
  auto sampler = [&space](Rng& r) { return random_arch(space, r); };
  const double first = net.train_epoch(data.train(), sampler, opt, 8, rng);
  double last = first;
  for (int e = 0; e < 4; ++e)
    last = net.train_epoch(data.train(), sampler, opt, 8, rng);
  EXPECT_TRUE(std::isfinite(first));
  EXPECT_LT(last, first);  // SPOS training reduces the shared-weight loss
}

TEST(SuperNet, EvaluateReturnsAccuracyInRange) {
  Rng rng(5);
  SuperNet net(small_space(), small_config(), rng);
  pointcloud::Dataset data(3, 32, 13);
  Arch a = random_arch(small_space(), rng);
  const double acc = net.evaluate(a, data.test(), 10, rng);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

TEST(SuperNet, EvaluateEmptySplitThrows) {
  Rng rng(6);
  SuperNet net(small_space(), small_config(), rng);
  std::vector<pointcloud::Sample> empty;
  Arch a = random_arch(small_space(), rng);
  EXPECT_THROW(net.evaluate(a, empty, 10, rng), std::invalid_argument);
}

TEST(SuperNet, ReinitializeChangesWeightsInPlace) {
  Rng rng(7);
  SuperNet net(small_space(), small_config(), rng);
  auto params = net.parameters();
  std::vector<float> before(params[0].data().begin(),
                            params[0].data().end());
  Rng rng2(99);
  net.reinitialize(rng2);
  // Same handles still registered, values re-drawn.
  auto after_params = net.parameters();
  EXPECT_EQ(params[0].id(), after_params[0].id());
  bool changed = false;
  for (std::size_t i = 0; i < before.size(); ++i)
    if (before[i] != after_params[0].data()[i]) changed = true;
  EXPECT_TRUE(changed);
}

TEST(SuperNet, FunctionChoiceAffectsOutput) {
  // Max vs mean aggregation along the same path must differ.
  Rng rng(8);
  SuperNet net(small_space(), small_config(), rng);
  pointcloud::Dataset data(2, 32, 17);
  Tensor pts = pointcloud::Dataset::to_tensor(data.train()[0]);

  Arch a;
  PositionGene agg;
  agg.op = OpType::Aggregate;
  agg.fn.aggr = AggrType::Max;
  a.genes.assign(6, PositionGene{});
  a.genes[1] = agg;
  Arch b = a;
  b.genes[1].fn.aggr = AggrType::Mean;

  NoGradGuard ng;
  net.set_training(false);
  Rng f1(1), f2(1);
  Tensor ya = net.forward(a, pts, f1);
  Tensor yb = net.forward(b, pts, f2);
  bool differs = false;
  for (std::int64_t i = 0; i < ya.numel(); ++i)
    if (std::fabs(ya.data()[i] - yb.data()[i]) > 1e-7f) differs = true;
  EXPECT_TRUE(differs);
}

TEST(SuperNet, RejectsBadConfig) {
  Rng rng(9);
  SpaceConfig bad;
  bad.num_positions = 0;
  EXPECT_THROW(SuperNet(bad, small_config(), rng), std::invalid_argument);
  SupernetConfig bad_cfg = small_config();
  bad_cfg.hidden = 0;
  EXPECT_THROW(SuperNet(small_space(), bad_cfg, rng), std::invalid_argument);
}

}  // namespace
}  // namespace hg::hgnas
