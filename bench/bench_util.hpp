// bench_util.hpp — shared configuration for the experiment-reproduction
// benches. Every bench prints the paper's rows/series at two scales:
//  * cost-model numbers are computed at PAPER scale (1024 points, k = 20,
//    40 classes) so latencies/memory line up with Table II / Fig. 1;
//  * anything requiring actual training (accuracy, search, predictor fit)
//    runs at CPU scale (32-64 points, 10 synthetic classes) — see
//    EXPERIMENTS.md for the mapping.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "api/config.hpp"
#include "core/parallel.hpp"
#include "hgnas/search.hpp"
#include "hw/device.hpp"
#include "pointcloud/pointcloud.hpp"

// Git revision baked in by bench/CMakeLists.txt at configure time, so every
// BENCH_*.json row is attributable to a commit.
#ifndef HG_GIT_REV
#define HG_GIT_REV "unknown"
#endif

namespace hg::bench {

/// Wall-clock stopwatch for bench measurements.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  void reset() { start_ = std::chrono::steady_clock::now(); }
  double ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Machine-readable bench output: collects (name, wall_ms, problem, value)
/// records and writes BENCH_<bench>.json into the working directory on
/// destruction (or an explicit write()). Each record also captures the pool
/// width at the time of the measurement and the file carries the git rev,
/// giving the repo a perf trajectory that CI can archive per commit.
class JsonReporter {
 public:
  explicit JsonReporter(std::string bench) : bench_(std::move(bench)) {}
  ~JsonReporter() { write(); }
  JsonReporter(const JsonReporter&) = delete;
  JsonReporter& operator=(const JsonReporter&) = delete;

  /// `threads` < 0 records the current pool width; pass it explicitly when
  /// the measurement ran under a different width than the caller's.
  void add(const std::string& name, double wall_ms,
           const std::string& problem, double value = 0.0,
           const std::string& unit = "", std::int64_t threads = -1) {
    records_.push_back({name, problem, unit, wall_ms, value,
                        threads < 0 ? core::num_threads() : threads});
  }

  std::string path() const { return "BENCH_" + bench_ + ".json"; }

  void write() {
    if (written_ || records_.empty()) return;
    written_ = true;
    std::FILE* f = std::fopen(path().c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "bench: cannot write %s\n", path().c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"git_rev\": \"%s\",\n",
                 escape(bench_).c_str(), HG_GIT_REV);
    std::fprintf(f, "  \"records\": [\n");
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"wall_ms\": %.6f, "
                   "\"threads\": %lld, \"problem\": \"%s\", "
                   "\"value\": %.6f, \"unit\": \"%s\"}%s\n",
                   escape(r.name).c_str(), r.wall_ms,
                   static_cast<long long>(r.threads),
                   escape(r.problem).c_str(), r.value, escape(r.unit).c_str(),
                   i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu records)\n", path().c_str(), records_.size());
  }

 private:
  struct Record {
    std::string name, problem, unit;
    double wall_ms = 0.0;
    double value = 0.0;
    std::int64_t threads = 1;
  };

  static std::string escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string bench_;
  std::vector<Record> records_;
  bool written_ = false;
};

/// Facade-level counterpart of default_search_config: the same paper-scale
/// deployment workload and CPU-scale search knobs, expressed as one
/// declarative EngineConfig for the benches that drive hg::api::Engine.
inline api::EngineConfig default_engine_config(const std::string& device) {
  api::EngineConfig cfg;
  cfg.device = device;
  cfg.num_points = 1024;  // paper workload
  cfg.k = 20;
  cfg.num_classes = 40;
  cfg.num_positions = 12;
  cfg.samples_per_class = 8;
  cfg.train_points = 32;
  cfg.train_k = 6;
  cfg.supernet_hidden = 24;
  cfg.supernet_head_hidden = 48;
  cfg.population = 16;
  cfg.parents = 8;
  cfg.iterations = 12;
  cfg.eval_val_samples = 40;
  cfg.function_paths_per_eval = 3;
  cfg.stage1_epochs = 2;
  cfg.stage2_epochs = 4;
  // Simulated wall-clock constants expressed at paper scale (ModelNet40 on
  // a V100), as in default_search_config below.
  cfg.sim_train_s_per_sample = 0.5;
  cfg.sim_eval_s_per_sample = 0.05;
  return cfg;
}

/// Paper-scale workload used for all cost-model evaluations.
inline hgnas::Workload paper_workload() {
  hgnas::Workload w;
  w.num_points = 1024;
  w.k = 20;
  w.num_classes = 40;
  return w;
}

/// CPU-scale training workload (drives dataset + materialised models).
inline hgnas::Workload train_workload() {
  hgnas::Workload w;
  w.num_points = 32;
  w.k = 6;
  w.num_classes = 10;
  return w;
}

inline hgnas::SpaceConfig default_space() {
  hgnas::SpaceConfig s;
  s.num_positions = 12;  // paper setting
  return s;
}

inline hgnas::SupernetConfig default_supernet() {
  hgnas::SupernetConfig c;
  c.hidden = 24;
  c.k = 6;
  c.num_classes = 10;
  c.head_hidden = 48;
  return c;
}

/// Search configuration scaled for a single CPU core; latencies are always
/// evaluated at paper scale through cfg.workload.
inline hgnas::SearchConfig default_search_config(const hw::Device& device) {
  hgnas::SearchConfig cfg;
  cfg.space = default_space();
  cfg.workload = paper_workload();
  cfg.population = 16;
  cfg.parents = 8;
  cfg.iterations = 12;
  cfg.eval_val_samples = 40;
  cfg.function_paths_per_eval = 3;
  cfg.stage1_epochs = 2;
  cfg.stage2_epochs = 4;
  cfg.latency_scale_ms =
      device.latency_ms(hw::dgcnn_reference_trace(1024));
  // Simulated wall-clock constants expressed at paper scale (ModelNet40 on
  // a V100): one supernet training pass over our 80-cloud CPU-scale split
  // stands in for an epoch over ~9.8k clouds.
  cfg.sim_train_s_per_sample = 0.5;
  cfg.sim_eval_s_per_sample = 0.05;
  return cfg;
}

inline void print_header(const std::string& title) {
  std::printf("\n===== %s =====\n", title.c_str());
}

inline const char* short_device_name(hw::DeviceKind kind) {
  switch (kind) {
    case hw::DeviceKind::Rtx3080: return "RTX3080";
    case hw::DeviceKind::IntelI7_8700K: return "i7-8700K";
    case hw::DeviceKind::JetsonTx2: return "JetsonTX2";
    case hw::DeviceKind::RaspberryPi3B: return "RaspberryPi";
  }
  return "?";
}

}  // namespace hg::bench
