// bench_util.hpp — shared configuration for the experiment-reproduction
// benches. Every bench prints the paper's rows/series at two scales:
//  * cost-model numbers are computed at PAPER scale (1024 points, k = 20,
//    40 classes) so latencies/memory line up with Table II / Fig. 1;
//  * anything requiring actual training (accuracy, search, predictor fit)
//    runs at CPU scale (32-64 points, 10 synthetic classes) — see
//    EXPERIMENTS.md for the mapping.
//
// The figure benches reproduce everything through hg::api::Engine — no
// module header (hgnas/, hw/, predictor/, baselines/) is included here or
// in any figure bench; devices and baselines are iterated by registry name.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "api/engine.hpp"
#include "core/parallel.hpp"
#include "json_common.hpp"

namespace hg::bench {

/// Wall-clock stopwatch for bench measurements.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  void reset() { start_ = std::chrono::steady_clock::now(); }
  double ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Machine-readable bench output: collects (name, wall_ms, problem, value)
/// records and writes BENCH_<bench>.json into the working directory on
/// destruction (or an explicit write()). Each record also captures the pool
/// width at the time of the measurement and the file carries the git rev,
/// giving the repo a perf trajectory that CI can archive per commit.
class JsonReporter {
 public:
  explicit JsonReporter(std::string bench) : bench_(std::move(bench)) {}
  ~JsonReporter() { write(); }
  JsonReporter(const JsonReporter&) = delete;
  JsonReporter& operator=(const JsonReporter&) = delete;

  /// `threads` < 0 records the current pool width; pass it explicitly when
  /// the measurement ran under a different width than the caller's.
  void add(const std::string& name, double wall_ms,
           const std::string& problem, double value = 0.0,
           const std::string& unit = "", std::int64_t threads = -1) {
    records_.push_back({name, problem, unit, wall_ms, value,
                        threads < 0 ? core::num_threads() : threads});
  }

  std::string path() const { return "BENCH_" + bench_ + ".json"; }

  void write() {
    if (written_ || records_.empty()) return;
    written_ = true;
    std::FILE* f = std::fopen(path().c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "bench: cannot write %s\n", path().c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"git_rev\": \"%s\",\n",
                 json_escape(bench_).c_str(), git_rev());
    std::fprintf(f, "  \"records\": [\n");
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"wall_ms\": %.6f, "
                   "\"threads\": %lld, \"problem\": \"%s\", "
                   "\"value\": %.6f, \"unit\": \"%s\"}%s\n",
                   json_escape(r.name).c_str(), r.wall_ms,
                   static_cast<long long>(r.threads),
                   json_escape(r.problem).c_str(), r.value,
                   json_escape(r.unit).c_str(),
                   i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu records)\n", path().c_str(), records_.size());
  }

 private:
  struct Record {
    std::string name, problem, unit;
    double wall_ms = 0.0;
    double value = 0.0;
    std::int64_t threads = 1;
  };

  std::string bench_;
  std::vector<Record> records_;
  bool written_ = false;
};

/// Facade-level counterpart of default_search_config: the same paper-scale
/// deployment workload and CPU-scale search knobs, expressed as one
/// declarative EngineConfig for the benches that drive hg::api::Engine.
inline api::EngineConfig default_engine_config(const std::string& device) {
  api::EngineConfig cfg;
  cfg.device = device;
  cfg.num_points = 1024;  // paper workload
  cfg.k = 20;
  cfg.num_classes = 40;
  cfg.num_positions = 12;
  cfg.samples_per_class = 8;
  cfg.train_points = 32;
  cfg.train_k = 6;
  cfg.supernet_hidden = 24;
  cfg.supernet_head_hidden = 48;
  cfg.population = 16;
  cfg.parents = 8;
  cfg.iterations = 12;
  cfg.eval_val_samples = 40;
  cfg.function_paths_per_eval = 3;
  cfg.stage1_epochs = 2;
  cfg.stage2_epochs = 4;
  // Simulated wall-clock constants expressed at paper scale (ModelNet40 on
  // a V100), as in default_search_config below.
  cfg.sim_train_s_per_sample = 0.5;
  cfg.sim_eval_s_per_sample = 0.05;
  return cfg;
}

/// Paper-scale workload used for all cost-model evaluations.
inline api::Workload paper_workload() {
  api::Workload w;
  w.num_points = 1024;
  w.k = 20;
  w.num_classes = 40;
  return w;
}

inline void print_header(const std::string& title) {
  std::printf("\n===== %s =====\n", title.c_str());
}

/// Compact display label for a canonical registry device name.
inline const char* short_device_name(const std::string& registry_name) {
  if (registry_name == "rtx3080") return "RTX3080";
  if (registry_name == "i7-8700k") return "i7-8700K";
  if (registry_name == "jetson-tx2") return "JetsonTX2";
  if (registry_name == "raspberry-pi-3b") return "RaspberryPi";
  return registry_name.c_str();
}

/// Registry name of the zoo's Fig. 10 Device_Fast design for a device.
inline const char* fast_baseline_for(const std::string& registry_name) {
  if (registry_name == "rtx3080") return "rtx-fast";
  if (registry_name == "i7-8700k") return "i7-fast";
  if (registry_name == "jetson-tx2") return "tx2-fast";
  if (registry_name == "raspberry-pi-3b") return "pi-fast";
  return "dgcnn";
}

/// Exit-on-error unwrap for bench code: benches have no recovery path, so
/// a Status failure prints and aborts the run.
template <typename T>
T unwrap(api::Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", what,
                 result.status().to_string().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace hg::bench
