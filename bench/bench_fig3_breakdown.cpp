// Fig. 3 reproduction: DGCNN execution-time breakdown (Sample / Aggregate /
// Combine / Others) across the four edge platforms, plus the full per-op
// profiler report for one device — all through Engine::profile_baseline.
#include <cstdio>
#include <string>

#include "bench_util.hpp"

int main() {
  hg::bench::JsonReporter bench_json("fig3_breakdown");
  hg::bench::Timer bench_timer;
  using namespace hg;

  bench::print_header("Fig. 3: DGCNN execution-time breakdown");
  std::printf("%-12s %10s %12s %10s %10s %12s\n", "device", "Sample",
              "Aggregate", "Combine", "Others", "total_ms");
  for (const std::string& name : api::Registry::global().device_names()) {
    api::Engine engine = bench::unwrap(
        api::Engine::create(bench::default_engine_config(name)),
        "create(device)");
    const api::ProfileReport r =
        bench::unwrap(engine.profile_baseline("dgcnn"), "profile dgcnn");
    std::printf("%-12s %9.2f%% %11.2f%% %9.2f%% %9.2f%% %12.1f\n",
                bench::short_device_name(name),
                100.0 * r.category_fraction[0], 100.0 * r.category_fraction[1],
                100.0 * r.category_fraction[2], 100.0 * r.category_fraction[3],
                r.latency_ms);
  }
  std::printf(
      "(paper: RTX/TX2 sample-bound, i7 aggregate-bound, Pi compute-bound "
      "on all categories)\n");

  bench::print_header("Per-op profile (Raspberry Pi 3B+)");
  api::Engine pi = bench::unwrap(
      api::Engine::create(bench::default_engine_config("raspberry-pi-3b")),
      "create(pi)");
  const api::ProfileReport r =
      bench::unwrap(pi.profile_baseline("dgcnn"), "profile dgcnn");
  std::printf("%s", r.per_op_table.c_str());
  bench_json.add("total", bench_timer.ms(), "whole bench");
  return 0;
}
