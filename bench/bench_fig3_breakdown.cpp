// Fig. 3 reproduction: DGCNN execution-time breakdown (Sample / Aggregate /
// Combine / Others) across the four edge platforms, plus the full per-op
// profiler report for one device.
#include <cstdio>

#include "bench_util.hpp"
#include "hw/profiler.hpp"

int main() {
  hg::bench::JsonReporter bench_json("fig3_breakdown");
  hg::bench::Timer bench_timer;
  using namespace hg;
  const hw::Trace dgcnn = hw::dgcnn_reference_trace(1024);

  bench::print_header("Fig. 3: DGCNN execution-time breakdown");
  std::printf("%-12s %10s %12s %10s %10s %12s\n", "device", "Sample",
              "Aggregate", "Combine", "Others", "total_ms");
  for (int d = 0; d < hw::kNumDevices; ++d) {
    const auto kind = static_cast<hw::DeviceKind>(d);
    hw::Device dev = hw::make_device(kind);
    const hw::Breakdown b = dev.breakdown(dgcnn);
    std::printf("%-12s %9.2f%% %11.2f%% %9.2f%% %9.2f%% %12.1f\n",
                bench::short_device_name(kind), 100.0 * b.fraction[0],
                100.0 * b.fraction[1], 100.0 * b.fraction[2],
                100.0 * b.fraction[3], b.total_ms);
  }
  std::printf(
      "(paper: RTX/TX2 sample-bound, i7 aggregate-bound, Pi compute-bound "
      "on all categories)\n");

  bench::print_header("Per-op profile (Raspberry Pi 3B+)");
  hw::Device pi = hw::make_device(hw::DeviceKind::RaspberryPi3B);
  std::printf("%s", hw::profile_report(pi, dgcnn).c_str());
  bench_json.add("total", bench_timer.ms(), "whole bench");
  return 0;
}
