// Fig. 10 reproduction: visualisation of the GNN architectures HGNAS
// designs for each device (Fast mode), with merged adjacent samples —
// plus the per-device op-census that supports the paper's insight
// (fewer valid KNNs on GPU-like devices, fewer aggregates on the CPU,
// simplified ops on the Pi).
#include <cstdio>
#include <map>

#include "bench_util.hpp"

int main() {
  using namespace hg;
  pointcloud::Dataset data(8, 32, 21);

  for (int d = 0; d < hw::kNumDevices; ++d) {
    const auto kind = static_cast<hw::DeviceKind>(d);
    hw::Device dev = hw::make_device(kind);
    Rng rng(40 + static_cast<std::uint64_t>(d));
    hgnas::SuperNet supernet(bench::default_space(),
                             bench::default_supernet(), rng);
    hgnas::SearchConfig cfg = bench::default_search_config(dev);
    cfg.alpha = 1.0;
    cfg.beta = 1.0;  // Fast mode
    cfg.latency_constraint_ms =
        dev.latency_ms(hw::dgcnn_reference_trace(1024));
    hgnas::HgnasSearch search(
        supernet, data, cfg,
        hgnas::make_oracle_evaluator(dev, bench::paper_workload()));
    hgnas::SearchResult r = search.run_multistage(rng);

    bench::print_header(std::string("Fig. 10: ") +
                        bench::short_device_name(kind) + "_Fast");
    std::printf("%s", visualize(r.best_arch, bench::paper_workload()).c_str());
    std::printf("latency %.1f ms | objective %.4f | params %.2f MB\n",
                r.best_latency_ms, r.best_objective,
                arch_param_mb(r.best_arch, bench::paper_workload()));

    // Effective-op census for the insight table.
    const hw::Trace t = lower_to_trace(r.best_arch, bench::paper_workload());
    std::map<std::string, int> census;
    for (const auto& op : t.ops) ++census[hw::category_name(op.category)];
    std::printf("effective ops:");
    for (const auto& [name, count] : census)
      std::printf("  %s=%d", name.c_str(), count);
    std::printf("\n");
  }
  std::printf("\n(paper: searched models mirror device characteristics — "
              "few KNNs on RTX/TX2, few aggregates on i7, everything "
              "simplified on the Pi)\n");
  return 0;
}
