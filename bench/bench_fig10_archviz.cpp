// Fig. 10 reproduction: visualisation of the GNN architectures HGNAS
// designs for each device (Fast mode), driven through the hg::Engine
// facade — one declarative config per device, search, then the facade's
// deployment profile (latency, params, Fig. 3 category breakdown) that
// supports the paper's insight (fewer valid KNNs on GPU-like devices,
// fewer aggregates on the CPU, simplified ops on the Pi).
#include <cstdio>
#include <utility>

#include "bench_util.hpp"
#include "api/engine.hpp"

int main() {
  hg::bench::JsonReporter bench_json("fig10_archviz");
  hg::bench::Timer bench_timer;
  using namespace hg;

  std::uint64_t index = 0;
  for (const std::string& device : api::Registry::global().device_names()) {
    api::EngineConfig cfg = bench::default_engine_config(device);
    cfg.alpha = 1.0;
    cfg.beta = 1.0;  // Fast mode
    cfg.constrain_to_reference = true;
    cfg.dataset_seed = 21;
    cfg.seed = 40 + index++;  // independent random streams per device
    api::Result<api::Engine> created = api::Engine::create(cfg);
    if (!created.ok()) {
      std::fprintf(stderr, "%s: %s\n", device.c_str(),
                   created.status().to_string().c_str());
      return 1;
    }
    api::Engine engine = std::move(created).value();

    api::Result<api::SearchReport> searched = engine.search();
    if (!searched.ok()) {
      std::fprintf(stderr, "%s: %s\n", device.c_str(),
                   searched.status().to_string().c_str());
      return 1;
    }
    const api::SearchResult& r = searched.value().result;

    bench::print_header(std::string("Fig. 10: ") +
                        engine.device().name() + " Fast");
    std::printf("%s", searched.value().visualization.c_str());

    const api::Result<api::ProfileReport> prof = engine.profile(r.best_arch);
    if (prof.ok()) {
      std::printf("latency %.1f ms | objective %.4f | params %.2f MB\n",
                  prof.value().latency_ms, r.best_objective,
                  prof.value().param_mb);
      std::printf("category breakdown: %s\n", prof.value().breakdown.c_str());
    }
  }
  std::printf("\n(paper: searched models mirror device characteristics — "
              "few KNNs on RTX/TX2, few aggregates on i7, everything "
              "simplified on the Pi)\n");
  bench_json.add("total", bench_timer.ms(), "whole bench");
  return 0;
}
