// gbench_json.hpp — bridge from Google Benchmark's reporter interface to
// the repo's BENCH_*.json trajectory (bench_util.hpp's JsonReporter).
//
// The figure benches write their wall-clock records directly; the
// Google-Benchmark micro-benches report through this adapter instead, so
// the whole suite feeds the same machine-readable per-commit perf history
// (wall_ms, threads, problem, git rev) that CI archives and thresholds.
// JSON escaping and the git revision come from json_common.hpp (via
// bench_util.hpp), shared with the figure-bench emitter so the two cannot
// drift.
//
// Usage (replaces BENCHMARK_MAIN()):
//   int main(int argc, char** argv) {
//     ::benchmark::Initialize(&argc, argv);
//     hg::bench::JsonReporter json("knn");
//     hg::bench::GBenchJsonAdapter reporter(json);
//     ::benchmark::RunSpecifiedBenchmarks(&reporter);
//     return 0;
//   }
#pragma once

#include <benchmark/benchmark.h>

#include <vector>

#include "bench_util.hpp"

namespace hg::bench {

/// Console output as usual, plus one JsonReporter record per benchmark run:
/// name = the full benchmark name ("BM_KnnBrute/512"), wall_ms = real time
/// per iteration, value = iteration count.
class GBenchJsonAdapter final : public ::benchmark::ConsoleReporter {
 public:
  explicit GBenchJsonAdapter(JsonReporter& json) : json_(json) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    ::benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration ||
          run.report_big_o || run.report_rms)
        continue;
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      json_.add(run.benchmark_name(),
                run.real_accumulated_time / iters * 1e3,
                /*problem=*/"per-iteration",
                /*value=*/static_cast<double>(run.iterations),
                /*unit=*/"iters");
    }
  }

 private:
  JsonReporter& json_;
};

}  // namespace hg::bench
