// Table II reproduction: per-device comparison of HGNAS designs against
// DGCNN and the manual optimisations [6][7] — model size, overall accuracy
// (OA), balanced accuracy (mAcc), inference latency and peak memory.
//
// Latency / memory / size: paper-scale cost models through
// Engine::profile_baseline / profile. OA / mAcc: CPU-scale training through
// Engine::train_baseline / train on the 10-class synthetic dataset —
// baseline accuracy is device-independent and trains exactly once.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"

namespace {

using namespace hg;

struct Row {
  std::string name;
  double size_mb;
  double oa;
  double macc;
  double latency_ms;
  double mem_mb;
};

void print_row(const Row& r, double dgcnn_ms, double dgcnn_mb) {
  std::printf("%-14s %8.2f %7.1f %7.1f %11.1f (%4.1fx) %9.1f (%5.1f%%)\n",
              r.name.c_str(), r.size_mb, 100.0 * r.oa, 100.0 * r.macc,
              r.latency_ms, dgcnn_ms / r.latency_ms, r.mem_mb,
              100.0 * (1.0 - r.mem_mb / dgcnn_mb));
}

}  // namespace

int main() {
  hg::bench::JsonReporter bench_json("tab2_comparison");
  hg::bench::Timer bench_timer;

  // --- Device-independent accuracy training (shared across devices) -------
  api::EngineConfig acc_cfg = bench::default_engine_config("rtx3080");
  acc_cfg.samples_per_class = 16;
  acc_cfg.dataset_seed = 2718;
  acc_cfg.train_epochs = 15;
  acc_cfg.train_lr = 2e-3f;
  acc_cfg.seed = 10;
  api::Engine acc_engine =
      bench::unwrap(api::Engine::create(acc_cfg), "create(accuracy engine)");
  const api::TrainReport dgcnn_eval =
      bench::unwrap(acc_engine.train_baseline("dgcnn"), "train dgcnn");
  const api::TrainReport li_eval =
      bench::unwrap(acc_engine.train_baseline("li"), "train li");
  const api::TrainReport tailor_eval =
      bench::unwrap(acc_engine.train_baseline("tailor"), "train tailor");

  const std::vector<std::string> devices =
      api::Registry::global().device_names();
  for (std::size_t d = 0; d < devices.size(); ++d) {
    const std::string& dev_name = devices[d];

    std::vector<Row> rows;
    std::string full_name;
    double dgcnn_ms = 0.0, dgcnn_mb = 0.0;

    // --- HGNAS Device-Acc and Device-Fast ---------------------------------
    for (int mode = 0; mode < 2; ++mode) {
      api::EngineConfig cfg = bench::default_engine_config(dev_name);
      cfg.constrain_to_reference = true;
      cfg.alpha = 1.0;
      cfg.beta = mode == 0 ? 0.1 : 1.0;
      cfg.samples_per_class = 12;
      cfg.dataset_seed = 1234;
      cfg.seed = 333 + static_cast<std::uint64_t>(d * 2 + mode);
      api::Engine engine =
          bench::unwrap(api::Engine::create(cfg), "create(search engine)");

      if (mode == 0) {
        full_name = engine.device().name();
        const api::ProfileReport dgcnn = bench::unwrap(
            engine.profile_baseline("dgcnn"), "profile dgcnn");
        dgcnn_ms = dgcnn.latency_ms;
        dgcnn_mb = dgcnn.peak_memory_mb;
        rows.push_back({"DGCNN", dgcnn.param_mb, dgcnn_eval.overall_acc,
                        dgcnn_eval.balanced_acc, dgcnn_ms, dgcnn_mb});
        const api::ProfileReport li =
            bench::unwrap(engine.profile_baseline("li"), "profile li");
        rows.push_back({"[6] Li", li.param_mb, li_eval.overall_acc,
                        li_eval.balanced_acc, li.latency_ms,
                        li.peak_memory_mb});
        const api::ProfileReport tailor = bench::unwrap(
            engine.profile_baseline("tailor"), "profile tailor");
        rows.push_back({"[7] Tailor", tailor.param_mb,
                        tailor_eval.overall_acc, tailor_eval.balanced_acc,
                        tailor.latency_ms, tailor.peak_memory_mb});
      }

      const api::SearchReport report =
          bench::unwrap(engine.search(), "search");
      const api::Arch& best = report.result.best_arch;
      const api::TrainReport eval =
          bench::unwrap(acc_engine.train(best), "train winner");
      const api::ProfileReport prof =
          bench::unwrap(engine.profile(best), "profile winner");
      rows.push_back({std::string(bench::short_device_name(dev_name)) +
                          (mode == 0 ? "-Acc" : "-Fast"),
                      prof.param_mb, eval.overall_acc, eval.balanced_acc,
                      prof.latency_ms, prof.peak_memory_mb});
    }

    bench::print_header(std::string("Table II: ") + full_name);
    std::printf("%-14s %8s %7s %7s %18s %18s\n", "network", "size_MB",
                "OA_%", "mAcc_%", "latency_ms (spd)", "mem_MB (red)");
    for (const auto& r : rows) print_row(r, dgcnn_ms, dgcnn_mb);
  }
  std::printf("\n(paper: HGNAS-Fast reaches up to 10.6x / 10.2x / 7.5x / "
              "7.4x speedup and up to 88%% memory reduction vs DGCNN with "
              "similar accuracy)\n");
  bench_json.add("total", bench_timer.ms(), "whole bench");
  return 0;
}
