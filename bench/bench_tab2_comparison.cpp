// Table II reproduction: per-device comparison of HGNAS designs against
// DGCNN and the manual optimisations [6][7] — model size, overall accuracy
// (OA), balanced accuracy (mAcc), inference latency and peak memory.
//
// Latency / memory / size: paper-scale cost models (1024 points, 40-class
// head). OA / mAcc: CPU-scale training on the 10-class synthetic dataset.
#include <cstdio>
#include <string>

#include "baselines/baselines.hpp"
#include "bench_util.hpp"
#include "hgnas/model.hpp"

namespace {

using namespace hg;

struct Row {
  std::string name;
  double size_mb;
  double oa;
  double macc;
  double latency_ms;
  double mem_mb;
};

void print_row(const Row& r, double dgcnn_ms, double dgcnn_mb) {
  std::printf("%-14s %8.2f %7.1f %7.1f %11.1f (%4.1fx) %9.1f (%5.1f%%)\n",
              r.name.c_str(), r.size_mb, 100.0 * r.oa, 100.0 * r.macc,
              r.latency_ms, dgcnn_ms / r.latency_ms, r.mem_mb,
              100.0 * (1.0 - r.mem_mb / dgcnn_mb));
}

}  // namespace

int main() {
  hg::bench::JsonReporter bench_json("tab2_comparison");
  hg::bench::Timer bench_timer;
  pointcloud::Dataset data(16, 32, 2718);

  // --- Device-independent accuracy training (shared across devices) -------
  Rng brng(10);
  baselines::Dgcnn dgcnn_model(baselines::DgcnnConfig::scaled(10, 6), brng);
  const auto dgcnn_eval =
      baselines::train_baseline(dgcnn_model, data, 15, 2e-3f, brng);
  baselines::Dgcnn li_model(
      baselines::li_optimized_config(baselines::DgcnnConfig::scaled(10, 6)),
      brng);
  const auto li_eval =
      baselines::train_baseline(li_model, data, 15, 2e-3f, brng);
  baselines::TailorGnn tailor_model(baselines::TailorConfig::scaled(10, 6),
                                    brng);
  const auto tailor_eval =
      baselines::train_baseline(tailor_model, data, 15, 2e-3f, brng);

  const hw::Trace dgcnn_trace =
      baselines::Dgcnn::trace(baselines::DgcnnConfig{}, 1024);
  const hw::Trace li_trace = baselines::Dgcnn::trace(
      baselines::li_optimized_config(baselines::DgcnnConfig{}), 1024);
  const hw::Trace tailor_trace =
      baselines::TailorGnn::trace(baselines::TailorConfig{}, 1024);

  for (int d = 0; d < hw::kNumDevices; ++d) {
    const auto kind = static_cast<hw::DeviceKind>(d);
    hw::Device dev = hw::make_device(kind);
    const double dgcnn_ms = dev.latency_ms(dgcnn_trace);
    const double dgcnn_mb = dev.peak_memory_mb(dgcnn_trace);

    std::vector<Row> rows;
    rows.push_back({"DGCNN", dgcnn_trace.param_mb, dgcnn_eval.overall_acc,
                    dgcnn_eval.balanced_acc, dgcnn_ms, dgcnn_mb});
    rows.push_back({"[6] Li", li_trace.param_mb, li_eval.overall_acc,
                    li_eval.balanced_acc, dev.latency_ms(li_trace),
                    dev.peak_memory_mb(li_trace)});
    rows.push_back({"[7] Tailor", tailor_trace.param_mb,
                    tailor_eval.overall_acc, tailor_eval.balanced_acc,
                    dev.latency_ms(tailor_trace),
                    dev.peak_memory_mb(tailor_trace)});

    // --- HGNAS Device-Acc and Device-Fast ---------------------------------
    for (int mode = 0; mode < 2; ++mode) {
      Rng rng(333 + static_cast<std::uint64_t>(d * 2 + mode));
      hgnas::SuperNet supernet(bench::default_space(),
                               bench::default_supernet(), rng);
      hgnas::SearchConfig cfg = bench::default_search_config(dev);
      cfg.latency_constraint_ms = dgcnn_ms;
      cfg.alpha = 1.0;
      cfg.beta = mode == 0 ? 0.1 : 1.0;
      pointcloud::Dataset search_data(12, 32, 1234);
      hgnas::HgnasSearch search(
          supernet, search_data, cfg,
          hgnas::make_oracle_evaluator(dev, bench::paper_workload()));
      hgnas::SearchResult r = search.run_multistage(rng);

      Rng trng(444 + static_cast<std::uint64_t>(d * 2 + mode));
      hgnas::GnnModel model(r.best_arch, bench::train_workload(), trng);
      hgnas::TrainConfig tcfg;
      tcfg.epochs = 15;
      tcfg.lr = 2e-3f;
      const auto eval = train_model(model, data, tcfg, trng);

      const hw::Trace t = lower_to_trace(r.best_arch,
                                         bench::paper_workload());
      rows.push_back({std::string(bench::short_device_name(kind)) +
                          (mode == 0 ? "-Acc" : "-Fast"),
                      t.param_mb, eval.overall_acc, eval.balanced_acc,
                      dev.latency_ms(t), dev.peak_memory_mb(t)});
    }

    bench::print_header(std::string("Table II: ") + dev.name());
    std::printf("%-14s %8s %7s %7s %18s %18s\n", "network", "size_MB",
                "OA_%", "mAcc_%", "latency_ms (spd)", "mem_MB (red)");
    for (const auto& r : rows) print_row(r, dgcnn_ms, dgcnn_mb);
  }
  std::printf("\n(paper: HGNAS-Fast reaches up to 10.6x / 10.2x / 7.5x / "
              "7.4x speedup and up to 88%% memory reduction vs DGCNN with "
              "similar accuracy)\n");
  bench_json.add("total", bench_timer.ms(), "whole bench");
  return 0;
}
