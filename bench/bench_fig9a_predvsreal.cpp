// Fig. 9(a) reproduction: search progress (objective score vs simulated
// wall-clock) with the GNN predictor in the loop vs real-time on-device
// measurement, on the two platforms that support online measurement
// (Nvidia GPU and Intel CPU, as in the paper).
//
// Both searches ride one shared EvalContext per device: the predictor is
// fitted exactly once (at context creation, cost amortised exactly as the
// paper's offline 30K-sample collection), and the measurement-driven
// engine reuses the same dataset / supernet / device model. Sharing the
// context means the two searches run sequentially on one RNG stream (the
// second starts from the state the first left), so the curves differ by
// sampling noise as well as by evaluator — the run stays fully
// deterministic, and the quantity under study (simulated exploration
// time, dominated by per-query cost) is unaffected.
#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_util.hpp"

namespace {

using namespace hg;

void print_series(const char* label, const api::SearchResult& r) {
  std::printf("%s\n", label);
  std::printf("  %14s %14s\n", "time_min", "objective");
  // Subsample the history to ~10 rows.
  const std::size_t n = r.history.size();
  const std::size_t step = n > 10 ? n / 10 : 1;
  for (std::size_t i = 0; i < n; i += step)
    std::printf("  %14.2f %14.4f\n", r.history[i].sim_time_s / 60.0,
                r.history[i].best_objective);
  std::printf("  final: %.4f after %.1f simulated minutes "
              "(%lld latency queries)\n",
              r.best_objective, r.total_sim_time_s / 60.0,
              static_cast<long long>(r.latency_queries));
}

}  // namespace

int main() {
  hg::bench::JsonReporter bench_json("fig9a_predvsreal");
  hg::bench::Timer bench_timer;

  int d = 0;
  for (const char* dev_name : {"rtx3080", "i7-8700k"}) {
    api::EngineConfig cfg = bench::default_engine_config(dev_name);
    cfg.evaluator = "predictor";
    cfg.predictor_samples = 500;
    cfg.predictor_epochs = 50;
    cfg.iterations = 15;
    cfg.samples_per_class = 8;
    cfg.dataset_seed = 31;
    cfg.seed = 71 + static_cast<std::uint64_t>(600 * d);

    // One context per device: dataset, supernet, device model and the
    // single predictor fit, shared by both engines below.
    auto ctx = bench::unwrap(api::EvalContext::create(cfg), "create context");
    api::Engine with_pred = bench::unwrap(api::Engine::create(cfg, ctx),
                                          "create(predictor engine)");
    bench::print_header(std::string("Fig. 9(a): ") +
                        with_pred.device().name());

    const api::SearchResult pred_result =
        bench::unwrap(with_pred.search(), "predictor search").result;
    print_series("prediction-based search:", pred_result);

    api::EngineConfig meas_cfg = cfg;
    meas_cfg.evaluator = "measured";
    api::Engine with_meas = bench::unwrap(api::Engine::create(meas_cfg, ctx),
                                          "create(measured engine)");
    const api::SearchResult meas_result =
        bench::unwrap(with_meas.search(), "measured search").result;
    print_series("real-time-measurement search:", meas_result);

    std::printf("speed advantage of the predictor: %.1fx less search time "
                "for a comparable final score\n",
                meas_result.total_sim_time_s /
                    std::max(1e-9, pred_result.total_sim_time_s));
    ++d;
  }
  std::printf("\n(paper: both reach similar objective scores; the predictor "
              "cuts exploration time dramatically and is the only option on "
              "TX2 / Raspberry Pi)\n");
  bench_json.add("total", bench_timer.ms(), "whole bench");
  return 0;
}
