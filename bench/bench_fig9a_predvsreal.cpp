// Fig. 9(a) reproduction: search progress (objective score vs simulated
// wall-clock) with the GNN predictor in the loop vs real-time on-device
// measurement, on the two platforms that support online measurement
// (Nvidia GPU and Intel CPU, as in the paper).
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "predictor/predictor.hpp"

namespace {

using namespace hg;

void print_series(const char* label, const hgnas::SearchResult& r) {
  std::printf("%s\n", label);
  std::printf("  %14s %14s\n", "time_min", "objective");
  // Subsample the history to ~10 rows.
  const std::size_t n = r.history.size();
  const std::size_t step = n > 10 ? n / 10 : 1;
  for (std::size_t i = 0; i < n; i += step)
    std::printf("  %14.2f %14.4f\n", r.history[i].sim_time_s / 60.0,
                r.history[i].best_objective);
  std::printf("  final: %.4f after %.1f simulated minutes "
              "(%lld latency queries)\n",
              r.best_objective, r.total_sim_time_s / 60.0,
              static_cast<long long>(r.latency_queries));
}

}  // namespace

int main() {
  hg::bench::JsonReporter bench_json("fig9a_predvsreal");
  hg::bench::Timer bench_timer;
  const hgnas::Workload w = bench::paper_workload();

  for (auto kind : {hw::DeviceKind::Rtx3080, hw::DeviceKind::IntelI7_8700K}) {
    hw::Device dev = hw::make_device(kind);
    bench::print_header(std::string("Fig. 9(a): ") + dev.name());

    pointcloud::Dataset data(8, 32, 31);

    // Train the predictor once (collection cost reported separately, as the
    // paper's 30K-sample collection is likewise offline/amortised).
    Rng prng(17);
    auto labeled = predictor::collect_labeled_archs(
        dev, bench::default_space(), w, 500, 600 + static_cast<int>(kind));
    predictor::PredictorConfig pcfg;
    pcfg.epochs = 50;
    auto pred = std::make_shared<predictor::LatencyPredictor>(pcfg, w, prng);
    pred->fit(labeled, prng);

    auto run = [&](hgnas::LatencyFn fn, std::uint64_t seed) {
      Rng rng(seed);
      hgnas::SuperNet supernet(bench::default_space(),
                               bench::default_supernet(), rng);
      hgnas::SearchConfig cfg = bench::default_search_config(dev);
      cfg.iterations = 15;
      hgnas::HgnasSearch search(supernet, data, cfg, std::move(fn));
      return search.run_multistage(rng);
    };

    const auto with_pred = run(predictor::make_predictor_evaluator(pred), 71);
    print_series("prediction-based search:", with_pred);
    const auto with_meas =
        run(hgnas::make_measurement_evaluator(dev, w, 99), 71);
    print_series("real-time-measurement search:", with_meas);

    std::printf("speed advantage of the predictor: %.1fx less search time "
                "for a comparable final score\n",
                with_meas.total_sim_time_s /
                    std::max(1e-9, with_pred.total_sim_time_s));
  }
  std::printf("\n(paper: both reach similar objective scores; the predictor "
              "cuts exploration time dramatically and is the only option on "
              "TX2 / Raspberry Pi)\n");
  bench_json.add("total", bench_timer.ms(), "whole bench");
  return 0;
}
