// bench_net_roundtrip — what the wire costs, and what batching buys back:
//
//  1. Lone predictions: N sequential predict_latency round-trips through
//     net::Client -> loopback net::Server, vs the same N submissions
//     through the in-process serve::Service (the futures API the server
//     wraps). Reports requests/sec plus p50/p99 per-request round-trip.
//  2. Batched remote predict: the same N archs in ONE kPredictBatch
//     frame — the transport overhead (frame + syscall + wakeup) is paid
//     once instead of N times.
//  3. Mixed pipelined load: N predictions + N profiles with pipelined
//     request ids (all in flight at once), requests/sec.
//  4. Degraded mode: the same lone predictions through a chaotic client
//     transport that kills ~1% of frames mid-header, with a RetryPolicy
//     that reconnects and retries — what fault tolerance costs when the
//     network actually misbehaves, vs the fault-free run above.
//
// Results are printed and written to BENCH_net_roundtrip.json; CI's
// smoke-net job gates the --quick run against
// bench/baseline/BENCH_net_roundtrip.json.
//
// Usage: bench_net_roundtrip [--quick]
#include <algorithm>
#include <cstring>
#include <future>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "net/chaos.hpp"
#include "net/client.hpp"
#include "net/server.hpp"

namespace {

using namespace hg;

double percentile(std::vector<double> sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  std::sort(sorted_ms.begin(), sorted_ms.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_ms.size() - 1));
  return sorted_ms[idx];
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;

  bench::JsonReporter json("net_roundtrip");
  bench::print_header(std::string("net round-trip") +
                      (quick ? " (quick mode)" : ""));

  api::EngineConfig cfg = api::EngineConfig::tiny();
  cfg.device = "jetson-tx2";
  cfg.evaluator = "oracle";  // deterministic, zero-cost queries: the
                             // numbers below are pure serving overhead
  // Pin the kernel pool to one thread so the records are comparable
  // across differently-sized machines (as in bench_serve_throughput).
  cfg.num_threads = 1;

  net::ServerConfig server_cfg;
  server_cfg.service.num_workers = 2;
  // The pipelined stage deliberately keeps thousands of requests in
  // flight; an unbounded queue keeps the measurement about throughput,
  // not about where the back-pressure bound happens to sit.
  server_cfg.service.max_queue_depth = 0;
  api::Result<std::shared_ptr<net::Server>> server =
      net::Server::create(cfg, server_cfg);
  if (!server.ok()) {
    std::fprintf(stderr, "server: %s\n",
                 server.status().to_string().c_str());
    return 1;
  }
  api::Result<net::Client> connected =
      net::Client::connect("127.0.0.1", server.value()->port());
  if (!connected.ok()) {
    std::fprintf(stderr, "client: %s\n",
                 connected.status().to_string().c_str());
    return 1;
  }
  net::Client client = std::move(connected).value();
  const std::shared_ptr<serve::Service>& service = server.value()->service();

  api::Engine engine = bench::unwrap(
      api::Engine::create(cfg, service->context()), "engine");
  // Quick mode still sends enough requests that the gated totals sit
  // well above check_perf_regression.py's 5 ms noise floor.
  const std::int64_t n = quick ? 512 : 2048;
  std::vector<api::Arch> archs;
  archs.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i)
    archs.push_back(engine.sample_arch());
  const std::string problem = std::to_string(n) + " predicts";

  // Warm both paths.
  (void)client.predict_latency(archs[0]);
  (void)service->submit(serve::PredictLatencyRequest{archs[0], {}}).get();

  // ---- lone predictions: in-process futures vs loopback round-trips ----
  double inproc_ms = 0.0;
  {
    bench::Timer t;
    for (const api::Arch& a : archs)
      if (!service->submit(serve::PredictLatencyRequest{a, {}}).get().ok())
        return 1;
    inproc_ms = t.ms();
    const double rps = static_cast<double>(n) / (inproc_ms / 1e3);
    std::printf("predict inproc   %-16s %9.2f ms   %8.0f req/s\n",
                problem.c_str(), inproc_ms, rps);
    json.add("predict/inproc", inproc_ms, problem, rps, "req/s");
  }
  {
    std::vector<double> rtt;
    rtt.reserve(static_cast<std::size_t>(n));
    bench::Timer t;
    for (const api::Arch& a : archs) {
      bench::Timer one;
      if (!client.predict_latency(a).ok()) return 1;
      rtt.push_back(one.ms());
    }
    const double remote_ms = t.ms();
    const double rps = static_cast<double>(n) / (remote_ms / 1e3);
    const double p50 = percentile(rtt, 0.50);
    const double p99 = percentile(rtt, 0.99);
    std::printf("predict remote   %-16s %9.2f ms   %8.0f req/s   "
                "p50 %.3f ms  p99 %.3f ms\n",
                problem.c_str(), remote_ms, rps, p50, p99);
    json.add("predict/remote_lone", remote_ms, problem, rps, "req/s");
    json.add("predict/remote_p50", p50, problem, p50, "ms");
    json.add("predict/remote_p99", p99, problem, p99, "ms");

    // ---- the same N archs in one batched frame ----
    bench::Timer tb;
    api::Result<std::vector<api::LatencyReport>> batched =
        client.predict_batch(archs);
    if (!batched.ok()) return 1;
    const double batched_ms = tb.ms();
    const double speedup = batched_ms > 0.0 ? remote_ms / batched_ms : 0.0;
    std::printf("predict batched  %-16s %9.2f ms   %.2fx vs lone remote\n",
                problem.c_str(), batched_ms, speedup);
    json.add("predict/remote_batched", batched_ms, problem, speedup, "x");
  }

  // ---- mixed pipelined load: everything in flight at once ----
  {
    const std::int64_t rounds = quick ? 2 : 4;
    bench::Timer t;
    for (std::int64_t round = 0; round < rounds; ++round) {
      std::vector<std::uint64_t> predict_ids, profile_ids;
      for (const api::Arch& a : archs) {
        api::Result<std::uint64_t> p = client.send_predict_latency(a);
        api::Result<std::uint64_t> q = client.send_profile(a);
        if (!p.ok() || !q.ok()) return 1;
        predict_ids.push_back(p.value());
        profile_ids.push_back(q.value());
      }
      for (std::uint64_t id : predict_ids)
        if (!client.wait_predict_latency(id).ok()) return 1;
      for (std::uint64_t id : profile_ids)
        if (!client.wait_profile(id).ok()) return 1;
    }
    const double wall_ms = t.ms();
    const double total = static_cast<double>(2 * rounds * n);
    const double rps = wall_ms > 0.0 ? total / (wall_ms / 1e3) : 0.0;
    const std::string mixed_problem =
        std::to_string(static_cast<long long>(total)) + " mixed pipelined";
    std::printf("mixed pipelined  %-16s %9.2f ms   %8.0f req/s\n",
                mixed_problem.c_str(), wall_ms, rps);
    json.add("mixed/remote_pipelined", wall_ms, mixed_problem, rps, "req/s");
  }

  // ---- degraded mode: ~1% of frames die mid-header; retries absorb it ----
  {
    net::testing::ChaosConfig chaos;
    chaos.seed = 99;  // fixed: the same fault schedule on every run
    chaos.reset_send_rate = 0.005;
    chaos.reset_recv_rate = 0.005;
    net::testing::ChaosStats faults;
    net::ClientConfig degraded_cfg;
    degraded_cfg.host = "127.0.0.1";
    degraded_cfg.port = server.value()->port();
    degraded_cfg.wrap_transport = net::testing::chaos_wrap(chaos, &faults);
    degraded_cfg.retry.max_attempts = 4;
    degraded_cfg.retry.initial_backoff_us = 200;
    degraded_cfg.retry.max_backoff_us = 2'000;
    api::Result<net::Client> degraded_conn =
        net::Client::connect(degraded_cfg);
    if (!degraded_conn.ok()) return 1;
    net::Client degraded = std::move(degraded_conn).value();

    std::vector<double> rtt;
    rtt.reserve(static_cast<std::size_t>(n));
    bench::Timer t;
    for (const api::Arch& a : archs) {
      bench::Timer one;
      if (!degraded.predict_latency(a).ok()) return 1;
      rtt.push_back(one.ms());
    }
    const double wall_ms = t.ms();
    const double rps = static_cast<double>(n) / (wall_ms / 1e3);
    const double p99 = percentile(rtt, 0.99);
    std::printf("predict degraded %-16s %9.2f ms   %8.0f req/s   "
                "p99 %.3f ms   (%lld resets absorbed, %lld reconnects)\n",
                problem.c_str(), wall_ms, rps, p99,
                static_cast<long long>(faults.resets.load()),
                static_cast<long long>(degraded.connections_dialed() - 1));
    json.add("predict/remote_degraded", wall_ms, problem, rps, "req/s");
    json.add("predict/remote_degraded_p99", p99, problem, p99, "ms");
  }

  server.value()->stop();
  json.write();
  return 0;
}
