// Fig. 9(b) reproduction: multi-stage hierarchical search vs traditional
// one-stage search over the full fine-grained space — objective score vs
// simulated search time. The two pipelines are the same EngineConfig with
// a different strategy name, which is the whole point of the facade.
#include <cstdio>
#include <utility>

#include "bench_util.hpp"
#include "api/engine.hpp"

int main() {
  hg::bench::JsonReporter bench_json("fig9b_multistage");
  hg::bench::Timer bench_timer;
  using namespace hg;

  auto run = [](const char* strategy) -> api::Result<api::SearchReport> {
    api::EngineConfig cfg = bench::default_engine_config("rtx3080");
    cfg.strategy = strategy;
    cfg.iterations = 15;
    cfg.dataset_seed = 55;
    cfg.seed = 7;
    api::Result<api::Engine> engine = api::Engine::create(cfg);
    if (!engine.ok()) return engine.status();
    return engine.value().search();
  };

  bench::print_header("Fig. 9(b): multi-stage vs one-stage search");
  const api::Result<api::SearchReport> multi = run("multistage");
  const api::Result<api::SearchReport> one = run("onestage");
  if (!multi.ok() || !one.ok()) {
    std::fprintf(stderr, "%s\n",
                 (!multi.ok() ? multi : one).status().to_string().c_str());
    return 1;
  }

  auto print_series = [](const char* label, const api::SearchResult& r) {
    std::printf("%s\n  %14s %14s\n", label, "time_min", "objective");
    const std::size_t step =
        r.history.size() > 10 ? r.history.size() / 10 : 1;
    for (std::size_t i = 0; i < r.history.size(); i += step)
      std::printf("  %14.2f %14.4f\n", r.history[i].sim_time_s / 60.0,
                  r.history[i].best_objective);
    std::printf("  final objective: %.4f\n", r.best_objective);
  };
  print_series("multi-stage:", multi.value().result);
  print_series("one-stage:", one.value().result);

  std::printf("multi-stage vs one-stage final score: %.4f vs %.4f\n",
              multi.value().result.best_objective,
              one.value().result.best_objective);
  std::printf("(paper: one-stage gets entangled in the huge fine-grained "
              "space; multi-stage finds better architectures within a few "
              "GPU hours)\n");
  bench_json.add("total", bench_timer.ms(), "whole bench");
  return 0;
}
