// Fig. 9(b) reproduction: multi-stage hierarchical search vs traditional
// one-stage search over the full fine-grained space — objective score vs
// simulated search time.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace hg;
  hw::Device dev = hw::make_device(hw::DeviceKind::Rtx3080);
  pointcloud::Dataset data(8, 32, 55);

  auto run = [&](bool multistage) {
    Rng rng(7);
    hgnas::SuperNet supernet(bench::default_space(),
                             bench::default_supernet(), rng);
    hgnas::SearchConfig cfg = bench::default_search_config(dev);
    cfg.iterations = 15;
    hgnas::HgnasSearch search(
        supernet, data, cfg,
        hgnas::make_oracle_evaluator(dev, bench::paper_workload()));
    return multistage ? search.run_multistage(rng)
                      : search.run_onestage(rng);
  };

  bench::print_header("Fig. 9(b): multi-stage vs one-stage search");
  const auto multi = run(true);
  const auto one = run(false);

  auto print_series = [](const char* label, const hgnas::SearchResult& r) {
    std::printf("%s\n  %14s %14s\n", label, "time_min", "objective");
    const std::size_t step =
        r.history.size() > 10 ? r.history.size() / 10 : 1;
    for (std::size_t i = 0; i < r.history.size(); i += step)
      std::printf("  %14.2f %14.4f\n", r.history[i].sim_time_s / 60.0,
                  r.history[i].best_objective);
    std::printf("  final objective: %.4f\n", r.best_objective);
  };
  print_series("multi-stage:", multi);
  print_series("one-stage:", one);

  std::printf("multi-stage vs one-stage final score: %.4f vs %.4f\n",
              multi.best_objective, one.best_objective);
  std::printf("(paper: one-stage gets entangled in the huge fine-grained "
              "space; multi-stage finds better architectures within a few "
              "GPU hours)\n");
  return 0;
}
