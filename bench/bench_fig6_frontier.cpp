// Fig. 6 reproduction: accuracy-vs-latency frontier per device.
//
// For each of the four platforms we report the baselines (DGCNN, Li [6],
// Tailor [7]) and two HGNAS designs: Device-Acc (accuracy-leaning
// objective) and Device-Fast (latency-leaning objective, ~1% accuracy-loss
// budget). Latency: paper-scale cost model; accuracy: CPU-scale training on
// the synthetic dataset.
#include <cstdio>

#include "baselines/baselines.hpp"
#include "bench_util.hpp"
#include "hgnas/model.hpp"

namespace {

using namespace hg;

struct Point {
  std::string name;
  double latency_ms;
  double acc;
};

double train_arch_accuracy(const hgnas::Arch& arch,
                           const pointcloud::Dataset& data,
                           std::uint64_t seed) {
  Rng rng(seed);
  hgnas::Workload w = bench::train_workload();
  hgnas::GnnModel model(arch, w, rng);
  hgnas::TrainConfig cfg;
  cfg.epochs = 15;
  cfg.lr = 2e-3f;
  return train_model(model, data, cfg, rng).overall_acc;
}

}  // namespace

int main() {
  hg::bench::JsonReporter bench_json("fig6_frontier");
  hg::bench::Timer bench_timer;
  pointcloud::Dataset data(16, 32, 77);

  // Baseline accuracies are device-independent: train once.
  Rng brng(1);
  baselines::Dgcnn dgcnn(baselines::DgcnnConfig::scaled(10, 6), brng);
  const double dgcnn_acc =
      baselines::train_baseline(dgcnn, data, 15, 2e-3f, brng).overall_acc;
  baselines::DgcnnConfig li_cfg = baselines::li_optimized_config(
      baselines::DgcnnConfig::scaled(10, 6));
  baselines::Dgcnn li(li_cfg, brng);
  const double li_acc =
      baselines::train_baseline(li, data, 15, 2e-3f, brng).overall_acc;
  baselines::TailorGnn tailor(baselines::TailorConfig::scaled(10, 6), brng);
  const double tailor_acc =
      baselines::train_baseline(tailor, data, 15, 2e-3f, brng).overall_acc;

  for (int d = 0; d < hw::kNumDevices; ++d) {
    const auto kind = static_cast<hw::DeviceKind>(d);
    hw::Device dev = hw::make_device(kind);
    const double dgcnn_ms =
        dev.latency_ms(baselines::Dgcnn::trace(baselines::DgcnnConfig{},
                                               1024));

    std::vector<Point> points;
    points.push_back({"DGCNN", dgcnn_ms, dgcnn_acc});
    points.push_back(
        {"[6] Li et al.",
         dev.latency_ms(baselines::Dgcnn::trace(
             baselines::li_optimized_config(baselines::DgcnnConfig{}),
             1024)),
         li_acc});
    points.push_back(
        {"[7] Tailor et al.",
         dev.latency_ms(baselines::TailorGnn::trace(baselines::TailorConfig{},
                                                    1024)),
         tailor_acc});

    // Two HGNAS searches: Acc (beta small) and Fast (beta large).
    for (int mode = 0; mode < 2; ++mode) {
      Rng rng(500 + static_cast<std::uint64_t>(d * 2 + mode));
      hgnas::SuperNet supernet(bench::default_space(),
                               bench::default_supernet(), rng);
      hgnas::SearchConfig cfg = bench::default_search_config(dev);
      cfg.latency_constraint_ms = dgcnn_ms;  // must not be slower than DGCNN
      if (mode == 0) {  // Device-Acc
        cfg.alpha = 1.0;
        cfg.beta = 0.1;
      } else {  // Device-Fast
        cfg.alpha = 1.0;
        cfg.beta = 1.0;
      }
      pointcloud::Dataset search_data(12, 32,
                                      900 + static_cast<std::uint64_t>(d));
      hgnas::HgnasSearch search(
          supernet, search_data, cfg,
          hgnas::make_oracle_evaluator(dev, bench::paper_workload()));
      hgnas::SearchResult r = search.run_multistage(rng);
      const double acc = train_arch_accuracy(
          r.best_arch, data, 7000 + static_cast<std::uint64_t>(d * 2 + mode));
      points.push_back(
          {mode == 0 ? std::string(bench::short_device_name(kind)) + "-Acc"
                     : std::string(bench::short_device_name(kind)) + "-Fast",
           r.best_latency_ms, acc});
    }

    bench::print_header(std::string("Fig. 6: ") + dev.name());
    std::printf("%-18s %14s %12s\n", "model", "latency_ms", "accuracy_%");
    for (const auto& p : points)
      std::printf("%-18s %14.1f %12.1f\n", p.name.c_str(), p.latency_ms,
                  100.0 * p.acc);
  }
  std::printf("\n(paper: HGNAS points dominate the baselines' frontier — "
              "lower latency at comparable accuracy on every device)\n");
  bench_json.add("total", bench_timer.ms(), "whole bench");
  return 0;
}
