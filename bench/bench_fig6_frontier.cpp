// Fig. 6 reproduction: accuracy-vs-latency frontier per device.
//
// For each of the four platforms we report the baselines (DGCNN, Li [6],
// Tailor [7]) and two HGNAS designs: Device-Acc (accuracy-leaning
// objective) and Device-Fast (latency-leaning objective, ~1% accuracy-loss
// budget). Latency: paper-scale cost model via Engine::profile_baseline;
// accuracy: CPU-scale training on one shared dataset via Engine::train /
// train_baseline. Each search also prints its own in-loop Pareto frontier
// (SearchResult::frontier — supernet-proxy accuracy vs latency).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"

int main() {
  hg::bench::JsonReporter bench_json("fig6_frontier");
  hg::bench::Timer bench_timer;
  using namespace hg;

  struct Point {
    std::string name;
    double latency_ms;
    double acc;
  };

  // One engine holds the shared accuracy-side dataset: baselines are
  // device-independent, so they train exactly once.
  api::EngineConfig acc_cfg = bench::default_engine_config("rtx3080");
  acc_cfg.samples_per_class = 16;
  acc_cfg.dataset_seed = 77;
  acc_cfg.train_epochs = 15;
  acc_cfg.train_lr = 2e-3f;
  api::Engine acc_engine =
      bench::unwrap(api::Engine::create(acc_cfg), "create(accuracy engine)");
  const double dgcnn_acc = bench::unwrap(
      acc_engine.train_baseline("dgcnn"), "train dgcnn").overall_acc;
  const double li_acc = bench::unwrap(
      acc_engine.train_baseline("li"), "train li").overall_acc;
  const double tailor_acc = bench::unwrap(
      acc_engine.train_baseline("tailor"), "train tailor").overall_acc;

  const std::vector<std::string> devices =
      api::Registry::global().device_names();
  for (std::size_t d = 0; d < devices.size(); ++d) {
    const std::string& dev_name = devices[d];
    const char* short_name = bench::short_device_name(dev_name);

    std::vector<Point> points;
    std::vector<std::string> frontiers;
    std::string full_name;
    // Two HGNAS searches: Acc (beta small) and Fast (beta large).
    for (int mode = 0; mode < 2; ++mode) {
      api::EngineConfig cfg = bench::default_engine_config(dev_name);
      cfg.constrain_to_reference = true;  // must not be slower than DGCNN
      cfg.alpha = 1.0;
      cfg.beta = mode == 0 ? 0.1 : 1.0;
      cfg.samples_per_class = 12;
      cfg.dataset_seed = 900 + static_cast<std::uint64_t>(d);
      cfg.seed = 500 + static_cast<std::uint64_t>(d * 2 + mode);
      api::Engine engine =
          bench::unwrap(api::Engine::create(cfg), "create(search engine)");
      if (points.empty()) {
        full_name = engine.device().name();
        points.push_back({"DGCNN",
                          bench::unwrap(engine.profile_baseline("dgcnn"),
                                        "profile").latency_ms,
                          dgcnn_acc});
        points.push_back({"[6] Li et al.",
                          bench::unwrap(engine.profile_baseline("li"),
                                        "profile").latency_ms,
                          li_acc});
        points.push_back({"[7] Tailor et al.",
                          bench::unwrap(engine.profile_baseline("tailor"),
                                        "profile").latency_ms,
                          tailor_acc});
      }
      const api::SearchReport report =
          bench::unwrap(engine.search(), "search");
      const api::SearchResult& r = report.result;
      const double acc =
          bench::unwrap(acc_engine.train(r.best_arch), "train winner")
              .overall_acc;
      points.push_back({std::string(short_name) +
                            (mode == 0 ? "-Acc" : "-Fast"),
                        r.best_latency_ms, acc});
      frontiers.push_back(report.frontier_table);
    }

    bench::print_header(std::string("Fig. 6: ") + full_name);
    std::printf("%-18s %14s %12s\n", "model", "latency_ms", "accuracy_%");
    for (const auto& p : points)
      std::printf("%-18s %14.1f %12.1f\n", p.name.c_str(), p.latency_ms,
                  100.0 * p.acc);
    for (int mode = 0; mode < 2; ++mode) {
      std::printf("in-loop frontier (%s, latency_ms / supernet acc):\n%s",
                  mode == 0 ? "Acc" : "Fast",
                  frontiers[static_cast<std::size_t>(mode)].c_str());
    }
  }
  std::printf("\n(paper: HGNAS points dominate the baselines' frontier — "
              "lower latency at comparable accuracy on every device)\n");
  bench_json.add("total", bench_timer.ms(), "whole bench");
  return 0;
}
