// Design-space ablation: cardinality of the operation vs full fine-grained
// space (§III-C complexity claim) and sampling / lowering throughput.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "gbench_json.hpp"
#include "hgnas/arch.hpp"

namespace {

using namespace hg;

void BM_RandomArchSampling(benchmark::State& state) {
  hgnas::SpaceConfig cfg;
  cfg.num_positions = state.range(0);
  Rng rng(1);
  for (auto _ : state)
    benchmark::DoNotOptimize(hgnas::random_arch(cfg, rng));
}
BENCHMARK(BM_RandomArchSampling)->Arg(6)->Arg(12)->Arg(24);

void BM_LowerToTrace(benchmark::State& state) {
  hgnas::SpaceConfig cfg;
  cfg.num_positions = 12;
  Rng rng(2);
  hgnas::Arch a = hgnas::random_arch(cfg, rng);
  hgnas::Workload w;
  w.num_points = state.range(0);
  w.k = 20;
  for (auto _ : state) benchmark::DoNotOptimize(lower_to_trace(a, w));
}
BENCHMARK(BM_LowerToTrace)->Arg(256)->Arg(1024)->Arg(4096);

void BM_MutateAndCrossover(benchmark::State& state) {
  hgnas::SpaceConfig cfg;
  cfg.num_positions = 12;
  Rng rng(3);
  hgnas::Arch a = hgnas::random_arch(cfg, rng);
  hgnas::Arch b = hgnas::random_arch(cfg, rng);
  for (auto _ : state) {
    hgnas::Arch child = hgnas::crossover(a, b, rng);
    benchmark::DoNotOptimize(hgnas::mutate(child, 0.2, 0.2, rng));
  }
}
BENCHMARK(BM_MutateAndCrossover);

}  // namespace

int main(int argc, char** argv) {
  // Space-size report (the §III-C numbers), then the micro-benchmarks.
  hg::hgnas::SpaceConfig cfg;
  cfg.num_positions = 12;
  std::printf("design-space cardinality (12 positions):\n");
  std::printf("  operation space (functions shared): 10^%.2f  (~1.7e7)\n",
              hg::hgnas::log10_operation_space_size(cfg));
  std::printf("  full fine-grained space:            10^%.2f\n",
              hg::hgnas::log10_full_space_size(cfg));

  ::benchmark::Initialize(&argc, argv);
  hg::bench::JsonReporter json("space_size");
  hg::bench::GBenchJsonAdapter reporter(json);
  ::benchmark::RunSpecifiedBenchmarks(&reporter);
  return 0;
}
