// Micro-benchmark: brute-force vs grid-accelerated KNN graph construction
// (ablation for the graph substrate's dispatch heuristic).
#include <benchmark/benchmark.h>

#include "gbench_json.hpp"
#include "graph/graph.hpp"
#include "tensor/rng.hpp"

namespace {

std::vector<float> random_points(std::int64_t n) {
  hg::Rng rng(static_cast<std::uint64_t>(n));
  std::vector<float> pts(static_cast<std::size_t>(n) * 3);
  for (auto& v : pts) v = rng.uniform(-1.f, 1.f);
  return pts;
}

void BM_KnnBrute(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const auto pts = random_points(n);
  for (auto _ : state)
    benchmark::DoNotOptimize(hg::graph::knn_graph_brute(pts, n, 16));
  state.SetComplexityN(n);
}
BENCHMARK(BM_KnnBrute)->Arg(128)->Arg(256)->Arg(512)->Arg(1024)->Complexity();

void BM_KnnGrid(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const auto pts = random_points(n);
  for (auto _ : state)
    benchmark::DoNotOptimize(hg::graph::knn_graph_grid(pts, n, 16));
  state.SetComplexityN(n);
}
BENCHMARK(BM_KnnGrid)->Arg(128)->Arg(256)->Arg(512)->Arg(1024)->Complexity();

void BM_RandomSample(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  hg::Rng rng(1);
  for (auto _ : state)
    benchmark::DoNotOptimize(hg::graph::random_graph(n, 16, rng));
}
BENCHMARK(BM_RandomSample)->Arg(256)->Arg(1024);

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  hg::bench::JsonReporter json("knn");
  hg::bench::GBenchJsonAdapter reporter(json);
  ::benchmark::RunSpecifiedBenchmarks(&reporter);
  return 0;
}
