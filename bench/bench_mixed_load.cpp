// bench_mixed_load — predict tail latency while a long search is in flight.
//
// The serving layer's generation-sliced scheduler exists for exactly one
// number: the p99 of a small predict probe submitted while an exclusive
// search occupies the service. Run-to-completion (exclusive_slice_ms = 0)
// parks the probe behind the whole search; with a slice, the search is
// preempted at the next generation boundary and the probe is answered in
// between slices. Same context, same requests, same results — only the
// interleaving differs.
//
// Method: one worker (the worst case — no second worker to absorb pure
// traffic), one long search submitted, then a closed loop of predict
// probes until the search completes; each probe's wall time is one sample.
// Repeated for slice=0 and slice=5 ms.
//
// Results are printed and written to BENCH_mixed_load.json; CI's
// smoke-perf job gates the --quick run against
// bench/baseline/BENCH_mixed_load.json and requires
// predict_p99_slice0 >= 3x predict_p99_sliced.
//
// Usage: bench_mixed_load [--quick]
#include <algorithm>
#include <chrono>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "serve/service.hpp"

namespace {

using namespace hg;

double percentile(std::vector<double> sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  std::sort(sorted_ms.begin(), sorted_ms.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_ms.size() - 1) + 0.5);
  return sorted_ms[std::min(idx, sorted_ms.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;

  bench::JsonReporter json("mixed_load");
  bench::print_header(std::string("mixed-load predict tail latency") +
                      (quick ? " (quick mode)" : ""));

  api::EngineConfig cfg = api::EngineConfig::tiny();
  cfg.device = "jetson-tx2";
  cfg.evaluator = "predictor";
  cfg.predictor_samples = quick ? 60 : 200;
  cfg.predictor_epochs = quick ? 8 : 20;
  // A search long enough that probes genuinely contend with it (several
  // hundred ms even on a fast host).
  cfg.iterations = quick ? 20 : 40;
  // One kernel thread: the numbers isolate scheduling, not parallelism.
  cfg.num_threads = 1;

  bench::Timer startup;
  api::Result<std::shared_ptr<api::EvalContext>> ctx =
      api::EvalContext::create(cfg);
  if (!ctx.ok()) {
    std::fprintf(stderr, "context: %s\n", ctx.status().to_string().c_str());
    return 1;
  }
  std::printf("context ready (predictor fitted) in %.0f ms\n", startup.ms());

  api::Engine engine =
      bench::unwrap(api::Engine::create(cfg, ctx.value()), "engine");
  const api::Arch probe_arch = engine.sample_arch();

  const std::int64_t slice_ms = 5;
  for (const std::int64_t slice : {std::int64_t{0}, slice_ms}) {
    serve::ServiceConfig scfg;
    scfg.num_workers = 1;  // worst case: nobody else can take pure work
    scfg.exclusive_slice_ms = slice;
    api::Result<std::shared_ptr<serve::Service>> service =
        serve::Service::create(cfg, ctx.value(), scfg);
    if (!service.ok()) {
      std::fprintf(stderr, "service: %s\n",
                   service.status().to_string().c_str());
      return 1;
    }

    bench::Timer search_timer;
    std::future<api::Result<api::SearchReport>> search =
        service.value()->submit(serve::SearchRequest{});
    // Let the worker claim the search before the first probe, so every
    // sample below really contends with a running search.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));

    // Closed-loop probing: submit one predict, wait for its answer, record
    // the wall time, repeat while the search is still in flight. Under
    // run-to-completion the first probe simply waits out the search — that
    // IS the tail a mixed-load client sees.
    std::vector<double> samples_ms;
    const std::size_t max_probes = quick ? 400 : 2000;
    do {
      bench::Timer t;
      api::Result<api::LatencyReport> r =
          service.value()
              ->submit(serve::PredictLatencyRequest{probe_arch})
              .get();
      if (!r.ok()) {
        std::fprintf(stderr, "probe: %s\n", r.status().to_string().c_str());
        return 1;
      }
      samples_ms.push_back(t.ms());
    } while (search.wait_for(std::chrono::seconds(0)) !=
                 std::future_status::ready &&
             samples_ms.size() < max_probes);

    if (!search.get().ok()) {
      std::fprintf(stderr, "search failed\n");
      return 1;
    }
    const double search_wall_ms = search_timer.ms();
    const serve::ServiceStats stats = service.value()->stats();
    service.value()->shutdown();

    const double p50 = percentile(samples_ms, 0.50);
    const double p99 = percentile(samples_ms, 0.99);
    const std::string tag = slice == 0 ? "slice0" : "sliced";
    const std::string problem =
        std::to_string(samples_ms.size()) + " probes vs search";
    std::printf(
        "slice=%-2lld ms  %-24s p50 %9.2f ms  p99 %9.2f ms  "
        "(search %8.0f ms, %lld slices, %lld preemptions, %lld resumes)\n",
        static_cast<long long>(slice), problem.c_str(), p50, p99,
        search_wall_ms, static_cast<long long>(stats.exclusive_slices),
        static_cast<long long>(stats.exclusive_preemptions),
        static_cast<long long>(stats.exclusive_resumes));
    json.add("mixed/predict_p50_" + tag, p50, problem);
    json.add("mixed/predict_p99_" + tag, p99, problem,
             static_cast<double>(samples_ms.size()), "probes");
    json.add("mixed/search_wall_" + tag, search_wall_ms, problem);
  }

  json.write();
  return 0;
}
