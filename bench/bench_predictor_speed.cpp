// §III-D claim: predictor queries cost milliseconds, simulated on-device
// measurement costs seconds-to-minutes. Benchmarks the real query latency
// of the predictor forward pass and of trace lowering + analytical cost.
#include <benchmark/benchmark.h>

#include <memory>

#include "gbench_json.hpp"
#include "predictor/predictor.hpp"

namespace {

using namespace hg;

hgnas::Workload workload() {
  hgnas::Workload w;
  w.num_points = 1024;
  w.k = 20;
  return w;
}

void BM_PredictorQuery(benchmark::State& state) {
  Rng rng(1);
  predictor::PredictorConfig cfg;
  // Paper-size predictor: GCN 256-512-512, MLP 256-128-1.
  if (state.range(0) == 1) {
    cfg.gcn_dims = {256, 512, 512};
    cfg.mlp_dims = {256, 128, 1};
  }
  predictor::LatencyPredictor pred(cfg, workload(), rng);
  hgnas::SpaceConfig space;
  space.num_positions = 12;
  hgnas::Arch a = hgnas::random_arch(space, rng);
  for (auto _ : state) benchmark::DoNotOptimize(pred.predict_ms(a));
}
BENCHMARK(BM_PredictorQuery)
    ->Arg(0)  // scaled predictor
    ->Arg(1)  // paper-size predictor
    ->Unit(benchmark::kMillisecond);

void BM_ArchToGraph(benchmark::State& state) {
  Rng rng(2);
  hgnas::SpaceConfig space;
  space.num_positions = 12;
  hgnas::Arch a = hgnas::random_arch(space, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(predictor::arch_to_graph(a, workload()));
}
BENCHMARK(BM_ArchToGraph);

void BM_AnalyticalLatency(benchmark::State& state) {
  Rng rng(3);
  hgnas::SpaceConfig space;
  space.num_positions = 12;
  hgnas::Arch a = hgnas::random_arch(space, rng);
  hw::Device dev = hw::make_device(hw::DeviceKind::Rtx3080);
  for (auto _ : state)
    benchmark::DoNotOptimize(dev.latency_ms(lower_to_trace(a, workload())));
}
BENCHMARK(BM_AnalyticalLatency);

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  hg::bench::JsonReporter json("predictor_speed");
  hg::bench::GBenchJsonAdapter reporter(json);
  ::benchmark::RunSpecifiedBenchmarks(&reporter);
  return 0;
}
