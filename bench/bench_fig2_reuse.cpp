// Fig. 2(b) reproduction: accuracy vs latency when reusing sampled results
// across DGCNN layers on the classification dataset.
//
// x-axis sweep: reuse_from_layer = 4 (original DGCNN, all layers resample)
// down to 1 (single KNN reused everywhere, the Li et al. [6] setting).
// Accuracy is trained/evaluated at CPU scale; latency at paper scale on the
// RTX3080 model (the platform used in the paper's figure).
#include <cstdio>

#include "baselines/baselines.hpp"
#include "bench_util.hpp"

int main() {
  hg::bench::JsonReporter bench_json("fig2_reuse");
  hg::bench::Timer bench_timer;
  using namespace hg;

  hw::Device rtx = hw::make_device(hw::DeviceKind::Rtx3080);
  pointcloud::Dataset data(24, 32, /*seed=*/2024);

  bench::print_header("Fig. 2(b): sampled-result reuse across DGCNN layers");
  std::printf("%-22s %14s %14s\n", "variant", "latency_ms", "accuracy_%");

  for (std::int64_t reuse = 4; reuse >= 1; --reuse) {
    // Paper-scale latency.
    baselines::DgcnnConfig paper_cfg;  // 1024 pts / 40 classes defaults
    paper_cfg.reuse_from_layer = reuse;
    const double lat = rtx.latency_ms(baselines::Dgcnn::trace(paper_cfg,
                                                              1024));
    // CPU-scale accuracy.
    Rng rng(100 + static_cast<std::uint64_t>(reuse));
    baselines::DgcnnConfig train_cfg = baselines::DgcnnConfig::scaled(10, 6);
    train_cfg.reuse_from_layer = reuse;
    baselines::Dgcnn model(train_cfg, rng);
    const auto eval = baselines::train_baseline(model, data, /*epochs=*/15,
                                                2e-3f, rng);
    const char* label = reuse == 4   ? "layer4 (original)"
                        : reuse == 3 ? "reuse from layer 3"
                        : reuse == 2 ? "reuse from layer 2"
                                     : "reuse from layer 1";
    std::printf("%-22s %14.1f %14.1f\n", label, lat,
                100.0 * eval.overall_acc);
  }
  std::printf("(paper: reuse costs <1%% accuracy but cuts latency "
              "substantially — redundancy in the MP paradigm)\n");
  bench_json.add("total", bench_timer.ms(), "whole bench");
  return 0;
}
