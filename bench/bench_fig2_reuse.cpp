// Fig. 2(b) reproduction: accuracy vs latency when reusing sampled results
// across DGCNN layers on the classification dataset.
//
// x-axis sweep: the facade's DGCNN reuse ladder — "dgcnn" (all layers
// resample) down to "li" (single KNN reused everywhere, the Li et al. [6]
// setting). Accuracy comes from Engine::train_baseline at CPU scale;
// latency from Engine::profile_baseline at paper scale on the RTX3080 (the
// platform used in the paper's figure).
#include <cstdio>

#include "bench_util.hpp"

int main() {
  hg::bench::JsonReporter bench_json("fig2_reuse");
  hg::bench::Timer bench_timer;
  using namespace hg;

  api::EngineConfig cfg = bench::default_engine_config("rtx3080");
  cfg.samples_per_class = 24;
  cfg.dataset_seed = 2024;
  cfg.train_epochs = 15;
  cfg.train_lr = 2e-3f;
  api::Engine engine =
      bench::unwrap(api::Engine::create(cfg), "create(rtx3080)");

  bench::print_header("Fig. 2(b): sampled-result reuse across DGCNN layers");
  std::printf("%-22s %14s %14s\n", "variant", "latency_ms", "accuracy_%");

  const struct {
    const char* name;
    const char* label;
  } variants[] = {
      {"dgcnn", "layer4 (original)"},
      {"dgcnn-reuse3", "reuse from layer 3"},
      {"dgcnn-reuse2", "reuse from layer 2"},
      {"li", "reuse from layer 1"},
  };
  for (const auto& v : variants) {
    const api::ProfileReport prof =
        bench::unwrap(engine.profile_baseline(v.name), "profile");
    const api::TrainReport train =
        bench::unwrap(engine.train_baseline(v.name), "train");
    std::printf("%-22s %14.1f %14.1f\n", v.label, prof.latency_ms,
                100.0 * train.overall_acc);
  }
  std::printf("(paper: reuse costs <1%% accuracy but cuts latency "
              "substantially — redundancy in the MP paradigm)\n");
  bench_json.add("total", bench_timer.ms(), "whole bench");
  return 0;
}
