// Ablation: evolutionary search vs pure random search at equal latency-
// query budget (supernet accuracy disabled so the comparison isolates the
// search strategy on the latency objective).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "gbench_json.hpp"
#include "hgnas/search.hpp"

namespace {

using namespace hg;

double best_random(std::int64_t budget, const hw::Device& dev,
                   const hgnas::Workload& w, std::uint64_t seed) {
  Rng rng(seed);
  hgnas::SpaceConfig space;
  space.num_positions = 12;
  double best = 1e18;
  for (std::int64_t i = 0; i < budget; ++i) {
    const auto a = hgnas::random_arch(space, rng);
    best = std::min(best, dev.latency_ms(lower_to_trace(a, w)));
  }
  return best;
}

double best_ea(std::int64_t iterations, const hw::Device& dev,
               const hgnas::Workload& w, std::uint64_t seed) {
  // Minimal EA on latency only (mirrors the stage-2 loop's selection
  // pressure without the supernet).
  Rng rng(seed);
  hgnas::SpaceConfig space;
  space.num_positions = 12;
  std::vector<std::pair<double, hgnas::Arch>> pop;
  for (int i = 0; i < 16; ++i) {
    auto a = hgnas::random_arch(space, rng);
    pop.emplace_back(dev.latency_ms(lower_to_trace(a, w)), a);
  }
  for (std::int64_t t = 0; t < iterations; ++t) {
    std::sort(pop.begin(), pop.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    pop.resize(16);
    for (int c = 0; c < 8; ++c) {
      const auto& parent =
          pop[static_cast<std::size_t>(rng.uniform_int(std::uint64_t{8}))]
              .second;
      auto child = hgnas::mutate(parent, 0.2, 0.2, rng);
      pop.emplace_back(dev.latency_ms(lower_to_trace(child, w)), child);
    }
  }
  std::sort(pop.begin(), pop.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return pop.front().first;
}

void BM_RandomSearch(benchmark::State& state) {
  hw::Device dev = hw::make_device(hw::DeviceKind::Rtx3080);
  hgnas::Workload w;
  w.num_points = 1024;
  w.k = 20;
  for (auto _ : state)
    benchmark::DoNotOptimize(best_random(16 + 8 * state.range(0), dev, w, 1));
}
BENCHMARK(BM_RandomSearch)->Arg(20)->Arg(50);

void BM_EvolutionarySearch(benchmark::State& state) {
  hw::Device dev = hw::make_device(hw::DeviceKind::Rtx3080);
  hgnas::Workload w;
  w.num_points = 1024;
  w.k = 20;
  for (auto _ : state)
    benchmark::DoNotOptimize(best_ea(state.range(0), dev, w, 1));
}
BENCHMARK(BM_EvolutionarySearch)->Arg(20)->Arg(50);

}  // namespace

int main(int argc, char** argv) {
  // Quality-at-equal-budget report, then timing benchmarks.
  hg::hw::Device dev = hg::hw::make_device(hg::hw::DeviceKind::Rtx3080);
  hg::hgnas::Workload w;
  w.num_points = 1024;
  w.k = 20;
  for (std::int64_t iters : {20, 50}) {
    const double ea = best_ea(iters, dev, w, 42);
    const double rnd = best_random(16 + 8 * iters, dev, w, 42);
    std::printf("budget %3lld iters: EA best %.2f ms | random best %.2f ms "
                "(EA advantage %.1f%%)\n",
                static_cast<long long>(iters), ea, rnd,
                100.0 * (rnd - ea) / rnd);
  }
  ::benchmark::Initialize(&argc, argv);
  hg::bench::JsonReporter json("ea");
  hg::bench::GBenchJsonAdapter reporter(json);
  ::benchmark::RunSpecifiedBenchmarks(&reporter);
  return 0;
}
