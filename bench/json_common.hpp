// json_common.hpp — the single source of truth for BENCH_*.json emission
// details shared by the two bench emitters (bench_util.hpp's JsonReporter
// for the figure benches, gbench_json.hpp's adapter for the
// Google-Benchmark micro-benches): the JSON string escaping and the baked
// -in git revision. Hoisted here so the emitters cannot drift apart.
#pragma once

#include <string>

// Git revision baked in by bench/CMakeLists.txt at configure time, so every
// BENCH_*.json row is attributable to a commit.
#ifndef HG_GIT_REV
#define HG_GIT_REV "unknown"
#endif

namespace hg::bench {

/// Escape for a double-quoted JSON string literal.
inline std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// The commit every record of this binary measures.
inline const char* git_rev() { return HG_GIT_REV; }

}  // namespace hg::bench
