// bench_parallel_scaling — serial vs pooled wall-clock for the three layers
// the parallel backbone rewired: tensor kernels (matmul), GNN operators
// (EdgeConv forward, fused vs materializing Aggregate), graph construction
// (KNN), and the end-to-end Engine::search() on the quickstart workload.
//
// Every comparison runs the identical computation at num_threads=1 (the
// historical serial path) and at the hardware thread count; the kernels are
// bit-for-bit thread-count invariant, so the speedup is pure scheduling.
// Results are printed and written to BENCH_parallel_scaling.json
// (wall-clock ms, pool width, problem size, git rev).
//
// Usage: bench_parallel_scaling [--quick]
//   --quick  small problem sizes and a tiny search (CI smoke-perf job).
#include <algorithm>
#include <cstring>
#include <string>

#include "api/engine.hpp"
#include "bench_util.hpp"
#include "gnn/gnn.hpp"
#include "graph/graph.hpp"
#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"

namespace {

using namespace hg;

std::vector<float> random_values(std::int64_t n, Rng& rng) {
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng.normal();
  return v;
}

/// Best-of-`reps` wall time of `fn` at the given pool width.
template <typename Fn>
double time_at(std::int64_t threads, int reps, Fn&& fn) {
  core::ScopedNumThreads scoped(threads);
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    bench::Timer t;
    fn();
    best = std::min(best, t.ms());
  }
  return best;
}

void report_pair(bench::JsonReporter& json, const std::string& name,
                 const std::string& problem, double serial_ms,
                 double parallel_ms, std::int64_t threads) {
  const double speedup = parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0;
  std::printf("%-28s %-26s serial %9.2f ms | %2lld threads %9.2f ms | %.2fx\n",
              name.c_str(), problem.c_str(), serial_ms,
              static_cast<long long>(threads), parallel_ms, speedup);
  json.add(name + "/serial", serial_ms, problem, 0.0, "", 1);
  json.add(name + "/parallel", parallel_ms, problem, speedup, "x", threads);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;

  const std::int64_t hw = core::hardware_threads();
  bench::JsonReporter json("parallel_scaling");
  bench::print_header("parallel scaling (hardware threads: " +
                      std::to_string(hw) + (quick ? ", quick mode)" : ")"));

  Rng rng(2024);
  const int reps = quick ? 2 : 3;

  // ---- tensor kernel: dense matmul -----------------------------------------
  {
    const std::int64_t n = quick ? 256 : 512;
    const auto av = random_values(n * n, rng);
    const auto bv = random_values(n * n, rng);
    Tensor a = Tensor::from_vector({n, n}, av);
    Tensor b = Tensor::from_vector({n, n}, bv);
    auto run = [&] {
      detail::NoGradGuard ng;
      Tensor c = matmul(a, b);
      (void)c;
    };
    report_pair(json, "matmul",
                std::to_string(n) + "x" + std::to_string(n),
                time_at(1, reps, run), time_at(hw, reps, run), hw);
  }

  // ---- graph construction: KNN ---------------------------------------------
  const std::int64_t points_n = quick ? 1024 : 4096;
  const std::int64_t k = 16;
  const auto pts = random_values(points_n * 3, rng);
  {
    auto run = [&] { (void)graph::knn_graph(pts, points_n, k); };
    report_pair(json, "knn_graph",
                std::to_string(points_n) + " pts k=" + std::to_string(k),
                time_at(1, reps, run), time_at(hw, reps, run), hw);
  }

  // ---- GNN operator: EdgeConv forward --------------------------------------
  const graph::EdgeList g = graph::knn_graph(pts, points_n, k);
  const std::int64_t channels = 64;
  const auto feat = random_values(points_n * channels, rng);
  {
    gnn::EdgeConv conv(channels, channels, rng);
    conv.set_training(false);
    Tensor x = Tensor::from_vector({points_n, channels}, feat);
    auto run = [&] {
      detail::NoGradGuard ng;
      (void)conv.forward(x, g);
    };
    report_pair(json, "edgeconv_forward",
                std::to_string(points_n) + " pts k=" + std::to_string(k) +
                    " c=" + std::to_string(channels),
                time_at(1, reps, run), time_at(hw, reps, run), hw);
  }

  // ---- fused vs materializing Aggregate (Full message, max reduce) ---------
  {
    Tensor x = Tensor::from_vector({points_n, channels}, feat);
    auto fused = [&] {
      detail::NoGradGuard ng;
      (void)gnn::aggregate_fused(x, g, gnn::MessageType::Full, Reduce::Max);
    };
    auto materialized = [&] {
      detail::NoGradGuard ng;
      (void)gnn::aggregate_materialized(x, g, gnn::MessageType::Full,
                                        Reduce::Max);
    };
    const std::string problem = std::to_string(points_n) +
                                " pts k=" + std::to_string(k) +
                                " c=" + std::to_string(channels) + " full/max";
    const double mat_ms = time_at(1, reps, materialized);
    const double fused_ms = time_at(hw, reps, fused);
    report_pair(json, "aggregate_fused_vs_mat", problem, mat_ms, fused_ms, hw);
  }

  // ---- end-to-end: Engine::search on the quickstart workload --------------
  {
    api::EngineConfig cfg =
        quick ? api::EngineConfig::tiny() : api::EngineConfig{};
    if (!quick) {
      cfg.samples_per_class = 10;  // the quickstart example's scale
      cfg.iterations = 8;
    }
    auto search_ms = [&](std::int64_t threads) {
      cfg.num_threads = threads;
      bench::Timer t;
      api::Result<api::Engine> engine = api::Engine::create(cfg);
      if (!engine.ok()) {
        std::fprintf(stderr, "engine: %s\n",
                     engine.status().to_string().c_str());
        return -1.0;
      }
      api::Result<api::SearchReport> r = engine.value().search();
      if (!r.ok()) {
        std::fprintf(stderr, "search: %s\n", r.status().to_string().c_str());
        return -1.0;
      }
      return t.ms();
    };
    const double serial_ms = search_ms(1);
    const double parallel_ms = search_ms(hw);
    if (serial_ms >= 0.0 && parallel_ms >= 0.0)
      report_pair(json, "engine_search",
                  quick ? "tiny config" : "quickstart workload", serial_ms,
                  parallel_ms, hw);
    core::set_num_threads(0);  // restore the default pool width
  }

  json.write();
  return 0;
}
