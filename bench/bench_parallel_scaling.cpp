// bench_parallel_scaling — serial vs pooled wall-clock for the three layers
// the parallel backbone rewired: tensor kernels (matmul), GNN operators
// (EdgeConv forward, fused vs materializing Aggregate), graph construction
// (KNN), and the end-to-end Engine::search() on the quickstart workload.
//
// Every comparison runs the identical computation at num_threads=1 (the
// historical serial path) and at the hardware thread count; the kernels are
// bit-for-bit thread-count invariant, so the speedup is pure scheduling.
// Results are printed and written to BENCH_parallel_scaling.json
// (wall-clock ms, pool width, problem size, git rev).
//
// Usage: bench_parallel_scaling [--quick]
//   --quick  small problem sizes and a tiny search (CI smoke-perf job).
#include <algorithm>
#include <cstring>
#include <string>

#include "api/engine.hpp"
#include "bench_util.hpp"
#include "gnn/gnn.hpp"
#include "graph/graph.hpp"
#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"

namespace {

using namespace hg;

std::vector<float> random_values(std::int64_t n, Rng& rng) {
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng.normal();
  return v;
}

/// Wall time plus the pool width the timed region ACTUALLY ran with —
/// the pool may clamp a request (e.g. to the hardware thread count), and
/// the JSON records must name the effective width, not the asked-for one.
struct Timed {
  double ms = 0.0;
  std::int64_t threads = 1;
};

/// Best-of-`reps` wall time of `fn` at the given pool width.
template <typename Fn>
Timed time_at(std::int64_t threads, int reps, Fn&& fn) {
  core::ScopedNumThreads scoped(threads);
  Timed out;
  out.threads = core::num_threads();
  out.ms = 1e300;
  for (int r = 0; r < reps; ++r) {
    bench::Timer t;
    fn();
    out.ms = std::min(out.ms, t.ms());
  }
  return out;
}

void report_pair(bench::JsonReporter& json, const std::string& name,
                 const std::string& problem, const Timed& serial,
                 const Timed& parallel) {
  const double speedup = parallel.ms > 0.0 ? serial.ms / parallel.ms : 0.0;
  std::printf("%-28s %-26s serial %9.2f ms | %2lld threads %9.2f ms | %.2fx\n",
              name.c_str(), problem.c_str(), serial.ms,
              static_cast<long long>(parallel.threads), parallel.ms, speedup);
  json.add(name + "/serial", serial.ms, problem, 0.0, "", serial.threads);
  json.add(name + "/parallel", parallel.ms, problem, speedup, "x",
           parallel.threads);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;

  const std::int64_t hw = core::hardware_threads();
  bench::JsonReporter json("parallel_scaling");
  bench::print_header("parallel scaling (hardware threads: " +
                      std::to_string(hw) + (quick ? ", quick mode)" : ")"));

  Rng rng(2024);
  const int reps = quick ? 2 : 3;

  // ---- tensor kernel: dense matmul -----------------------------------------
  {
    const std::int64_t n = quick ? 256 : 512;
    const auto av = random_values(n * n, rng);
    const auto bv = random_values(n * n, rng);
    Tensor a = Tensor::from_vector({n, n}, av);
    Tensor b = Tensor::from_vector({n, n}, bv);
    auto run = [&] {
      detail::NoGradGuard ng;
      Tensor c = matmul(a, b);
      (void)c;
    };
    report_pair(json, "matmul",
                std::to_string(n) + "x" + std::to_string(n),
                time_at(1, reps, run), time_at(hw, reps, run));
  }

  // ---- graph construction: KNN ---------------------------------------------
  const std::int64_t points_n = quick ? 1024 : 4096;
  const std::int64_t k = 16;
  const auto pts = random_values(points_n * 3, rng);
  {
    auto run = [&] { (void)graph::knn_graph(pts, points_n, k); };
    report_pair(json, "knn_graph",
                std::to_string(points_n) + " pts k=" + std::to_string(k),
                time_at(1, reps, run), time_at(hw, reps, run));
  }

  // ---- GNN operator: EdgeConv forward --------------------------------------
  const graph::EdgeList g = graph::knn_graph(pts, points_n, k);
  const std::int64_t channels = 64;
  const auto feat = random_values(points_n * channels, rng);
  {
    gnn::EdgeConv conv(channels, channels, rng);
    conv.set_training(false);
    Tensor x = Tensor::from_vector({points_n, channels}, feat);
    auto run = [&] {
      detail::NoGradGuard ng;
      (void)conv.forward(x, g);
    };
    report_pair(json, "edgeconv_forward",
                std::to_string(points_n) + " pts k=" + std::to_string(k) +
                    " c=" + std::to_string(channels),
                time_at(1, reps, run), time_at(hw, reps, run));
  }

  // ---- fused vs materializing Aggregate (Full message, max reduce) ---------
  {
    Tensor x = Tensor::from_vector({points_n, channels}, feat);
    auto fused = [&] {
      detail::NoGradGuard ng;
      (void)gnn::aggregate_fused(x, g, gnn::MessageType::Full, Reduce::Max);
    };
    auto materialized = [&] {
      detail::NoGradGuard ng;
      (void)gnn::aggregate_materialized(x, g, gnn::MessageType::Full,
                                        Reduce::Max);
    };
    const std::string problem = std::to_string(points_n) +
                                " pts k=" + std::to_string(k) +
                                " c=" + std::to_string(channels) + " full/max";
    const Timed mat = time_at(1, reps, materialized);
    const Timed fused_t = time_at(hw, reps, fused);
    report_pair(json, "aggregate_fused_vs_mat", problem, mat, fused_t);
  }

  // ---- end-to-end: Engine::search on the quickstart workload --------------
  {
    api::EngineConfig cfg =
        quick ? api::EngineConfig::tiny() : api::EngineConfig{};
    if (!quick) {
      cfg.samples_per_class = 10;  // the quickstart example's scale
      cfg.iterations = 8;
    }
    auto search_at = [&](std::int64_t threads) {
      cfg.num_threads = threads;
      Timed out;
      {
        // The engine resolves cfg.num_threads through the same pool clamp
        // as everyone else; record the width it will actually get.
        core::ScopedNumThreads probe(threads);
        out.threads = core::num_threads();
      }
      bench::Timer t;
      api::Result<api::Engine> engine = api::Engine::create(cfg);
      if (!engine.ok()) {
        std::fprintf(stderr, "engine: %s\n",
                     engine.status().to_string().c_str());
        out.ms = -1.0;
        return out;
      }
      api::Result<api::SearchReport> r = engine.value().search();
      if (!r.ok()) {
        std::fprintf(stderr, "search: %s\n", r.status().to_string().c_str());
        out.ms = -1.0;
        return out;
      }
      out.ms = t.ms();
      return out;
    };
    const Timed serial = search_at(1);
    const Timed parallel = search_at(hw);
    if (serial.ms >= 0.0 && parallel.ms >= 0.0)
      report_pair(json, "engine_search",
                  quick ? "tiny config" : "quickstart workload", serial,
                  parallel);
    core::set_num_threads(0);  // restore the default pool width
  }

  json.write();
  return 0;
}
