// Fig. 1 reproduction: DGCNN vs HGNAS-designed models — inference latency
// and peak memory vs point count on the Raspberry Pi (left panel), and
// speedup / memory-reduction across all four edge devices (right panel).
//
// "Ours" is the paper's Fig. 10 Device_Fast network for each platform
// (hgnas::zoo), evaluated on the calibrated device models.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "hgnas/zoo.hpp"

int main() {
  hg::bench::JsonReporter bench_json("fig1_scaling");
  hg::bench::Timer bench_timer;
  using namespace hg;
  const std::vector<std::int64_t> point_counts = {128, 256, 512,
                                                  1024, 1536, 2048};

  bench::print_header("Fig. 1 (left): Raspberry Pi latency & peak memory");
  hw::Device pi = hw::make_device(hw::DeviceKind::RaspberryPi3B);
  std::printf("%8s %14s %14s %16s %16s\n", "points", "dgcnn_lat_s",
              "ours_lat_s", "dgcnn_mem_MB", "ours_mem_MB");
  for (auto n : point_counts) {
    hgnas::Workload w = bench::paper_workload();
    w.num_points = n;
    const hw::Trace dgcnn = hw::dgcnn_reference_trace(n);
    const hw::Trace ours = lower_to_trace(hgnas::zoo::pi_fast(), w);
    auto fmt = [&](const hw::Trace& t, bool latency) {
      if (pi.would_oom(t)) return std::string("OOM");
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.3f",
                    latency ? pi.latency_ms(t) / 1e3 : pi.peak_memory_mb(t));
      return std::string(buf);
    };
    std::printf("%8lld %14s %14s %16s %16s\n", static_cast<long long>(n),
                fmt(dgcnn, true).c_str(), fmt(ours, true).c_str(),
                fmt(dgcnn, false).c_str(), fmt(ours, false).c_str());
  }
  std::printf("(paper: DGCNN 4.14 s at 1024 points, OOM above 1536; "
              "total available memory ~1 GB)\n");

  bench::print_header(
      "Fig. 1 (right): speedup & memory efficiency across devices");
  std::printf("%-12s %12s %12s %10s %12s %12s %10s\n", "device",
              "dgcnn_fps", "ours_fps", "speedup", "dgcnn_MB", "ours_MB",
              "mem_red");
  for (int d = 0; d < hw::kNumDevices; ++d) {
    const auto kind = static_cast<hw::DeviceKind>(d);
    hw::Device dev = hw::make_device(kind);
    const hw::Trace dgcnn = hw::dgcnn_reference_trace(1024);
    const hw::Trace ours =
        lower_to_trace(hgnas::zoo::fast_for(kind), bench::paper_workload());
    const double dgcnn_ms = dev.latency_ms(dgcnn);
    const double ours_ms = dev.latency_ms(ours);
    const double dgcnn_mb = dev.peak_memory_mb(dgcnn);
    const double ours_mb = dev.peak_memory_mb(ours);
    std::printf("%-12s %12.2f %12.2f %9.1fx %12.1f %12.1f %9.1f%%\n",
                bench::short_device_name(kind), 1e3 / dgcnn_ms,
                1e3 / ours_ms, dgcnn_ms / ours_ms, dgcnn_mb, ours_mb,
                100.0 * (1.0 - ours_mb / dgcnn_mb));
  }
  std::printf("(paper: ~10.6x / 10.2x / 7.5x / 7.4x speedup and up to "
              "88.2%% peak-memory reduction)\n");
  bench_json.add("total", bench_timer.ms(), "whole bench");
  return 0;
}
