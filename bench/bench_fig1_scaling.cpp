// Fig. 1 reproduction: DGCNN vs HGNAS-designed models — inference latency
// and peak memory vs point count on the Raspberry Pi (left panel), and
// speedup / memory-reduction across all four edge devices (right panel).
//
// "Ours" is the paper's Fig. 10 Device_Fast network for each platform,
// resolved by baseline name through the facade ("pi-fast", ...); everything
// runs through Engine::profile_baseline on the calibrated device models.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"

int main() {
  hg::bench::JsonReporter bench_json("fig1_scaling");
  hg::bench::Timer bench_timer;
  using namespace hg;
  const std::vector<std::int64_t> point_counts = {128, 256, 512,
                                                  1024, 1536, 2048};

  bench::print_header("Fig. 1 (left): Raspberry Pi latency & peak memory");
  api::Engine pi = bench::unwrap(
      api::Engine::create(bench::default_engine_config("raspberry-pi-3b")),
      "create(pi)");
  std::printf("%8s %14s %14s %16s %16s\n", "points", "dgcnn_lat_s",
              "ours_lat_s", "dgcnn_mem_MB", "ours_mem_MB");
  for (auto n : point_counts) {
    api::Workload w = bench::paper_workload();
    w.num_points = n;
    const api::ProfileReport dgcnn =
        bench::unwrap(pi.profile_baseline("dgcnn", w), "profile dgcnn");
    const api::ProfileReport ours =
        bench::unwrap(pi.profile_baseline("pi-fast", w), "profile pi-fast");
    auto fmt = [](const api::ProfileReport& r, bool latency) {
      if (r.oom) return std::string("OOM");
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.3f",
                    latency ? r.latency_ms / 1e3 : r.peak_memory_mb);
      return std::string(buf);
    };
    std::printf("%8lld %14s %14s %16s %16s\n", static_cast<long long>(n),
                fmt(dgcnn, true).c_str(), fmt(ours, true).c_str(),
                fmt(dgcnn, false).c_str(), fmt(ours, false).c_str());
  }
  std::printf("(paper: DGCNN 4.14 s at 1024 points, OOM above 1536; "
              "total available memory ~1 GB)\n");

  bench::print_header(
      "Fig. 1 (right): speedup & memory efficiency across devices");
  std::printf("%-12s %12s %12s %10s %12s %12s %10s\n", "device",
              "dgcnn_fps", "ours_fps", "speedup", "dgcnn_MB", "ours_MB",
              "mem_red");
  for (const std::string& name : api::Registry::global().device_names()) {
    api::Engine engine = bench::unwrap(
        api::Engine::create(bench::default_engine_config(name)),
        "create(device)");
    const api::ProfileReport dgcnn =
        bench::unwrap(engine.profile_baseline("dgcnn"), "profile dgcnn");
    const api::ProfileReport ours = bench::unwrap(
        engine.profile_baseline(bench::fast_baseline_for(name)),
        "profile ours");
    std::printf("%-12s %12.2f %12.2f %9.1fx %12.1f %12.1f %9.1f%%\n",
                bench::short_device_name(name), 1e3 / dgcnn.latency_ms,
                1e3 / ours.latency_ms, dgcnn.latency_ms / ours.latency_ms,
                dgcnn.peak_memory_mb, ours.peak_memory_mb,
                100.0 * (1.0 - ours.peak_memory_mb / dgcnn.peak_memory_mb));
  }
  std::printf("(paper: ~10.6x / 10.2x / 7.5x / 7.4x speedup and up to "
              "88.2%% peak-memory reduction)\n");
  bench_json.add("total", bench_timer.ms(), "whole bench");
  return 0;
}
