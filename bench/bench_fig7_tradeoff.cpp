// Fig. 7 reproduction: accuracy / speedup trade-off as a function of the
// objective scaling ratio alpha : beta (Eq. 1/3), on the RTX3080.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "hgnas/model.hpp"

int main() {
  using namespace hg;
  hw::Device dev = hw::make_device(hw::DeviceKind::Rtx3080);
  const double dgcnn_ms = dev.latency_ms(hw::dgcnn_reference_trace(1024));
  pointcloud::Dataset data(16, 32, 42);

  const std::vector<double> ratios = {0.1, 0.2, 1.0, 2.0, 5.0, 10.0};

  bench::print_header("Fig. 7: trade-off by scaling ratio alpha:beta");
  std::printf("%10s %14s %12s %12s\n", "a:b", "latency_ms", "speedup",
              "accuracy_%");
  for (double ratio : ratios) {
    Rng rng(static_cast<std::uint64_t>(ratio * 1000) + 3);
    hgnas::SuperNet supernet(bench::default_space(),
                             bench::default_supernet(), rng);
    hgnas::SearchConfig cfg = bench::default_search_config(dev);
    cfg.alpha = ratio;  // ratio = alpha / beta with beta fixed at 1
    cfg.beta = 1.0;
    cfg.latency_constraint_ms = dgcnn_ms;
    pointcloud::Dataset search_data(12, 32, 11);
    hgnas::HgnasSearch search(
        supernet, search_data, cfg,
        hgnas::make_oracle_evaluator(dev, bench::paper_workload()));
    hgnas::SearchResult r = search.run_multistage(rng);

    // Final accuracy of the materialised winner.
    Rng trng(static_cast<std::uint64_t>(ratio * 7) + 5);
    hgnas::GnnModel model(r.best_arch, bench::train_workload(), trng);
    hgnas::TrainConfig tcfg;
    tcfg.epochs = 15;
    tcfg.lr = 2e-3f;
    const auto eval = train_model(model, data, tcfg, trng);

    std::printf("%10.1f %14.1f %11.1fx %12.1f\n", ratio, r.best_latency_ms,
                dgcnn_ms / r.best_latency_ms, 100.0 * eval.overall_acc);
  }
  std::printf("(paper: small a:b favours speed — up to ~11x; large a:b "
              "favours accuracy at lower speedup)\n");
  return 0;
}
