// Fig. 7 reproduction: accuracy / speedup trade-off as a function of the
// objective scaling ratio alpha : beta (Eq. 1/3), on the RTX3080 — each
// ratio is one engine run followed by the facade's train() verb on the
// winner.
#include <cstdio>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "api/engine.hpp"

int main() {
  hg::bench::JsonReporter bench_json("fig7_tradeoff");
  hg::bench::Timer bench_timer;
  using namespace hg;

  const std::vector<double> ratios = {0.1, 0.2, 1.0, 2.0, 5.0, 10.0};

  bench::print_header("Fig. 7: trade-off by scaling ratio alpha:beta");
  std::printf("%10s %14s %12s %12s\n", "a:b", "latency_ms", "speedup",
              "accuracy_%");
  for (double ratio : ratios) {
    api::EngineConfig cfg = bench::default_engine_config("rtx3080");
    cfg.alpha = ratio;  // ratio = alpha / beta with beta fixed at 1
    cfg.beta = 1.0;
    cfg.constrain_to_reference = true;
    cfg.samples_per_class = 12;
    cfg.dataset_seed = 11;
    cfg.train_epochs = 15;
    cfg.train_lr = 2e-3f;
    cfg.seed = static_cast<std::uint64_t>(ratio * 1000) + 3;
    api::Result<api::Engine> created = api::Engine::create(cfg);
    if (!created.ok()) {
      std::fprintf(stderr, "%s\n", created.status().to_string().c_str());
      return 1;
    }
    api::Engine engine = std::move(created).value();

    api::Result<api::SearchReport> searched = engine.search();
    if (!searched.ok()) {
      std::fprintf(stderr, "%s\n", searched.status().to_string().c_str());
      return 1;
    }
    const api::SearchResult& r = searched.value().result;

    // Final accuracy of the materialised winner.
    const api::Result<api::TrainReport> trained = engine.train(r.best_arch);
    if (!trained.ok()) {
      std::fprintf(stderr, "%s\n", trained.status().to_string().c_str());
      return 1;
    }

    std::printf("%10.1f %14.1f %11.1fx %12.1f\n", ratio, r.best_latency_ms,
                engine.reference_latency_ms() / r.best_latency_ms,
                100.0 * trained.value().overall_acc);
  }
  std::printf("(paper: small a:b favours speed — up to ~11x; large a:b "
              "favours accuracy at lower speedup)\n");
  bench_json.add("total", bench_timer.ms(), "whole bench");
  return 0;
}
