// bench_serve_throughput — the serving layer's two headline numbers:
//
//  1. Batched predictor inference: N latency queries answered by ONE packed
//     block-diagonal GCN forward (Engine::predict_batch) vs N serial
//     predict_latency calls. Answers are bit-identical (asserted in
//     tests/test_predictor.cpp); the speedup is pure per-forward overhead
//     amortisation.
//  2. Service throughput: requests/sec of a mixed pure load (predictions +
//     deployment profiles) through serve::Service at 1 / 2 / 4 workers,
//     one shared EvalContext, num_threads pinned to 1 so worker scaling is
//     request-level concurrency, not kernel parallelism.
//
// Results are printed and written to BENCH_serve_throughput.json; CI's
// smoke-perf job gates the --quick run against
// bench/baseline/BENCH_serve_throughput.json.
//
// Usage: bench_serve_throughput [--quick]
#include <cstring>
#include <future>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "serve/service.hpp"

namespace {

using namespace hg;

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;

  bench::JsonReporter json("serve_throughput");
  bench::print_header(std::string("serve throughput") +
                      (quick ? " (quick mode)" : ""));

  api::EngineConfig cfg = api::EngineConfig::tiny();
  cfg.device = "jetson-tx2";
  cfg.evaluator = "predictor";
  cfg.predictor_samples = quick ? 60 : 200;
  cfg.predictor_epochs = quick ? 8 : 20;
  // Pin the kernel pool to one thread: the numbers below then isolate
  // request-level effects (coalescing, worker concurrency) and stay
  // comparable across differently-sized machines.
  cfg.num_threads = 1;

  bench::Timer startup;
  api::Result<std::shared_ptr<api::EvalContext>> ctx =
      api::EvalContext::create(cfg);
  if (!ctx.ok()) {
    std::fprintf(stderr, "context: %s\n", ctx.status().to_string().c_str());
    return 1;
  }
  std::printf("context ready (predictor fitted) in %.0f ms\n", startup.ms());

  api::Engine engine =
      bench::unwrap(api::Engine::create(cfg, ctx.value()), "engine");
  // Quick mode still uses enough architectures that the gated records sit
  // well above check_perf_regression.py's 5 ms noise floor.
  const std::int64_t n_archs = quick ? 128 : 256;
  std::vector<api::Arch> archs;
  archs.reserve(static_cast<std::size_t>(n_archs));
  for (std::int64_t i = 0; i < n_archs; ++i)
    archs.push_back(engine.sample_arch());

  // ---- batched vs serial predictor inference -------------------------------
  {
    const int reps = quick ? 5 : 8;
    // Warm both paths (allocator, caches) before timing.
    for (const api::Arch& a : archs) (void)engine.predict_latency(a);
    (void)engine.predict_batch(archs);
    double serial_ms = 1e300, batch_ms = 1e300;
    for (int r = 0; r < reps; ++r) {
      bench::Timer t;
      for (const api::Arch& a : archs) (void)engine.predict_latency(a);
      serial_ms = std::min(serial_ms, t.ms());
    }
    for (int r = 0; r < reps; ++r) {
      bench::Timer t;
      (void)engine.predict_batch(archs);
      batch_ms = std::min(batch_ms, t.ms());
    }
    const double speedup = batch_ms > 0.0 ? serial_ms / batch_ms : 0.0;
    const std::string problem = std::to_string(n_archs) + " archs";
    std::printf("predict serial  %-12s %9.2f ms\n", problem.c_str(),
                serial_ms);
    std::printf("predict batched %-12s %9.2f ms   %.2fx\n", problem.c_str(),
                batch_ms, speedup);
    json.add("predict/serial", serial_ms, problem);
    json.add("predict/batched", batch_ms, problem, speedup, "x");

    // The deployment configuration: the packed forward hands the pool one
    // large matmul / fused-scatter per layer where per-query forwards stay
    // below the parallel grain — so batching is also what unlocks kernel
    // parallelism. (Identical numbers to the pool-of-1 records on a
    // single-core host.)
    const std::int64_t hw = core::hardware_threads();
    core::ScopedNumThreads pooled(hw);
    double pooled_ms = 1e300;
    (void)engine.predict_batch(archs);
    for (int r = 0; r < reps; ++r) {
      bench::Timer t;
      (void)engine.predict_batch(archs);
      pooled_ms = std::min(pooled_ms, t.ms());
    }
    const double pooled_speedup =
        pooled_ms > 0.0 ? serial_ms / pooled_ms : 0.0;
    std::printf("predict batched %-12s %9.2f ms   %.2fx (%lld threads)\n",
                problem.c_str(), pooled_ms, pooled_speedup,
                static_cast<long long>(hw));
    json.add("predict/batched_pool", pooled_ms, problem, pooled_speedup, "x",
             hw);
  }

  // ---- service throughput vs worker count ----------------------------------
  const std::int64_t rounds = quick ? 4 : 16;
  for (const std::int64_t workers : {1, 2, 4}) {
    serve::ServiceConfig scfg;
    scfg.num_workers = workers;
    api::Result<std::shared_ptr<serve::Service>> service =
        serve::Service::create(cfg, ctx.value(), scfg);
    if (!service.ok()) {
      std::fprintf(stderr, "service: %s\n",
                   service.status().to_string().c_str());
      return 1;
    }
    bench::Timer t;
    std::vector<std::future<api::Result<api::LatencyReport>>> lat;
    std::vector<std::future<api::Result<api::ProfileReport>>> prof;
    for (std::int64_t round = 0; round < rounds; ++round) {
      for (const api::Arch& a : archs) {
        lat.push_back(service.value()->submit(serve::PredictLatencyRequest{a}));
        prof.push_back(service.value()->submit(serve::ProfileRequest{a}));
      }
    }
    for (auto& f : lat)
      if (!f.get().ok()) return 1;
    for (auto& f : prof)
      if (!f.get().ok()) return 1;
    const double wall_ms = t.ms();
    service.value()->shutdown();
    const auto total =
        static_cast<double>(2 * rounds * n_archs);
    const double rps = wall_ms > 0.0 ? total / (wall_ms / 1e3) : 0.0;
    const std::string problem =
        std::to_string(static_cast<long long>(total)) + " mixed requests";
    std::printf("service %lld worker%s  %-22s %9.2f ms   %8.0f req/s\n",
                static_cast<long long>(workers), workers == 1 ? " " : "s",
                problem.c_str(), wall_ms, rps);
    json.add("serve/workers=" + std::to_string(workers), wall_ms, problem,
             rps, "req/s", workers);
  }

  json.write();
  return 0;
}
