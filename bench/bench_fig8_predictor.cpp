// Fig. 8 reproduction: GNN latency-predictor accuracy on each device —
// MAPE, fraction within a 10% error bound, and a sample of
// (measured, predicted) pairs for the scatter plots.
#include <cstdio>

#include "bench_util.hpp"
#include "predictor/predictor.hpp"

int main() {
  hg::bench::JsonReporter bench_json("fig8_predictor");
  hg::bench::Timer bench_timer;
  using namespace hg;
  const hgnas::SpaceConfig space = bench::default_space();
  const hgnas::Workload w = bench::paper_workload();

  bench::print_header("Fig. 8: predictor accuracy per device");
  std::printf("%-12s %10s %14s %12s\n", "device", "MAPE_%", "within_10pct_%",
              "rmse_ms");

  for (int d = 0; d < hw::kNumDevices; ++d) {
    const auto kind = static_cast<hw::DeviceKind>(d);
    hw::Device dev = hw::make_device(kind);
    // Paper: 30K archs (21K train / 9K val). CPU scale: 1200 / 400.
    auto train = predictor::collect_labeled_archs(dev, space, w, 1200,
                                                  1000 + d);
    auto test = predictor::collect_labeled_archs(dev, space, w, 400,
                                                 2000 + d);
    Rng rng(3000 + static_cast<std::uint64_t>(d));
    predictor::PredictorConfig cfg;  // scaled GCN {64,128,128} + MLP
    cfg.epochs = 50;
    predictor::LatencyPredictor pred(cfg, w, rng);
    pred.fit(train, rng);
    const auto m = pred.evaluate(test);
    std::printf("%-12s %10.1f %14.1f %12.1f\n",
                bench::short_device_name(kind), 100.0 * m.mape,
                100.0 * m.within_10pct, m.rmse_ms);

    // Scatter sample: first 8 test points.
    std::printf("    measured->predicted (ms): ");
    for (int i = 0; i < 8; ++i)
      std::printf("%.0f->%.0f  ", test[static_cast<std::size_t>(i)].latency_ms,
                  pred.predict_ms(test[static_cast<std::size_t>(i)].arch));
    std::printf("\n");
  }
  std::printf("(paper: ~6%% MAPE on RTX/i7/TX2, ~19%% on the noisy Pi; "
              ">80%% within the 10%% bound)\n");
  bench_json.add("total", bench_timer.ms(), "whole bench");
  return 0;
}
