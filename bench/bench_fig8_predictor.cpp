// Fig. 8 reproduction: GNN latency-predictor accuracy on each device —
// MAPE, fraction within a 10% error bound, and a sample of
// (measured, predicted) pairs for the scatter plots.
//
// One EvalContext per device fits the predictor exactly once (at engine
// creation); Engine::evaluate_predictor scores it on a freshly-collected
// held-out set and carries the scatter sample.
#include <cstdio>
#include <string>

#include "bench_util.hpp"

int main() {
  hg::bench::JsonReporter bench_json("fig8_predictor");
  hg::bench::Timer bench_timer;
  using namespace hg;

  bench::print_header("Fig. 8: predictor accuracy per device");
  std::printf("%-12s %10s %14s %12s\n", "device", "MAPE_%", "within_10pct_%",
              "rmse_ms");

  const std::vector<std::string> devices =
      api::Registry::global().device_names();
  for (std::size_t d = 0; d < devices.size(); ++d) {
    api::EngineConfig cfg = bench::default_engine_config(devices[d]);
    cfg.evaluator = "predictor";
    // Paper: 30K archs (21K train / 9K val). CPU scale: 1200 / 400.
    cfg.predictor_samples = 1200;
    cfg.predictor_epochs = 50;
    cfg.seed = 1000 + static_cast<std::uint64_t>(d);
    api::Engine engine =
        bench::unwrap(api::Engine::create(cfg), "create(predictor engine)");

    const api::PredictorReport m = bench::unwrap(
        engine.evaluate_predictor(400, 2000 + static_cast<std::uint64_t>(d)),
        "evaluate predictor");
    std::printf("%-12s %10.1f %14.1f %12.1f\n",
                bench::short_device_name(devices[d]), 100.0 * m.mape,
                100.0 * m.within_10pct, m.rmse_ms);

    std::printf("    measured->predicted (ms): ");
    for (std::size_t i = 0; i < m.sample_measured_ms.size(); ++i)
      std::printf("%.0f->%.0f  ", m.sample_measured_ms[i],
                  m.sample_predicted_ms[i]);
    std::printf("\n");
  }
  std::printf("(paper: ~6%% MAPE on RTX/i7/TX2, ~19%% on the noisy Pi; "
              ">80%% within the 10%% bound)\n");
  bench_json.add("total", bench_timer.ms(), "whole bench");
  return 0;
}
