#!/usr/bin/env python3
"""Gate BENCH_*.json records against a committed baseline.

Usage: check_perf_regression.py <current.json> <baseline.json> [threshold]
           [--require-speedup SLOW:FAST:RATIO]...

Fails (exit 1) when any record's wall_ms regresses more than `threshold`x
(default 1.5) against the same-named record in the baseline file, and the
measurement is above the noise floor. Records missing on either side are
reported but do not fail the gate (bench contents may evolve); improvements
are reported for the log.

--require-speedup SLOW:FAST:RATIO (repeatable) additionally asserts a
relationship WITHIN the current file: record SLOW's wall_ms must be at
least RATIO times record FAST's wall_ms. This is how CI pins the committed
curves — e.g. `serve/workers=1:serve/workers=4:1.8` (worker scaling) or
`predict/remote_lone:predict/remote_batched:2` (wire batching) — without
depending on the absolute speed of the runner. A named record missing from
the current file fails the gate (exit 1): silently skipping would let a
renamed bench retire the guarantee.

The baseline lives in bench/baseline/ and is refreshed deliberately, by
committing a new BENCH_*.json produced on the reference configuration —
that keeps the perf trajectory an explicit, reviewable artifact.
"""

import argparse
import json
import os
import sys

# Records faster than this are timer/scheduler noise, not regressions.
NOISE_FLOOR_MS = 5.0


def die(msg):
    """One-line usage/input error, exit 2 (distinct from exit 1 = a real
    perf regression, so CI annotations stay unambiguous)."""
    print(msg, file=sys.stderr)
    sys.exit(2)


def load_records(path):
    """Parse a BENCH_*.json into {name: record}; exits 2 with a one-line
    error on a missing or malformed file (a CI misconfiguration, not a
    perf regression — the traceback would bury the actual problem)."""
    try:
        with open(path) as f:
            data = json.load(f)
    except OSError as e:
        die(f"error: cannot read bench records {path!r}: {e.strerror}")
    except json.JSONDecodeError as e:
        die(f"error: {path!r} is not valid JSON (line {e.lineno}: {e.msg})")
    records = data.get("records") if isinstance(data, dict) else None
    if not isinstance(records, list):
        die(f"error: {path!r} has no 'records' array — not a "
            "BENCH_*.json file?")
    try:
        return {r["name"]: r for r in records}
    except (KeyError, TypeError):
        die(f"error: {path!r} has a record without a 'name' field")


def parse_speedup_spec(spec):
    """'slow:fast:ratio' -> (slow, fast, float(ratio)); exits 2 on a
    malformed spec (a CI misconfiguration, not a perf failure)."""
    parts = spec.rsplit(":", 1)
    if len(parts) != 2 or ":" not in parts[0]:
        die(f"error: --require-speedup spec {spec!r} is not SLOW:FAST:RATIO")
    slow, fast = parts[0].split(":", 1)
    try:
        ratio = float(parts[1])
    except ValueError:
        die(f"error: --require-speedup ratio {parts[1]!r} is not a number")
    if not slow or not fast or ratio <= 0:
        die(f"error: --require-speedup spec {spec!r} is not SLOW:FAST:RATIO")
    return slow, fast, ratio


def check_speedups(current, specs):
    """Returns a list of human-readable failures for unmet SLOW:FAST:RATIO
    assertions over the current records."""
    failures = []
    for slow, fast, required in specs:
        missing = [n for n in (slow, fast) if n not in current]
        if missing:
            failures.append(
                f"required record(s) missing from current run: "
                f"{', '.join(repr(n) for n in missing)}")
            continue
        try:
            slow_ms = float(current[slow]["wall_ms"])
            fast_ms = float(current[fast]["wall_ms"])
        except (KeyError, TypeError, ValueError):
            die(f"error: speedup records {slow!r}/{fast!r} have a missing "
                "or non-numeric 'wall_ms' field")
        actual = slow_ms / fast_ms if fast_ms > 0 else float("inf")
        verdict = "OK" if actual >= required else "TOO SLOW"
        print(f"  {verdict:>10}  {fast}: {actual:.2f}x faster than {slow} "
              f"(required {required:.2f}x)")
        if actual < required:
            failures.append(
                f"{fast} is only {actual:.2f}x faster than {slow} "
                f"(required {required:.2f}x: {slow_ms:.1f} ms vs "
                f"{fast_ms:.1f} ms)")
    return failures


def main():
    parser = argparse.ArgumentParser(
        add_help=False, usage=argparse.SUPPRESS)
    parser.add_argument("current")
    parser.add_argument("baseline")
    parser.add_argument("threshold", nargs="?", default=None)
    parser.add_argument("--require-speedup", action="append", default=[],
                        dest="require_speedup", metavar="SLOW:FAST:RATIO")
    try:
        args = parser.parse_args()
    except SystemExit:
        print(__doc__)
        return 2
    current_path, baseline_path = args.current, args.baseline
    threshold = float(args.threshold) if args.threshold is not None else float(
        os.environ.get("HG_PERF_THRESHOLD", "1.5"))
    speedup_specs = [parse_speedup_spec(s) for s in args.require_speedup]

    current = load_records(current_path)
    baseline = load_records(baseline_path)

    failures = []
    compared = 0
    for name, rec in sorted(current.items()):
        base = baseline.get(name)
        if base is None:
            print(f"  new record (no baseline): {name}")
            continue
        try:
            cur_ms = float(rec["wall_ms"])
            base_ms = float(base["wall_ms"])
        except (KeyError, TypeError, ValueError):
            die(f"error: record {name!r} has a missing or non-numeric "
                "'wall_ms' field")
        if rec.get("threads") != base.get("threads"):
            print(f"  skipped (thread count differs): {name}")
            continue
        if rec.get("problem") != base.get("problem"):
            # e.g. a baseline refreshed from a full run vs CI's --quick run:
            # different problem sizes are not comparable.
            print(f"  skipped (problem size differs): {name} "
                  f"({base.get('problem')!r} vs {rec.get('problem')!r})")
            continue
        if base_ms < NOISE_FLOOR_MS and cur_ms < NOISE_FLOOR_MS:
            continue
        compared += 1
        ratio = cur_ms / base_ms if base_ms > 0 else float("inf")
        verdict = "OK"
        if ratio > threshold:
            verdict = "REGRESSION"
            failures.append((name, base_ms, cur_ms, ratio))
        elif ratio < 1.0 / threshold:
            verdict = "improved"
        print(f"  {verdict:>10}  {name}: {base_ms:.1f} ms -> {cur_ms:.1f} ms "
              f"({ratio:.2f}x)")

    for name in sorted(set(baseline) - set(current)):
        print(f"  record dropped from bench: {name}")

    speedup_failures = check_speedups(current, speedup_specs)

    if failures:
        print(f"\n{len(failures)} record(s) regressed beyond {threshold}x:")
        for name, base_ms, cur_ms, ratio in failures:
            print(f"  {name}: {base_ms:.1f} ms -> {cur_ms:.1f} ms "
                  f"({ratio:.2f}x)")
    if speedup_failures:
        print(f"\n{len(speedup_failures)} required speedup(s) unmet:")
        for msg in speedup_failures:
            print(f"  {msg}")
    if failures or speedup_failures:
        return 1
    print(f"\nperf gate passed ({compared} records compared, "
          f"{len(speedup_specs)} speedup assertion(s), "
          f"threshold {threshold}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
