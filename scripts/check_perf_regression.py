#!/usr/bin/env python3
"""Gate BENCH_*.json records against a committed baseline.

Usage: check_perf_regression.py <current.json> <baseline.json> [threshold]

Fails (exit 1) when any record's wall_ms regresses more than `threshold`x
(default 1.5) against the same-named record in the baseline file, and the
measurement is above the noise floor. Records missing on either side are
reported but do not fail the gate (bench contents may evolve); improvements
are reported for the log.

The baseline lives in bench/baseline/ and is refreshed deliberately, by
committing a new BENCH_*.json produced on the reference configuration —
that keeps the perf trajectory an explicit, reviewable artifact.
"""

import json
import os
import sys

# Records faster than this are timer/scheduler noise, not regressions.
NOISE_FLOOR_MS = 5.0


def die(msg):
    """One-line usage/input error, exit 2 (distinct from exit 1 = a real
    perf regression, so CI annotations stay unambiguous)."""
    print(msg, file=sys.stderr)
    sys.exit(2)


def load_records(path):
    """Parse a BENCH_*.json into {name: record}; exits 2 with a one-line
    error on a missing or malformed file (a CI misconfiguration, not a
    perf regression — the traceback would bury the actual problem)."""
    try:
        with open(path) as f:
            data = json.load(f)
    except OSError as e:
        die(f"error: cannot read bench records {path!r}: {e.strerror}")
    except json.JSONDecodeError as e:
        die(f"error: {path!r} is not valid JSON (line {e.lineno}: {e.msg})")
    records = data.get("records") if isinstance(data, dict) else None
    if not isinstance(records, list):
        die(f"error: {path!r} has no 'records' array — not a "
            "BENCH_*.json file?")
    try:
        return {r["name"]: r for r in records}
    except (KeyError, TypeError):
        die(f"error: {path!r} has a record without a 'name' field")


def main():
    if len(sys.argv) < 3:
        print(__doc__)
        return 2
    current_path, baseline_path = sys.argv[1], sys.argv[2]
    threshold = float(sys.argv[3]) if len(sys.argv) > 3 else float(
        os.environ.get("HG_PERF_THRESHOLD", "1.5"))

    current = load_records(current_path)
    baseline = load_records(baseline_path)

    failures = []
    compared = 0
    for name, rec in sorted(current.items()):
        base = baseline.get(name)
        if base is None:
            print(f"  new record (no baseline): {name}")
            continue
        try:
            cur_ms = float(rec["wall_ms"])
            base_ms = float(base["wall_ms"])
        except (KeyError, TypeError, ValueError):
            die(f"error: record {name!r} has a missing or non-numeric "
                "'wall_ms' field")
        if rec.get("threads") != base.get("threads"):
            print(f"  skipped (thread count differs): {name}")
            continue
        if rec.get("problem") != base.get("problem"):
            # e.g. a baseline refreshed from a full run vs CI's --quick run:
            # different problem sizes are not comparable.
            print(f"  skipped (problem size differs): {name} "
                  f"({base.get('problem')!r} vs {rec.get('problem')!r})")
            continue
        if base_ms < NOISE_FLOOR_MS and cur_ms < NOISE_FLOOR_MS:
            continue
        compared += 1
        ratio = cur_ms / base_ms if base_ms > 0 else float("inf")
        verdict = "OK"
        if ratio > threshold:
            verdict = "REGRESSION"
            failures.append((name, base_ms, cur_ms, ratio))
        elif ratio < 1.0 / threshold:
            verdict = "improved"
        print(f"  {verdict:>10}  {name}: {base_ms:.1f} ms -> {cur_ms:.1f} ms "
              f"({ratio:.2f}x)")

    for name in sorted(set(baseline) - set(current)):
        print(f"  record dropped from bench: {name}")

    if failures:
        print(f"\n{len(failures)} record(s) regressed beyond {threshold}x:")
        for name, base_ms, cur_ms, ratio in failures:
            print(f"  {name}: {base_ms:.1f} ms -> {cur_ms:.1f} ms "
                  f"({ratio:.2f}x)")
        return 1
    print(f"\nperf gate passed ({compared} records compared, "
          f"threshold {threshold}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
