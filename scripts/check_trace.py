#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file exported by the trace collector.

Usage: check_trace.py <trace.json> [--require-span NAME]...

Fails (exit 1) unless the file parses as Chrome trace_event JSON
({"traceEvents": [...]}) and every complete event carries the keys a
trace viewer needs ("ph", "ts", "pid"; "X" events also "dur" and "name").
By default at least one serve-layer execution span ("serve.slice",
"serve.exclusive", "serve.pure" or "serve.predict_batch") must be present
— an empty-but-well-formed file means the tracer was never wired into the
request path, which is exactly the regression this gate exists to catch.

--require-span NAME (repeatable) replaces the default requirement with an
explicit list: each named span must appear at least once.

CI runs this over the trace a traced net_server_demo session writes
(--trace-out), after net_client_demo drove a mixed load through it.
"""

import argparse
import collections
import json
import sys

DEFAULT_EXECUTION_SPANS = (
    "serve.slice",
    "serve.exclusive",
    "serve.pure",
    "serve.predict_batch",
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace_event JSON file")
    parser.add_argument(
        "--require-span",
        action="append",
        default=[],
        metavar="NAME",
        help="require >= 1 event with this name (repeatable; replaces the "
        "default serve-execution-span requirement)",
    )
    args = parser.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"FAIL: cannot parse {args.trace}: {e}")
        return 1

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        print(f"FAIL: {args.trace} has no traceEvents array")
        return 1

    names = collections.Counter()
    for i, ev in enumerate(events):
        for key in ("ph", "ts", "pid"):
            if key not in ev:
                print(f"FAIL: event #{i} is missing '{key}': {ev}")
                return 1
        if ev["ph"] == "X":
            for key in ("name", "dur", "tid"):
                if key not in ev:
                    print(f"FAIL: complete event #{i} is missing '{key}': {ev}")
                    return 1
            if ev["dur"] < 0:
                print(f"FAIL: event #{i} has negative duration: {ev}")
                return 1
            names[ev["name"]] += 1

    required = args.require_span or []
    if required:
        missing = [name for name in required if names[name] == 0]
        if missing:
            print(f"FAIL: required span(s) never recorded: {', '.join(missing)}")
            print(f"  spans present: {dict(names)}")
            return 1
    else:
        if not any(names[name] for name in DEFAULT_EXECUTION_SPANS):
            print(
                "FAIL: no serve-layer execution span "
                f"({', '.join(DEFAULT_EXECUTION_SPANS)}) in the trace — "
                "tracing is not wired into the request path"
            )
            print(f"  spans present: {dict(names)}")
            return 1

    total = sum(names.values())
    print(f"OK: {len(events)} events, {total} complete spans across "
          f"{len(names)} names")
    for name, count in sorted(names.items()):
        print(f"  {name:24s} {count}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
