#!/usr/bin/env bash
# Run the repo's clang-tidy gate (.clang-tidy) over every first-party
# translation unit in src/. Any finding fails the script (the config sets
# WarningsAsErrors: '*'), so CI treats findings as regressions against a
# clean baseline.
#
# Usage: scripts/run_clang_tidy.sh [build-dir]
#
# The build dir must hold a compile_commands.json (configure with
# -DCMAKE_EXPORT_COMPILE_COMMANDS=ON); it is created with default options
# when missing. Override the binary with CLANG_TIDY=clang-tidy-18 etc.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build-tidy}"
tidy="${CLANG_TIDY:-clang-tidy}"

if ! command -v "${tidy}" >/dev/null 2>&1; then
  echo "error: ${tidy} not found (set CLANG_TIDY or install clang-tidy)" >&2
  exit 2
fi

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "-- no compile_commands.json in ${build_dir}; configuring" >&2
  cmake -B "${build_dir}" -S "${repo_root}" \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

# Every .cpp under src/ — the gate covers the libraries, not tests or
# benches (gtest/benchmark macros trip style checks they cannot satisfy).
mapfile -t sources < <(find "${repo_root}/src" -name '*.cpp' | sort)
echo "-- clang-tidy (${tidy}) over ${#sources[@]} files" >&2

# run-clang-tidy parallelizes when available; fall back to a serial loop.
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -clang-tidy-binary "${tidy}" -p "${build_dir}" -quiet \
    "${sources[@]}"
else
  status=0
  for f in "${sources[@]}"; do
    "${tidy}" -p "${build_dir}" --quiet "${f}" || status=1
  done
  exit "${status}"
fi
