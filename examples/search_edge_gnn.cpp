// search_edge_gnn — the full HGNAS pipeline for one target device:
//   1. collect latency-labelled random architectures on the device model,
//   2. train the GNN latency predictor on them,
//   3. run the multi-stage hierarchical search with the predictor in the
//      loop,
//   4. materialise the winner, train it, and compare against DGCNN.
//
// Usage: search_edge_gnn [device]   device in {rtx, i7, tx2, pi} (default tx2)
#include <cstdio>
#include <cstring>
#include <memory>

#include "baselines/baselines.hpp"
#include "hgnas/model.hpp"
#include "hgnas/search.hpp"
#include "predictor/predictor.hpp"

int main(int argc, char** argv) {
  using namespace hg;

  hw::DeviceKind kind = hw::DeviceKind::JetsonTx2;
  if (argc > 1) {
    if (!std::strcmp(argv[1], "rtx")) kind = hw::DeviceKind::Rtx3080;
    else if (!std::strcmp(argv[1], "i7")) kind = hw::DeviceKind::IntelI7_8700K;
    else if (!std::strcmp(argv[1], "tx2")) kind = hw::DeviceKind::JetsonTx2;
    else if (!std::strcmp(argv[1], "pi")) kind = hw::DeviceKind::RaspberryPi3B;
    else {
      std::fprintf(stderr, "unknown device '%s' (use rtx|i7|tx2|pi)\n",
                   argv[1]);
      return 1;
    }
  }
  hw::Device dev = hw::make_device(kind);
  std::printf("target device: %s\n", dev.name().c_str());

  hgnas::SpaceConfig space;  // 12 positions, paper setting
  hgnas::Workload workload;
  workload.num_points = 1024;
  workload.k = 20;
  workload.num_classes = 40;
  const double dgcnn_ms = dev.latency_ms(hw::dgcnn_reference_trace(1024));
  std::printf("DGCNN reference latency: %.1f ms\n", dgcnn_ms);

  // 1-2. Predictor.
  std::printf("\n== collecting measurements & training the predictor ==\n");
  Rng rng(2024);
  auto labeled = predictor::collect_labeled_archs(dev, space, workload,
                                                  600, 11);
  predictor::PredictorConfig pcfg;
  pcfg.epochs = 50;
  auto pred =
      std::make_shared<predictor::LatencyPredictor>(pcfg, workload, rng);
  const double train_mape = pred->fit(labeled, rng);
  std::printf("predictor training MAPE: %.1f%%\n", 100.0 * train_mape);

  // 3. Search.
  std::printf("\n== multi-stage hierarchical search ==\n");
  pointcloud::Dataset data(10, 32, 3);
  hgnas::SupernetConfig sn_cfg;
  sn_cfg.hidden = 16;
  sn_cfg.k = 6;
  sn_cfg.num_classes = 10;
  sn_cfg.head_hidden = 32;
  hgnas::SuperNet supernet(space, sn_cfg, rng);
  hgnas::SearchConfig cfg;
  cfg.space = space;
  cfg.workload = workload;
  cfg.population = 16;
  cfg.parents = 8;
  cfg.iterations = 12;
  cfg.eval_val_samples = 20;
  cfg.stage1_epochs = 1;
  cfg.stage2_epochs = 2;
  cfg.latency_scale_ms = dgcnn_ms;
  cfg.latency_constraint_ms = dgcnn_ms;  // hardware constraint C
  hgnas::HgnasSearch search(supernet, data, cfg,
                            predictor::make_predictor_evaluator(pred));
  hgnas::SearchResult result = search.run_multistage(rng);
  std::printf("best objective %.4f | predicted latency %.1f ms | "
              "%lld latency queries | %.1f simulated minutes\n",
              result.best_objective, result.best_latency_ms,
              static_cast<long long>(result.latency_queries),
              result.total_sim_time_s / 60.0);

  std::printf("\nsearched architecture (Fig. 10 style):\n%s",
              visualize(result.best_arch, workload).c_str());

  // 4. Ground truth + final training.
  const hw::Trace trace = lower_to_trace(result.best_arch, workload);
  std::printf("\n== deployment check on the device model ==\n");
  std::printf("analytical latency %.1f ms (DGCNN %.1f ms -> %.1fx faster)\n",
              dev.latency_ms(trace), dgcnn_ms,
              dgcnn_ms / dev.latency_ms(trace));
  std::printf("peak memory %.1f MB (DGCNN %.1f MB)\n",
              dev.peak_memory_mb(trace),
              dev.peak_memory_mb(hw::dgcnn_reference_trace(1024)));

  std::printf("\n== training the finalised network ==\n");
  hgnas::Workload train_w;
  train_w.num_points = 32;
  train_w.k = 6;
  train_w.num_classes = 10;
  hgnas::GnnModel model(result.best_arch, train_w, rng);
  hgnas::TrainConfig tcfg;
  tcfg.epochs = 10;
  const auto eval = train_model(model, data, tcfg, rng);
  std::printf("final accuracy: OA %.1f%%  mAcc %.1f%%  (params %.2f MB)\n",
              100.0 * eval.overall_acc, 100.0 * eval.balanced_acc,
              model.param_mb());
  return 0;
}
