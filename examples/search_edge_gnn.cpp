// search_edge_gnn — the full HGNAS pipeline for one target device, driven
// entirely through the hg::Engine facade:
//   1. configure an engine with the GNN latency predictor in the loop
//      (the engine collects labelled architectures and fits the predictor),
//   2. run the multi-stage hierarchical search,
//   3. profile the winner against the DGCNN reference on the device model,
//   4. materialise and train the winner.
//
// Usage: search_edge_gnn [device]   device is any registry name or alias
//                                   (rtx, i7, tx2, pi; default tx2)
#include <cstdio>
#include <utility>

#include "api/engine.hpp"

int main(int argc, char** argv) {
  using namespace hg;

  api::EngineConfig cfg;
  cfg.device = argc > 1 ? argv[1] : "tx2";
  cfg.evaluator = "predictor";   // §III-D: "use GNN to perceive GNNs"
  cfg.strategy = "multistage";   // Alg. 1
  cfg.constrain_to_reference = true;  // hardware constraint C = DGCNN ms
  cfg.predictor_samples = 600;
  cfg.predictor_epochs = 50;
  cfg.eval_val_samples = 20;

  std::printf("== building the engine (collects measurements, trains the "
              "predictor) ==\n");
  api::Result<api::Engine> created = api::Engine::create(cfg);
  if (!created.ok()) {
    // Unknown device names land here with a NOT_FOUND listing the registry.
    std::fprintf(stderr, "%s\n", created.status().to_string().c_str());
    return 1;
  }
  api::Engine engine = std::move(created).value();
  std::printf("target device: %s\n", engine.device().name().c_str());
  std::printf("DGCNN reference latency: %.1f ms\n",
              engine.reference_latency_ms());

  api::Result<api::PredictorReport> pm = engine.evaluate_predictor(150, 42);
  if (pm.ok())
    std::printf("predictor: train MAPE %.1f%% | held-out MAPE %.1f%% "
                "(%.0f%% within 10%%)\n",
                100.0 * pm.value().train_mape, 100.0 * pm.value().mape,
                100.0 * pm.value().within_10pct);

  std::printf("\n== multi-stage hierarchical search ==\n");
  api::Result<api::SearchReport> searched = engine.search();
  if (!searched.ok()) {
    std::fprintf(stderr, "%s\n", searched.status().to_string().c_str());
    return 1;
  }
  const api::SearchResult& result = searched.value().result;
  std::printf("best objective %.4f | predicted latency %.1f ms | "
              "%lld latency queries | %.1f simulated minutes\n",
              result.best_objective, result.best_latency_ms,
              static_cast<long long>(result.latency_queries),
              result.total_sim_time_s / 60.0);
  std::printf("\nsearched architecture (Fig. 10 style):\n%s",
              searched.value().visualization.c_str());

  std::printf("\n== deployment check on the device model ==\n");
  const api::Result<api::ProfileReport> prof =
      engine.profile(result.best_arch);
  if (prof.ok()) {
    std::printf("analytical latency %.1f ms (DGCNN %.1f ms -> %.1fx "
                "faster)\n",
                prof.value().latency_ms, prof.value().reference_latency_ms,
                prof.value().speedup_vs_reference);
    std::printf("peak memory %.1f MB (DGCNN %.1f MB)\n",
                prof.value().peak_memory_mb,
                prof.value().reference_memory_mb);
  }

  std::printf("\n== training the finalised network ==\n");
  const api::Result<api::TrainReport> trained =
      engine.train(result.best_arch);
  if (!trained.ok()) {
    std::fprintf(stderr, "%s\n", trained.status().to_string().c_str());
    return 1;
  }
  std::printf("final accuracy: OA %.1f%%  mAcc %.1f%%  (params %.2f MB)\n",
              100.0 * trained.value().overall_acc,
              100.0 * trained.value().balanced_acc,
              trained.value().param_mb);
  return 0;
}
