// net_server_demo — a remotely queryable NAS service on a loopback port.
//
// Builds one net::Server (wire protocol in front of serve::Service) and
// serves until interrupted — or, with --once, until the first client
// connection closes (CI drives net_client_demo against it this way and
// the demo exits 0 with a stats report).
//
//   net_server_demo [--port N] [--device name] [--workers N]
//                   [--window-us N] [--max-queue N] [--slice-ms N]
//                   [--oracle] [--once] [--drain-after-ms N]
//                   [--trace-out PATH]
//
// Defaults: port 7171, jetson-tx2, 3 workers, a 2 ms predict-coalescing
// window, queue bounded at 256, a 5 ms exclusive slice (searches yield to
// queued predict traffic between generations; --slice-ms 0 restores
// run-to-completion), GNN latency predictor as evaluator
// (--oracle swaps in the analytical oracle: instant startup, used by the
// CI smoke run). --drain-after-ms N demonstrates the graceful wind-down:
// after N ms the server stops accepting, finishes and answers everything
// already admitted, half-closes, and exits with the stats report.
// --trace-out PATH enables request-scoped tracing for the whole session
// and writes the spans as Chrome trace_event JSON (load in
// chrome://tracing or Perfetto) when the service shuts down.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "net/server.hpp"

int main(int argc, char** argv) {
  using namespace hg;

  std::uint16_t port = 7171;
  std::string device = "jetson-tx2";
  std::int64_t workers = 3;
  std::int64_t window_us = 2000;
  std::int64_t max_queue = 256;
  std::int64_t slice_ms = 5;
  std::int64_t drain_after_ms = -1;  // -1 = never
  std::string trace_out;
  bool oracle = false;
  bool once = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_next = i + 1 < argc;
    if (arg == "--port" && has_next)
      port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    else if (arg == "--device" && has_next)
      device = argv[++i];
    else if (arg == "--workers" && has_next)
      workers = std::atoll(argv[++i]);
    else if (arg == "--window-us" && has_next)
      window_us = std::atoll(argv[++i]);
    else if (arg == "--max-queue" && has_next)
      max_queue = std::atoll(argv[++i]);
    else if (arg == "--slice-ms" && has_next)
      slice_ms = std::atoll(argv[++i]);
    else if (arg == "--drain-after-ms" && has_next)
      drain_after_ms = std::atoll(argv[++i]);
    else if (arg == "--trace-out" && has_next)
      trace_out = argv[++i];
    else if (arg == "--oracle")
      oracle = true;
    else if (arg == "--once")
      once = true;
    else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  api::EngineConfig cfg;
  cfg.device = device;
  cfg.evaluator = oracle ? "oracle" : "predictor";
  cfg.strategy = "multistage";
  cfg.num_positions = 8;
  cfg.samples_per_class = 6;
  cfg.population = 10;
  cfg.parents = 5;
  cfg.iterations = 4;
  cfg.eval_val_samples = 10;
  cfg.predictor_samples = 160;
  cfg.predictor_epochs = 20;
  cfg.constrain_to_reference = true;

  net::ServerConfig server_cfg;
  server_cfg.port = port;
  server_cfg.service.num_workers = workers;
  server_cfg.service.predict_window_us = window_us;
  server_cfg.service.max_queue_depth = max_queue;
  server_cfg.service.exclusive_slice_ms = slice_ms;
  server_cfg.service.trace_path = trace_out;

  std::printf("starting %s service on %s (evaluator: %s)...\n",
              device.c_str(), server_cfg.host.c_str(),
              cfg.evaluator.c_str());
  std::fflush(stdout);
  api::Result<std::shared_ptr<net::Server>> server =
      net::Server::create(cfg, server_cfg);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().to_string().c_str());
    return 1;
  }
  std::printf("listening on %s:%u (workers %lld, predict window %lld us, "
              "queue bound %lld, slice %lld ms)\n",
              server_cfg.host.c_str(), server.value()->port(),
              static_cast<long long>(workers),
              static_cast<long long>(window_us),
              static_cast<long long>(max_queue),
              static_cast<long long>(slice_ms));
  std::fflush(stdout);

  const auto started = std::chrono::steady_clock::now();
  auto drain_deadline = std::chrono::steady_clock::time_point::max();
  for (;;) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    const net::NetStats net = server.value()->net_stats();
    if (once && net.connections_opened > 0 &&
        net.connections_closed >= net.connections_opened)
      break;
    const auto now = std::chrono::steady_clock::now();
    if (drain_after_ms >= 0 && !server.value()->draining() &&
        now - started >= std::chrono::milliseconds(drain_after_ms)) {
      std::printf("draining: no new work; finishing %lld queued "
                  "request(s)...\n",
                  static_cast<long long>(
                      server.value()->service()->stats().queue_depth));
      std::fflush(stdout);
      server.value()->drain();
      // Grace period for queued replies to flush and peers to hang up.
      drain_deadline = now + std::chrono::seconds(5);
    }
    if (server.value()->draining() &&
        (now >= drain_deadline ||
         (server.value()->service()->stats().queue_depth == 0 &&
          net.connections_closed >= net.connections_opened)))
      break;
  }

  server.value()->stop();
  // One registry holds both layers: net.* frame counters (the server
  // registers its instruments into the service's registry) and serve.*
  // admission / latency / slicing metrics. Rendering is shared with
  // serve_demo; histograms report .p50_us/.p99_us/.count.
  std::printf("\n-- session report (slice %lld ms) --\n",
              static_cast<long long>(slice_ms));
  std::fputs(obs::render_snapshot(
                 server.value()->service()->metrics_snapshot())
                 .c_str(),
             stdout);
  std::printf("drain %s\n",
              server.value()->service()->stats().drain_started > 0
                  ? "completed"
                  : "never started");
  if (!trace_out.empty()) {
    // stop() shut the service down, which exported the collected spans.
    std::printf("trace written to %s (Chrome trace_event JSON)\n",
                trace_out.c_str());
  }
  return 0;
}
