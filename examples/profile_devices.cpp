// profile_devices — Observation ① / ③ of the paper on the device models:
// per-op profiling of DGCNN on all four platforms, execution-time
// breakdowns, and the point-count scaling sweep with OOM detection — all
// through Engine::profile_baseline.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "api/engine.hpp"

int main() {
  using namespace hg;

  // One tiny-scale engine per device (the cost models are independent of
  // the engine's training-side scale).
  std::vector<std::unique_ptr<api::Engine>> engines;
  for (const std::string& name : api::Registry::global().device_names()) {
    api::EngineConfig cfg = api::EngineConfig::tiny();
    cfg.device = name;
    cfg.num_points = 1024;  // paper workload for the cost models
    cfg.k = 20;
    cfg.num_classes = 40;
    api::Result<api::Engine> engine = api::Engine::create(cfg);
    if (!engine.ok()) {
      std::fprintf(stderr, "%s\n", engine.status().to_string().c_str());
      return 1;
    }
    engines.push_back(
        std::make_unique<api::Engine>(std::move(engine).value()));
  }

  std::printf("== DGCNN execution-time breakdown (1024 points) ==\n");
  for (const auto& engine : engines) {
    const api::Result<api::ProfileReport> r =
        engine->profile_baseline("dgcnn");
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().to_string().c_str());
      return 1;
    }
    std::printf("%-18s %s\n", engine->device().name().c_str(),
                r.value().breakdown.c_str());
  }

  std::printf("\n== point-count scaling on every device ==\n");
  std::printf("%8s", "points");
  for (const auto& engine : engines)
    std::printf(" %16s", engine->device().name().c_str());
  std::printf("\n");
  for (std::int64_t n : {128, 256, 512, 1024, 1536, 2048}) {
    api::Workload w = engines.front()->deploy_workload();
    w.num_points = n;
    std::printf("%8lld", static_cast<long long>(n));
    for (const auto& engine : engines) {
      const api::Result<api::ProfileReport> r =
          engine->profile_baseline("dgcnn", w);
      if (!r.ok()) {
        std::fprintf(stderr, "%s\n", r.status().to_string().c_str());
        return 1;
      }
      if (r.value().oom)
        std::printf(" %16s", "OOM");
      else
        std::printf(" %13.1f ms", r.value().latency_ms);
    }
    std::printf("\n");
  }

  std::printf("\n== full per-op profile: Intel i7-8700K ==\n%s",
              engines[1]->profile_baseline("dgcnn").value()
                  .per_op_table.c_str());

  std::printf("\n== power-efficiency claim (paper §I) ==\n");
  const double rtx_w = engines[0]->device().spec().power_w;
  const double tx2_w = engines[2]->device().spec().power_w;
  std::printf("RTX3080 %.0f W vs Jetson TX2 %.1f W -> %.0fx power budget\n",
              rtx_w, tx2_w, rtx_w / tx2_w);
  return 0;
}
