// profile_devices — Observation ① / ③ of the paper on the device models:
// per-op profiling of DGCNN on all four platforms, execution-time
// breakdowns, and the point-count scaling sweep with OOM detection.
#include <cstdio>

#include "baselines/baselines.hpp"
#include "hw/profiler.hpp"

int main() {
  using namespace hg;

  std::printf("== DGCNN execution-time breakdown (1024 points) ==\n");
  const hw::Trace dgcnn = hw::dgcnn_reference_trace(1024);
  for (int d = 0; d < hw::kNumDevices; ++d) {
    hw::Device dev = hw::make_device(static_cast<hw::DeviceKind>(d));
    std::printf("%-18s %s\n", dev.name().c_str(),
                hw::breakdown_summary(dev, dgcnn).c_str());
  }

  std::printf("\n== point-count scaling on every device ==\n");
  std::printf("%8s", "points");
  for (int d = 0; d < hw::kNumDevices; ++d)
    std::printf(" %16s", hw::device_kind_name(
                             static_cast<hw::DeviceKind>(d)).c_str());
  std::printf("\n");
  for (std::int64_t n : {128, 256, 512, 1024, 1536, 2048}) {
    const hw::Trace t = hw::dgcnn_reference_trace(n);
    std::printf("%8lld", static_cast<long long>(n));
    for (int d = 0; d < hw::kNumDevices; ++d) {
      hw::Device dev = hw::make_device(static_cast<hw::DeviceKind>(d));
      if (dev.would_oom(t))
        std::printf(" %16s", "OOM");
      else
        std::printf(" %13.1f ms", dev.latency_ms(t));
    }
    std::printf("\n");
  }

  std::printf("\n== full per-op profile: Intel i7-8700K ==\n%s",
              hw::profile_report(
                  hw::make_device(hw::DeviceKind::IntelI7_8700K), dgcnn)
                  .c_str());

  std::printf("\n== power-efficiency claim (paper §I) ==\n");
  hw::Device rtx = hw::make_device(hw::DeviceKind::Rtx3080);
  hw::Device tx2 = hw::make_device(hw::DeviceKind::JetsonTx2);
  std::printf("RTX3080 %.0f W vs Jetson TX2 %.1f W -> %.0fx power budget\n",
              rtx.spec().power_w, tx2.spec().power_w,
              rtx.spec().power_w / tx2.spec().power_w);
  return 0;
}
