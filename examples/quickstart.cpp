// quickstart — the 5-minute tour of the library through the hg::Engine
// facade (the one stable entry point; see README.md):
//   1. build an engine from a declarative EngineConfig,
//   2. hand-build an HGNAS-style architecture and inspect it,
//   3. train it on the synthetic dataset,
//   4. profile it against the DGCNN reference on every edge device,
//   5. round-trip it through the text serialisation.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "api/engine.hpp"

int main() {
  using namespace hg;

  // 1. One declarative config: target device, latency evaluator, search
  //    strategy and every scale knob in a single struct. Errors come back
  //    as Status values, never exceptions.
  std::printf("== creating the engine ==\n");
  api::EngineConfig cfg;
  cfg.device = "rtx3080";   // registry name; try "tx2" or "pi"
  cfg.evaluator = "oracle"; // deterministic analytical cost model
  cfg.samples_per_class = 10;
  cfg.train_epochs = 8;
  api::Result<api::Engine> created = api::Engine::create(cfg);
  if (!created.ok()) {
    std::fprintf(stderr, "engine creation failed: %s\n",
                 created.status().to_string().c_str());
    return 1;
  }
  api::Engine engine = std::move(created).value();
  std::printf("target device: %s | DGCNN reference: %.1f ms, %.1f MB\n",
              engine.device().name().c_str(), engine.reference_latency_ms(),
              engine.reference_memory_mb());

  // 2. A hand-written architecture in the HGNAS design space.
  std::printf("\n== hand-built fine-grained architecture ==\n");
  api::Arch arch;
  auto gene = [](hgnas::OpType op) {
    hgnas::PositionGene g;
    g.op = op;
    return g;
  };
  auto agg = gene(hgnas::OpType::Aggregate);
  agg.fn.msg = gnn::MessageType::TargetRel;
  agg.fn.aggr = hgnas::AggrType::Max;
  auto comb = gene(hgnas::OpType::Combine);
  comb.fn.combine_dim_idx = 3;  // 64
  arch.genes = {gene(hgnas::OpType::Sample), comb, agg, comb};
  std::printf("%s", engine.visualize(arch).c_str());

  // 3. Materialise and train it on the engine's synthetic dataset.
  std::printf("\n== training the architecture ==\n");
  api::Result<api::TrainReport> trained = engine.train(arch);
  if (!trained.ok()) {
    std::fprintf(stderr, "%s\n", trained.status().to_string().c_str());
    return 1;
  }
  std::printf("accuracy: OA %.1f%%  mAcc %.1f%%  (params %.2f MB)\n",
              100.0 * trained.value().overall_acc,
              100.0 * trained.value().balanced_acc,
              trained.value().param_mb);

  // 4. Deployment cost on every registered edge-device model.
  std::printf("\n== deployment profile across the edge devices ==\n");
  for (const std::string& name : api::Registry::global().device_names()) {
    api::EngineConfig dev_cfg = cfg;
    dev_cfg.device = name;
    api::Result<api::Engine> dev_engine = api::Engine::create(dev_cfg);
    if (!dev_engine.ok()) continue;
    const api::Result<api::ProfileReport> prof =
        dev_engine.value().profile(arch);
    if (!prof.ok()) continue;
    std::printf("%-18s %8.1f ms  %7.1f MB  %5.1fx vs DGCNN  [%s]\n",
                dev_engine.value().device().name().c_str(),
                prof.value().latency_ms, prof.value().peak_memory_mb,
                prof.value().speedup_vs_reference,
                prof.value().breakdown.c_str());
  }

  // 5. The architecture is the deployable artifact: export / import.
  std::printf("\n== persistence round-trip ==\n");
  const api::Result<std::string> text = engine.export_arch(arch);
  if (!text.ok()) {
    std::fprintf(stderr, "%s\n", text.status().to_string().c_str());
    return 1;
  }
  const api::Result<api::Arch> back = engine.import_arch(text.value());
  std::printf("round-trip %s\n",
              back.ok() && back.value() == hgnas::canonicalize(arch)
                  ? "OK"
                  : "FAILED");

  std::printf("\nNext: run examples/search_edge_gnn for the full NAS "
              "pipeline on one device.\n");
  return 0;
}
