// quickstart — the 5-minute tour of the library:
//   1. generate a synthetic point-cloud classification dataset,
//   2. train a (scaled-down) DGCNN baseline on it,
//   3. estimate its latency / memory on the four edge-device models,
//   4. hand-build an HGNAS-style architecture and compare.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "baselines/baselines.hpp"
#include "hgnas/model.hpp"
#include "hw/profiler.hpp"

int main() {
  using namespace hg;

  // 1. Dataset: 10 shape classes, 32 points per cloud.
  std::printf("== generating dataset ==\n");
  pointcloud::Dataset data(/*samples_per_class=*/10, /*num_points=*/32,
                           /*seed=*/7);
  std::printf("train %zu clouds, test %zu clouds, %lld classes\n",
              data.train().size(), data.test().size(),
              static_cast<long long>(data.num_classes()));

  // 2. Train DGCNN briefly.
  std::printf("\n== training DGCNN (scaled) ==\n");
  Rng rng(1);
  baselines::Dgcnn dgcnn(baselines::DgcnnConfig::scaled(10, 6), rng);
  const auto eval = baselines::train_baseline(dgcnn, data, /*epochs=*/8,
                                              2e-3f, rng);
  std::printf("DGCNN test accuracy: OA %.1f%%  mAcc %.1f%%\n",
              100.0 * eval.overall_acc, 100.0 * eval.balanced_acc);

  // 3. Edge-device cost estimates at paper scale (1024 points).
  std::printf("\n== DGCNN on the edge-device models (1024 points) ==\n");
  const hw::Trace trace = baselines::Dgcnn::trace(baselines::DgcnnConfig{},
                                                  1024);
  for (int d = 0; d < hw::kNumDevices; ++d) {
    hw::Device dev = hw::make_device(static_cast<hw::DeviceKind>(d));
    std::printf("%-18s %8.1f ms   %7.1f MB   [%s]\n", dev.name().c_str(),
                dev.latency_ms(trace), dev.peak_memory_mb(trace),
                hw::breakdown_summary(dev, trace).c_str());
  }

  // 4. A hand-written architecture in the HGNAS design space.
  std::printf("\n== hand-built fine-grained architecture ==\n");
  hgnas::Arch arch;
  auto gene = [](hgnas::OpType op) {
    hgnas::PositionGene g;
    g.op = op;
    return g;
  };
  auto agg = gene(hgnas::OpType::Aggregate);
  agg.fn.msg = gnn::MessageType::TargetRel;
  agg.fn.aggr = hgnas::AggrType::Max;
  auto comb = gene(hgnas::OpType::Combine);
  comb.fn.combine_dim_idx = 3;  // 64
  arch.genes = {gene(hgnas::OpType::Sample), comb, agg, comb};

  hgnas::Workload paper_w;
  paper_w.num_points = 1024;
  paper_w.k = 20;
  std::printf("%s", visualize(arch, paper_w).c_str());

  hgnas::Workload train_w;
  train_w.num_points = 32;
  train_w.k = 6;
  train_w.num_classes = 10;
  hgnas::GnnModel model(arch, train_w, rng);
  hgnas::TrainConfig tcfg;
  tcfg.epochs = 8;
  const auto arch_eval = train_model(model, data, tcfg, rng);
  std::printf("hand-built arch accuracy: OA %.1f%%\n",
              100.0 * arch_eval.overall_acc);

  const hw::Trace arch_trace = lower_to_trace(arch, paper_w);
  hw::Device rtx = hw::make_device(hw::DeviceKind::Rtx3080);
  std::printf("RTX3080: %.1f ms vs DGCNN %.1f ms (%.1fx faster)\n",
              rtx.latency_ms(arch_trace), rtx.latency_ms(trace),
              rtx.latency_ms(trace) / rtx.latency_ms(arch_trace));
  std::printf("\nNext: run examples/search_edge_gnn for the full NAS "
              "pipeline.\n");
  return 0;
}
