// net_client_demo — mixed remote load against a running net_server_demo.
//
//   net_client_demo [--host H] [--port N] [--positions N] [--no-search]
//                   [--retries N] [--stats]
//
// One connection, pipelined request ids: a health ping first, then a
// deployment reference (profile_baseline), a batched latency query (one
// frame, N archs), a trickle of lone predictions (they meet the server's
// coalescing window), a full NAS search, and a deployment profile of the
// search winner. Everything the server answers is printed with its
// round-trip time; exits non-zero on the first failed request. --stats
// finishes with a remote metrics scrape (kStats): the server's full
// registry snapshot — serve.* and net.* — rendered like the server's own
// session report.
//
// The blocking verbs ride a RetryPolicy (--retries, default 3 attempts):
// pure verbs reconnect and retry transport failures with backed-off
// jitter, honoring any retry_after_us hint the server attaches to
// refused-before-running replies.
//
// The architectures are sampled locally (hgnas::random_arch) — a remote
// client needs no engine, only the design-space shape (--positions must
// match the server's config; the demos agree at 8).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "hgnas/arch.hpp"
#include "net/client.hpp"

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hg;

  std::string host = "127.0.0.1";
  std::uint16_t port = 7171;
  std::int64_t positions = 8;
  int retries = 3;
  bool run_search = true;
  bool scrape_stats = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_next = i + 1 < argc;
    if (arg == "--host" && has_next)
      host = argv[++i];
    else if (arg == "--port" && has_next)
      port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    else if (arg == "--positions" && has_next)
      positions = std::atoll(argv[++i]);
    else if (arg == "--retries" && has_next)
      retries = std::atoi(argv[++i]);
    else if (arg == "--no-search")
      run_search = false;
    else if (arg == "--stats")
      scrape_stats = true;
    else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  net::ClientConfig client_cfg;
  client_cfg.host = host;
  client_cfg.port = port;
  client_cfg.retry.max_attempts = retries;
  api::Result<net::Client> connected = net::Client::connect(client_cfg);
  if (!connected.ok()) {
    std::fprintf(stderr, "connect: %s\n",
                 connected.status().to_string().c_str());
    return 1;
  }
  net::Client client = std::move(connected).value();
  std::printf("connected to %s:%u (retry budget: %d attempts)\n",
              host.c_str(), port, retries);

  // Health first: is this server worth sending work to?
  auto t0 = std::chrono::steady_clock::now();
  api::Result<net::HealthReport> health = client.ping();
  if (!health.ok()) {
    std::fprintf(stderr, "ping: %s\n", health.status().to_string().c_str());
    return 1;
  }
  std::printf("server health: %s, queue depth %lld, %lld workers, up "
              "%.1f s  (round trip %.1f ms)\n",
              net::health_state_name(health.value().state),
              static_cast<long long>(health.value().queue_depth),
              static_cast<long long>(health.value().workers),
              static_cast<double>(health.value().uptime_us) / 1e6,
              ms_since(t0));

  hgnas::SpaceConfig space;
  space.num_positions = positions;
  Rng rng(7);
  std::vector<api::Arch> archs;
  for (int i = 0; i < 10; ++i)
    archs.push_back(hgnas::random_arch(space, rng));

  // Deployment reference for the target device.
  t0 = std::chrono::steady_clock::now();
  api::Result<api::ProfileReport> reference =
      client.profile_baseline("dgcnn");
  if (!reference.ok()) {
    std::fprintf(stderr, "profile_baseline: %s\n",
                 reference.status().to_string().c_str());
    return 1;
  }
  std::printf("DGCNN reference: %.1f ms on-device  (round trip %.1f ms)\n",
              reference.value().latency_ms, ms_since(t0));

  // Batched latency query: one frame carries every arch.
  t0 = std::chrono::steady_clock::now();
  api::Result<std::vector<api::LatencyReport>> batched =
      client.predict_batch(archs);
  if (!batched.ok()) {
    std::fprintf(stderr, "predict_batch: %s\n",
                 batched.status().to_string().c_str());
    return 1;
  }
  std::printf("batched predict: %zu archs in one frame  (round trip "
              "%.1f ms)\n",
              archs.size(), ms_since(t0));

  // Trickle of lone predictions: pipelined sends a few ms apart, so they
  // coalesce inside the server's predict window.
  t0 = std::chrono::steady_clock::now();
  std::vector<std::uint64_t> ids;
  for (const api::Arch& a : archs) {
    api::Result<std::uint64_t> id = client.send_predict_latency(a);
    if (!id.ok()) {
      std::fprintf(stderr, "send: %s\n", id.status().to_string().c_str());
      return 1;
    }
    ids.push_back(id.value());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::printf("%5s %15s %15s\n", "arch", "predicted_ms", "batched_ms");
  for (std::size_t i = 0; i < ids.size(); ++i) {
    api::Result<api::LatencyReport> lone =
        client.wait_predict_latency(ids[i]);
    if (!lone.ok()) {
      std::fprintf(stderr, "predict: %s\n",
                   lone.status().to_string().c_str());
      return 1;
    }
    std::printf("%5zu %15.2f %15.2f\n", i, lone.value().latency_ms,
                batched.value()[i].latency_ms);
  }
  std::printf("trickle of %zu lone predictions answered in %.1f ms\n",
              ids.size(), ms_since(t0));

  if (run_search) {
    t0 = std::chrono::steady_clock::now();
    api::Result<api::SearchReport> search = client.search();
    if (!search.ok()) {
      std::fprintf(stderr, "search: %s\n",
                   search.status().to_string().c_str());
      return 1;
    }
    std::printf("search winner: objective %.3f, %.1f ms predicted, "
                "%zu frontier points  (round trip %.1f ms)\n",
                search.value().result.best_objective,
                search.value().result.best_latency_ms,
                search.value().result.frontier.size(), ms_since(t0));
    api::Result<api::ProfileReport> winner =
        client.profile(search.value().result.best_arch);
    if (!winner.ok()) {
      std::fprintf(stderr, "profile: %s\n",
                   winner.status().to_string().c_str());
      return 1;
    }
    std::printf("winner on-device: %.1f ms, %.1f MB, %.2fx vs DGCNN\n",
                winner.value().latency_ms, winner.value().peak_memory_mb,
                winner.value().speedup_vs_reference);
  }

  if (scrape_stats) {
    t0 = std::chrono::steady_clock::now();
    api::Result<obs::Snapshot> snap = client.stats();
    if (!snap.ok()) {
      std::fprintf(stderr, "stats: %s\n",
                   snap.status().to_string().c_str());
      return 1;
    }
    std::printf("server metrics (%zu instruments, round trip %.1f ms):\n",
                snap.value().size(), ms_since(t0));
    std::fputs(obs::render_snapshot(snap.value()).c_str(), stdout);
  }

  std::printf("done; closing connection.\n");
  return 0;
}
