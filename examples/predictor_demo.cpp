// predictor_demo — "use GNN to perceive GNNs" (§III-D) end to end:
// abstract architectures into graphs, train the GCN latency predictor on
// noisy simulated measurements, and inspect its accuracy per device.
#include <cstdio>

#include "predictor/predictor.hpp"

int main() {
  using namespace hg;

  hgnas::SpaceConfig space;  // 12 positions
  hgnas::Workload w;
  w.num_points = 1024;
  w.k = 20;

  // Show the graph abstraction of one random architecture.
  Rng rng(5);
  hgnas::Arch a = hgnas::random_arch(space, rng);
  predictor::ArchGraph g = predictor::arch_to_graph(a, w);
  std::printf("== architecture graph abstraction ==\n");
  std::printf("architecture:\n%s", visualize(a, w).c_str());
  std::printf("graph: %lld nodes, %lld directed edges, %lld-dim features\n",
              static_cast<long long>(g.edges.num_nodes),
              static_cast<long long>(g.edges.num_edges()),
              static_cast<long long>(predictor::kFeatureDim));

  // Train one predictor per device; report MAPE / 10%-bound accuracy.
  std::printf("\n== predictor accuracy per device ==\n");
  std::printf("%-18s %10s %16s\n", "device", "MAPE_%", "within_10pct_%");
  for (int d = 0; d < hw::kNumDevices; ++d) {
    hw::Device dev = hw::make_device(static_cast<hw::DeviceKind>(d));
    auto train = predictor::collect_labeled_archs(dev, space, w, 500,
                                                  100 + d);
    auto test = predictor::collect_labeled_archs(dev, space, w, 150,
                                                 200 + d);
    Rng prng(300 + static_cast<std::uint64_t>(d));
    predictor::PredictorConfig cfg;
    cfg.epochs = 50;
    predictor::LatencyPredictor pred(cfg, w, prng);
    pred.fit(train, prng);
    const auto m = pred.evaluate(test);
    std::printf("%-18s %10.1f %16.1f\n", dev.name().c_str(),
                100.0 * m.mape, 100.0 * m.within_10pct);
  }
  std::printf("\n(the Raspberry Pi's measurement noise dominates its error, "
              "matching the paper's ~19%% MAPE there)\n");
  return 0;
}
