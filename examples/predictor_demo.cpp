// predictor_demo — "use GNN to perceive GNNs" (§III-D) through the facade:
// the engine abstracts architectures into graphs, trains the GCN latency
// predictor on noisy simulated measurements at creation time, and reports
// its held-out accuracy per device.
#include <cstdio>
#include <utility>

#include "api/engine.hpp"

int main() {
  using namespace hg;

  // Show the graph abstraction of one random architecture.
  api::EngineConfig probe_cfg;
  api::Result<api::Engine> probe = api::Engine::create(probe_cfg);
  if (!probe.ok()) {
    std::fprintf(stderr, "%s\n", probe.status().to_string().c_str());
    return 1;
  }
  api::Engine probe_engine = std::move(probe).value();
  const api::Arch a = probe_engine.sample_arch();
  const api::ArchGraphInfo g = probe_engine.arch_graph_info(a);
  std::printf("== architecture graph abstraction ==\n");
  std::printf("architecture:\n%s", probe_engine.visualize(a).c_str());
  std::printf("graph: %lld nodes, %lld directed edges, %lld-dim features\n",
              static_cast<long long>(g.nodes),
              static_cast<long long>(g.edges),
              static_cast<long long>(g.feature_dim));

  // One engine (and thus one predictor) per device, as in the paper;
  // report MAPE / 10%-bound accuracy on held-out architectures.
  std::printf("\n== predictor accuracy per device ==\n");
  std::printf("%-18s %10s %16s\n", "device", "MAPE_%", "within_10pct_%");
  int slot = 0;
  for (const std::string& name : api::Registry::global().device_names()) {
    api::EngineConfig cfg;
    cfg.device = name;
    cfg.evaluator = "predictor";
    cfg.predictor_samples = 500;
    cfg.predictor_epochs = 50;
    cfg.seed = 300 + static_cast<std::uint64_t>(slot);
    api::Result<api::Engine> created = api::Engine::create(cfg);
    if (!created.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   created.status().to_string().c_str());
      return 1;
    }
    api::Engine engine = std::move(created).value();
    const api::Result<api::PredictorReport> m = engine.evaluate_predictor(
        150, 200 + static_cast<std::uint64_t>(slot));
    if (!m.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   m.status().to_string().c_str());
      return 1;
    }
    std::printf("%-18s %10.1f %16.1f\n", engine.device().name().c_str(),
                100.0 * m.value().mape, 100.0 * m.value().within_10pct);
    ++slot;
  }
  std::printf("\n(the Raspberry Pi's measurement noise dominates its error, "
              "matching the paper's ~19%% MAPE there)\n");
  return 0;
}
