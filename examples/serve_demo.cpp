// serve_demo — the long-lived NAS service loop against a device fleet.
//
// Two serve::Services (Jetson TX2 and RTX3080), each owning one shared
// EvalContext with a fitted GNN latency predictor. Startup routes both
// devices' labelled-architecture collection — the dominant predictor cost —
// through ONE pooled measurement queue (EvalContext::create_many), then a
// mixed request load hits both services concurrently: searches (exclusive,
// FIFO), latency predictions (coalesced into packed GCN forwards) and
// deployment profiles (pure, parallel).
#include <cstdio>
#include <future>
#include <string>
#include <utility>
#include <vector>

#include "serve/service.hpp"

int main() {
  using namespace hg;

  const std::vector<std::string> devices = {"jetson-tx2", "rtx3080"};
  std::vector<api::EngineConfig> cfgs;
  for (std::size_t i = 0; i < devices.size(); ++i) {
    api::EngineConfig cfg;
    cfg.device = devices[i];
    cfg.evaluator = "predictor";
    cfg.strategy = "multistage";
    cfg.num_positions = 8;
    cfg.samples_per_class = 6;
    cfg.population = 10;
    cfg.parents = 5;
    cfg.iterations = 4;
    cfg.eval_val_samples = 10;
    cfg.predictor_samples = 200;
    cfg.predictor_epochs = 24;
    cfg.seed = 300 + static_cast<std::uint64_t>(i);  // per-device labels
    cfg.constrain_to_reference = true;
    cfgs.push_back(cfg);
  }

  std::printf("== fleet startup: shared label collection, one fit per device ==\n");
  api::Result<std::vector<std::shared_ptr<api::EvalContext>>> contexts =
      api::EvalContext::create_many(cfgs);
  if (!contexts.ok()) {
    std::fprintf(stderr, "%s\n", contexts.status().to_string().c_str());
    return 1;
  }

  serve::ServiceConfig scfg;
  scfg.num_workers = 3;
  // Generation-sliced scheduling: searches yield every 5 ms so the small
  // predict/profile queries interleave instead of waiting out a search.
  scfg.exclusive_slice_ms = 5;
  std::vector<std::shared_ptr<serve::Service>> services;
  for (std::size_t i = 0; i < devices.size(); ++i) {
    api::Result<std::shared_ptr<serve::Service>> service =
        serve::Service::create(cfgs[i], contexts.value()[i], scfg);
    if (!service.ok()) {
      std::fprintf(stderr, "%s: %s\n", devices[i].c_str(),
                   service.status().to_string().c_str());
      return 1;
    }
    services.push_back(std::move(service).value());
    std::printf("  %-16s service up (%lld workers, evaluator builds: %lld)\n",
                devices[i].c_str(),
                static_cast<long long>(scfg.num_workers),
                static_cast<long long>(
                    contexts.value()[i]->evaluator_builds()));
  }

  // Sample query architectures once (shared across both services).
  api::Result<api::Engine> probe =
      api::Engine::create(cfgs[0], contexts.value()[0]);
  if (!probe.ok()) {
    std::fprintf(stderr, "%s\n", probe.status().to_string().c_str());
    return 1;
  }
  std::vector<api::Arch> archs;
  for (int i = 0; i < 12; ++i) archs.push_back(probe.value().sample_arch());

  // Mixed load, both services at once: one search each, a burst of
  // predictions (coalesced), profiles and a baseline reference.
  std::printf("\n== mixed concurrent load ==\n");
  std::vector<std::future<api::Result<api::SearchReport>>> searches;
  std::vector<std::vector<std::future<api::Result<api::LatencyReport>>>>
      predictions(services.size());
  std::vector<std::vector<std::future<api::Result<api::ProfileReport>>>>
      profiles(services.size());
  std::vector<std::future<api::Result<api::ProfileReport>>> references;
  for (std::size_t s = 0; s < services.size(); ++s) {
    searches.push_back(services[s]->submit(serve::SearchRequest{}));
    for (const api::Arch& a : archs) {
      predictions[s].push_back(
          services[s]->submit(serve::PredictLatencyRequest{a}));
      profiles[s].push_back(services[s]->submit(serve::ProfileRequest{a}));
    }
    references.push_back(
        services[s]->submit(serve::ProfileBaselineRequest{"dgcnn", {}}));
  }

  for (std::size_t s = 0; s < services.size(); ++s) {
    api::Result<api::SearchReport> report = searches[s].get();
    if (!report.ok()) {
      std::fprintf(stderr, "search on %s: %s\n", devices[s].c_str(),
                   report.status().to_string().c_str());
      return 1;
    }
    api::Result<api::ProfileReport> reference = references[s].get();
    std::printf("\n-- %s --\n", devices[s].c_str());
    std::printf("search winner: objective %.3f, predicted %.1f ms "
                "(DGCNN reference %.1f ms)\n",
                report.value().result.best_objective,
                report.value().result.best_latency_ms,
                reference.ok() ? reference.value().latency_ms : 0.0);
    std::printf("%5s %15s %15s\n", "arch", "predicted_ms", "profiled_ms");
    for (std::size_t i = 0; i < archs.size(); ++i) {
      api::Result<api::LatencyReport> lat = predictions[s][i].get();
      api::Result<api::ProfileReport> prof = profiles[s][i].get();
      if (!lat.ok() || !prof.ok()) {
        std::fprintf(stderr, "request failed on %s\n", devices[s].c_str());
        return 1;
      }
      std::printf("%5zu %15.2f %15.2f\n", i, lat.value().latency_ms,
                  prof.value().latency_ms);
    }
    // Full registry snapshot for this service (histograms report
    // .p50_us/.p99_us/.count; slicing runs with exclusive_slice_ms from
    // scfg). Rendering is shared with net_server_demo.
    std::printf("metrics (slice %lld ms):\n",
                static_cast<long long>(scfg.exclusive_slice_ms));
    std::fputs(obs::render_snapshot(services[s]->metrics_snapshot()).c_str(),
               stdout);
  }

  // Graceful half of shutdown first: drain() stops admissions while the
  // workers finish what is queued, then shutdown() joins them.
  for (auto& service : services) service->drain();
  for (auto& service : services) service->shutdown();
  std::printf("\nservices drained and shut down.\n");
  return 0;
}
