// parallel.hpp — the parallel execution backbone: a lazily-initialised
// global thread pool plus deterministic chunked loops.
//
// Design rules (every kernel in tensor/, gnn/, graph/ and the concurrent
// candidate evaluation in hgnas/ builds on them):
//
//  * Determinism is partition-invariance, not scheduling. `parallel_for`
//    splits [begin, end) into chunks computed only from (range, grain,
//    thread count); which worker executes which chunk is irrelevant because
//    every kernel keeps the per-output-element arithmetic order identical
//    to the serial loop. Consequently results are bit-for-bit identical for
//    ANY thread count, including 1.
//  * `set_num_threads(1)` short-circuits every parallel_for into a plain
//    inline call of the serial body — the legacy single-threaded path,
//    bit-for-bit and with zero synchronisation overhead.
//  * Nested parallel_for calls run inline on the calling worker (no
//    deadlock, no oversubscription): the outer level owns the pool.
//  * Exceptions thrown inside a chunk are captured and rethrown on the
//    calling thread after the loop completes.
//
// Configure through hg::api::EngineConfig::num_threads (0 = hardware
// concurrency) or directly via set_num_threads().
#pragma once

#include <cstdint>
#include <functional>

namespace hg::core {

/// Number of hardware threads (>= 1 even when the runtime reports 0).
std::int64_t hardware_threads();

/// Current pool width (>= 1). Before any set_num_threads() call this is
/// hardware_threads().
std::int64_t num_threads();

/// Resize the pool. n == 0 selects hardware concurrency; n == 1 disables
/// the pool entirely (serial path). Must not be called from inside a
/// parallel region. Idempotent when the width is unchanged.
void set_num_threads(std::int64_t n);

/// RAII thread-count override (tests, benches).
class ScopedNumThreads {
 public:
  explicit ScopedNumThreads(std::int64_t n)
      : prev_(num_threads()) {
    set_num_threads(n);
  }
  ~ScopedNumThreads() { set_num_threads(prev_); }
  ScopedNumThreads(const ScopedNumThreads&) = delete;
  ScopedNumThreads& operator=(const ScopedNumThreads&) = delete;

 private:
  std::int64_t prev_;
};

/// True while the current thread is executing a parallel_for chunk (used to
/// run nested loops inline).
bool in_parallel_region();

/// Chunked parallel loop over [begin, end). `fn(chunk_begin, chunk_end)` is
/// invoked for contiguous, non-overlapping, covering chunks of at least
/// `grain` iterations (except possibly the last). Runs inline serially when
/// the range is below `grain`, the pool width is 1, or called from inside
/// another parallel region.
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& fn);

/// `n` independent coarse tasks: fn(i) for i in [0, n). Tasks are claimed
/// dynamically (they may have very different costs — e.g. NAS candidate
/// evaluations); callers must not depend on execution order.
void parallel_invoke(std::int64_t n,
                     const std::function<void(std::int64_t)>& fn);

}  // namespace hg::core
