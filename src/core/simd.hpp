#pragma once

// Vectorized inner loops for the hot kernels (matmul, fused aggregate,
// KNN distances), with a compile-time dispatch:
//
//   - `hg::simd::scalar::*` is the portable reference. It spells out the
//     exact per-element arithmetic (and its order) that the historical
//     serial loops performed, and is always compiled.
//   - The unqualified `hg::simd::*` entry points forward to an AVX2 path
//     when the build enables it (HG_NATIVE=ON implies -march=native, so
//     __AVX2__ is defined on any AVX2 box) and to the scalar reference
//     otherwise.
//
// Bit-identity contract: every AVX2 body uses only per-lane IEEE mul/add/
// sub/div — never FMA, never a horizontal reduction — so each output
// element sees exactly the operation sequence of its scalar counterpart
// and the two paths agree bit-for-bit. The top-level CMakeLists adds
// -ffp-contract=off so the compiler cannot re-introduce contraction into
// the scalar reference either. tests/test_simd.cpp asserts the per-element
// equality for every helper, including odd lengths (remainder lanes).
//
// Loops here never reduce across lanes: order-sensitive reductions into a
// single accumulator (e.g. the rel-norm in gnn::fused_edge_message, a
// dot product accumulated in ascending order) stay scalar in the callers;
// kernels that want SIMD for those shapes restructure so the vector axis
// is the *output* axis (see raw_matmul_a_bt, knn_graph_features).

#include <cstdint>

#if defined(__AVX2__)
#include <immintrin.h>
#define HG_SIMD_AVX2 1
#endif

namespace hg::simd {

namespace scalar {

/// dst[j] += a * src[j]
inline void axpy(float* dst, float a, const float* src, std::int64_t n) {
  for (std::int64_t j = 0; j < n; ++j) dst[j] += a * src[j];
}

/// dst[j] += src[j]
inline void accumulate(float* dst, const float* src, std::int64_t n) {
  for (std::int64_t j = 0; j < n; ++j) dst[j] += src[j];
}

/// dst[j] = a[j] - b[j]
inline void sub(float* dst, const float* a, const float* b, std::int64_t n) {
  for (std::int64_t j = 0; j < n; ++j) dst[j] = a[j] - b[j];
}

/// dst[j] /= d
inline void scale_inv(float* dst, float d, std::int64_t n) {
  for (std::int64_t j = 0; j < n; ++j) dst[j] /= d;
}

/// The Max/Min reduce step of gnn::aggregate_fused, one edge at a time:
/// lane j takes msg[j] (and records edge `ei` as the winner) when no edge
/// has claimed it yet (arg[j] < 0) or msg[j] strictly beats out[j].
/// Strict >/< keeps first-winner-on-ties and ignores NaN challengers,
/// matching the historical scalar loop.
inline void extremal_update(float* out, std::int64_t* arg, const float* msg,
                            std::int64_t ei, std::int64_t n, bool is_max) {
  for (std::int64_t j = 0; j < n; ++j) {
    const float mv = msg[j];
    if (arg[j] < 0 || (is_max ? (mv > out[j]) : (mv < out[j]))) {
      out[j] = mv;
      arg[j] = ei;
    }
  }
}

/// dist[j] = (qx-xs[j])^2 + (qy-ys[j])^2 + (qz-zs[j])^2, evaluated
/// left-to-right exactly like graph.cpp's sq_dist3.
inline void sq_dist3(float* dist, float qx, float qy, float qz,
                     const float* xs, const float* ys, const float* zs,
                     std::int64_t n) {
  for (std::int64_t j = 0; j < n; ++j) {
    const float dx = qx - xs[j], dy = qy - ys[j], dz = qz - zs[j];
    dist[j] = dx * dx + dy * dy + dz * dz;
  }
}

/// dist[j] += (q - row[j])^2 — one feature dimension of a squared
/// Euclidean distance, accumulated per candidate j.
inline void dist_accumulate(float* dist, float q, const float* row,
                            std::int64_t n) {
  for (std::int64_t j = 0; j < n; ++j) {
    const float diff = q - row[j];
    dist[j] += diff * diff;
  }
}

}  // namespace scalar

#if defined(HG_SIMD_AVX2)

namespace detail {

/// extremal_update with the comparison direction lifted to a template
/// parameter: _mm256_cmp_ps wants its predicate as an immediate.
template <bool IsMax>
inline void extremal_update_avx2(float* out, std::int64_t* arg,
                                 const float* msg, std::int64_t ei,
                                 std::int64_t n) {
  constexpr int kPred = IsMax ? _CMP_GT_OQ : _CMP_LT_OQ;  // quiet on NaN,
                                                          // like scalar >/<
  const __m256i vei = _mm256_set1_epi64x(ei);
  const __m256i zero = _mm256_setzero_si256();
  // Gathers the low 32 bits of each 64-bit mask lane into the low 128
  // bits (the masks are all-ones/all-zeros, so any 32 bits represent
  // the lane).
  const __m256i low32 = _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6);
  std::int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 o = _mm256_loadu_ps(out + j);
    const __m256 mv = _mm256_loadu_ps(msg + j);
    const __m256 better = _mm256_cmp_ps(mv, o, kPred);
    const __m256i alo =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(arg + j));
    const __m256i ahi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(arg + j + 4));
    const __m256i unset_lo = _mm256_cmpgt_epi64(zero, alo);  // arg[j] < 0
    const __m256i unset_hi = _mm256_cmpgt_epi64(zero, ahi);
    const __m256i unset32 = _mm256_permute2x128_si256(
        _mm256_permutevar8x32_epi32(unset_lo, low32),
        _mm256_permutevar8x32_epi32(unset_hi, low32), 0x20);
    const __m256 take = _mm256_or_ps(better, _mm256_castsi256_ps(unset32));
    _mm256_storeu_ps(out + j, _mm256_blendv_ps(o, mv, take));
    const __m256i take32 = _mm256_castps_si256(take);
    const __m256i take_lo =
        _mm256_cvtepi32_epi64(_mm256_castsi256_si128(take32));
    const __m256i take_hi =
        _mm256_cvtepi32_epi64(_mm256_extracti128_si256(take32, 1));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(arg + j),
                        _mm256_blendv_epi8(alo, vei, take_lo));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(arg + j + 4),
                        _mm256_blendv_epi8(ahi, vei, take_hi));
  }
  scalar::extremal_update(out + j, arg + j, msg + j, ei, n - j, IsMax);
}

}  // namespace detail

inline void axpy(float* dst, float a, const float* src, std::int64_t n) {
  const __m256 va = _mm256_set1_ps(a);
  std::int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 d = _mm256_loadu_ps(dst + j);
    const __m256 s = _mm256_loadu_ps(src + j);
    _mm256_storeu_ps(dst + j, _mm256_add_ps(d, _mm256_mul_ps(va, s)));
  }
  scalar::axpy(dst + j, a, src + j, n - j);
}

inline void accumulate(float* dst, const float* src, std::int64_t n) {
  std::int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 d = _mm256_loadu_ps(dst + j);
    const __m256 s = _mm256_loadu_ps(src + j);
    _mm256_storeu_ps(dst + j, _mm256_add_ps(d, s));
  }
  scalar::accumulate(dst + j, src + j, n - j);
}

inline void sub(float* dst, const float* a, const float* b, std::int64_t n) {
  std::int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 va = _mm256_loadu_ps(a + j);
    const __m256 vb = _mm256_loadu_ps(b + j);
    _mm256_storeu_ps(dst + j, _mm256_sub_ps(va, vb));
  }
  scalar::sub(dst + j, a + j, b + j, n - j);
}

inline void scale_inv(float* dst, float d, std::int64_t n) {
  const __m256 vd = _mm256_set1_ps(d);
  std::int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 v = _mm256_loadu_ps(dst + j);
    _mm256_storeu_ps(dst + j, _mm256_div_ps(v, vd));
  }
  scalar::scale_inv(dst + j, d, n - j);
}

inline void extremal_update(float* out, std::int64_t* arg, const float* msg,
                            std::int64_t ei, std::int64_t n, bool is_max) {
  if (is_max)
    detail::extremal_update_avx2<true>(out, arg, msg, ei, n);
  else
    detail::extremal_update_avx2<false>(out, arg, msg, ei, n);
}

inline void sq_dist3(float* dist, float qx, float qy, float qz,
                     const float* xs, const float* ys, const float* zs,
                     std::int64_t n) {
  const __m256 vqx = _mm256_set1_ps(qx);
  const __m256 vqy = _mm256_set1_ps(qy);
  const __m256 vqz = _mm256_set1_ps(qz);
  std::int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 dx = _mm256_sub_ps(vqx, _mm256_loadu_ps(xs + j));
    const __m256 dy = _mm256_sub_ps(vqy, _mm256_loadu_ps(ys + j));
    const __m256 dz = _mm256_sub_ps(vqz, _mm256_loadu_ps(zs + j));
    // (dx*dx + dy*dy) + dz*dz — left-to-right like the scalar form.
    const __m256 d = _mm256_add_ps(
        _mm256_add_ps(_mm256_mul_ps(dx, dx), _mm256_mul_ps(dy, dy)),
        _mm256_mul_ps(dz, dz));
    _mm256_storeu_ps(dist + j, d);
  }
  scalar::sq_dist3(dist + j, qx, qy, qz, xs + j, ys + j, zs + j, n - j);
}

inline void dist_accumulate(float* dist, float q, const float* row,
                            std::int64_t n) {
  const __m256 vq = _mm256_set1_ps(q);
  std::int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 diff = _mm256_sub_ps(vq, _mm256_loadu_ps(row + j));
    const __m256 d = _mm256_loadu_ps(dist + j);
    _mm256_storeu_ps(dist + j,
                     _mm256_add_ps(d, _mm256_mul_ps(diff, diff)));
  }
  scalar::dist_accumulate(dist + j, q, row + j, n - j);
}

#else  // !HG_SIMD_AVX2

using scalar::accumulate;
using scalar::axpy;
using scalar::dist_accumulate;
using scalar::extremal_update;
using scalar::scale_inv;
using scalar::sq_dist3;
using scalar::sub;

#endif

}  // namespace hg::simd
