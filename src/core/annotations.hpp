// annotations.hpp — Clang Thread Safety Analysis wiring: attribute macros
// plus capability-annotated mutex and lock-guard wrappers.
//
// Under clang (`-Wthread-safety`, promoted to an error by HG_WERROR in CI)
// the compiler proves at build time that every access to a member marked
// HG_GUARDED_BY(mu) happens with `mu` held, that a function marked
// HG_REQUIRES(mu) is only called under `mu`, and that lock/unlock pairs
// balance on every path. Under gcc the macros expand to nothing and the
// wrappers behave exactly like the std types they wrap — zero overhead,
// zero behavior change.
//
// ---- Annotating new code ---------------------------------------------------
//
// 1. Declare lock-protected state with the wrapper types below, never raw
//    std::mutex / std::shared_mutex: only the wrappers carry the capability
//    attribute the analysis keys on.
//
//      core::Mutex mutex_;
//      std::deque<Task> queue_ HG_GUARDED_BY(mutex_);
//
// 2. Take locks through the scoped guards (MutexLock, UniqueMutexLock,
//    ReaderLock, WriterLock). The analysis understands their constructor/
//    destructor pairs; a bare mutex_.lock() without a matching unlock on
//    some path is a compile error.
//
// 3. A private helper that expects the caller to hold the lock gets
//    HG_REQUIRES(mutex_) on its *declaration* — then forgetting the lock at
//    any call site is a compile error, which is the whole point.
//
// 4. Condition variables: pair std::condition_variable_any with
//    UniqueMutexLock and write waits as explicit loops,
//
//      while (!predicate_over_guarded_state) cv_.wait(lock);
//
//    not cv_.wait(lock, [&] {...}): a predicate lambda is analyzed as its
//    own unannotated function and would warn on every guarded read inside.
//
// 5. HG_NO_THREAD_SAFETY_ANALYSIS is a last resort for code whose locking
//    is correct but inexpressible (e.g. lock handoff between functions).
//    Every use must carry a comment saying why the analysis cannot see it.
//
// The annotated modules (serve::Service, net::Server's Impl,
// api::EvalContext, hgnas::EvalCache, core's pool) are the reference for
// idiom; clang's own documentation
// (clang.llvm.org/docs/ThreadSafetyAnalysis.html) for the semantics.
#pragma once

#include <mutex>
#include <shared_mutex>

// Attribute spellings: GNU attributes, understood by clang whenever thread
// safety analysis is available; expanded away everywhere else (gcc accepts
// but ignores a few of them — silence is not checking, so gate on clang).
#if defined(__clang__)
#define HG_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define HG_THREAD_ANNOTATION(x)
#endif

/// On a type: instances are capabilities (lockable things).
#define HG_CAPABILITY(x) HG_THREAD_ANNOTATION(capability(x))
/// On a type: RAII object that acquires in its ctor, releases in its dtor.
#define HG_SCOPED_CAPABILITY HG_THREAD_ANNOTATION(scoped_lockable)

/// On a member: may only be read/written while holding `x`.
#define HG_GUARDED_BY(x) HG_THREAD_ANNOTATION(guarded_by(x))
/// On a pointer member: the *pointee* is protected by `x`.
#define HG_PT_GUARDED_BY(x) HG_THREAD_ANNOTATION(pt_guarded_by(x))

/// On a function: caller must hold the capability (exclusively / shared).
#define HG_REQUIRES(...) \
  HG_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define HG_REQUIRES_SHARED(...) \
  HG_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// On a function: acquires / releases the capability.
#define HG_ACQUIRE(...) HG_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define HG_ACQUIRE_SHARED(...) \
  HG_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define HG_RELEASE(...) HG_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define HG_RELEASE_SHARED(...) \
  HG_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define HG_TRY_ACQUIRE(...) \
  HG_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// On a function: must be called WITHOUT the capability (deadlock guard for
/// functions that take it themselves).
#define HG_EXCLUDES(...) HG_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// On a function returning a reference to a capability.
#define HG_RETURN_CAPABILITY(x) HG_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch — see rule 5 above.
#define HG_NO_THREAD_SAFETY_ANALYSIS \
  HG_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace hg::core {

/// std::mutex carrying the capability attribute. Prefer the scoped guards;
/// lock()/unlock() exist for the guards and for condition-variable plumbing.
class HG_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() HG_ACQUIRE() { mu_.lock(); }
  void unlock() HG_RELEASE() { mu_.unlock(); }
  bool try_lock() HG_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// std::shared_mutex carrying the capability attribute (reader/writer).
class HG_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() HG_ACQUIRE() { mu_.lock(); }
  void unlock() HG_RELEASE() { mu_.unlock(); }
  void lock_shared() HG_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() HG_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// std::lock_guard<Mutex> with the scoped-capability attribute: holds the
/// mutex for exactly the enclosing scope.
class HG_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) HG_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() HG_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// std::unique_lock<Mutex> equivalent: a scoped hold that can be dropped
/// and re-taken mid-scope (worker loops that run a task outside the lock)
/// and that condition_variable_any can wait on. The analysis tracks the
/// explicit lock()/unlock() calls, so guarded state touched while dropped
/// is still a compile error. Must be locked again when the scope exits
/// (the destructor releases unconditionally) — the analysis enforces that
/// too, on every path.
class HG_SCOPED_CAPABILITY UniqueMutexLock {
 public:
  explicit UniqueMutexLock(Mutex& mu) HG_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~UniqueMutexLock() HG_RELEASE() { mu_.unlock(); }

  void lock() HG_ACQUIRE() { mu_.lock(); }
  void unlock() HG_RELEASE() { mu_.unlock(); }

  UniqueMutexLock(const UniqueMutexLock&) = delete;
  UniqueMutexLock& operator=(const UniqueMutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Scoped shared (reader) hold on a SharedMutex.
class HG_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) HG_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderLock() HG_RELEASE() { mu_.unlock_shared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Scoped exclusive (writer) hold on a SharedMutex.
class HG_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) HG_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterLock() HG_RELEASE() { mu_.unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace hg::core
