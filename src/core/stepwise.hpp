// stepwise.hpp — a minimal resumable-unit-of-work coroutine.
//
// core::Stepper is how long-running loops (EA generations, training epochs)
// expose a step() boundary to a scheduler without duplicating the loop body:
// the monolithic entry point and the stepwise one drive the SAME coroutine,
// so the two are bit-identical by construction. The coroutine suspends with
// `co_await std::suspend_always{}` at each step boundary; all loop state
// (RNG draws in flight, populations, counters) lives in the frame.
//
// Lifetime rules (the usual coroutine ones):
//  * reference/pointer parameters and `this` must outlive the frame — pass
//    small values (configs, FunctionSets) BY VALUE when the caller's copy
//    may die before the last step();
//  * Stepper owns the frame: move-only, destroys it on destruction even if
//    the body never ran to completion (partial runs are abandonable).
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

namespace hg::core {

/// A unit of work advanced one step at a time. Obtain one by calling a
/// coroutine that returns Stepper; nothing runs until the first step().
class Stepper {
 public:
  struct promise_type {
    std::exception_ptr error;

    Stepper get_return_object() {
      return Stepper(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { error = std::current_exception(); }
  };

  Stepper() = default;
  Stepper(Stepper&& other) noexcept
      : handle_(std::exchange(other.handle_, {})) {}
  Stepper& operator=(Stepper&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Stepper(const Stepper&) = delete;
  Stepper& operator=(const Stepper&) = delete;
  ~Stepper() { destroy(); }

  /// Run up to the next suspension point (or completion). Returns true
  /// while more steps remain, false once the body finished. An exception
  /// thrown by the body is rethrown here, from the step that hit it; the
  /// stepper is done afterwards.
  bool step() {
    if (!handle_ || handle_.done()) return false;
    handle_.resume();
    if (handle_.done()) {
      if (handle_.promise().error)
        std::rethrow_exception(
            std::exchange(handle_.promise().error, nullptr));
      return false;
    }
    return true;
  }

  bool done() const { return !handle_ || handle_.done(); }

 private:
  explicit Stepper(std::coroutine_handle<promise_type> handle)
      : handle_(handle) {}

  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

}  // namespace hg::core
