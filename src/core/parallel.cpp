#include "core/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/annotations.hpp"

namespace hg::core {

namespace {

thread_local bool t_in_parallel_region = false;

/// One fork-join job: workers (plus the caller) claim chunk indices from an
/// atomic cursor until exhausted. Chunk boundaries are fixed before any
/// thread runs, so the decomposition never depends on scheduling.
struct Job {
  std::int64_t begin = 0;
  std::int64_t chunk = 1;
  std::int64_t end = 0;
  std::int64_t num_chunks = 0;
  const std::function<void(std::int64_t, std::int64_t)>* fn = nullptr;
  std::atomic<std::int64_t> next{0};
  std::atomic<std::int64_t> remaining{0};
  Mutex err_mutex;
  std::exception_ptr error HG_GUARDED_BY(err_mutex);

  void run_chunks() {
    t_in_parallel_region = true;
    for (;;) {
      const std::int64_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) break;
      const std::int64_t lo = begin + c * chunk;
      const std::int64_t hi = std::min(end, lo + chunk);
      try {
        (*fn)(lo, hi);
      } catch (...) {
        MutexLock lock(err_mutex);
        if (!error) error = std::current_exception();
      }
    }
    t_in_parallel_region = false;
  }
};

class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  std::int64_t width() const { return width_.load(std::memory_order_relaxed); }

  void resize(std::int64_t n) {
    MutexLock lock(resize_mutex_);
    if (n == width()) return;
    stop_workers();
    width_.store(n, std::memory_order_relaxed);
    start_workers();
  }

  /// Execute `job` on the pool; the caller participates and blocks until
  /// every chunk has run.
  void run(Job& job) {
    {
      MutexLock lock(queue_mutex_);
      pending_.push_back(&job);
    }
    wake_.notify_all();
    job.run_chunks();
    // The caller ran out of chunks. Unpublish the job so no further worker
    // can join it (the Job lives on the caller's stack), then wait for the
    // workers already inside it.
    UniqueMutexLock lock(queue_mutex_);
    const auto it = std::find(pending_.begin(), pending_.end(), &job);
    if (it != pending_.end()) pending_.erase(it);  // a worker may have already
    while (job.remaining.load(std::memory_order_acquire) != 0)
      done_.wait(lock);
  }

 private:
  Pool() {
    width_.store(hardware_threads(), std::memory_order_relaxed);
    MutexLock lock(resize_mutex_);
    start_workers();
  }

  ~Pool() {
    MutexLock lock(resize_mutex_);
    stop_workers();
  }

  void start_workers() HG_REQUIRES(resize_mutex_) {
    const std::int64_t n = width() - 1;
    shutdown_ = false;
    for (std::int64_t i = 0; i < n; ++i) {
      try {
        workers_.emplace_back([this] { worker_loop(); });
      } catch (...) {
        // Thread creation failed (resource exhaustion): keep the pool
        // consistent at the width actually achieved, then report.
        width_.store(static_cast<std::int64_t>(workers_.size()) + 1,
                     std::memory_order_relaxed);
        throw;
      }
    }
  }

  void stop_workers() HG_REQUIRES(resize_mutex_) {
    {
      MutexLock lock(queue_mutex_);
      shutdown_ = true;
    }
    wake_.notify_all();
    for (auto& w : workers_) w.join();
    workers_.clear();
  }

  void worker_loop() {
    for (;;) {
      Job* job = nullptr;
      {
        UniqueMutexLock lock(queue_mutex_);
        while (!shutdown_ && pending_.empty()) wake_.wait(lock);
        if (shutdown_) return;
        job = pending_.front();
        // Keep the job visible until its chunks are exhausted so every idle
        // worker can join in; drop it once the cursor has passed the end.
        if (job->next.load(std::memory_order_relaxed) >= job->num_chunks) {
          pending_.erase(pending_.begin());
          continue;
        }
        job->remaining.fetch_add(1, std::memory_order_acq_rel);
      }
      job->run_chunks();
      job->remaining.fetch_sub(1, std::memory_order_acq_rel);
      {
        // Lock pairs the decrement with the caller's predicate check so the
        // final wakeup cannot be lost.
        MutexLock lock(queue_mutex_);
      }
      done_.notify_all();
    }
  }

  std::atomic<std::int64_t> width_{1};
  Mutex resize_mutex_;

  Mutex queue_mutex_;
  std::condition_variable_any wake_;  // waits on UniqueMutexLock
  std::condition_variable_any done_;
  std::vector<Job*> pending_ HG_GUARDED_BY(queue_mutex_);
  std::vector<std::thread> workers_ HG_GUARDED_BY(resize_mutex_);
  bool shutdown_ HG_GUARDED_BY(queue_mutex_) = false;
};

}  // namespace

std::int64_t hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::int64_t>(n);
}

std::int64_t num_threads() { return Pool::instance().width(); }

void set_num_threads(std::int64_t n) {
  if (n < 0) throw std::invalid_argument("set_num_threads: negative count");
  if (in_parallel_region())
    throw std::logic_error("set_num_threads inside a parallel region");
  Pool::instance().resize(n == 0 ? hardware_threads() : n);
}

bool in_parallel_region() { return t_in_parallel_region; }

void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (begin >= end) return;
  if (grain < 1) grain = 1;
  const std::int64_t range = end - begin;
  const std::int64_t threads = num_threads();
  if (threads == 1 || range <= grain || in_parallel_region()) {
    fn(begin, end);
    return;
  }
  // Fixed decomposition: enough chunks for dynamic load balance, never so
  // many that scheduling overhead dominates, each at least `grain` wide.
  const std::int64_t max_chunks =
      std::min<std::int64_t>((range + grain - 1) / grain, threads * 4);
  Job job;
  job.begin = begin;
  job.end = end;
  job.num_chunks = std::max<std::int64_t>(1, max_chunks);
  job.chunk = (range + job.num_chunks - 1) / job.num_chunks;
  // Recompute: ceil division can leave trailing empty chunks; shrink count.
  job.num_chunks = (range + job.chunk - 1) / job.chunk;
  job.fn = &fn;
  Pool::instance().run(job);
  std::exception_ptr error;
  {
    // run() has joined every worker that entered the job, but the analysis
    // only knows `error` by its guard.
    MutexLock lock(job.err_mutex);
    error = job.error;
  }
  if (error) std::rethrow_exception(error);
}

void parallel_invoke(std::int64_t n,
                     const std::function<void(std::int64_t)>& fn) {
  parallel_for(0, n, 1, [&fn](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) fn(i);
  });
}

}  // namespace hg::core
