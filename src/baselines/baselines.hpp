// baselines.hpp — DGCNN and the two manually-optimised comparison points.
//
// The paper compares HGNAS against:
//  * DGCNN (Wang et al., ACM TOG 2019): four dynamic EdgeConv layers, each
//    rebuilding a KNN graph in feature space, concat skip head.
//  * Li et al. [6] (ICCV 2021): eliminates the redundant per-layer graph
//    construction by *reusing the sampled results* across layers.
//  * Tailor et al. [7] (ICCV 2021): architectural simplification — a single
//    spatial graph plus simplified latter layers (the representational
//    power of front layers matters most, paper Observation ②).
//
// Every baseline provides (a) a trainable model over this repo's synthetic
// dataset and (b) a cost-model lowering at arbitrary workloads so the
// paper-scale latency/memory numbers (Table II, Fig. 1, Fig. 2) can be
// reproduced on the device models.
#pragma once

#include <memory>
#include <vector>

#include "core/stepwise.hpp"
#include "gnn/gnn.hpp"
#include "hw/device.hpp"
#include "nn/nn.hpp"
#include "pointcloud/pointcloud.hpp"

namespace hg::baselines {

struct DgcnnConfig {
  std::vector<std::int64_t> dims = {64, 64, 128, 256};  // EdgeConv widths
  std::int64_t emb = 1024;          // embedding conv after concat
  std::int64_t head_hidden1 = 512;  // classifier MLP
  std::int64_t head_hidden2 = 256;
  std::int64_t k = 20;
  std::int64_t num_classes = 40;
  /// Layers 1..reuse_from_layer build their own KNN graph (layer 1 over
  /// raw points, deeper ones over features); layers beyond reuse the last
  /// built graph. 4 = original DGCNN (all dynamic); 1 = Li et al. [6]
  /// (single sample, fully reused). Drives the Fig. 2(b) sweep.
  std::int64_t reuse_from_layer = 4;

  /// CPU-sized configuration for actual training in tests/benches.
  static DgcnnConfig scaled(std::int64_t num_classes, std::int64_t k);
};

/// DGCNN and its sampling-reuse variants.
class Dgcnn final : public nn::Module {
 public:
  Dgcnn(DgcnnConfig cfg, Rng& rng);

  /// One cloud [n, 3] -> logits [1, classes].
  Tensor forward(const Tensor& points);

  std::vector<Tensor> parameters() const override;
  void set_training(bool training) override;

  const DgcnnConfig& config() const { return cfg_; }
  double param_mb() const;

  /// Cost-model lowering at a given point count (mirrors forward exactly,
  /// including graph reuse).
  static hw::Trace trace(const DgcnnConfig& cfg, std::int64_t num_points);

 private:
  DgcnnConfig cfg_;
  std::vector<std::unique_ptr<gnn::EdgeConv>> convs_;
  std::unique_ptr<nn::Linear> emb_lin_;
  std::unique_ptr<nn::BatchNorm1d> emb_bn_;
  std::unique_ptr<nn::Linear> head1_, head2_, head3_;
};

/// Li et al. [6]: DGCNN with the sampling reused across all layers.
DgcnnConfig li_optimized_config(const DgcnnConfig& base);

struct TailorConfig {
  std::int64_t dim1 = 64;  // two full EdgeConv layers kept
  std::int64_t dim2 = 64;
  std::int64_t dim3 = 128;  // simplified latter layers: plain combines
  std::int64_t dim4 = 256;
  std::int64_t emb = 1024;
  std::int64_t head_hidden1 = 512;
  std::int64_t head_hidden2 = 256;
  std::int64_t k = 20;
  std::int64_t num_classes = 40;

  static TailorConfig scaled(std::int64_t num_classes, std::int64_t k);
};

/// Tailor et al. [7]: single spatial KNN graph; the two latter EdgeConvs
/// are replaced by aggregate-free linear combines.
class TailorGnn final : public nn::Module {
 public:
  TailorGnn(TailorConfig cfg, Rng& rng);

  Tensor forward(const Tensor& points);

  std::vector<Tensor> parameters() const override;
  void set_training(bool training) override;

  const TailorConfig& config() const { return cfg_; }
  double param_mb() const;

  static hw::Trace trace(const TailorConfig& cfg, std::int64_t num_points);

 private:
  TailorConfig cfg_;
  std::unique_ptr<gnn::EdgeConv> conv1_, conv2_;
  std::unique_ptr<nn::Linear> lin3_, lin4_;
  std::unique_ptr<nn::BatchNorm1d> bn3_, bn4_;
  std::unique_ptr<nn::Linear> emb_lin_;
  std::unique_ptr<nn::BatchNorm1d> emb_bn_;
  std::unique_ptr<nn::Linear> head1_, head2_, head3_;
};

/// Shared training loop for baseline models (mirrors hgnas::train_model).
struct BaselineEval {
  double overall_acc = 0.0;
  double balanced_acc = 0.0;
};

template <typename ModelT>
BaselineEval train_baseline(ModelT& model, const pointcloud::Dataset& data,
                            std::int64_t epochs, float lr, Rng& rng);

/// The same training loop with one suspension per epoch (the final step runs
/// the test-set evaluation into *out). train_baseline drives this coroutine
/// to completion, so stepped and monolithic runs are bit-identical. All
/// references must outlive the returned stepper.
template <typename ModelT>
core::Stepper train_baseline_stepwise(ModelT& model,
                                      const pointcloud::Dataset& data,
                                      std::int64_t epochs, float lr, Rng& rng,
                                      BaselineEval* out);

}  // namespace hg::baselines
