#include "baselines/baselines.hpp"

#include <algorithm>
#include <stdexcept>

#include "tensor/optim.hpp"

namespace hg::baselines {

namespace {

void check(bool cond, const std::string& msg) {
  if (!cond) throw std::invalid_argument("baselines: " + msg);
}

}  // namespace

DgcnnConfig DgcnnConfig::scaled(std::int64_t num_classes, std::int64_t k) {
  DgcnnConfig c;
  c.dims = {24, 24, 32, 48};
  c.emb = 128;
  c.head_hidden1 = 64;
  c.head_hidden2 = 32;
  c.k = k;
  c.num_classes = num_classes;
  return c;
}

Dgcnn::Dgcnn(DgcnnConfig cfg, Rng& rng) : cfg_(std::move(cfg)) {
  check(cfg_.dims.size() >= 1, "Dgcnn: need at least one EdgeConv layer");
  check(cfg_.reuse_from_layer >= 1 &&
            cfg_.reuse_from_layer <=
                static_cast<std::int64_t>(cfg_.dims.size()),
        "Dgcnn: reuse_from_layer must be in [1, num_layers]");
  std::int64_t in = 3;
  std::int64_t concat_dim = 0;
  for (auto out : cfg_.dims) {
    convs_.push_back(std::make_unique<gnn::EdgeConv>(in, out, rng));
    concat_dim += out;
    in = out;
  }
  emb_lin_ = std::make_unique<nn::Linear>(concat_dim, cfg_.emb, rng);
  emb_bn_ = std::make_unique<nn::BatchNorm1d>(cfg_.emb);
  head1_ = std::make_unique<nn::Linear>(cfg_.emb, cfg_.head_hidden1, rng);
  head2_ =
      std::make_unique<nn::Linear>(cfg_.head_hidden1, cfg_.head_hidden2, rng);
  head3_ =
      std::make_unique<nn::Linear>(cfg_.head_hidden2, cfg_.num_classes, rng);
}

Tensor Dgcnn::forward(const Tensor& points) {
  check(points.dim() == 2 && points.shape()[1] == 3,
        "Dgcnn: points must be [n, 3]");
  const std::int64_t n = points.shape()[0];
  check(n > 1, "Dgcnn: need at least 2 points");
  const std::int64_t kk = std::min<std::int64_t>(cfg_.k, n - 1);

  Tensor h = points;
  graph::EdgeList g;
  std::vector<Tensor> layer_outs;
  for (std::size_t l = 0; l < convs_.size(); ++l) {
    if (static_cast<std::int64_t>(l) < cfg_.reuse_from_layer) {
      // Dynamic graph: layer 1 over raw points, deeper over features
      // (detached — graph construction is not differentiable).
      if (l == 0) {
        g = graph::knn_graph(points.data(), n, kk);
      } else {
        Tensor feats = h.detach();
        g = graph::knn_graph_features(feats.data(), n, feats.shape()[1], kk);
      }
    }
    h = convs_[l]->forward(h, g);
    layer_outs.push_back(h);
  }
  Tensor cat = concat(layer_outs, 1);
  Tensor emb = leaky_relu(emb_bn_->forward(emb_lin_->forward(cat)), 0.2f);
  Tensor pooled = gnn::global_max_pool(emb);
  Tensor z = leaky_relu(head1_->forward(pooled), 0.2f);
  z = leaky_relu(head2_->forward(z), 0.2f);
  return head3_->forward(z);
}

std::vector<Tensor> Dgcnn::parameters() const {
  std::vector<Tensor> out;
  for (const auto& c : convs_)
    for (auto& p : c->parameters()) out.push_back(p);
  for (auto& p : emb_lin_->parameters()) out.push_back(p);
  for (auto& p : emb_bn_->parameters()) out.push_back(p);
  for (auto& p : head1_->parameters()) out.push_back(p);
  for (auto& p : head2_->parameters()) out.push_back(p);
  for (auto& p : head3_->parameters()) out.push_back(p);
  return out;
}

void Dgcnn::set_training(bool training) {
  Module::set_training(training);
  for (auto& c : convs_) c->set_training(training);
  emb_bn_->set_training(training);
}

double Dgcnn::param_mb() const {
  return static_cast<double>(num_parameters()) * 4.0 / 1e6;
}

hw::Trace Dgcnn::trace(const DgcnnConfig& cfg, std::int64_t num_points) {
  check(num_points > 1, "Dgcnn::trace: need at least 2 points");
  const std::int64_t n = num_points;
  const std::int64_t kk = std::min<std::int64_t>(cfg.k, n - 1);
  const std::int64_t e = n * kk;
  hw::TraceBuilder tb;
  double params = 0.0;
  std::int64_t in = 3;
  std::int64_t concat_dim = 0;
  for (std::size_t l = 0; l < cfg.dims.size(); ++l) {
    const std::int64_t out = cfg.dims[l];
    if (static_cast<std::int64_t>(l) < cfg.reuse_from_layer)
      tb.knn(n, in, kk);
    tb.edge_mlp_aggregate(e, in, out);  // fused message MLP + max reduce
    tb.other(n, out, "bn_act");
    params += static_cast<double>(2 * in * out + out) + 2.0 * out;
    concat_dim += out;
    in = out;
  }
  tb.combine(n, concat_dim, cfg.emb);
  params += static_cast<double>(concat_dim * cfg.emb + cfg.emb) +
            2.0 * static_cast<double>(cfg.emb);
  tb.other(n, cfg.emb, "global_max_pool");
  tb.combine(1, cfg.emb, cfg.head_hidden1);
  tb.combine(1, cfg.head_hidden1, cfg.head_hidden2);
  tb.combine(1, cfg.head_hidden2, cfg.num_classes);
  params += static_cast<double>(cfg.emb * cfg.head_hidden1 +
                                cfg.head_hidden1 * cfg.head_hidden2 +
                                cfg.head_hidden2 * cfg.num_classes +
                                cfg.head_hidden1 + cfg.head_hidden2 +
                                cfg.num_classes);
  tb.other(1, cfg.head_hidden2, "head_act");
  tb.set_param_mb(params * 4.0 / 1e6);
  return tb.build();
}

DgcnnConfig li_optimized_config(const DgcnnConfig& base) {
  DgcnnConfig c = base;
  c.reuse_from_layer = 1;  // single sample, reused everywhere [6]
  return c;
}

TailorConfig TailorConfig::scaled(std::int64_t num_classes, std::int64_t k) {
  TailorConfig c;
  c.dim1 = 24;
  c.dim2 = 24;
  c.dim3 = 32;
  c.dim4 = 48;
  c.emb = 128;
  c.head_hidden1 = 64;
  c.head_hidden2 = 32;
  c.k = k;
  c.num_classes = num_classes;
  return c;
}

TailorGnn::TailorGnn(TailorConfig cfg, Rng& rng) : cfg_(std::move(cfg)) {
  conv1_ = std::make_unique<gnn::EdgeConv>(3, cfg_.dim1, rng);
  conv2_ = std::make_unique<gnn::EdgeConv>(cfg_.dim1, cfg_.dim2, rng);
  lin3_ = std::make_unique<nn::Linear>(cfg_.dim2, cfg_.dim3, rng);
  bn3_ = std::make_unique<nn::BatchNorm1d>(cfg_.dim3);
  lin4_ = std::make_unique<nn::Linear>(cfg_.dim3, cfg_.dim4, rng);
  bn4_ = std::make_unique<nn::BatchNorm1d>(cfg_.dim4);
  const std::int64_t concat_dim =
      cfg_.dim1 + cfg_.dim2 + cfg_.dim3 + cfg_.dim4;
  emb_lin_ = std::make_unique<nn::Linear>(concat_dim, cfg_.emb, rng);
  emb_bn_ = std::make_unique<nn::BatchNorm1d>(cfg_.emb);
  head1_ = std::make_unique<nn::Linear>(cfg_.emb, cfg_.head_hidden1, rng);
  head2_ =
      std::make_unique<nn::Linear>(cfg_.head_hidden1, cfg_.head_hidden2, rng);
  head3_ =
      std::make_unique<nn::Linear>(cfg_.head_hidden2, cfg_.num_classes, rng);
}

Tensor TailorGnn::forward(const Tensor& points) {
  check(points.dim() == 2 && points.shape()[1] == 3,
        "TailorGnn: points must be [n, 3]");
  const std::int64_t n = points.shape()[0];
  check(n > 1, "TailorGnn: need at least 2 points");
  const std::int64_t kk = std::min<std::int64_t>(cfg_.k, n - 1);

  // Single spatial graph for the whole network [7].
  graph::EdgeList g = graph::knn_graph(points.data(), n, kk);
  Tensor h1 = conv1_->forward(points, g);
  Tensor h2 = conv2_->forward(h1, g);
  // Simplified latter layers: plain per-node combines, no edge messages.
  Tensor h3 = leaky_relu(bn3_->forward(lin3_->forward(h2)), 0.2f);
  Tensor h4 = leaky_relu(bn4_->forward(lin4_->forward(h3)), 0.2f);
  Tensor cat = concat({h1, h2, h3, h4}, 1);
  Tensor emb = leaky_relu(emb_bn_->forward(emb_lin_->forward(cat)), 0.2f);
  Tensor pooled = gnn::global_max_pool(emb);
  Tensor z = leaky_relu(head1_->forward(pooled), 0.2f);
  z = leaky_relu(head2_->forward(z), 0.2f);
  return head3_->forward(z);
}

std::vector<Tensor> TailorGnn::parameters() const {
  std::vector<Tensor> out;
  auto push_all = [&out](const nn::Module& m) {
    for (auto& p : m.parameters()) out.push_back(p);
  };
  push_all(*conv1_);
  push_all(*conv2_);
  push_all(*lin3_);
  push_all(*bn3_);
  push_all(*lin4_);
  push_all(*bn4_);
  push_all(*emb_lin_);
  push_all(*emb_bn_);
  push_all(*head1_);
  push_all(*head2_);
  push_all(*head3_);
  return out;
}

void TailorGnn::set_training(bool training) {
  Module::set_training(training);
  conv1_->set_training(training);
  conv2_->set_training(training);
  bn3_->set_training(training);
  bn4_->set_training(training);
  emb_bn_->set_training(training);
}

double TailorGnn::param_mb() const {
  return static_cast<double>(num_parameters()) * 4.0 / 1e6;
}

hw::Trace TailorGnn::trace(const TailorConfig& cfg, std::int64_t num_points) {
  check(num_points > 1, "TailorGnn::trace: need at least 2 points");
  const std::int64_t n = num_points;
  const std::int64_t kk = std::min<std::int64_t>(cfg.k, n - 1);
  const std::int64_t e = n * kk;
  hw::TraceBuilder tb;
  double params = 0.0;
  tb.knn(n, 3, kk);  // single spatial sample
  // Two full EdgeConv layers.
  tb.edge_mlp_aggregate(e, 3, cfg.dim1);
  tb.other(n, cfg.dim1, "bn_act");
  params += static_cast<double>(6 * cfg.dim1 + 3 * cfg.dim1);
  tb.edge_mlp_aggregate(e, cfg.dim1, cfg.dim2);
  tb.other(n, cfg.dim2, "bn_act");
  params += static_cast<double>(2 * cfg.dim1 * cfg.dim2 + 3 * cfg.dim2);
  // Simplified latter layers.
  tb.combine(n, cfg.dim2, cfg.dim3);
  tb.other(n, cfg.dim3, "bn_act");
  params += static_cast<double>(cfg.dim2 * cfg.dim3 + 3 * cfg.dim3);
  tb.combine(n, cfg.dim3, cfg.dim4);
  tb.other(n, cfg.dim4, "bn_act");
  params += static_cast<double>(cfg.dim3 * cfg.dim4 + 3 * cfg.dim4);
  const std::int64_t concat_dim = cfg.dim1 + cfg.dim2 + cfg.dim3 + cfg.dim4;
  tb.combine(n, concat_dim, cfg.emb);
  params += static_cast<double>(concat_dim * cfg.emb + 3 * cfg.emb);
  tb.other(n, cfg.emb, "global_max_pool");
  tb.combine(1, cfg.emb, cfg.head_hidden1);
  tb.combine(1, cfg.head_hidden1, cfg.head_hidden2);
  tb.combine(1, cfg.head_hidden2, cfg.num_classes);
  params += static_cast<double>(cfg.emb * cfg.head_hidden1 +
                                cfg.head_hidden1 * cfg.head_hidden2 +
                                cfg.head_hidden2 * cfg.num_classes +
                                cfg.head_hidden1 + cfg.head_hidden2 +
                                cfg.num_classes);
  tb.other(1, cfg.head_hidden2, "head_act");
  tb.set_param_mb(params * 4.0 / 1e6);
  return tb.build();
}

template <typename ModelT>
core::Stepper train_baseline_stepwise(ModelT& model,
                                      const pointcloud::Dataset& data,
                                      std::int64_t epochs, float lr, Rng& rng,
                                      BaselineEval* out) {
  check(epochs > 0, "train_baseline: epochs must be positive");
  Adam opt(model.parameters(), lr);
  model.set_training(true);
  const auto& train = data.train();
  const std::int64_t batch = 8;
  for (std::int64_t e = 0; e < epochs; ++e) {
    auto order = pointcloud::shuffled_indices(train.size(), rng);
    std::int64_t in_batch = 0;
    for (std::size_t oi = 0; oi < order.size(); ++oi) {
      const auto& s = train[order[oi]];
      Tensor pts = pointcloud::Dataset::to_tensor(s);
      Tensor logits = model.forward(pts);
      const std::int64_t label[1] = {s.label};
      cross_entropy(logits, label).backward();
      if (++in_batch == batch || oi + 1 == order.size()) {
        opt.step();
        opt.zero_grad();
        in_batch = 0;
      }
    }
    co_await std::suspend_always{};
  }
  // Evaluate.
  NoGradGuard ng;
  model.set_training(false);
  std::vector<std::int64_t> preds, labels;
  for (const auto& s : data.test()) {
    Tensor pts = pointcloud::Dataset::to_tensor(s);
    preds.push_back(argmax_rows(model.forward(pts))[0]);
    labels.push_back(s.label);
  }
  model.set_training(true);
  out->overall_acc = nn::overall_accuracy(preds, labels);
  out->balanced_acc =
      nn::balanced_accuracy(preds, labels, data.num_classes());
}

template <typename ModelT>
BaselineEval train_baseline(ModelT& model, const pointcloud::Dataset& data,
                            std::int64_t epochs, float lr, Rng& rng) {
  BaselineEval out;
  core::Stepper run =
      train_baseline_stepwise(model, data, epochs, lr, rng, &out);
  while (run.step()) {
  }
  return out;
}

// Explicit instantiations for the two baseline model types.
template BaselineEval train_baseline<Dgcnn>(Dgcnn&, const pointcloud::Dataset&,
                                            std::int64_t, float, Rng&);
template BaselineEval train_baseline<TailorGnn>(TailorGnn&,
                                                const pointcloud::Dataset&,
                                                std::int64_t, float, Rng&);
template core::Stepper train_baseline_stepwise<Dgcnn>(
    Dgcnn&, const pointcloud::Dataset&, std::int64_t, float, Rng&,
    BaselineEval*);
template core::Stepper train_baseline_stepwise<TailorGnn>(
    TailorGnn&, const pointcloud::Dataset&, std::int64_t, float, Rng&,
    BaselineEval*);

}  // namespace hg::baselines
