#include "pointcloud/pointcloud.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace hg::pointcloud {

namespace {

constexpr float kPi = 3.14159265358979323846f;

void push_point(std::vector<float>& v, float x, float y, float z) {
  v.push_back(x);
  v.push_back(y);
  v.push_back(z);
}

/// Uniform point on the unit sphere.
void sphere_point(Rng& rng, float& x, float& y, float& z) {
  const float u = rng.uniform(-1.f, 1.f);
  const float phi = rng.uniform(0.f, 2.f * kPi);
  const float r = std::sqrt(std::max(0.f, 1.f - u * u));
  x = r * std::cos(phi);
  y = r * std::sin(phi);
  z = u;
}

std::vector<float> gen_sphere(std::int64_t n, Rng& rng) {
  std::vector<float> pts;
  pts.reserve(static_cast<std::size_t>(n) * 3);
  for (std::int64_t i = 0; i < n; ++i) {
    float x, y, z;
    sphere_point(rng, x, y, z);
    push_point(pts, x, y, z);
  }
  return pts;
}

std::vector<float> gen_ellipsoid(std::int64_t n, Rng& rng) {
  // Fixed 1 : 0.6 : 0.35 axes — distinguishable from the sphere by local
  // curvature, not by global scale (normalisation removes scale).
  std::vector<float> pts;
  pts.reserve(static_cast<std::size_t>(n) * 3);
  for (std::int64_t i = 0; i < n; ++i) {
    float x, y, z;
    sphere_point(rng, x, y, z);
    push_point(pts, x, 0.6f * y, 0.35f * z);
  }
  return pts;
}

std::vector<float> gen_cube(std::int64_t n, Rng& rng) {
  std::vector<float> pts;
  pts.reserve(static_cast<std::size_t>(n) * 3);
  for (std::int64_t i = 0; i < n; ++i) {
    const auto face = static_cast<int>(rng.uniform_int(6));
    const float u = rng.uniform(-1.f, 1.f);
    const float v = rng.uniform(-1.f, 1.f);
    switch (face) {
      case 0: push_point(pts, 1.f, u, v); break;
      case 1: push_point(pts, -1.f, u, v); break;
      case 2: push_point(pts, u, 1.f, v); break;
      case 3: push_point(pts, u, -1.f, v); break;
      case 4: push_point(pts, u, v, 1.f); break;
      default: push_point(pts, u, v, -1.f); break;
    }
  }
  return pts;
}

std::vector<float> gen_cylinder(std::int64_t n, Rng& rng) {
  std::vector<float> pts;
  pts.reserve(static_cast<std::size_t>(n) * 3);
  // Side area : cap area = 2*pi*r*h : 2*pi*r^2 with r=0.5, h=2 -> 4 : 1.
  for (std::int64_t i = 0; i < n; ++i) {
    const float theta = rng.uniform(0.f, 2.f * kPi);
    if (rng.uniform() < 0.8) {
      push_point(pts, 0.5f * std::cos(theta), 0.5f * std::sin(theta),
                 rng.uniform(-1.f, 1.f));
    } else {
      const float r = 0.5f * std::sqrt(static_cast<float>(rng.uniform()));
      push_point(pts, r * std::cos(theta), r * std::sin(theta),
                 rng.uniform() < 0.5 ? -1.f : 1.f);
    }
  }
  return pts;
}

std::vector<float> gen_cone(std::int64_t n, Rng& rng) {
  std::vector<float> pts;
  pts.reserve(static_cast<std::size_t>(n) * 3);
  for (std::int64_t i = 0; i < n; ++i) {
    const float theta = rng.uniform(0.f, 2.f * kPi);
    if (rng.uniform() < 0.75) {
      // Lateral surface: radius shrinks linearly toward the apex; area
      // density grows with radius, so sample sqrt.
      const float t = std::sqrt(static_cast<float>(rng.uniform()));
      const float r = 0.8f * t;
      push_point(pts, r * std::cos(theta), r * std::sin(theta),
                 1.f - 2.f * t);
    } else {
      const float r = 0.8f * std::sqrt(static_cast<float>(rng.uniform()));
      push_point(pts, r * std::cos(theta), r * std::sin(theta), -1.f);
    }
  }
  return pts;
}

std::vector<float> gen_torus(std::int64_t n, Rng& rng) {
  std::vector<float> pts;
  pts.reserve(static_cast<std::size_t>(n) * 3);
  const float R = 0.7f, r = 0.25f;
  for (std::int64_t i = 0; i < n; ++i) {
    // Rejection-sample the poloidal angle for uniform surface density.
    float phi;
    do {
      phi = rng.uniform(0.f, 2.f * kPi);
    } while (rng.uniform() > (R + r * std::cos(phi)) / (R + r));
    const float theta = rng.uniform(0.f, 2.f * kPi);
    push_point(pts, (R + r * std::cos(phi)) * std::cos(theta),
               (R + r * std::cos(phi)) * std::sin(theta), r * std::sin(phi));
  }
  return pts;
}

std::vector<float> gen_pyramid(std::int64_t n, Rng& rng) {
  // Square-base pyramid: 4 triangular faces + base.
  std::vector<float> pts;
  pts.reserve(static_cast<std::size_t>(n) * 3);
  const float apex_z = 1.f, base_z = -1.f, half = 0.9f;
  for (std::int64_t i = 0; i < n; ++i) {
    if (rng.uniform() < 0.3) {  // base
      push_point(pts, rng.uniform(-half, half), rng.uniform(-half, half),
                 base_z);
      continue;
    }
    // Pick a face, then sample the triangle (apex, c0, c1) uniformly.
    const auto f = static_cast<int>(rng.uniform_int(4));
    const float cx[4] = {half, -half, -half, half};
    const float cy[4] = {half, half, -half, -half};
    const int f2 = (f + 1) % 4;
    float u = static_cast<float>(rng.uniform());
    float v = static_cast<float>(rng.uniform());
    if (u + v > 1.f) {
      u = 1.f - u;
      v = 1.f - v;
    }
    const float w = 1.f - u - v;
    push_point(pts, u * cx[f] + v * cx[f2],
               u * cy[f] + v * cy[f2], w * apex_z + (u + v) * base_z);
  }
  return pts;
}

std::vector<float> gen_helix(std::int64_t n, Rng& rng) {
  // Tube around a 3-turn helix — a curve-like class with 1-D local
  // structure, very different neighbourhoods from surface classes.
  std::vector<float> pts;
  pts.reserve(static_cast<std::size_t>(n) * 3);
  const float turns = 3.f, radius = 0.7f, tube = 0.08f;
  for (std::int64_t i = 0; i < n; ++i) {
    const float t = static_cast<float>(rng.uniform());
    const float theta = t * turns * 2.f * kPi;
    const float cx = radius * std::cos(theta);
    const float cy = radius * std::sin(theta);
    const float cz = 2.f * t - 1.f;
    float ox, oy, oz;
    sphere_point(rng, ox, oy, oz);
    push_point(pts, cx + tube * ox, cy + tube * oy, cz + tube * oz);
  }
  return pts;
}

std::vector<float> gen_cross_planes(std::int64_t n, Rng& rng) {
  // Two unit squares intersecting at 90 degrees — sharp crease geometry.
  std::vector<float> pts;
  pts.reserve(static_cast<std::size_t>(n) * 3);
  for (std::int64_t i = 0; i < n; ++i) {
    const float u = rng.uniform(-1.f, 1.f);
    const float v = rng.uniform(-1.f, 1.f);
    if (rng.uniform() < 0.5)
      push_point(pts, u, 0.f, v);
    else
      push_point(pts, 0.f, u, v);
  }
  return pts;
}

std::vector<float> gen_capsule(std::int64_t n, Rng& rng) {
  // Cylinder with hemispherical caps (r = 0.4, half-height 0.6).
  std::vector<float> pts;
  pts.reserve(static_cast<std::size_t>(n) * 3);
  const float r = 0.4f, h = 0.6f;
  // Area split: side 2*pi*r*2h vs caps 4*pi*r^2 -> 2h : 2r = 0.6 : 0.4.
  for (std::int64_t i = 0; i < n; ++i) {
    if (rng.uniform() < 0.6) {
      const float theta = rng.uniform(0.f, 2.f * kPi);
      push_point(pts, r * std::cos(theta), r * std::sin(theta),
                 rng.uniform(-h, h));
    } else {
      float x, y, z;
      sphere_point(rng, x, y, z);
      const float zc = z >= 0.f ? h : -h;
      push_point(pts, r * x, r * y, zc + r * z);
    }
  }
  return pts;
}

/// Random rotation matrix via quaternion (uniform over SO(3)).
void random_rotation_matrix(Rng& rng, float m[9]) {
  const float u1 = static_cast<float>(rng.uniform());
  const float u2 = static_cast<float>(rng.uniform());
  const float u3 = static_cast<float>(rng.uniform());
  const float a = std::sqrt(1.f - u1), b = std::sqrt(u1);
  const float qx = a * std::sin(2.f * kPi * u2);
  const float qy = a * std::cos(2.f * kPi * u2);
  const float qz = b * std::sin(2.f * kPi * u3);
  const float qw = b * std::cos(2.f * kPi * u3);
  m[0] = 1 - 2 * (qy * qy + qz * qz);
  m[1] = 2 * (qx * qy - qz * qw);
  m[2] = 2 * (qx * qz + qy * qw);
  m[3] = 2 * (qx * qy + qz * qw);
  m[4] = 1 - 2 * (qx * qx + qz * qz);
  m[5] = 2 * (qy * qz - qx * qw);
  m[6] = 2 * (qx * qz - qy * qw);
  m[7] = 2 * (qy * qz + qx * qw);
  m[8] = 1 - 2 * (qx * qx + qy * qy);
}

}  // namespace

std::string shape_class_name(ShapeClass c) {
  switch (c) {
    case ShapeClass::Sphere: return "sphere";
    case ShapeClass::Cube: return "cube";
    case ShapeClass::Cylinder: return "cylinder";
    case ShapeClass::Cone: return "cone";
    case ShapeClass::Torus: return "torus";
    case ShapeClass::Pyramid: return "pyramid";
    case ShapeClass::Ellipsoid: return "ellipsoid";
    case ShapeClass::Helix: return "helix";
    case ShapeClass::CrossPlanes: return "cross_planes";
    case ShapeClass::Capsule: return "capsule";
  }
  return "unknown";
}

std::vector<float> generate_shape(ShapeClass c, std::int64_t num_points,
                                  Rng& rng) {
  if (num_points <= 0)
    throw std::invalid_argument("generate_shape: num_points must be positive");
  switch (c) {
    case ShapeClass::Sphere: return gen_sphere(num_points, rng);
    case ShapeClass::Cube: return gen_cube(num_points, rng);
    case ShapeClass::Cylinder: return gen_cylinder(num_points, rng);
    case ShapeClass::Cone: return gen_cone(num_points, rng);
    case ShapeClass::Torus: return gen_torus(num_points, rng);
    case ShapeClass::Pyramid: return gen_pyramid(num_points, rng);
    case ShapeClass::Ellipsoid: return gen_ellipsoid(num_points, rng);
    case ShapeClass::Helix: return gen_helix(num_points, rng);
    case ShapeClass::CrossPlanes: return gen_cross_planes(num_points, rng);
    case ShapeClass::Capsule: return gen_capsule(num_points, rng);
  }
  throw std::invalid_argument("generate_shape: unknown class");
}

void augment(std::vector<float>& points, const AugmentConfig& cfg, Rng& rng) {
  const std::size_t n = points.size() / 3;
  if (cfg.rotation == RotationMode::Full) {
    float m[9];
    random_rotation_matrix(rng, m);
    for (std::size_t i = 0; i < n; ++i) {
      const float x = points[i * 3], y = points[i * 3 + 1],
                  z = points[i * 3 + 2];
      points[i * 3] = m[0] * x + m[1] * y + m[2] * z;
      points[i * 3 + 1] = m[3] * x + m[4] * y + m[5] * z;
      points[i * 3 + 2] = m[6] * x + m[7] * y + m[8] * z;
    }
  } else if (cfg.rotation == RotationMode::ZAxis) {
    const float theta = rng.uniform(0.f, 2.f * kPi);
    const float c = std::cos(theta), s = std::sin(theta);
    for (std::size_t i = 0; i < n; ++i) {
      const float x = points[i * 3], y = points[i * 3 + 1];
      points[i * 3] = c * x - s * y;
      points[i * 3 + 1] = s * x + c * y;
    }
  }
  const float sx = rng.uniform(cfg.scale_low, cfg.scale_high);
  const float sy = rng.uniform(cfg.scale_low, cfg.scale_high);
  const float sz = rng.uniform(cfg.scale_low, cfg.scale_high);
  for (std::size_t i = 0; i < n; ++i) {
    points[i * 3] *= sx;
    points[i * 3 + 1] *= sy;
    points[i * 3 + 2] *= sz;
  }
  if (cfg.jitter_sigma > 0.f) {
    for (auto& v : points) {
      const float noise = std::clamp(rng.normal(0.f, cfg.jitter_sigma),
                                     -cfg.jitter_clip, cfg.jitter_clip);
      v += noise;
    }
  }
  if (cfg.outlier_fraction > 0.f) {
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.uniform() < cfg.outlier_fraction) {
        points[i * 3] = rng.uniform(-1.f, 1.f);
        points[i * 3 + 1] = rng.uniform(-1.f, 1.f);
        points[i * 3 + 2] = rng.uniform(-1.f, 1.f);
      }
    }
  }
}

void normalize_unit_sphere(std::vector<float>& points) {
  const std::size_t n = points.size() / 3;
  if (n == 0) return;
  float cx = 0.f, cy = 0.f, cz = 0.f;
  for (std::size_t i = 0; i < n; ++i) {
    cx += points[i * 3];
    cy += points[i * 3 + 1];
    cz += points[i * 3 + 2];
  }
  cx /= static_cast<float>(n);
  cy /= static_cast<float>(n);
  cz /= static_cast<float>(n);
  float max_r = 1e-9f;
  for (std::size_t i = 0; i < n; ++i) {
    points[i * 3] -= cx;
    points[i * 3 + 1] -= cy;
    points[i * 3 + 2] -= cz;
    const float r2 = points[i * 3] * points[i * 3] +
                     points[i * 3 + 1] * points[i * 3 + 1] +
                     points[i * 3 + 2] * points[i * 3 + 2];
    max_r = std::max(max_r, r2);
  }
  const float inv = 1.f / std::sqrt(max_r);
  for (auto& v : points) v *= inv;
}

Dataset::Dataset(std::int64_t samples_per_class, std::int64_t num_points,
                 std::uint64_t seed, const AugmentConfig& cfg,
                 double train_fraction)
    : num_points_(num_points) {
  if (samples_per_class <= 0)
    throw std::invalid_argument("Dataset: samples_per_class must be positive");
  if (train_fraction <= 0.0 || train_fraction >= 1.0)
    throw std::invalid_argument("Dataset: train_fraction must be in (0,1)");
  Rng rng(seed);
  const auto train_per_class = static_cast<std::int64_t>(
      std::round(train_fraction * static_cast<double>(samples_per_class)));
  for (std::int64_t c = 0; c < kNumClasses; ++c) {
    for (std::int64_t s = 0; s < samples_per_class; ++s) {
      Sample smp;
      smp.label = c;
      smp.num_points = num_points;
      smp.points =
          generate_shape(static_cast<ShapeClass>(c), num_points, rng);
      augment(smp.points, cfg, rng);
      normalize_unit_sphere(smp.points);
      if (s < train_per_class)
        train_.push_back(std::move(smp));
      else
        test_.push_back(std::move(smp));
    }
  }
  rng.shuffle(train_);
  rng.shuffle(test_);
}

Tensor Dataset::to_tensor(const Sample& s) {
  return Tensor::from_vector({s.num_points, 3},
                             std::vector<float>(s.points.begin(),
                                                s.points.end()));
}

std::vector<std::size_t> shuffled_indices(std::size_t n, Rng& rng) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  rng.shuffle(idx);
  return idx;
}

}  // namespace hg::pointcloud
