// registry.hpp — string-keyed extension points of the API layer.
//
// Devices, latency evaluators and search strategies are selected by name in
// an EngineConfig and resolved here, so adding a platform or a strategy is
// one `register_*` call instead of a new overload set on every consumer.
// Built-ins installed at startup:
//
//   devices    : "rtx3080" ("rtx"), "i7-8700k" ("i7"),
//                "jetson-tx2" ("tx2"), "raspberry-pi-3b" ("pi")
//   evaluators : "oracle"     — deterministic analytical model, free queries
//                "measured"   — simulated on-device measurement (refused
//                               with FAILED_PRECONDITION on devices without
//                               online measurement: TX2, Pi)
//                "predictor"  — GNN latency predictor trained on labelled
//                               random architectures at engine creation
//   strategies : "multistage" — the paper's hierarchical Alg. 1
//                "onestage"   — joint EA over the full fine-grained space
//                "random"     — random sampling at the same query budget
//   baselines  : "dgcnn" ("dgcnn-reuse4"), "dgcnn-reuse3", "dgcnn-reuse2",
//                "li" ("dgcnn-reuse1"), "tailor" — the paper's comparison
//                networks — plus the zoo's Fig. 10 designs "rtx-fast",
//                "i7-fast" ("intel-fast"), "tx2-fast", "pi-fast"; all
//                resolve to the common Lowerable interface
//
// Lookup of an unknown name returns NOT_FOUND listing the known names; the
// facade never throws on user-provided strings.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/lowerable.hpp"
#include "api/status.hpp"
#include "hgnas/search.hpp"
#include "predictor/predictor.hpp"

namespace hg::api {

/// Inputs an evaluator factory may use. `device` must outlive the returned
/// evaluator (the engine owns both and guarantees this).
struct EvaluatorRequest {
  const hw::Device* device = nullptr;
  hgnas::SpaceConfig space;
  hgnas::Workload workload;
  std::uint64_t seed = 0;
  // "predictor" knobs (ignored by the other evaluators):
  std::int64_t predictor_samples = 600;
  std::int64_t predictor_epochs = 50;
  /// Pre-collected labelled architectures for "predictor" (borrowed for the
  /// duration of the factory call). Null: the factory collects its own.
  /// EvalContext::create_many passes labels collected for a whole device
  /// fleet through one pooled measurement queue; the caller must have
  /// collected them on `device` with the same space/workload/seed.
  const std::vector<predictor::LabeledArch>* labeled = nullptr;
};

/// An evaluator plus whatever heavyweight state backs it. `predictor` is
/// non-null only for the "predictor" evaluator; the engine exposes it for
/// accuracy reporting (Engine::evaluate_predictor).
struct EvaluatorBundle {
  hgnas::LatencyFn fn;
  std::shared_ptr<predictor::LatencyPredictor> predictor;
  double predictor_train_mape = 0.0;
};

/// Inputs a search strategy runs against. All pointers are borrowed from
/// the engine for the duration of the call.
struct StrategyRequest {
  hgnas::SuperNet* supernet = nullptr;
  const pointcloud::Dataset* data = nullptr;
  hgnas::SearchConfig cfg;
  hgnas::LatencyFn latency;
  Rng* rng = nullptr;
  /// Optional shared candidate-score memo (the engine passes its
  /// EvalContext's cache so searches sharing a context pool their scores).
  hgnas::EvalCache* eval_cache = nullptr;
};

/// Lowercase canonical form of a registry key. Every lookup in the
/// Registry resolves through this, and anything that caches by registry
/// name (EvalContext's evaluator memo) must key on the same form.
std::string normalize_key(const std::string& name);

class Registry {
 public:
  using DeviceFactory = std::function<hw::Device()>;
  using EvaluatorFactory =
      std::function<Result<EvaluatorBundle>(const EvaluatorRequest&)>;
  using StrategyFn =
      std::function<Result<hgnas::SearchResult>(const StrategyRequest&)>;
  /// Stepwise form of a strategy: builds a generation-granular stepper over
  /// the request instead of running to completion. The built-in strategies
  /// register both; a custom strategy may register only the monolithic fn
  /// (Engine::begin_search then falls back to one whole-run step).
  using StrategyStepperFactory = std::function<
      Result<std::unique_ptr<hgnas::SearchStepper>>(const StrategyRequest&)>;
  using BaselineFactory = std::function<std::unique_ptr<Lowerable>()>;

  /// The process-wide registry, with the built-ins installed.
  static Registry& global();

  // Registration: names are case-insensitive; re-registering an existing
  // name returns INVALID_ARGUMENT (built-ins cannot be shadowed silently).
  Status register_device(const std::string& name, DeviceFactory factory);
  Status register_evaluator(const std::string& name, EvaluatorFactory factory);
  Status register_strategy(const std::string& name, StrategyFn strategy);
  /// Optional stepwise companion to register_strategy (same key rules; the
  /// monolithic fn must exist or be registered too for run_strategy).
  Status register_strategy_stepper(const std::string& name,
                                   StrategyStepperFactory factory);
  /// `alias` may be empty; like devices, aliases resolve but are not
  /// listed in baseline_names().
  Status register_baseline(const std::string& name, const std::string& alias,
                           BaselineFactory factory);

  Result<hw::Device> make_device(const std::string& name) const;
  Result<EvaluatorBundle> make_evaluator(const std::string& name,
                                         const EvaluatorRequest& req) const;
  Result<hgnas::SearchResult> run_strategy(const std::string& name,
                                           const StrategyRequest& req) const;
  /// Builds the stepwise run for a strategy registered with
  /// register_strategy_stepper; NOT_FOUND for strategies without one
  /// (callers fall back to run_strategy).
  Result<std::unique_ptr<hgnas::SearchStepper>> make_strategy_stepper(
      const std::string& name, const StrategyRequest& req) const;
  Result<std::unique_ptr<Lowerable>> make_baseline(
      const std::string& name) const;

  bool has_strategy(const std::string& name) const;
  bool has_strategy_stepper(const std::string& name) const;

  /// Canonical device names only (aliases like "rtx" resolve but are not
  /// listed) — the one source of truth for "iterate all devices".
  std::vector<std::string> device_names() const;
  std::vector<std::string> evaluator_names() const;
  std::vector<std::string> strategy_names() const;
  std::vector<std::string> baseline_names() const;

 private:
  Registry();  // installs the built-ins

  std::map<std::string, DeviceFactory> devices_;  // canonical + aliases
  std::vector<std::string> canonical_devices_;
  std::map<std::string, EvaluatorFactory> evaluators_;
  std::map<std::string, StrategyFn> strategies_;
  std::map<std::string, StrategyStepperFactory> strategy_steppers_;
  std::map<std::string, BaselineFactory> baselines_;  // canonical + aliases
  std::vector<std::string> canonical_baselines_;
};

}  // namespace hg::api
