// status.hpp — the error model of the public API layer.
//
// Module code underneath the facade throws on programmer error (broken
// invariants, malformed internal state). User input — a device name typed
// on a CLI, a config assembled by a service, an architecture file from disk
// — must not take the process down, so every facade entry point reports
// failures as a `Status` (or a `Result<T>` carrying one) instead of
// throwing across the API boundary.
#pragma once

#include <optional>
#include <string>
#include <utility>

namespace hg::api {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument,     // malformed user input (bad config value, bad text)
  kNotFound,            // unknown registry key (device / evaluator / strategy)
  kFailedPrecondition,  // valid request, unsupported in this configuration
  kInternal,            // an invariant broke below the facade
  kDeadlineExceeded,    // the request's deadline passed before it could run
  kResourceExhausted,   // admission refused: a bounded queue is full
  kCancelled,           // abandoned before running (e.g. caller disconnected)
  kUnavailable,         // transport failure (peer gone, connection broken)
};

std::string status_code_name(StatusCode code);

class Status {
 public:
  Status() = default;  // OK

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string to_string() const {
    return ok() ? "OK" : status_code_name(code_) + ": " + message_;
  }

  bool operator==(const Status&) const = default;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::string status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kCancelled: return "CANCELLED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

/// A value or the Status explaining its absence. Accessing `value()` on an
/// error Result is a programmer error (asserts in debug, UB in release) —
/// check `ok()` first.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok())
      status_ = Status::Internal("Result constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return *std::move(value_); }

  /// value() with a fallback for the error case.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ holds a T
  std::optional<T> value_;
};

}  // namespace hg::api
