#include "api/eval_context.hpp"

#include <exception>
#include <utility>

#include "core/parallel.hpp"
#include "predictor/predictor.hpp"

namespace hg::api {

namespace {

// Decorrelates the evaluator's stochastic state (label-collection draws,
// measurement noise) from the master seed's other consumers. MUST stay the
// one constant shared by evaluator() and create_many's prefetch specs —
// they drift apart and fleet-prefetched labels no longer match what a lone
// create() would collect.
constexpr std::uint64_t kEvaluatorSeedSalt = 0xa5a5a5a55a5a5a5aULL;

}  // namespace

Result<std::shared_ptr<EvalContext>> EvalContext::build_base(
    const EngineConfig& cfg) {
  if (const Status s = validate(cfg); !s.ok()) return s;

  std::shared_ptr<EvalContext> ctx(new EvalContext());
  ctx->cfg_ = cfg;

  // Size the shared execution pool (0 = hardware concurrency, 1 = the
  // bit-for-bit serial path). Process-wide, like a BLAS thread setting.
  try {
    core::set_num_threads(cfg.num_threads);
  } catch (const std::exception& e) {
    // Thread creation can fail under resource exhaustion even for counts
    // that pass validation; keep the no-throw facade contract.
    return Status::Internal(std::string("cannot size the thread pool: ") +
                            e.what());
  }

  Result<hw::Device> device = Registry::global().make_device(cfg.device);
  if (!device.ok()) return device.status();
  ctx->device_ = std::make_unique<hw::Device>(std::move(device).value());

  ctx->deploy_workload_.num_points = cfg.num_points;
  ctx->deploy_workload_.k = cfg.k;
  ctx->deploy_workload_.num_classes = cfg.num_classes;

  ctx->data_ = std::make_unique<pointcloud::Dataset>(
      cfg.samples_per_class, cfg.train_points, cfg.dataset_seed);
  ctx->train_workload_.num_points = cfg.train_points;
  ctx->train_workload_.k = cfg.train_k;
  ctx->train_workload_.num_classes = ctx->data_->num_classes();

  const hw::Trace reference =
      hw::dgcnn_reference_trace(cfg.num_points, cfg.k, cfg.num_classes);
  ctx->reference_ms_ = ctx->device_->latency_ms(reference);
  ctx->reference_mb_ = ctx->device_->peak_memory_mb(reference);

  ctx->rng_ = std::make_unique<Rng>(cfg.seed);
  hgnas::SpaceConfig space;
  space.num_positions = cfg.num_positions;
  hgnas::SupernetConfig sn_cfg;
  sn_cfg.hidden = cfg.supernet_hidden;
  sn_cfg.k = cfg.train_k;
  sn_cfg.num_classes = ctx->data_->num_classes();
  sn_cfg.head_hidden = cfg.supernet_head_hidden;
  ctx->supernet_ =
      std::make_unique<hgnas::SuperNet>(space, sn_cfg, *ctx->rng_);

  // Warm start: a persisted memo cache whose scope (evaluator tag,
  // objective, supernet weight version) still matches keeps its entries;
  // anything else — missing file, corrupt file, stale scope — is a cold
  // start, never an error.
  if (!cfg.eval_cache_path.empty())
    ctx->eval_cache_.load(cfg.eval_cache_path);

  return ctx;
}

Result<std::shared_ptr<EvalContext>> EvalContext::create(
    const EngineConfig& cfg) {
  Result<std::shared_ptr<EvalContext>> ctx = build_base(cfg);
  if (!ctx.ok()) return ctx.status();

  // Resolve the config's evaluator eagerly: for "predictor" this collects
  // the labelled architectures and fits — the expensive step sharing a
  // context amortises.
  if (Result<EvaluatorBundle> eval = ctx.value()->evaluator(cfg.evaluator);
      !eval.ok())
    return eval.status();

  return ctx;
}

Result<std::vector<std::shared_ptr<EvalContext>>> EvalContext::create_many(
    std::span<const EngineConfig> cfgs) {
  if (cfgs.empty())
    return Status::InvalidArgument("create_many: no configs given");
  for (const EngineConfig& cfg : cfgs) {
    if (cfg.num_threads != cfgs.front().num_threads)
      return Status::InvalidArgument(
          "create_many: all configs must agree on num_threads (the "
          "execution pool is process-wide)");
  }
  // Each persisted cache file belongs to exactly one context: two contexts
  // saving to one path would silently clobber each other at destruction
  // (last destructor wins, every other device permanently cold).
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    if (cfgs[i].eval_cache_path.empty()) continue;
    for (std::size_t j = i + 1; j < cfgs.size(); ++j) {
      if (cfgs[i].eval_cache_path == cfgs[j].eval_cache_path)
        return Status::InvalidArgument(
            "create_many: configs " + std::to_string(i) + " and " +
            std::to_string(j) + " share eval_cache_path '" +
            cfgs[i].eval_cache_path +
            "' — each context needs its own cache file");
    }
  }

  std::vector<std::shared_ptr<EvalContext>> contexts;
  contexts.reserve(cfgs.size());
  for (const EngineConfig& cfg : cfgs) {
    Result<std::shared_ptr<EvalContext>> ctx = build_base(cfg);
    if (!ctx.ok()) return ctx.status();
    contexts.push_back(std::move(ctx).value());
  }

  // Fleet-wide label collection: one pooled measurement queue feeds every
  // "predictor" context. Per-context specs replicate exactly what a lone
  // evaluator() build would request, so the fitted predictors are
  // identical to the one-context-at-a-time path.
  std::vector<predictor::CollectSpec> specs;
  std::vector<std::size_t> spec_owner;
  for (std::size_t i = 0; i < contexts.size(); ++i) {
    const EngineConfig& cfg = contexts[i]->cfg_;
    if (normalize_key(cfg.evaluator) != "predictor") continue;
    predictor::CollectSpec spec;
    spec.device = contexts[i]->device_.get();
    spec.count = cfg.predictor_samples;
    spec.seed = cfg.seed ^ kEvaluatorSeedSalt;
    specs.push_back(spec);
    spec_owner.push_back(i);
  }
  if (!specs.empty()) {
    // Workload / space are context-shaping and may differ across the
    // fleet only if they all match (collect_labeled_archs_multi draws one
    // space/workload); fall back to per-context collection otherwise.
    bool uniform = true;
    for (std::size_t s = 1; s < spec_owner.size(); ++s) {
      const EngineConfig& a = contexts[spec_owner[0]]->cfg_;
      const EngineConfig& b = contexts[spec_owner[s]]->cfg_;
      if (a.num_points != b.num_points || a.k != b.k ||
          a.num_classes != b.num_classes ||
          a.num_positions != b.num_positions)
        uniform = false;
    }
    if (uniform) {
      try {
        hgnas::SpaceConfig space;
        space.num_positions = contexts[spec_owner[0]]->cfg_.num_positions;
        std::vector<std::vector<predictor::LabeledArch>> labels =
            predictor::collect_labeled_archs_multi(
                specs, space, contexts[spec_owner[0]]->deploy_workload_);
        for (std::size_t s = 0; s < spec_owner.size(); ++s) {
          EvalContext& ctx = *contexts[spec_owner[s]];
          core::MutexLock lock(ctx.evaluators_mutex_);
          ctx.prefetched_labels_ = std::make_shared<
              const std::vector<predictor::LabeledArch>>(
              std::move(labels[s]));
        }
      } catch (const std::exception& e) {
        return Status::Internal(
            std::string("fleet label collection failed: ") + e.what());
      }
    }
  }

  for (const std::shared_ptr<EvalContext>& ctx : contexts) {
    if (Result<EvaluatorBundle> eval = ctx->evaluator(ctx->cfg_.evaluator);
        !eval.ok())
      return eval.status();
  }
  return contexts;
}

EvalContext::~EvalContext() {
  if (!cfg_.eval_cache_path.empty()) eval_cache_.save(cfg_.eval_cache_path);
}

Result<EvaluatorBundle> EvalContext::evaluator(const std::string& name) {
  const std::string key = normalize_key(name);
  std::shared_ptr<const std::vector<predictor::LabeledArch>> labels;
  {
    core::MutexLock lock(evaluators_mutex_);
    if (const auto it = evaluators_.find(key); it != evaluators_.end())
      return it->second;
    if (key == "predictor") labels = prefetched_labels_;
  }

  // Build outside the lock: a request for "oracle" must never wait behind
  // another thread's predictor fit. Concurrent first requests for ONE name
  // may both build; the first insert wins and the loser's (deterministic,
  // identical) bundle is discarded.
  EvaluatorRequest req;
  req.device = device_.get();
  req.space.num_positions = cfg_.num_positions;
  req.workload = deploy_workload_;
  req.seed = cfg_.seed ^ kEvaluatorSeedSalt;
  req.predictor_samples = cfg_.predictor_samples;
  req.predictor_epochs = cfg_.predictor_epochs;
  req.labeled = labels != nullptr ? labels.get() : nullptr;
  Result<EvaluatorBundle> bundle =
      Registry::global().make_evaluator(key, req);
  if (!bundle.ok()) return bundle.status();

  core::MutexLock lock(evaluators_mutex_);
  if (const auto it = evaluators_.find(key); it != evaluators_.end())
    return it->second;  // lost the race: serve the winner's bundle
  if (labels != nullptr) prefetched_labels_.reset();
  ++evaluator_builds_;
  evaluators_.emplace(key, bundle.value());
  return bundle;
}

}  // namespace hg::api
