#include "api/eval_context.hpp"

#include <exception>
#include <utility>

#include "core/parallel.hpp"

namespace hg::api {

Result<std::shared_ptr<EvalContext>> EvalContext::create(
    const EngineConfig& cfg) {
  if (const Status s = validate(cfg); !s.ok()) return s;

  std::shared_ptr<EvalContext> ctx(new EvalContext());
  ctx->cfg_ = cfg;

  // Size the shared execution pool (0 = hardware concurrency, 1 = the
  // bit-for-bit serial path). Process-wide, like a BLAS thread setting.
  try {
    core::set_num_threads(cfg.num_threads);
  } catch (const std::exception& e) {
    // Thread creation can fail under resource exhaustion even for counts
    // that pass validation; keep the no-throw facade contract.
    return Status::Internal(std::string("cannot size the thread pool: ") +
                            e.what());
  }

  Result<hw::Device> device = Registry::global().make_device(cfg.device);
  if (!device.ok()) return device.status();
  ctx->device_ = std::make_unique<hw::Device>(std::move(device).value());

  ctx->deploy_workload_.num_points = cfg.num_points;
  ctx->deploy_workload_.k = cfg.k;
  ctx->deploy_workload_.num_classes = cfg.num_classes;

  ctx->data_ = std::make_unique<pointcloud::Dataset>(
      cfg.samples_per_class, cfg.train_points, cfg.dataset_seed);
  ctx->train_workload_.num_points = cfg.train_points;
  ctx->train_workload_.k = cfg.train_k;
  ctx->train_workload_.num_classes = ctx->data_->num_classes();

  const hw::Trace reference =
      hw::dgcnn_reference_trace(cfg.num_points, cfg.k, cfg.num_classes);
  ctx->reference_ms_ = ctx->device_->latency_ms(reference);
  ctx->reference_mb_ = ctx->device_->peak_memory_mb(reference);

  ctx->rng_ = std::make_unique<Rng>(cfg.seed);
  hgnas::SpaceConfig space;
  space.num_positions = cfg.num_positions;
  hgnas::SupernetConfig sn_cfg;
  sn_cfg.hidden = cfg.supernet_hidden;
  sn_cfg.k = cfg.train_k;
  sn_cfg.num_classes = ctx->data_->num_classes();
  sn_cfg.head_hidden = cfg.supernet_head_hidden;
  ctx->supernet_ =
      std::make_unique<hgnas::SuperNet>(space, sn_cfg, *ctx->rng_);

  // Resolve the config's evaluator eagerly: for "predictor" this collects
  // the labelled architectures and fits — the expensive step sharing a
  // context amortises.
  if (Result<EvaluatorBundle> eval = ctx->evaluator(cfg.evaluator);
      !eval.ok())
    return eval.status();

  return ctx;
}

Result<EvaluatorBundle> EvalContext::evaluator(const std::string& name) {
  const std::string key = normalize_key(name);
  if (const auto it = evaluators_.find(key); it != evaluators_.end())
    return it->second;

  EvaluatorRequest req;
  req.device = device_.get();
  req.space.num_positions = cfg_.num_positions;
  req.workload = deploy_workload_;
  req.seed = cfg_.seed ^ 0xa5a5a5a55a5a5a5aULL;
  req.predictor_samples = cfg_.predictor_samples;
  req.predictor_epochs = cfg_.predictor_epochs;
  Result<EvaluatorBundle> bundle =
      Registry::global().make_evaluator(key, req);
  if (!bundle.ok()) return bundle.status();
  ++evaluator_builds_;
  evaluators_.emplace(key, bundle.value());
  return bundle;
}

}  // namespace hg::api
