// eval_context.hpp — the shared, reference-counted evaluation state behind
// one or more engines.
//
// Building an engine used to mean building everything it evaluates with:
// the synthetic dataset, the weight-sharing supernet, the calibrated device
// model and — for evaluator "predictor" — collecting ~hundreds of labelled
// architectures and fitting the GNN latency predictor, by far the most
// expensive step. Benches that run several searches against the same device
// (Fig. 8 / Fig. 9a) paid that cost once per search.
//
// An EvalContext owns that state once:
//
//   auto ctx = EvalContext::create(cfg);             // one predictor fit
//   auto a = Engine::create(cfg, ctx.value());       // shares it
//   cfg.evaluator = "measured";
//   auto b = Engine::create(cfg, ctx.value());       // same data/supernet
//
// Evaluator bundles are memoized by registry name — the predictor is
// fitted on the first request and every engine on the context reuses it.
// The context also owns the candidate-score memo cache (hgnas::EvalCache),
// so searches sharing a context never re-evaluate a genome the cache has
// already scored under the same evaluator/objective/supernet-weight scope.
//
// Config fields that shape this owned state must match across every engine
// on a context (see context_compatible in api/config.hpp); per-engine
// fields (evaluator, strategy, objective, constraints, search scale) may
// differ.
//
// Concurrency contract (what serve::Service builds on):
//  * Read-only state — device model, dataset, workloads, reference
//    numbers — is immutable after create() and safe from any thread.
//  * evaluator() is thread-safe (the memo sits behind a mutex); a fitted
//    predictor's predict paths only read trained weights and may run
//    concurrently.
//  * eval_cache() is internally synchronized and scope-checked (see
//    hgnas::EvalCache).
//  * supernet() and rng() are shared MUTABLE state with no internal locks:
//    anything that trains the supernet or draws from the context RNG
//    (Engine::search / train / train_baseline) must hold external
//    exclusion — serve::Service runs exactly one such request at a time,
//    in submission order.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "api/config.hpp"
#include "api/registry.hpp"
#include "api/status.hpp"
#include "core/annotations.hpp"

namespace hg::api {

class EvalContext {
 public:
  /// Validate `cfg`, size the execution pool, build the owned state and
  /// eagerly resolve cfg.evaluator (so a predictor fit failure surfaces
  /// here, not at first use). Loads the memo cache from
  /// cfg.eval_cache_path when set.
  static Result<std::shared_ptr<EvalContext>> create(const EngineConfig& cfg);

  /// Build one context per config — a device fleet — sharding the dominant
  /// startup cost: every "predictor" config's labelled-architecture
  /// collection is routed through ONE pooled measurement queue
  /// (predictor::collect_labeled_archs_multi) instead of M sequential
  /// passes. Each resulting context is identical to a lone create() of its
  /// config. All configs must agree on num_threads (the pool is
  /// process-wide).
  static Result<std::vector<std::shared_ptr<EvalContext>>> create_many(
      std::span<const EngineConfig> cfgs);

  /// Writes the memo cache back to config().eval_cache_path when set.
  ~EvalContext();

  EvalContext(const EvalContext&) = delete;
  EvalContext& operator=(const EvalContext&) = delete;

  /// The context-shaping config snapshot this context was built from.
  const EngineConfig& config() const { return cfg_; }

  const hw::Device& device() const { return *device_; }
  const pointcloud::Dataset& data() const { return *data_; }
  hgnas::SuperNet& supernet() { return *supernet_; }
  Rng& rng() { return *rng_; }
  hgnas::EvalCache& eval_cache() { return eval_cache_; }

  /// Deployment-side workload (cost models, predictor).
  const hgnas::Workload& deploy_workload() const { return deploy_workload_; }
  /// Training-side workload (dataset, materialised models).
  const hgnas::Workload& train_workload() const { return train_workload_; }

  /// DGCNN reference latency / memory on the target device (Table II).
  double reference_latency_ms() const { return reference_ms_; }
  double reference_memory_mb() const { return reference_mb_; }

  /// Evaluator bundle for a registry name, memoized: the first request
  /// builds it (fitting the predictor for "predictor"), later requests —
  /// from any engine on this context, from any thread — return the same
  /// bundle. Builds run outside the memo mutex, so a cheap evaluator
  /// never waits behind another thread's predictor fit; should two
  /// threads race the SAME name's first build, the first insert wins and
  /// everyone gets that bundle (builds are deterministic, so the
  /// discarded duplicate was identical anyway).
  Result<EvaluatorBundle> evaluator(const std::string& name);

  /// How many evaluator bundles have actually been built (observability:
  /// "one predictor fit per device" is this staying at 1).
  std::int64_t evaluator_builds() const {
    core::MutexLock lock(evaluators_mutex_);
    return evaluator_builds_;
  }

 private:
  EvalContext() = default;

  /// Everything create() does except the eager evaluator resolution (so
  /// create_many can interpose the fleet-wide label collection).
  static Result<std::shared_ptr<EvalContext>> build_base(
      const EngineConfig& cfg);

  EngineConfig cfg_;
  hgnas::Workload deploy_workload_;
  hgnas::Workload train_workload_;
  std::unique_ptr<hw::Device> device_;
  std::unique_ptr<pointcloud::Dataset> data_;
  std::unique_ptr<hgnas::SuperNet> supernet_;
  std::unique_ptr<Rng> rng_;
  hgnas::EvalCache eval_cache_;
  double reference_ms_ = 0.0;
  double reference_mb_ = 0.0;
  // Guards the evaluator memo (and its build counter); everything else is
  // immutable after creation or internally synchronized.
  mutable core::Mutex evaluators_mutex_;
  // By normalized name.
  std::map<std::string, EvaluatorBundle> evaluators_
      HG_GUARDED_BY(evaluators_mutex_);
  std::int64_t evaluator_builds_ HG_GUARDED_BY(evaluators_mutex_) = 0;
  // Labels pre-collected by create_many for this context's "predictor"
  // evaluator; consumed (and released) by the first build. create_many
  // writes it under the lock too, even though no other thread can see the
  // context yet — the analysis (rightly) has no notion of "not yet
  // published".
  std::shared_ptr<const std::vector<predictor::LabeledArch>>
      prefetched_labels_ HG_GUARDED_BY(evaluators_mutex_);
};

}  // namespace hg::api
