// lowerable.hpp — the facade's common interface over every named reference
// network.
//
// The paper's comparisons pit HGNAS designs against hand-designed baselines
// (DGCNN, Li et al. [6], Tailor et al. [7]) and against the Fig. 10
// Device_Fast networks from the zoo. Each of those previously required its
// own lowering plumbing in every bench; behind `Lowerable` they all answer
// the same two questions:
//
//   lower(workload)   cost-model trace at an arbitrary deployment workload
//                     (drives Table II / Fig. 1 / Fig. 2 / Fig. 3 numbers)
//   train(...)        materialise a CPU-scale instance and train it on a
//                     dataset (the accuracy columns of Table II / Fig. 6)
//
// Instances are produced by name through the registry ("dgcnn", "li",
// "tailor", "dgcnn-reuse2/3", "rtx-fast", "i7-fast", "tx2-fast",
// "pi-fast") and consumed through Engine::profile_baseline /
// Engine::train_baseline — benches never touch baselines:: or zoo::
// directly.
#pragma once

#include <memory>
#include <string>

#include "hgnas/arch.hpp"
#include "hw/device.hpp"
#include "pointcloud/pointcloud.hpp"

namespace hg::api {

class Registry;

/// Accuracy metrics plus model size of one trained baseline instance.
struct BaselineTrainResult {
  double overall_acc = 0.0;
  double balanced_acc = 0.0;
  double param_mb = 0.0;  // of the CPU-scale instance that was trained
};

/// A baseline training run advanced one epoch at a time — the scheduling
/// unit serve::Service preempts under its exclusive time slice. Obtained
/// from Lowerable::train_stepper; driving step() to completion produces the
/// same result as the matching train() call.
class TrainStepper {
 public:
  virtual ~TrainStepper() = default;
  /// One epoch (or the final evaluation). False once finished; exceptions
  /// from the training loop propagate out of the step that hit them.
  virtual bool step() = 0;
  virtual bool done() const = 0;
  /// Valid once step() has returned false.
  virtual BaselineTrainResult result() const = 0;
};

/// A named reference network: lowers to a cost-model trace at any workload
/// and can materialise a trainable CPU-scale instance.
class Lowerable {
 public:
  virtual ~Lowerable() = default;

  /// Registry name this instance resolves (canonical form).
  virtual std::string name() const = 0;

  /// Cost-model lowering at a deployment workload. Deterministic.
  virtual hw::Trace lower(const hgnas::Workload& workload) const = 0;

  /// Build a fresh instance scaled to `train_workload` (classes, k) and
  /// train it on `data` — mirrors hgnas::train_model / the baselines'
  /// shared training loop. Throws on internal error (the engine converts
  /// to Status at the facade boundary).
  virtual BaselineTrainResult train(const pointcloud::Dataset& data,
                                    const hgnas::Workload& train_workload,
                                    std::int64_t epochs, float lr,
                                    Rng& rng) const = 0;

  /// Epoch-granular form of train(): the model is built here (consuming
  /// `rng` exactly as train() would), each step() runs one epoch, and the
  /// final step evaluates. Bit-identical to train() when driven to
  /// completion. The built-in baselines override this; the default wraps
  /// train() in a single step for third-party Lowerables. All references
  /// must outlive the stepper.
  virtual std::unique_ptr<TrainStepper> train_stepper(
      const pointcloud::Dataset& data, const hgnas::Workload& train_workload,
      std::int64_t epochs, float lr, Rng& rng) const;
};

/// Register the built-in baselines and zoo networks (called once by the
/// Registry constructor).
void install_builtin_baselines(Registry& registry);

}  // namespace hg::api
