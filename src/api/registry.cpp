#include "api/registry.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>
#include <utility>

namespace hg::api {

std::string normalize_key(const std::string& name) {
  std::string out = name;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

namespace {

template <typename Map>
std::string known_names(const Map& map) {
  std::string out;
  for (const auto& [key, unused] : map) {
    if (!out.empty()) out += ", ";
    out += key;
  }
  return out;
}

template <typename Map>
std::vector<std::string> sorted_keys(const Map& map) {
  std::vector<std::string> out;
  out.reserve(map.size());
  for (const auto& [key, unused] : map) out.push_back(key);
  return out;
}

// ---- built-in strategies ---------------------------------------------------

/// Wrap HgnasSearch construction (which throws std::invalid_argument on a
/// bad SearchConfig) into the Status model.
template <typename Fn>
Result<hgnas::SearchResult> with_search(const StrategyRequest& req, Fn run) {
  try {
    hgnas::HgnasSearch search(*req.supernet, *req.data, req.cfg, req.latency,
                              req.eval_cache);
    return run(search);
  } catch (const std::invalid_argument& e) {
    return Status::InvalidArgument(e.what());
  }
}

// ---- built-in evaluators ---------------------------------------------------

Result<EvaluatorBundle> make_oracle(const EvaluatorRequest& req) {
  EvaluatorBundle bundle;
  bundle.fn = hgnas::make_oracle_evaluator(*req.device, req.workload);
  return bundle;
}

Result<EvaluatorBundle> make_measured(const EvaluatorRequest& req) {
  if (!req.device->spec().supports_online_measurement)
    return Status::FailedPrecondition(
        "device '" + req.device->name() +
        "' does not support online measurement (paper §IV-D); use "
        "evaluator \"predictor\" instead");
  EvaluatorBundle bundle;
  bundle.fn =
      hgnas::make_measurement_evaluator(*req.device, req.workload, req.seed);
  return bundle;
}

Result<EvaluatorBundle> make_predictor(const EvaluatorRequest& req) {
  std::vector<predictor::LabeledArch> collected;
  if (req.labeled == nullptr)
    collected = predictor::collect_labeled_archs(*req.device, req.space,
                                                 req.workload,
                                                 req.predictor_samples,
                                                 req.seed);
  const std::vector<predictor::LabeledArch>& labeled =
      req.labeled != nullptr ? *req.labeled : collected;
  if (labeled.empty())
    return Status::Internal("no measurable architectures collected on '" +
                            req.device->name() + "'");
  predictor::PredictorConfig pcfg;
  pcfg.epochs = req.predictor_epochs;
  // The MAPE loss over the softplus-sum head has a seed-dependent failure
  // mode: early pressure from over-predicted small-latency samples can push
  // every per-node contribution into the softplus dead zone, after which
  // predictions stick at 0 and the train MAPE at exactly 1. A collapsed fit
  // is useless to search, so refit from a different initialisation.
  constexpr int kMaxFits = 4;
  constexpr double kCollapsedMape = 0.95;
  EvaluatorBundle bundle;
  for (int attempt = 0; attempt < kMaxFits; ++attempt) {
    Rng rng(req.seed ^ (0x9e3779b97f4a7c15ULL *
                        static_cast<std::uint64_t>(attempt + 1)));
    bundle.predictor = std::make_shared<predictor::LatencyPredictor>(
        pcfg, req.workload, rng);
    bundle.predictor_train_mape = bundle.predictor->fit(labeled, rng);
    if (bundle.predictor_train_mape < kCollapsedMape) break;
  }
  if (bundle.predictor_train_mape >= kCollapsedMape)
    return Status::Internal("latency predictor failed to converge on '" +
                            req.device->name() + "' (train MAPE " +
                            std::to_string(bundle.predictor_train_mape) +
                            " after " + std::to_string(kMaxFits) + " fits)");
  bundle.fn = predictor::make_predictor_evaluator(bundle.predictor);
  return bundle;
}

}  // namespace

Registry::Registry() {
  auto add_device = [this](const std::string& name, const std::string& alias,
                           hw::DeviceKind kind) {
    DeviceFactory factory = [kind]() { return hw::make_device(kind); };
    devices_[name] = factory;
    canonical_devices_.push_back(name);
    if (!alias.empty()) devices_[alias] = factory;
  };
  add_device("rtx3080", "rtx", hw::DeviceKind::Rtx3080);
  add_device("i7-8700k", "i7", hw::DeviceKind::IntelI7_8700K);
  add_device("jetson-tx2", "tx2", hw::DeviceKind::JetsonTx2);
  add_device("raspberry-pi-3b", "pi", hw::DeviceKind::RaspberryPi3B);

  evaluators_["oracle"] = make_oracle;
  evaluators_["measured"] = make_measured;
  evaluators_["predictor"] = make_predictor;

  strategies_["multistage"] = [](const StrategyRequest& req) {
    return with_search(req, [&](hgnas::HgnasSearch& s) {
      return Result<hgnas::SearchResult>(s.run_multistage(*req.rng));
    });
  };
  strategies_["onestage"] = [](const StrategyRequest& req) {
    return with_search(req, [&](hgnas::HgnasSearch& s) {
      return Result<hgnas::SearchResult>(s.run_onestage(*req.rng));
    });
  };
  strategies_["random"] = [](const StrategyRequest& req) {
    return with_search(req, [&](hgnas::HgnasSearch& s) {
      return Result<hgnas::SearchResult>(s.run_random(*req.rng));
    });
  };

  // Stepwise companions: the same pipelines as generation-granular
  // steppers (SearchStepper drives the identical coroutine the run_*
  // wrappers above drive, so both forms stay bit-identical).
  auto stepper_for = [](hgnas::SearchStrategy strategy) {
    return [strategy](const StrategyRequest& req)
               -> Result<std::unique_ptr<hgnas::SearchStepper>> {
      try {
        return std::make_unique<hgnas::SearchStepper>(
            *req.supernet, *req.data, req.cfg, req.latency, strategy,
            *req.rng, req.eval_cache);
      } catch (const std::invalid_argument& e) {
        return Status::InvalidArgument(e.what());
      }
    };
  };
  strategy_steppers_["multistage"] =
      stepper_for(hgnas::SearchStrategy::kMultistage);
  strategy_steppers_["onestage"] =
      stepper_for(hgnas::SearchStrategy::kOnestage);
  strategy_steppers_["random"] = stepper_for(hgnas::SearchStrategy::kRandom);

  install_builtin_baselines(*this);
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Status Registry::register_device(const std::string& name,
                                 DeviceFactory factory) {
  const std::string key = normalize_key(name);
  if (key.empty()) return Status::InvalidArgument("device name is empty");
  if (!devices_.emplace(key, std::move(factory)).second)
    return Status::InvalidArgument("device '" + key + "' already registered");
  canonical_devices_.push_back(key);
  return Status::Ok();
}

Status Registry::register_evaluator(const std::string& name,
                                    EvaluatorFactory factory) {
  const std::string key = normalize_key(name);
  if (key.empty()) return Status::InvalidArgument("evaluator name is empty");
  if (!evaluators_.emplace(key, std::move(factory)).second)
    return Status::InvalidArgument("evaluator '" + key +
                                   "' already registered");
  return Status::Ok();
}

Status Registry::register_strategy(const std::string& name,
                                   StrategyFn strategy) {
  const std::string key = normalize_key(name);
  if (key.empty()) return Status::InvalidArgument("strategy name is empty");
  if (!strategies_.emplace(key, std::move(strategy)).second)
    return Status::InvalidArgument("strategy '" + key +
                                   "' already registered");
  return Status::Ok();
}

Status Registry::register_strategy_stepper(const std::string& name,
                                           StrategyStepperFactory factory) {
  const std::string key = normalize_key(name);
  if (key.empty()) return Status::InvalidArgument("strategy name is empty");
  if (!strategy_steppers_.emplace(key, std::move(factory)).second)
    return Status::InvalidArgument("strategy stepper '" + key +
                                   "' already registered");
  return Status::Ok();
}

Status Registry::register_baseline(const std::string& name,
                                   const std::string& alias,
                                   BaselineFactory factory) {
  const std::string key = normalize_key(name);
  if (key.empty()) return Status::InvalidArgument("baseline name is empty");
  if (!baselines_.emplace(key, factory).second)
    return Status::InvalidArgument("baseline '" + key +
                                   "' already registered");
  canonical_baselines_.push_back(key);
  if (!alias.empty()) {
    const std::string alias_key = normalize_key(alias);
    if (!baselines_.emplace(alias_key, std::move(factory)).second)
      return Status::InvalidArgument("baseline alias '" + alias_key +
                                     "' already registered");
  }
  return Status::Ok();
}

Result<hw::Device> Registry::make_device(const std::string& name) const {
  const auto it = devices_.find(normalize_key(name));
  if (it == devices_.end())
    return Status::NotFound("unknown device '" + name +
                            "' (known: " + known_names(devices_) + ")");
  return it->second();
}

Result<EvaluatorBundle> Registry::make_evaluator(
    const std::string& name, const EvaluatorRequest& req) const {
  const auto it = evaluators_.find(normalize_key(name));
  if (it == evaluators_.end())
    return Status::NotFound("unknown evaluator '" + name +
                            "' (known: " + known_names(evaluators_) + ")");
  if (req.device == nullptr)
    return Status::Internal("EvaluatorRequest.device is null");
  return it->second(req);
}

Result<hgnas::SearchResult> Registry::run_strategy(
    const std::string& name, const StrategyRequest& req) const {
  const auto it = strategies_.find(normalize_key(name));
  if (it == strategies_.end())
    return Status::NotFound("unknown strategy '" + name +
                            "' (known: " + known_names(strategies_) + ")");
  if (req.supernet == nullptr || req.data == nullptr || req.rng == nullptr)
    return Status::Internal("StrategyRequest has null borrows");
  if (!req.latency)
    return Status::InvalidArgument("strategy requires a latency evaluator");
  return it->second(req);
}

Result<std::unique_ptr<hgnas::SearchStepper>> Registry::make_strategy_stepper(
    const std::string& name, const StrategyRequest& req) const {
  const auto it = strategy_steppers_.find(normalize_key(name));
  if (it == strategy_steppers_.end())
    return Status::NotFound("strategy '" + name +
                            "' has no stepwise form registered");
  if (req.supernet == nullptr || req.data == nullptr || req.rng == nullptr)
    return Status::Internal("StrategyRequest has null borrows");
  if (!req.latency)
    return Status::InvalidArgument("strategy requires a latency evaluator");
  return it->second(req);
}

Result<std::unique_ptr<Lowerable>> Registry::make_baseline(
    const std::string& name) const {
  const auto it = baselines_.find(normalize_key(name));
  if (it == baselines_.end())
    return Status::NotFound("unknown baseline '" + name +
                            "' (known: " + known_names(baselines_) + ")");
  return it->second();
}

bool Registry::has_strategy(const std::string& name) const {
  return strategies_.count(normalize_key(name)) > 0;
}

bool Registry::has_strategy_stepper(const std::string& name) const {
  return strategy_steppers_.count(normalize_key(name)) > 0;
}

std::vector<std::string> Registry::device_names() const {
  return canonical_devices_;
}
std::vector<std::string> Registry::evaluator_names() const {
  return sorted_keys(evaluators_);
}
std::vector<std::string> Registry::strategy_names() const {
  return sorted_keys(strategies_);
}
std::vector<std::string> Registry::baseline_names() const {
  return canonical_baselines_;
}

}  // namespace hg::api
