#include "api/registry.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>
#include <utility>

#include "tensor/optim.hpp"

namespace hg::api {

namespace {

std::string normalize(const std::string& name) {
  std::string out = name;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

template <typename Map>
std::string known_names(const Map& map) {
  std::string out;
  for (const auto& [key, unused] : map) {
    if (!out.empty()) out += ", ";
    out += key;
  }
  return out;
}

template <typename Map>
std::vector<std::string> sorted_keys(const Map& map) {
  std::vector<std::string> out;
  out.reserve(map.size());
  for (const auto& [key, unused] : map) out.push_back(key);
  return out;
}

// ---- built-in strategies ---------------------------------------------------

/// Wrap HgnasSearch construction (which throws std::invalid_argument on a
/// bad SearchConfig) into the Status model.
template <typename Fn>
Result<hgnas::SearchResult> with_search(const StrategyRequest& req, Fn run) {
  try {
    hgnas::HgnasSearch search(*req.supernet, *req.data, req.cfg, req.latency);
    return run(search);
  } catch (const std::invalid_argument& e) {
    return Status::InvalidArgument(e.what());
  }
}

/// Random-sampling baseline at the same latency-query budget as the EA
/// (population + iterations * population/2 candidates), with the same
/// supernet training schedule, feasibility gate and Eq. (3) objective —
/// the "random search" row of ablation tables.
Result<hgnas::SearchResult> run_random_strategy(const StrategyRequest& req) {
  return with_search(req, [&](hgnas::HgnasSearch& search) {
    const hgnas::SearchConfig& cfg = search.config();
    Rng& rng = *req.rng;
    hgnas::SuperNet& supernet = *req.supernet;
    const pointcloud::Dataset& data = *req.data;

    double sim_time_s = 0.0;
    if (cfg.train_supernet) {
      Adam opt(supernet.parameters(), 1e-3f);
      auto sampler = [&cfg](Rng& r) { return random_arch(cfg.space, r); };
      for (std::int64_t e = 0; e < cfg.stage1_epochs + cfg.stage2_epochs;
           ++e) {
        supernet.train_epoch(data.train(), sampler, opt, cfg.batch_size, rng);
        sim_time_s += static_cast<double>(data.train().size()) *
                      cfg.sim_train_s_per_sample;
      }
    }

    hgnas::SearchResult result;
    const std::int64_t budget =
        cfg.population + cfg.iterations * (cfg.population / 2);
    const std::int64_t probes = std::min<std::int64_t>(
        cfg.eval_val_samples, static_cast<std::int64_t>(data.test().size()));
    bool have_best = false;
    bool best_feasible = false;
    for (std::int64_t i = 0; i < budget; ++i) {
      const hgnas::Arch arch = random_arch(cfg.space, rng);
      ++result.latency_queries;
      const hgnas::LatencyEval lat = req.latency(arch);
      sim_time_s += lat.cost_s;
      const bool feasible =
          search.feasible(lat, arch_param_mb(arch, cfg.workload));
      double acc = 0.0;
      double fitness = 0.0;
      if (feasible) {
        ++result.accuracy_probes;
        sim_time_s += static_cast<double>(probes) * cfg.sim_eval_s_per_sample;
        acc = supernet.evaluate(arch, data.test(), probes, rng);
        fitness = search.objective(acc, lat.latency_ms, lat.oom);
      }
      // Same ordering as the EA: feasibility first, then fitness, then
      // latency (so an all-infeasible run still reports its fastest find).
      const bool better =
          !have_best ||
          (feasible != best_feasible
               ? feasible
               : (fitness != result.best_objective
                      ? fitness > result.best_objective
                      : lat.latency_ms < result.best_latency_ms));
      if (better) {
        have_best = true;
        best_feasible = feasible;
        result.best_arch = arch;
        result.best_objective = fitness;
        result.best_supernet_acc = acc;
        result.best_latency_ms = lat.latency_ms;
      }
      // One history point per EA-iteration-equivalent chunk of budget.
      if ((i + 1) % std::max<std::int64_t>(1, cfg.population / 2) == 0)
        result.history.push_back({sim_time_s, result.best_objective});
    }
    result.history.push_back({sim_time_s, result.best_objective});
    result.total_sim_time_s = sim_time_s;
    return Result<hgnas::SearchResult>(std::move(result));
  });
}

// ---- built-in evaluators ---------------------------------------------------

Result<EvaluatorBundle> make_oracle(const EvaluatorRequest& req) {
  EvaluatorBundle bundle;
  bundle.fn = hgnas::make_oracle_evaluator(*req.device, req.workload);
  return bundle;
}

Result<EvaluatorBundle> make_measured(const EvaluatorRequest& req) {
  if (!req.device->spec().supports_online_measurement)
    return Status::FailedPrecondition(
        "device '" + req.device->name() +
        "' does not support online measurement (paper §IV-D); use "
        "evaluator \"predictor\" instead");
  EvaluatorBundle bundle;
  bundle.fn =
      hgnas::make_measurement_evaluator(*req.device, req.workload, req.seed);
  return bundle;
}

Result<EvaluatorBundle> make_predictor(const EvaluatorRequest& req) {
  const auto labeled = predictor::collect_labeled_archs(
      *req.device, req.space, req.workload, req.predictor_samples, req.seed);
  if (labeled.empty())
    return Status::Internal("no measurable architectures collected on '" +
                            req.device->name() + "'");
  predictor::PredictorConfig pcfg;
  pcfg.epochs = req.predictor_epochs;
  // The MAPE loss over the softplus-sum head has a seed-dependent failure
  // mode: early pressure from over-predicted small-latency samples can push
  // every per-node contribution into the softplus dead zone, after which
  // predictions stick at 0 and the train MAPE at exactly 1. A collapsed fit
  // is useless to search, so refit from a different initialisation.
  constexpr int kMaxFits = 4;
  constexpr double kCollapsedMape = 0.95;
  EvaluatorBundle bundle;
  for (int attempt = 0; attempt < kMaxFits; ++attempt) {
    Rng rng(req.seed ^ (0x9e3779b97f4a7c15ULL *
                        static_cast<std::uint64_t>(attempt + 1)));
    bundle.predictor = std::make_shared<predictor::LatencyPredictor>(
        pcfg, req.workload, rng);
    bundle.predictor_train_mape = bundle.predictor->fit(labeled, rng);
    if (bundle.predictor_train_mape < kCollapsedMape) break;
  }
  if (bundle.predictor_train_mape >= kCollapsedMape)
    return Status::Internal("latency predictor failed to converge on '" +
                            req.device->name() + "' (train MAPE " +
                            std::to_string(bundle.predictor_train_mape) +
                            " after " + std::to_string(kMaxFits) + " fits)");
  bundle.fn = predictor::make_predictor_evaluator(bundle.predictor);
  return bundle;
}

}  // namespace

Registry::Registry() {
  auto add_device = [this](const std::string& name, const std::string& alias,
                           hw::DeviceKind kind) {
    DeviceFactory factory = [kind]() { return hw::make_device(kind); };
    devices_[name] = factory;
    canonical_devices_.push_back(name);
    if (!alias.empty()) devices_[alias] = factory;
  };
  add_device("rtx3080", "rtx", hw::DeviceKind::Rtx3080);
  add_device("i7-8700k", "i7", hw::DeviceKind::IntelI7_8700K);
  add_device("jetson-tx2", "tx2", hw::DeviceKind::JetsonTx2);
  add_device("raspberry-pi-3b", "pi", hw::DeviceKind::RaspberryPi3B);

  evaluators_["oracle"] = make_oracle;
  evaluators_["measured"] = make_measured;
  evaluators_["predictor"] = make_predictor;

  strategies_["multistage"] = [](const StrategyRequest& req) {
    return with_search(req, [&](hgnas::HgnasSearch& s) {
      return Result<hgnas::SearchResult>(s.run_multistage(*req.rng));
    });
  };
  strategies_["onestage"] = [](const StrategyRequest& req) {
    return with_search(req, [&](hgnas::HgnasSearch& s) {
      return Result<hgnas::SearchResult>(s.run_onestage(*req.rng));
    });
  };
  strategies_["random"] = run_random_strategy;
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Status Registry::register_device(const std::string& name,
                                 DeviceFactory factory) {
  const std::string key = normalize(name);
  if (key.empty()) return Status::InvalidArgument("device name is empty");
  if (!devices_.emplace(key, std::move(factory)).second)
    return Status::InvalidArgument("device '" + key + "' already registered");
  canonical_devices_.push_back(key);
  return Status::Ok();
}

Status Registry::register_evaluator(const std::string& name,
                                    EvaluatorFactory factory) {
  const std::string key = normalize(name);
  if (key.empty()) return Status::InvalidArgument("evaluator name is empty");
  if (!evaluators_.emplace(key, std::move(factory)).second)
    return Status::InvalidArgument("evaluator '" + key +
                                   "' already registered");
  return Status::Ok();
}

Status Registry::register_strategy(const std::string& name,
                                   StrategyFn strategy) {
  const std::string key = normalize(name);
  if (key.empty()) return Status::InvalidArgument("strategy name is empty");
  if (!strategies_.emplace(key, std::move(strategy)).second)
    return Status::InvalidArgument("strategy '" + key +
                                   "' already registered");
  return Status::Ok();
}

Result<hw::Device> Registry::make_device(const std::string& name) const {
  const auto it = devices_.find(normalize(name));
  if (it == devices_.end())
    return Status::NotFound("unknown device '" + name +
                            "' (known: " + known_names(devices_) + ")");
  return it->second();
}

Result<EvaluatorBundle> Registry::make_evaluator(
    const std::string& name, const EvaluatorRequest& req) const {
  const auto it = evaluators_.find(normalize(name));
  if (it == evaluators_.end())
    return Status::NotFound("unknown evaluator '" + name +
                            "' (known: " + known_names(evaluators_) + ")");
  if (req.device == nullptr)
    return Status::Internal("EvaluatorRequest.device is null");
  return it->second(req);
}

Result<hgnas::SearchResult> Registry::run_strategy(
    const std::string& name, const StrategyRequest& req) const {
  const auto it = strategies_.find(normalize(name));
  if (it == strategies_.end())
    return Status::NotFound("unknown strategy '" + name +
                            "' (known: " + known_names(strategies_) + ")");
  if (req.supernet == nullptr || req.data == nullptr || req.rng == nullptr)
    return Status::Internal("StrategyRequest has null borrows");
  if (!req.latency)
    return Status::InvalidArgument("strategy requires a latency evaluator");
  return it->second(req);
}

bool Registry::has_strategy(const std::string& name) const {
  return strategies_.count(normalize(name)) > 0;
}

std::vector<std::string> Registry::device_names() const {
  return canonical_devices_;
}
std::vector<std::string> Registry::evaluator_names() const {
  return sorted_keys(evaluators_);
}
std::vector<std::string> Registry::strategy_names() const {
  return sorted_keys(strategies_);
}

}  // namespace hg::api
