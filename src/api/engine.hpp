// engine.hpp — hg::api::Engine, the stable entry point of this library.
//
// One facade over the whole HGNAS pipeline (paper: supernet -> hierarchical
// evolutionary search -> GNN latency predictor -> edge deployment). An
// Engine is constructed from a declarative EngineConfig naming a device, a
// latency evaluator and a search strategy (resolved through the registry),
// owns the dataset / supernet / device model / predictor, and exposes
// coherent verbs:
//
//   search()           run the configured NAS strategy, return the winner
//                      (with the run's accuracy–latency Pareto frontier)
//   predict_latency(a) latency of an architecture via the configured
//                      evaluator (oracle, measurement, or GNN predictor)
//   profile(a)         deterministic deployment report on the target device
//                      (latency, memory, energy, Fig. 3 breakdown)
//   profile_baseline(name [, workload])  the same report for a named
//                      reference network ("dgcnn", "li", "tailor", zoo)
//   train(a) / train_baseline(name)      materialise and train on the
//                      engine's dataset
//   export_arch(a) / import_arch(text)   persistence round-trip
//
// The owned evaluation state (dataset, supernet, device model, fitted
// predictor, candidate-score memo) lives in a shared EvalContext: build one
// engine per config with Engine::create(cfg), or several engines on one
// context with Engine::create(cfg, ctx) so e.g. one fitted predictor serves
// every search on a device (see api/eval_context.hpp).
//
// Every verb reports failure as Status/Result — user input never throws
// across this boundary. Module-level headers (hgnas/, hw/, predictor/)
// remain public for callers that need internals; new code should start
// here.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "api/config.hpp"
#include "api/eval_context.hpp"
#include "api/registry.hpp"
#include "api/status.hpp"
#include "hgnas/model.hpp"
#include "hgnas/search.hpp"
#include "hgnas/serialize_arch.hpp"
#include "hw/profiler.hpp"
#include "obs/metrics.hpp"

namespace hg::api {

// Vocabulary types re-exported so facade consumers need only this header.
using Arch = hgnas::Arch;
using Workload = hgnas::Workload;
using SearchResult = hgnas::SearchResult;
using ParetoPoint = hgnas::ParetoPoint;

/// One latency answer from the configured evaluator.
struct LatencyReport {
  double latency_ms = 0.0;
  double peak_memory_mb = 0.0;  // 0 = evaluator cannot report memory
  bool oom = false;
};

/// Deterministic deployment report on the target device's cost model.
struct ProfileReport {
  double latency_ms = 0.0;
  double peak_memory_mb = 0.0;
  double energy_mj = 0.0;
  double param_mb = 0.0;
  bool oom = false;
  std::string breakdown;     // one-line Fig. 3 category summary
  std::string per_op_table;  // full per-op profiler table
  /// Per-category latency shares in hw::OpCategory order (Sample /
  /// Aggregate / Combine / Others) — the Fig. 3 bars, numerically.
  std::array<double, hw::kNumCategories> category_fraction{};
  // DGCNN reference on the same device / workload:
  double reference_latency_ms = 0.0;
  double reference_memory_mb = 0.0;
  double speedup_vs_reference = 0.0;
  // Candidate memo-cache traffic of this engine's most recent search()
  // (0/0 before any search; a miss is one full candidate evaluation).
  std::int64_t search_cache_hits = 0;
  std::int64_t search_cache_misses = 0;
};

/// Final metrics after materialising and training an architecture.
struct TrainReport {
  double overall_acc = 0.0;
  double balanced_acc = 0.0;
  double mean_loss = 0.0;
  double param_mb = 0.0;
};

struct SearchReport {
  hgnas::SearchResult result;  // includes result.frontier (Fig. 6)
  std::string visualization;   // Fig. 10-style rendering of the winner
  /// result.frontier as a printable "latency_ms  accuracy" table.
  std::string frontier_table;
};

class SearchRun;
class TrainBaselineRun;

/// Shape of the predictor's architecture-graph abstraction (§III-D).
struct ArchGraphInfo {
  std::int64_t nodes = 0;
  std::int64_t edges = 0;
  std::int64_t feature_dim = 0;
};

/// Held-out accuracy of the engine's trained latency predictor.
struct PredictorReport {
  double mape = 0.0;
  double within_10pct = 0.0;
  double rmse_ms = 0.0;
  double train_mape = 0.0;  // from the fit at engine creation
  /// A few (measured, predicted) pairs from the held-out set — the Fig. 8
  /// scatter sample. Parallel arrays, at most 8 entries.
  std::vector<double> sample_measured_ms;
  std::vector<double> sample_predicted_ms;
};

class Engine {
 public:
  /// Validate the config and build a fresh EvalContext for this engine
  /// alone (for evaluator "predictor" this collects labelled architectures
  /// and fits the predictor).
  static Result<Engine> create(const EngineConfig& cfg);

  /// Build an engine on an existing shared context: the dataset, supernet,
  /// device model, fitted predictors and candidate-score memo are reused.
  /// Context-shaping config fields must match the context's (see
  /// context_compatible); evaluator / strategy / objective / constraints /
  /// search scale may differ per engine.
  static Result<Engine> create(const EngineConfig& cfg,
                               std::shared_ptr<EvalContext> ctx);

  Engine(Engine&&) = default;
  Engine& operator=(Engine&&) = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Run the configured search strategy end to end.
  Result<SearchReport> search();

  /// Generation-granular form of search(): the returned run is advanced one
  /// step at a time and yields the identical report when driven to
  /// completion (the stepper drives the same coroutine search() does).
  /// serve::Service preempts long searches at this granularity. The run
  /// keeps the engine's EvalContext alive, so it may outlive this Engine.
  Result<std::unique_ptr<SearchRun>> begin_search();

  /// Latency of one architecture through the configured evaluator. Noisy
  /// for "measured", learned for "predictor", exact for "oracle". For
  /// "predictor" this is predict_batch at batch size 1 (one packed GCN
  /// forward per call, same code path as a coalesced batch).
  Result<LatencyReport> predict_latency(const Arch& arch);

  /// Latency of N architectures in one evaluator pass. For "predictor" the
  /// batch packs into a single block-diagonal GCN forward
  /// (predictor::LatencyPredictor::predict_batch_ms) — element i is
  /// bit-identical to predict_latency(archs[i]), just cheaper per query;
  /// serve::Service coalesces queued predictions onto this. Other
  /// evaluators answer with a per-architecture loop in order (so "measured"
  /// consumes its noise stream exactly as N predict_latency calls would).
  Result<std::vector<LatencyReport>> predict_batch(
      std::span<const Arch> archs);

  /// Materialise the architecture at training scale and train it for
  /// config().train_epochs on the engine's dataset.
  Result<TrainReport> train(const Arch& arch);

  /// Deterministic deployment report on the target device.
  Result<ProfileReport> profile(const Arch& arch) const;

  // ---- named reference networks (registry "baselines") ----
  /// The profile() report for a named baseline ("dgcnn", "li", "tailor",
  /// "dgcnn-reuse2/3", zoo entries) at the deployment workload — or at an
  /// explicit one (Fig. 1's point-count sweep). Reference numbers inside
  /// the report are recomputed at the same workload, so speedup columns
  /// stay comparable.
  Result<ProfileReport> profile_baseline(const std::string& name) const;
  Result<ProfileReport> profile_baseline(const std::string& name,
                                         const Workload& workload) const;
  /// Train a CPU-scale instance of a named baseline on the engine's
  /// dataset (config().train_epochs / train_lr) — the accuracy columns of
  /// Table II / Fig. 2 / Fig. 6. mean_loss is 0 (baseline training loops
  /// report accuracy only).
  Result<TrainReport> train_baseline(const std::string& name);
  /// Epoch-granular form of train_baseline(): bit-identical when driven to
  /// completion (same model construction, same RNG consumption order).
  Result<std::unique_ptr<TrainBaselineRun>> begin_train_baseline(
      const std::string& name);

  // ---- persistence (serialize_arch v1 text format) ----
  Result<std::string> export_arch(const Arch& arch) const;
  Result<Arch> import_arch(const std::string& text) const;
  Status save_arch(const std::string& path, const Arch& arch) const;
  Result<Arch> load_arch(const std::string& path) const;

  // ---- introspection ----
  /// Snapshot of the process-wide engine instrumentation
  /// (obs::Registry::global()): engine.* counters bumped by the heavy
  /// verbs across every Engine in the process. Per-service serving
  /// metrics live in serve::Service::metrics_snapshot() instead.
  static obs::Snapshot metrics();
  /// Fig. 10-style multi-line rendering at the deployment workload.
  std::string visualize(const Arch& arch) const;
  /// Node/edge/feature counts of the predictor's graph abstraction.
  ArchGraphInfo arch_graph_info(const Arch& arch) const;
  /// Held-out accuracy of the trained predictor (FAILED_PRECONDITION
  /// unless the engine was created with evaluator "predictor").
  Result<PredictorReport> evaluate_predictor(std::int64_t test_count,
                                             std::uint64_t seed);
  /// Uniformly random architecture from the configured design space.
  Arch sample_arch();

  const EngineConfig& config() const { return cfg_; }
  /// The shared evaluation state this engine runs on.
  const std::shared_ptr<EvalContext>& context() const { return ctx_; }
  const hw::Device& device() const { return ctx_->device(); }
  /// Deployment-side workload (cost models, predictor).
  const Workload& deploy_workload() const { return ctx_->deploy_workload(); }
  /// Training-side workload (dataset, materialised models).
  const Workload& train_workload() const { return ctx_->train_workload(); }
  /// DGCNN reference latency / memory on the target device (Table II).
  double reference_latency_ms() const { return ctx_->reference_latency_ms(); }
  double reference_memory_mb() const { return ctx_->reference_memory_mb(); }

 private:
  Engine() = default;

  /// profile() / profile_baseline() share this: cost-model numbers for one
  /// lowered trace against an explicit reference workload.
  ProfileReport profile_trace(const hw::Trace& trace,
                              const Workload& reference_workload) const;

  EngineConfig cfg_;
  hgnas::SearchConfig search_cfg_;
  std::shared_ptr<EvalContext> ctx_;
  EvaluatorBundle evaluator_;
  // Memo-cache counters of the most recent search(), surfaced in
  // ProfileReport.
  std::int64_t last_cache_hits_ = 0;
  std::int64_t last_cache_misses_ = 0;
};

/// An in-flight search advanced one generation at a time — the scheduling
/// unit serve::Service preempts under its exclusive time slice. Obtained
/// from Engine::begin_search(). step() never throws: failures are captured
/// and surface from take_report(), exactly as Engine::search() would have
/// reported them.
class SearchRun {
 public:
  SearchRun(const SearchRun&) = delete;
  SearchRun& operator=(const SearchRun&) = delete;

  /// Advance one generation (or warmup epoch / sampling chunk). False once
  /// the search has finished — successfully or not.
  bool step();
  bool done() const { return finished_; }
  /// Live progress view (phase, step count, simulated time, best
  /// objective). For a strategy without a registered stepwise form the view
  /// jumps from kIdle to kDone on the single whole-run step.
  const hgnas::SearchProgress& progress() const {
    return stepper_ != nullptr ? stepper_->progress() : fallback_progress_;
  }
  /// FAILED_PRECONDITION until done(); afterwards the report (or error
  /// Status) Engine::search() would have produced. Consumes the result.
  Result<SearchReport> take_report();

 private:
  friend class Engine;
  SearchRun() = default;

  std::shared_ptr<EvalContext> ctx_;  // keeps the stepper's borrows alive
  Workload deploy_workload_;
  std::unique_ptr<hgnas::SearchStepper> stepper_;
  /// Fallback for strategies without a stepwise form: one whole-run step.
  std::function<Result<hgnas::SearchResult>()> monolithic_;
  hgnas::SearchProgress fallback_progress_;
  hgnas::SearchResult result_;
  Status error_;
  bool finished_ = false;
};

/// An in-flight baseline training run advanced one epoch at a time — the
/// train_baseline() counterpart of SearchRun, with the same step() /
/// take_report() contract.
class TrainBaselineRun {
 public:
  TrainBaselineRun(const TrainBaselineRun&) = delete;
  TrainBaselineRun& operator=(const TrainBaselineRun&) = delete;

  /// One training epoch (or the final evaluation). False once finished;
  /// never throws.
  bool step();
  bool done() const { return finished_; }
  /// FAILED_PRECONDITION until done(); afterwards the report (or error
  /// Status) Engine::train_baseline() would have produced.
  Result<TrainReport> take_report();

 private:
  friend class Engine;
  TrainBaselineRun() = default;

  std::shared_ptr<EvalContext> ctx_;
  std::unique_ptr<Lowerable> baseline_;  // the stepper refers into it
  std::unique_ptr<TrainStepper> stepper_;
  TrainReport report_;
  Status error_;
  bool finished_ = false;
};

}  // namespace hg::api
