// engine.hpp — hg::api::Engine, the stable entry point of this library.
//
// One facade over the whole HGNAS pipeline (paper: supernet -> hierarchical
// evolutionary search -> GNN latency predictor -> edge deployment). An
// Engine is constructed from a declarative EngineConfig naming a device, a
// latency evaluator and a search strategy (resolved through the registry),
// owns the dataset / supernet / device model / predictor, and exposes
// coherent verbs:
//
//   search()           run the configured NAS strategy, return the winner
//   predict_latency(a) latency of an architecture via the configured
//                      evaluator (oracle, measurement, or GNN predictor)
//   profile(a)         deterministic deployment report on the target device
//                      (latency, memory, energy, Fig. 3 breakdown)
//   train(a)           materialise the architecture and train it on the
//                      engine's dataset
//   export_arch(a) / import_arch(text)   persistence round-trip
//
// Every verb reports failure as Status/Result — user input never throws
// across this boundary. Module-level headers (hgnas/, hw/, predictor/)
// remain public for callers that need internals; new code should start
// here.
#pragma once

#include <memory>
#include <string>

#include "api/config.hpp"
#include "api/registry.hpp"
#include "api/status.hpp"
#include "hgnas/model.hpp"
#include "hgnas/search.hpp"
#include "hgnas/serialize_arch.hpp"
#include "hw/profiler.hpp"

namespace hg::api {

// Vocabulary types re-exported so facade consumers need only this header.
using Arch = hgnas::Arch;
using Workload = hgnas::Workload;
using SearchResult = hgnas::SearchResult;

/// One latency answer from the configured evaluator.
struct LatencyReport {
  double latency_ms = 0.0;
  double peak_memory_mb = 0.0;  // 0 = evaluator cannot report memory
  bool oom = false;
};

/// Deterministic deployment report on the target device's cost model.
struct ProfileReport {
  double latency_ms = 0.0;
  double peak_memory_mb = 0.0;
  double energy_mj = 0.0;
  double param_mb = 0.0;
  bool oom = false;
  std::string breakdown;     // one-line Fig. 3 category summary
  std::string per_op_table;  // full per-op profiler table
  // DGCNN reference on the same device / workload:
  double reference_latency_ms = 0.0;
  double reference_memory_mb = 0.0;
  double speedup_vs_reference = 0.0;
  // Candidate memo-cache traffic of this engine's most recent search()
  // (0/0 before any search; a miss is one full candidate evaluation).
  std::int64_t search_cache_hits = 0;
  std::int64_t search_cache_misses = 0;
};

/// Final metrics after materialising and training an architecture.
struct TrainReport {
  double overall_acc = 0.0;
  double balanced_acc = 0.0;
  double mean_loss = 0.0;
  double param_mb = 0.0;
};

struct SearchReport {
  hgnas::SearchResult result;
  std::string visualization;  // Fig. 10-style rendering of the winner
};

/// Shape of the predictor's architecture-graph abstraction (§III-D).
struct ArchGraphInfo {
  std::int64_t nodes = 0;
  std::int64_t edges = 0;
  std::int64_t feature_dim = 0;
};

/// Held-out accuracy of the engine's trained latency predictor.
struct PredictorReport {
  double mape = 0.0;
  double within_10pct = 0.0;
  double rmse_ms = 0.0;
  double train_mape = 0.0;  // from the fit at engine creation
};

class Engine {
 public:
  /// Validate the config, resolve every registry name, build the owned
  /// state (dataset, supernet, device model; for evaluator "predictor"
  /// this collects labelled architectures and fits the predictor).
  static Result<Engine> create(const EngineConfig& cfg);

  Engine(Engine&&) = default;
  Engine& operator=(Engine&&) = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Run the configured search strategy end to end.
  Result<SearchReport> search();

  /// Latency of one architecture through the configured evaluator. Noisy
  /// for "measured", learned for "predictor", exact for "oracle".
  Result<LatencyReport> predict_latency(const Arch& arch);

  /// Materialise the architecture at training scale and train it for
  /// config().train_epochs on the engine's dataset.
  Result<TrainReport> train(const Arch& arch);

  /// Deterministic deployment report on the target device.
  Result<ProfileReport> profile(const Arch& arch) const;

  // ---- persistence (serialize_arch v1 text format) ----
  Result<std::string> export_arch(const Arch& arch) const;
  Result<Arch> import_arch(const std::string& text) const;
  Status save_arch(const std::string& path, const Arch& arch) const;
  Result<Arch> load_arch(const std::string& path) const;

  // ---- introspection ----
  /// Fig. 10-style multi-line rendering at the deployment workload.
  std::string visualize(const Arch& arch) const;
  /// Node/edge/feature counts of the predictor's graph abstraction.
  ArchGraphInfo arch_graph_info(const Arch& arch) const;
  /// Held-out accuracy of the trained predictor (FAILED_PRECONDITION
  /// unless the engine was created with evaluator "predictor").
  Result<PredictorReport> evaluate_predictor(std::int64_t test_count,
                                             std::uint64_t seed);
  /// Uniformly random architecture from the configured design space.
  Arch sample_arch();

  const EngineConfig& config() const { return cfg_; }
  const hw::Device& device() const { return *device_; }
  /// Deployment-side workload (cost models, predictor).
  const Workload& deploy_workload() const { return deploy_workload_; }
  /// Training-side workload (dataset, materialised models).
  const Workload& train_workload() const { return train_workload_; }
  /// DGCNN reference latency / memory on the target device (Table II).
  double reference_latency_ms() const { return reference_ms_; }
  double reference_memory_mb() const { return reference_mb_; }

 private:
  Engine() = default;

  EngineConfig cfg_;
  Workload deploy_workload_;
  Workload train_workload_;
  hgnas::SearchConfig search_cfg_;
  // unique_ptrs keep addresses stable across Engine moves: the evaluator
  // closure and the search borrow the device / dataset / supernet.
  std::unique_ptr<hw::Device> device_;
  std::unique_ptr<pointcloud::Dataset> data_;
  std::unique_ptr<hgnas::SuperNet> supernet_;
  std::unique_ptr<Rng> rng_;
  EvaluatorBundle evaluator_;
  double reference_ms_ = 0.0;
  double reference_mb_ = 0.0;
  // Memo-cache counters of the most recent search(), surfaced in
  // ProfileReport.
  std::int64_t last_cache_hits_ = 0;
  std::int64_t last_cache_misses_ = 0;
};

}  // namespace hg::api
