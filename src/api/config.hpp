// config.hpp — declarative configuration of an hg::api::Engine.
//
// One plain-data struct describes everything an engine run needs: which
// device model to target (by registry name), how latency is evaluated, which
// search strategy runs, the deployment workload, the training-side scale,
// and the hardware constraint set C as explicit optional bounds (no magic
// sentinels). Consumers fill a handful of fields and hand the struct to
// `Engine::create`; `validate()` reports problems as a Status instead of
// throwing.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "api/status.hpp"

namespace hg::api {

struct EngineConfig {
  // ---- registry selections (see api/registry.hpp for the built-ins) ----
  std::string device = "rtx3080";      // e.g. "rtx3080", "jetson-tx2"
  std::string evaluator = "oracle";    // "oracle" | "measured" | "predictor"
  std::string strategy = "multistage"; // "multistage" | "onestage" | "random"

  // ---- deployment workload (drives cost models and the predictor) ----
  std::int64_t num_points = 1024;
  std::int64_t k = 20;
  std::int64_t num_classes = 40;

  // ---- design space ----
  std::int64_t num_positions = 12;

  // ---- training-side scale (dataset, supernet, materialised training) ----
  // The accuracy side runs scaled-down on one CPU core (see DESIGN.md);
  // cost-model latencies always use the deployment workload above.
  std::int64_t samples_per_class = 10;
  std::int64_t train_points = 32;
  std::int64_t train_k = 6;
  std::uint64_t dataset_seed = 3;
  std::int64_t supernet_hidden = 16;
  std::int64_t supernet_head_hidden = 32;
  std::int64_t train_epochs = 10;  // Engine::train() on a materialised arch
  float train_lr = 1e-3f;          // learning rate for Engine::train()

  // ---- search scale ----
  /// When false, search() assumes the context's supernet was already
  /// trained (by an earlier search on the same shared EvalContext) and
  /// skips every warmup / re-init / pretrain phase. Supernet training is
  /// device-independent, so one trained supernet can serve several
  /// per-device or per-objective searches — and their candidate scores can
  /// then meet in the context's shared memo cache.
  bool train_supernet = true;
  std::int64_t population = 16;
  std::int64_t parents = 8;
  std::int64_t iterations = 12;
  double alpha = 1.0;  // accuracy weight in Eq. (3)
  double beta = 0.5;   // latency weight
  std::int64_t eval_val_samples = 20;
  std::int64_t function_paths_per_eval = 3;
  std::int64_t stage1_epochs = 1;
  std::int64_t stage2_epochs = 2;

  // ---- hardware constraint set C (unset bound = unconstrained) ----
  std::optional<double> latency_budget_ms;
  std::optional<double> memory_budget_mb;
  std::optional<double> model_size_budget_mb;
  /// Constrain latency to the DGCNN reference latency on the target device
  /// (the paper's usual choice of C). Applied only when latency_budget_ms
  /// is unset.
  bool constrain_to_reference = false;

  /// Normaliser for the latency term of Eq. (3); unset: the DGCNN reference
  /// latency on the target device (makes alpha : beta dimensionless).
  std::optional<double> latency_scale_ms;

  // ---- "predictor" evaluator knobs ----
  std::int64_t predictor_samples = 600;  // labelled archs collected
  std::int64_t predictor_epochs = 50;

  /// When non-empty, the context's candidate-score memo cache
  /// (hgnas::EvalCache) is loaded from this file at EvalContext creation
  /// and written back at context destruction, so repeated runs (benches,
  /// service restarts) start warm. Entries survive only while the cache
  /// scope — evaluator tag, objective, supernet weight version — still
  /// matches; a stale file is simply a cold start. The file sits wherever
  /// the caller points it (benches: next to their BENCH_*.json). One file
  /// belongs to one context: point each context (e.g. each device of a
  /// fleet) at its own path — EvalContext::create_many rejects duplicates.
  std::string eval_cache_path;

  // ---- simulated wall-clock bookkeeping (V100-equivalents) ----
  double sim_train_s_per_sample = 0.004;
  double sim_eval_s_per_sample = 0.0015;

  std::uint64_t seed = 2024;  // master seed for every stochastic component

  /// Width of the process-wide execution pool (kernels, concurrent
  /// candidate evaluation). 0 = hardware concurrency. 1 disables the pool
  /// and forces the historical single-threaded path bit-for-bit. Applied
  /// process-wide by Engine::create (the pool is shared, like a BLAS
  /// thread setting).
  std::int64_t num_threads = 0;

  /// Tiny preset: everything shrunk so a full engine lifecycle (create,
  /// search, train, profile) completes in seconds — the scale used by
  /// tests/test_api.cpp and CI smoke runs.
  static EngineConfig tiny();
};

/// Field-level sanity checks (positivity, ranges, cross-field relations).
/// Registry-name resolution happens later, in Engine::create.
Status validate(const EngineConfig& cfg);

/// Whether `cfg` can run on an EvalContext built from `ctx_cfg`: every
/// field that shapes the context's owned state must match. Those fields
/// are, exhaustively: device; the deployment workload (num_points, k,
/// num_classes); num_positions; the dataset (samples_per_class,
/// train_points, train_k, dataset_seed); the supernet (supernet_hidden,
/// supernet_head_hidden); the predictor knobs (predictor_samples,
/// predictor_epochs); the master seed; num_threads; and eval_cache_path.
/// Per-engine fields — evaluator, strategy, objective weights, constraint
/// set, search scale — are free to differ; that is the point of sharing a
/// context. Returns INVALID_ARGUMENT naming the first mismatch. Anything
/// that dispatches requests across engines on one context
/// (serve::Service) relies on this check as its admission gate.
Status context_compatible(const EngineConfig& ctx_cfg,
                          const EngineConfig& cfg);

}  // namespace hg::api
