#include "api/lowerable.hpp"

#include <utility>

#include "api/registry.hpp"
#include "baselines/baselines.hpp"
#include "hgnas/model.hpp"
#include "hgnas/zoo.hpp"

namespace hg::api {

namespace {

/// DGCNN and its sampling-reuse ladder: reuse_from_layer = 4 is the
/// original network, 1 is the Li et al. [6] single-sample optimisation
/// (Fig. 2's x-axis).
class DgcnnBaseline final : public Lowerable {
 public:
  DgcnnBaseline(std::string name, std::int64_t reuse_from_layer)
      : name_(std::move(name)), reuse_from_layer_(reuse_from_layer) {}

  std::string name() const override { return name_; }

  hw::Trace lower(const hgnas::Workload& w) const override {
    baselines::DgcnnConfig cfg;  // paper-scale widths
    cfg.k = w.k;
    cfg.num_classes = w.num_classes;
    cfg.reuse_from_layer = reuse_from_layer_;
    return baselines::Dgcnn::trace(cfg, w.num_points);
  }

  BaselineTrainResult train(const pointcloud::Dataset& data,
                            const hgnas::Workload& train_w,
                            std::int64_t epochs, float lr,
                            Rng& rng) const override {
    baselines::DgcnnConfig cfg =
        baselines::DgcnnConfig::scaled(train_w.num_classes, train_w.k);
    cfg.reuse_from_layer = reuse_from_layer_;
    baselines::Dgcnn model(cfg, rng);
    const baselines::BaselineEval eval =
        baselines::train_baseline(model, data, epochs, lr, rng);
    return {eval.overall_acc, eval.balanced_acc, model.param_mb()};
  }

 private:
  std::string name_;
  std::int64_t reuse_from_layer_;
};

/// Tailor et al. [7]: single spatial graph, simplified latter layers.
class TailorBaseline final : public Lowerable {
 public:
  std::string name() const override { return "tailor"; }

  hw::Trace lower(const hgnas::Workload& w) const override {
    baselines::TailorConfig cfg;
    cfg.k = w.k;
    cfg.num_classes = w.num_classes;
    return baselines::TailorGnn::trace(cfg, w.num_points);
  }

  BaselineTrainResult train(const pointcloud::Dataset& data,
                            const hgnas::Workload& train_w,
                            std::int64_t epochs, float lr,
                            Rng& rng) const override {
    baselines::TailorGnn model(
        baselines::TailorConfig::scaled(train_w.num_classes, train_w.k), rng);
    const baselines::BaselineEval eval =
        baselines::train_baseline(model, data, epochs, lr, rng);
    return {eval.overall_acc, eval.balanced_acc, model.param_mb()};
  }
};

/// A fixed architecture from the zoo (the paper's Fig. 10 Device_Fast
/// networks), lowered and trained exactly like any searched design.
class ZooBaseline final : public Lowerable {
 public:
  ZooBaseline(std::string name, hgnas::Arch arch)
      : name_(std::move(name)), arch_(std::move(arch)) {}

  std::string name() const override { return name_; }

  hw::Trace lower(const hgnas::Workload& w) const override {
    return hgnas::lower_to_trace(arch_, w);
  }

  BaselineTrainResult train(const pointcloud::Dataset& data,
                            const hgnas::Workload& train_w,
                            std::int64_t epochs, float lr,
                            Rng& rng) const override {
    hgnas::GnnModel model(arch_, train_w, rng);
    hgnas::TrainConfig cfg;
    cfg.epochs = epochs;
    cfg.lr = lr;
    const hgnas::EvalResult eval = hgnas::train_model(model, data, cfg, rng);
    return {eval.overall_acc, eval.balanced_acc, model.param_mb()};
  }

 private:
  std::string name_;
  hgnas::Arch arch_;
};

}  // namespace

void install_builtin_baselines(Registry& registry) {
  auto dgcnn = [](std::string name, std::int64_t reuse) {
    return [name = std::move(name), reuse]() -> std::unique_ptr<Lowerable> {
      return std::make_unique<DgcnnBaseline>(name, reuse);
    };
  };
  registry.register_baseline("dgcnn", "dgcnn-reuse4", dgcnn("dgcnn", 4));
  registry.register_baseline("dgcnn-reuse3", "", dgcnn("dgcnn-reuse3", 3));
  registry.register_baseline("dgcnn-reuse2", "", dgcnn("dgcnn-reuse2", 2));
  registry.register_baseline("li", "dgcnn-reuse1", dgcnn("li", 1));
  registry.register_baseline("tailor", "", []() -> std::unique_ptr<Lowerable> {
    return std::make_unique<TailorBaseline>();
  });

  auto zoo = [](std::string name, hgnas::Arch (*make)()) {
    return [name = std::move(name), make]() -> std::unique_ptr<Lowerable> {
      return std::make_unique<ZooBaseline>(name, make());
    };
  };
  registry.register_baseline("rtx-fast", "", zoo("rtx-fast",
                                                 hgnas::zoo::rtx_fast));
  registry.register_baseline("i7-fast", "intel-fast",
                             zoo("i7-fast", hgnas::zoo::intel_fast));
  registry.register_baseline("tx2-fast", "", zoo("tx2-fast",
                                                 hgnas::zoo::tx2_fast));
  registry.register_baseline("pi-fast", "", zoo("pi-fast",
                                                hgnas::zoo::pi_fast));
}

}  // namespace hg::api
