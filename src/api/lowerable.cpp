#include "api/lowerable.hpp"

#include <functional>
#include <utility>

#include "api/registry.hpp"
#include "baselines/baselines.hpp"
#include "core/stepwise.hpp"
#include "hgnas/model.hpp"
#include "hgnas/zoo.hpp"

namespace hg::api {

namespace {

/// Epoch stepper over the baselines' shared training loop: owns the
/// materialised model and drives the train_baseline_stepwise coroutine.
/// The model is built in the constructor, so RNG consumption matches the
/// monolithic train() (model init first, then training draws per step).
template <typename ModelT, typename ConfigT>
class ModelTrainStepper final : public TrainStepper {
 public:
  ModelTrainStepper(const ConfigT& cfg, const pointcloud::Dataset& data,
                    std::int64_t epochs, float lr, Rng& rng)
      : model_(cfg, rng),
        run_(baselines::train_baseline_stepwise(model_, data, epochs, lr, rng,
                                                &eval_)) {}

  bool step() override {
    if (run_.done()) return false;
    return run_.step();
  }
  bool done() const override { return run_.done(); }
  BaselineTrainResult result() const override {
    return {eval_.overall_acc, eval_.balanced_acc, model_.param_mb()};
  }

 private:
  ModelT model_;  // declared before run_: the coroutine frame refers to it
  baselines::BaselineEval eval_;
  core::Stepper run_;
};

/// Same shape over hgnas::train_model_stepwise for zoo architectures.
class ZooTrainStepper final : public TrainStepper {
 public:
  ZooTrainStepper(const hgnas::Arch& arch, const hgnas::Workload& train_w,
                  const pointcloud::Dataset& data, hgnas::TrainConfig cfg,
                  Rng& rng)
      : model_(arch, train_w, rng),
        run_(hgnas::train_model_stepwise(model_, data, cfg, rng, &eval_)) {}

  bool step() override {
    if (run_.done()) return false;
    return run_.step();
  }
  bool done() const override { return run_.done(); }
  BaselineTrainResult result() const override {
    return {eval_.overall_acc, eval_.balanced_acc, model_.param_mb()};
  }

 private:
  hgnas::GnnModel model_;
  hgnas::EvalResult eval_;
  core::Stepper run_;
};

/// Fallback for Lowerables without an epoch-granular loop: one step that
/// runs the whole train() call.
class MonolithicTrainStepper final : public TrainStepper {
 public:
  explicit MonolithicTrainStepper(std::function<BaselineTrainResult()> fn)
      : fn_(std::move(fn)) {}

  bool step() override {
    if (done_) return false;
    result_ = fn_();
    done_ = true;
    return false;
  }
  bool done() const override { return done_; }
  BaselineTrainResult result() const override { return result_; }

 private:
  std::function<BaselineTrainResult()> fn_;
  BaselineTrainResult result_;
  bool done_ = false;
};

/// DGCNN and its sampling-reuse ladder: reuse_from_layer = 4 is the
/// original network, 1 is the Li et al. [6] single-sample optimisation
/// (Fig. 2's x-axis).
class DgcnnBaseline final : public Lowerable {
 public:
  DgcnnBaseline(std::string name, std::int64_t reuse_from_layer)
      : name_(std::move(name)), reuse_from_layer_(reuse_from_layer) {}

  std::string name() const override { return name_; }

  hw::Trace lower(const hgnas::Workload& w) const override {
    baselines::DgcnnConfig cfg;  // paper-scale widths
    cfg.k = w.k;
    cfg.num_classes = w.num_classes;
    cfg.reuse_from_layer = reuse_from_layer_;
    return baselines::Dgcnn::trace(cfg, w.num_points);
  }

  BaselineTrainResult train(const pointcloud::Dataset& data,
                            const hgnas::Workload& train_w,
                            std::int64_t epochs, float lr,
                            Rng& rng) const override {
    baselines::DgcnnConfig cfg =
        baselines::DgcnnConfig::scaled(train_w.num_classes, train_w.k);
    cfg.reuse_from_layer = reuse_from_layer_;
    baselines::Dgcnn model(cfg, rng);
    const baselines::BaselineEval eval =
        baselines::train_baseline(model, data, epochs, lr, rng);
    return {eval.overall_acc, eval.balanced_acc, model.param_mb()};
  }

  std::unique_ptr<TrainStepper> train_stepper(
      const pointcloud::Dataset& data, const hgnas::Workload& train_w,
      std::int64_t epochs, float lr, Rng& rng) const override {
    baselines::DgcnnConfig cfg =
        baselines::DgcnnConfig::scaled(train_w.num_classes, train_w.k);
    cfg.reuse_from_layer = reuse_from_layer_;
    return std::make_unique<
        ModelTrainStepper<baselines::Dgcnn, baselines::DgcnnConfig>>(
        cfg, data, epochs, lr, rng);
  }

 private:
  std::string name_;
  std::int64_t reuse_from_layer_;
};

/// Tailor et al. [7]: single spatial graph, simplified latter layers.
class TailorBaseline final : public Lowerable {
 public:
  std::string name() const override { return "tailor"; }

  hw::Trace lower(const hgnas::Workload& w) const override {
    baselines::TailorConfig cfg;
    cfg.k = w.k;
    cfg.num_classes = w.num_classes;
    return baselines::TailorGnn::trace(cfg, w.num_points);
  }

  BaselineTrainResult train(const pointcloud::Dataset& data,
                            const hgnas::Workload& train_w,
                            std::int64_t epochs, float lr,
                            Rng& rng) const override {
    baselines::TailorGnn model(
        baselines::TailorConfig::scaled(train_w.num_classes, train_w.k), rng);
    const baselines::BaselineEval eval =
        baselines::train_baseline(model, data, epochs, lr, rng);
    return {eval.overall_acc, eval.balanced_acc, model.param_mb()};
  }

  std::unique_ptr<TrainStepper> train_stepper(
      const pointcloud::Dataset& data, const hgnas::Workload& train_w,
      std::int64_t epochs, float lr, Rng& rng) const override {
    return std::make_unique<
        ModelTrainStepper<baselines::TailorGnn, baselines::TailorConfig>>(
        baselines::TailorConfig::scaled(train_w.num_classes, train_w.k), data,
        epochs, lr, rng);
  }
};

/// A fixed architecture from the zoo (the paper's Fig. 10 Device_Fast
/// networks), lowered and trained exactly like any searched design.
class ZooBaseline final : public Lowerable {
 public:
  ZooBaseline(std::string name, hgnas::Arch arch)
      : name_(std::move(name)), arch_(std::move(arch)) {}

  std::string name() const override { return name_; }

  hw::Trace lower(const hgnas::Workload& w) const override {
    return hgnas::lower_to_trace(arch_, w);
  }

  BaselineTrainResult train(const pointcloud::Dataset& data,
                            const hgnas::Workload& train_w,
                            std::int64_t epochs, float lr,
                            Rng& rng) const override {
    hgnas::GnnModel model(arch_, train_w, rng);
    hgnas::TrainConfig cfg;
    cfg.epochs = epochs;
    cfg.lr = lr;
    const hgnas::EvalResult eval = hgnas::train_model(model, data, cfg, rng);
    return {eval.overall_acc, eval.balanced_acc, model.param_mb()};
  }

  std::unique_ptr<TrainStepper> train_stepper(
      const pointcloud::Dataset& data, const hgnas::Workload& train_w,
      std::int64_t epochs, float lr, Rng& rng) const override {
    hgnas::TrainConfig cfg;
    cfg.epochs = epochs;
    cfg.lr = lr;
    return std::make_unique<ZooTrainStepper>(arch_, train_w, data, cfg, rng);
  }

 private:
  std::string name_;
  hgnas::Arch arch_;
};

}  // namespace

std::unique_ptr<TrainStepper> Lowerable::train_stepper(
    const pointcloud::Dataset& data, const hgnas::Workload& train_workload,
    std::int64_t epochs, float lr, Rng& rng) const {
  return std::make_unique<MonolithicTrainStepper>(
      [this, &data, train_workload, epochs, lr, &rng] {
        return train(data, train_workload, epochs, lr, rng);
      });
}

void install_builtin_baselines(Registry& registry) {
  auto dgcnn = [](std::string name, std::int64_t reuse) {
    return [name = std::move(name), reuse]() -> std::unique_ptr<Lowerable> {
      return std::make_unique<DgcnnBaseline>(name, reuse);
    };
  };
  registry.register_baseline("dgcnn", "dgcnn-reuse4", dgcnn("dgcnn", 4));
  registry.register_baseline("dgcnn-reuse3", "", dgcnn("dgcnn-reuse3", 3));
  registry.register_baseline("dgcnn-reuse2", "", dgcnn("dgcnn-reuse2", 2));
  registry.register_baseline("li", "dgcnn-reuse1", dgcnn("li", 1));
  registry.register_baseline("tailor", "", []() -> std::unique_ptr<Lowerable> {
    return std::make_unique<TailorBaseline>();
  });

  auto zoo = [](std::string name, hgnas::Arch (*make)()) {
    return [name = std::move(name), make]() -> std::unique_ptr<Lowerable> {
      return std::make_unique<ZooBaseline>(name, make());
    };
  };
  registry.register_baseline("rtx-fast", "", zoo("rtx-fast",
                                                 hgnas::zoo::rtx_fast));
  registry.register_baseline("i7-fast", "intel-fast",
                             zoo("i7-fast", hgnas::zoo::intel_fast));
  registry.register_baseline("tx2-fast", "", zoo("tx2-fast",
                                                 hgnas::zoo::tx2_fast));
  registry.register_baseline("pi-fast", "", zoo("pi-fast",
                                                hgnas::zoo::pi_fast));
}

}  // namespace hg::api
