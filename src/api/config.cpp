#include "api/config.hpp"

#include <algorithm>

#include "core/parallel.hpp"

namespace hg::api {

EngineConfig EngineConfig::tiny() {
  EngineConfig cfg;
  cfg.num_points = 256;
  cfg.k = 10;
  cfg.num_classes = 10;
  cfg.num_positions = 6;
  cfg.samples_per_class = 4;
  cfg.population = 8;
  cfg.parents = 4;
  cfg.iterations = 3;
  cfg.eval_val_samples = 6;
  cfg.function_paths_per_eval = 1;
  cfg.stage1_epochs = 1;
  cfg.stage2_epochs = 1;
  cfg.train_epochs = 4;
  cfg.predictor_samples = 60;
  cfg.predictor_epochs = 8;
  return cfg;
}

Status validate(const EngineConfig& cfg) {
  auto require = [](bool cond, const char* msg) {
    return cond ? Status::Ok() : Status::InvalidArgument(msg);
  };
  struct Check {
    bool cond;
    const char* msg;
  };
  const Check checks[] = {
      {!cfg.device.empty(), "device name must not be empty"},
      {!cfg.evaluator.empty(), "evaluator name must not be empty"},
      {!cfg.strategy.empty(), "strategy name must not be empty"},
      {cfg.num_points > 0, "num_points must be positive"},
      {cfg.k > 0 && cfg.k < cfg.num_points,
       "k must be in [1, num_points)"},
      {cfg.num_classes > 0, "num_classes must be positive"},
      {cfg.num_positions > 0, "num_positions must be positive"},
      {cfg.samples_per_class > 0, "samples_per_class must be positive"},
      {cfg.train_points > 0, "train_points must be positive"},
      {cfg.train_k > 0 && cfg.train_k < cfg.train_points,
       "train_k must be in [1, train_points)"},
      {cfg.supernet_hidden > 0, "supernet_hidden must be positive"},
      {cfg.supernet_head_hidden > 0, "supernet_head_hidden must be positive"},
      {cfg.train_epochs > 0, "train_epochs must be positive"},
      {cfg.train_lr > 0.f, "train_lr must be positive"},
      {cfg.population >= 2, "population must be >= 2"},
      {cfg.parents >= 1 && cfg.parents <= cfg.population,
       "parents must be in [1, population]"},
      {cfg.iterations >= 1, "iterations must be >= 1"},
      {cfg.eval_val_samples > 0, "eval_val_samples must be positive"},
      {cfg.function_paths_per_eval > 0,
       "function_paths_per_eval must be positive"},
      {cfg.stage1_epochs >= 0, "stage1_epochs must be non-negative"},
      {cfg.stage2_epochs >= 0, "stage2_epochs must be non-negative"},
      {!cfg.latency_budget_ms || *cfg.latency_budget_ms > 0.0,
       "latency_budget_ms must be positive when set"},
      {!cfg.memory_budget_mb || *cfg.memory_budget_mb > 0.0,
       "memory_budget_mb must be positive when set"},
      {!cfg.model_size_budget_mb || *cfg.model_size_budget_mb > 0.0,
       "model_size_budget_mb must be positive when set"},
      {!cfg.latency_scale_ms || *cfg.latency_scale_ms > 0.0,
       "latency_scale_ms must be positive when set"},
      {cfg.predictor_samples > 0, "predictor_samples must be positive"},
      {cfg.predictor_epochs > 0, "predictor_epochs must be positive"},
      {cfg.sim_train_s_per_sample >= 0.0,
       "sim_train_s_per_sample must be non-negative"},
      {cfg.sim_eval_s_per_sample >= 0.0,
       "sim_eval_s_per_sample must be non-negative"},
      {cfg.num_threads >= 0,
       "num_threads must be non-negative (0 = hardware concurrency)"},
      // Oversubscription beyond a few x hardware is never useful and a huge
      // value would fail std::thread construction mid-resize.
      {cfg.num_threads <= std::max<std::int64_t>(64,
                                                 8 * core::hardware_threads()),
       "num_threads is absurdly large (cap: max(64, 8 x hardware threads))"},
  };
  for (const Check& c : checks) {
    const Status s = require(c.cond, c.msg);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

Status context_compatible(const EngineConfig& ctx_cfg,
                          const EngineConfig& cfg) {
  auto mismatch = [](const char* field) {
    return Status::InvalidArgument(
        std::string("config field '") + field +
        "' differs from the shared EvalContext's; context-shaping fields "
        "must match (build a fresh context to change them)");
  };
  struct Check {
    bool equal;
    const char* field;
  };
  const Check checks[] = {
      {ctx_cfg.device == cfg.device, "device"},
      {ctx_cfg.num_points == cfg.num_points, "num_points"},
      {ctx_cfg.k == cfg.k, "k"},
      {ctx_cfg.num_classes == cfg.num_classes, "num_classes"},
      {ctx_cfg.num_positions == cfg.num_positions, "num_positions"},
      {ctx_cfg.samples_per_class == cfg.samples_per_class,
       "samples_per_class"},
      {ctx_cfg.train_points == cfg.train_points, "train_points"},
      {ctx_cfg.train_k == cfg.train_k, "train_k"},
      {ctx_cfg.dataset_seed == cfg.dataset_seed, "dataset_seed"},
      {ctx_cfg.supernet_hidden == cfg.supernet_hidden, "supernet_hidden"},
      {ctx_cfg.supernet_head_hidden == cfg.supernet_head_hidden,
       "supernet_head_hidden"},
      {ctx_cfg.predictor_samples == cfg.predictor_samples,
       "predictor_samples"},
      {ctx_cfg.predictor_epochs == cfg.predictor_epochs, "predictor_epochs"},
      {ctx_cfg.seed == cfg.seed, "seed"},
      {ctx_cfg.num_threads == cfg.num_threads, "num_threads"},
      {ctx_cfg.eval_cache_path == cfg.eval_cache_path, "eval_cache_path"},
  };
  for (const Check& c : checks)
    if (!c.equal) return mismatch(c.field);
  return Status::Ok();
}

}  // namespace hg::api
