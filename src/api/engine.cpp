#include "api/engine.hpp"

#include <exception>
#include <stdexcept>
#include <utility>

#include "core/parallel.hpp"
#include "predictor/predictor.hpp"

namespace hg::api {

namespace {

std::string join(const std::vector<std::string>& names) {
  std::string out;
  for (const auto& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

/// Structural validity of a user-supplied architecture (imported files and
/// hand-built genes enter the facade here; enum values outside their range
/// would index out of bounds further down).
Status validate_arch(const Arch& arch) {
  if (arch.genes.empty())
    return Status::InvalidArgument("architecture has no positions");
  for (std::size_t i = 0; i < arch.genes.size(); ++i) {
    const hgnas::PositionGene& g = arch.genes[i];
    const auto pos = std::to_string(i);
    const auto op = static_cast<std::int64_t>(g.op);
    if (op < 0 || op >= hgnas::kNumOpTypes)
      return Status::InvalidArgument("position " + pos +
                                     ": operation type out of range");
    const auto connect = static_cast<std::int64_t>(g.fn.connect);
    if (connect < 0 || connect >= hgnas::kNumConnectFuncs)
      return Status::InvalidArgument("position " + pos +
                                     ": connect function out of range");
    const auto aggr = static_cast<std::int64_t>(g.fn.aggr);
    if (aggr < 0 || aggr >= hgnas::kNumAggrTypes)
      return Status::InvalidArgument("position " + pos +
                                     ": aggregator out of range");
    const auto msg = static_cast<std::int64_t>(g.fn.msg);
    if (msg < 0 || msg >= gnn::kNumMessageTypes)
      return Status::InvalidArgument("position " + pos +
                                     ": message type out of range");
    const auto sample = static_cast<std::int64_t>(g.fn.sample);
    if (sample < 0 || sample >= hgnas::kNumSampleFuncs)
      return Status::InvalidArgument("position " + pos +
                                     ": sample function out of range");
    if (g.fn.combine_dim_idx < 0 ||
        g.fn.combine_dim_idx >= hgnas::kNumCombineDims)
      return Status::InvalidArgument("position " + pos +
                                     ": combine dimension index out of range");
  }
  return Status::Ok();
}

}  // namespace

Result<Engine> Engine::create(const EngineConfig& cfg) {
  if (const Status s = validate(cfg); !s.ok()) return s;

  Registry& reg = Registry::global();
  if (!reg.has_strategy(cfg.strategy))
    return Status::NotFound("unknown strategy '" + cfg.strategy +
                            "' (known: " + join(reg.strategy_names()) + ")");

  Engine engine;
  engine.cfg_ = cfg;

  // Size the shared execution pool (0 = hardware concurrency, 1 = the
  // bit-for-bit serial path). Process-wide, like a BLAS thread setting.
  try {
    core::set_num_threads(cfg.num_threads);
  } catch (const std::exception& e) {
    // Thread creation can fail under resource exhaustion even for counts
    // that pass validation; keep the no-throw facade contract.
    return Status::Internal(std::string("cannot size the thread pool: ") +
                            e.what());
  }

  Result<hw::Device> device = reg.make_device(cfg.device);
  if (!device.ok()) return device.status();
  engine.device_ = std::make_unique<hw::Device>(std::move(device).value());

  engine.deploy_workload_.num_points = cfg.num_points;
  engine.deploy_workload_.k = cfg.k;
  engine.deploy_workload_.num_classes = cfg.num_classes;

  engine.data_ = std::make_unique<pointcloud::Dataset>(
      cfg.samples_per_class, cfg.train_points, cfg.dataset_seed);
  engine.train_workload_.num_points = cfg.train_points;
  engine.train_workload_.k = cfg.train_k;
  engine.train_workload_.num_classes = engine.data_->num_classes();

  const hw::Trace reference =
      hw::dgcnn_reference_trace(cfg.num_points, cfg.k, cfg.num_classes);
  engine.reference_ms_ = engine.device_->latency_ms(reference);
  engine.reference_mb_ = engine.device_->peak_memory_mb(reference);

  hgnas::SearchConfig& scfg = engine.search_cfg_;
  scfg.space.num_positions = cfg.num_positions;
  scfg.workload = engine.deploy_workload_;
  scfg.population = cfg.population;
  scfg.parents = cfg.parents;
  scfg.iterations = cfg.iterations;
  scfg.alpha = cfg.alpha;
  scfg.beta = cfg.beta;
  scfg.latency_constraint_ms = cfg.latency_budget_ms;
  if (!scfg.latency_constraint_ms && cfg.constrain_to_reference)
    scfg.latency_constraint_ms = engine.reference_ms_;
  scfg.memory_constraint_mb = cfg.memory_budget_mb;
  scfg.size_constraint_mb = cfg.model_size_budget_mb;
  scfg.latency_scale_ms = cfg.latency_scale_ms.value_or(engine.reference_ms_);
  scfg.eval_val_samples = cfg.eval_val_samples;
  scfg.function_paths_per_eval = cfg.function_paths_per_eval;
  scfg.stage1_epochs = cfg.stage1_epochs;
  scfg.stage2_epochs = cfg.stage2_epochs;
  scfg.sim_train_s_per_sample = cfg.sim_train_s_per_sample;
  scfg.sim_eval_s_per_sample = cfg.sim_eval_s_per_sample;

  engine.rng_ = std::make_unique<Rng>(cfg.seed);
  hgnas::SupernetConfig sn_cfg;
  sn_cfg.hidden = cfg.supernet_hidden;
  sn_cfg.k = cfg.train_k;
  sn_cfg.num_classes = engine.data_->num_classes();
  sn_cfg.head_hidden = cfg.supernet_head_hidden;
  engine.supernet_ = std::make_unique<hgnas::SuperNet>(scfg.space, sn_cfg,
                                                       *engine.rng_);

  EvaluatorRequest ereq;
  ereq.device = engine.device_.get();
  ereq.space = scfg.space;
  ereq.workload = engine.deploy_workload_;
  ereq.seed = cfg.seed ^ 0xa5a5a5a55a5a5a5aULL;
  ereq.predictor_samples = cfg.predictor_samples;
  ereq.predictor_epochs = cfg.predictor_epochs;
  Result<EvaluatorBundle> evaluator = reg.make_evaluator(cfg.evaluator, ereq);
  if (!evaluator.ok()) return evaluator.status();
  engine.evaluator_ = std::move(evaluator).value();

  return engine;
}

Result<SearchReport> Engine::search() {
  StrategyRequest req;
  req.supernet = supernet_.get();
  req.data = data_.get();
  req.cfg = search_cfg_;
  req.latency = evaluator_.fn;
  req.rng = rng_.get();
  try {
    Result<hgnas::SearchResult> result =
        Registry::global().run_strategy(cfg_.strategy, req);
    if (!result.ok()) return result.status();
    SearchReport report;
    report.result = std::move(result).value();
    last_cache_hits_ = report.result.eval_cache_hits;
    last_cache_misses_ = report.result.eval_cache_misses;
    report.visualization =
        hgnas::visualize(report.result.best_arch, deploy_workload_);
    return report;
  } catch (const std::exception& e) {
    return Status::Internal(std::string("search failed: ") + e.what());
  }
}

Result<LatencyReport> Engine::predict_latency(const Arch& arch) {
  if (const Status s = validate_arch(arch); !s.ok()) return s;
  try {
    const hgnas::LatencyEval eval = evaluator_.fn(arch);
    return LatencyReport{eval.latency_ms, eval.peak_memory_mb, eval.oom};
  } catch (const std::exception& e) {
    return Status::Internal(std::string("latency evaluation failed: ") +
                            e.what());
  }
}

Result<TrainReport> Engine::train(const Arch& arch) {
  if (const Status s = validate_arch(arch); !s.ok()) return s;
  try {
    hgnas::GnnModel model(arch, train_workload_, *rng_);
    hgnas::TrainConfig tcfg;
    tcfg.epochs = cfg_.train_epochs;
    tcfg.lr = cfg_.train_lr;
    const hgnas::EvalResult eval =
        hgnas::train_model(model, *data_, tcfg, *rng_);
    return TrainReport{eval.overall_acc, eval.balanced_acc, eval.mean_loss,
                       model.param_mb()};
  } catch (const std::exception& e) {
    return Status::Internal(std::string("training failed: ") + e.what());
  }
}

Result<ProfileReport> Engine::profile(const Arch& arch) const {
  if (const Status s = validate_arch(arch); !s.ok()) return s;
  try {
    const hw::Trace trace = hgnas::lower_to_trace(arch, deploy_workload_);
    ProfileReport report;
    report.latency_ms = device_->latency_ms(trace);
    report.peak_memory_mb = device_->peak_memory_mb(trace);
    report.energy_mj = device_->energy_mj(trace);
    report.param_mb = hgnas::arch_param_mb(arch, deploy_workload_);
    report.oom = device_->would_oom(trace);
    report.breakdown = hw::breakdown_summary(*device_, trace);
    report.per_op_table = hw::profile_report(*device_, trace);
    report.reference_latency_ms = reference_ms_;
    report.reference_memory_mb = reference_mb_;
    report.speedup_vs_reference =
        report.latency_ms > 0.0 ? reference_ms_ / report.latency_ms : 0.0;
    report.search_cache_hits = last_cache_hits_;
    report.search_cache_misses = last_cache_misses_;
    return report;
  } catch (const std::exception& e) {
    return Status::Internal(std::string("profiling failed: ") + e.what());
  }
}

Result<std::string> Engine::export_arch(const Arch& arch) const {
  if (const Status s = validate_arch(arch); !s.ok()) return s;
  return hgnas::arch_to_text(arch);
}

Result<Arch> Engine::import_arch(const std::string& text) const {
  try {
    Arch arch = hgnas::arch_from_text(text);
    if (const Status s = validate_arch(arch); !s.ok()) return s;
    return arch;
  } catch (const std::exception& e) {
    return Status::InvalidArgument(e.what());
  }
}

Status Engine::save_arch(const std::string& path, const Arch& arch) const {
  if (const Status s = validate_arch(arch); !s.ok()) return s;
  try {
    hgnas::save_arch(path, arch);
    return Status::Ok();
  } catch (const std::exception& e) {
    return Status::InvalidArgument(e.what());
  }
}

Result<Arch> Engine::load_arch(const std::string& path) const {
  try {
    Arch arch = hgnas::load_arch(path);
    if (const Status s = validate_arch(arch); !s.ok()) return s;
    return arch;
  } catch (const std::exception& e) {
    return Status::InvalidArgument(e.what());
  }
}

std::string Engine::visualize(const Arch& arch) const {
  return hgnas::visualize(arch, deploy_workload_);
}

ArchGraphInfo Engine::arch_graph_info(const Arch& arch) const {
  const predictor::ArchGraph g =
      predictor::arch_to_graph(arch, deploy_workload_);
  return ArchGraphInfo{g.edges.num_nodes, g.edges.num_edges(),
                       predictor::kFeatureDim};
}

Result<PredictorReport> Engine::evaluate_predictor(std::int64_t test_count,
                                                   std::uint64_t seed) {
  if (!evaluator_.predictor)
    return Status::FailedPrecondition(
        "engine was created with evaluator '" + cfg_.evaluator +
        "'; predictor metrics need evaluator \"predictor\"");
  if (test_count <= 0)
    return Status::InvalidArgument("test_count must be positive");
  const auto test = predictor::collect_labeled_archs(
      *device_, search_cfg_.space, deploy_workload_, test_count, seed);
  if (test.empty())
    return Status::Internal("no measurable test architectures collected");
  const predictor::PredictorMetrics m = evaluator_.predictor->evaluate(test);
  return PredictorReport{m.mape, m.within_10pct, m.rmse_ms,
                         evaluator_.predictor_train_mape};
}

Arch Engine::sample_arch() {
  return hgnas::random_arch(search_cfg_.space, *rng_);
}

}  // namespace hg::api
