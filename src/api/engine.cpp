#include "api/engine.hpp"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <stdexcept>
#include <utility>

#include "obs/trace.hpp"
#include "predictor/predictor.hpp"

namespace hg::api {

namespace {

/// Process-wide verb counters. Instrument references from the global
/// registry are stable for the process lifetime, so each verb pays the
/// name lookup once and a relaxed atomic increment per call after that.
obs::Counter& engine_counter(const char* name) {
  return obs::Registry::global().counter(name);
}

std::string join(const std::vector<std::string>& names) {
  std::string out;
  for (const auto& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

/// Structural validity of a user-supplied architecture (imported files and
/// hand-built genes enter the facade here; enum values outside their range
/// would index out of bounds further down).
Status validate_arch(const Arch& arch) {
  if (arch.genes.empty())
    return Status::InvalidArgument("architecture has no positions");
  for (std::size_t i = 0; i < arch.genes.size(); ++i) {
    const hgnas::PositionGene& g = arch.genes[i];
    const auto pos = std::to_string(i);
    const auto op = static_cast<std::int64_t>(g.op);
    if (op < 0 || op >= hgnas::kNumOpTypes)
      return Status::InvalidArgument("position " + pos +
                                     ": operation type out of range");
    const auto connect = static_cast<std::int64_t>(g.fn.connect);
    if (connect < 0 || connect >= hgnas::kNumConnectFuncs)
      return Status::InvalidArgument("position " + pos +
                                     ": connect function out of range");
    const auto aggr = static_cast<std::int64_t>(g.fn.aggr);
    if (aggr < 0 || aggr >= hgnas::kNumAggrTypes)
      return Status::InvalidArgument("position " + pos +
                                     ": aggregator out of range");
    const auto msg = static_cast<std::int64_t>(g.fn.msg);
    if (msg < 0 || msg >= gnn::kNumMessageTypes)
      return Status::InvalidArgument("position " + pos +
                                     ": message type out of range");
    const auto sample = static_cast<std::int64_t>(g.fn.sample);
    if (sample < 0 || sample >= hgnas::kNumSampleFuncs)
      return Status::InvalidArgument("position " + pos +
                                     ": sample function out of range");
    if (g.fn.combine_dim_idx < 0 ||
        g.fn.combine_dim_idx >= hgnas::kNumCombineDims)
      return Status::InvalidArgument("position " + pos +
                                     ": combine dimension index out of range");
  }
  return Status::Ok();
}

}  // namespace

Result<Engine> Engine::create(const EngineConfig& cfg) {
  Result<std::shared_ptr<EvalContext>> ctx = EvalContext::create(cfg);
  if (!ctx.ok()) return ctx.status();
  return create(cfg, std::move(ctx).value());
}

Result<Engine> Engine::create(const EngineConfig& cfg,
                              std::shared_ptr<EvalContext> ctx) {
  if (const Status s = validate(cfg); !s.ok()) return s;
  if (ctx == nullptr)
    return Status::InvalidArgument("EvalContext is null");
  if (const Status s = context_compatible(ctx->config(), cfg); !s.ok())
    return s;

  Registry& reg = Registry::global();
  if (!reg.has_strategy(cfg.strategy))
    return Status::NotFound("unknown strategy '" + cfg.strategy +
                            "' (known: " + join(reg.strategy_names()) + ")");

  Engine engine;
  engine.cfg_ = cfg;
  engine.ctx_ = std::move(ctx);

  Result<EvaluatorBundle> evaluator = engine.ctx_->evaluator(cfg.evaluator);
  if (!evaluator.ok()) return evaluator.status();
  engine.evaluator_ = std::move(evaluator).value();

  hgnas::SearchConfig& scfg = engine.search_cfg_;
  scfg.space.num_positions = cfg.num_positions;
  scfg.workload = engine.ctx_->deploy_workload();
  scfg.population = cfg.population;
  scfg.parents = cfg.parents;
  scfg.iterations = cfg.iterations;
  scfg.alpha = cfg.alpha;
  scfg.beta = cfg.beta;
  scfg.latency_constraint_ms = cfg.latency_budget_ms;
  if (!scfg.latency_constraint_ms && cfg.constrain_to_reference)
    scfg.latency_constraint_ms = engine.ctx_->reference_latency_ms();
  scfg.memory_constraint_mb = cfg.memory_budget_mb;
  scfg.size_constraint_mb = cfg.model_size_budget_mb;
  scfg.latency_scale_ms =
      cfg.latency_scale_ms.value_or(engine.ctx_->reference_latency_ms());
  scfg.eval_val_samples = cfg.eval_val_samples;
  scfg.function_paths_per_eval = cfg.function_paths_per_eval;
  scfg.stage1_epochs = cfg.stage1_epochs;
  scfg.stage2_epochs = cfg.stage2_epochs;
  scfg.train_supernet = cfg.train_supernet;
  scfg.sim_train_s_per_sample = cfg.sim_train_s_per_sample;
  scfg.sim_eval_s_per_sample = cfg.sim_eval_s_per_sample;
  // Scopes the shared memo cache: scores from a different evaluator (or a
  // different master seed's measurement stream) never get served here.
  scfg.evaluator_tag = cfg.evaluator + "@" + cfg.device + "#" +
                       std::to_string(cfg.seed);

  return engine;
}

Result<SearchReport> Engine::search() {
  static obs::Counter& searches = engine_counter("engine.searches");
  searches.inc();
  StrategyRequest req;
  req.supernet = &ctx_->supernet();
  req.data = &ctx_->data();
  req.cfg = search_cfg_;
  req.latency = evaluator_.fn;
  req.rng = &ctx_->rng();
  req.eval_cache = &ctx_->eval_cache();
  try {
    Result<hgnas::SearchResult> result =
        Registry::global().run_strategy(cfg_.strategy, req);
    if (!result.ok()) return result.status();
    SearchReport report;
    report.result = std::move(result).value();
    last_cache_hits_ = report.result.eval_cache_hits;
    last_cache_misses_ = report.result.eval_cache_misses;
    report.visualization =
        hgnas::visualize(report.result.best_arch, deploy_workload());
    for (const ParetoPoint& p : report.result.frontier) {
      char line[64];
      std::snprintf(line, sizeof(line), "%12.1f %10.3f\n", p.latency_ms,
                    p.accuracy);
      report.frontier_table += line;
    }
    return report;
  } catch (const std::exception& e) {
    return Status::Internal(std::string("search failed: ") + e.what());
  }
}

Result<std::unique_ptr<SearchRun>> Engine::begin_search() {
  // Counts as a search like the monolithic verb: serve::Service picks one
  // form or the other depending on slicing, and engine.searches should
  // not depend on which.
  static obs::Counter& searches = engine_counter("engine.searches");
  searches.inc();
  StrategyRequest req;
  req.supernet = &ctx_->supernet();
  req.data = &ctx_->data();
  req.cfg = search_cfg_;
  req.latency = evaluator_.fn;
  req.rng = &ctx_->rng();
  req.eval_cache = &ctx_->eval_cache();

  std::unique_ptr<SearchRun> run(new SearchRun());
  run->ctx_ = ctx_;
  run->deploy_workload_ = deploy_workload();

  Registry& reg = Registry::global();
  if (reg.has_strategy_stepper(cfg_.strategy)) {
    try {
      Result<std::unique_ptr<hgnas::SearchStepper>> stepper =
          reg.make_strategy_stepper(cfg_.strategy, req);
      if (!stepper.ok()) return stepper.status();
      run->stepper_ = std::move(stepper).value();
    } catch (const std::exception& e) {
      return Status::Internal(std::string("search failed: ") + e.what());
    }
  } else {
    // Third-party strategy registered without a stepwise form: the whole
    // run becomes one (non-preemptible) step.
    const std::string strategy = cfg_.strategy;
    run->monolithic_ = [strategy, req] {
      return Registry::global().run_strategy(strategy, req);
    };
  }
  return run;
}

bool SearchRun::step() {
  if (finished_) return false;
  try {
    if (stepper_ != nullptr) {
      if (stepper_->step()) return true;
      result_ = stepper_->take_result();
    } else {
      Result<hgnas::SearchResult> r = monolithic_();
      if (r.ok())
        result_ = std::move(r).value();
      else
        error_ = r.status();
      fallback_progress_.phase = hgnas::SearchProgress::Phase::kDone;
      fallback_progress_.steps = 1;
      fallback_progress_.sim_time_s = result_.total_sim_time_s;
      fallback_progress_.best_objective = result_.best_objective;
      fallback_progress_.has_best = r.ok();
    }
  } catch (const std::exception& e) {
    error_ = Status::Internal(std::string("search failed: ") + e.what());
  }
  finished_ = true;
  return false;
}

Result<SearchReport> SearchRun::take_report() {
  if (!finished_)
    return Status::FailedPrecondition(
        "search still in flight; drive step() to completion first");
  if (!error_.ok()) return error_;
  try {
    SearchReport report;
    report.result = std::move(result_);
    report.visualization =
        hgnas::visualize(report.result.best_arch, deploy_workload_);
    for (const ParetoPoint& p : report.result.frontier) {
      char line[64];
      std::snprintf(line, sizeof(line), "%12.1f %10.3f\n", p.latency_ms,
                    p.accuracy);
      report.frontier_table += line;
    }
    return report;
  } catch (const std::exception& e) {
    return Status::Internal(std::string("search failed: ") + e.what());
  }
}

Result<LatencyReport> Engine::predict_latency(const Arch& arch) {
  if (const Status s = validate_arch(arch); !s.ok()) return s;
  try {
    const hgnas::LatencyEval eval = evaluator_.fn(arch);
    return LatencyReport{eval.latency_ms, eval.peak_memory_mb, eval.oom};
  } catch (const std::exception& e) {
    return Status::Internal(std::string("latency evaluation failed: ") +
                            e.what());
  }
}

Result<std::vector<LatencyReport>> Engine::predict_batch(
    std::span<const Arch> archs) {
  static obs::Counter& batches = engine_counter("engine.predict_batches");
  static obs::Counter& archs_counter =
      engine_counter("engine.predicted_archs");
  batches.inc();
  archs_counter.inc(static_cast<std::int64_t>(archs.size()));
  for (const Arch& arch : archs)
    if (const Status s = validate_arch(arch); !s.ok()) return s;
  try {
    std::vector<LatencyReport> reports;
    reports.reserve(archs.size());
    if (evaluator_.predictor != nullptr) {
      const std::vector<double> ms =
          evaluator_.predictor->predict_batch_ms(archs);
      for (const double m : ms) reports.push_back(LatencyReport{m, 0.0, false});
    } else {
      for (const Arch& arch : archs) {
        const hgnas::LatencyEval eval = evaluator_.fn(arch);
        reports.push_back(
            LatencyReport{eval.latency_ms, eval.peak_memory_mb, eval.oom});
      }
    }
    return reports;
  } catch (const std::exception& e) {
    return Status::Internal(std::string("batched latency evaluation failed: ") +
                            e.what());
  }
}

Result<TrainReport> Engine::train(const Arch& arch) {
  if (const Status s = validate_arch(arch); !s.ok()) return s;
  try {
    hgnas::GnnModel model(arch, train_workload(), ctx_->rng());
    hgnas::TrainConfig tcfg;
    tcfg.epochs = cfg_.train_epochs;
    tcfg.lr = cfg_.train_lr;
    const hgnas::EvalResult eval =
        hgnas::train_model(model, ctx_->data(), tcfg, ctx_->rng());
    return TrainReport{eval.overall_acc, eval.balanced_acc, eval.mean_loss,
                       model.param_mb()};
  } catch (const std::exception& e) {
    return Status::Internal(std::string("training failed: ") + e.what());
  }
}

ProfileReport Engine::profile_trace(const hw::Trace& trace,
                                    const Workload& reference_workload) const {
  const hw::Device& dev = ctx_->device();
  ProfileReport report;
  report.latency_ms = dev.latency_ms(trace);
  report.peak_memory_mb = dev.peak_memory_mb(trace);
  report.energy_mj = dev.energy_mj(trace);
  report.param_mb = trace.param_mb;
  report.oom = dev.would_oom(trace);
  report.breakdown = hw::breakdown_summary(dev, trace);
  report.per_op_table = hw::profile_report(dev, trace);
  report.category_fraction = dev.breakdown(trace).fraction;
  const hw::Trace reference = hw::dgcnn_reference_trace(
      reference_workload.num_points, reference_workload.k,
      reference_workload.num_classes);
  report.reference_latency_ms = dev.latency_ms(reference);
  report.reference_memory_mb = dev.peak_memory_mb(reference);
  report.speedup_vs_reference =
      report.latency_ms > 0.0
          ? report.reference_latency_ms / report.latency_ms
          : 0.0;
  report.search_cache_hits = last_cache_hits_;
  report.search_cache_misses = last_cache_misses_;
  return report;
}

Result<ProfileReport> Engine::profile(const Arch& arch) const {
  if (const Status s = validate_arch(arch); !s.ok()) return s;
  try {
    const Workload& w = deploy_workload();
    hw::Trace trace = hgnas::lower_to_trace(arch, w);
    trace.param_mb = hgnas::arch_param_mb(arch, w);
    return profile_trace(trace, w);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("profiling failed: ") + e.what());
  }
}

Result<ProfileReport> Engine::profile_baseline(const std::string& name) const {
  return profile_baseline(name, deploy_workload());
}

Result<ProfileReport> Engine::profile_baseline(const std::string& name,
                                               const Workload& w) const {
  if (w.num_points <= 1 || w.k <= 0 || w.k >= w.num_points ||
      w.num_classes <= 0)
    return Status::InvalidArgument(
        "profile_baseline: workload needs num_points > 1, "
        "k in [1, num_points), num_classes > 0");
  Result<std::unique_ptr<Lowerable>> baseline =
      Registry::global().make_baseline(name);
  if (!baseline.ok()) return baseline.status();
  try {
    return profile_trace(baseline.value()->lower(w), w);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("baseline profiling failed: ") +
                            e.what());
  }
}

Result<TrainReport> Engine::train_baseline(const std::string& name) {
  static obs::Counter& trains = engine_counter("engine.train_baselines");
  trains.inc();
  Result<std::unique_ptr<Lowerable>> baseline =
      Registry::global().make_baseline(name);
  if (!baseline.ok()) return baseline.status();
  try {
    const BaselineTrainResult r = baseline.value()->train(
        ctx_->data(), train_workload(), cfg_.train_epochs, cfg_.train_lr,
        ctx_->rng());
    return TrainReport{r.overall_acc, r.balanced_acc, 0.0, r.param_mb};
  } catch (const std::exception& e) {
    return Status::Internal(std::string("baseline training failed: ") +
                            e.what());
  }
}

Result<std::unique_ptr<TrainBaselineRun>> Engine::begin_train_baseline(
    const std::string& name) {
  Result<std::unique_ptr<Lowerable>> baseline =
      Registry::global().make_baseline(name);
  if (!baseline.ok()) return baseline.status();
  std::unique_ptr<TrainBaselineRun> run(new TrainBaselineRun());
  run->ctx_ = ctx_;
  run->baseline_ = std::move(baseline).value();
  try {
    // The model is materialised here, consuming the context RNG exactly as
    // train_baseline() would before its first epoch.
    run->stepper_ = run->baseline_->train_stepper(
        ctx_->data(), train_workload(), cfg_.train_epochs, cfg_.train_lr,
        ctx_->rng());
  } catch (const std::exception& e) {
    return Status::Internal(std::string("baseline training failed: ") +
                            e.what());
  }
  return run;
}

bool TrainBaselineRun::step() {
  if (finished_) return false;
  try {
    HG_TRACE_SCOPE("train.epoch", "train");
    if (stepper_->step()) return true;
    const BaselineTrainResult r = stepper_->result();
    report_ = TrainReport{r.overall_acc, r.balanced_acc, 0.0, r.param_mb};
  } catch (const std::exception& e) {
    error_ = Status::Internal(std::string("baseline training failed: ") +
                              e.what());
  }
  finished_ = true;
  return false;
}

Result<TrainReport> TrainBaselineRun::take_report() {
  if (!finished_)
    return Status::FailedPrecondition(
        "baseline training still in flight; drive step() to completion "
        "first");
  if (!error_.ok()) return error_;
  return report_;
}

obs::Snapshot Engine::metrics() { return obs::Registry::global().snapshot(); }

Result<std::string> Engine::export_arch(const Arch& arch) const {
  if (const Status s = validate_arch(arch); !s.ok()) return s;
  return hgnas::arch_to_text(arch);
}

Result<Arch> Engine::import_arch(const std::string& text) const {
  try {
    Arch arch = hgnas::arch_from_text(text);
    if (const Status s = validate_arch(arch); !s.ok()) return s;
    return arch;
  } catch (const std::exception& e) {
    return Status::InvalidArgument(e.what());
  }
}

Status Engine::save_arch(const std::string& path, const Arch& arch) const {
  if (const Status s = validate_arch(arch); !s.ok()) return s;
  try {
    hgnas::save_arch(path, arch);
    return Status::Ok();
  } catch (const std::exception& e) {
    return Status::InvalidArgument(e.what());
  }
}

Result<Arch> Engine::load_arch(const std::string& path) const {
  try {
    Arch arch = hgnas::load_arch(path);
    if (const Status s = validate_arch(arch); !s.ok()) return s;
    return arch;
  } catch (const std::exception& e) {
    return Status::InvalidArgument(e.what());
  }
}

std::string Engine::visualize(const Arch& arch) const {
  return hgnas::visualize(arch, deploy_workload());
}

ArchGraphInfo Engine::arch_graph_info(const Arch& arch) const {
  const predictor::ArchGraph g =
      predictor::arch_to_graph(arch, deploy_workload());
  return ArchGraphInfo{g.edges.num_nodes, g.edges.num_edges(),
                       predictor::kFeatureDim};
}

Result<PredictorReport> Engine::evaluate_predictor(std::int64_t test_count,
                                                   std::uint64_t seed) {
  if (!evaluator_.predictor)
    return Status::FailedPrecondition(
        "engine was created with evaluator '" + cfg_.evaluator +
        "'; predictor metrics need evaluator \"predictor\"");
  if (test_count <= 0)
    return Status::InvalidArgument("test_count must be positive");
  const auto test = predictor::collect_labeled_archs(
      ctx_->device(), search_cfg_.space, deploy_workload(), test_count, seed);
  if (test.empty())
    return Status::Internal("no measurable test architectures collected");
  const predictor::PredictorMetrics m = evaluator_.predictor->evaluate(test);
  PredictorReport report{m.mape, m.within_10pct, m.rmse_ms,
                         evaluator_.predictor_train_mape,
                         {}, {}};
  const std::size_t sample = std::min<std::size_t>(8, test.size());
  for (std::size_t i = 0; i < sample; ++i) {
    report.sample_measured_ms.push_back(test[i].latency_ms);
    report.sample_predicted_ms.push_back(
        evaluator_.predictor->predict_ms(test[i].arch));
  }
  return report;
}

Arch Engine::sample_arch() {
  return hgnas::random_arch(search_cfg_.space, ctx_->rng());
}

}  // namespace hg::api
