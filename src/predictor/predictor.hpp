// predictor.hpp — GNN-based hardware performance predictor (paper §III-D).
//
// "Use GNN to perceive GNNs": a candidate architecture is abstracted into a
// directed graph (operation nodes + input/output nodes + a global node that
// encodes input-data properties and improves connectivity), node features
// are one-hot encodings of operation type and function, and a small GCN +
// MLP regresses the inference latency on a target device.
//
// Faithfulness notes:
//  * The predictor is trained purely on (architecture, measured latency)
//    pairs where "measured" = hw::Device::measure — the noisy simulated
//    measurement, never the analytical formula. This mirrors the paper's
//    setup of labels collected on physical devices (30K architectures).
//  * Node features follow the paper's layout: operation-type one-hot
//    (7-dim: input/output/global/connect/aggregate/combine/sample) and
//    function one-hot (9-dim: skip, identity, knn, random, sum, min, max,
//    mean, none), plus — since the paper trains on a fixed 1024-point
//    workload but leaves the exact global encoding open — a 7-dim message
//    -type one-hot, per-node channel scalars, and a 16-dim global-node
//    block holding graph/data properties (point count, k, density, ...).
//  * One predictor instance per target device (the paper likewise trains
//    per-platform labels; the "target device" input selects the instance).
//  * Loss: MAPE, as in the paper. Predictions are scaled by the training
//    -set mean so one set of hyper-parameters serves devices whose latency
//    ranges differ by 100x.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "gnn/gnn.hpp"
#include "hgnas/arch.hpp"
#include "hgnas/search.hpp"
#include "hw/device.hpp"
#include "nn/nn.hpp"

namespace hg::predictor {

/// Architecture-graph abstraction fed to the GCN.
struct ArchGraph {
  graph::EdgeList edges;  // includes reverse edges and the global node star
  Tensor features;        // [num_nodes, kFeatureDim]
};

// Feature layout (see header comment).
constexpr std::int64_t kNodeTypeDim = 7;
constexpr std::int64_t kFunctionDim = 9;
constexpr std::int64_t kMessageDim = 7;
constexpr std::int64_t kChannelDim = 2;  // log2(in_ch)/8, log2(out_ch)/8
// Execution marks: sample-actually-runs, aggregate-pays-implicit-KNN —
// merged or dead samples are free at run time (Fig. 10), and the predictor
// needs to see that to rank candidates correctly.
constexpr std::int64_t kExecDim = 2;
constexpr std::int64_t kGlobalDim = 16;
constexpr std::int64_t kFeatureDim = kNodeTypeDim + kFunctionDim +
                                     kMessageDim + kChannelDim + kExecDim +
                                     kGlobalDim;

/// Abstract an architecture (+ its workload) into the predictor's input
/// graph: chain of position nodes between input and output nodes, skip
/// edges for skip-connects, a fully-connected global node carrying the
/// 16-dim data-property encoding, and reverse edges for message flow.
///
/// `device_slot` (the paper's "information on the target device" input):
/// when in [0, 4), a one-hot device id is written into the global node so
/// one predictor can serve several platforms; -1 leaves it blank for the
/// per-device-instance setup.
ArchGraph arch_to_graph(const hgnas::Arch& arch, const hgnas::Workload& w,
                        int device_slot = -1);

struct PredictorConfig {
  // Paper dimensions: gcn {256, 512, 512}, mlp {256, 128, 1}. Defaults are
  // scaled for single-core CPU training; tests cover both.
  std::vector<std::int64_t> gcn_dims = {64, 128, 128};
  std::vector<std::int64_t> mlp_dims = {64, 32, 1};
  float lr = 2e-3f;  // stable for the softplus-sum head; 5e-3 diverges
  std::int64_t epochs = 60;
  std::int64_t batch_size = 16;
  float leaky_slope = 0.01f;
  /// Parametrise the output as scale * exp(z) instead of a raw scalar.
  /// The loss stays MAPE (as in the paper); the exponential head just makes
  /// relative errors symmetric when candidate latencies span orders of
  /// magnitude, which this repo's random-architecture space does.
  bool log_space_output = true;
  /// Device one-hot written into the global node (-1: single-device
  /// predictor). Enables one shared predictor across platforms.
  int device_slot = -1;
};

/// One labelled example.
struct LabeledArch {
  hgnas::Arch arch;
  double latency_ms = 0.0;
};

struct PredictorMetrics {
  double mape = 0.0;              // mean absolute percentage error
  double within_10pct = 0.0;      // fraction inside a 10% error bound
  double rmse_ms = 0.0;
};

/// GCN + MLP latency regressor for one target device.
class LatencyPredictor final : public nn::Module {
 public:
  LatencyPredictor(const PredictorConfig& cfg, const hgnas::Workload& w,
                   Rng& rng);

  /// Predicted latency (ms) for an architecture. Never negative. Runs
  /// through predict_batch_ms at batch size 1.
  double predict_ms(const hgnas::Arch& arch);

  /// Predicted latencies for N architectures through ONE packed GCN
  /// forward: the N architecture graphs are stacked block-diagonally
  /// (node ids offset, features concatenated) so every GCN layer runs a
  /// single adjacency pass, and the readout segment-reduces per graph.
  /// All GCN/MLP arithmetic is per-node/per-edge/per-row local, so each
  /// element is bit-for-bit identical to a lone predict_ms of that
  /// architecture — batching changes wall clock, never answers. Safe to
  /// call concurrently (forward passes only read the trained weights).
  std::vector<double> predict_batch_ms(std::span<const hgnas::Arch> archs);

  /// Train on labelled architectures (MAPE loss, Adam). Returns final
  /// training-set MAPE.
  double fit(const std::vector<LabeledArch>& train, Rng& rng);

  PredictorMetrics evaluate(const std::vector<LabeledArch>& test);

  std::vector<Tensor> parameters() const override;

  const hgnas::Workload& workload() const { return workload_; }

 private:
  Tensor forward(const ArchGraph& g);

  PredictorConfig cfg_;
  hgnas::Workload workload_;
  std::vector<std::unique_ptr<gnn::GcnLayer>> gcn_;
  std::unique_ptr<nn::Mlp> mlp_;
  double scale_ms_ = 1.0;  // training-set mean latency
};

/// Sample `count` random architectures and label them with simulated
/// measurements on `device` (the paper's 30K-sample collection step).
/// Architectures that OOM are skipped (no valid latency label).
std::vector<LabeledArch> collect_labeled_archs(
    const hw::Device& device, const hgnas::SpaceConfig& space,
    const hgnas::Workload& w, std::int64_t count, std::uint64_t seed);

/// One device's slice of a multi-device collection run.
struct CollectSpec {
  const hw::Device* device = nullptr;
  std::int64_t count = 0;
  std::uint64_t seed = 0;
};

/// Label architectures for M devices through ONE pooled measurement queue:
/// per-device draws stay serial (each device owns an RNG seeded from its
/// spec), but the expensive lowering + simulated measurements of every
/// device fan out across the shared execution pool together, so fitting
/// predictors for a fleet shares one queue instead of M sequential
/// collection passes. Result i is identical — arch for arch, label for
/// label — to collect_labeled_archs(*specs[i].device, ..., specs[i].seed).
std::vector<std::vector<LabeledArch>> collect_labeled_archs_multi(
    std::span<const CollectSpec> specs, const hgnas::SpaceConfig& space,
    const hgnas::Workload& w);

/// Wrap a trained predictor as a search-side latency evaluator. Each query
/// costs `query_cost_s` of simulated wall clock (milliseconds, §III-D).
hgnas::LatencyFn make_predictor_evaluator(
    std::shared_ptr<LatencyPredictor> predictor, double query_cost_s = 0.005);

}  // namespace hg::predictor
