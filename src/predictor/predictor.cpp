#include "predictor/predictor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/parallel.hpp"
#include "pointcloud/pointcloud.hpp"
#include "tensor/optim.hpp"

namespace hg::predictor {

namespace {

void check(bool cond, const std::string& msg) {
  if (!cond) throw std::invalid_argument("predictor: " + msg);
}

// Node-type slots of the 7-dim one-hot.
enum NodeType : std::int64_t {
  kInput = 0,
  kOutput,
  kGlobal,
  kConnect,
  kAggregate,
  kCombine,
  kSample,
};

// Function slots of the 9-dim one-hot.
enum FunctionSlot : std::int64_t {
  kFnSkip = 0,
  kFnIdentity,
  kFnKnn,
  kFnRandom,
  kFnSum,
  kFnMin,
  kFnMax,
  kFnMean,
  kFnNone,
};

std::int64_t function_slot(const hgnas::PositionGene& g) {
  switch (g.op) {
    case hgnas::OpType::Connect:
      return g.fn.connect == hgnas::ConnectFunc::SkipConnect ? kFnSkip
                                                             : kFnIdentity;
    case hgnas::OpType::Sample:
      return g.fn.sample == hgnas::SampleFunc::Knn ? kFnKnn : kFnRandom;
    case hgnas::OpType::Aggregate:
      switch (g.fn.aggr) {
        case hgnas::AggrType::Sum: return kFnSum;
        case hgnas::AggrType::Min: return kFnMin;
        case hgnas::AggrType::Max: return kFnMax;
        case hgnas::AggrType::Mean: return kFnMean;
      }
      return kFnNone;
    case hgnas::OpType::Combine:
      return kFnNone;  // the dimension is carried by the channel scalars
  }
  return kFnNone;
}

std::int64_t node_type_of(const hgnas::PositionGene& g) {
  switch (g.op) {
    case hgnas::OpType::Connect: return kConnect;
    case hgnas::OpType::Aggregate: return kAggregate;
    case hgnas::OpType::Combine: return kCombine;
    case hgnas::OpType::Sample: return kSample;
  }
  return kConnect;
}

float log_channel(std::int64_t c) {
  return std::log2(static_cast<float>(std::max<std::int64_t>(c, 1))) / 8.f;
}

}  // namespace

ArchGraph arch_to_graph(const hgnas::Arch& arch, const hgnas::Workload& w,
                        int device_slot) {
  check(!arch.genes.empty(), "arch_to_graph: empty architecture");
  check(device_slot >= -1 && device_slot < hw::kNumDevices,
        "arch_to_graph: device_slot out of range");
  const std::int64_t P = arch.num_positions();
  // Node ids: 0 input, 1..P positions, P+1 output, P+2 global.
  const std::int64_t n_nodes = P + 3;
  const std::int64_t out_node = P + 1;
  const std::int64_t global_node = P + 2;

  graph::EdgeList e;
  e.num_nodes = n_nodes;
  auto bi_edge = [&e](std::int64_t a, std::int64_t b) {
    e.add_edge(a, b);
    e.add_edge(b, a);
  };
  // Dataflow chain (plus reverse edges so GCN messages flow both ways).
  for (std::int64_t i = 0; i <= P; ++i) bi_edge(i, i + 1);
  // Skip-connect edges: from the previous Connect checkpoint (or input).
  std::int64_t checkpoint = 0;
  for (std::int64_t i = 0; i < P; ++i) {
    const auto& g = arch.genes[static_cast<std::size_t>(i)];
    if (g.op == hgnas::OpType::Connect) {
      if (g.fn.connect == hgnas::ConnectFunc::SkipConnect &&
          checkpoint != i)  // the chain edge already exists for i-1 -> i
        bi_edge(checkpoint, i + 1);
      checkpoint = i + 1;
    }
  }
  // Global node star (improves connectivity; carries data properties).
  for (std::int64_t i = 0; i < global_node; ++i) bi_edge(i, global_node);

  // ---- features -------------------------------------------------------------
  const auto flow = channel_flow(arch, w);
  std::vector<float> feat(
      static_cast<std::size_t>(n_nodes * kFeatureDim), 0.f);
  auto at = [&feat](std::int64_t node, std::int64_t dim) -> float& {
    return feat[static_cast<std::size_t>(node * kFeatureDim + dim)];
  };
  const std::int64_t fn_off = kNodeTypeDim;
  const std::int64_t msg_off = fn_off + kFunctionDim;
  const std::int64_t ch_off = msg_off + kMessageDim;
  const std::int64_t exec_off = ch_off + kChannelDim;
  const std::int64_t glob_off = exec_off + kExecDim;
  const hgnas::ExecMarks marks = hgnas::compute_exec_marks(arch);

  at(0, kInput) = 1.f;
  at(0, ch_off + 1) = log_channel(w.in_dim);
  at(out_node, kOutput) = 1.f;
  at(out_node, ch_off) = log_channel(flow.back());

  for (std::int64_t i = 0; i < P; ++i) {
    const auto& g = arch.genes[static_cast<std::size_t>(i)];
    const std::int64_t node = i + 1;
    at(node, node_type_of(g)) = 1.f;
    at(node, fn_off + function_slot(g)) = 1.f;
    if (g.op == hgnas::OpType::Aggregate)
      at(node, msg_off + static_cast<std::int64_t>(g.fn.msg)) = 1.f;
    at(node, ch_off) = log_channel(flow[static_cast<std::size_t>(i)]);
    at(node, ch_off + 1) = log_channel(flow[static_cast<std::size_t>(i + 1)]);
    if (marks.sample_executes[static_cast<std::size_t>(i)])
      at(node, exec_off) = 1.f;
    if (marks.implicit_initial_knn[static_cast<std::size_t>(i)])
      at(node, exec_off + 1) = 1.f;
  }

  // Global node: 16-dim data-property encoding (paper: "number of nodes,
  // density, etc."). Unused slots stay zero for forward compatibility.
  at(global_node, kGlobal) = 1.f;
  const std::int64_t kk = std::min<std::int64_t>(w.k, w.num_points - 1);
  const double edges_d =
      static_cast<double>(w.num_points) * static_cast<double>(kk);
  at(global_node, glob_off + 0) =
      std::log2(static_cast<float>(w.num_points)) / 16.f;
  at(global_node, glob_off + 1) =
      std::log2(static_cast<float>(edges_d) + 1.f) / 24.f;
  at(global_node, glob_off + 2) = static_cast<float>(
      edges_d / (static_cast<double>(w.num_points) *
                 std::max<double>(1.0, static_cast<double>(w.num_points - 1))));
  at(global_node, glob_off + 3) = static_cast<float>(kk) / 64.f;
  at(global_node, glob_off + 4) = static_cast<float>(w.in_dim) / 8.f;
  at(global_node, glob_off + 5) = static_cast<float>(w.num_classes) / 64.f;
  at(global_node, glob_off + 6) =
      static_cast<float>(P) / 16.f;  // positions in the chain
  // Slots 8..11: target-device one-hot ("information on the target
  // device", §III-D) for the shared cross-device predictor.
  if (device_slot >= 0) at(global_node, glob_off + 8 + device_slot) = 1.f;

  ArchGraph ag;
  ag.edges = std::move(e);
  ag.features = Tensor::from_vector({n_nodes, kFeatureDim}, std::move(feat));
  return ag;
}

LatencyPredictor::LatencyPredictor(const PredictorConfig& cfg,
                                   const hgnas::Workload& w, Rng& rng)
    : cfg_(cfg), workload_(w) {
  check(!cfg_.gcn_dims.empty(), "need at least one GCN layer");
  check(cfg_.mlp_dims.size() >= 2 && cfg_.mlp_dims.back() == 1,
        "MLP must end in a single scalar output");
  std::int64_t d = kFeatureDim;
  for (auto h : cfg_.gcn_dims) {
    gcn_.push_back(std::make_unique<gnn::GcnLayer>(d, h, rng, Reduce::Sum));
    d = h;
  }
  std::vector<std::int64_t> mlp_dims = cfg_.mlp_dims;
  mlp_dims.insert(mlp_dims.begin(), d);
  mlp_ = std::make_unique<nn::Mlp>(
      mlp_dims, rng, nn::Activation::Relu,
      cfg_.log_space_output ? nn::Activation::None
                            : nn::Activation::LeakyRelu,
      /*batch_norm=*/false, cfg_.leaky_slope);
}

Tensor LatencyPredictor::forward(const ArchGraph& g) {
  Tensor h = g.features;
  for (auto& layer : gcn_) h = relu(layer->forward(h, g.edges));
  if (!cfg_.log_space_output) {
    Tensor pooled = gnn::global_mean_pool(h);  // [1, d]
    return mlp_->forward(pooled);              // [1, 1]
  }
  // Additive head: total latency is a sum of per-operation costs, so the
  // MLP scores every node and the readout sums positive per-node
  // contributions. softplus keeps contributions positive without the
  // gradient saturation a hard clamp would cause:
  //   softplus(z) = relu(z) + log(1 + exp(-|z|))   (numerically stable).
  Tensor z = mlp_->forward(h);  // [N, 1]
  Tensor contrib =
      add(relu(z), log_op(add(exp_op(neg(abs_op(z))), 1.f)));
  Tensor total = sum_all(contrib);
  return reshape(total, {1, 1});
}

double LatencyPredictor::predict_ms(const hgnas::Arch& arch) {
  return predict_batch_ms(std::span<const hgnas::Arch>(&arch, 1))[0];
}

std::vector<double> LatencyPredictor::predict_batch_ms(
    std::span<const hgnas::Arch> archs) {
  if (archs.empty()) return {};
  NoGradGuard ng;
  const auto n_graphs = static_cast<std::int64_t>(archs.size());

  // Pack the N architecture graphs block-diagonally: node ids offset per
  // graph, features stacked row-wise, and a node -> graph segment index for
  // the readout. No edge crosses a graph boundary, and every kernel below
  // (GCN normalisation, gather/scatter, row-wise linears) is local to a
  // node/edge/row, so the packed pass computes exactly what N separate
  // forwards would.
  std::vector<ArchGraph> graphs;
  graphs.reserve(archs.size());
  std::int64_t total_nodes = 0, total_edges = 0;
  for (const hgnas::Arch& arch : archs) {
    graphs.push_back(arch_to_graph(arch, workload_, cfg_.device_slot));
    total_nodes += graphs.back().edges.num_nodes;
    total_edges += graphs.back().edges.num_edges();
  }
  graph::EdgeList packed;
  packed.num_nodes = total_nodes;
  packed.src.reserve(static_cast<std::size_t>(total_edges));
  packed.dst.reserve(static_cast<std::size_t>(total_edges));
  std::vector<float> feat;
  feat.reserve(static_cast<std::size_t>(total_nodes * kFeatureDim));
  std::vector<std::int64_t> graph_of;
  graph_of.reserve(static_cast<std::size_t>(total_nodes));
  std::int64_t offset = 0;
  for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
    const ArchGraph& g = graphs[gi];
    for (std::size_t e = 0; e < g.edges.src.size(); ++e) {
      packed.add_edge(g.edges.src[e] + offset, g.edges.dst[e] + offset);
    }
    const auto gd = g.features.data();
    feat.insert(feat.end(), gd.begin(), gd.end());
    graph_of.insert(graph_of.end(),
                    static_cast<std::size_t>(g.edges.num_nodes),
                    static_cast<std::int64_t>(gi));
    offset += g.edges.num_nodes;
  }

  Tensor h = Tensor::from_vector({total_nodes, kFeatureDim}, std::move(feat));
  for (auto& layer : gcn_) h = relu(layer->forward(h, packed));
  Tensor out;  // [n_graphs, 1]
  if (cfg_.log_space_output) {
    // Additive head (see forward()): per-node softplus contributions,
    // segment-summed per graph in ascending node order — the same
    // accumulation sequence as a lone forward's sum_all.
    Tensor z = mlp_->forward(h);  // [total_nodes, 1]
    Tensor contrib = add(relu(z), log_op(add(exp_op(neg(abs_op(z))), 1.f)));
    out = scatter_reduce(contrib, graph_of, n_graphs, Reduce::Sum);
  } else {
    Tensor pooled = scatter_reduce(h, graph_of, n_graphs, Reduce::Mean);
    out = mlp_->forward(pooled);
  }

  std::vector<double> result(archs.size());
  for (std::int64_t i = 0; i < n_graphs; ++i) {
    result[static_cast<std::size_t>(i)] =
        std::max(0.0, static_cast<double>(out.at({i, 0})) * scale_ms_);
  }
  return result;
}

double LatencyPredictor::fit(const std::vector<LabeledArch>& train,
                             Rng& rng) {
  check(!train.empty(), "fit: empty training set");
  // Normalisation scale: arithmetic mean for the raw head, geometric mean
  // for the exponential head (centres z near zero).
  double acc = 0.0;
  for (const auto& s : train) {
    check(s.latency_ms > 0.0, "fit: non-positive latency label");
    acc += cfg_.log_space_output ? std::log(s.latency_ms) : s.latency_ms;
  }
  acc /= static_cast<double>(train.size());
  scale_ms_ = cfg_.log_space_output ? std::exp(acc) : acc;

  // Pre-build graphs once (they are label-independent).
  std::vector<ArchGraph> graphs;
  graphs.reserve(train.size());
  for (const auto& s : train)
    graphs.push_back(arch_to_graph(s.arch, workload_, cfg_.device_slot));

  Adam opt(parameters(), cfg_.lr);
  double last_epoch_mape = 0.0;
  for (std::int64_t epoch = 0; epoch < cfg_.epochs; ++epoch) {
    opt.set_lr(cosine_lr(cfg_.lr, cfg_.lr * 0.02f, epoch, cfg_.epochs));
    auto order = pointcloud::shuffled_indices(train.size(), rng);
    double mape_sum = 0.0;
    std::int64_t in_batch = 0;
    for (std::size_t oi = 0; oi < order.size(); ++oi) {
      const std::size_t i = order[oi];
      const float y =
          static_cast<float>(train[i].latency_ms / scale_ms_);
      Tensor pred = forward(graphs[i]);  // [1,1]
      // MAPE contribution: |pred - y| / y.
      Tensor err = div(abs_op(sub(pred, y)), y);
      Tensor loss = mean_all(err);
      loss.backward();
      mape_sum += loss.item();
      ++in_batch;
      if (in_batch == cfg_.batch_size || oi + 1 == order.size()) {
        opt.step();
        opt.zero_grad();
        in_batch = 0;
      }
    }
    last_epoch_mape = mape_sum / static_cast<double>(train.size());
  }
  return last_epoch_mape;
}

PredictorMetrics LatencyPredictor::evaluate(
    const std::vector<LabeledArch>& test) {
  check(!test.empty(), "evaluate: empty test set");
  PredictorMetrics m;
  double se = 0.0;
  std::int64_t within = 0;
  for (const auto& s : test) {
    const double pred = predict_ms(s.arch);
    const double rel = std::abs(pred - s.latency_ms) / s.latency_ms;
    m.mape += rel;
    if (rel <= 0.10) ++within;
    se += (pred - s.latency_ms) * (pred - s.latency_ms);
  }
  const auto n = static_cast<double>(test.size());
  m.mape /= n;
  m.within_10pct = static_cast<double>(within) / n;
  m.rmse_ms = std::sqrt(se / n);
  return m;
}

std::vector<Tensor> LatencyPredictor::parameters() const {
  std::vector<Tensor> out;
  for (const auto& l : gcn_)
    for (auto& p : l->parameters()) out.push_back(p);
  for (auto& p : mlp_->parameters()) out.push_back(p);
  return out;
}

std::vector<LabeledArch> collect_labeled_archs(const hw::Device& device,
                                               const hgnas::SpaceConfig& space,
                                               const hgnas::Workload& w,
                                               std::int64_t count,
                                               std::uint64_t seed) {
  check(count > 0, "collect_labeled_archs: count must be positive");
  Rng rng(seed);
  std::vector<LabeledArch> out;
  out.reserve(static_cast<std::size_t>(count));
  std::int64_t attempts = 0;
  const std::int64_t max_attempts = count * 20;

  if (core::num_threads() > 1) {
    // Batch path: this is the dominant cost of predictor-backed engine
    // startup (the paper's 30K-sample collection). Architectures and
    // per-measurement RNG seeds come serially off the main stream, the
    // lowering + simulated measurements fan out across the pool, and OOM
    // filtering replays serially in draw order — so the labelled set is
    // identical for every pool width > 1. One thread keeps the historical
    // interleaved-stream path bit for bit.
    while (static_cast<std::int64_t>(out.size()) < count &&
           attempts < max_attempts) {
      const std::int64_t n = std::min<std::int64_t>(
          count - static_cast<std::int64_t>(out.size()),
          max_attempts - attempts);
      struct Drawn {
        hgnas::Arch arch;
        std::uint64_t seed = 0;
        hw::Measurement meas;
      };
      std::vector<Drawn> batch(static_cast<std::size_t>(n));
      for (auto& d : batch) {
        d.arch = hgnas::random_arch(space, rng);
        d.seed = rng.next();
      }
      attempts += n;
      core::parallel_invoke(n, [&](std::int64_t i) {
        Drawn& d = batch[static_cast<std::size_t>(i)];
        Rng meas_rng(d.seed);
        d.meas = device.measure(lower_to_trace(d.arch, w), meas_rng);
      });
      for (auto& d : batch) {
        if (static_cast<std::int64_t>(out.size()) == count) break;
        if (d.meas.oom || d.meas.latency_ms <= 0.0) continue;
        out.push_back(LabeledArch{std::move(d.arch), d.meas.latency_ms});
      }
    }
  } else {
    while (static_cast<std::int64_t>(out.size()) < count &&
           attempts++ < max_attempts) {
      LabeledArch s;
      s.arch = hgnas::random_arch(space, rng);
      const hw::Trace trace = lower_to_trace(s.arch, w);
      const hw::Measurement meas = device.measure(trace, rng);
      if (meas.oom || meas.latency_ms <= 0.0) continue;  // no label for OOM
      s.latency_ms = meas.latency_ms;
      out.push_back(std::move(s));
    }
  }
  check(static_cast<std::int64_t>(out.size()) == count,
        "collect_labeled_archs: too many OOM architectures on " +
            device.name());
  return out;
}

std::vector<std::vector<LabeledArch>> collect_labeled_archs_multi(
    std::span<const CollectSpec> specs, const hgnas::SpaceConfig& space,
    const hgnas::Workload& w) {
  for (const CollectSpec& spec : specs) {
    check(spec.device != nullptr, "collect_labeled_archs_multi: null device");
    check(spec.count > 0, "collect_labeled_archs_multi: count must be positive");
  }
  const std::size_t n_dev = specs.size();
  std::vector<std::vector<LabeledArch>> out(n_dev);

  if (core::num_threads() <= 1) {
    // Serial path: device after device, bit for bit the single-device
    // collection (which itself takes the historical interleaved-stream
    // path at one thread).
    for (std::size_t d = 0; d < n_dev; ++d)
      out[d] = collect_labeled_archs(*specs[d].device, space, w,
                                     specs[d].count, specs[d].seed);
    return out;
  }

  // Pooled path: per-device draws replay the exact batch recurrence of the
  // single-device batch path (so each device's labelled set is identical to
  // a lone collection), but every device's lowering + measurements of a
  // round share one parallel_invoke — one queue for the whole fleet.
  struct DeviceState {
    Rng rng;
    std::int64_t attempts = 0;
    std::int64_t max_attempts = 0;
    explicit DeviceState(std::uint64_t seed) : rng(seed) {}
  };
  struct Drawn {
    std::size_t device_index = 0;
    hgnas::Arch arch;
    std::uint64_t seed = 0;
    hw::Measurement meas;
  };
  std::vector<DeviceState> states;
  states.reserve(n_dev);
  for (std::size_t d = 0; d < n_dev; ++d) {
    states.emplace_back(specs[d].seed);
    states[d].max_attempts = specs[d].count * 20;
    out[d].reserve(static_cast<std::size_t>(specs[d].count));
  }

  for (;;) {
    std::vector<Drawn> round;
    std::vector<std::size_t> round_begin(n_dev + 1, 0);
    for (std::size_t d = 0; d < n_dev; ++d) {
      round_begin[d] = round.size();
      DeviceState& st = states[d];
      const std::int64_t remaining =
          specs[d].count - static_cast<std::int64_t>(out[d].size());
      if (remaining <= 0 || st.attempts >= st.max_attempts) continue;
      const std::int64_t n =
          std::min<std::int64_t>(remaining, st.max_attempts - st.attempts);
      for (std::int64_t i = 0; i < n; ++i) {
        Drawn drawn;
        drawn.device_index = d;
        drawn.arch = hgnas::random_arch(space, st.rng);
        drawn.seed = st.rng.next();
        round.push_back(std::move(drawn));
      }
      st.attempts += n;
    }
    round_begin[n_dev] = round.size();
    if (round.empty()) break;

    core::parallel_invoke(
        static_cast<std::int64_t>(round.size()), [&](std::int64_t i) {
          Drawn& drawn = round[static_cast<std::size_t>(i)];
          Rng meas_rng(drawn.seed);
          drawn.meas = specs[drawn.device_index].device->measure(
              lower_to_trace(drawn.arch, w), meas_rng);
        });

    for (std::size_t d = 0; d < n_dev; ++d) {
      for (std::size_t i = round_begin[d]; i < round_begin[d + 1]; ++i) {
        Drawn& drawn = round[i];
        if (static_cast<std::int64_t>(out[d].size()) == specs[d].count) break;
        if (drawn.meas.oom || drawn.meas.latency_ms <= 0.0) continue;
        out[d].push_back(
            LabeledArch{std::move(drawn.arch), drawn.meas.latency_ms});
      }
    }
  }

  for (std::size_t d = 0; d < n_dev; ++d)
    check(static_cast<std::int64_t>(out[d].size()) == specs[d].count,
          "collect_labeled_archs: too many OOM architectures on " +
              specs[d].device->name());
  return out;
}

hgnas::LatencyFn make_predictor_evaluator(
    std::shared_ptr<LatencyPredictor> predictor, double query_cost_s) {
  check(predictor != nullptr, "make_predictor_evaluator: null predictor");
  return [predictor, query_cost_s](const hgnas::Arch& arch)
             -> hgnas::LatencyEval {
    return {predictor->predict_ms(arch), query_cost_s, false};
  };
}

}  // namespace hg::predictor
