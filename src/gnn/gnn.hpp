// gnn.hpp — graph-neural-network operators.
//
// Implements the decoupled message-passing (MP) paradigm the HGNAS design
// space is built from (paper §II, Fig. 2a): Sample constructs the graph
// (see graph::), Aggregate builds per-edge messages and reduces them onto
// nodes, Combine transforms node features. EdgeConv (the DGCNN layer) is
// provided as the fused reference building block for baselines.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "graph/graph.hpp"
#include "nn/nn.hpp"
#include "tensor/tensor.hpp"

namespace hg::gnn {

/// Message construction methods (Table I, "Message type").
/// For an edge u -> v with node features x: the message is built from the
/// neighbour (source u) and centre (target v) features.
enum class MessageType : std::int64_t {
  SourcePos = 0,  // x_u
  TargetPos,      // x_v
  RelPos,         // x_u - x_v
  Distance,       // ||x_u - x_v||_2 (1 channel)
  SourceRel,      // x_u || (x_u - x_v)
  TargetRel,      // x_v || (x_u - x_v)   — DGCNN's EdgeConv message
  Full,           // x_v || x_u || (x_u - x_v) || dist
};

constexpr std::int64_t kNumMessageTypes = 7;

std::string message_type_name(MessageType mt);

/// Output channel count of a message built from `in_dim` features.
std::int64_t message_dim(MessageType mt, std::int64_t in_dim);

/// Build the [num_edges x message_dim] message matrix for a graph.
/// Differentiable w.r.t. x.
Tensor build_messages(const Tensor& x, const graph::EdgeList& g,
                      MessageType mt);

/// Aggregate = build_messages + scatter_reduce onto destination nodes.
/// Returns [num_nodes x message_dim]. Dispatches to the fused kernel when
/// the thread pool is active, the materialising reference otherwise.
Tensor aggregate(const Tensor& x, const graph::EdgeList& g, MessageType mt,
                 Reduce reduce);

/// Reference Aggregate: materialise the full [num_edges x message_dim]
/// message tensor, then scatter-reduce it (the historical composite-op
/// implementation; every intermediate lives on the autograd tape).
Tensor aggregate_materialized(const Tensor& x, const graph::EdgeList& g,
                              MessageType mt, Reduce reduce);

/// Fused Aggregate fast path: builds each edge's message on the fly and
/// reduces it straight into its destination node, so neither the forward
/// nor the backward pass ever materialises an [num_edges x message_dim]
/// tensor. Edges are grouped per node and visited in ascending edge order,
/// and the backward accumulation mirrors the reference tape order, making
/// the results (values and gradients) bit-for-bit identical to
/// aggregate_materialized for every MessageType / Reduce combination and
/// any thread count.
Tensor aggregate_fused(const Tensor& x, const graph::EdgeList& g,
                       MessageType mt, Reduce reduce);

/// Global max pool over nodes: [N, C] -> [1, C]. The standard point-cloud
/// readout (DGCNN uses max).
Tensor global_max_pool(const Tensor& x);
Tensor global_mean_pool(const Tensor& x);

/// EdgeConv (Wang et al., DGCNN): per-edge MLP on the Target||Rel message
/// followed by max aggregation. h_v = max_u MLP(x_v || x_u - x_v).
class EdgeConv final : public nn::Module {
 public:
  EdgeConv(std::int64_t in_dim, std::int64_t out_dim, Rng& rng);

  /// x: [N, in_dim]; g: graph whose messages to aggregate.
  Tensor forward(const Tensor& x, const graph::EdgeList& g);

  std::vector<Tensor> parameters() const override;
  void set_training(bool training) override;

  std::int64_t in_dim() const { return in_dim_; }
  std::int64_t out_dim() const { return out_dim_; }

 private:
  std::int64_t in_dim_, out_dim_;
  std::unique_ptr<nn::Linear> lin_;
  std::unique_ptr<nn::BatchNorm1d> bn_;
};

/// Plain GCN layer (Kipf & Welling) with symmetric-normalised adjacency and
/// self-loops — used by the latency predictor ("use GNN to perceive GNNs").
/// Aggregator is configurable; the paper's predictor uses sum.
class GcnLayer final : public nn::Module {
 public:
  GcnLayer(std::int64_t in_dim, std::int64_t out_dim, Rng& rng,
           Reduce reduce = Reduce::Sum);

  Tensor forward(const Tensor& x, const graph::EdgeList& g);

  std::vector<Tensor> parameters() const override;

 private:
  std::int64_t in_dim_, out_dim_;
  Reduce reduce_;
  std::unique_ptr<nn::Linear> lin_;
};

}  // namespace hg::gnn
