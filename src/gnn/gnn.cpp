#include "gnn/gnn.hpp"

#include <cmath>
#include <stdexcept>

namespace hg::gnn {

namespace {

/// Row-wise L2 norm of a [E, C] tensor -> [E, 1], differentiable.
Tensor row_norm(const Tensor& d) {
  Tensor sq = square(d);
  Tensor s = sum_axis(sq, 1);                     // [E]
  Tensor s2 = reshape(s, {s.shape()[0], 1});      // [E,1]
  return sqrt_op(add(s2, 1e-12f));
}

}  // namespace

std::string message_type_name(MessageType mt) {
  switch (mt) {
    case MessageType::SourcePos: return "source_pos";
    case MessageType::TargetPos: return "target_pos";
    case MessageType::RelPos: return "rel_pos";
    case MessageType::Distance: return "distance";
    case MessageType::SourceRel: return "source||rel";
    case MessageType::TargetRel: return "target||rel";
    case MessageType::Full: return "full";
  }
  return "unknown";
}

std::int64_t message_dim(MessageType mt, std::int64_t in_dim) {
  switch (mt) {
    case MessageType::SourcePos:
    case MessageType::TargetPos:
    case MessageType::RelPos: return in_dim;
    case MessageType::Distance: return 1;
    case MessageType::SourceRel:
    case MessageType::TargetRel: return 2 * in_dim;
    case MessageType::Full: return 3 * in_dim + 1;
  }
  throw std::invalid_argument("message_dim: unknown message type");
}

Tensor build_messages(const Tensor& x, const graph::EdgeList& g,
                      MessageType mt) {
  if (x.dim() != 2)
    throw std::invalid_argument("build_messages: x must be [N, C]");
  if (x.shape()[0] != g.num_nodes)
    throw std::invalid_argument(
        "build_messages: node count mismatch between features (" +
        std::to_string(x.shape()[0]) + ") and graph (" +
        std::to_string(g.num_nodes) + ")");

  const std::span<const std::int64_t> src(g.src);
  const std::span<const std::int64_t> dst(g.dst);
  switch (mt) {
    case MessageType::SourcePos: return gather_rows(x, src);
    case MessageType::TargetPos: return gather_rows(x, dst);
    case MessageType::RelPos:
      return sub(gather_rows(x, src), gather_rows(x, dst));
    case MessageType::Distance: {
      Tensor rel = sub(gather_rows(x, src), gather_rows(x, dst));
      return row_norm(rel);
    }
    case MessageType::SourceRel: {
      Tensor xs = gather_rows(x, src);
      Tensor rel = sub(xs, gather_rows(x, dst));
      return concat({xs, rel}, 1);
    }
    case MessageType::TargetRel: {
      Tensor xs = gather_rows(x, src);
      Tensor xt = gather_rows(x, dst);
      return concat({xt, sub(xs, xt)}, 1);
    }
    case MessageType::Full: {
      Tensor xs = gather_rows(x, src);
      Tensor xt = gather_rows(x, dst);
      Tensor rel = sub(xs, xt);
      return concat({xt, xs, rel, row_norm(rel)}, 1);
    }
  }
  throw std::invalid_argument("build_messages: unknown message type");
}

Tensor aggregate(const Tensor& x, const graph::EdgeList& g, MessageType mt,
                 Reduce reduce) {
  Tensor msgs = build_messages(x, g, mt);
  return scatter_reduce(msgs, g.dst, g.num_nodes, reduce);
}

Tensor global_max_pool(const Tensor& x) {
  Tensor m = max_axis0(x);
  return reshape(m, {1, m.shape()[0]});
}

Tensor global_mean_pool(const Tensor& x) {
  Tensor m = mean_axis(x, 0);
  return reshape(m, {1, m.shape()[0]});
}

EdgeConv::EdgeConv(std::int64_t in_dim, std::int64_t out_dim, Rng& rng)
    : in_dim_(in_dim), out_dim_(out_dim) {
  lin_ = std::make_unique<nn::Linear>(2 * in_dim, out_dim, rng);
  bn_ = std::make_unique<nn::BatchNorm1d>(out_dim);
}

Tensor EdgeConv::forward(const Tensor& x, const graph::EdgeList& g) {
  Tensor msgs = build_messages(x, g, MessageType::TargetRel);  // [E, 2*in]
  Tensor h = lin_->forward(msgs);
  h = bn_->forward(h);
  h = leaky_relu(h, 0.2f);  // DGCNN uses LeakyReLU(0.2)
  return scatter_reduce(h, g.dst, g.num_nodes, Reduce::Max);
}

std::vector<Tensor> EdgeConv::parameters() const {
  std::vector<Tensor> out;
  for (auto& p : lin_->parameters()) out.push_back(p);
  for (auto& p : bn_->parameters()) out.push_back(p);
  return out;
}

void EdgeConv::set_training(bool training) {
  Module::set_training(training);
  lin_->set_training(training);
  bn_->set_training(training);
}

GcnLayer::GcnLayer(std::int64_t in_dim, std::int64_t out_dim, Rng& rng,
                   Reduce reduce)
    : in_dim_(in_dim), out_dim_(out_dim), reduce_(reduce) {
  lin_ = std::make_unique<nn::Linear>(in_dim, out_dim, rng);
}

Tensor GcnLayer::forward(const Tensor& x, const graph::EdgeList& g) {
  if (x.shape()[0] != g.num_nodes)
    throw std::invalid_argument("GcnLayer: node count mismatch");
  Tensor h = lin_->forward(x);  // transform first: cheaper when out < in

  // Symmetric normalisation with self-loops: deg includes the loop.
  const std::int64_t n = g.num_nodes;
  std::vector<float> deg(static_cast<std::size_t>(n), 1.f);
  for (auto d : g.dst) deg[static_cast<std::size_t>(d)] += 1.f;
  std::vector<float> inv_sqrt(static_cast<std::size_t>(n));
  for (std::int64_t v = 0; v < n; ++v)
    inv_sqrt[static_cast<std::size_t>(v)] =
        1.f / std::sqrt(deg[static_cast<std::size_t>(v)]);

  // Edge messages scaled by 1/sqrt(deg_u * deg_v), plus the self-loop term.
  Tensor msgs = gather_rows(h, g.src);  // [E, out]
  std::vector<float> scale(g.src.size());
  for (std::size_t e = 0; e < g.src.size(); ++e)
    scale[e] = inv_sqrt[static_cast<std::size_t>(g.src[e])] *
               inv_sqrt[static_cast<std::size_t>(g.dst[e])];
  const auto num_scaled = static_cast<std::int64_t>(scale.size());
  Tensor scale_t = Tensor::from_vector({num_scaled, 1}, std::move(scale));
  msgs = mul(msgs, scale_t);
  Tensor agg = scatter_reduce(msgs, g.dst, n, reduce_);

  std::vector<float> self_scale(static_cast<std::size_t>(n));
  for (std::int64_t v = 0; v < n; ++v)
    self_scale[static_cast<std::size_t>(v)] =
        inv_sqrt[static_cast<std::size_t>(v)] *
        inv_sqrt[static_cast<std::size_t>(v)];
  Tensor self_t =
      Tensor::from_vector({n, 1}, std::move(self_scale));
  return add(agg, mul(h, self_t));
}

std::vector<Tensor> GcnLayer::parameters() const { return lin_->parameters(); }

}  // namespace hg::gnn
