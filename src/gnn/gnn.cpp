#include "gnn/gnn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/parallel.hpp"
#include "core/simd.hpp"

namespace hg::gnn {

namespace {

/// Row-wise L2 norm of a [E, C] tensor -> [E, 1], differentiable.
Tensor row_norm(const Tensor& d) {
  Tensor sq = square(d);
  Tensor s = sum_axis(sq, 1);                     // [E]
  Tensor s2 = reshape(s, {s.shape()[0], 1});      // [E,1]
  return sqrt_op(add(s2, 1e-12f));
}

}  // namespace

std::string message_type_name(MessageType mt) {
  switch (mt) {
    case MessageType::SourcePos: return "source_pos";
    case MessageType::TargetPos: return "target_pos";
    case MessageType::RelPos: return "rel_pos";
    case MessageType::Distance: return "distance";
    case MessageType::SourceRel: return "source||rel";
    case MessageType::TargetRel: return "target||rel";
    case MessageType::Full: return "full";
  }
  return "unknown";
}

std::int64_t message_dim(MessageType mt, std::int64_t in_dim) {
  switch (mt) {
    case MessageType::SourcePos:
    case MessageType::TargetPos:
    case MessageType::RelPos: return in_dim;
    case MessageType::Distance: return 1;
    case MessageType::SourceRel:
    case MessageType::TargetRel: return 2 * in_dim;
    case MessageType::Full: return 3 * in_dim + 1;
  }
  throw std::invalid_argument("message_dim: unknown message type");
}

Tensor build_messages(const Tensor& x, const graph::EdgeList& g,
                      MessageType mt) {
  if (x.dim() != 2)
    throw std::invalid_argument("build_messages: x must be [N, C]");
  if (x.shape()[0] != g.num_nodes)
    throw std::invalid_argument(
        "build_messages: node count mismatch between features (" +
        std::to_string(x.shape()[0]) + ") and graph (" +
        std::to_string(g.num_nodes) + ")");

  const std::span<const std::int64_t> src(g.src);
  const std::span<const std::int64_t> dst(g.dst);
  switch (mt) {
    case MessageType::SourcePos: return gather_rows(x, src);
    case MessageType::TargetPos: return gather_rows(x, dst);
    case MessageType::RelPos:
      return sub(gather_rows(x, src), gather_rows(x, dst));
    case MessageType::Distance: {
      Tensor rel = sub(gather_rows(x, src), gather_rows(x, dst));
      return row_norm(rel);
    }
    case MessageType::SourceRel: {
      Tensor xs = gather_rows(x, src);
      Tensor rel = sub(xs, gather_rows(x, dst));
      return concat({xs, rel}, 1);
    }
    case MessageType::TargetRel: {
      Tensor xs = gather_rows(x, src);
      Tensor xt = gather_rows(x, dst);
      return concat({xt, sub(xs, xt)}, 1);
    }
    case MessageType::Full: {
      Tensor xs = gather_rows(x, src);
      Tensor xt = gather_rows(x, dst);
      Tensor rel = sub(xs, xt);
      return concat({xt, xs, rel, row_norm(rel)}, 1);
    }
  }
  throw std::invalid_argument("build_messages: unknown message type");
}

Tensor aggregate_materialized(const Tensor& x, const graph::EdgeList& g,
                              MessageType mt, Reduce reduce) {
  Tensor msgs = build_messages(x, g, mt);
  return scatter_reduce(msgs, g.dst, g.num_nodes, reduce);
}

namespace {

/// Scratch-free per-edge message evaluation for the fused kernel. Writes
/// message_dim(mt, C) floats into `buf` with exactly the float operations
/// (and their order) of build_messages, so values match it bit-for-bit.
/// For Distance/Full the row norm is also returned (the backward pass needs
/// it, as sqrt's derivative is expressed from the output).
float fused_edge_message(const float* xd, std::int64_t s, std::int64_t d,
                         std::int64_t c, MessageType mt, float* buf) {
  const float* xs = xd + s * c;
  const float* xt = xd + d * c;
  auto rel_norm = [&]() {
    float acc = 0.f;
    for (std::int64_t j = 0; j < c; ++j) {
      const float dv = xs[j] - xt[j];
      acc += dv * dv;
    }
    return std::sqrt(acc + 1e-12f);
  };
  switch (mt) {
    case MessageType::SourcePos:
      std::copy(xs, xs + c, buf);
      return 0.f;
    case MessageType::TargetPos:
      std::copy(xt, xt + c, buf);
      return 0.f;
    case MessageType::RelPos:
      simd::sub(buf, xs, xt, c);
      return 0.f;
    case MessageType::Distance: {
      const float nv = rel_norm();
      buf[0] = nv;
      return nv;
    }
    case MessageType::SourceRel:
      std::copy(xs, xs + c, buf);
      simd::sub(buf + c, xs, xt, c);
      return 0.f;
    case MessageType::TargetRel:
      std::copy(xt, xt + c, buf);
      simd::sub(buf + c, xs, xt, c);
      return 0.f;
    case MessageType::Full: {
      std::copy(xt, xt + c, buf);
      std::copy(xs, xs + c, buf + c);
      simd::sub(buf + 2 * c, xs, xt, c);
      const float nv = rel_norm();
      buf[3 * c] = nv;
      return nv;
    }
  }
  throw std::invalid_argument("aggregate_fused: unknown message type");
}

/// Per-node chunk grain for loops whose cost is edges * channels.
std::int64_t fused_node_grain(std::int64_t num_nodes, std::int64_t num_edges,
                              std::int64_t channels) {
  const std::int64_t per_node =
      (num_edges / std::max<std::int64_t>(1, num_nodes) + 1) * channels;
  return std::max<std::int64_t>(
      1, (1 << 18) / std::max<std::int64_t>(1, per_node));
}

}  // namespace

Tensor aggregate_fused(const Tensor& x, const graph::EdgeList& g,
                       MessageType mt, Reduce reduce) {
  if (x.dim() != 2)
    throw std::invalid_argument("aggregate_fused: x must be [N, C]");
  if (x.shape()[0] != g.num_nodes)
    throw std::invalid_argument(
        "aggregate_fused: node count mismatch between features (" +
        std::to_string(x.shape()[0]) + ") and graph (" +
        std::to_string(g.num_nodes) + ")");
  if (g.num_nodes <= 0)
    throw std::invalid_argument("aggregate_fused: num_nodes must be positive");

  const std::int64_t n = g.num_nodes;
  const std::int64_t e = g.num_edges();
  const std::int64_t c = x.shape()[1];
  const std::int64_t m = message_dim(mt, c);
  const float* xd = x.data().data();
  const std::int64_t* src = g.src.data();

  detail::IndexCsr by_dst = detail::group_by_index(g.dst, n, "aggregate_fused");
  // The backward capture (feature/edge copies, norms, degrees) is built
  // only when a tape edge will actually be recorded — the inference-heavy
  // search path runs under NoGradGuard and skips all of it.
  const bool needs_grad = detail::grad_enabled() && x.requires_grad();
  const bool needs_norm =
      needs_grad &&
      (mt == MessageType::Distance || mt == MessageType::Full);
  std::vector<float> norm(needs_norm ? static_cast<std::size_t>(e) : 0);

  std::vector<float> out(static_cast<std::size_t>(n * m), 0.f);
  std::vector<std::int64_t> arg;  // Max/Min winners, [n * m]
  const bool extremal = reduce == Reduce::Max || reduce == Reduce::Min;
  if (extremal) arg.assign(static_cast<std::size_t>(n * m), -1);
  const bool is_max = reduce == Reduce::Max;
  const std::int64_t grain = fused_node_grain(n, e, m);

  core::parallel_for(0, n, grain, [&](std::int64_t lo, std::int64_t hi) {
    std::vector<float> buf(static_cast<std::size_t>(m));
    for (std::int64_t v = lo; v < hi; ++v) {
      float* orow = out.data() + v * m;
      const std::int64_t b = by_dst.row_ptr[static_cast<std::size_t>(v)];
      const std::int64_t t = by_dst.row_ptr[static_cast<std::size_t>(v) + 1];
      for (std::int64_t s = b; s < t; ++s) {
        const std::int64_t ei = by_dst.items[static_cast<std::size_t>(s)];
        const float nv =
            fused_edge_message(xd, src[ei], v, c, mt, buf.data());
        if (needs_norm) norm[static_cast<std::size_t>(ei)] = nv;
        if (extremal) {
          simd::extremal_update(orow, arg.data() + v * m, buf.data(), ei, m,
                                is_max);
        } else {
          simd::accumulate(orow, buf.data(), m);
        }
      }
      if (reduce == Reduce::Mean && t > b) {
        simd::scale_inv(orow, static_cast<float>(t - b), m);
      }
    }
  });

  if (!needs_grad)
    return detail::make_custom_op({n, m}, std::move(out), {x}, nullptr);

  // Everything the backward pass needs, by value (the graph and x may die
  // before backward() runs).
  std::vector<float> x_copy(x.data().begin(), x.data().end());
  std::vector<std::int64_t> src_copy(g.src.begin(), g.src.end());
  std::vector<std::int64_t> dst_copy(g.dst.begin(), g.dst.end());
  std::vector<std::int64_t> degree(static_cast<std::size_t>(n));
  for (std::int64_t v = 0; v < n; ++v)
    degree[static_cast<std::size_t>(v)] =
        by_dst.row_ptr[static_cast<std::size_t>(v) + 1] -
        by_dst.row_ptr[static_cast<std::size_t>(v)];

  auto backward = [n, e, c, m, mt, reduce, x_copy = std::move(x_copy),
                   src_copy = std::move(src_copy),
                   dst_copy = std::move(dst_copy), norm = std::move(norm),
                   arg = std::move(arg), degree = std::move(degree),
                   by_dst = std::move(by_dst)](detail::TensorImpl& self) {
    detail::TensorImpl& p = *self.parents[0];
    if (!p.requires_grad) return;
    const float* gout = self.grad.data();
    const float* xd = x_copy.data();

    // Message-tensor gradient, evaluated lazily per (edge, channel): what
    // scatter_reduce's backward would have written into the materialised
    // [e, m] buffer.
    auto gm = [&](std::int64_t ei, std::int64_t mj) -> float {
      const std::int64_t v = dst_copy[static_cast<std::size_t>(ei)];
      const float gv = gout[static_cast<std::size_t>(v * m + mj)];
      switch (reduce) {
        case Reduce::Sum: return gv;
        case Reduce::Mean:
          return gv * (1.f / static_cast<float>(
                                 degree[static_cast<std::size_t>(v)]));
        case Reduce::Max:
        case Reduce::Min:
          return arg[static_cast<std::size_t>(v * m + mj)] == ei ? gv : 0.f;
      }
      return 0.f;
    };
    // d message / d rel, chained through the norm for Distance/Full. The
    // expression shape ((g * (0.5/norm)) * (2 * rel)) reproduces the
    // sqrt -> sum -> square reference backward exactly.
    auto rel_grad = [&](std::int64_t ei, std::int64_t j) -> float {
      const float rel =
          xd[src_copy[static_cast<std::size_t>(ei)] * c + j] -
          xd[dst_copy[static_cast<std::size_t>(ei)] * c + j];
      if (mt == MessageType::Distance)
        return (gm(ei, 0) * (0.5f / norm[static_cast<std::size_t>(ei)])) *
               (2.f * rel);
      // Full: direct rel channels plus the distance channel.
      return gm(ei, 2 * c + j) +
             (gm(ei, 3 * c) * (0.5f / norm[static_cast<std::size_t>(ei)])) *
                 (2.f * rel);
    };
    // Per-edge gradient w.r.t. the source / destination feature row. The
    // combinations mirror how the reference tape sums each gather's
    // contributions before scattering them back into x.
    auto src_grad = [&](std::int64_t ei, std::int64_t j) -> float {
      switch (mt) {
        case MessageType::SourcePos: return gm(ei, j);
        case MessageType::TargetPos: return 0.f;
        case MessageType::RelPos: return gm(ei, j);
        case MessageType::Distance: return rel_grad(ei, j);
        case MessageType::SourceRel: return gm(ei, j) + gm(ei, c + j);
        case MessageType::TargetRel: return gm(ei, c + j);
        case MessageType::Full: return gm(ei, c + j) + rel_grad(ei, j);
      }
      return 0.f;
    };
    auto dst_grad = [&](std::int64_t ei, std::int64_t j) -> float {
      switch (mt) {
        case MessageType::SourcePos: return 0.f;
        case MessageType::TargetPos: return gm(ei, j);
        case MessageType::RelPos: return -gm(ei, j);
        case MessageType::Distance: return -rel_grad(ei, j);
        case MessageType::SourceRel: return -gm(ei, c + j);
        case MessageType::TargetRel: return gm(ei, j) - gm(ei, c + j);
        case MessageType::Full: return gm(ei, j) - rel_grad(ei, j);
      }
      return 0.f;
    };

    const std::int64_t grain = fused_node_grain(n, e, c);
    auto gather_into = [&](const detail::IndexCsr& csr, auto&& edge_grad) {
      std::vector<float> buf(static_cast<std::size_t>(n * c), 0.f);
      core::parallel_for(0, n, grain, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t v = lo; v < hi; ++v) {
          float* row = buf.data() + v * c;
          const std::int64_t b = csr.row_ptr[static_cast<std::size_t>(v)];
          const std::int64_t t = csr.row_ptr[static_cast<std::size_t>(v) + 1];
          for (std::int64_t s = b; s < t; ++s) {
            const std::int64_t ei = csr.items[static_cast<std::size_t>(s)];
            for (std::int64_t j = 0; j < c; ++j) row[j] += edge_grad(ei, j);
          }
        }
      });
      return buf;
    };

    const bool has_src = mt != MessageType::TargetPos;
    const bool has_dst = mt != MessageType::SourcePos;
    std::vector<float> sbuf, dbuf;
    if (has_src) {
      const detail::IndexCsr by_src =
          detail::group_by_index(src_copy, n, "aggregate_fused");
      sbuf = gather_into(by_src, src_grad);
    }
    // The destination grouping is reused from the forward pass (captured
    // above) — dst_copy would sort to the identical CSR.
    if (has_dst) dbuf = gather_into(by_dst, dst_grad);
    // Accumulation order mirrors the reference tape's reverse-topological
    // execution: for messages listing the target part first in the concat
    // (TargetRel, Full) the source gather's backward runs first; otherwise
    // the destination gather's does.
    const bool src_first =
        mt == MessageType::TargetRel || mt == MessageType::Full;
    if (src_first) {
      if (has_src) p.accumulate_grad(sbuf);
      if (has_dst) p.accumulate_grad(dbuf);
    } else {
      if (has_dst) p.accumulate_grad(dbuf);
      if (has_src) p.accumulate_grad(sbuf);
    }
  };

  return detail::make_custom_op({n, m}, std::move(out), {x},
                                std::move(backward));
}

Tensor aggregate(const Tensor& x, const graph::EdgeList& g, MessageType mt,
                 Reduce reduce) {
  // One thread: preserve the historical composite path bit-for-bit
  // (including its tape structure). Pool active: the fused kernel computes
  // the same bits without the [E, message_dim] materialisation.
  if (core::num_threads() == 1)
    return aggregate_materialized(x, g, mt, reduce);
  return aggregate_fused(x, g, mt, reduce);
}

Tensor global_max_pool(const Tensor& x) {
  Tensor m = max_axis0(x);
  return reshape(m, {1, m.shape()[0]});
}

Tensor global_mean_pool(const Tensor& x) {
  Tensor m = mean_axis(x, 0);
  return reshape(m, {1, m.shape()[0]});
}

EdgeConv::EdgeConv(std::int64_t in_dim, std::int64_t out_dim, Rng& rng)
    : in_dim_(in_dim), out_dim_(out_dim) {
  lin_ = std::make_unique<nn::Linear>(2 * in_dim, out_dim, rng);
  bn_ = std::make_unique<nn::BatchNorm1d>(out_dim);
}

Tensor EdgeConv::forward(const Tensor& x, const graph::EdgeList& g) {
  Tensor msgs = build_messages(x, g, MessageType::TargetRel);  // [E, 2*in]
  Tensor h = lin_->forward(msgs);
  h = bn_->forward(h);
  h = leaky_relu(h, 0.2f);  // DGCNN uses LeakyReLU(0.2)
  return scatter_reduce(h, g.dst, g.num_nodes, Reduce::Max);
}

std::vector<Tensor> EdgeConv::parameters() const {
  std::vector<Tensor> out;
  for (auto& p : lin_->parameters()) out.push_back(p);
  for (auto& p : bn_->parameters()) out.push_back(p);
  return out;
}

void EdgeConv::set_training(bool training) {
  Module::set_training(training);
  lin_->set_training(training);
  bn_->set_training(training);
}

GcnLayer::GcnLayer(std::int64_t in_dim, std::int64_t out_dim, Rng& rng,
                   Reduce reduce)
    : in_dim_(in_dim), out_dim_(out_dim), reduce_(reduce) {
  lin_ = std::make_unique<nn::Linear>(in_dim, out_dim, rng);
}

Tensor GcnLayer::forward(const Tensor& x, const graph::EdgeList& g) {
  if (x.shape()[0] != g.num_nodes)
    throw std::invalid_argument("GcnLayer: node count mismatch");
  Tensor h = lin_->forward(x);  // transform first: cheaper when out < in

  // Symmetric normalisation with self-loops: deg includes the loop.
  const std::int64_t n = g.num_nodes;
  std::vector<float> deg(static_cast<std::size_t>(n), 1.f);
  for (auto d : g.dst) deg[static_cast<std::size_t>(d)] += 1.f;
  std::vector<float> inv_sqrt(static_cast<std::size_t>(n));
  for (std::int64_t v = 0; v < n; ++v)
    inv_sqrt[static_cast<std::size_t>(v)] =
        1.f / std::sqrt(deg[static_cast<std::size_t>(v)]);

  // Edge messages scaled by 1/sqrt(deg_u * deg_v), plus the self-loop term.
  std::vector<float> scale(g.src.size());
  for (std::size_t e = 0; e < g.src.size(); ++e)
    scale[e] = inv_sqrt[static_cast<std::size_t>(g.src[e])] *
               inv_sqrt[static_cast<std::size_t>(g.dst[e])];
  std::vector<float> self_scale(static_cast<std::size_t>(n));
  for (std::int64_t v = 0; v < n; ++v)
    self_scale[static_cast<std::size_t>(v)] =
        inv_sqrt[static_cast<std::size_t>(v)] *
        inv_sqrt[static_cast<std::size_t>(v)];

  if (!detail::grad_enabled() && reduce_ == Reduce::Sum) {
    // Fused inference path: reduce each scaled message straight into its
    // destination row instead of materialising the [E, out] matrix — the
    // matrix is what makes a large (or block-diagonally packed, see
    // predictor::predict_batch_ms) graph fall out of cache. Edges are
    // visited per destination in ascending order and the self-loop term is
    // added after the accumulated sum, mirroring the reference
    // gather/scale/scatter/add pipeline below operation for operation.
    // Bit-for-bit identity with that pipeline is asserted in
    // tests/test_gnn.cpp; the top-level -ffp-contract=off keeps the
    // compiler from fusing the mul+add below into an FMA the reference's
    // stored intermediate can't use, so it holds for HG_NATIVE builds too.
    const std::int64_t c = h.shape()[1];
    const auto hd = h.data();
    const detail::IndexCsr by_dst =
        detail::group_by_index(g.dst, n, "GcnLayer");
    std::vector<float> out(static_cast<std::size_t>(n * c), 0.f);
    const std::int64_t grain =
        std::max<std::int64_t>(1, 2048 / std::max<std::int64_t>(1, c));
    core::parallel_for(0, n, grain, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t v = lo; v < hi; ++v) {
        float* orow = out.data() + v * c;
        const std::int64_t b = by_dst.row_ptr[static_cast<std::size_t>(v)];
        const std::int64_t t =
            by_dst.row_ptr[static_cast<std::size_t>(v) + 1];
        for (std::int64_t s = b; s < t; ++s) {
          const std::int64_t e = by_dst.items[static_cast<std::size_t>(s)];
          const float* hrow =
              hd.data() + g.src[static_cast<std::size_t>(e)] * c;
          simd::axpy(orow, scale[static_cast<std::size_t>(e)], hrow, c);
        }
        simd::axpy(orow, self_scale[static_cast<std::size_t>(v)],
                   hd.data() + v * c, c);
      }
    });
    return Tensor::from_vector({n, c}, std::move(out));
  }

  Tensor msgs = gather_rows(h, g.src);  // [E, out]
  const auto num_scaled = static_cast<std::int64_t>(scale.size());
  Tensor scale_t = Tensor::from_vector({num_scaled, 1}, std::move(scale));
  msgs = mul(msgs, scale_t);
  Tensor agg = scatter_reduce(msgs, g.dst, n, reduce_);
  Tensor self_t =
      Tensor::from_vector({n, 1}, std::move(self_scale));
  return add(agg, mul(h, self_t));
}

std::vector<Tensor> GcnLayer::parameters() const { return lin_->parameters(); }

}  // namespace hg::gnn
