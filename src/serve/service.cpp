#include "serve/service.hpp"

#include <algorithm>
#include <exception>
#include <utility>

namespace hg::serve {

namespace {

api::Status shut_down_status() {
  return api::Status::FailedPrecondition("service is shut down");
}

}  // namespace

api::Result<std::shared_ptr<Service>> Service::create(
    const api::EngineConfig& cfg, const ServiceConfig& service_cfg) {
  api::Result<std::shared_ptr<api::EvalContext>> ctx =
      api::EvalContext::create(cfg);
  if (!ctx.ok()) return ctx.status();
  return create(cfg, std::move(ctx).value(), service_cfg);
}

api::Result<std::shared_ptr<Service>> Service::create(
    const api::EngineConfig& cfg, std::shared_ptr<api::EvalContext> ctx,
    const ServiceConfig& service_cfg) {
  if (service_cfg.num_workers < 1 || service_cfg.num_workers > 256)
    return api::Status::InvalidArgument(
        "ServiceConfig::num_workers must be in [1, 256]");
  if (service_cfg.max_predict_batch < 1)
    return api::Status::InvalidArgument(
        "ServiceConfig::max_predict_batch must be >= 1");
  if (ctx == nullptr)
    return api::Status::InvalidArgument("EvalContext is null");

  std::shared_ptr<Service> service(new Service());
  service->base_cfg_ = cfg;
  service->service_cfg_ = service_cfg;
  service->ctx_ = std::move(ctx);
  const std::string evaluator = api::normalize_key(cfg.evaluator);
  service->coalesce_predictions_ = evaluator == "predictor";
  service->measured_evaluator_ = evaluator == "measured";

  service->engines_.reserve(
      static_cast<std::size_t>(service_cfg.num_workers));
  for (std::int64_t i = 0; i < service_cfg.num_workers; ++i) {
    api::Result<api::Engine> engine = api::Engine::create(cfg, service->ctx_);
    if (!engine.ok()) return engine.status();
    service->engines_.push_back(std::move(engine).value());
  }
  service->start_workers(service_cfg.num_workers);
  return service;
}

Service::~Service() { shutdown(); }

void Service::start_workers(std::int64_t n) {
  workers_.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i)
    workers_.emplace_back(
        [this, i] { worker_loop(static_cast<std::size_t>(i)); });
}

void Service::shutdown() {
  // Serializes concurrent shutdown() callers (a second caller would
  // otherwise join the same threads); queue state stays under mutex_.
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
}

bool Service::enqueue(std::function<void(api::Engine&)> fn, bool exclusive,
                      bool count_predict) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return false;
    ++stats_.requests;
    if (count_predict) ++stats_.predict_requests;
    if (exclusive) {
      ++stats_.exclusive_requests;
      exclusive_queue_.push_back(std::move(fn));
    } else {
      pure_queue_.push_back(std::move(fn));
    }
  }
  cv_.notify_all();
  return true;
}

template <typename T>
std::future<api::Result<T>> Service::submit_task(
    std::function<api::Result<T>(api::Engine&)> fn, bool exclusive,
    bool count_predict) {
  auto promise = std::make_shared<std::promise<api::Result<T>>>();
  std::future<api::Result<T>> future = promise->get_future();
  const bool accepted = enqueue(
      [fn = std::move(fn), promise](api::Engine& engine) {
        promise->set_value(fn(engine));
      },
      exclusive, count_predict);
  if (!accepted) promise->set_value(shut_down_status());
  return future;
}

std::future<api::Result<api::SearchReport>> Service::submit(
    SearchRequest req) {
  const api::EngineConfig cfg = req.cfg.value_or(base_cfg_);
  return submit_task<api::SearchReport>(
      [this, cfg](api::Engine&) -> api::Result<api::SearchReport> {
        // A fresh engine per search: per-request strategy / objective /
        // constraint overrides without touching the worker's engine, gated
        // by context_compatible inside Engine::create.
        api::Result<api::Engine> engine = api::Engine::create(cfg, ctx_);
        if (!engine.ok()) return engine.status();
        return engine.value().search();
      },
      /*exclusive=*/true);
}

std::future<api::Result<api::LatencyReport>> Service::submit(
    PredictLatencyRequest req) {
  // "measured" draws from the evaluator's shared noise stream: route it
  // through the exclusive FIFO so concurrent runs replay the serial
  // stream. Everything else is a pure read of trained/fitted state.
  if (!coalesce_predictions_) {
    return submit_task<api::LatencyReport>(
        [arch = std::move(req.arch)](api::Engine& engine) {
          return engine.predict_latency(arch);
        },
        /*exclusive=*/measured_evaluator_, /*count_predict=*/true);
  }

  // Predictor path: park the request on the coalescing queue; a worker
  // drains a whole batch into one packed forward.
  PredictTask task;
  task.arch = std::move(req.arch);
  task.promise =
      std::make_shared<std::promise<api::Result<api::LatencyReport>>>();
  auto future = task.promise->get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      task.promise->set_value(shut_down_status());
      return future;
    }
    ++stats_.requests;
    ++stats_.predict_requests;
    predict_queue_.push_back(std::move(task));
  }
  cv_.notify_all();
  return future;
}

std::future<api::Result<api::ProfileReport>> Service::submit(
    ProfileRequest req) {
  return submit_task<api::ProfileReport>(
      [arch = std::move(req.arch)](api::Engine& engine) {
        return engine.profile(arch);
      },
      /*exclusive=*/false);
}

std::future<api::Result<api::ProfileReport>> Service::submit(
    ProfileBaselineRequest req) {
  return submit_task<api::ProfileReport>(
      [req = std::move(req)](api::Engine& engine) {
        return req.workload
                   ? engine.profile_baseline(req.name, *req.workload)
                   : engine.profile_baseline(req.name);
      },
      /*exclusive=*/false);
}

std::future<api::Result<api::TrainReport>> Service::submit(
    TrainBaselineRequest req) {
  return submit_task<api::TrainReport>(
      [name = std::move(req.name)](api::Engine& engine) {
        return engine.train_baseline(name);
      },
      /*exclusive=*/true);  // draws from the shared context RNG
}

ServiceStats Service::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void Service::worker_loop(std::size_t worker_index) {
  api::Engine& engine = engines_[worker_index];
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_.wait(lock, [this] {
      const bool work =
          !exclusive_claimed_ &&
          (!exclusive_queue_.empty() || !predict_queue_.empty() ||
           !pure_queue_.empty());
      const bool drained = stopping_ && exclusive_queue_.empty() &&
                           predict_queue_.empty() && pure_queue_.empty();
      return work || drained;
    });

    // Exclusive requests outrank everything: claim the oldest, wait for
    // in-flight pure work to drain, run alone. While a claim is pending or
    // running, no worker starts anything — that is the whole guarantee.
    if (!exclusive_claimed_ && !exclusive_queue_.empty()) {
      std::function<void(api::Engine&)> task =
          std::move(exclusive_queue_.front());
      exclusive_queue_.pop_front();
      exclusive_claimed_ = true;
      cv_.wait(lock, [this] { return pure_active_ == 0; });
      lock.unlock();
      task(engine);
      lock.lock();
      exclusive_claimed_ = false;
      cv_.notify_all();
      continue;
    }

    if (!exclusive_claimed_ && !predict_queue_.empty()) {
      const std::size_t n = std::min<std::size_t>(
          predict_queue_.size(),
          static_cast<std::size_t>(service_cfg_.max_predict_batch));
      std::vector<PredictTask> batch;
      batch.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        batch.push_back(std::move(predict_queue_.front()));
        predict_queue_.pop_front();
      }
      ++stats_.predict_batches;
      stats_.max_predict_batch = std::max(
          stats_.max_predict_batch, static_cast<std::int64_t>(n));
      ++pure_active_;
      lock.unlock();
      std::vector<api::Arch> archs;
      archs.reserve(batch.size());
      for (const PredictTask& t : batch) archs.push_back(t.arch);
      api::Result<std::vector<api::LatencyReport>> reports =
          engine.predict_batch(archs);
      if (reports.ok()) {
        for (std::size_t i = 0; i < batch.size(); ++i)
          batch[i].promise->set_value(reports.value()[i]);
      } else {
        // One bad request (an invalid genome fails the whole packed
        // forward) must not poison its batchmates: fall back to lone
        // queries so every request gets exactly the answer an uncoalesced
        // submission would have produced.
        for (PredictTask& t : batch)
          t.promise->set_value(engine.predict_latency(t.arch));
      }
      lock.lock();
      --pure_active_;
      cv_.notify_all();
      continue;
    }

    if (!exclusive_claimed_ && !pure_queue_.empty()) {
      std::function<void(api::Engine&)> task = std::move(pure_queue_.front());
      pure_queue_.pop_front();
      ++pure_active_;
      lock.unlock();
      task(engine);
      lock.lock();
      --pure_active_;
      cv_.notify_all();
      continue;
    }

    if (stopping_ && exclusive_queue_.empty() && predict_queue_.empty() &&
        pure_queue_.empty())
      return;
  }
}

}  // namespace hg::serve
