#include "serve/service.hpp"

#include <algorithm>
#include <exception>
#include <utility>

namespace hg::serve {

namespace {

api::Status shut_down_status() {
  return api::Status::FailedPrecondition("service is shut down");
}

api::Status queue_full_status() {
  return api::Status::ResourceExhausted("service queue is full");
}

api::Status draining_status() {
  return api::Status::Unavailable("service is draining");
}

api::Status expired_status() {
  return api::Status::DeadlineExceeded("deadline expired while queued");
}

api::Status cancelled_status() {
  return api::Status::Cancelled("request cancelled while queued");
}

bool is_cancelled(const std::shared_ptr<std::atomic<bool>>& flag) {
  return flag != nullptr && flag->load(std::memory_order_relaxed);
}

/// The request's wire-chosen trace id, or a fresh local one when tracing
/// is live (0 otherwise — untraced runs never pay the id counter).
std::uint64_t effective_trace_id(std::uint64_t requested) {
  if (requested != 0) return requested;
  return obs::tracing_enabled() ? obs::next_local_trace_id() : 0;
}

std::int64_t us_between(std::chrono::steady_clock::time_point from,
                        std::chrono::steady_clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::microseconds>(to - from)
      .count();
}

/// Bridges an api-layer run object (SearchRun / TrainBaselineRun — same
/// step()/done()/take_report() shape) onto the scheduler's Steppable
/// interface. A failed begin_* Result is carried as the error the run
/// would have reported: step() is immediately false and finish() resolves
/// with it, so admission-time failures take the same path as run-time
/// ones.
template <typename Run, typename Report>
class RunSteppable final : public Steppable {
 public:
  RunSteppable(api::Result<std::unique_ptr<Run>> run,
               std::function<void(api::Result<Report>)> resolve)
      : resolve_(std::move(resolve)) {
    if (run.ok())
      run_ = std::move(run).value();
    else
      error_ = run.status();
  }

  bool step() override { return run_ != nullptr && run_->step(); }
  void finish() override {
    if (run_ != nullptr)
      resolve_(run_->take_report());
    else
      resolve_(error_);
  }
  void abort(const api::Status& status) override { resolve_(status); }

 private:
  std::unique_ptr<Run> run_;
  api::Status error_;
  std::function<void(api::Result<Report>)> resolve_;
};

}  // namespace

api::Result<std::shared_ptr<Service>> Service::create(
    const api::EngineConfig& cfg, const ServiceConfig& service_cfg) {
  api::Result<std::shared_ptr<api::EvalContext>> ctx =
      api::EvalContext::create(cfg);
  if (!ctx.ok()) return ctx.status();
  return create(cfg, std::move(ctx).value(), service_cfg);
}

api::Result<std::shared_ptr<Service>> Service::create(
    const api::EngineConfig& cfg, std::shared_ptr<api::EvalContext> ctx,
    const ServiceConfig& service_cfg) {
  if (service_cfg.num_workers < 1 || service_cfg.num_workers > 256)
    return api::Status::InvalidArgument(
        "ServiceConfig::num_workers must be in [1, 256]");
  if (service_cfg.max_predict_batch < 1)
    return api::Status::InvalidArgument(
        "ServiceConfig::max_predict_batch must be >= 1");
  if (service_cfg.max_queue_depth < 0)
    return api::Status::InvalidArgument(
        "ServiceConfig::max_queue_depth must be >= 0 (0 = unbounded)");
  if (service_cfg.predict_window_us < 0)
    return api::Status::InvalidArgument(
        "ServiceConfig::predict_window_us must be >= 0 (0 = no window)");
  if (service_cfg.exclusive_slice_ms < 0)
    return api::Status::InvalidArgument(
        "ServiceConfig::exclusive_slice_ms must be >= 0 "
        "(0 = run to completion)");
  if (ctx == nullptr)
    return api::Status::InvalidArgument("EvalContext is null");

  std::shared_ptr<Service> service(new Service());
  service->base_cfg_ = cfg;
  service->service_cfg_ = service_cfg;
  service->ctx_ = std::move(ctx);
  const std::string evaluator = api::normalize_key(cfg.evaluator);
  service->coalesce_predictions_ = evaluator == "predictor";
  service->measured_evaluator_ = evaluator == "measured";

  service->engines_.reserve(
      static_cast<std::size_t>(service_cfg.num_workers));
  for (std::int64_t i = 0; i < service_cfg.num_workers; ++i) {
    api::Result<api::Engine> engine = api::Engine::create(cfg, service->ctx_);
    if (!engine.ok()) return engine.status();
    service->engines_.push_back(std::move(engine).value());
  }
  if (!service_cfg.trace_path.empty()) {
    // The collector is process-global; the first service configured with
    // a trace_path owns it (starts it now, exports + stops at shutdown).
    service->trace_owner_ = !obs::TraceCollector::global().enabled();
    obs::TraceCollector::global().start();
  }
  service->start_workers(service_cfg.num_workers);
  return service;
}

Service::~Service() { shutdown(); }

void Service::start_workers(std::int64_t n) {
  workers_.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i)
    workers_.emplace_back(
        [this, i] { worker_loop(static_cast<std::size_t>(i)); });
}

void Service::shutdown() {
  // Serializes concurrent shutdown() callers (a second caller would
  // otherwise join the same threads); queue state stays under queue_mutex_.
  core::MutexLock shutdown_lock(shutdown_mutex_);
  {
    core::MutexLock lock(queue_mutex_);
    stopping_ = true;
  }
  // Every parked worker must observe stopping_, including a predict-window
  // waiter mid-wait_until. The exclusive gate needs no signal: a claimant
  // blocked there is released by the last pure completion regardless.
  work_cv_.notify_all();
  window_cv_.notify_one();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
  if (trace_owner_) {
    trace_owner_ = false;  // idempotent under shutdown_mutex_
    obs::TraceCollector::global().write_json(service_cfg_.trace_path);
    obs::TraceCollector::global().stop();
  }
}

void Service::drain() {
  {
    core::MutexLock lock(queue_mutex_);
    if (draining_) return;
    draining_ = true;
  }
  counters_.drain_started.inc();
  // No wakeup: draining_ only affects admission (checked by submitters
  // under the queue lock), never a worker's wait predicate.
}

bool Service::draining() const {
  core::MutexLock lock(queue_mutex_);
  return draining_;
}

void Service::record_ping() {
  counters_.pings.inc();
}

void Service::record_shed_hint() {
  counters_.sheds_with_hint.inc();
}

Service::Admission Service::enqueue(QueuedTask task, bool exclusive,
                                    bool count_predict, std::int64_t count) {
  bool wake_window = false;
  {
    core::MutexLock lock(queue_mutex_);
    if (stopping_) return Admission::kShutDown;
    if (draining_) return Admission::kDraining;
    counters_.requests.inc(count);
    if (count_predict)
      counters_.predict_requests.inc(count);
    const std::int64_t depth =
        static_cast<std::int64_t>(pure_queue_.size() +
                                  exclusive_queue_.size() +
                                  predict_queue_.size());
    if (service_cfg_.max_queue_depth > 0 &&
        depth >= service_cfg_.max_queue_depth) {
      counters_.rejected_requests.inc(count);
      return Admission::kQueueFull;
    }
    if (exclusive) {
      counters_.exclusive_requests.inc();
      exclusive_queue_.push_back(std::move(task));
    } else {
      pure_queue_.push_back(std::move(task));
    }
    wake_window = predict_window_waiter_;
  }
  // One admitted task, one woken worker. A window waiter gets its own
  // signal: an exclusive arrival (or pure work with nobody free) is one of
  // its early-fire conditions, and it sleeps on window_cv_, not work_cv_.
  work_cv_.notify_one();
  if (wake_window) window_cv_.notify_one();
  return Admission::kAccepted;
}

template <typename T>
std::future<api::Result<T>> Service::submit_task(
    std::function<api::Result<T>(api::Engine&)> fn, RequestOptions opts,
    bool exclusive, bool count_predict,
    std::function<std::unique_ptr<Steppable>(
        api::Engine&, std::function<void(api::Result<T>)>)>
        make_run) {
  auto promise = std::make_shared<std::promise<api::Result<T>>>();
  std::future<api::Result<T>> future = promise->get_future();
  auto resolve = [promise, notify = std::move(opts.notify)](
                     api::Result<T> result) {
    promise->set_value(std::move(result));
    if (notify) notify();
  };
  QueuedTask task;
  task.deadline = opts.deadline;
  task.cancel = std::move(opts.cancel);
  task.enqueued_at = std::chrono::steady_clock::now();
  task.trace_id = effective_trace_id(opts.trace_id);
  task.run = [fn = std::move(fn), resolve](api::Engine& engine) {
    resolve(fn(engine));
  };
  if (make_run) {
    // The stepwise form resolves the same promise through the same
    // closure, so the two paths are interchangeable per task.
    task.make_steppable = [make_run = std::move(make_run),
                           resolve](api::Engine& engine) {
      return make_run(engine, resolve);
    };
  }
  task.fail = [resolve](const api::Status& status) { resolve(status); };
  // Keep a handle for the not-admitted paths: `task` is gone after the
  // move into enqueue.
  const std::function<void(const api::Status&)> fail = task.fail;
  switch (enqueue(std::move(task), exclusive, count_predict)) {
    case Admission::kAccepted:
      break;
    case Admission::kShutDown:
      fail(shut_down_status());
      break;
    case Admission::kQueueFull:
      fail(queue_full_status());
      break;
    case Admission::kDraining:
      fail(draining_status());
      break;
  }
  return future;
}

std::future<api::Result<api::SearchReport>> Service::submit(
    SearchRequest req) {
  const api::EngineConfig cfg = req.cfg.value_or(base_cfg_);
  return submit_task<api::SearchReport>(
      [this, cfg](api::Engine&) -> api::Result<api::SearchReport> {
        // A fresh engine per search: per-request strategy / objective /
        // constraint overrides without touching the worker's engine, gated
        // by context_compatible inside Engine::create.
        api::Result<api::Engine> engine = api::Engine::create(cfg, ctx_);
        if (!engine.ok()) return engine.status();
        return engine.value().search();
      },
      std::move(req.opts), /*exclusive=*/true, /*count_predict=*/false,
      [this, cfg](api::Engine&,
                  std::function<void(api::Result<api::SearchReport>)> resolve)
          -> std::unique_ptr<Steppable> {
        // Same fresh-engine policy as the monolithic path above; the run
        // keeps the EvalContext alive itself, so the temporary engine may
        // die as soon as begin_search() returns.
        using SearchSteppable =
            RunSteppable<api::SearchRun, api::SearchReport>;
        api::Result<api::Engine> engine = api::Engine::create(cfg, ctx_);
        if (!engine.ok())
          return std::make_unique<SearchSteppable>(engine.status(),
                                                   std::move(resolve));
        return std::make_unique<SearchSteppable>(
            engine.value().begin_search(), std::move(resolve));
      });
}

std::future<api::Result<api::LatencyReport>> Service::submit(
    PredictLatencyRequest req) {
  // "measured" draws from the evaluator's shared noise stream: route it
  // through the exclusive FIFO so concurrent runs replay the serial
  // stream. Everything else is a pure read of trained/fitted state.
  if (!coalesce_predictions_) {
    return submit_task<api::LatencyReport>(
        [arch = std::move(req.arch)](api::Engine& engine) {
          return engine.predict_latency(arch);
        },
        std::move(req.opts), /*exclusive=*/measured_evaluator_,
        /*count_predict=*/true);
  }

  // Predictor path: park the request on the coalescing queue; a worker
  // drains a whole batch into one packed forward (waiting out
  // predict_window_us first, when configured).
  PredictTask task;
  task.arch = std::move(req.arch);
  task.opts = std::move(req.opts);
  task.opts.trace_id = effective_trace_id(task.opts.trace_id);
  task.enqueued_at = std::chrono::steady_clock::now();
  task.promise =
      std::make_shared<std::promise<api::Result<api::LatencyReport>>>();
  auto future = task.promise->get_future();
  // Handles for the not-admitted paths, taken before the move into the
  // queue so the refusal below never reaches into a moved-from task.
  const auto promise = task.promise;
  const auto notify = task.opts.notify;
  api::Status refused;
  bool wake_window = false;
  {
    core::MutexLock lock(queue_mutex_);
    if (stopping_) {
      refused = shut_down_status();
    } else if (draining_) {
      refused = draining_status();
    } else {
      counters_.requests.inc();
      counters_.predict_requests.inc();
      const std::int64_t depth =
          static_cast<std::int64_t>(pure_queue_.size() +
                                    exclusive_queue_.size() +
                                    predict_queue_.size());
      if (service_cfg_.max_queue_depth > 0 &&
          depth >= service_cfg_.max_queue_depth) {
        counters_.rejected_requests.inc();
        refused = queue_full_status();
      } else {
        predict_queue_.push_back(std::move(task));
        wake_window = predict_window_waiter_;
      }
    }
  }
  if (!refused.ok()) {
    promise->set_value(refused);
    if (notify) notify();
    return future;
  }
  // While a window waiter holds the coalescing queue the new query is
  // only actionable by that waiter (the batch may just have filled);
  // otherwise wake one worker to claim the queue.
  if (wake_window)
    window_cv_.notify_one();
  else
    work_cv_.notify_one();
  return future;
}

std::future<std::vector<api::Result<api::LatencyReport>>> Service::submit(
    PredictBatchRequest req) {
  using BatchResults = std::vector<api::Result<api::LatencyReport>>;
  auto promise = std::make_shared<std::promise<BatchResults>>();
  std::future<BatchResults> future = promise->get_future();
  const std::size_t n = req.archs.size();
  auto resolve = [promise, notify = std::move(req.opts.notify)](
                     BatchResults results) {
    promise->set_value(std::move(results));
    if (notify) notify();
  };
  if (n == 0) {
    resolve({});
    return future;
  }

  QueuedTask task;
  task.deadline = req.opts.deadline;
  task.cancel = std::move(req.opts.cancel);
  task.enqueued_at = std::chrono::steady_clock::now();
  task.trace_id = effective_trace_id(req.opts.trace_id);
  task.run = [this, archs = std::move(req.archs),
              resolve](api::Engine& engine) {
    counters_.predict_batches.inc();
    counters_.max_predict_batch.max_of(static_cast<std::int64_t>(archs.size()));
    BatchResults results;
    results.reserve(archs.size());
    api::Result<std::vector<api::LatencyReport>> reports =
        engine.predict_batch(archs);
    if (reports.ok()) {
      for (const api::LatencyReport& r : reports.value()) results.push_back(r);
    } else {
      // Same fallback as the coalescing worker: one bad element must not
      // poison its batchmates, and every answer must equal what a lone
      // submission would have produced.
      for (const api::Arch& a : archs) results.push_back(engine.predict_latency(a));
    }
    resolve(std::move(results));
  };
  task.fail = [n, resolve](const api::Status& status) {
    resolve(BatchResults(n, api::Result<api::LatencyReport>(status)));
  };
  const std::function<void(const api::Status&)> fail = task.fail;
  // "measured" replays the evaluator's shared noise stream: run the batch
  // on the exclusive FIFO so its elements draw exactly the serial stream.
  switch (enqueue(std::move(task), /*exclusive=*/measured_evaluator_,
                  /*count_predict=*/true, static_cast<std::int64_t>(n))) {
    case Admission::kAccepted:
      break;
    case Admission::kShutDown:
      fail(shut_down_status());
      break;
    case Admission::kQueueFull:
      fail(queue_full_status());
      break;
    case Admission::kDraining:
      fail(draining_status());
      break;
  }
  return future;
}

std::future<api::Result<api::ProfileReport>> Service::submit(
    ProfileRequest req) {
  return submit_task<api::ProfileReport>(
      [arch = std::move(req.arch)](api::Engine& engine) {
        return engine.profile(arch);
      },
      std::move(req.opts), /*exclusive=*/false);
}

std::future<api::Result<api::ProfileReport>> Service::submit(
    ProfileBaselineRequest req) {
  RequestOptions opts = std::move(req.opts);
  return submit_task<api::ProfileReport>(
      [name = std::move(req.name),
       workload = req.workload](api::Engine& engine) {
        return workload ? engine.profile_baseline(name, *workload)
                        : engine.profile_baseline(name);
      },
      std::move(opts), /*exclusive=*/false);
}

std::future<api::Result<api::TrainReport>> Service::submit(
    TrainBaselineRequest req) {
  const std::string name = std::move(req.name);
  return submit_task<api::TrainReport>(
      [name](api::Engine& engine) { return engine.train_baseline(name); },
      std::move(req.opts), /*exclusive=*/true,  // draws the shared ctx RNG
      /*count_predict=*/false,
      [name](api::Engine& engine,
             std::function<void(api::Result<api::TrainReport>)> resolve)
          -> std::unique_ptr<Steppable> {
        return std::make_unique<
            RunSteppable<api::TrainBaselineRun, api::TrainReport>>(
            engine.begin_train_baseline(name), std::move(resolve));
      });
}

ServiceStats Service::stats() const {
  // A thin view over the registered instruments: every field is read from
  // the same counter/histogram the hot paths bump, so this struct, the
  // full metrics_snapshot(), and the wire's kStats answer can never
  // disagree.
  ServiceStats snapshot;
  snapshot.requests = counters_.requests.value();
  snapshot.exclusive_requests = counters_.exclusive_requests.value();
  snapshot.predict_requests = counters_.predict_requests.value();
  snapshot.predict_batches = counters_.predict_batches.value();
  snapshot.max_predict_batch = counters_.max_predict_batch.value();
  snapshot.rejected_requests = counters_.rejected_requests.value();
  snapshot.deadline_expired = counters_.deadline_expired.value();
  snapshot.cancelled_requests = counters_.cancelled_requests.value();
  snapshot.pings = counters_.pings.value();
  snapshot.sheds_with_hint = counters_.sheds_with_hint.value();
  snapshot.drain_started = counters_.drain_started.value();
  snapshot.exclusive_slices = counters_.exclusive_slices.value();
  snapshot.exclusive_preemptions = counters_.exclusive_preemptions.value();
  snapshot.exclusive_resumes = counters_.exclusive_resumes.value();
  snapshot.queue_wait_p50_us = queue_wait_us_.percentile_us(0.50);
  snapshot.queue_wait_p99_us = queue_wait_us_.percentile_us(0.99);
  snapshot.service_time_p50_us = service_time_us_.percentile_us(0.50);
  snapshot.service_time_p99_us = service_time_us_.percentile_us(0.99);
  snapshot.pure_queue_wait_p50_us = pure_queue_wait_us_.percentile_us(0.50);
  snapshot.pure_queue_wait_p99_us = pure_queue_wait_us_.percentile_us(0.99);
  snapshot.pure_service_time_p50_us =
      pure_service_time_us_.percentile_us(0.50);
  snapshot.pure_service_time_p99_us =
      pure_service_time_us_.percentile_us(0.99);
  snapshot.exclusive_queue_wait_p50_us =
      exclusive_queue_wait_us_.percentile_us(0.50);
  snapshot.exclusive_queue_wait_p99_us =
      exclusive_queue_wait_us_.percentile_us(0.99);
  snapshot.exclusive_service_time_p50_us =
      exclusive_service_time_us_.percentile_us(0.50);
  snapshot.exclusive_service_time_p99_us =
      exclusive_service_time_us_.percentile_us(0.99);
  core::MutexLock lock(queue_mutex_);
  snapshot.queue_depth =
      static_cast<std::int64_t>(pure_queue_.size() +
                                exclusive_queue_.size() +
                                predict_queue_.size());
  return snapshot;
}

obs::Snapshot Service::metrics_snapshot() const {
  obs::Snapshot snap = registry_->snapshot();
  // queue_depth is the one live (non-monotone, non-instrument) value: it
  // is derived from the queue sizes, so inject it here.
  core::MutexLock lock(queue_mutex_);
  snap["serve.queue_depth"] =
      static_cast<std::int64_t>(pure_queue_.size() +
                                exclusive_queue_.size() +
                                predict_queue_.size());
  return snap;
}

bool Service::pop_runnable(
    std::deque<QueuedTask>& queue,
    std::vector<std::pair<QueuedTask, api::Status>>* failed,
    QueuedTask* out, LatencyHistogram& kind_wait) {
  while (!queue.empty()) {
    QueuedTask task = std::move(queue.front());
    queue.pop_front();
    const bool cancelled = is_cancelled(task.cancel);
    const auto now = std::chrono::steady_clock::now();
    const bool expired = !cancelled && now > task.deadline;
    if (!cancelled && !expired) {
      const std::int64_t wait_us = us_between(task.enqueued_at, now);
      queue_wait_us_.record_us(wait_us);
      kind_wait.record_us(wait_us);
      obs::record_span("serve.queue_wait", "serve", task.trace_id,
                       task.enqueued_at, now);
      *out = std::move(task);
      return true;
    }
    if (cancelled)
      counters_.cancelled_requests.inc();
    else
      counters_.deadline_expired.inc();
    failed->emplace_back(std::move(task),
                         cancelled ? cancelled_status() : expired_status());
  }
  return false;
}

void Service::worker_loop(std::size_t worker_index) {
  api::Engine& engine = engines_[worker_index];
  core::UniqueMutexLock lock(queue_mutex_);
  for (;;) {
    // Waits are explicit loops over guarded state, not cv_.wait(lock,
    // pred): thread safety analysis treats a predicate lambda as its own
    // unannotated function (see annotations.hpp rule 4).
    for (;;) {
      // A predict queue whose coalescing window another worker is
      // already waiting out is not claimable work.
      const bool predict_work =
          !predict_queue_.empty() && !predict_window_waiter_;
      const bool work =
          !exclusive_claimed_ &&
          (!exclusive_queue_.empty() || predict_work ||
           !pure_queue_.empty());
      const bool drained = stopping_ && exclusive_queue_.empty() &&
                           predict_queue_.empty() && pure_queue_.empty();
      if (work || drained) break;
      work_cv_.wait(lock);
    }

    // A preempted exclusive re-parked at the queue front yields one
    // dispatch round to queued pure/predict traffic — that interleaving is
    // the whole point of slicing. A FRESH exclusive keeps the historical
    // drain-pure-first priority, and under slice_ms == 0 no task ever has
    // a steppable, so this is dead code on the legacy path. Caveat: a
    // saturating pure load can starve a preempted run (accepted — pure
    // work is cheap and bounded, exclusives are minutes).
    const bool defer_exclusive =
        !exclusive_queue_.empty() &&
        exclusive_queue_.front().steppable != nullptr &&
        ((!predict_queue_.empty() && !predict_window_waiter_) ||
         !pure_queue_.empty());

    // Exclusive requests outrank everything: claim the oldest, wait for
    // in-flight pure work to drain, run alone. While a claim is pending or
    // running, no worker starts anything — that is the whole guarantee.
    if (!exclusive_claimed_ && !exclusive_queue_.empty() &&
        !defer_exclusive) {
      exclusive_claimed_ = true;
      QueuedTask task;
      std::vector<std::pair<QueuedTask, api::Status>> failed;
      const bool got = pop_runnable(exclusive_queue_, &failed, &task,
                                    exclusive_queue_wait_us_);
      if (!got) exclusive_claimed_ = false;  // every exclusive was dead
      if (!failed.empty()) {
        // Resolve cancellations/expiries outside the lock (they fire
        // promise waiters and notify hooks). When a live task was popped
        // the claim stays held across the unlock, so no pure work starts.
        lock.unlock();
        for (auto& [t, status] : failed) t.fail(status);
        lock.lock();
      }
      if (!got) {
        // The transient claim may have parked workers that saw
        // exclusive_claimed_; every one of them must re-examine the queues.
        work_cv_.notify_all();
        continue;
      }
      while (pure_active_ != 0) gate_cv_.wait(lock);
      // Slice only the verbs that registered a stepwise form; everything
      // else on this queue (measured-evaluator predictions) is quick and
      // runs to completion as before.
      const bool sliced =
          service_cfg_.exclusive_slice_ms > 0 &&
          (task.make_steppable != nullptr || task.steppable != nullptr);
      lock.unlock();
      // Nested spans (search.* / train.* from the steppers) inherit the
      // request's id through the thread-local.
      HG_TRACE_ID(task.trace_id);
      const auto started = std::chrono::steady_clock::now();
      bool finished = true;
      if (!sliced) {
        task.run(engine);
      } else {
        counters_.exclusive_slices.inc();
        if (task.steppable == nullptr) {
          task.steppable = task.make_steppable(engine);
          task.make_steppable = nullptr;
        } else {
          counters_.exclusive_resumes.inc();
        }
        const auto slice =
            std::chrono::milliseconds(service_cfg_.exclusive_slice_ms);
        finished = false;
        for (;;) {
          // Between steps the task is at a clean boundary: honor a cancel
          // or an expired deadline now instead of at the end of the run.
          if (is_cancelled(task.cancel)) {
            counters_.cancelled_requests.inc();
            task.steppable->abort(api::Status::Cancelled(
                "request cancelled mid-run (between steps)"));
            finished = true;
            break;
          }
          if (std::chrono::steady_clock::now() > task.deadline) {
            counters_.deadline_expired.inc();
            task.steppable->abort(api::Status::DeadlineExceeded(
                "deadline expired mid-run (between steps)"));
            finished = true;
            break;
          }
          if (!task.steppable->step()) {
            task.steppable->finish();
            finished = true;
            break;
          }
          if (std::chrono::steady_clock::now() - started >= slice) break;
        }
      }
      const auto ended = std::chrono::steady_clock::now();
      // Per dispatch, not per request: a preempted run records one
      // service-time sample per slice (each slice occupied a worker
      // separately), mirroring the per-dispatch queue-wait samples.
      const std::int64_t run_us = us_between(started, ended);
      service_time_us_.record_us(run_us);
      exclusive_service_time_us_.record_us(run_us);
      obs::record_span(sliced ? "serve.slice" : "serve.exclusive", "serve",
                       task.trace_id, started, ended);
      lock.lock();
      exclusive_claimed_ = false;
      if (!finished) {
        // Re-park at the FRONT: the preempted task stays ahead of every
        // younger exclusive, so exclusives still run FIFO and the shared
        // context RNG is consumed in submission order — bit-identical
        // results for any slice value. The wait clock restarts (each
        // dispatch waited separately).
        task.enqueued_at = ended;
        counters_.exclusive_preemptions.inc();
        exclusive_queue_.push_front(std::move(task));
      }
      // Releasing the claim re-opens dispatch for everyone (any queue, any
      // worker), so this is the one completion that broadcasts.
      work_cv_.notify_all();
      continue;
    }

    if (!exclusive_claimed_ && !predict_queue_.empty() &&
        !predict_window_waiter_) {
      // Time-windowed coalescing: with a window configured and room left
      // in the batch, let the oldest queued query age to the window
      // before firing, so queries arriving one at a time (remote trickle
      // traffic) still pack into one forward. Exactly ONE worker holds
      // the window (predict_window_waiter_) — the others keep serving
      // pure traffic meanwhile. Fires early when the batch fills, an
      // exclusive request arrives, the service stops, or pure work is
      // queued with no free worker to take it.
      if (service_cfg_.predict_window_us > 0 && !stopping_ &&
          static_cast<std::int64_t>(predict_queue_.size()) <
              service_cfg_.max_predict_batch) {
        const auto fire_at =
            predict_queue_.front().enqueued_at +
            std::chrono::microseconds(service_cfg_.predict_window_us);
        // When every other worker is busy (with one worker, always),
        // nobody else can take queued pure work while the window ages.
        // Sleeping on top of it would stall it for nothing — and running
        // it first could stall the *predictions* past the window (a
        // profile can take seconds). So fire the batch early with
        // whatever is queued: the packed forward is quick, the window
        // stays an upper bound on coalescing delay, and the pure work
        // runs right after.
        if (std::chrono::steady_clock::now() < fire_at &&
            !(!pure_queue_.empty() && no_free_worker())) {
          predict_window_waiter_ = true;
          for (;;) {
            if (stopping_ || exclusive_claimed_ ||
                !exclusive_queue_.empty() || predict_queue_.empty() ||
                (!pure_queue_.empty() && no_free_worker()) ||
                static_cast<std::int64_t>(predict_queue_.size()) >=
                    service_cfg_.max_predict_batch)
              break;
            if (window_cv_.wait_until(lock, fire_at) ==
                std::cv_status::timeout)
              break;
          }
          predict_window_waiter_ = false;
          // The queue was unclaimable while the flag was up; enqueue-side
          // notify_ones from that span may have been absorbed by workers
          // that could not act on them, so re-open it with a broadcast
          // (rare: once per window).
          work_cv_.notify_all();
          continue;  // re-dispatch from the top with fresh state
        }
      }
      {
        const std::size_t want = std::min<std::size_t>(
            predict_queue_.size(),
            static_cast<std::size_t>(service_cfg_.max_predict_batch));
        const auto now = std::chrono::steady_clock::now();
        std::vector<PredictTask> batch;
        std::vector<std::pair<PredictTask, api::Status>> refused;
        batch.reserve(want);
        for (std::size_t i = 0; i < want; ++i) {
          PredictTask t = std::move(predict_queue_.front());
          predict_queue_.pop_front();
          if (is_cancelled(t.opts.cancel)) {
            counters_.cancelled_requests.inc();
            refused.emplace_back(std::move(t), cancelled_status());
          } else if (now > t.opts.deadline) {
            counters_.deadline_expired.inc();
            refused.emplace_back(std::move(t), expired_status());
          } else {
            const std::int64_t wait_us = us_between(t.enqueued_at, now);
            queue_wait_us_.record_us(wait_us);
            pure_queue_wait_us_.record_us(wait_us);
            obs::record_span("serve.queue_wait", "serve", t.opts.trace_id,
                             t.enqueued_at, now);
            batch.push_back(std::move(t));
          }
        }
        if (!batch.empty()) {
          counters_.predict_batches.inc();
          counters_.max_predict_batch.max_of(static_cast<std::int64_t>(batch.size()));
          ++pure_active_;
        }
        lock.unlock();
        for (auto& [t, status] : refused) {
          t.promise->set_value(status);
          if (t.opts.notify) t.opts.notify();
        }
        if (!batch.empty()) {
          std::vector<api::Arch> archs;
          archs.reserve(batch.size());
          for (const PredictTask& t : batch) archs.push_back(t.arch);
          const auto started = std::chrono::steady_clock::now();
          api::Result<std::vector<api::LatencyReport>> reports =
              engine.predict_batch(archs);
          if (reports.ok()) {
            for (std::size_t i = 0; i < batch.size(); ++i) {
              batch[i].promise->set_value(reports.value()[i]);
              if (batch[i].opts.notify) batch[i].opts.notify();
            }
          } else {
            // One bad request (an invalid genome fails the whole packed
            // forward) must not poison its batchmates: fall back to lone
            // queries so every request gets exactly the answer an
            // uncoalesced submission would have produced.
            for (PredictTask& t : batch) {
              t.promise->set_value(engine.predict_latency(t.arch));
              if (t.opts.notify) t.opts.notify();
            }
          }
          const auto ended = std::chrono::steady_clock::now();
          const std::int64_t run_us = us_between(started, ended);
          service_time_us_.record_us(run_us);
          pure_service_time_us_.record_us(run_us);
          // One packed forward serves the whole batch; the span carries
          // the oldest element's attribution.
          obs::record_span("serve.predict_batch", "serve",
                           batch.front().opts.trace_id, started, ended);
        }
        lock.lock();
        if (!batch.empty()) {
          --pure_active_;
          // Only an exclusive claimant waits on the active count; nobody
          // else needs to hear about a completion.
          if (pure_active_ == 0 && exclusive_claimed_)
            gate_cv_.notify_one();
        }
        continue;
      }
    }

    if (!exclusive_claimed_ && !pure_queue_.empty()) {
      QueuedTask task;
      std::vector<std::pair<QueuedTask, api::Status>> failed;
      // The pop and the pure_active_ bump share one continuous lock hold
      // with the exclusive_claimed_ check above: an exclusive claimant
      // waiting for pure_active_ == 0 can never interleave between them,
      // which is what keeps exclusive runs bit-identical to serial.
      const bool got =
          pop_runnable(pure_queue_, &failed, &task, pure_queue_wait_us_);
      if (got) ++pure_active_;
      lock.unlock();
      for (auto& [t, status] : failed) t.fail(status);
      if (got) {
        HG_TRACE_ID(task.trace_id);
        const auto started = std::chrono::steady_clock::now();
        task.run(engine);
        const auto ended = std::chrono::steady_clock::now();
        const std::int64_t run_us = us_between(started, ended);
        service_time_us_.record_us(run_us);
        pure_service_time_us_.record_us(run_us);
        obs::record_span("serve.pure", "serve", task.trace_id, started,
                         ended);
      }
      lock.lock();
      if (got) {
        --pure_active_;
        if (pure_active_ == 0 && exclusive_claimed_) gate_cv_.notify_one();
      }
      continue;
    }

    if (stopping_ && exclusive_queue_.empty() && predict_queue_.empty() &&
        pure_queue_.empty())
      return;
  }
}

}  // namespace hg::serve
