// service.hpp — hg::serve::Service, the long-lived concurrent NAS service
// loop (the ROADMAP's "several engines answering profile/search/predict
// requests concurrently").
//
// One Service owns one api::EvalContext — one device model, one dataset,
// one supernet, one fitted predictor — and a pool of worker threads, each
// holding its own api::Engine on that context. Callers submit typed
// requests (serve/request.hpp) and get std::futures back; the service
// dispatches:
//
//   * PURE requests (predict / profile / profile_baseline) run
//     concurrently across the workers.
//   * EXCLUSIVE requests (search / train_baseline / measured-evaluator
//     predictions) run one at a time, in submission order, with the pure
//     traffic drained first — so a concurrent run's results are
//     bit-identical to submitting the same requests serially.
//   * With ServiceConfig::exclusive_slice_ms > 0, a long exclusive run
//     (search / train_baseline) is PREEMPTIBLE: it advances one step (one
//     generation / one epoch) at a time, and once a slice expires it is
//     re-parked at the front of the exclusive queue so queued pure traffic
//     interleaves — flat predict p99 under a long search — while results
//     stay bit-identical to run-to-completion (see the config field).
//   * Queued PredictLatency requests against a "predictor" evaluator are
//     coalesced: a worker drains up to ServiceConfig::max_predict_batch of
//     them and answers with ONE packed GCN forward
//     (Engine::predict_batch), which is bit-identical per element to
//     serial queries but pays the per-forward overhead once.
//
// Admission control and queue-time guarantees (all per-request, see
// serve/request.hpp):
//   * ServiceConfig::max_queue_depth bounds the pending-request queue:
//     over-limit submissions resolve immediately to RESOURCE_EXHAUSTED
//     instead of growing the queue without bound (back-pressure).
//   * A request whose RequestOptions::deadline passes while it is still
//     queued resolves to DEADLINE_EXCEEDED without running.
//   * A request whose RequestOptions::cancel flag is set before it starts
//     resolves to CANCELLED without running.
//   * ServiceConfig::predict_window_us makes a worker that picks up a
//     lone coalescible PredictLatency wait up to the window for more to
//     arrive before firing the packed forward, so remote trickle traffic
//     still batches. 0 preserves the drain-what-is-queued behavior
//     bit-exactly.
//
// Lifecycle: create() -> submit() from any thread -> shutdown() (drains
// queued work, joins the workers; the destructor calls it too). After
// shutdown, submit() resolves immediately to FAILED_PRECONDITION.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/engine.hpp"
#include "api/eval_context.hpp"
#include "api/status.hpp"
#include "core/annotations.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/request.hpp"

namespace hg::serve {

struct ServiceConfig {
  /// Worker threads (each with its own Engine on the shared context).
  std::int64_t num_workers = 2;
  /// Most PredictLatency requests coalesced into one packed forward.
  /// 1 disables coalescing (every query is its own forward).
  std::int64_t max_predict_batch = 16;
  /// Bound on the number of *queued* (admitted, not yet started)
  /// requests across all three queues. A submission that would exceed it
  /// resolves immediately to RESOURCE_EXHAUSTED. 0 = unbounded.
  std::int64_t max_queue_depth = 0;
  /// Time-based predict-coalescing window (microseconds): a worker about
  /// to fire a packed forward with fewer than max_predict_batch queries
  /// waits until the *oldest* queued query has aged this long, giving
  /// trickle traffic (one request per connection round-trip) a chance to
  /// coalesce. 0 = fire immediately with whatever is queued (the
  /// historical behavior, bit-exactly). The window is an *upper bound*
  /// on coalescing delay: when pure work is queued and no other worker
  /// is free to take it (always true with num_workers == 1), the window
  /// fires early instead of sleeping on top of runnable work.
  std::int64_t predict_window_us = 0;
  /// Non-empty: enable request-scoped tracing (obs::TraceCollector) for
  /// this service's lifetime and write the collected spans as Chrome
  /// trace_event JSON to this path at shutdown. The collector is
  /// process-global; the first service configured with a path owns the
  /// start/export. Empty (the default) = tracing off — every trace site
  /// is one relaxed atomic load.
  std::string trace_path{};
  /// Exclusive-task time slice (milliseconds). 0 = run-to-completion (the
  /// historical scheduler, bit-exactly). > 0: search / train_baseline run
  /// stepwise (one generation / one epoch per step); once a slice expires
  /// at a step boundary the task is re-parked at the FRONT of the
  /// exclusive queue — exclusives stay FIFO and the shared-context RNG
  /// stream is consumed in submission order, so results are bit-identical
  /// to run-to-completion for ANY slice value — and queued pure work gets
  /// a dispatch round before it resumes. Cancel and deadline are also
  /// checked between steps, so a mid-run cancel / expiry resolves within
  /// one step instead of when the whole run ends.
  std::int64_t exclusive_slice_ms = 0;
};

/// Cumulative counters (monotone except queue_depth; snapshot via
/// Service::stats()). This struct is a THIN VIEW over the service's
/// obs::Registry instruments — stats() reads the registered counters and
/// histograms, so this local struct and the wire's kStats snapshot
/// (Service::metrics_snapshot) can never drift.
struct ServiceStats {
  std::int64_t requests = 0;            // everything submitted
  std::int64_t exclusive_requests = 0;  // ran on the exclusive FIFO path
  std::int64_t predict_requests = 0;    // PredictLatency submissions
  std::int64_t predict_batches = 0;     // packed forwards actually run
  std::int64_t max_predict_batch = 0;   // largest coalesced batch seen
  std::int64_t queue_depth = 0;         // live: admitted, not yet started
  std::int64_t rejected_requests = 0;   // refused: bounded queue was full
  std::int64_t deadline_expired = 0;    // expired while queued or mid-run
  std::int64_t cancelled_requests = 0;  // cancelled while queued or mid-run
  std::int64_t pings = 0;               // health probes answered (net)
  std::int64_t sheds_with_hint = 0;     // refusals sent with retry_after_us
  std::int64_t drain_started = 0;       // drain() transitions (0 or 1)
  // Latency distribution snapshots (microseconds; each value is the upper
  // bound of the log-linear bucket holding the quantile, so it is exact to
  // within ~25% — see obs::Histogram). queue_wait covers admission ->
  // dispatch for every queued request; service_time covers the execution
  // of one unit of work (one task, or one packed predict forward).
  std::int64_t queue_wait_p50_us = 0;
  std::int64_t queue_wait_p99_us = 0;
  std::int64_t service_time_p50_us = 0;
  std::int64_t service_time_p99_us = 0;
  // Slice-scheduler counters (all 0 while exclusive_slice_ms == 0):
  std::int64_t exclusive_slices = 0;       // sliced dispatches (first+resumed)
  std::int64_t exclusive_preemptions = 0;  // re-parked at slice expiry
  std::int64_t exclusive_resumes = 0;      // dispatches of a preempted task
  // The same distributions split by request kind: pure covers predict /
  // profile / profile_baseline (and packed predict forwards), exclusive
  // covers search / train_baseline / measured-evaluator traffic. A
  // preempted exclusive records one wait and one service-time sample per
  // dispatch (each slice waited and ran separately).
  std::int64_t pure_queue_wait_p50_us = 0;
  std::int64_t pure_queue_wait_p99_us = 0;
  std::int64_t pure_service_time_p50_us = 0;
  std::int64_t pure_service_time_p99_us = 0;
  std::int64_t exclusive_queue_wait_p50_us = 0;
  std::int64_t exclusive_queue_wait_p99_us = 0;
  std::int64_t exclusive_service_time_p50_us = 0;
  std::int64_t exclusive_service_time_p99_us = 0;
};

/// The serve-layer latency histogram is the obs one: lock-free log-linear
/// microsecond buckets (4 sub-buckets per octave; quantiles exact to
/// within ~25% — see obs::Histogram for the layout).
using LatencyHistogram = obs::Histogram;

/// One preemptible unit of exclusive work, advanced a step at a time (one
/// search generation / one training epoch) between slice-expiry checks.
/// step() must not throw: failures are captured inside the run and reported
/// when finish() resolves the request's promise.
class Steppable {
 public:
  virtual ~Steppable() = default;
  /// Advance one step; false once the run has finished (successfully or
  /// not).
  virtual bool step() = 0;
  /// Resolve the request's promise with the run's result (or captured
  /// error). Call exactly once, after step() returned false.
  virtual void finish() = 0;
  /// Resolve the request's promise with `status` (mid-run cancel /
  /// deadline expiry). The partially-advanced run is discarded.
  virtual void abort(const api::Status& status) = 0;
};

class Service {
 public:
  /// Build the context from `cfg` (for "predictor" this fits the latency
  /// predictor — the expensive step), then start the workers.
  static api::Result<std::shared_ptr<Service>> create(
      const api::EngineConfig& cfg, const ServiceConfig& service_cfg = {});

  /// Start the workers on an existing shared context (e.g. one built by
  /// EvalContext::create_many for a device fleet). `cfg` must be
  /// context-compatible with `ctx`.
  static api::Result<std::shared_ptr<Service>> create(
      const api::EngineConfig& cfg, std::shared_ptr<api::EvalContext> ctx,
      const ServiceConfig& service_cfg = {});

  /// shutdown() + join.
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  // ---- request submission (thread-safe, non-blocking) ----
  std::future<api::Result<api::SearchReport>> submit(SearchRequest req);
  std::future<api::Result<api::LatencyReport>> submit(
      PredictLatencyRequest req);
  /// One unit of work, one packed forward, per-element results (see
  /// PredictBatchRequest). An admission refusal (shutdown / draining /
  /// queue full) resolves every element with that status.
  std::future<std::vector<api::Result<api::LatencyReport>>> submit(
      PredictBatchRequest req);
  std::future<api::Result<api::ProfileReport>> submit(ProfileRequest req);
  std::future<api::Result<api::ProfileReport>> submit(
      ProfileBaselineRequest req);
  std::future<api::Result<api::TrainReport>> submit(TrainBaselineRequest req);

  /// Stop accepting requests, finish everything already queued, join the
  /// workers. Idempotent; safe from any thread (not from a worker).
  void shutdown();

  /// Stop ADMITTING requests (further submissions resolve UNAVAILABLE
  /// "service is draining") while the workers keep running everything
  /// already queued. Non-blocking and idempotent; the graceful first half
  /// of shutdown() — call shutdown() afterwards to join the workers.
  void drain();
  bool draining() const;

  /// Net-layer stat recorders (the wire front end answers pings and
  /// attaches retry_after_us hints itself; the counters live here so one
  /// snapshot tells the whole story).
  void record_ping();
  void record_shed_hint();

  ServiceStats stats() const;

  /// This service's instrument registry. The net front end registers its
  /// "net.*" counters here so one snapshot tells the whole story; each
  /// Service owns its own registry (two services in one process must not
  /// merge their queues' counters).
  obs::Registry& registry() { return *registry_; }

  /// The full flattened metrics snapshot — every registered instrument
  /// (serve.*, plus whatever the owner registered) and the live
  /// "serve.queue_depth". This is what the wire's kStats frame answers
  /// and what obs::render_snapshot pretty-prints.
  obs::Snapshot metrics_snapshot() const;

  const std::shared_ptr<api::EvalContext>& context() const { return ctx_; }
  const api::EngineConfig& config() const { return base_cfg_; }

 private:
  Service() = default;

  /// One admitted request parked on the pure or exclusive queue. `run`
  /// resolves the promise with the verb's Result; `fail` resolves it with
  /// an admission-side Status (expiry / cancellation) without running.
  /// Both fire the request's notify hook.
  struct QueuedTask {
    std::function<void(api::Engine&)> run;
    std::function<void(const api::Status&)> fail;
    /// Set for the sliceable exclusive verbs (search / train_baseline):
    /// builds the stepwise form of `run` on first dispatch. Only consulted
    /// when ServiceConfig::exclusive_slice_ms > 0 — with slicing off,
    /// `run` executes monolithically, bit-exactly the historical
    /// scheduler.
    std::function<std::unique_ptr<Steppable>(api::Engine&)> make_steppable;
    /// The in-flight stepwise run of a preempted task, carried across its
    /// re-park at the front of the exclusive queue.
    std::unique_ptr<Steppable> steppable;
    std::chrono::steady_clock::time_point deadline;
    std::shared_ptr<std::atomic<bool>> cancel;
    std::chrono::steady_clock::time_point enqueued_at;  // queue-wait histo
    /// Trace attribution: the submitter's RequestOptions::trace_id (the
    /// wire request id for remote work), or a fresh local id when tracing
    /// is enabled; 0 = unattributed.
    std::uint64_t trace_id = 0;
  };

  /// How enqueue() disposed of a submission.
  enum class Admission { kAccepted, kShutDown, kQueueFull, kDraining };

  void start_workers(std::int64_t n);
  void worker_loop(std::size_t worker_index);

  /// Admit `task` to the pure or exclusive queue, bumping the request
  /// counters (incl. predict_requests when `count_predict`) atomically
  /// with admission. `count` is the number of logical requests the task
  /// carries (> 1 for a PredictBatchRequest, which still occupies one
  /// queue slot). Non-accepted submissions bump rejected_requests / leave
  /// the queue untouched; the caller resolves the future.
  Admission enqueue(QueuedTask task, bool exclusive,
                    bool count_predict = false, std::int64_t count = 1);

  /// The common submit shape: park `fn` on a queue, resolve its promise
  /// with the Result it returns — or with FAILED_PRECONDITION /
  /// RESOURCE_EXHAUSTED when the submission is not admitted. Defined in
  /// service.cpp (instantiated for the facade report types only).
  template <typename T>
  std::future<api::Result<T>> submit_task(
      std::function<api::Result<T>(api::Engine&)> fn, RequestOptions opts,
      bool exclusive, bool count_predict = false,
      std::function<std::unique_ptr<Steppable>(
          api::Engine&, std::function<void(api::Result<T>)>)>
          make_run = {});

  /// Pops the task at the queue front, moving every leading task that is
  /// cancelled or expired into `failed` (with the Status to resolve it
  /// with) and bumping the matching counters. Runs entirely under the
  /// caller's lock — it never releases mutex_, so the dispatch decision
  /// that follows (claiming exclusivity, bumping pure_active_) stays
  /// atomic with the pop; the caller resolves `failed` outside the lock.
  /// Returns false when the queue is drained.
  /// `kind_wait` additionally receives the queue-wait sample in the
  /// per-kind (pure vs exclusive) histogram for the queue being popped.
  bool pop_runnable(std::deque<QueuedTask>& queue,
                    std::vector<std::pair<QueuedTask, api::Status>>* failed,
                    QueuedTask* out, LatencyHistogram& kind_wait)
      HG_REQUIRES(queue_mutex_);

  /// True when every other worker is busy (with one worker, always): queued
  /// pure work then has nobody to run it but the caller.
  bool no_free_worker() const HG_REQUIRES(queue_mutex_) {
    return service_cfg_.num_workers - 1 - pure_active_ <= 0;
  }

  struct PredictTask {
    api::Arch arch;
    std::shared_ptr<std::promise<api::Result<api::LatencyReport>>> promise;
    RequestOptions opts;
    std::chrono::steady_clock::time_point enqueued_at;
  };

  api::EngineConfig base_cfg_;
  ServiceConfig service_cfg_;
  std::shared_ptr<api::EvalContext> ctx_;
  bool coalesce_predictions_ = false;  // evaluator "predictor"
  bool measured_evaluator_ = false;    // evaluator "measured" (stateful)

  /// The per-service instrument registry, plus handles resolved once here
  /// (registry references are stable for its lifetime — obs::Registry).
  /// Every bump is one relaxed atomic: submissions, completions and the
  /// net layer's ping/shed recording never touch the queue lock.
  /// queue_depth is the one ServiceStats field without an instrument — it
  /// is derived from the queue sizes under queue_mutex_ at snapshot time.
  /// Declaration order matters: registry_ first, handles after.
  std::shared_ptr<obs::Registry> registry_ =
      std::make_shared<obs::Registry>();
  struct Counters {
    obs::Registry& r;
    obs::Counter& requests = r.counter("serve.requests");
    obs::Counter& exclusive_requests = r.counter("serve.exclusive_requests");
    obs::Counter& predict_requests = r.counter("serve.predict_requests");
    obs::Counter& predict_batches = r.counter("serve.predict_batches");
    obs::Gauge& max_predict_batch = r.gauge("serve.max_predict_batch");
    obs::Counter& rejected_requests = r.counter("serve.rejected_requests");
    obs::Counter& deadline_expired = r.counter("serve.deadline_expired");
    obs::Counter& cancelled_requests = r.counter("serve.cancelled_requests");
    obs::Counter& pings = r.counter("serve.pings");
    obs::Counter& sheds_with_hint = r.counter("serve.sheds_with_hint");
    obs::Counter& drain_started = r.counter("serve.drain_started");
    obs::Counter& exclusive_slices = r.counter("serve.exclusive_slices");
    obs::Counter& exclusive_preemptions =
        r.counter("serve.exclusive_preemptions");
    obs::Counter& exclusive_resumes = r.counter("serve.exclusive_resumes");
  };

  core::Mutex shutdown_mutex_;  // serializes shutdown() callers only
  // The queue lock: it guards exactly the queues and the dispatch flags
  // below. Stats live in lock-free Counters/LatencyHistogram members, so
  // a stat bump never contends with dispatch.
  mutable core::Mutex queue_mutex_;
  // Targeted wakeups (all wait via UniqueMutexLock over queue_mutex_):
  //   work_cv_   — workers parked for dispatchable work. Every enqueue
  //                wakes exactly one worker (notify_one); the broadcast
  //                cases are exclusive-claim release (it gated everybody)
  //                and shutdown.
  //   gate_cv_   — the single exclusive claimant waiting out in-flight
  //                pure work; signalled when pure_active_ drops to 0 with
  //                a claim pending.
  //   window_cv_ — the single predict-window waiter; signalled on any
  //                enqueue (an arrival can satisfy its early-fire
  //                conditions) and on shutdown.
  std::condition_variable_any work_cv_;
  std::condition_variable_any gate_cv_;
  std::condition_variable_any window_cv_;
  std::deque<QueuedTask> pure_queue_ HG_GUARDED_BY(queue_mutex_);
  std::deque<QueuedTask> exclusive_queue_ HG_GUARDED_BY(queue_mutex_);
  std::deque<PredictTask> predict_queue_ HG_GUARDED_BY(queue_mutex_);
  std::int64_t pure_active_ HG_GUARDED_BY(queue_mutex_) = 0;
  // A worker owns the next exclusive task.
  bool exclusive_claimed_ HG_GUARDED_BY(queue_mutex_) = false;
  // A worker is waiting out predict_window_us on the coalescing queue;
  // the other workers treat that queue as unclaimable meanwhile and
  // serve pure traffic instead (when none of them is free and pure work
  // is queued, the window fires early — see worker_loop).
  bool predict_window_waiter_ HG_GUARDED_BY(queue_mutex_) = false;
  bool stopping_ HG_GUARDED_BY(queue_mutex_) = false;
  bool draining_ HG_GUARDED_BY(queue_mutex_) = false;
  Counters counters_{*registry_};  // lock-free bumps
  // Histogram handles (same registry; all lock-free record_us):
  // admission -> dispatch, one unit of work, and the same two
  // distributions split by request kind (pure vs exclusive) — every
  // sample in the first pair also lands in exactly one of the others.
  LatencyHistogram& queue_wait_us_ =
      registry_->histogram("serve.queue_wait_us");
  LatencyHistogram& service_time_us_ =
      registry_->histogram("serve.service_time_us");
  LatencyHistogram& pure_queue_wait_us_ =
      registry_->histogram("serve.pure_queue_wait_us");
  LatencyHistogram& exclusive_queue_wait_us_ =
      registry_->histogram("serve.exclusive_queue_wait_us");
  LatencyHistogram& pure_service_time_us_ =
      registry_->histogram("serve.pure_service_time_us");
  LatencyHistogram& exclusive_service_time_us_ =
      registry_->histogram("serve.exclusive_service_time_us");
  // This service started the global trace collector (trace_path set):
  // shutdown() exports and stops it.
  bool trace_owner_ = false;

  // Written single-threaded in create() before the workers exist, then
  // only read (worker i owns engines_[i]); workers_ is joined under
  // shutdown_mutex_. Neither needs mutex_.
  std::vector<api::Engine> engines_;  // one per worker, fixed at create
  std::vector<std::thread> workers_;
};

}  // namespace hg::serve
