// service.hpp — hg::serve::Service, the long-lived concurrent NAS service
// loop (the ROADMAP's "several engines answering profile/search/predict
// requests concurrently").
//
// One Service owns one api::EvalContext — one device model, one dataset,
// one supernet, one fitted predictor — and a pool of worker threads, each
// holding its own api::Engine on that context. Callers submit typed
// requests (serve/request.hpp) and get std::futures back; the service
// dispatches:
//
//   * PURE requests (predict / profile / profile_baseline) run
//     concurrently across the workers.
//   * EXCLUSIVE requests (search / train_baseline / measured-evaluator
//     predictions) run one at a time, in submission order, with the pure
//     traffic drained first — so a concurrent run's results are
//     bit-identical to submitting the same requests serially.
//   * Queued PredictLatency requests against a "predictor" evaluator are
//     coalesced: a worker drains up to ServiceConfig::max_predict_batch of
//     them and answers with ONE packed GCN forward
//     (Engine::predict_batch), which is bit-identical per element to
//     serial queries but pays the per-forward overhead once.
//
// Lifecycle: create() -> submit() from any thread -> shutdown() (drains
// queued work, joins the workers; the destructor calls it too). After
// shutdown, submit() resolves immediately to FAILED_PRECONDITION.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "api/eval_context.hpp"
#include "api/status.hpp"
#include "serve/request.hpp"

namespace hg::serve {

struct ServiceConfig {
  /// Worker threads (each with its own Engine on the shared context).
  std::int64_t num_workers = 2;
  /// Most PredictLatency requests coalesced into one packed forward.
  /// 1 disables coalescing (every query is its own forward).
  std::int64_t max_predict_batch = 16;
};

/// Cumulative counters (monotone; snapshot via Service::stats()).
struct ServiceStats {
  std::int64_t requests = 0;            // everything submitted
  std::int64_t exclusive_requests = 0;  // ran on the exclusive FIFO path
  std::int64_t predict_requests = 0;    // PredictLatency submissions
  std::int64_t predict_batches = 0;     // packed forwards actually run
  std::int64_t max_predict_batch = 0;   // largest coalesced batch seen
};

class Service {
 public:
  /// Build the context from `cfg` (for "predictor" this fits the latency
  /// predictor — the expensive step), then start the workers.
  static api::Result<std::shared_ptr<Service>> create(
      const api::EngineConfig& cfg, const ServiceConfig& service_cfg = {});

  /// Start the workers on an existing shared context (e.g. one built by
  /// EvalContext::create_many for a device fleet). `cfg` must be
  /// context-compatible with `ctx`.
  static api::Result<std::shared_ptr<Service>> create(
      const api::EngineConfig& cfg, std::shared_ptr<api::EvalContext> ctx,
      const ServiceConfig& service_cfg = {});

  /// shutdown() + join.
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  // ---- request submission (thread-safe, non-blocking) ----
  std::future<api::Result<api::SearchReport>> submit(SearchRequest req);
  std::future<api::Result<api::LatencyReport>> submit(
      PredictLatencyRequest req);
  std::future<api::Result<api::ProfileReport>> submit(ProfileRequest req);
  std::future<api::Result<api::ProfileReport>> submit(
      ProfileBaselineRequest req);
  std::future<api::Result<api::TrainReport>> submit(TrainBaselineRequest req);

  /// Stop accepting requests, finish everything already queued, join the
  /// workers. Idempotent; safe from any thread (not from a worker).
  void shutdown();

  ServiceStats stats() const;
  const std::shared_ptr<api::EvalContext>& context() const { return ctx_; }
  const api::EngineConfig& config() const { return base_cfg_; }

 private:
  Service() = default;

  void start_workers(std::int64_t n);
  void worker_loop(std::size_t worker_index);

  /// Enqueue `fn` on the pure or exclusive queue, bumping the request
  /// counters (incl. predict_requests when `count_predict`) atomically
  /// with admission; returns false (caller resolves the future to
  /// FAILED_PRECONDITION) after shutdown.
  bool enqueue(std::function<void(api::Engine&)> fn, bool exclusive,
               bool count_predict = false);

  /// The common submit shape: park `fn` on a queue, resolve its promise
  /// with the Result it returns — or with FAILED_PRECONDITION when the
  /// service is already shut down. Defined in service.cpp (instantiated
  /// for the facade report types only).
  template <typename T>
  std::future<api::Result<T>> submit_task(
      std::function<api::Result<T>(api::Engine&)> fn, bool exclusive,
      bool count_predict = false);

  struct PredictTask {
    api::Arch arch;
    std::shared_ptr<std::promise<api::Result<api::LatencyReport>>> promise;
  };

  api::EngineConfig base_cfg_;
  ServiceConfig service_cfg_;
  std::shared_ptr<api::EvalContext> ctx_;
  bool coalesce_predictions_ = false;  // evaluator "predictor"
  bool measured_evaluator_ = false;    // evaluator "measured" (stateful)

  std::mutex shutdown_mutex_;  // serializes shutdown() callers only
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void(api::Engine&)>> pure_queue_;
  std::deque<std::function<void(api::Engine&)>> exclusive_queue_;
  std::deque<PredictTask> predict_queue_;
  std::int64_t pure_active_ = 0;
  bool exclusive_claimed_ = false;  // a worker owns the next exclusive task
  bool stopping_ = false;
  ServiceStats stats_;

  std::vector<api::Engine> engines_;  // one per worker, fixed at create
  std::vector<std::thread> workers_;
};

}  // namespace hg::serve
