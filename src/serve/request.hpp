// request.hpp — the typed request vocabulary of the hg::serve layer.
//
// A serve::Service answers five kinds of long-lived-loop requests, one
// struct each. Submitting a request returns a std::future carrying the
// same Result<T> the matching Engine verb would return, so a caller
// migrating from direct engine calls keeps its error handling unchanged.
//
// Scheduling class (decided by the service, not the caller):
//  * PURE requests — PredictLatency, Profile, ProfileBaseline — touch only
//    immutable or internally-synchronized context state and run
//    concurrently across the worker pool, in any order.
//  * EXCLUSIVE requests — Search, TrainBaseline, and PredictLatency when
//    the service's evaluator is "measured" (its noise stream is shared
//    state) — consume the context RNG or mutate the supernet, so the
//    service runs them one at a time, in submission order. That FIFO
//    ordering is what makes a concurrent run's results bit-identical to a
//    serial one.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/config.hpp"
#include "api/engine.hpp"

namespace hg::serve {

/// Per-request scheduling options, honored by the service for every
/// request type. All fields are optional; default-constructed options
/// reproduce the historical behavior exactly.
struct RequestOptions {
  /// Absolute point after which the request must not *start*: a request
  /// still queued when its deadline passes resolves to DEADLINE_EXCEEDED
  /// without running (and without consuming any context RNG). With
  /// ServiceConfig::exclusive_slice_ms == 0 a request already running is
  /// never interrupted — the deadline bounds queue time, not execution
  /// time. With slicing enabled, a sliced exclusive run (search /
  /// train_baseline) additionally checks the deadline between steps and
  /// resolves DEADLINE_EXCEEDED mid-run, within one generation / epoch;
  /// the partially-advanced run is discarded (the shared-context RNG it
  /// consumed stays consumed). max() = no deadline.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();

  /// Cooperative cancellation for queued requests: set the flag (any
  /// thread) and a request not yet started resolves to CANCELLED instead
  /// of running. With ServiceConfig::exclusive_slice_ms > 0 the flag is
  /// also checked between the steps of a sliced exclusive run, so a
  /// mid-search cancel resolves within one generation. net::Server uses
  /// one flag per connection so a client disconnect abandons that
  /// connection's still-queued (or sliced in-flight) work.
  std::shared_ptr<std::atomic<bool>> cancel;

  /// Invoked exactly once, after the request's promise has been resolved
  /// (with a result, an admission error, expiry, or cancellation). Lets a
  /// poll-based caller (net::Server's self-pipe) learn about completion
  /// without blocking on the future. Must be cheap and must not call back
  /// into the service.
  std::function<void()> notify;

  /// Trace attribution for this request's spans (obs::TraceCollector):
  /// net::Server sets it to the wire frame's request id so a remote call's
  /// server-side spans carry the id the client chose. 0 (the default) =
  /// let the service assign a process-local id when tracing is enabled.
  std::uint64_t trace_id = 0;
};

/// Run a full NAS search on the service's context. `cfg` overrides the
/// service's engine config for this one request (strategy, objective,
/// constraints, search scale); its context-shaping fields must match the
/// service's (api::context_compatible) or the future resolves to
/// INVALID_ARGUMENT. Unset: the service's config as-is.
struct SearchRequest {
  std::optional<api::EngineConfig> cfg;
  RequestOptions opts{};
};

/// One latency query through the service's configured evaluator. With
/// evaluator "predictor", queued requests are coalesced into one packed
/// GCN forward (Engine::predict_batch) — the answer is bit-identical to an
/// uncoalesced query, only cheaper. ServiceConfig::predict_window_us adds
/// a time window so trickle traffic coalesces too.
struct PredictLatencyRequest {
  api::Arch arch;
  RequestOptions opts{};
};

/// N latency queries submitted as ONE unit of work: the whole batch is
/// fed straight into Engine::predict_batch (the packed block-diagonal
/// forward) instead of being queued as N separate requests. The future
/// resolves with one Result per arch, in submission order; a bad element
/// fails alone (the service falls back to lone queries when the packed
/// forward rejects the batch), so every answer is bit-identical to an
/// uncoalesced submission. This is what the wire's multi-predict frame
/// (net::FrameType::kPredictBatchN) lands on. Stats count the batch as
/// archs.size() predict requests but one queue slot.
struct PredictBatchRequest {
  std::vector<api::Arch> archs;
  RequestOptions opts{};
};

/// Deterministic deployment report on the service's device model.
struct ProfileRequest {
  api::Arch arch;
  RequestOptions opts{};
};

/// The profile report for a named reference network ("dgcnn", "li",
/// "tailor", zoo entries), optionally at an explicit workload.
struct ProfileBaselineRequest {
  std::string name;
  std::optional<api::Workload> workload;
  RequestOptions opts{};
};

/// Train a CPU-scale instance of a named baseline on the service's
/// dataset.
struct TrainBaselineRequest {
  std::string name;
  RequestOptions opts{};
};

}  // namespace hg::serve
