#include "net/protocol.hpp"

#include <bit>
#include <cstring>
#include <string>
#include <utility>

namespace hg::net {

// ---- framing ---------------------------------------------------------------

namespace {

void put_le(std::string* out, std::uint64_t v, std::size_t bytes) {
  for (std::size_t i = 0; i < bytes; ++i)
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint64_t get_le(const char* p, std::size_t bytes) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bytes; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  return v;
}

}  // namespace

void encode_header(const FrameHeader& h, std::string* out) {
  put_le(out, h.magic, 4);
  put_le(out, h.version, 2);
  put_le(out, h.type, 2);
  put_le(out, h.request_id, 8);
  put_le(out, h.deadline_us, 8);
  put_le(out, h.payload_len, 4);
}

bool decode_header(const char* bytes, std::size_t len, FrameHeader* out) {
  return decode_header_ex(bytes, len, out) == HeaderDecode::kOk;
}

HeaderDecode decode_header_ex(const char* bytes, std::size_t len,
                              FrameHeader* out) {
  if (len < kHeaderSize) return HeaderDecode::kTruncated;
  out->magic = static_cast<std::uint32_t>(get_le(bytes, 4));
  out->version = static_cast<std::uint16_t>(get_le(bytes + 4, 2));
  out->type = static_cast<std::uint16_t>(get_le(bytes + 6, 2));
  out->request_id = get_le(bytes + 8, 8);
  out->deadline_us = get_le(bytes + 16, 8);
  out->payload_len = static_cast<std::uint32_t>(get_le(bytes + 24, 4));
  if (out->magic != kMagic) return HeaderDecode::kBadMagic;
  if (out->version != kProtocolVersion) return HeaderDecode::kBadVersion;
  if (out->payload_len > kMaxPayloadBytes) return HeaderDecode::kOversized;
  return HeaderDecode::kOk;
}

std::string encode_version_farewell(const FrameHeader& peer) {
  // v1 status layout (code + message, no retry_after_us): the oldest
  // layout every version can parse, framed with the PEER's claimed
  // version so its decoder accepts the header.
  Writer w;
  w.u32(static_cast<std::uint32_t>(api::StatusCode::kFailedPrecondition));
  w.str("protocol version mismatch: peer speaks v" +
        std::to_string(peer.version) + ", server speaks v" +
        std::to_string(kProtocolVersion) + "; upgrade the client");
  FrameHeader h;
  h.version = peer.version;
  h.type = static_cast<std::uint16_t>(peer.type | kReplyBit);
  h.request_id = peer.request_id;
  h.payload_len = static_cast<std::uint32_t>(w.bytes().size());
  std::string out;
  out.reserve(kHeaderSize + w.bytes().size());
  encode_header(h, &out);
  out.append(w.bytes());
  return out;
}

std::string encode_frame(FrameType type, bool reply, std::uint64_t request_id,
                         std::uint64_t deadline_us,
                         const std::string& payload) {
  FrameHeader h;
  h.type = static_cast<std::uint16_t>(type);
  if (reply) h.type |= kReplyBit;
  h.request_id = request_id;
  h.deadline_us = deadline_us;
  h.payload_len = static_cast<std::uint32_t>(payload.size());
  std::string out;
  out.reserve(kHeaderSize + payload.size());
  encode_header(h, &out);
  out.append(payload);
  return out;
}

// ---- Writer ----------------------------------------------------------------

void Writer::u8(std::uint8_t v) { put_le(&buf_, v, 1); }
void Writer::u16(std::uint16_t v) { put_le(&buf_, v, 2); }
void Writer::u32(std::uint32_t v) { put_le(&buf_, v, 4); }
void Writer::u64(std::uint64_t v) { put_le(&buf_, v, 8); }
void Writer::i64(std::int64_t v) {
  put_le(&buf_, static_cast<std::uint64_t>(v), 8);
}
void Writer::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
void Writer::boolean(bool v) { u8(v ? 1 : 0); }
void Writer::str(const std::string& v) {
  u32(static_cast<std::uint32_t>(v.size()));
  buf_.append(v);
}

// ---- Reader ----------------------------------------------------------------

bool Reader::take(std::size_t n, const char** out) {
  if (failed_ || n > len_ - pos_) {
    failed_ = true;
    return false;
  }
  *out = data_ + pos_;
  pos_ += n;
  return true;
}

bool Reader::u8(std::uint8_t* v) {
  const char* p = nullptr;
  if (!take(1, &p)) return false;
  *v = static_cast<std::uint8_t>(get_le(p, 1));
  return true;
}
bool Reader::u16(std::uint16_t* v) {
  const char* p = nullptr;
  if (!take(2, &p)) return false;
  *v = static_cast<std::uint16_t>(get_le(p, 2));
  return true;
}
bool Reader::u32(std::uint32_t* v) {
  const char* p = nullptr;
  if (!take(4, &p)) return false;
  *v = static_cast<std::uint32_t>(get_le(p, 4));
  return true;
}
bool Reader::u64(std::uint64_t* v) {
  const char* p = nullptr;
  if (!take(8, &p)) return false;
  *v = get_le(p, 8);
  return true;
}
bool Reader::i64(std::int64_t* v) {
  std::uint64_t raw = 0;
  if (!u64(&raw)) return false;
  *v = static_cast<std::int64_t>(raw);
  return true;
}
bool Reader::f64(double* v) {
  std::uint64_t raw = 0;
  if (!u64(&raw)) return false;
  *v = std::bit_cast<double>(raw);
  return true;
}
bool Reader::boolean(bool* v) {
  std::uint8_t raw = 0;
  if (!u8(&raw)) return false;
  *v = raw != 0;
  return true;
}
bool Reader::str(std::string* v) {
  std::uint32_t n = 0;
  if (!u32(&n)) return false;
  const char* p = nullptr;
  if (!take(n, &p)) return false;  // length prefix may not overrun payload
  v->assign(p, n);
  return true;
}

// ---- vocabulary codecs -----------------------------------------------------
//
// Gene fields travel as i64 (their in-memory width): codecs stay
// structural, so even an out-of-range enum value round-trips and the
// engine rejects it with the same INVALID_ARGUMENT a local call produces.

void encode_arch(const api::Arch& arch, Writer* w) {
  w->u32(static_cast<std::uint32_t>(arch.genes.size()));
  for (const hgnas::PositionGene& g : arch.genes) {
    w->i64(static_cast<std::int64_t>(g.op));
    w->i64(static_cast<std::int64_t>(g.fn.connect));
    w->i64(static_cast<std::int64_t>(g.fn.aggr));
    w->i64(static_cast<std::int64_t>(g.fn.msg));
    w->i64(g.fn.combine_dim_idx);
    w->i64(static_cast<std::int64_t>(g.fn.sample));
  }
}

bool decode_arch(Reader* r, api::Arch* out) {
  std::uint32_t n = 0;
  if (!r->u32(&n)) return false;
  out->genes.clear();
  for (std::uint32_t i = 0; i < n; ++i) {
    hgnas::PositionGene g;
    std::int64_t op = 0, connect = 0, aggr = 0, msg = 0, sample = 0;
    if (!r->i64(&op) || !r->i64(&connect) || !r->i64(&aggr) ||
        !r->i64(&msg) || !r->i64(&g.fn.combine_dim_idx) || !r->i64(&sample))
      return false;
    g.op = static_cast<hgnas::OpType>(op);
    g.fn.connect = static_cast<hgnas::ConnectFunc>(connect);
    g.fn.aggr = static_cast<hgnas::AggrType>(aggr);
    g.fn.msg = static_cast<gnn::MessageType>(msg);
    g.fn.sample = static_cast<hgnas::SampleFunc>(sample);
    out->genes.push_back(g);
  }
  return true;
}

void encode_workload(const api::Workload& wl, Writer* out) {
  out->i64(wl.num_points);
  out->i64(wl.k);
  out->i64(wl.num_classes);
  out->i64(wl.in_dim);
}

bool decode_workload(Reader* r, api::Workload* out) {
  return r->i64(&out->num_points) && r->i64(&out->k) &&
         r->i64(&out->num_classes) && r->i64(&out->in_dim);
}

namespace {

void encode_opt_f64(const std::optional<double>& v, Writer* w) {
  w->boolean(v.has_value());
  w->f64(v.value_or(0.0));
}

bool decode_opt_f64(Reader* r, std::optional<double>* out) {
  bool has = false;
  double v = 0.0;
  if (!r->boolean(&has) || !r->f64(&v)) return false;
  if (has)
    *out = v;
  else
    out->reset();
  return true;
}

}  // namespace

void encode_engine_config(const api::EngineConfig& cfg, Writer* w) {
  w->str(cfg.device);
  w->str(cfg.evaluator);
  w->str(cfg.strategy);
  w->i64(cfg.num_points);
  w->i64(cfg.k);
  w->i64(cfg.num_classes);
  w->i64(cfg.num_positions);
  w->i64(cfg.samples_per_class);
  w->i64(cfg.train_points);
  w->i64(cfg.train_k);
  w->u64(cfg.dataset_seed);
  w->i64(cfg.supernet_hidden);
  w->i64(cfg.supernet_head_hidden);
  w->i64(cfg.train_epochs);
  w->f64(static_cast<double>(cfg.train_lr));
  w->boolean(cfg.train_supernet);
  w->i64(cfg.population);
  w->i64(cfg.parents);
  w->i64(cfg.iterations);
  w->f64(cfg.alpha);
  w->f64(cfg.beta);
  w->i64(cfg.eval_val_samples);
  w->i64(cfg.function_paths_per_eval);
  w->i64(cfg.stage1_epochs);
  w->i64(cfg.stage2_epochs);
  encode_opt_f64(cfg.latency_budget_ms, w);
  encode_opt_f64(cfg.memory_budget_mb, w);
  encode_opt_f64(cfg.model_size_budget_mb, w);
  w->boolean(cfg.constrain_to_reference);
  encode_opt_f64(cfg.latency_scale_ms, w);
  w->i64(cfg.predictor_samples);
  w->i64(cfg.predictor_epochs);
  w->str(cfg.eval_cache_path);
  w->f64(cfg.sim_train_s_per_sample);
  w->f64(cfg.sim_eval_s_per_sample);
  w->u64(cfg.seed);
  w->i64(cfg.num_threads);
}

bool decode_engine_config(Reader* r, api::EngineConfig* out) {
  double train_lr = 0.0;
  bool ok = r->str(&out->device) && r->str(&out->evaluator) &&
            r->str(&out->strategy) && r->i64(&out->num_points) &&
            r->i64(&out->k) && r->i64(&out->num_classes) &&
            r->i64(&out->num_positions) && r->i64(&out->samples_per_class) &&
            r->i64(&out->train_points) && r->i64(&out->train_k) &&
            r->u64(&out->dataset_seed) && r->i64(&out->supernet_hidden) &&
            r->i64(&out->supernet_head_hidden) &&
            r->i64(&out->train_epochs) && r->f64(&train_lr) &&
            r->boolean(&out->train_supernet) && r->i64(&out->population) &&
            r->i64(&out->parents) && r->i64(&out->iterations) &&
            r->f64(&out->alpha) && r->f64(&out->beta) &&
            r->i64(&out->eval_val_samples) &&
            r->i64(&out->function_paths_per_eval) &&
            r->i64(&out->stage1_epochs) && r->i64(&out->stage2_epochs) &&
            decode_opt_f64(r, &out->latency_budget_ms) &&
            decode_opt_f64(r, &out->memory_budget_mb) &&
            decode_opt_f64(r, &out->model_size_budget_mb) &&
            r->boolean(&out->constrain_to_reference) &&
            decode_opt_f64(r, &out->latency_scale_ms) &&
            r->i64(&out->predictor_samples) &&
            r->i64(&out->predictor_epochs) && r->str(&out->eval_cache_path) &&
            r->f64(&out->sim_train_s_per_sample) &&
            r->f64(&out->sim_eval_s_per_sample) && r->u64(&out->seed) &&
            r->i64(&out->num_threads);
  out->train_lr = static_cast<float>(train_lr);
  return ok;
}

void encode_status(const api::Status& status, Writer* w,
                   std::uint64_t retry_after_us) {
  w->u32(static_cast<std::uint32_t>(status.code()));
  w->str(status.message());
  w->u64(retry_after_us);
}

bool decode_status(Reader* r, api::Status* out,
                   std::uint64_t* retry_after_us) {
  std::uint32_t code = 0;
  std::string message;
  std::uint64_t hint = 0;
  if (!r->u32(&code) || !r->str(&message) || !r->u64(&hint)) return false;
  if (retry_after_us != nullptr) *retry_after_us = hint;
  switch (static_cast<api::StatusCode>(code)) {
    case api::StatusCode::kOk:
      *out = api::Status::Ok();
      return true;
    case api::StatusCode::kInvalidArgument:
      *out = api::Status::InvalidArgument(std::move(message));
      return true;
    case api::StatusCode::kNotFound:
      *out = api::Status::NotFound(std::move(message));
      return true;
    case api::StatusCode::kFailedPrecondition:
      *out = api::Status::FailedPrecondition(std::move(message));
      return true;
    case api::StatusCode::kInternal:
      *out = api::Status::Internal(std::move(message));
      return true;
    case api::StatusCode::kDeadlineExceeded:
      *out = api::Status::DeadlineExceeded(std::move(message));
      return true;
    case api::StatusCode::kResourceExhausted:
      *out = api::Status::ResourceExhausted(std::move(message));
      return true;
    case api::StatusCode::kCancelled:
      *out = api::Status::Cancelled(std::move(message));
      return true;
    case api::StatusCode::kUnavailable:
      *out = api::Status::Unavailable(std::move(message));
      return true;
  }
  return false;  // unknown code: malformed reply
}

const char* health_state_name(HealthState state) {
  switch (state) {
    case HealthState::kAccepting:
      return "accepting";
    case HealthState::kDraining:
      return "draining";
    case HealthState::kOverloaded:
      return "overloaded";
  }
  return "unknown";
}

void encode_health_report(const HealthReport& rep, Writer* w) {
  w->u8(static_cast<std::uint8_t>(rep.state));
  w->i64(rep.queue_depth);
  w->i64(rep.workers);
  w->u64(rep.uptime_us);
}

bool decode_health_report(Reader* r, HealthReport* out) {
  std::uint8_t state = 0;
  bool ok = r->u8(&state) && r->i64(&out->queue_depth) &&
            r->i64(&out->workers) && r->u64(&out->uptime_us);
  if (!ok || state > static_cast<std::uint8_t>(HealthState::kOverloaded))
    return false;
  out->state = static_cast<HealthState>(state);
  return true;
}

void encode_stats_snapshot(const obs::Snapshot& snap, Writer* w) {
  w->u32(static_cast<std::uint32_t>(snap.size()));
  for (const auto& [name, value] : snap) {
    w->str(name);
    w->i64(value);
  }
}

bool decode_stats_snapshot(Reader* r, obs::Snapshot* out) {
  std::uint32_t count = 0;
  if (!r->u32(&count)) return false;
  // The smallest entry is 12 bytes (empty name + i64); a count the
  // remaining payload cannot hold is corrupt, not a huge map to build.
  if (count > kMaxPayloadBytes / 12) return false;
  obs::Snapshot snap;
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string name;
    std::int64_t value = 0;
    if (!r->str(&name) || !r->i64(&value)) return false;
    snap[std::move(name)] = value;
  }
  *out = std::move(snap);
  return true;
}

void encode_latency_report(const api::LatencyReport& rep, Writer* w) {
  w->f64(rep.latency_ms);
  w->f64(rep.peak_memory_mb);
  w->boolean(rep.oom);
}

bool decode_latency_report(Reader* r, api::LatencyReport* out) {
  return r->f64(&out->latency_ms) && r->f64(&out->peak_memory_mb) &&
         r->boolean(&out->oom);
}

void encode_profile_report(const api::ProfileReport& rep, Writer* w) {
  w->f64(rep.latency_ms);
  w->f64(rep.peak_memory_mb);
  w->f64(rep.energy_mj);
  w->f64(rep.param_mb);
  w->boolean(rep.oom);
  w->str(rep.breakdown);
  w->str(rep.per_op_table);
  w->u32(static_cast<std::uint32_t>(rep.category_fraction.size()));
  for (double f : rep.category_fraction) w->f64(f);
  w->f64(rep.reference_latency_ms);
  w->f64(rep.reference_memory_mb);
  w->f64(rep.speedup_vs_reference);
  w->i64(rep.search_cache_hits);
  w->i64(rep.search_cache_misses);
}

bool decode_profile_report(Reader* r, api::ProfileReport* out) {
  bool ok = r->f64(&out->latency_ms) && r->f64(&out->peak_memory_mb) &&
            r->f64(&out->energy_mj) && r->f64(&out->param_mb) &&
            r->boolean(&out->oom) && r->str(&out->breakdown) &&
            r->str(&out->per_op_table);
  std::uint32_t n = 0;
  ok = ok && r->u32(&n) && n == out->category_fraction.size();
  for (std::size_t i = 0; ok && i < out->category_fraction.size(); ++i)
    ok = r->f64(&out->category_fraction[i]);
  return ok && r->f64(&out->reference_latency_ms) &&
         r->f64(&out->reference_memory_mb) &&
         r->f64(&out->speedup_vs_reference) &&
         r->i64(&out->search_cache_hits) && r->i64(&out->search_cache_misses);
}

void encode_train_report(const api::TrainReport& rep, Writer* w) {
  w->f64(rep.overall_acc);
  w->f64(rep.balanced_acc);
  w->f64(rep.mean_loss);
  w->f64(rep.param_mb);
}

bool decode_train_report(Reader* r, api::TrainReport* out) {
  return r->f64(&out->overall_acc) && r->f64(&out->balanced_acc) &&
         r->f64(&out->mean_loss) && r->f64(&out->param_mb);
}

namespace {

void encode_function_set(const hgnas::FunctionSet& fn, Writer* w) {
  w->i64(static_cast<std::int64_t>(fn.connect));
  w->i64(static_cast<std::int64_t>(fn.aggr));
  w->i64(static_cast<std::int64_t>(fn.msg));
  w->i64(fn.combine_dim_idx);
  w->i64(static_cast<std::int64_t>(fn.sample));
}

bool decode_function_set(Reader* r, hgnas::FunctionSet* out) {
  std::int64_t connect = 0, aggr = 0, msg = 0, sample = 0;
  if (!r->i64(&connect) || !r->i64(&aggr) || !r->i64(&msg) ||
      !r->i64(&out->combine_dim_idx) || !r->i64(&sample))
    return false;
  out->connect = static_cast<hgnas::ConnectFunc>(connect);
  out->aggr = static_cast<hgnas::AggrType>(aggr);
  out->msg = static_cast<gnn::MessageType>(msg);
  out->sample = static_cast<hgnas::SampleFunc>(sample);
  return true;
}

}  // namespace

void encode_search_report(const api::SearchReport& rep, Writer* w) {
  const hgnas::SearchResult& res = rep.result;
  encode_arch(res.best_arch, w);
  encode_function_set(res.upper, w);
  encode_function_set(res.lower, w);
  w->f64(res.best_objective);
  w->f64(res.best_supernet_acc);
  w->f64(res.best_latency_ms);
  w->u32(static_cast<std::uint32_t>(res.history.size()));
  for (const hgnas::SearchEvent& e : res.history) {
    w->f64(e.sim_time_s);
    w->f64(e.best_objective);
  }
  w->f64(res.total_sim_time_s);
  w->i64(res.latency_queries);
  w->i64(res.accuracy_probes);
  w->i64(res.eval_cache_hits);
  w->i64(res.eval_cache_misses);
  w->u32(static_cast<std::uint32_t>(res.frontier.size()));
  for (const hgnas::ParetoPoint& p : res.frontier) {
    encode_arch(p.arch, w);
    w->f64(p.accuracy);
    w->f64(p.latency_ms);
  }
  w->i64(res.frontier_candidates);
  w->str(rep.visualization);
  w->str(rep.frontier_table);
}

bool decode_search_report(Reader* r, api::SearchReport* out) {
  hgnas::SearchResult& res = out->result;
  bool ok = decode_arch(r, &res.best_arch) &&
            decode_function_set(r, &res.upper) &&
            decode_function_set(r, &res.lower) &&
            r->f64(&res.best_objective) && r->f64(&res.best_supernet_acc) &&
            r->f64(&res.best_latency_ms);
  std::uint32_t n = 0;
  ok = ok && r->u32(&n);
  res.history.clear();
  for (std::uint32_t i = 0; ok && i < n; ++i) {
    hgnas::SearchEvent e;
    ok = r->f64(&e.sim_time_s) && r->f64(&e.best_objective);
    if (ok) res.history.push_back(e);
  }
  ok = ok && r->f64(&res.total_sim_time_s) && r->i64(&res.latency_queries) &&
       r->i64(&res.accuracy_probes) && r->i64(&res.eval_cache_hits) &&
       r->i64(&res.eval_cache_misses);
  ok = ok && r->u32(&n);
  res.frontier.clear();
  for (std::uint32_t i = 0; ok && i < n; ++i) {
    hgnas::ParetoPoint p;
    ok = decode_arch(r, &p.arch) && r->f64(&p.accuracy) &&
         r->f64(&p.latency_ms);
    if (ok) res.frontier.push_back(std::move(p));
  }
  return ok && r->i64(&res.frontier_candidates) &&
         r->str(&out->visualization) && r->str(&out->frontier_table);
}

// ---- request payloads ------------------------------------------------------

void encode_search_request(const std::optional<api::EngineConfig>& cfg,
                           Writer* w) {
  w->boolean(cfg.has_value());
  if (cfg) encode_engine_config(*cfg, w);
}

bool decode_search_request(Reader* r, std::optional<api::EngineConfig>* out) {
  bool has = false;
  if (!r->boolean(&has)) return false;
  if (!has) {
    out->reset();
    return true;
  }
  api::EngineConfig cfg;
  if (!decode_engine_config(r, &cfg)) return false;
  *out = std::move(cfg);
  return true;
}

void encode_predict_request(const api::Arch& arch, Writer* w) {
  encode_arch(arch, w);
}

bool decode_predict_request(Reader* r, api::Arch* out) {
  return decode_arch(r, out);
}

void encode_predict_batch_request(const std::vector<api::Arch>& archs,
                                  Writer* w) {
  w->u32(static_cast<std::uint32_t>(archs.size()));
  for (const api::Arch& a : archs) encode_arch(a, w);
}

bool decode_predict_batch_request(Reader* r, std::vector<api::Arch>* out) {
  std::uint32_t n = 0;
  if (!r->u32(&n)) return false;
  out->clear();
  for (std::uint32_t i = 0; i < n; ++i) {
    api::Arch a;
    if (!decode_arch(r, &a)) return false;
    out->push_back(std::move(a));
  }
  return true;
}

void encode_profile_baseline_request(
    const std::string& name, const std::optional<api::Workload>& workload,
    Writer* w) {
  w->str(name);
  w->boolean(workload.has_value());
  if (workload) encode_workload(*workload, w);
}

bool decode_profile_baseline_request(Reader* r, std::string* name,
                                     std::optional<api::Workload>* workload) {
  bool has = false;
  if (!r->str(name) || !r->boolean(&has)) return false;
  if (!has) {
    workload->reset();
    return true;
  }
  api::Workload wl;
  if (!decode_workload(r, &wl)) return false;
  *workload = wl;
  return true;
}

void encode_train_baseline_request(const std::string& name, Writer* w) {
  w->str(name);
}

bool decode_train_baseline_request(Reader* r, std::string* out) {
  return r->str(out);
}

std::string encode_predict_batch_reply(
    const std::vector<api::Result<api::LatencyReport>>& results,
    std::uint64_t shed_retry_after_us) {
  Writer w;
  encode_status(api::Status::Ok(), &w);
  w.u32(static_cast<std::uint32_t>(results.size()));
  for (const api::Result<api::LatencyReport>& r : results) {
    const api::Status status = r.ok() ? api::Status::Ok() : r.status();
    encode_status(status, &w,
                  status.code() == api::StatusCode::kResourceExhausted
                      ? shed_retry_after_us
                      : 0);
    if (r.ok()) encode_latency_report(r.value(), &w);
  }
  return w.take();
}

bool decode_predict_batch_reply(
    Reader* r, std::vector<api::Result<api::LatencyReport>>* out,
    std::uint64_t* retry_after_us) {
  if (retry_after_us != nullptr) *retry_after_us = 0;
  api::Status envelope;
  std::uint64_t envelope_hint = 0;
  if (!decode_status(r, &envelope, &envelope_hint)) return false;
  if (retry_after_us != nullptr) *retry_after_us = envelope_hint;
  if (!envelope.ok()) {
    // A whole-batch failure (e.g. malformed payload reported by the
    // server) still decodes: one Result per nothing.
    if (!r->exhausted()) return false;
    out->clear();
    out->push_back(envelope);
    return true;
  }
  std::uint32_t n = 0;
  if (!r->u32(&n)) return false;
  out->clear();
  for (std::uint32_t i = 0; i < n; ++i) {
    api::Status status;
    std::uint64_t hint = 0;
    if (!decode_status(r, &status, &hint)) return false;
    if (retry_after_us != nullptr && hint > *retry_after_us)
      *retry_after_us = hint;
    if (status.ok()) {
      api::LatencyReport rep;
      if (!decode_latency_report(r, &rep)) return false;
      out->push_back(rep);
    } else {
      out->push_back(status);
    }
  }
  return r->exhausted();
}

std::string errno_string(int err) {
  char buf[128] = {};
#if defined(__GLIBC__) && defined(_GNU_SOURCE)
  // GNU variant: returns the message, which may live in `buf` or in a
  // glibc-internal immutable table.
  return std::string(strerror_r(err, buf, sizeof(buf)));
#else
  // XSI variant: fills `buf`, returns 0 on success.
  if (strerror_r(err, buf, sizeof(buf)) != 0)
    return "errno " + std::to_string(err);
  return std::string(buf);
#endif
}

}  // namespace hg::net
