// chaos.hpp — net::testing::ChaosTransport, deterministic fault injection
// for the wire (the transport-level counterpart of the codec fuzz loops
// in tests/test_net.cpp).
//
// A ChaosTransport decorates a real Transport and perturbs the byte
// stream according to a seeded schedule:
//
//   * short reads/writes  — any send()/recv() may move only a random
//     prefix, so partial-frame accumulation paths run constantly;
//   * mid-frame resets    — the connection dies with EPIPE (send) or
//     ECONNRESET (recv) halfway through the header of a chosen frame,
//     leaving the peer a torn frame;
//   * header corruption   — one bit of one header byte flips in flight
//     (bad magic / version / type / id / deadline / length are all
//     reachable). Corruption is confined to HEADER bytes by design: a
//     flipped header can only produce a clean typed error, a dropped
//     connection, or an orphaned reply — never a structurally valid
//     request for a *different* computation, so "every OK answer is
//     bit-identical to local" stays assertable under chaos;
//   * stalls              — from a chosen frame on, recv() returns
//     EAGAIN forever, exactly what a peer gone silent looks like after
//     SO_RCVTIMEO expires.
//
// The shim tracks frame boundaries by parsing the ORIGINAL stream (its
// own framing bookkeeping is never corrupted), so per-frame schedules
// stay exact even under fragmentation. Faults are driven by an Rng
// seeded from ChaosConfig::seed — same seed, same byte counts, same
// fault sequence. Tests derive the seed from HG_FUZZ_SEED like the
// existing fuzz loops, so any CI failure is reproducible.
//
// Like every Transport, an instance is driven by a single thread; the
// optional ChaosStats sink is atomic and may be shared across many
// transports (e.g. one per reconnect attempt) and read from the test
// thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "net/transport.hpp"
#include "tensor/rng.hpp"

namespace hg::net::testing {

struct ChaosConfig {
  std::uint64_t seed = 1;
  /// Probability that a send()/recv() moves only a random prefix (>= 1
  /// byte) of what it could have.
  double short_io_rate = 0.0;
  /// Per outgoing frame: probability that one random bit of one random
  /// header byte flips in flight.
  double corrupt_header_rate = 0.0;
  /// Tear down the connection (EPIPE) halfway through the header of this
  /// outgoing frame (0-based; -1 = never).
  std::int64_t reset_send_at_frame = -1;
  /// Tear down the connection (ECONNRESET) halfway through the header of
  /// this incoming frame (-1 = never).
  std::int64_t reset_recv_at_frame = -1;
  /// From halfway through the header of this incoming frame on, recv()
  /// returns EAGAIN forever — a peer gone silent past SO_RCVTIMEO
  /// (-1 = never).
  std::int64_t stall_recv_at_frame = -1;
  /// Probabilistic per-frame variants of the resets (for degraded-mode
  /// benchmarking, e.g. 0.01 = 1% of frames die mid-header).
  double reset_send_rate = 0.0;
  double reset_recv_rate = 0.0;
};

/// Monotone fault counters; safe to share across transports and read
/// from another thread.
struct ChaosStats {
  std::atomic<std::int64_t> short_sends{0};
  std::atomic<std::int64_t> short_recvs{0};
  std::atomic<std::int64_t> corrupted_frames{0};
  std::atomic<std::int64_t> resets{0};
  std::atomic<std::int64_t> stalls{0};
};

class ChaosTransport final : public Transport {
 public:
  ChaosTransport(std::unique_ptr<Transport> inner, const ChaosConfig& cfg,
                 ChaosStats* stats = nullptr);

  ssize_t send(const char* data, std::size_t len) override;
  ssize_t recv(char* buf, std::size_t len) override;
  void shutdown_write() override { inner_->shutdown_write(); }
  int fd() const override { return inner_->fd(); }

 private:
  /// Per-direction frame-boundary bookkeeping over the original stream.
  struct Cursor {
    std::int64_t frame = 0;
    std::size_t offset = 0;      // bytes into the current frame
    std::size_t frame_len = 0;   // known once the header has passed
    bool len_known = false;
    bool fresh = true;           // roll this frame's fault dice on touch
    char header[32] = {};        // first kHeaderSize original bytes
    // This frame's schedule (decided once, at its first byte):
    bool reset_here = false;
    bool stall_here = false;
    bool corrupt_here = false;
    std::size_t corrupt_at = 0;  // header byte offset
    unsigned char corrupt_mask = 0;
  };

  void advance(Cursor* c, const char* data, std::size_t n);
  void roll(Cursor* c, bool sending);

  std::unique_ptr<Transport> inner_;
  ChaosConfig cfg_;
  ChaosStats* stats_;
  Rng rng_;
  Cursor tx_;
  Cursor rx_;
  bool send_dead_ = false;  // a send reset fired; EPIPE from now on
  bool recv_dead_ = false;  // a recv reset fired; ECONNRESET from now on
  bool stalled_ = false;    // a stall fired; EAGAIN from now on
};

/// TransportWrap wrapping every connection in a ChaosTransport.
/// Connection k gets seed cfg.seed + k, so reconnect attempts see
/// distinct (but still deterministic) schedules.
TransportWrap chaos_wrap(const ChaosConfig& cfg, ChaosStats* stats = nullptr);

/// Same, but only the FIRST connection is chaotic — recovery tests: the
/// fault fires once, the retry's fresh connection is clean.
TransportWrap chaos_first_connection_only(const ChaosConfig& cfg,
                                          ChaosStats* stats = nullptr);

}  // namespace hg::net::testing
