// protocol.hpp — the hg::net wire protocol (version 1).
//
// A versioned, length-prefixed binary framing that carries every
// serve::Request variant and its Result<T> reply over a byte stream, so a
// serve::Service can be queried from another process or machine. The
// protocol is deliberately dependency-free: fixed-width little-endian
// integers, IEEE-754 doubles bit-cast to u64, and length-prefixed strings.
//
// Frame layout (header is exactly kHeaderSize bytes):
//
//   offset  size  field
//        0     4  magic        0x4847'4E31 ("HGN1")
//        4     2  version      kProtocolVersion (1)
//        6     2  type         FrameType (request, or request | kReplyBit)
//        8     8  request_id   caller-chosen, echoed verbatim in the reply
//       16     8  deadline_us  queue-time budget in microseconds from
//                              server receipt; 0 = no deadline. Ignored in
//                              replies.
//       24     4  payload_len  bytes following the header
//
// Every request frame gets exactly one reply frame with the same
// request_id and type | kReplyBit; replies may arrive in any order
// (pipelined ids). A reply payload is an encoded Status followed, when the
// Status is OK, by the verb's report. The one no-reply frame is kGoodbye
// (see FrameType) — the connection close after the drain is its ack.
//
// Decoding is strictly bounds-checked: a Reader never reads past the
// payload it was given, rejects length prefixes that overrun the
// remaining bytes, and requires every payload to be fully consumed —
// truncated, oversized, or trailing-garbage payloads decode to failure,
// never to a crash or an over-read. Malformed *headers* (bad magic /
// version / oversized payload_len) cannot be recovered on a byte stream
// (framing is lost) and make the server drop the connection instead.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "api/config.hpp"
#include "api/engine.hpp"
#include "serve/request.hpp"

namespace hg::net {

inline constexpr std::uint32_t kMagic = 0x4847'4E31;  // "HGN1"
inline constexpr std::uint16_t kProtocolVersion = 1;
inline constexpr std::size_t kHeaderSize = 28;
/// Upper bound on payload_len a peer will accept. Large enough for any
/// real report (a SearchReport is a few tens of KB); small enough that a
/// corrupt length field cannot drive allocation to OOM.
inline constexpr std::uint32_t kMaxPayloadBytes = 1u << 26;  // 64 MB

/// Frame types. Requests are 1..N; the matching reply is type | kReplyBit.
enum class FrameType : std::uint16_t {
  kSearch = 1,
  kPredictLatency = 2,
  kPredictBatch = 3,
  kProfile = 4,
  kProfileBaseline = 5,
  kTrainBaseline = 6,
  /// Empty-payload, no-reply notice: "no more requests on this
  /// connection — answer what you have, then close." A pipelining client
  /// sends this before shutdown(SHUT_WR) so the server serves the
  /// already-submitted requests and flushes their replies. Without it a
  /// peer's FIN is an abandoning disconnect: the connection's
  /// still-queued requests are cancelled (a TCP FIN alone cannot say
  /// which of the two the client meant).
  kGoodbye = 7,
};
inline constexpr std::uint16_t kReplyBit = 0x80;

struct FrameHeader {
  std::uint32_t magic = kMagic;
  std::uint16_t version = kProtocolVersion;
  std::uint16_t type = 0;
  std::uint64_t request_id = 0;
  std::uint64_t deadline_us = 0;  // 0 = none
  std::uint32_t payload_len = 0;
};

/// Serialize `h` into exactly kHeaderSize bytes, appended to `out`.
void encode_header(const FrameHeader& h, std::string* out);

/// Parse a header from `bytes` (must hold >= kHeaderSize). Returns false
/// on bad magic, unknown version, or payload_len > kMaxPayloadBytes — the
/// stream is unframeable and the connection must be dropped.
bool decode_header(const char* bytes, std::size_t len, FrameHeader* out);

// ---- payload encoding ------------------------------------------------------

/// Append-only little-endian payload builder.
class Writer {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);
  void boolean(bool v);
  void str(const std::string& v);  // u32 length prefix + bytes

  const std::string& bytes() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked payload reader. Every accessor returns false once the
/// payload is exhausted or a length prefix overruns it; after the first
/// failure all subsequent reads fail too, so decoders can chain `ok &=`
/// without checking each field.
class Reader {
 public:
  Reader(const char* data, std::size_t len) : data_(data), len_(len) {}
  explicit Reader(const std::string& bytes)
      : Reader(bytes.data(), bytes.size()) {}

  bool u8(std::uint8_t* v);
  bool u16(std::uint16_t* v);
  bool u32(std::uint32_t* v);
  bool u64(std::uint64_t* v);
  bool i64(std::int64_t* v);
  bool f64(double* v);
  bool boolean(bool* v);
  bool str(std::string* v);

  /// True when every byte was consumed and no read ever failed — decoders
  /// require this so trailing garbage is rejected, not ignored.
  bool exhausted() const { return !failed_ && pos_ == len_; }
  bool failed() const { return failed_; }

 private:
  bool take(std::size_t n, const char** out);

  const char* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

// ---- vocabulary codecs -----------------------------------------------------
//
// Every encode_* appends to a Writer; every decode_* returns false on any
// malformed input (without touching *out beyond recognition). Codecs are
// structural, not semantic: field values round-trip verbatim (an
// out-of-range enum survives the trip) so a remote request fails with
// exactly the Status the same in-process request would produce.

void encode_arch(const api::Arch& arch, Writer* w);
bool decode_arch(Reader* r, api::Arch* out);

void encode_workload(const api::Workload& w, Writer* out);
bool decode_workload(Reader* r, api::Workload* out);

void encode_engine_config(const api::EngineConfig& cfg, Writer* w);
bool decode_engine_config(Reader* r, api::EngineConfig* out);

void encode_status(const api::Status& status, Writer* w);
bool decode_status(Reader* r, api::Status* out);

void encode_latency_report(const api::LatencyReport& rep, Writer* w);
bool decode_latency_report(Reader* r, api::LatencyReport* out);

void encode_profile_report(const api::ProfileReport& rep, Writer* w);
bool decode_profile_report(Reader* r, api::ProfileReport* out);

void encode_train_report(const api::TrainReport& rep, Writer* w);
bool decode_train_report(Reader* r, api::TrainReport* out);

void encode_search_report(const api::SearchReport& rep, Writer* w);
bool decode_search_report(Reader* r, api::SearchReport* out);

// ---- request payloads ------------------------------------------------------

void encode_search_request(const std::optional<api::EngineConfig>& cfg,
                           Writer* w);
bool decode_search_request(Reader* r, std::optional<api::EngineConfig>* out);

void encode_predict_request(const api::Arch& arch, Writer* w);
bool decode_predict_request(Reader* r, api::Arch* out);

void encode_predict_batch_request(const std::vector<api::Arch>& archs,
                                  Writer* w);
bool decode_predict_batch_request(Reader* r, std::vector<api::Arch>* out);

// kProfile shares the kPredictLatency payload (one arch).

void encode_profile_baseline_request(
    const std::string& name, const std::optional<api::Workload>& workload,
    Writer* w);
bool decode_profile_baseline_request(Reader* r, std::string* name,
                                     std::optional<api::Workload>* workload);

void encode_train_baseline_request(const std::string& name, Writer* w);
bool decode_train_baseline_request(Reader* r, std::string* out);

// ---- reply payloads --------------------------------------------------------
//
// A reply is encode_status(...) then, iff OK, the report. The typed
// helpers below build / parse the whole payload.

template <typename T, typename EncodeFn>
std::string encode_reply(const api::Result<T>& result, EncodeFn encode) {
  Writer w;
  encode_status(result.ok() ? api::Status::Ok() : result.status(), &w);
  if (result.ok()) encode(result.value(), &w);
  return w.take();
}

template <typename T, typename DecodeFn>
bool decode_reply(Reader* r, DecodeFn decode, api::Result<T>* out) {
  api::Status status;
  if (!decode_status(r, &status)) return false;
  if (!status.ok()) {
    if (!r->exhausted()) return false;
    *out = status;
    return true;
  }
  T value{};
  if (!decode(r, &value) || !r->exhausted()) return false;
  *out = std::move(value);
  return true;
}

/// The batch reply carries one Result per element (the service answers
/// each query independently; a bad genome fails alone, its batchmates
/// still succeed).
std::string encode_predict_batch_reply(
    const std::vector<api::Result<api::LatencyReport>>& results);
bool decode_predict_batch_reply(
    Reader* r, std::vector<api::Result<api::LatencyReport>>* out);

/// Whole-frame convenience: header + payload in one buffer.
std::string encode_frame(FrameType type, bool reply, std::uint64_t request_id,
                         std::uint64_t deadline_us, const std::string& payload);

/// Message text for `err` (an errno value). strerror(3) reads a static
/// buffer and is not required to be thread-safe (clang-tidy
/// concurrency-mt-unsafe); this wraps strerror_r, which is.
std::string errno_string(int err);

}  // namespace hg::net
