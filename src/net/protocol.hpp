// protocol.hpp — the hg::net wire protocol (version 2).
//
// A versioned, length-prefixed binary framing that carries every
// serve::Request variant and its Result<T> reply over a byte stream, so a
// serve::Service can be queried from another process or machine. The
// protocol is deliberately dependency-free: fixed-width little-endian
// integers, IEEE-754 doubles bit-cast to u64, and length-prefixed strings.
//
// Version history:
//   v1  initial framing + verb payloads (PR 5).
//   v2  every encoded Status carries a trailing retry_after_us hint
//       (0 = none — attached to refused-before-running replies so client
//       backoff can honor the server's pacing), and kPing answers a
//       HealthReport. A v2 server answers a mismatched-version peer with
//       one best-effort FAILED_PRECONDITION reply framed in the PEER's
//       version before dropping it (see encode_version_farewell), so an
//       old client sees a clean typed error, not a silent hangup.
//       Later v2 addition: kPredictBatchN, a multi-predict frame the
//       server hands to the service as ONE unit of work (the packed
//       block-diagonal forward) instead of N queued requests. Same
//       payload codecs as kPredictBatch; an older v2 peer that does not
//       know the type answers it with a typed INVALID_ARGUMENT reply, so
//       a client can detect and fall back.
//
// Frame layout (header is exactly kHeaderSize bytes):
//
//   offset  size  field
//        0     4  magic        0x4847'4E31 ("HGN1")
//        4     2  version      kProtocolVersion (2)
//        6     2  type         FrameType (request, or request | kReplyBit)
//        8     8  request_id   caller-chosen, echoed verbatim in the reply
//       16     8  deadline_us  queue-time budget in microseconds from
//                              server receipt; 0 = no deadline. Ignored in
//                              replies.
//       24     4  payload_len  bytes following the header
//
// Every request frame gets exactly one reply frame with the same
// request_id and type | kReplyBit; replies may arrive in any order
// (pipelined ids). A reply payload is an encoded Status followed, when the
// Status is OK, by the verb's report. The one no-reply frame is kGoodbye
// (see FrameType) — the connection close after the drain is its ack.
//
// Decoding is strictly bounds-checked: a Reader never reads past the
// payload it was given, rejects length prefixes that overrun the
// remaining bytes, and requires every payload to be fully consumed —
// truncated, oversized, or trailing-garbage payloads decode to failure,
// never to a crash or an over-read. Malformed *headers* (bad magic /
// version / oversized payload_len) cannot be recovered on a byte stream
// (framing is lost) and make the server drop the connection instead.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "api/config.hpp"
#include "api/engine.hpp"
#include "obs/metrics.hpp"
#include "serve/request.hpp"

namespace hg::net {

inline constexpr std::uint32_t kMagic = 0x4847'4E31;  // "HGN1"
inline constexpr std::uint16_t kProtocolVersion = 2;
inline constexpr std::size_t kHeaderSize = 28;
/// Upper bound on payload_len a peer will accept. Large enough for any
/// real report (a SearchReport is a few tens of KB); small enough that a
/// corrupt length field cannot drive allocation to OOM.
inline constexpr std::uint32_t kMaxPayloadBytes = 1u << 26;  // 64 MB

/// Frame types. Requests are 1..N; the matching reply is type | kReplyBit.
enum class FrameType : std::uint16_t {
  kSearch = 1,
  kPredictLatency = 2,
  kPredictBatch = 3,
  kProfile = 4,
  kProfileBaseline = 5,
  kTrainBaseline = 6,
  /// Empty-payload, no-reply notice: "no more requests on this
  /// connection — answer what you have, then close." A pipelining client
  /// sends this before shutdown(SHUT_WR) so the server serves the
  /// already-submitted requests and flushes their replies. Without it a
  /// peer's FIN is an abandoning disconnect: the connection's
  /// still-queued requests are cancelled (a TCP FIN alone cannot say
  /// which of the two the client meant).
  kGoodbye = 7,
  /// Empty-payload health probe, answered from the server's I/O thread
  /// without touching the worker queues (a ping must come back even when
  /// the service is saturated): the reply is OK + a HealthReport. New in
  /// protocol v2.
  kPing = 8,
  /// N latency predictions in one frame, submitted to the service as ONE
  /// unit of work (serve::PredictBatchRequest -> the packed block-diagonal
  /// forward) rather than N separate queue entries like kPredictBatch.
  /// Payload: encode_predict_batch_request; reply:
  /// encode_predict_batch_reply (one Result per element, in order). A
  /// batch larger than kMaxWireBatch is refused up front with per-element
  /// RESOURCE_EXHAUSTED (+ retry hint) — it never reaches the service.
  kPredictBatchN = 9,
  /// Empty-payload metrics scrape, answered from the server's I/O thread
  /// like kPing: the reply is OK + the full flattened metrics snapshot
  /// (serve::Service::metrics_snapshot — every registered obs instrument
  /// plus the live queue depth), encoded as name/value pairs
  /// (encode_stats_snapshot). Later v2 addition: an older v2 peer answers
  /// it with a typed INVALID_ARGUMENT reply, so a client can detect and
  /// fall back to kPing.
  kStats = 10,
};
inline constexpr std::uint16_t kReplyBit = 0x80;

/// Largest element count a server accepts in one kPredictBatchN frame.
/// Bounds the block-diagonal forward a single frame can demand (the
/// payload byte cap alone would admit ~100k tiny archs).
inline constexpr std::size_t kMaxWireBatch = 4096;

struct FrameHeader {
  std::uint32_t magic = kMagic;
  std::uint16_t version = kProtocolVersion;
  std::uint16_t type = 0;
  std::uint64_t request_id = 0;
  std::uint64_t deadline_us = 0;  // 0 = none
  std::uint32_t payload_len = 0;
};

/// Serialize `h` into exactly kHeaderSize bytes, appended to `out`.
void encode_header(const FrameHeader& h, std::string* out);

/// Parse a header from `bytes` (must hold >= kHeaderSize). Returns false
/// on bad magic, unknown version, or payload_len > kMaxPayloadBytes — the
/// stream is unframeable and the connection must be dropped.
bool decode_header(const char* bytes, std::size_t len, FrameHeader* out);

/// Classified header parse. `out` is filled whenever the bytes suffice,
/// even on rejection — kBadVersion callers need the peer's claimed
/// version / id / type to frame the farewell reply.
enum class HeaderDecode : std::uint8_t {
  kOk,
  kTruncated,   // fewer than kHeaderSize bytes
  kBadMagic,    // not this protocol at all
  kBadVersion,  // our magic, a version we do not speak
  kOversized,   // payload_len > kMaxPayloadBytes
};
HeaderDecode decode_header_ex(const char* bytes, std::size_t len,
                              FrameHeader* out);

/// The one frame a server sends to a peer speaking another protocol
/// version: a FAILED_PRECONDITION reply framed in the PEER's version
/// (our frames would be rejected by its decoder) with the v1 status
/// layout (code + message — the retry_after_us field is v2-only), echoing
/// the offending frame's id and type. Best-effort: flushed once, then
/// the connection is dropped (nothing later in the stream can be parsed).
std::string encode_version_farewell(const FrameHeader& peer);

// ---- payload encoding ------------------------------------------------------

/// Append-only little-endian payload builder.
class Writer {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);
  void boolean(bool v);
  void str(const std::string& v);  // u32 length prefix + bytes

  const std::string& bytes() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked payload reader. Every accessor returns false once the
/// payload is exhausted or a length prefix overruns it; after the first
/// failure all subsequent reads fail too, so decoders can chain `ok &=`
/// without checking each field.
class Reader {
 public:
  Reader(const char* data, std::size_t len) : data_(data), len_(len) {}
  explicit Reader(const std::string& bytes)
      : Reader(bytes.data(), bytes.size()) {}

  bool u8(std::uint8_t* v);
  bool u16(std::uint16_t* v);
  bool u32(std::uint32_t* v);
  bool u64(std::uint64_t* v);
  bool i64(std::int64_t* v);
  bool f64(double* v);
  bool boolean(bool* v);
  bool str(std::string* v);

  /// True when every byte was consumed and no read ever failed — decoders
  /// require this so trailing garbage is rejected, not ignored.
  bool exhausted() const { return !failed_ && pos_ == len_; }
  bool failed() const { return failed_; }

 private:
  bool take(std::size_t n, const char** out);

  const char* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

// ---- vocabulary codecs -----------------------------------------------------
//
// Every encode_* appends to a Writer; every decode_* returns false on any
// malformed input (without touching *out beyond recognition). Codecs are
// structural, not semantic: field values round-trip verbatim (an
// out-of-range enum survives the trip) so a remote request fails with
// exactly the Status the same in-process request would produce.

void encode_arch(const api::Arch& arch, Writer* w);
bool decode_arch(Reader* r, api::Arch* out);

void encode_workload(const api::Workload& w, Writer* out);
bool decode_workload(Reader* r, api::Workload* out);

void encode_engine_config(const api::EngineConfig& cfg, Writer* w);
bool decode_engine_config(Reader* r, api::EngineConfig* out);

/// v2 status layout: u32 code, str message, u64 retry_after_us. The hint
/// is only ever non-zero on replies the server REFUSED before running
/// (queue-full sheds, drain refusals) — it both paces the client's retry
/// backoff and certifies "this request never executed", which is what
/// makes retrying it safe for every verb, mutating ones included.
void encode_status(const api::Status& status, Writer* w,
                   std::uint64_t retry_after_us = 0);
bool decode_status(Reader* r, api::Status* out,
                   std::uint64_t* retry_after_us = nullptr);

/// Server health, answered to kPing (v2).
enum class HealthState : std::uint8_t {
  kAccepting = 0,   // normal operation
  kDraining = 1,    // Server::drain(): finishing queued work, no new work
  kOverloaded = 2,  // bounded queue at capacity; expect sheds
};
const char* health_state_name(HealthState state);

struct HealthReport {
  HealthState state = HealthState::kAccepting;
  std::int64_t queue_depth = 0;  // admitted, not yet started
  std::int64_t workers = 0;
  std::uint64_t uptime_us = 0;
};

void encode_health_report(const HealthReport& rep, Writer* w);
bool decode_health_report(Reader* r, HealthReport* out);

/// Metrics snapshot, answered to kStats (v2): u32 count, then `count`
/// (str name, i64 value) pairs in map order. Bounded by the payload cap;
/// decode rejects a count that could not fit the remaining bytes.
void encode_stats_snapshot(const obs::Snapshot& snap, Writer* w);
bool decode_stats_snapshot(Reader* r, obs::Snapshot* out);

void encode_latency_report(const api::LatencyReport& rep, Writer* w);
bool decode_latency_report(Reader* r, api::LatencyReport* out);

void encode_profile_report(const api::ProfileReport& rep, Writer* w);
bool decode_profile_report(Reader* r, api::ProfileReport* out);

void encode_train_report(const api::TrainReport& rep, Writer* w);
bool decode_train_report(Reader* r, api::TrainReport* out);

void encode_search_report(const api::SearchReport& rep, Writer* w);
bool decode_search_report(Reader* r, api::SearchReport* out);

// ---- request payloads ------------------------------------------------------

void encode_search_request(const std::optional<api::EngineConfig>& cfg,
                           Writer* w);
bool decode_search_request(Reader* r, std::optional<api::EngineConfig>* out);

void encode_predict_request(const api::Arch& arch, Writer* w);
bool decode_predict_request(Reader* r, api::Arch* out);

void encode_predict_batch_request(const std::vector<api::Arch>& archs,
                                  Writer* w);
bool decode_predict_batch_request(Reader* r, std::vector<api::Arch>* out);

// kProfile shares the kPredictLatency payload (one arch).

void encode_profile_baseline_request(
    const std::string& name, const std::optional<api::Workload>& workload,
    Writer* w);
bool decode_profile_baseline_request(Reader* r, std::string* name,
                                     std::optional<api::Workload>* workload);

void encode_train_baseline_request(const std::string& name, Writer* w);
bool decode_train_baseline_request(Reader* r, std::string* out);

// ---- reply payloads --------------------------------------------------------
//
// A reply is encode_status(...) then, iff OK, the report. The typed
// helpers below build / parse the whole payload.

/// `shed_retry_after_us`, when non-zero, is attached to RESOURCE_EXHAUSTED
/// statuses only — the shed path (the request was refused before running);
/// other error codes mean the request ran and must not advertise a hint.
template <typename T, typename EncodeFn>
std::string encode_reply(const api::Result<T>& result, EncodeFn encode,
                         std::uint64_t shed_retry_after_us = 0) {
  Writer w;
  const api::Status status =
      result.ok() ? api::Status::Ok() : result.status();
  const std::uint64_t hint =
      status.code() == api::StatusCode::kResourceExhausted
          ? shed_retry_after_us
          : 0;
  encode_status(status, &w, hint);
  if (result.ok()) encode(result.value(), &w);
  return w.take();
}

template <typename T, typename DecodeFn>
bool decode_reply(Reader* r, DecodeFn decode, api::Result<T>* out,
                  std::uint64_t* retry_after_us = nullptr) {
  api::Status status;
  if (!decode_status(r, &status, retry_after_us)) return false;
  if (!status.ok()) {
    if (!r->exhausted()) return false;
    *out = status;
    return true;
  }
  T value{};
  if (!decode(r, &value) || !r->exhausted()) return false;
  *out = std::move(value);
  return true;
}

/// The batch reply carries one Result per element (the service answers
/// each query independently; a bad genome fails alone, its batchmates
/// still succeed). `shed_retry_after_us` applies to the RESOURCE_EXHAUSTED
/// elements; decode surfaces the max over all elements.
std::string encode_predict_batch_reply(
    const std::vector<api::Result<api::LatencyReport>>& results,
    std::uint64_t shed_retry_after_us = 0);
bool decode_predict_batch_reply(
    Reader* r, std::vector<api::Result<api::LatencyReport>>* out,
    std::uint64_t* retry_after_us = nullptr);

/// Whole-frame convenience: header + payload in one buffer.
std::string encode_frame(FrameType type, bool reply, std::uint64_t request_id,
                         std::uint64_t deadline_us, const std::string& payload);

/// Message text for `err` (an errno value). strerror(3) reads a static
/// buffer and is not required to be thread-safe (clang-tidy
/// concurrency-mt-unsafe); this wraps strerror_r, which is.
std::string errno_string(int err);

}  // namespace hg::net
