#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <future>
#include <map>
#include <thread>
#include <utility>
#include <variant>
#include <vector>

#include "core/annotations.hpp"
#include "net/protocol.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hg::net {

namespace {

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

constexpr std::size_t kReadChunk = 64 * 1024;

/// Write-side back-pressure: stop reading a connection whose unflushed
/// replies exceed this, so a peer that pipelines requests without ever
/// draining its answers cannot grow c.out without bound. Reads resume
/// once the buffer flushes below the mark. (Replies for requests already
/// admitted still append past it — bounded by the service queue depth.)
constexpr std::size_t kMaxBufferedReplyBytes = 4 * 1024 * 1024;

/// Most reply buffers handed to one sendv(2) call. Linux caps a single
/// sendmsg at IOV_MAX (1024) iovecs; 64 already amortizes the syscall
/// across a coalesced window's replies without building giant arrays.
constexpr int kMaxFlushIovecs = 64;

/// The write side of a connection: one encoded reply frame per buffer,
/// flushed with a single gathered sendv instead of concatenating into
/// (and erasing from the front of) one ever-reallocating string. The
/// head buffer may be partially written; head_off tracks how far.
class OutQueue {
 public:
  bool empty() const { return bytes_ == 0; }
  std::size_t size() const { return bytes_; }

  void append(std::string frame) {
    if (frame.empty()) return;
    bytes_ += frame.size();
    bufs_.push_back(std::move(frame));
  }

  /// Fills `iov` (capacity kMaxFlushIovecs) with the unflushed prefix;
  /// returns the iovec count.
  int gather(struct iovec* iov) const {
    int n = 0;
    std::size_t off = head_off_;
    for (const std::string& b : bufs_) {
      if (n == kMaxFlushIovecs) break;
      iov[n].iov_base =
          const_cast<char*>(b.data()) + static_cast<std::ptrdiff_t>(off);
      iov[n].iov_len = b.size() - off;
      ++n;
      off = 0;
    }
    return n;
  }

  /// Advances past `n` written bytes (which may end mid-buffer).
  void consume(std::size_t n) {
    bytes_ -= n;
    while (n > 0) {
      const std::size_t head_left = bufs_.front().size() - head_off_;
      if (n < head_left) {
        head_off_ += n;
        return;
      }
      n -= head_left;
      head_off_ = 0;
      bufs_.pop_front();
    }
  }

 private:
  std::deque<std::string> bufs_;
  std::size_t head_off_ = 0;  // flushed prefix of bufs_.front()
  std::size_t bytes_ = 0;     // total unflushed bytes across bufs_
};

}  // namespace

struct Server::Impl {
  /// One submitted request whose reply has not been written yet. The
  /// future variant mirrors the request vocabulary; a batch holds one
  /// future per element (the service coalesces them back together).
  struct Pending {
    std::uint64_t id = 0;
    FrameType type = FrameType::kSearch;
    std::variant<std::future<api::Result<api::SearchReport>>,
                 std::future<api::Result<api::LatencyReport>>,
                 std::future<api::Result<api::ProfileReport>>,
                 std::future<api::Result<api::TrainReport>>,
                 std::vector<std::future<api::Result<api::LatencyReport>>>,
                 std::future<std::vector<api::Result<api::LatencyReport>>>>
        future;
    // Frame receipt, for the end-to-end "net.request" span (receipt ->
    // reply encoded).
    std::chrono::steady_clock::time_point received_at;

    bool ready() const {
      const auto done = [](const auto& f) {
        return f.wait_for(std::chrono::seconds(0)) ==
               std::future_status::ready;
      };
      return std::visit(
          [&](const auto& f) {
            if constexpr (std::is_same_v<std::decay_t<decltype(f)>,
                                         std::vector<std::future<api::Result<
                                             api::LatencyReport>>>>) {
              for (const auto& e : f)
                if (!done(e)) return false;
              return true;
            } else {
              return done(f);
            }
          },
          future);
    }
  };

  struct Conn {
    // Owns the fd (closes it on destruction). The map key is the same
    // fd, used for poll(2).
    std::unique_ptr<Transport> transport;
    std::string in;
    OutQueue out;
    std::shared_ptr<std::atomic<bool>> cancel;
    std::deque<Pending> pending;
    // The peer sent kGoodbye: no more requests will arrive, but the ones
    // already submitted are still served and their replies flushed
    // before the connection is closed. A FIN *without* a goodbye is an
    // abandoning disconnect and cancels this connection's queued work.
    bool goodbye = false;
    // A goodbye peer's FIN arrived (it shutdown(SHUT_WR) after the
    // goodbye); stop polling its read side.
    bool peer_eof = false;
    // Server-side drain: we FIN'd our write side after the last reply
    // flushed; reads are discarded until the peer's FIN closes the
    // connection for good.
    bool half_closed = false;
    // We answered this peer (a reply, a ping, a refusal) while draining:
    // it has been TOLD about the drain, so once its work is flushed the
    // FIN below is not a surprise hangup. A peer idle since drain began
    // keeps its connection (it may still want to ping) until it next
    // speaks or stop() closes everything.
    bool answered_in_drain = false;
  };

  serve::Service* service = nullptr;
  ServerConfig cfg;
  int listen_fd = -1;
  int wake_read = -1;
  int wake_write = -1;
  std::thread loop;
  std::atomic<bool> stopping{false};
  // Server::drain(): written by any thread, acted on by the poll thread
  // (which closes the listen fd and starts refusing new frames).
  std::atomic<bool> draining{false};
  const std::chrono::steady_clock::time_point started =
      std::chrono::steady_clock::now();
  core::Mutex stop_mutex;  // serializes concurrent Server::stop() callers

  // The "net.*" counters live in the owned service's registry (so one
  // kStats snapshot tells the whole story); handles are resolved once in
  // init_counters and bumped lock-free from the poll thread, read from
  // any thread via Server::net_stats().
  struct NetCounters {
    obs::Counter* connections_opened = nullptr;
    obs::Counter* connections_closed = nullptr;
    obs::Counter* connections_refused = nullptr;
    obs::Counter* frames_received = nullptr;
    obs::Counter* frames_rejected = nullptr;
    obs::Counter* connections_dropped = nullptr;
    obs::Counter* replies_sent = nullptr;
    obs::Counter* oversized_replies = nullptr;
    obs::Counter* version_mismatches = nullptr;
  };
  NetCounters nc;

  void init_counters(obs::Registry& r) {
    nc.connections_opened = &r.counter("net.connections_opened");
    nc.connections_closed = &r.counter("net.connections_closed");
    nc.connections_refused = &r.counter("net.connections_refused");
    nc.frames_received = &r.counter("net.frames_received");
    nc.frames_rejected = &r.counter("net.frames_rejected");
    nc.connections_dropped = &r.counter("net.connections_dropped");
    nc.replies_sent = &r.counter("net.replies_sent");
    nc.oversized_replies = &r.counter("net.oversized_replies");
    nc.version_mismatches = &r.counter("net.version_mismatches");
  }

  // The connection table (fds, buffered frames, reply buffers, pending
  // futures) is owned by the poll thread alone after start: run() is the
  // only code that touches it until shutdown_io() has joined the thread.
  // No mutex — single-threaded by construction, checked by TSan in CI.
  std::map<int, Conn> conns;

  // ---- lifecycle -----------------------------------------------------------
  api::Status listen_on(const std::string& host, std::uint16_t port,
                        std::uint16_t* bound) {
    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd < 0)
      return api::Status::Unavailable("socket() failed: " +
                                      errno_string(errno));
    const int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
      return api::Status::InvalidArgument("ServerConfig::host is not an "
                                          "IPv4 address: " + host);
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0)
      return api::Status::Unavailable("bind(" + host + ":" +
                                      std::to_string(port) + ") failed: " +
                                      errno_string(errno));
    if (::listen(listen_fd, 64) != 0)
      return api::Status::Unavailable(std::string("listen() failed: ") +
                                      errno_string(errno));
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&actual),
                      &len) != 0)
      return api::Status::Unavailable(std::string("getsockname() failed: ") +
                                      errno_string(errno));
    *bound = ntohs(actual.sin_port);
    if (!set_nonblocking(listen_fd))
      return api::Status::Unavailable("cannot make listen socket "
                                      "non-blocking");
    int pipe_fds[2] = {-1, -1};
    if (::pipe(pipe_fds) != 0)
      return api::Status::Unavailable(std::string("pipe() failed: ") +
                                      errno_string(errno));
    wake_read = pipe_fds[0];
    wake_write = pipe_fds[1];
    set_nonblocking(wake_read);
    set_nonblocking(wake_write);
    return api::Status::Ok();
  }

  void wake() const {
    if (wake_write >= 0) {
      const char b = 1;
      // Non-blocking; a full pipe already guarantees a wakeup is queued.
      (void)!::write(wake_write, &b, 1);
    }
  }

  // ---- the poll loop -------------------------------------------------------
  void run() {
    while (!stopping.load(std::memory_order_acquire)) {
      // Draining: close the listen socket here, on the thread that owns
      // it, so a late client sees a refused connection instead of a
      // backlog nobody will ever accept. A pollfd with fd < 0 is
      // ignored, so the (now -1) listen slot below stays harmless.
      if (draining.load(std::memory_order_acquire) && listen_fd >= 0) {
        ::close(listen_fd);
        listen_fd = -1;
      }
      std::vector<pollfd> fds;
      fds.push_back({wake_read, POLLIN, 0});
      const bool can_accept =
          static_cast<std::int64_t>(conns.size()) < cfg.max_connections;
      fds.push_back({listen_fd, static_cast<short>(can_accept ? POLLIN : 0),
                     0});
      for (const auto& [fd, c] : conns) {
        const bool throttled =
            c.peer_eof || c.out.size() > kMaxBufferedReplyBytes;
        fds.push_back({fd, static_cast<short>(
                               (throttled ? 0 : POLLIN) |
                               (c.out.empty() ? 0 : POLLOUT)),
                       0});
      }

      // The self-pipe wakes us on any service completion; 200 ms is only
      // a safety net (e.g. a missed edge during shutdown races).
      (void)::poll(fds.data(), fds.size(), 200);
      if (stopping.load(std::memory_order_acquire)) break;

      if (fds[0].revents & POLLIN) drain_wake_pipe();
      if (fds[1].revents & POLLIN) accept_new();

      std::vector<int> dead;
      for (std::size_t i = 2; i < fds.size(); ++i) {
        auto it = conns.find(fds[i].fd);
        if (it == conns.end()) continue;
        Conn& c = it->second;
        bool drop = (fds[i].revents & (POLLERR | POLLNVAL)) != 0;
        if (!drop && (fds[i].revents & (POLLIN | POLLHUP)))
          drop = !read_from(c);
        if (!drop && (fds[i].revents & POLLOUT)) drop = !flush(c);
        if (drop) dead.push_back(fds[i].fd);
      }
      for (int fd : dead) close_conn(fd);

      pump_completions();
    }
  }

  void drain_wake_pipe() const {
    char buf[256];
    while (::read(wake_read, buf, sizeof(buf)) > 0) {
    }
  }

  void accept_new() {
    for (;;) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) return;  // EAGAIN or transient error: try next round
      if (static_cast<std::int64_t>(conns.size()) >= cfg.max_connections) {
        ::close(fd);
        nc.connections_refused->inc();
        continue;
      }
      set_nonblocking(fd);
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      Conn c;
      c.transport = std::make_unique<SocketTransport>(fd);
      if (cfg.wrap_transport)
        c.transport = cfg.wrap_transport(std::move(c.transport));
      c.cancel = std::make_shared<std::atomic<bool>>(false);
      conns.emplace(fd, std::move(c));
      nc.connections_opened->inc();
    }
  }

  /// True when c.in holds a complete, well-framed kGoodbye frame. A
  /// header-only walk — nothing is submitted, so an abandoning FIN can
  /// be recognized without first handing the dead peer's final requests
  /// to the service.
  static bool buffered_goodbye(const Conn& c) {
    std::size_t pos = 0;
    while (c.in.size() - pos >= kHeaderSize) {
      FrameHeader h;
      if (!decode_header(c.in.data() + pos, c.in.size() - pos, &h))
        return false;  // unframeable: the caller drops the connection
      if (c.in.size() - pos < kHeaderSize + h.payload_len) break;
      // Only a well-formed goodbye counts: handle_frame rejects a
      // payload-bearing one without setting the drain flag, which would
      // otherwise submit the dead peer's requests only to cancel them.
      if (h.type == static_cast<std::uint16_t>(FrameType::kGoodbye) &&
          h.payload_len == 0)
        return true;
      pos += kHeaderSize + h.payload_len;
    }
    return false;
  }

  /// Reads everything available; false when the connection must be
  /// dropped (read error, unframeable stream, or the peer is gone).
  /// After a kGoodbye the peer's FIN is expected — requests pipelined
  /// before the goodbye keep the connection alive until their replies
  /// are flushed (see pump_completions). A FIN with no goodbye is an
  /// abandoning disconnect: the final buffered frames are discarded
  /// unsubmitted and dropping the connection cancels its queued work
  /// (close_conn). A half-closed (server-drain) connection only reads
  /// to discard: its peer's FIN is the close.
  bool read_from(Conn& c) {
    char buf[kReadChunk];
    for (;;) {
      const ssize_t n = c.transport->recv(buf, sizeof(buf));
      if (n > 0) {
        if (!c.half_closed) c.in.append(buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n == 0) {  // orderly shutdown by the peer
        if (c.half_closed) return false;  // drain handshake complete
        if (!c.goodbye && !buffered_goodbye(c)) return false;  // abandoned
        if (!parse_frames(c)) return false;
        if (!c.goodbye) return false;  // the goodbye was malformed
        c.peer_eof = true;
        return !(c.pending.empty() && c.out.empty());
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    return c.half_closed || parse_frames(c);
  }

  bool parse_frames(Conn& c) {
    std::size_t consumed = 0;
    while (!c.goodbye && c.in.size() - consumed >= kHeaderSize) {
      FrameHeader h;
      const HeaderDecode hd = decode_header_ex(
          c.in.data() + consumed, c.in.size() - consumed, &h);
      if (hd == HeaderDecode::kBadVersion) {
        // A peer speaking another protocol version: answer its frame
        // with one FAILED_PRECONDITION farewell framed in ITS version
        // (best-effort flush below), then drop — the rest of its stream
        // cannot be parsed.
        nc.version_mismatches->inc();
        c.out.append(encode_version_farewell(h));
        (void)flush(c);
        return false;
      }
      if (hd != HeaderDecode::kOk) {
        // Bad magic / oversized length: byte-stream framing is lost,
        // nothing downstream can be trusted. Drop the connection.
        nc.connections_dropped->inc();
        return false;
      }
      if (c.in.size() - consumed < kHeaderSize + h.payload_len) break;
      handle_frame(c, h, c.in.data() + consumed + kHeaderSize,
                   h.payload_len);
      consumed += kHeaderSize + h.payload_len;
    }
    if (c.goodbye)
      c.in.clear();  // nothing after a goodbye is meaningful
    else
      c.in.erase(0, consumed);
    return true;
  }

  void reply_error(Conn& c, FrameType type, std::uint64_t id,
                   const api::Status& status) {
    Writer w;
    encode_status(status, &w);
    send_reply(c, type, id, w.take());
    nc.frames_rejected->inc();
  }

  /// A refused-before-running reply (drain-time UNAVAILABLE): carries the
  /// retry_after_us hint so the peer can pace its retry. Not counted as a
  /// rejected frame — the request was well-formed, just turned away.
  void reply_refusal(Conn& c, FrameType type, std::uint64_t id,
                     const api::Status& status) {
    Writer w;
    encode_status(status, &w, cfg.shed_retry_after_us);
    send_reply(c, type, id, w.take());
    if (cfg.shed_retry_after_us > 0) service->record_shed_hint();
  }

  void send_reply(Conn& c, FrameType type, std::uint64_t id,
                  std::string payload) {
    if (payload.size() > kMaxPayloadBytes) {
      // The peer's decode_header rejects frames above kMaxPayloadBytes
      // (and past 4 GB the u32 length field would truncate): framing an
      // oversized body would kill the whole stream on the client side.
      // Answer this one request with a clean error instead.
      Writer w;
      encode_status(
          api::Status::ResourceExhausted(
              "reply payload (" + std::to_string(payload.size()) +
              " bytes) exceeds the wire limit"),
          &w);
      payload = w.take();
      nc.oversized_replies->inc();
    }
    c.out.append(encode_frame(type, /*reply=*/true, id, 0, payload));
    nc.replies_sent->inc();
    if (draining.load(std::memory_order_acquire)) c.answered_in_drain = true;
  }

  void handle_frame(Conn& c, const FrameHeader& h, const char* payload,
                    std::size_t len) {
    const bool is_reply = (h.type & kReplyBit) != 0;
    const auto type = static_cast<FrameType>(h.type & ~kReplyBit);
    if (is_reply || h.type == 0 ||
        (h.type & ~kReplyBit) >
            static_cast<std::uint16_t>(FrameType::kStats)) {
      reply_error(c, type, h.request_id,
                  api::Status::InvalidArgument(
                      "unknown frame type " + std::to_string(h.type)));
      return;
    }
    nc.frames_received->inc();
    if (type == FrameType::kGoodbye) {
      if (len != 0) {
        reply_error(c, type, h.request_id,
                    api::Status::InvalidArgument(
                        "goodbye frame carries a payload"));
        return;
      }
      c.goodbye = true;  // no reply: the close after the drain is the ack
      return;
    }
    if (type == FrameType::kPing) {
      if (len != 0) {
        reply_error(c, type, h.request_id,
                    api::Status::InvalidArgument(
                        "ping frame carries a payload"));
        return;
      }
      // Answered right here on the I/O thread — a ping must come back
      // even when every worker is wedged, which is exactly when callers
      // need the report.
      service->record_ping();
      const serve::ServiceStats s = service->stats();
      HealthReport rep;
      rep.state = draining.load(std::memory_order_acquire)
                      ? HealthState::kDraining
                      : (cfg.service.max_queue_depth > 0 &&
                                 s.queue_depth >= cfg.service.max_queue_depth
                             ? HealthState::kOverloaded
                             : HealthState::kAccepting);
      rep.queue_depth = s.queue_depth;
      rep.workers = cfg.service.num_workers;
      rep.uptime_us = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - started)
              .count());
      Writer w;
      encode_status(api::Status::Ok(), &w);
      encode_health_report(rep, &w);
      send_reply(c, type, h.request_id, w.take());
      return;
    }
    if (type == FrameType::kStats) {
      if (len != 0) {
        reply_error(c, type, h.request_id,
                    api::Status::InvalidArgument(
                        "stats frame carries a payload"));
        return;
      }
      // Like kPing, answered on the I/O thread: a metrics scrape must
      // not queue behind the very backlog it is trying to diagnose, and
      // it still answers while draining.
      Writer w;
      encode_status(api::Status::Ok(), &w);
      encode_stats_snapshot(service->metrics_snapshot(), &w);
      send_reply(c, type, h.request_id, w.take());
      return;
    }
    if (draining.load(std::memory_order_acquire)) {
      // Refused BEFORE submission: this request never ran, which the
      // retry_after_us hint certifies — safe to retry elsewhere (or
      // here, if the drain is a rolling restart) for every verb.
      reply_refusal(c, type, h.request_id,
                    api::Status::Unavailable("server is draining"));
      return;
    }

    serve::RequestOptions opts;
    if (h.deadline_us > 0) {
      // Saturate the peer-controlled budget before it meets the clock: a
      // huge value (hostile, or a bit-flip in the header) must not
      // overflow the time_point arithmetic into UB / a deadline in the
      // past. One day of queue time is "no deadline" in practice.
      constexpr std::uint64_t kMaxDeadlineUs = 86'400'000'000ULL;
      opts.deadline = std::chrono::steady_clock::now() +
                      std::chrono::microseconds(
                          std::min(h.deadline_us, kMaxDeadlineUs));
    }
    opts.cancel = c.cancel;
    opts.notify = [this] { wake(); };
    // The wire request id doubles as the trace id: a traced server's
    // spans for this request carry the id the client chose, so a remote
    // call is attributable end to end.
    opts.trace_id = h.request_id;

    Reader r(payload, len);
    Pending p;
    p.id = h.request_id;
    p.type = type;
    p.received_at = std::chrono::steady_clock::now();
    switch (type) {
      case FrameType::kSearch: {
        std::optional<api::EngineConfig> cfg_override;
        if (!decode_search_request(&r, &cfg_override) || !r.exhausted()) {
          reply_error(c, type, h.request_id,
                      api::Status::InvalidArgument(
                          "malformed search request payload"));
          return;
        }
        p.future = service->submit(
            serve::SearchRequest{std::move(cfg_override), std::move(opts)});
        break;
      }
      case FrameType::kPredictLatency: {
        api::Arch arch;
        if (!decode_predict_request(&r, &arch) || !r.exhausted()) {
          reply_error(c, type, h.request_id,
                      api::Status::InvalidArgument(
                          "malformed predict request payload"));
          return;
        }
        p.future = service->submit(
            serve::PredictLatencyRequest{std::move(arch), std::move(opts)});
        break;
      }
      case FrameType::kPredictBatch: {
        std::vector<api::Arch> archs;
        if (!decode_predict_batch_request(&r, &archs) || !r.exhausted()) {
          reply_error(c, type, h.request_id,
                      api::Status::InvalidArgument(
                          "malformed predict-batch request payload"));
          return;
        }
        // One service submission per element: the coalescing queue packs
        // them back into block-diagonal forwards, and a bad element fails
        // alone. The shared notify fires per element; the reply goes out
        // when the last future resolves.
        std::vector<std::future<api::Result<api::LatencyReport>>> futures;
        futures.reserve(archs.size());
        for (api::Arch& a : archs) {
          serve::RequestOptions element = opts;
          futures.push_back(service->submit(
              serve::PredictLatencyRequest{std::move(a), std::move(element)}));
        }
        p.future = std::move(futures);
        break;
      }
      case FrameType::kPredictBatchN: {
        std::vector<api::Arch> archs;
        if (!decode_predict_batch_request(&r, &archs) || !r.exhausted()) {
          reply_error(c, type, h.request_id,
                      api::Status::InvalidArgument(
                          "malformed predict-batch request payload"));
          return;
        }
        if (archs.size() > kMaxWireBatch) {
          // Refused before submission, per element (the reply shape
          // matches the request so the client's decode stays simple).
          // Deliberately NO retry_after hint: unlike a queue shed this
          // refusal is deterministic — the same frame can never succeed;
          // the caller must split the batch, not wait.
          const api::Status refusal = api::Status::ResourceExhausted(
              "batch of " + std::to_string(archs.size()) +
              " exceeds the per-frame limit of " +
              std::to_string(kMaxWireBatch));
          std::vector<api::Result<api::LatencyReport>> results(
              archs.size(), api::Result<api::LatencyReport>(refusal));
          send_reply(c, type, h.request_id,
                     encode_predict_batch_reply(results));
          return;
        }
        // ONE submission for the whole frame: the service runs it as a
        // single unit of work (the packed block-diagonal forward) instead
        // of N queue entries racing N other connections' elements.
        p.future = service->submit(
            serve::PredictBatchRequest{std::move(archs), std::move(opts)});
        break;
      }
      case FrameType::kProfile: {
        api::Arch arch;
        if (!decode_predict_request(&r, &arch) || !r.exhausted()) {
          reply_error(c, type, h.request_id,
                      api::Status::InvalidArgument(
                          "malformed profile request payload"));
          return;
        }
        p.future = service->submit(
            serve::ProfileRequest{std::move(arch), std::move(opts)});
        break;
      }
      case FrameType::kProfileBaseline: {
        std::string name;
        std::optional<api::Workload> workload;
        if (!decode_profile_baseline_request(&r, &name, &workload) ||
            !r.exhausted()) {
          reply_error(c, type, h.request_id,
                      api::Status::InvalidArgument(
                          "malformed profile-baseline request payload"));
          return;
        }
        p.future = service->submit(serve::ProfileBaselineRequest{
            std::move(name), workload, std::move(opts)});
        break;
      }
      case FrameType::kTrainBaseline: {
        std::string name;
        if (!decode_train_baseline_request(&r, &name) || !r.exhausted()) {
          reply_error(c, type, h.request_id,
                      api::Status::InvalidArgument(
                          "malformed train-baseline request payload"));
          return;
        }
        p.future = service->submit(serve::TrainBaselineRequest{
            std::move(name), std::move(opts)});
        break;
      }
      case FrameType::kGoodbye:
      case FrameType::kPing:
      case FrameType::kStats:
        return;  // handled above the switch; never reaches here
    }
    c.pending.push_back(std::move(p));
  }

  /// Encode every completed pending request's reply, preserving
  /// completion order across requests (pipelined ids resolve out of
  /// order by design).
  void pump_completions() {
    const bool drain_mode = draining.load(std::memory_order_acquire);
    std::vector<int> dead;
    for (auto& [fd, c] : conns) {
      bool wrote = false;
      for (std::size_t scan = 0; scan < c.pending.size();) {
        if (!c.pending[scan].ready()) {
          ++scan;
          continue;
        }
        Pending p = std::move(c.pending[scan]);
        c.pending.erase(c.pending.begin() +
                        static_cast<std::ptrdiff_t>(scan));
        std::string reply = encode_ready_reply(p);
        // End-to-end wire span: frame receipt -> reply encoded, under
        // the request id the client chose.
        obs::record_span("net.request", "net", p.id, p.received_at,
                         std::chrono::steady_clock::now());
        send_reply(c, p.type, p.id, std::move(reply));
        wrote = true;
      }
      if (wrote && !flush(c)) {
        dead.push_back(fd);
        continue;
      }
      // A peer that said goodbye is done once its last reply flushed.
      if (c.goodbye && c.pending.empty() && c.out.empty()) {
        dead.push_back(fd);
        continue;
      }
      // Server drain: once a connection's admitted work is answered and
      // flushed, FIN our write side — "that was the last byte" — and
      // keep reading until the peer's FIN completes the handshake. Only
      // connections we have ANSWERED during the drain are FIN'd: a peer
      // idle since drain began still deserves its ping (state=draining)
      // or refusal first; it gets the FIN right after that answer.
      if (drain_mode && c.answered_in_drain && !c.half_closed &&
          c.pending.empty() && c.out.empty()) {
        c.transport->shutdown_write();
        c.half_closed = true;
      }
    }
    for (int fd : dead) close_conn(fd);
  }

  /// Builds the reply for a resolved Pending. A RESOURCE_EXHAUSTED
  /// result is the service's queue-full shed — refused before running —
  /// so it gets the retry_after_us hint (encode_reply attaches it to
  /// that code only).
  std::string encode_ready_reply(Pending& p) {
    const std::uint64_t hint = cfg.shed_retry_after_us;
    const auto note_shed = [this, hint](const api::Status& status) {
      if (hint > 0 &&
          status.code() == api::StatusCode::kResourceExhausted)
        service->record_shed_hint();
    };
    switch (p.type) {
      case FrameType::kSearch: {
        const api::Result<api::SearchReport> r =
            std::get<std::future<api::Result<api::SearchReport>>>(p.future)
                .get();
        if (!r.ok()) note_shed(r.status());
        return encode_reply<api::SearchReport>(
            r,
            [](const api::SearchReport& rep, Writer* w) {
              encode_search_report(rep, w);
            },
            hint);
      }
      case FrameType::kPredictLatency: {
        const api::Result<api::LatencyReport> r =
            std::get<std::future<api::Result<api::LatencyReport>>>(p.future)
                .get();
        if (!r.ok()) note_shed(r.status());
        return encode_reply<api::LatencyReport>(
            r,
            [](const api::LatencyReport& rep, Writer* w) {
              encode_latency_report(rep, w);
            },
            hint);
      }
      case FrameType::kPredictBatch: {
        auto& futures = std::get<
            std::vector<std::future<api::Result<api::LatencyReport>>>>(
            p.future);
        std::vector<api::Result<api::LatencyReport>> results;
        results.reserve(futures.size());
        for (auto& f : futures) {
          results.push_back(f.get());
          if (!results.back().ok()) note_shed(results.back().status());
        }
        return encode_predict_batch_reply(results, hint);
      }
      case FrameType::kPredictBatchN: {
        std::vector<api::Result<api::LatencyReport>> results =
            std::get<std::future<std::vector<api::Result<api::LatencyReport>>>>(
                p.future)
                .get();
        for (const auto& e : results)
          if (!e.ok()) note_shed(e.status());
        return encode_predict_batch_reply(results, hint);
      }
      case FrameType::kProfile:
      case FrameType::kProfileBaseline: {
        const api::Result<api::ProfileReport> r =
            std::get<std::future<api::Result<api::ProfileReport>>>(p.future)
                .get();
        if (!r.ok()) note_shed(r.status());
        return encode_reply<api::ProfileReport>(
            r,
            [](const api::ProfileReport& rep, Writer* w) {
              encode_profile_report(rep, w);
            },
            hint);
      }
      case FrameType::kTrainBaseline: {
        const api::Result<api::TrainReport> r =
            std::get<std::future<api::Result<api::TrainReport>>>(p.future)
                .get();
        if (!r.ok()) note_shed(r.status());
        return encode_reply<api::TrainReport>(
            r,
            [](const api::TrainReport& rep, Writer* w) {
              encode_train_report(rep, w);
            },
            hint);
      }
      case FrameType::kGoodbye:
      case FrameType::kPing:
      case FrameType::kStats:
        break;  // never a Pending; fall to the error below
    }
    Writer w;
    encode_status(api::Status::Internal("unreachable reply type"), &w);
    return w.take();
  }

  /// False when the connection broke mid-write. One gathered sendv per
  /// round flushes up to kMaxFlushIovecs reply frames in one syscall —
  /// the batch of replies a coalesced window resolves together goes out
  /// as one write instead of one per frame.
  bool flush(Conn& c) {
    if (c.out.empty()) return true;
    HG_TRACE_SCOPE("net.flush", "net");
    struct iovec iov[kMaxFlushIovecs];
    while (!c.out.empty()) {
      const int cnt = c.out.gather(iov);
      const ssize_t n = c.transport->sendv(iov, cnt);
      if (n > 0) {
        c.out.consume(static_cast<std::size_t>(n));
        continue;
      }
      if (n == 0) return true;  // decorator wrote nothing; retry later
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;
    }
    return true;
  }

  void close_conn(int fd) {
    auto it = conns.find(fd);
    if (it == conns.end()) return;
    // Abandon this connection's still-queued work: the service resolves
    // it CANCELLED without running. Futures die with the Conn; the
    // service side holds its own promise references, so late
    // resolutions are harmless. The transport closes the fd.
    it->second.cancel->store(true, std::memory_order_relaxed);
    conns.erase(it);
    nc.connections_closed->inc();
  }

  void shutdown_io() {
    stopping.store(true, std::memory_order_release);
    wake();
    if (loop.joinable()) loop.join();
    for (auto& [fd, c] : conns)
      c.cancel->store(true, std::memory_order_relaxed);
    conns.clear();  // transports close their fds
    // Close the listen socket now (not in ~Impl): a late client must see
    // a refused/reset connection, not sit in a backlog nobody accepts.
    if (listen_fd >= 0) {
      ::close(listen_fd);
      listen_fd = -1;
    }
  }

  ~Impl() {
    if (listen_fd >= 0) ::close(listen_fd);
    if (wake_read >= 0) ::close(wake_read);
    if (wake_write >= 0) ::close(wake_write);
  }
};

api::Result<std::shared_ptr<Server>> Server::create(
    const api::EngineConfig& cfg, const ServerConfig& server_cfg) {
  api::Result<std::shared_ptr<api::EvalContext>> ctx =
      api::EvalContext::create(cfg);
  if (!ctx.ok()) return ctx.status();
  return create(cfg, std::move(ctx).value(), server_cfg);
}

api::Result<std::shared_ptr<Server>> Server::create(
    const api::EngineConfig& cfg, std::shared_ptr<api::EvalContext> ctx,
    const ServerConfig& server_cfg) {
  if (server_cfg.max_connections < 1)
    return api::Status::InvalidArgument(
        "ServerConfig::max_connections must be >= 1");
  api::Result<std::shared_ptr<serve::Service>> service =
      serve::Service::create(cfg, std::move(ctx), server_cfg.service);
  if (!service.ok()) return service.status();

  std::shared_ptr<Server> server(new Server());
  server->service_ = std::move(service).value();
  server->impl_ = std::make_unique<Impl>();
  server->impl_->service = server->service_.get();
  server->impl_->init_counters(server->service_->registry());
  server->impl_->cfg = server_cfg;
  api::Status listening = server->impl_->listen_on(
      server_cfg.host, server_cfg.port, &server->port_);
  if (!listening.ok()) return listening;
  Impl* impl = server->impl_.get();
  impl->loop = std::thread([impl] { impl->run(); });
  return server;
}

Server::~Server() { stop(); }

void Server::stop() {
  if (impl_ == nullptr) return;
  // Serializes concurrent stop() callers (a second caller would join the
  // same I/O thread). Order matters: stop I/O first (no new submissions,
  // queued work of closed connections flagged cancelled), then drain the
  // service — its completion notifies still hit the (open, non-blocking)
  // wake pipe harmlessly. The fds close with impl_.
  core::MutexLock lock(impl_->stop_mutex);
  impl_->shutdown_io();
  if (service_) service_->shutdown();
}

void Server::drain() {
  if (impl_ == nullptr) return;
  // Order matters: the service refuses new admissions first, so a frame
  // racing the flag flip gets a clean refusal from one layer or the
  // other — never queued work that no one will answer.
  service_->drain();
  impl_->draining.store(true, std::memory_order_release);
  impl_->wake();
}

bool Server::draining() const {
  return impl_ != nullptr &&
         impl_->draining.load(std::memory_order_acquire);
}

NetStats Server::net_stats() const {
  // A thin view over the registry instruments (the same ones kStats
  // serves), so this struct and the remote snapshot can never drift.
  if (impl_ == nullptr) return {};
  NetStats s;
  s.connections_opened = impl_->nc.connections_opened->value();
  s.connections_closed = impl_->nc.connections_closed->value();
  s.connections_refused = impl_->nc.connections_refused->value();
  s.frames_received = impl_->nc.frames_received->value();
  s.frames_rejected = impl_->nc.frames_rejected->value();
  s.connections_dropped = impl_->nc.connections_dropped->value();
  s.replies_sent = impl_->nc.replies_sent->value();
  s.oversized_replies = impl_->nc.oversized_replies->value();
  s.version_mismatches = impl_->nc.version_mismatches->value();
  return s;
}

}  // namespace hg::net
