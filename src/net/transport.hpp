// transport.hpp — the byte-stream seam under hg::net.
//
// Client and Server speak to their peers exclusively through this
// interface instead of a raw fd, so the I/O layer is substitutable: the
// production implementation (SocketTransport) is a thin wrapper over
// send(2)/recv(2), and tests wrap it in net::testing::ChaosTransport
// (net/chaos.hpp) to inject short reads/writes, mid-frame resets, byte
// corruption, and stalls deterministically — every failure path in the
// protocol state machines is exercisable in-process.
//
// Semantics mirror the syscalls: send()/recv() return the byte count
// moved, 0 from recv() means orderly EOF, and -1 sets errno (EINTR,
// EAGAIN/EWOULDBLOCK, ECONNRESET, EPIPE, ...). A Transport owns its fd
// and closes it on destruction. Instances are not thread-safe; each is
// driven by exactly one thread (the client's caller, or the server's
// poll thread).
#pragma once

#include <sys/types.h>
#include <sys/uio.h>

#include <cstddef>
#include <functional>
#include <memory>

namespace hg::net {

class Transport {
 public:
  virtual ~Transport() = default;

  /// send(2) semantics: bytes written, or -1 with errno set. Never raises
  /// SIGPIPE (the socket implementation passes MSG_NOSIGNAL).
  virtual ssize_t send(const char* data, std::size_t len) = 0;

  /// Gathered write, writev(2) semantics: total bytes written across the
  /// iovecs (a short count may end mid-iovec), or -1 with errno set. The
  /// base implementation forwards the FIRST non-empty iovec to send(), so
  /// decorators that only override send() (ChaosTransport) keep their
  /// fault injection on every byte — one gathered flush degrades to the
  /// historical per-buffer behavior, never bypasses the wrapper.
  /// SocketTransport overrides this with one sendmsg(2) call, which is
  /// what lets the server flush a coalesced window's replies in a single
  /// syscall.
  virtual ssize_t sendv(const struct iovec* iov, int iovcnt) {
    for (int i = 0; i < iovcnt; ++i)
      if (iov[i].iov_len > 0)
        return send(static_cast<const char*>(iov[i].iov_base),
                    iov[i].iov_len);
    return 0;
  }

  /// recv(2) semantics: bytes read, 0 on orderly EOF, or -1 with errno
  /// set (EAGAIN/EWOULDBLOCK after SO_RCVTIMEO expires).
  virtual ssize_t recv(char* buf, std::size_t len) = 0;

  /// shutdown(SHUT_WR): FIN the write side, keep reading.
  virtual void shutdown_write() = 0;

  /// The underlying fd, for poll(2). Decorators forward to the inner
  /// transport so the server's poll loop keeps working under chaos.
  virtual int fd() const = 0;
};

/// The production transport: a connected TCP socket. Takes ownership of
/// `fd` and closes it on destruction.
class SocketTransport final : public Transport {
 public:
  explicit SocketTransport(int fd) : fd_(fd) {}
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  ssize_t send(const char* data, std::size_t len) override;
  ssize_t sendv(const struct iovec* iov, int iovcnt) override;
  ssize_t recv(char* buf, std::size_t len) override;
  void shutdown_write() override;
  int fd() const override { return fd_; }

 private:
  int fd_;
};

/// Decoration hook: given the freshly connected/accepted transport,
/// return the transport to actually use (tests return a ChaosTransport
/// wrapping it). Called once per connection — on the client side that
/// includes every automatic reconnect, so a schedule can differ per
/// attempt.
using TransportWrap =
    std::function<std::unique_ptr<Transport>(std::unique_ptr<Transport>)>;

}  // namespace hg::net
