// client.hpp — hg::net::Client, the blocking remote counterpart of the
// Engine verbs.
//
// One client owns one TCP connection to a net::Server and mirrors the
// facade vocabulary over it: search / predict_latency (single and batch) /
// profile / profile_baseline / train_baseline, each returning the same
// Result<T> the in-process verb would (remote answers are bit-identical —
// asserted in tests/test_net.cpp). Transport failures surface as
// UNAVAILABLE; everything else is the server's own Status relayed
// verbatim.
//
// Pipelining: every verb is also available as a send_* / wait_* pair with
// an explicit request id. send_* writes the frame and returns immediately;
// wait_* blocks until THAT id's reply arrives, stashing any other reply
// that lands first (the server answers in completion order, not
// submission order). This is how a single connection keeps many requests
// in flight — e.g. trickling predictions into the server's coalescing
// window while a search runs.
//
// Deadlines: `deadline_us` (0 = none) rides the frame header as the
// request's queue-time budget, measured from server receipt. An expired
// request is answered DEADLINE_EXCEEDED without running; a request
// already running is unaffected.
//
// A Client is NOT thread-safe: drive one instance from one thread (open
// several connections for concurrent callers).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "api/config.hpp"
#include "api/engine.hpp"
#include "api/status.hpp"
#include "net/protocol.hpp"

namespace hg::net {

struct ClientConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// recv() blocks at most this long before the call fails UNAVAILABLE;
  /// 0 = block forever. A safety net against a hung peer, not a request
  /// deadline (use deadline_us for that).
  std::int64_t recv_timeout_ms = 0;
};

class Client {
 public:
  static api::Result<Client> connect(const ClientConfig& cfg);
  static api::Result<Client> connect(const std::string& host,
                                     std::uint16_t port) {
    ClientConfig cfg;
    cfg.host = host;
    cfg.port = port;
    return connect(cfg);
  }

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  // ---- blocking verbs (send + wait) ----
  api::Result<api::SearchReport> search(
      std::optional<api::EngineConfig> cfg = {}, std::uint64_t deadline_us = 0);
  api::Result<api::LatencyReport> predict_latency(
      const api::Arch& arch, std::uint64_t deadline_us = 0);
  /// Mirrors Engine::predict_batch: element i is the answer to archs[i].
  /// The server evaluates elements independently (its coalescing queue
  /// packs them back together); if any element failed, the first failing
  /// element's Status is returned for the whole call, like the engine
  /// verb.
  api::Result<std::vector<api::LatencyReport>> predict_batch(
      const std::vector<api::Arch>& archs, std::uint64_t deadline_us = 0);
  api::Result<api::ProfileReport> profile(const api::Arch& arch,
                                          std::uint64_t deadline_us = 0);
  api::Result<api::ProfileReport> profile_baseline(
      const std::string& name,
      const std::optional<api::Workload>& workload = {},
      std::uint64_t deadline_us = 0);
  api::Result<api::TrainReport> train_baseline(const std::string& name,
                                               std::uint64_t deadline_us = 0);

  // ---- pipelined form: fire now, collect by id later ----
  api::Result<std::uint64_t> send_search(
      std::optional<api::EngineConfig> cfg = {}, std::uint64_t deadline_us = 0);
  api::Result<std::uint64_t> send_predict_latency(
      const api::Arch& arch, std::uint64_t deadline_us = 0);
  api::Result<std::uint64_t> send_predict_batch(
      const std::vector<api::Arch>& archs, std::uint64_t deadline_us = 0);
  api::Result<std::uint64_t> send_profile(const api::Arch& arch,
                                          std::uint64_t deadline_us = 0);
  api::Result<std::uint64_t> send_profile_baseline(
      const std::string& name,
      const std::optional<api::Workload>& workload = {},
      std::uint64_t deadline_us = 0);
  api::Result<std::uint64_t> send_train_baseline(
      const std::string& name, std::uint64_t deadline_us = 0);

  api::Result<api::SearchReport> wait_search(std::uint64_t id);
  api::Result<api::LatencyReport> wait_predict_latency(std::uint64_t id);
  api::Result<std::vector<api::LatencyReport>> wait_predict_batch(
      std::uint64_t id);
  api::Result<api::ProfileReport> wait_profile(std::uint64_t id);
  api::Result<api::ProfileReport> wait_profile_baseline(std::uint64_t id);
  api::Result<api::TrainReport> wait_train_baseline(std::uint64_t id);

  bool connected() const { return fd_ >= 0; }

  /// Announce "no more requests" (a kGoodbye frame) and FIN the write
  /// side. The read side stays open: outstanding wait_* calls still
  /// collect their replies, after which the server closes the
  /// connection. Use this before abandoning a pipelining client whose
  /// in-flight requests should be *answered* — a plain close() makes the
  /// server cancel them instead. Further send_* calls fail UNAVAILABLE.
  api::Status goodbye();

  /// Close the connection (any still-queued server-side work for it gets
  /// cancelled on the server). Idempotent; further calls fail UNAVAILABLE.
  void close();

 private:
  Client() = default;

  api::Result<std::uint64_t> send_frame(FrameType type,
                                        std::uint64_t deadline_us,
                                        const std::string& payload);
  /// Blocks until the reply for `id` arrives (stashing others), then
  /// checks its type and hands back the payload.
  api::Result<std::string> recv_reply(std::uint64_t id, FrameType type);

  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  bool sent_goodbye_ = false;  // write side FIN'd; reads still live
  std::string in_;  // partial-frame accumulation
  std::map<std::uint64_t, std::pair<std::uint16_t, std::string>> stash_;
};

}  // namespace hg::net
