// client.hpp — hg::net::Client, the blocking remote counterpart of the
// Engine verbs.
//
// One client owns one TCP connection to a net::Server and mirrors the
// facade vocabulary over it: search / predict_latency (single and batch) /
// profile / profile_baseline / train_baseline, each returning the same
// Result<T> the in-process verb would (remote answers are bit-identical —
// asserted in tests/test_net.cpp). Transport failures surface as
// UNAVAILABLE; everything else is the server's own Status relayed
// verbatim.
//
// Pipelining: every verb is also available as a send_* / wait_* pair with
// an explicit request id. send_* writes the frame and returns immediately;
// wait_* blocks until THAT id's reply arrives, stashing any other reply
// that lands first (the server answers in completion order, not
// submission order). This is how a single connection keeps many requests
// in flight — e.g. trickling predictions into the server's coalescing
// window while a search runs.
//
// Deadlines: `deadline_us` (0 = none) rides the frame header as the
// request's queue-time budget, measured from server receipt. An expired
// request is answered DEADLINE_EXCEEDED without running; a request
// already running is unaffected.
//
// Fault tolerance (blocking verbs only): with a RetryPolicy of more than
// one attempt, a verb that fails in TRANSPORT (send/recv errno, torn or
// unframeable reply, receive timeout — all surfaced as UNAVAILABLE)
// reconnects and retries with exponential backoff and decorrelated
// jitter. Retry is idempotency-aware: pure verbs (predict_latency,
// predict_batch, profile, profile_baseline, ping) retry transparently;
// mutating verbs (search, train_baseline) surface the UNAVAILABLE
// instead — a transport failure cannot prove the request never ran —
// unless RetryPolicy::retry_mutating opts in. The exception is a reply
// carrying a retry_after_us hint: the server attaches it only to
// requests it REFUSED before running (queue-full sheds, drain
// refusals), so hinted refusals are retried for every verb, with the
// backoff floored at the server's hint. Retries never extend past the
// verb's deadline_us, measured from verb entry; each attempt's frame
// carries only the remaining budget. The pipelined send_*/wait_* API
// never retries (ids are tied to one connection).
//
// A Client is NOT thread-safe: drive one instance from one thread (open
// several connections for concurrent callers).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/config.hpp"
#include "api/engine.hpp"
#include "api/status.hpp"
#include "net/protocol.hpp"
#include "net/transport.hpp"
#include "tensor/rng.hpp"

namespace hg::net {

/// Retry schedule for the blocking verbs. The default (one attempt) is
/// plain v1 behavior: every failure surfaces immediately.
struct RetryPolicy {
  /// Total attempts, the first one included; <= 1 disables retry.
  int max_attempts = 1;
  /// Decorrelated-jitter backoff: attempt n sleeps
  /// uniform(initial_backoff_us, 3 * previous_sleep), clamped to
  /// max_backoff_us and floored at the server's retry_after_us hint
  /// when one was given.
  std::int64_t initial_backoff_us = 2'000;
  std::int64_t max_backoff_us = 200'000;
  /// Seeds the jitter stream — deterministic backoff sequences in tests.
  std::uint64_t jitter_seed = 1;
  /// Opt in to retrying search / train_baseline on transport failures.
  /// Only safe when the caller knows duplicated execution is acceptable
  /// (e.g. deterministic seeds make a re-run idempotent anyway).
  bool retry_mutating = false;
};

struct ClientConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// recv() blocks at most this long before the call fails UNAVAILABLE;
  /// 0 = block forever. A safety net against a hung peer, not a request
  /// deadline (use deadline_us for that).
  std::int64_t recv_timeout_ms = 0;
  RetryPolicy retry;
  /// Test seam: wraps the freshly connected transport (and every
  /// reconnect's) — see net/chaos.hpp. Empty = use the socket directly.
  TransportWrap wrap_transport;
};

class Client {
 public:
  static api::Result<Client> connect(const ClientConfig& cfg);
  static api::Result<Client> connect(const std::string& host,
                                     std::uint16_t port) {
    ClientConfig cfg;
    cfg.host = host;
    cfg.port = port;
    return connect(cfg);
  }

  Client(Client&& other) noexcept = default;
  Client& operator=(Client&& other) noexcept = default;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client() = default;

  // ---- blocking verbs (send + wait) ----
  api::Result<api::SearchReport> search(
      std::optional<api::EngineConfig> cfg = {}, std::uint64_t deadline_us = 0);
  api::Result<api::LatencyReport> predict_latency(
      const api::Arch& arch, std::uint64_t deadline_us = 0);
  /// Mirrors Engine::predict_batch: element i is the answer to archs[i].
  /// The server evaluates elements independently (its coalescing queue
  /// packs them back together); if any element failed, the first failing
  /// element's Status is returned for the whole call, like the engine
  /// verb.
  api::Result<std::vector<api::LatencyReport>> predict_batch(
      const std::vector<api::Arch>& archs, std::uint64_t deadline_us = 0);
  api::Result<api::ProfileReport> profile(const api::Arch& arch,
                                          std::uint64_t deadline_us = 0);
  api::Result<api::ProfileReport> profile_baseline(
      const std::string& name,
      const std::optional<api::Workload>& workload = {},
      std::uint64_t deadline_us = 0);
  api::Result<api::TrainReport> train_baseline(const std::string& name,
                                               std::uint64_t deadline_us = 0);
  /// Health probe (protocol v2): answered from the server's I/O thread
  /// even when every worker is busy, so it reports saturation instead of
  /// queueing behind it.
  api::Result<HealthReport> ping(std::uint64_t deadline_us = 0);
  /// Remote metrics scrape (protocol v2, kStats): the server's full
  /// obs::Registry snapshot — serve.* counters/histograms plus the
  /// net.* frame counters — answered from the I/O thread like ping.
  api::Result<obs::Snapshot> stats(std::uint64_t deadline_us = 0);

  // ---- pipelined form: fire now, collect by id later ----
  api::Result<std::uint64_t> send_search(
      std::optional<api::EngineConfig> cfg = {}, std::uint64_t deadline_us = 0);
  api::Result<std::uint64_t> send_predict_latency(
      const api::Arch& arch, std::uint64_t deadline_us = 0);
  api::Result<std::uint64_t> send_predict_batch(
      const std::vector<api::Arch>& archs, std::uint64_t deadline_us = 0);
  api::Result<std::uint64_t> send_profile(const api::Arch& arch,
                                          std::uint64_t deadline_us = 0);
  api::Result<std::uint64_t> send_profile_baseline(
      const std::string& name,
      const std::optional<api::Workload>& workload = {},
      std::uint64_t deadline_us = 0);
  api::Result<std::uint64_t> send_train_baseline(
      const std::string& name, std::uint64_t deadline_us = 0);

  api::Result<api::SearchReport> wait_search(std::uint64_t id);
  api::Result<api::LatencyReport> wait_predict_latency(std::uint64_t id);
  api::Result<std::vector<api::LatencyReport>> wait_predict_batch(
      std::uint64_t id);
  api::Result<api::ProfileReport> wait_profile(std::uint64_t id);
  api::Result<api::ProfileReport> wait_profile_baseline(std::uint64_t id);
  api::Result<api::TrainReport> wait_train_baseline(std::uint64_t id);

  bool connected() const { return transport_ != nullptr; }

  /// Connections dialed over this client's lifetime (1 after connect();
  /// grows with every automatic reconnect). Observability for tests and
  /// callers curious whether their verbs have been riding retries.
  std::int64_t connections_dialed() const { return connections_dialed_; }

  /// Announce "no more requests" (a kGoodbye frame) and FIN the write
  /// side. The read side stays open: outstanding wait_* calls still
  /// collect their replies, after which the server closes the
  /// connection. Use this before abandoning a pipelining client whose
  /// in-flight requests should be *answered* — a plain close() makes the
  /// server cancel them instead. Further send_* calls fail UNAVAILABLE.
  api::Status goodbye();

  /// Close the connection (any still-queued server-side work for it gets
  /// cancelled on the server). Idempotent; further calls fail UNAVAILABLE.
  void close();

 private:
  Client() = default;

  /// Parse one reply payload into a Result, reporting the server's
  /// retry_after_us hint (0 = none). Returns false on malformed bytes —
  /// a transport-class failure, distinct from a decoded error Status.
  template <typename T>
  using ParseReply = bool (*)(const std::string& payload, api::Result<T>* out,
                              std::uint64_t* retry_after_us);

  /// Dial cfg.host:cfg.port (EINTR-safe) and apply cfg.wrap_transport.
  static api::Result<std::unique_ptr<Transport>> dial(
      const ClientConfig& cfg);
  /// Re-dial after a dropped connection; refused after goodbye()/close().
  api::Status reconnect();
  /// Tear down the transport and any half-accumulated frame. Stashed
  /// complete replies survive (their ids are never reused).
  void drop_connection();

  /// The blocking-verb engine: send, await the reply, parse — retrying
  /// per cfg_.retry as documented at the top of this header.
  template <typename T>
  api::Result<T> roundtrip(FrameType type, const std::string& payload,
                           std::uint64_t deadline_us, bool idempotent,
                           ParseReply<T> parse);

  api::Result<std::uint64_t> send_frame(FrameType type,
                                        std::uint64_t deadline_us,
                                        const std::string& payload);
  /// Blocks until the reply for `id` arrives (stashing others), then
  /// checks its type and hands back the payload.
  api::Result<std::string> recv_reply(std::uint64_t id, FrameType type);

  ClientConfig cfg_;
  std::unique_ptr<Transport> transport_;
  Rng jitter_{1};
  std::int64_t connections_dialed_ = 0;
  std::uint64_t next_id_ = 1;
  bool sent_goodbye_ = false;  // write side FIN'd; reads still live
  bool user_closed_ = false;   // explicit close(): no auto-reconnect
  std::string in_;  // partial-frame accumulation
  std::map<std::uint64_t, std::pair<std::uint16_t, std::string>> stash_;
};

}  // namespace hg::net
