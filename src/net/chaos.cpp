#include "net/chaos.hpp"

#include <cerrno>
#include <cstring>
#include <utility>

#include "net/protocol.hpp"

namespace hg::net::testing {

namespace {

/// A reset/stall fires once the cursor reaches this offset of the doomed
/// frame: halfway through the header, so the peer is left holding a torn
/// frame it cannot even parse.
constexpr std::size_t kFaultOffset = kHeaderSize / 2;

std::uint32_t le32(const char* p) {
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  return v;
}

}  // namespace

ChaosTransport::ChaosTransport(std::unique_ptr<Transport> inner,
                               const ChaosConfig& cfg, ChaosStats* stats)
    : inner_(std::move(inner)), cfg_(cfg), stats_(stats), rng_(cfg.seed) {}

void ChaosTransport::roll(Cursor* c, bool sending) {
  if (!c->fresh) return;
  c->fresh = false;
  if (sending) {
    c->reset_here =
        c->frame == cfg_.reset_send_at_frame ||
        (cfg_.reset_send_rate > 0 && rng_.bernoulli(cfg_.reset_send_rate));
    c->corrupt_here = cfg_.corrupt_header_rate > 0 &&
                      rng_.bernoulli(cfg_.corrupt_header_rate);
    if (c->corrupt_here) {
      c->corrupt_at = static_cast<std::size_t>(
          rng_.uniform_int(static_cast<std::uint64_t>(kHeaderSize)));
      c->corrupt_mask =
          static_cast<unsigned char>(1u << rng_.uniform_int(8));
      if (stats_ != nullptr)
        stats_->corrupted_frames.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    c->reset_here =
        c->frame == cfg_.reset_recv_at_frame ||
        (cfg_.reset_recv_rate > 0 && rng_.bernoulli(cfg_.reset_recv_rate));
    c->stall_here = c->frame == cfg_.stall_recv_at_frame;
  }
}

void ChaosTransport::advance(Cursor* c, const char* data, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (c->offset < kHeaderSize) {
      c->header[c->offset] = data[i];
      if (c->offset + 1 == kHeaderSize) {
        c->frame_len = kHeaderSize + le32(c->header + 24);
        c->len_known = true;
      }
    }
    ++c->offset;
    if (c->len_known && c->offset >= c->frame_len) {
      ++c->frame;
      c->offset = 0;
      c->frame_len = 0;
      c->len_known = false;
      c->fresh = true;
    }
  }
}

ssize_t ChaosTransport::send(const char* data, std::size_t len) {
  if (send_dead_) {
    errno = EPIPE;
    return -1;
  }
  if (len == 0) return inner_->send(data, len);
  Cursor& c = tx_;
  roll(&c, /*sending=*/true);
  if (c.reset_here) {
    if (c.offset >= kFaultOffset) {
      send_dead_ = true;
      if (stats_ != nullptr)
        stats_->resets.fetch_add(1, std::memory_order_relaxed);
      errno = EPIPE;
      return -1;
    }
    len = std::min(len, kFaultOffset - c.offset);
  }
  // Never move past the current tracking boundary (end of the header
  // while the length is unknown, end of the frame after): the caller's
  // send loop supplies the rest, and per-frame dice stay exact.
  len = std::min(len, (c.len_known ? c.frame_len : kHeaderSize) - c.offset);
  if (cfg_.short_io_rate > 0 && len > 1 &&
      rng_.bernoulli(cfg_.short_io_rate)) {
    len = 1 + static_cast<std::size_t>(
                  rng_.uniform_int(static_cast<std::uint64_t>(len - 1)));
    if (stats_ != nullptr)
      stats_->short_sends.fetch_add(1, std::memory_order_relaxed);
  }
  const char* out = data;
  std::string scratch;
  if (c.corrupt_here && c.corrupt_at >= c.offset &&
      c.corrupt_at < c.offset + len) {
    scratch.assign(data, len);
    scratch[c.corrupt_at - c.offset] = static_cast<char>(
        static_cast<unsigned char>(scratch[c.corrupt_at - c.offset]) ^
        c.corrupt_mask);
    out = scratch.data();
  }
  const ssize_t n = inner_->send(out, len);
  // The cursor tracks the ORIGINAL bytes, so a corrupted length field
  // cannot desynchronize our own bookkeeping.
  if (n > 0) advance(&c, data, static_cast<std::size_t>(n));
  return n;
}

ssize_t ChaosTransport::recv(char* buf, std::size_t len) {
  if (recv_dead_) {
    errno = ECONNRESET;
    return -1;
  }
  if (stalled_) {
    errno = EAGAIN;
    return -1;
  }
  if (len == 0) return inner_->recv(buf, len);
  Cursor& c = rx_;
  roll(&c, /*sending=*/false);
  if ((c.reset_here || c.stall_here) && c.offset >= kFaultOffset) {
    if (c.reset_here) {
      recv_dead_ = true;
      if (stats_ != nullptr)
        stats_->resets.fetch_add(1, std::memory_order_relaxed);
      errno = ECONNRESET;
    } else {
      stalled_ = true;
      if (stats_ != nullptr)
        stats_->stalls.fetch_add(1, std::memory_order_relaxed);
      errno = EAGAIN;
    }
    return -1;
  }
  if (c.reset_here || c.stall_here)
    len = std::min(len, kFaultOffset - c.offset);
  len = std::min(len, (c.len_known ? c.frame_len : kHeaderSize) - c.offset);
  if (cfg_.short_io_rate > 0 && len > 1 &&
      rng_.bernoulli(cfg_.short_io_rate)) {
    len = 1 + static_cast<std::size_t>(
                  rng_.uniform_int(static_cast<std::uint64_t>(len - 1)));
    if (stats_ != nullptr)
      stats_->short_recvs.fetch_add(1, std::memory_order_relaxed);
  }
  const ssize_t n = inner_->recv(buf, len);
  if (n > 0) advance(&c, buf, static_cast<std::size_t>(n));
  return n;
}

TransportWrap chaos_wrap(const ChaosConfig& cfg, ChaosStats* stats) {
  auto next = std::make_shared<std::atomic<std::uint64_t>>(0);
  return [cfg, stats, next](std::unique_ptr<Transport> inner) {
    ChaosConfig c = cfg;
    c.seed += next->fetch_add(1, std::memory_order_relaxed);
    return std::make_unique<ChaosTransport>(std::move(inner), c, stats);
  };
}

TransportWrap chaos_first_connection_only(const ChaosConfig& cfg,
                                          ChaosStats* stats) {
  auto next = std::make_shared<std::atomic<std::uint64_t>>(0);
  return [cfg, stats, next](
             std::unique_ptr<Transport> inner) -> std::unique_ptr<Transport> {
    if (next->fetch_add(1, std::memory_order_relaxed) != 0) return inner;
    return std::make_unique<ChaosTransport>(std::move(inner), cfg, stats);
  };
}

}  // namespace hg::net::testing
