#include "net/transport.hpp"

#include <sys/socket.h>
#include <unistd.h>

namespace hg::net {

SocketTransport::~SocketTransport() {
  if (fd_ >= 0) ::close(fd_);
}

ssize_t SocketTransport::send(const char* data, std::size_t len) {
  return ::send(fd_, data, len, MSG_NOSIGNAL);
}

ssize_t SocketTransport::sendv(const struct iovec* iov, int iovcnt) {
  // sendmsg(2), not writev(2): writev cannot pass MSG_NOSIGNAL, and a
  // SIGPIPE from a peer that closed mid-flush would kill the process.
  struct msghdr msg = {};
  msg.msg_iov = const_cast<struct iovec*>(iov);
  msg.msg_iovlen = static_cast<std::size_t>(iovcnt);
  return ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
}

ssize_t SocketTransport::recv(char* buf, std::size_t len) {
  return ::recv(fd_, buf, len, 0);
}

void SocketTransport::shutdown_write() { ::shutdown(fd_, SHUT_WR); }

}  // namespace hg::net
