#include "net/transport.hpp"

#include <sys/socket.h>
#include <unistd.h>

namespace hg::net {

SocketTransport::~SocketTransport() {
  if (fd_ >= 0) ::close(fd_);
}

ssize_t SocketTransport::send(const char* data, std::size_t len) {
  return ::send(fd_, data, len, MSG_NOSIGNAL);
}

ssize_t SocketTransport::recv(char* buf, std::size_t len) {
  return ::recv(fd_, buf, len, 0);
}

void SocketTransport::shutdown_write() { ::shutdown(fd_, SHUT_WR); }

}  // namespace hg::net
