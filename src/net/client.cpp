#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

namespace hg::net {

namespace {

api::Status transport_error(const std::string& what) {
  return api::Status::Unavailable(what + ": " + errno_string(errno));
}

api::Status disconnected_status() {
  return api::Status::Unavailable("client is not connected");
}

std::int64_t elapsed_us(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

api::Result<std::unique_ptr<Transport>> Client::dial(const ClientConfig& cfg) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return transport_error("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg.port);
  if (::inet_pton(AF_INET, cfg.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return api::Status::InvalidArgument(
        "ClientConfig::host is not an IPv4 address: " + cfg.host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    bool established = false;
    if (errno == EINTR) {
      // POSIX: an EINTR'd connect(2) keeps establishing in the
      // background; re-calling connect() races the in-flight handshake
      // (EALREADY/EISCONN). Wait for writability, then read the real
      // outcome from SO_ERROR.
      pollfd p{};
      p.fd = fd;
      p.events = POLLOUT;
      int rc = 0;
      do {
        rc = ::poll(&p, 1, -1);
      } while (rc < 0 && errno == EINTR);
      if (rc > 0) {
        int err = 0;
        socklen_t len = sizeof(err);
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
          err = errno;
        }
        if (err == 0) {
          established = true;
        } else {
          errno = err;
        }
      }
    }
    if (!established) {
      // ECONNREFUSED / ETIMEDOUT / EHOSTUNREACH all land here: the
      // server is not reachable right now — UNAVAILABLE, retryable.
      const api::Status status = transport_error(
          "connect(" + cfg.host + ":" + std::to_string(cfg.port) +
          ") failed");
      ::close(fd);
      return status;
    }
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (cfg.recv_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = cfg.recv_timeout_ms / 1000;
    tv.tv_usec = (cfg.recv_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  std::unique_ptr<Transport> transport = std::make_unique<SocketTransport>(fd);
  if (cfg.wrap_transport) transport = cfg.wrap_transport(std::move(transport));
  return transport;
}

api::Result<Client> Client::connect(const ClientConfig& cfg) {
  api::Result<std::unique_ptr<Transport>> transport = dial(cfg);
  if (!transport.ok()) return transport.status();
  Client client;
  client.cfg_ = cfg;
  client.jitter_ = Rng(cfg.retry.jitter_seed);
  client.transport_ = std::move(transport).value();
  client.connections_dialed_ = 1;
  return client;
}

api::Status Client::reconnect() {
  if (user_closed_) return disconnected_status();
  if (sent_goodbye_)
    return api::Status::Unavailable("no more requests after goodbye()");
  api::Result<std::unique_ptr<Transport>> transport = dial(cfg_);
  if (!transport.ok()) return transport.status();
  transport_ = std::move(transport).value();
  ++connections_dialed_;
  in_.clear();
  return api::Status::Ok();
}

void Client::drop_connection() {
  transport_.reset();
  in_.clear();
}

void Client::close() {
  drop_connection();
  user_closed_ = true;
}

api::Status Client::goodbye() {
  if (sent_goodbye_) return api::Status::Ok();  // idempotent
  api::Result<std::uint64_t> id = send_frame(FrameType::kGoodbye, 0, "");
  if (!id.ok()) return id.status();
  sent_goodbye_ = true;
  transport_->shutdown_write();
  return api::Status::Ok();
}

api::Result<std::uint64_t> Client::send_frame(FrameType type,
                                              std::uint64_t deadline_us,
                                              const std::string& payload) {
  if (!connected()) return disconnected_status();
  // After goodbye() the write side is gone but replies are still being
  // collected: refuse here instead of letting EPIPE tear down the whole
  // connection (and with it the pending replies).
  if (sent_goodbye_)
    return api::Status::Unavailable("no more requests after goodbye()");
  if (payload.size() > kMaxPayloadBytes)
    return api::Status::InvalidArgument("request payload exceeds the wire "
                                        "limit");
  const std::uint64_t id = next_id_++;
  const std::string frame =
      encode_frame(type, /*reply=*/false, id, deadline_us, payload);
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n =
        transport_->send(frame.data() + sent, frame.size() - sent);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    const api::Status status = transport_error("send() failed");
    drop_connection();
    return status;
  }
  return id;
}

api::Result<std::string> Client::recv_reply(std::uint64_t id,
                                            FrameType type) {
  const std::uint16_t want_type =
      static_cast<std::uint16_t>(type) | kReplyBit;
  for (;;) {
    // Served already (a pipelined peer's reply landed first)?
    auto it = stash_.find(id);
    if (it != stash_.end()) {
      std::pair<std::uint16_t, std::string> reply = std::move(it->second);
      stash_.erase(it);
      if (reply.first != want_type)
        return api::Status::Unavailable(
            "reply type mismatch (got " + std::to_string(reply.first) +
            ", want " + std::to_string(want_type) + ")");
      return std::move(reply.second);
    }
    if (!connected()) return disconnected_status();

    // Pull complete frames off the socket into the stash.
    while (in_.size() >= kHeaderSize) {
      FrameHeader h;
      const HeaderDecode hd = decode_header_ex(in_.data(), in_.size(), &h);
      if (hd == HeaderDecode::kBadVersion) {
        // A server speaking another protocol version: its farewell (or
        // any reply) is unparseable beyond the header. Typed, terminal,
        // never retried.
        drop_connection();
        return api::Status::FailedPrecondition(
            "protocol version mismatch: server speaks v" +
            std::to_string(h.version) + ", client speaks v" +
            std::to_string(kProtocolVersion));
      }
      if (hd != HeaderDecode::kOk) {
        drop_connection();
        return api::Status::Unavailable("unframeable reply stream");
      }
      if (in_.size() < kHeaderSize + h.payload_len) break;
      stash_[h.request_id] = {h.type,
                              in_.substr(kHeaderSize, h.payload_len)};
      in_.erase(0, kHeaderSize + h.payload_len);
    }
    if (stash_.count(id)) continue;

    char buf[64 * 1024];
    const ssize_t n = transport_->recv(buf, sizeof(buf));
    if (n > 0) {
      in_.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    const api::Status status =
        n == 0 ? api::Status::Unavailable("server closed the connection")
        : (errno == EAGAIN || errno == EWOULDBLOCK)
            ? api::Status::Unavailable("receive timed out")
            : transport_error("recv() failed");
    drop_connection();
    return status;
  }
}

// ---- retrying roundtrip ----------------------------------------------------

template <typename T>
api::Result<T> Client::roundtrip(FrameType type, const std::string& payload,
                                 std::uint64_t deadline_us, bool idempotent,
                                 ParseReply<T> parse) {
  const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  if (sent_goodbye_)
    return api::Status::Unavailable("no more requests after goodbye()");
  const int max_attempts = std::max(1, cfg_.retry.max_attempts);
  std::int64_t prev_sleep_us = cfg_.retry.initial_backoff_us;
  api::Status failure = disconnected_status();
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    // The frame carries the REMAINING budget, not the original figure —
    // the server's queue-time clock starts at receipt, and a retried
    // request has already spent part of the caller's patience.
    std::uint64_t remaining = deadline_us;
    if (deadline_us > 0) {
      const std::int64_t elapsed = elapsed_us(start);
      if (elapsed >= static_cast<std::int64_t>(deadline_us))
        return api::Status::DeadlineExceeded(
            "request deadline expired after " + std::to_string(attempt - 1) +
            " attempt(s); last failure: " + failure.message());
      remaining = deadline_us - static_cast<std::uint64_t>(elapsed);
    }

    std::uint64_t hint_us = 0;
    bool hinted_refusal = false;
    bool attempt_failed = false;
    if (!connected()) {
      const api::Status status = reconnect();
      if (!status.ok()) {
        // Non-UNAVAILABLE dial failures (bad host) are config errors.
        if (status.code() != api::StatusCode::kUnavailable) return status;
        failure = status;
        attempt_failed = true;
      }
    }
    if (!attempt_failed) {
      const api::Result<std::uint64_t> id =
          send_frame(type, remaining, payload);
      if (!id.ok()) {
        failure = id.status();
        attempt_failed = true;
      } else {
        const api::Result<std::string> reply = recv_reply(id.value(), type);
        if (!reply.ok()) {
          // Version mismatch (FAILED_PRECONDITION) is terminal; every
          // UNAVAILABLE here is transport-class.
          if (reply.status().code() != api::StatusCode::kUnavailable)
            return reply.status();
          failure = reply.status();
          attempt_failed = true;
        } else {
          api::Result<T> parsed = api::Status::Internal("unparsed reply");
          if (!parse(reply.value(), &parsed, &hint_us)) {
            drop_connection();
            failure = api::Status::Unavailable("malformed reply payload");
            attempt_failed = true;
          } else if (!parsed.ok() && hint_us > 0) {
            // A hinted refusal: the server turned the request away
            // BEFORE running it (shed / draining), so retrying is safe
            // for every verb, mutating ones included.
            failure = parsed.status();
            hinted_refusal = true;
            attempt_failed = true;
          } else {
            return parsed;  // success, or the server's own typed answer
          }
        }
      }
    }

    const bool retryable =
        hinted_refusal || idempotent || cfg_.retry.retry_mutating;
    if (!retryable || attempt == max_attempts) return failure;
    // A hinted refusal leaves a healthy connection — keep it. Everything
    // else reconnects from scratch on the next attempt.
    if (!hinted_refusal) drop_connection();

    // Decorrelated jitter: sleep uniform(initial, 3 * previous sleep),
    // clamped to max_backoff_us and floored at the server's pacing hint.
    const std::int64_t lo = std::max<std::int64_t>(0,
                                                   cfg_.retry.initial_backoff_us);
    const std::int64_t hi = std::max(lo, prev_sleep_us * 3);
    std::int64_t sleep_us = lo;
    if (hi > lo)
      sleep_us = lo + static_cast<std::int64_t>(jitter_.uniform_int(
                          static_cast<std::uint64_t>(hi - lo + 1)));
    sleep_us = std::min(sleep_us, cfg_.retry.max_backoff_us);
    if (hint_us > 0)
      sleep_us = std::max(sleep_us, static_cast<std::int64_t>(hint_us));
    if (deadline_us > 0 &&
        elapsed_us(start) + sleep_us >=
            static_cast<std::int64_t>(deadline_us))
      return api::Status::DeadlineExceeded(
          "retry backoff would overrun the request deadline; last "
          "failure: " +
          failure.message());
    prev_sleep_us = std::max<std::int64_t>(sleep_us, 1);
    if (sleep_us > 0)
      std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
  }
  return failure;  // unreachable: the loop returns on its last attempt
}

// ---- send_* ----------------------------------------------------------------

api::Result<std::uint64_t> Client::send_search(
    std::optional<api::EngineConfig> cfg, std::uint64_t deadline_us) {
  Writer w;
  encode_search_request(cfg, &w);
  return send_frame(FrameType::kSearch, deadline_us, w.bytes());
}

api::Result<std::uint64_t> Client::send_predict_latency(
    const api::Arch& arch, std::uint64_t deadline_us) {
  Writer w;
  encode_predict_request(arch, &w);
  return send_frame(FrameType::kPredictLatency, deadline_us, w.bytes());
}

api::Result<std::uint64_t> Client::send_predict_batch(
    const std::vector<api::Arch>& archs, std::uint64_t deadline_us) {
  Writer w;
  encode_predict_batch_request(archs, &w);
  return send_frame(FrameType::kPredictBatchN, deadline_us, w.bytes());
}

api::Result<std::uint64_t> Client::send_profile(const api::Arch& arch,
                                                std::uint64_t deadline_us) {
  Writer w;
  encode_predict_request(arch, &w);
  return send_frame(FrameType::kProfile, deadline_us, w.bytes());
}

api::Result<std::uint64_t> Client::send_profile_baseline(
    const std::string& name, const std::optional<api::Workload>& workload,
    std::uint64_t deadline_us) {
  Writer w;
  encode_profile_baseline_request(name, workload, &w);
  return send_frame(FrameType::kProfileBaseline, deadline_us, w.bytes());
}

api::Result<std::uint64_t> Client::send_train_baseline(
    const std::string& name, std::uint64_t deadline_us) {
  Writer w;
  encode_train_baseline_request(name, &w);
  return send_frame(FrameType::kTrainBaseline, deadline_us, w.bytes());
}

// ---- wait_* ----------------------------------------------------------------

namespace {

template <typename T, typename DecodeFn>
api::Result<T> wait_typed(api::Result<std::string> payload, DecodeFn decode) {
  if (!payload.ok()) return payload.status();
  Reader r(payload.value());
  api::Result<T> out = api::Status::Internal("uninitialised reply");
  if (!decode_reply<T>(&r, decode, &out))
    return api::Status::Unavailable("malformed reply payload");
  return out;
}

}  // namespace

api::Result<api::SearchReport> Client::wait_search(std::uint64_t id) {
  return wait_typed<api::SearchReport>(
      recv_reply(id, FrameType::kSearch),
      [](Reader* r, api::SearchReport* out) {
        return decode_search_report(r, out);
      });
}

api::Result<api::LatencyReport> Client::wait_predict_latency(
    std::uint64_t id) {
  return wait_typed<api::LatencyReport>(
      recv_reply(id, FrameType::kPredictLatency),
      [](Reader* r, api::LatencyReport* out) {
        return decode_latency_report(r, out);
      });
}

api::Result<std::vector<api::LatencyReport>> Client::wait_predict_batch(
    std::uint64_t id) {
  api::Result<std::string> payload =
      recv_reply(id, FrameType::kPredictBatchN);
  if (!payload.ok()) return payload.status();
  Reader r(payload.value());
  std::vector<api::Result<api::LatencyReport>> elements;
  if (!decode_predict_batch_reply(&r, &elements))
    return api::Status::Unavailable("malformed reply payload");
  std::vector<api::LatencyReport> out;
  out.reserve(elements.size());
  for (const api::Result<api::LatencyReport>& e : elements) {
    if (!e.ok()) return e.status();  // first failure fails the batch verb
    out.push_back(e.value());
  }
  return out;
}

api::Result<api::ProfileReport> Client::wait_profile(std::uint64_t id) {
  return wait_typed<api::ProfileReport>(
      recv_reply(id, FrameType::kProfile),
      [](Reader* r, api::ProfileReport* out) {
        return decode_profile_report(r, out);
      });
}

api::Result<api::ProfileReport> Client::wait_profile_baseline(
    std::uint64_t id) {
  return wait_typed<api::ProfileReport>(
      recv_reply(id, FrameType::kProfileBaseline),
      [](Reader* r, api::ProfileReport* out) {
        return decode_profile_report(r, out);
      });
}

api::Result<api::TrainReport> Client::wait_train_baseline(std::uint64_t id) {
  return wait_typed<api::TrainReport>(
      recv_reply(id, FrameType::kTrainBaseline),
      [](Reader* r, api::TrainReport* out) {
        return decode_train_report(r, out);
      });
}

// ---- blocking verbs --------------------------------------------------------

namespace {

template <typename T, typename DecodeFn>
bool parse_reply_payload(const std::string& payload, DecodeFn decode,
                         api::Result<T>* out, std::uint64_t* hint) {
  Reader r(payload);
  return decode_reply<T>(&r, decode, out, hint);
}

}  // namespace

api::Result<api::SearchReport> Client::search(
    std::optional<api::EngineConfig> cfg, std::uint64_t deadline_us) {
  Writer w;
  encode_search_request(cfg, &w);
  return roundtrip<api::SearchReport>(
      FrameType::kSearch, w.bytes(), deadline_us, /*idempotent=*/false,
      [](const std::string& p, api::Result<api::SearchReport>* out,
         std::uint64_t* hint) {
        return parse_reply_payload<api::SearchReport>(
            p,
            [](Reader* r, api::SearchReport* v) {
              return decode_search_report(r, v);
            },
            out, hint);
      });
}

api::Result<api::LatencyReport> Client::predict_latency(
    const api::Arch& arch, std::uint64_t deadline_us) {
  Writer w;
  encode_predict_request(arch, &w);
  return roundtrip<api::LatencyReport>(
      FrameType::kPredictLatency, w.bytes(), deadline_us,
      /*idempotent=*/true,
      [](const std::string& p, api::Result<api::LatencyReport>* out,
         std::uint64_t* hint) {
        return parse_reply_payload<api::LatencyReport>(
            p,
            [](Reader* r, api::LatencyReport* v) {
              return decode_latency_report(r, v);
            },
            out, hint);
      });
}

api::Result<std::vector<api::LatencyReport>> Client::predict_batch(
    const std::vector<api::Arch>& archs, std::uint64_t deadline_us) {
  Writer w;
  encode_predict_batch_request(archs, &w);
  return roundtrip<std::vector<api::LatencyReport>>(
      FrameType::kPredictBatchN, w.bytes(), deadline_us,
      /*idempotent=*/true,
      [](const std::string& p,
         api::Result<std::vector<api::LatencyReport>>* out,
         std::uint64_t* hint) {
        Reader r(p);
        std::vector<api::Result<api::LatencyReport>> elements;
        if (!decode_predict_batch_reply(&r, &elements, hint)) return false;
        std::vector<api::LatencyReport> reports;
        reports.reserve(elements.size());
        for (const api::Result<api::LatencyReport>& e : elements) {
          if (!e.ok()) {
            *out = e.status();  // first failure fails the batch verb
            return true;
          }
          reports.push_back(e.value());
        }
        *out = std::move(reports);
        return true;
      });
}

api::Result<api::ProfileReport> Client::profile(const api::Arch& arch,
                                                std::uint64_t deadline_us) {
  Writer w;
  encode_predict_request(arch, &w);
  return roundtrip<api::ProfileReport>(
      FrameType::kProfile, w.bytes(), deadline_us, /*idempotent=*/true,
      [](const std::string& p, api::Result<api::ProfileReport>* out,
         std::uint64_t* hint) {
        return parse_reply_payload<api::ProfileReport>(
            p,
            [](Reader* r, api::ProfileReport* v) {
              return decode_profile_report(r, v);
            },
            out, hint);
      });
}

api::Result<api::ProfileReport> Client::profile_baseline(
    const std::string& name, const std::optional<api::Workload>& workload,
    std::uint64_t deadline_us) {
  Writer w;
  encode_profile_baseline_request(name, workload, &w);
  return roundtrip<api::ProfileReport>(
      FrameType::kProfileBaseline, w.bytes(), deadline_us,
      /*idempotent=*/true,
      [](const std::string& p, api::Result<api::ProfileReport>* out,
         std::uint64_t* hint) {
        return parse_reply_payload<api::ProfileReport>(
            p,
            [](Reader* r, api::ProfileReport* v) {
              return decode_profile_report(r, v);
            },
            out, hint);
      });
}

api::Result<api::TrainReport> Client::train_baseline(
    const std::string& name, std::uint64_t deadline_us) {
  Writer w;
  encode_train_baseline_request(name, &w);
  return roundtrip<api::TrainReport>(
      FrameType::kTrainBaseline, w.bytes(), deadline_us,
      /*idempotent=*/false,
      [](const std::string& p, api::Result<api::TrainReport>* out,
         std::uint64_t* hint) {
        return parse_reply_payload<api::TrainReport>(
            p,
            [](Reader* r, api::TrainReport* v) {
              return decode_train_report(r, v);
            },
            out, hint);
      });
}

api::Result<HealthReport> Client::ping(std::uint64_t deadline_us) {
  return roundtrip<HealthReport>(
      FrameType::kPing, "", deadline_us, /*idempotent=*/true,
      [](const std::string& p, api::Result<HealthReport>* out,
         std::uint64_t* hint) {
        return parse_reply_payload<HealthReport>(
            p,
            [](Reader* r, HealthReport* v) {
              return decode_health_report(r, v);
            },
            out, hint);
      });
}

api::Result<obs::Snapshot> Client::stats(std::uint64_t deadline_us) {
  return roundtrip<obs::Snapshot>(
      FrameType::kStats, "", deadline_us, /*idempotent=*/true,
      [](const std::string& p, api::Result<obs::Snapshot>* out,
         std::uint64_t* hint) {
        return parse_reply_payload<obs::Snapshot>(
            p,
            [](Reader* r, obs::Snapshot* v) {
              return decode_stats_snapshot(r, v);
            },
            out, hint);
      });
}

}  // namespace hg::net
